# Empty compiler generated dependencies file for light_client_test.
# This may be replaced when dependencies are built.
