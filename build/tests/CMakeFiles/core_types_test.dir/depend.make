# Empty dependencies file for core_types_test.
# This may be replaced when dependencies are built.
