# Empty compiler generated dependencies file for deep_hierarchy_test.
# This may be replaced when dependencies are built.
