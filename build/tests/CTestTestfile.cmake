# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/chain_test[1]_include.cmake")
include("/root/repo/build/tests/core_types_test[1]_include.cmake")
include("/root/repo/build/tests/actors_test[1]_include.cmake")
include("/root/repo/build/tests/consensus_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/atomic_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/codec_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/light_client_test[1]_include.cmake")
include("/root/repo/build/tests/deep_hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/engine_sweep_test[1]_include.cmake")
