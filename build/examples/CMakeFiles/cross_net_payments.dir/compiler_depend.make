# Empty compiler generated dependencies file for cross_net_payments.
# This may be replaced when dependencies are built.
