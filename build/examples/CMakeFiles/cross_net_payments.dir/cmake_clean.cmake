file(REMOVE_RECURSE
  "CMakeFiles/cross_net_payments.dir/cross_net_payments.cpp.o"
  "CMakeFiles/cross_net_payments.dir/cross_net_payments.cpp.o.d"
  "cross_net_payments"
  "cross_net_payments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_net_payments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
