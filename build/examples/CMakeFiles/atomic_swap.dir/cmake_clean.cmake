file(REMOVE_RECURSE
  "CMakeFiles/atomic_swap.dir/atomic_swap.cpp.o"
  "CMakeFiles/atomic_swap.dir/atomic_swap.cpp.o.d"
  "atomic_swap"
  "atomic_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomic_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
