# Empty dependencies file for atomic_swap.
# This may be replaced when dependencies are built.
