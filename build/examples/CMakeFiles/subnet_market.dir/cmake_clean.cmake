file(REMOVE_RECURSE
  "CMakeFiles/subnet_market.dir/subnet_market.cpp.o"
  "CMakeFiles/subnet_market.dir/subnet_market.cpp.o.d"
  "subnet_market"
  "subnet_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subnet_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
