# Empty dependencies file for subnet_market.
# This may be replaced when dependencies are built.
