# Empty compiler generated dependencies file for subnet_market.
# This may be replaced when dependencies are built.
