
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/hc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/actors/CMakeFiles/hc_actors.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/hc_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/hc_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/hc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
