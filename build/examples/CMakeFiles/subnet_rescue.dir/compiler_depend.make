# Empty compiler generated dependencies file for subnet_rescue.
# This may be replaced when dependencies are built.
