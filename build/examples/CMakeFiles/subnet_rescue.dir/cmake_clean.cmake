file(REMOVE_RECURSE
  "CMakeFiles/subnet_rescue.dir/subnet_rescue.cpp.o"
  "CMakeFiles/subnet_rescue.dir/subnet_rescue.cpp.o.d"
  "subnet_rescue"
  "subnet_rescue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subnet_rescue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
