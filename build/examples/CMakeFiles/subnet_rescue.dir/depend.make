# Empty dependencies file for subnet_rescue.
# This may be replaced when dependencies are built.
