# Empty compiler generated dependencies file for hc_crypto.
# This may be replaced when dependencies are built.
