file(REMOVE_RECURSE
  "CMakeFiles/hc_crypto.dir/ec.cpp.o"
  "CMakeFiles/hc_crypto.dir/ec.cpp.o.d"
  "CMakeFiles/hc_crypto.dir/merkle.cpp.o"
  "CMakeFiles/hc_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/hc_crypto.dir/schnorr.cpp.o"
  "CMakeFiles/hc_crypto.dir/schnorr.cpp.o.d"
  "CMakeFiles/hc_crypto.dir/sigcache.cpp.o"
  "CMakeFiles/hc_crypto.dir/sigcache.cpp.o.d"
  "CMakeFiles/hc_crypto.dir/u256.cpp.o"
  "CMakeFiles/hc_crypto.dir/u256.cpp.o.d"
  "libhc_crypto.a"
  "libhc_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
