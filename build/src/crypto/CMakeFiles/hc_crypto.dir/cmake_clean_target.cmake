file(REMOVE_RECURSE
  "libhc_crypto.a"
)
