file(REMOVE_RECURSE
  "CMakeFiles/hc_runtime.dir/atomic.cpp.o"
  "CMakeFiles/hc_runtime.dir/atomic.cpp.o.d"
  "CMakeFiles/hc_runtime.dir/hierarchy.cpp.o"
  "CMakeFiles/hc_runtime.dir/hierarchy.cpp.o.d"
  "CMakeFiles/hc_runtime.dir/node.cpp.o"
  "CMakeFiles/hc_runtime.dir/node.cpp.o.d"
  "libhc_runtime.a"
  "libhc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
