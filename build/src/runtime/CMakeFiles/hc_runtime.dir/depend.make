# Empty dependencies file for hc_runtime.
# This may be replaced when dependencies are built.
