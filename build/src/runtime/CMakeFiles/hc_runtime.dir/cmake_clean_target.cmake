file(REMOVE_RECURSE
  "libhc_runtime.a"
)
