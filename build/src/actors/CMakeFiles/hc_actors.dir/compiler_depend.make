# Empty compiler generated dependencies file for hc_actors.
# This may be replaced when dependencies are built.
