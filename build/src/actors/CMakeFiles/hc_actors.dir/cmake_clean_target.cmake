file(REMOVE_RECURSE
  "libhc_actors.a"
)
