file(REMOVE_RECURSE
  "CMakeFiles/hc_actors.dir/basic.cpp.o"
  "CMakeFiles/hc_actors.dir/basic.cpp.o.d"
  "CMakeFiles/hc_actors.dir/registry.cpp.o"
  "CMakeFiles/hc_actors.dir/registry.cpp.o.d"
  "CMakeFiles/hc_actors.dir/sca_actor.cpp.o"
  "CMakeFiles/hc_actors.dir/sca_actor.cpp.o.d"
  "CMakeFiles/hc_actors.dir/states.cpp.o"
  "CMakeFiles/hc_actors.dir/states.cpp.o.d"
  "CMakeFiles/hc_actors.dir/subnet_actor.cpp.o"
  "CMakeFiles/hc_actors.dir/subnet_actor.cpp.o.d"
  "libhc_actors.a"
  "libhc_actors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_actors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
