
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/actors/basic.cpp" "src/actors/CMakeFiles/hc_actors.dir/basic.cpp.o" "gcc" "src/actors/CMakeFiles/hc_actors.dir/basic.cpp.o.d"
  "/root/repo/src/actors/registry.cpp" "src/actors/CMakeFiles/hc_actors.dir/registry.cpp.o" "gcc" "src/actors/CMakeFiles/hc_actors.dir/registry.cpp.o.d"
  "/root/repo/src/actors/sca_actor.cpp" "src/actors/CMakeFiles/hc_actors.dir/sca_actor.cpp.o" "gcc" "src/actors/CMakeFiles/hc_actors.dir/sca_actor.cpp.o.d"
  "/root/repo/src/actors/states.cpp" "src/actors/CMakeFiles/hc_actors.dir/states.cpp.o" "gcc" "src/actors/CMakeFiles/hc_actors.dir/states.cpp.o.d"
  "/root/repo/src/actors/subnet_actor.cpp" "src/actors/CMakeFiles/hc_actors.dir/subnet_actor.cpp.o" "gcc" "src/actors/CMakeFiles/hc_actors.dir/subnet_actor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chain/CMakeFiles/hc_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
