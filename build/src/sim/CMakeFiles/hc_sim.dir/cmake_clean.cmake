file(REMOVE_RECURSE
  "CMakeFiles/hc_sim.dir/latency.cpp.o"
  "CMakeFiles/hc_sim.dir/latency.cpp.o.d"
  "CMakeFiles/hc_sim.dir/rng.cpp.o"
  "CMakeFiles/hc_sim.dir/rng.cpp.o.d"
  "CMakeFiles/hc_sim.dir/scheduler.cpp.o"
  "CMakeFiles/hc_sim.dir/scheduler.cpp.o.d"
  "libhc_sim.a"
  "libhc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
