file(REMOVE_RECURSE
  "CMakeFiles/hc_common.dir/address.cpp.o"
  "CMakeFiles/hc_common.dir/address.cpp.o.d"
  "CMakeFiles/hc_common.dir/bytes.cpp.o"
  "CMakeFiles/hc_common.dir/bytes.cpp.o.d"
  "CMakeFiles/hc_common.dir/cid.cpp.o"
  "CMakeFiles/hc_common.dir/cid.cpp.o.d"
  "CMakeFiles/hc_common.dir/codec.cpp.o"
  "CMakeFiles/hc_common.dir/codec.cpp.o.d"
  "CMakeFiles/hc_common.dir/errors.cpp.o"
  "CMakeFiles/hc_common.dir/errors.cpp.o.d"
  "CMakeFiles/hc_common.dir/hash.cpp.o"
  "CMakeFiles/hc_common.dir/hash.cpp.o.d"
  "CMakeFiles/hc_common.dir/log.cpp.o"
  "CMakeFiles/hc_common.dir/log.cpp.o.d"
  "CMakeFiles/hc_common.dir/token.cpp.o"
  "CMakeFiles/hc_common.dir/token.cpp.o.d"
  "libhc_common.a"
  "libhc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
