file(REMOVE_RECURSE
  "CMakeFiles/hc_core.dir/checkpoint.cpp.o"
  "CMakeFiles/hc_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/hc_core.dir/crossmsg.cpp.o"
  "CMakeFiles/hc_core.dir/crossmsg.cpp.o.d"
  "CMakeFiles/hc_core.dir/fraud.cpp.o"
  "CMakeFiles/hc_core.dir/fraud.cpp.o.d"
  "CMakeFiles/hc_core.dir/light_client.cpp.o"
  "CMakeFiles/hc_core.dir/light_client.cpp.o.d"
  "CMakeFiles/hc_core.dir/params.cpp.o"
  "CMakeFiles/hc_core.dir/params.cpp.o.d"
  "CMakeFiles/hc_core.dir/policy.cpp.o"
  "CMakeFiles/hc_core.dir/policy.cpp.o.d"
  "CMakeFiles/hc_core.dir/subnet_id.cpp.o"
  "CMakeFiles/hc_core.dir/subnet_id.cpp.o.d"
  "libhc_core.a"
  "libhc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
