
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint.cpp" "src/core/CMakeFiles/hc_core.dir/checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/hc_core.dir/checkpoint.cpp.o.d"
  "/root/repo/src/core/crossmsg.cpp" "src/core/CMakeFiles/hc_core.dir/crossmsg.cpp.o" "gcc" "src/core/CMakeFiles/hc_core.dir/crossmsg.cpp.o.d"
  "/root/repo/src/core/fraud.cpp" "src/core/CMakeFiles/hc_core.dir/fraud.cpp.o" "gcc" "src/core/CMakeFiles/hc_core.dir/fraud.cpp.o.d"
  "/root/repo/src/core/light_client.cpp" "src/core/CMakeFiles/hc_core.dir/light_client.cpp.o" "gcc" "src/core/CMakeFiles/hc_core.dir/light_client.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/hc_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/hc_core.dir/params.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/hc_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/hc_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/subnet_id.cpp" "src/core/CMakeFiles/hc_core.dir/subnet_id.cpp.o" "gcc" "src/core/CMakeFiles/hc_core.dir/subnet_id.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/hc_chain.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
