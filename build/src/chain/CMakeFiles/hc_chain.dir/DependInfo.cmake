
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/block.cpp" "src/chain/CMakeFiles/hc_chain.dir/block.cpp.o" "gcc" "src/chain/CMakeFiles/hc_chain.dir/block.cpp.o.d"
  "/root/repo/src/chain/chainstore.cpp" "src/chain/CMakeFiles/hc_chain.dir/chainstore.cpp.o" "gcc" "src/chain/CMakeFiles/hc_chain.dir/chainstore.cpp.o.d"
  "/root/repo/src/chain/executor.cpp" "src/chain/CMakeFiles/hc_chain.dir/executor.cpp.o" "gcc" "src/chain/CMakeFiles/hc_chain.dir/executor.cpp.o.d"
  "/root/repo/src/chain/mempool.cpp" "src/chain/CMakeFiles/hc_chain.dir/mempool.cpp.o" "gcc" "src/chain/CMakeFiles/hc_chain.dir/mempool.cpp.o.d"
  "/root/repo/src/chain/message.cpp" "src/chain/CMakeFiles/hc_chain.dir/message.cpp.o" "gcc" "src/chain/CMakeFiles/hc_chain.dir/message.cpp.o.d"
  "/root/repo/src/chain/state.cpp" "src/chain/CMakeFiles/hc_chain.dir/state.cpp.o" "gcc" "src/chain/CMakeFiles/hc_chain.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hc_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
