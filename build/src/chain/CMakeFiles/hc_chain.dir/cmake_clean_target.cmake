file(REMOVE_RECURSE
  "libhc_chain.a"
)
