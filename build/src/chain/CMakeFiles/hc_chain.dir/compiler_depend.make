# Empty compiler generated dependencies file for hc_chain.
# This may be replaced when dependencies are built.
