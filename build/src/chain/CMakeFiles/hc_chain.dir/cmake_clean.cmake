file(REMOVE_RECURSE
  "CMakeFiles/hc_chain.dir/block.cpp.o"
  "CMakeFiles/hc_chain.dir/block.cpp.o.d"
  "CMakeFiles/hc_chain.dir/chainstore.cpp.o"
  "CMakeFiles/hc_chain.dir/chainstore.cpp.o.d"
  "CMakeFiles/hc_chain.dir/executor.cpp.o"
  "CMakeFiles/hc_chain.dir/executor.cpp.o.d"
  "CMakeFiles/hc_chain.dir/mempool.cpp.o"
  "CMakeFiles/hc_chain.dir/mempool.cpp.o.d"
  "CMakeFiles/hc_chain.dir/message.cpp.o"
  "CMakeFiles/hc_chain.dir/message.cpp.o.d"
  "CMakeFiles/hc_chain.dir/state.cpp.o"
  "CMakeFiles/hc_chain.dir/state.cpp.o.d"
  "libhc_chain.a"
  "libhc_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
