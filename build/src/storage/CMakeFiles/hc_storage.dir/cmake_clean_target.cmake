file(REMOVE_RECURSE
  "libhc_storage.a"
)
