file(REMOVE_RECURSE
  "CMakeFiles/hc_storage.dir/store.cpp.o"
  "CMakeFiles/hc_storage.dir/store.cpp.o.d"
  "libhc_storage.a"
  "libhc_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
