# Empty dependencies file for hc_consensus.
# This may be replaced when dependencies are built.
