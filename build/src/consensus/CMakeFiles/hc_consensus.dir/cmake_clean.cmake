file(REMOVE_RECURSE
  "CMakeFiles/hc_consensus.dir/engine.cpp.o"
  "CMakeFiles/hc_consensus.dir/engine.cpp.o.d"
  "CMakeFiles/hc_consensus.dir/lottery.cpp.o"
  "CMakeFiles/hc_consensus.dir/lottery.cpp.o.d"
  "CMakeFiles/hc_consensus.dir/poa.cpp.o"
  "CMakeFiles/hc_consensus.dir/poa.cpp.o.d"
  "CMakeFiles/hc_consensus.dir/rrbft.cpp.o"
  "CMakeFiles/hc_consensus.dir/rrbft.cpp.o.d"
  "CMakeFiles/hc_consensus.dir/tendermint.cpp.o"
  "CMakeFiles/hc_consensus.dir/tendermint.cpp.o.d"
  "CMakeFiles/hc_consensus.dir/wire.cpp.o"
  "CMakeFiles/hc_consensus.dir/wire.cpp.o.d"
  "libhc_consensus.a"
  "libhc_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hc_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
