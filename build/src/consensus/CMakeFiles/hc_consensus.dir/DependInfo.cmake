
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consensus/engine.cpp" "src/consensus/CMakeFiles/hc_consensus.dir/engine.cpp.o" "gcc" "src/consensus/CMakeFiles/hc_consensus.dir/engine.cpp.o.d"
  "/root/repo/src/consensus/lottery.cpp" "src/consensus/CMakeFiles/hc_consensus.dir/lottery.cpp.o" "gcc" "src/consensus/CMakeFiles/hc_consensus.dir/lottery.cpp.o.d"
  "/root/repo/src/consensus/poa.cpp" "src/consensus/CMakeFiles/hc_consensus.dir/poa.cpp.o" "gcc" "src/consensus/CMakeFiles/hc_consensus.dir/poa.cpp.o.d"
  "/root/repo/src/consensus/rrbft.cpp" "src/consensus/CMakeFiles/hc_consensus.dir/rrbft.cpp.o" "gcc" "src/consensus/CMakeFiles/hc_consensus.dir/rrbft.cpp.o.d"
  "/root/repo/src/consensus/tendermint.cpp" "src/consensus/CMakeFiles/hc_consensus.dir/tendermint.cpp.o" "gcc" "src/consensus/CMakeFiles/hc_consensus.dir/tendermint.cpp.o.d"
  "/root/repo/src/consensus/wire.cpp" "src/consensus/CMakeFiles/hc_consensus.dir/wire.cpp.o" "gcc" "src/consensus/CMakeFiles/hc_consensus.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chain/CMakeFiles/hc_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/hc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
