file(REMOVE_RECURSE
  "libhc_consensus.a"
)
