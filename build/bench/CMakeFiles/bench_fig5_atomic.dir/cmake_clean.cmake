file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_atomic.dir/bench_fig5_atomic.cpp.o"
  "CMakeFiles/bench_fig5_atomic.dir/bench_fig5_atomic.cpp.o.d"
  "bench_fig5_atomic"
  "bench_fig5_atomic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_atomic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
