# Empty dependencies file for bench_fig5_atomic.
# This may be replaced when dependencies are built.
