# Empty dependencies file for bench_abl_gossip.
# This may be replaced when dependencies are built.
