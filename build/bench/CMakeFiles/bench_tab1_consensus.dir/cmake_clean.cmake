file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_consensus.dir/bench_tab1_consensus.cpp.o"
  "CMakeFiles/bench_tab1_consensus.dir/bench_tab1_consensus.cpp.o.d"
  "bench_tab1_consensus"
  "bench_tab1_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
