# Empty dependencies file for bench_fig6_firewall.
# This may be replaced when dependencies are built.
