file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_firewall.dir/bench_fig6_firewall.cpp.o"
  "CMakeFiles/bench_fig6_firewall.dir/bench_fig6_firewall.cpp.o.d"
  "bench_fig6_firewall"
  "bench_fig6_firewall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_firewall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
