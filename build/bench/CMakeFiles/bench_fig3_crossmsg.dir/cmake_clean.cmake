file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_crossmsg.dir/bench_fig3_crossmsg.cpp.o"
  "CMakeFiles/bench_fig3_crossmsg.dir/bench_fig3_crossmsg.cpp.o.d"
  "bench_fig3_crossmsg"
  "bench_fig3_crossmsg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_crossmsg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
