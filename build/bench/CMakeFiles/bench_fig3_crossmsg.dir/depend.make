# Empty dependencies file for bench_fig3_crossmsg.
# This may be replaced when dependencies are built.
