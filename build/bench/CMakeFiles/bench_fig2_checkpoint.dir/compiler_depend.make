# Empty compiler generated dependencies file for bench_fig2_checkpoint.
# This may be replaced when dependencies are built.
