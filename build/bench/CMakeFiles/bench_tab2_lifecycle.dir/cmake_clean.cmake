file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_lifecycle.dir/bench_tab2_lifecycle.cpp.o"
  "CMakeFiles/bench_tab2_lifecycle.dir/bench_tab2_lifecycle.cpp.o.d"
  "bench_tab2_lifecycle"
  "bench_tab2_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
