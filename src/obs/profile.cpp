#include "obs/profile.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>

namespace hc::obs {
namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t next_profiler_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Thread cache: (profiler id -> arena). Ids are never reused, so a stale
/// entry for a destroyed profiler can never be matched — and is never
/// dereferenced. Tiny in practice (the singleton plus the odd test
/// instance), hence a linear scan.
struct TlsEntry {
  std::uint64_t profiler_id = 0;
  void* arena = nullptr;
};

/// glibc runs TLS destructors BEFORE static destructors inside exit(), and
/// bench sidecar writers profile-report from static destructors — so the
/// cache marks itself dead instead of leaving a freed vector behind. The
/// flag is trivially destructible and its TLS storage outlives the object,
/// so reading it after destruction stays well-behaved in practice (same
/// pattern libstdc++ uses for stream availability).
struct TlsCache {
  std::vector<TlsEntry> entries;
  bool alive = true;
  ~TlsCache() { alive = false; }
};
thread_local TlsCache t_cache;

}  // namespace

Profiler::~Profiler() = default;

Profiler& Profiler::instance() {
  // Leaked on purpose: bench sidecar writers run from static destructors
  // and must still be able to take a report.
  static Profiler* p = new Profiler();
  return *p;
}

PhaseId Profiler::phase(std::string_view name) {
  std::lock_guard<std::mutex> lk(m_);
  for (std::size_t i = 0; i < phase_names_.size(); ++i) {
    if (phase_names_[i] == name) return static_cast<PhaseId>(i);
  }
  phase_names_.emplace_back(name);
  return static_cast<PhaseId>(phase_names_.size() - 1);
}

std::size_t Profiler::phase_count() const {
  std::lock_guard<std::mutex> lk(m_);
  return phase_names_.size();
}

Profiler::Arena& Profiler::local_arena() {
  std::uint64_t id = id_.load(std::memory_order_acquire);
  if (id == 0) {
    // Lazily assigned under the registry mutex; racing threads agree
    // because only the first assignment sticks.
    std::lock_guard<std::mutex> lk(m_);
    id = id_.load(std::memory_order_relaxed);
    if (id == 0) {
      id = next_profiler_id();
      id_.store(id, std::memory_order_release);
    }
  }
  TlsCache& cache = t_cache;
  if (cache.alive) {
    for (const TlsEntry& e : cache.entries) {
      if (e.profiler_id == id) return *static_cast<Arena*>(e.arena);
    }
  }
  auto arena = std::make_unique<Arena>();
  Arena* raw = arena.get();
  {
    std::lock_guard<std::mutex> lk(m_);
    arenas_.push_back(std::move(arena));
  }
  // After the cache's TLS destructor has run (a scope in some static
  // destructor at process exit), fall through without caching: every such
  // enter gets a fresh registered arena instead of touching freed memory.
  if (cache.alive) cache.entries.push_back(TlsEntry{id, raw});
  return *raw;
}

std::uint32_t Profiler::push(Arena& arena, PhaseId id) {
  TreeNode& parent = arena.nodes[arena.current];
  for (const auto& [phase, child] : parent.children) {
    if (phase == id) return child;
  }
  const auto child = static_cast<std::uint32_t>(arena.nodes.size());
  // Note: this invalidates `parent`; re-index below.
  arena.nodes.push_back(TreeNode{id, arena.current, 0, 0, {}});
  arena.nodes[arena.current].children.emplace_back(id, child);
  return child;
}

void ProfileScope::enter(Profiler& profiler, PhaseId id) {
  if (arena_ != nullptr || !profiler.enabled() || id == kNoPhase) return;
  Profiler::Arena& arena = profiler.local_arena();
  prev_ = arena.current;
  node_ = Profiler::push(arena, id);
  arena.current = node_;
  arena_ = &arena;
  start_ns_ = now_ns();
}

void ProfileScope::exit() {
  if (arena_ == nullptr) return;
  const std::int64_t elapsed = now_ns() - start_ns_;
  Profiler::TreeNode& node = arena_->nodes[node_];
  node.total_ns += elapsed > 0 ? elapsed : 0;
  node.count += 1;
  arena_->current = prev_;
  arena_->scopes += 1;
  arena_ = nullptr;
}

std::int64_t ProfileScope::ns_since_enter() const {
  if (arena_ == nullptr) return 0;
  const std::int64_t d = now_ns() - start_ns_;
  return d > 0 ? d : 0;
}

std::int64_t Profiler::scope_cost_ns() {
  static const std::int64_t cost = [] {
    // Calibrates against an explicit arena, NOT ProfileScope: the first
    // call often comes from a static destructor (bench sidecar flush via
    // report()) when the thread-local arena cache is already gone. Each
    // iteration mirrors one enter/exit pair exactly — tree descent, a
    // clock read on enter, a clock read plus accumulate on exit.
    Arena arena;
    constexpr PhaseId a = 0;
    constexpr PhaseId b = 1;
    constexpr int kIters = 4096;
    const std::int64_t t0 = now_ns();
    for (int i = 0; i < kIters; ++i) {
      const std::uint32_t prev_a = arena.current;
      const std::uint32_t node_a = push(arena, a);
      arena.current = node_a;
      const std::int64_t start_a = now_ns();

      const std::uint32_t prev_b = arena.current;
      const std::uint32_t node_b = push(arena, b);
      arena.current = node_b;
      const std::int64_t start_b = now_ns();

      TreeNode& nb = arena.nodes[node_b];
      nb.total_ns += now_ns() - start_b;
      nb.count += 1;
      arena.current = prev_b;
      arena.scopes += 1;

      TreeNode& na = arena.nodes[node_a];
      na.total_ns += now_ns() - start_a;
      na.count += 1;
      arena.current = prev_a;
      arena.scopes += 1;
    }
    const std::int64_t t1 = now_ns();
    return std::max<std::int64_t>(1, (t1 - t0) / (2 * kIters));
  }();
  return cost;
}

// Report-time snapshot of one arena node: report() copies each arena into
// this POD form (arenas are quiescent in driver context).
struct Profiler::TreeNodePublic {
  PhaseId phase = kNoPhase;
  std::int64_t total_ns = 0;
  std::uint64_t count = 0;
  std::vector<std::uint32_t> children;
};

namespace {

/// Name-keyed accumulator tree the per-arena snapshots merge into.
struct MergeNode {
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  std::map<std::string, MergeNode> children;
};

void merge_into(const std::vector<Profiler::TreeNodePublic>& nodes,
                const std::vector<std::string>& names, std::uint32_t index,
                MergeNode& parent) {
  const Profiler::TreeNodePublic& n = nodes[index];
  MergeNode& m = parent.children[names[n.phase]];
  m.count += n.count;
  m.total_ns += n.total_ns;
  for (const std::uint32_t c : n.children) {
    merge_into(nodes, names, c, m);
  }
}

ProfileNode to_profile_node(const std::string& name, const MergeNode& m) {
  ProfileNode out;
  out.name = name;
  out.count = m.count;
  out.total_ns = m.total_ns;
  std::int64_t child_total = 0;
  for (const auto& [child_name, child] : m.children) {
    out.children.push_back(to_profile_node(child_name, child));
    child_total += child.total_ns;
  }
  out.self_ns = std::max<std::int64_t>(0, m.total_ns - child_total);
  return out;
}

void flatten(const ProfileNode& node, bool phase_on_path,
             std::map<std::string, PhaseStat>& flat,
             const std::string& phase_name) {
  // Helper is invoked once per (node, phase) pair via flatten_all below.
  const bool is_phase = node.name == phase_name;
  PhaseStat& stat = flat[phase_name];
  if (is_phase) {
    stat.self_ns += node.self_ns;
    stat.count += node.count;
    if (!phase_on_path) stat.total_ns += node.total_ns;  // outermost only
  }
  for (const ProfileNode& c : node.children) {
    flatten(c, phase_on_path || is_phase, flat, phase_name);
  }
}

void collect_names(const ProfileNode& node, std::map<std::string, bool>& names) {
  names[node.name] = true;
  for (const ProfileNode& c : node.children) collect_names(c, names);
}

}  // namespace

ProfileReport Profiler::report() const {
  // Snapshot arenas + names under the registry lock. Arena contents are
  // only written by their owner threads, which are parked in driver
  // context — the lock protects the arenas_/phase_names_ vectors, not the
  // trees.
  std::vector<std::vector<TreeNodePublic>> trees;
  std::vector<std::string> names;
  std::uint64_t scopes = 0;
  {
    std::lock_guard<std::mutex> lk(m_);
    names = phase_names_;
    for (const auto& arena : arenas_) {
      scopes += arena->scopes;
      std::vector<TreeNodePublic> tree(arena->nodes.size());
      for (std::size_t i = 0; i < arena->nodes.size(); ++i) {
        const TreeNode& n = arena->nodes[i];
        tree[i].phase = n.phase;
        tree[i].total_ns = n.total_ns;
        tree[i].count = n.count;
        for (const auto& [_, child] : n.children) {
          tree[i].children.push_back(child);
        }
      }
      trees.push_back(std::move(tree));
    }
  }

  MergeNode root;
  for (const auto& tree : trees) {
    if (tree.empty()) continue;
    for (const std::uint32_t c : tree[0].children) {
      merge_into(tree, names, c, root);
    }
  }

  ProfileReport out;
  out.scopes = scopes;
  out.overhead_ns_est =
      static_cast<std::int64_t>(scopes) * scope_cost_ns();
  for (const auto& [name, m] : root.children) {
    out.roots.push_back(to_profile_node(name, m));
    out.attributed_ns += m.total_ns;
  }

  std::map<std::string, bool> phase_names;
  for (const ProfileNode& r : out.roots) collect_names(r, phase_names);
  std::map<std::string, PhaseStat> flat;
  for (const auto& [name, _] : phase_names) {
    for (const ProfileNode& r : out.roots) {
      flatten(r, /*phase_on_path=*/false, flat, name);
    }
  }
  for (auto& [name, stat] : flat) {
    stat.name = name;
    out.phases.push_back(stat);
  }
  std::sort(out.phases.begin(), out.phases.end(),
            [](const PhaseStat& a, const PhaseStat& b) {
              if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
              return a.name < b.name;
            });
  return out;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lk(m_);
  for (auto& arena : arenas_) {
    for (TreeNode& n : arena->nodes) {
      n.total_ns = 0;
      n.count = 0;
    }
    arena->scopes = 0;
  }
}

// ------------------------------------------------------------- exporters

namespace {

double to_ms(std::int64_t ns) { return static_cast<double>(ns) / 1e6; }

void append_folded(std::string& out, const ProfileNode& node,
                   const std::string& prefix) {
  const std::string path =
      prefix.empty() ? node.name : prefix + ";" + node.name;
  if (node.self_ns > 0) {
    out += path;
    out += ' ';
    out += std::to_string(node.self_ns);
    out += '\n';
  }
  for (const ProfileNode& c : node.children) append_folded(out, c, path);
}

void append_json_node(std::string& out, const ProfileNode& node) {
  out += "{\"name\":\"" + node.name + "\",\"count\":" +
         std::to_string(node.count) +
         ",\"total_ns\":" + std::to_string(node.total_ns) +
         ",\"self_ns\":" + std::to_string(node.self_ns) + ",\"children\":[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i != 0) out += ',';
    append_json_node(out, node.children[i]);
  }
  out += "]}";
}

}  // namespace

std::string profile_top_table(const ProfileReport& report, std::size_t n) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-36s %10s %12s %12s %6s\n", "phase",
                "calls", "total(ms)", "self(ms)", "self%");
  out += line;
  const double attributed =
      report.attributed_ns > 0 ? static_cast<double>(report.attributed_ns)
                               : 1.0;
  std::size_t shown = 0;
  for (const PhaseStat& p : report.phases) {
    if (shown++ >= n) break;
    std::snprintf(line, sizeof(line), "%-36s %10llu %12.2f %12.2f %6.1f\n",
                  p.name.c_str(), static_cast<unsigned long long>(p.count),
                  to_ms(p.total_ns), to_ms(p.self_ns),
                  100.0 * static_cast<double>(p.self_ns) / attributed);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "attributed %.2f ms over %llu scopes "
                "(est. profiler overhead %.2f ms)\n",
                to_ms(report.attributed_ns),
                static_cast<unsigned long long>(report.scopes),
                to_ms(report.overhead_ns_est));
  out += line;
  return out;
}

std::string profile_to_folded(const ProfileReport& report) {
  std::string out;
  for (const ProfileNode& r : report.roots) append_folded(out, r, "");
  return out;
}

std::string profile_to_json(const ProfileReport& report) {
  std::string out = "{\"attributed_ns\":" +
                    std::to_string(report.attributed_ns) +
                    ",\"scopes\":" + std::to_string(report.scopes) +
                    ",\"overhead_ns_est\":" +
                    std::to_string(report.overhead_ns_est) + ",\"phases\":[";
  for (std::size_t i = 0; i < report.phases.size(); ++i) {
    const PhaseStat& p = report.phases[i];
    if (i != 0) out += ',';
    out += "{\"name\":\"" + p.name + "\",\"count\":" +
           std::to_string(p.count) +
           ",\"total_ns\":" + std::to_string(p.total_ns) +
           ",\"self_ns\":" + std::to_string(p.self_ns) + "}";
  }
  out += "],\"tree\":[";
  for (std::size_t i = 0; i < report.roots.size(); ++i) {
    if (i != 0) out += ',';
    append_json_node(out, report.roots[i]);
  }
  out += "]}";
  return out;
}

}  // namespace hc::obs
