#include "obs/trace.hpp"

namespace hc::obs {

bool Tracer::flow_begin(const std::string& key, std::string name,
                        std::string track, TraceArgs args) {
  const std::int64_t start = now();
  std::lock_guard<std::mutex> lk(m_);
  if (open_.count(key) != 0 || done_.count(key) != 0) return false;
  SpanRecord span;
  span.name = std::move(name);
  span.track = std::move(track);
  span.start = start;
  span.args = std::move(args);
  open_.emplace(key, spans_.size());
  spans_.push_back(std::move(span));
  return true;
}

std::optional<std::int64_t> Tracer::flow_end(const std::string& key,
                                             TraceArgs args) {
  const std::int64_t end = now();
  std::lock_guard<std::mutex> lk(m_);
  auto it = open_.find(key);
  if (it == open_.end()) return std::nullopt;
  SpanRecord& span = spans_[it->second];
  span.end = end;
  for (auto& kv : args) span.args.push_back(std::move(kv));
  open_.erase(it);
  done_.insert(key);
  return span.end - span.start;
}

void Tracer::flow_end_prefix(const std::string& prefix) {
  const std::int64_t end = now();
  std::lock_guard<std::mutex> lk(m_);
  // std::map iterates keys in order, so the open flows matching the prefix
  // form one contiguous range.
  auto it = open_.lower_bound(prefix);
  while (it != open_.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
    spans_[it->second].end = end;
    done_.insert(it->first);
    it = open_.erase(it);
  }
}

std::size_t Tracer::begin(std::string name, std::string track,
                          TraceArgs args) {
  SpanRecord span;
  span.name = std::move(name);
  span.track = std::move(track);
  span.start = now();
  span.args = std::move(args);
  std::lock_guard<std::mutex> lk(m_);
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

void Tracer::end(std::size_t index) {
  const std::int64_t end = now();
  std::lock_guard<std::mutex> lk(m_);
  if (index < spans_.size() && spans_[index].end < 0) {
    spans_[index].end = end;
  }
}

void Tracer::instant(std::string name, std::string track, TraceArgs args) {
  SpanRecord span;
  span.name = std::move(name);
  span.track = std::move(track);
  span.start = now();
  span.end = span.start;
  span.instant = true;
  span.args = std::move(args);
  std::lock_guard<std::mutex> lk(m_);
  spans_.push_back(std::move(span));
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(m_);
  spans_.clear();
  open_.clear();
  done_.clear();
}

}  // namespace hc::obs
