// The observability context threaded through the simulator.
//
// One Obs instance pairs the metrics registry with the tracer. A Hierarchy
// owns a fresh Obs per run (so exports are reproducible run-to-run);
// components constructed without an explicit context fall back to the
// process-wide default instance. Both registry and tracer are internally
// synchronized (see metrics.hpp / trace.hpp), so instruments can be
// updated from ParallelExecutor worker lanes and instrumentation never
// has to null-check.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hc::obs {

struct Obs {
  MetricsRegistry metrics;
  Tracer tracer;

  void clear() {
    metrics.clear();
    tracer.clear();
  }
};

/// Process-wide fallback instance.
[[nodiscard]] Obs& default_obs();

/// `candidate` when non-null, the process-wide instance otherwise.
[[nodiscard]] inline Obs& obs_or_default(Obs* candidate) {
  return candidate != nullptr ? *candidate : default_obs();
}

}  // namespace hc::obs
