#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>

namespace hc::obs {

Labels::Labels(std::initializer_list<Item> items) : items_(items) {
  rebuild();
}

Labels& Labels::add(std::string key, std::string value) {
  items_.emplace_back(std::move(key), std::move(value));
  rebuild();
  return *this;
}

void Labels::rebuild() {
  std::sort(items_.begin(), items_.end());
  canonical_.clear();
  for (const auto& [k, v] : items_) {
    if (!canonical_.empty()) canonical_ += ',';
    canonical_ += k;
    canonical_ += '=';
    canonical_ += v;
  }
}

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::observe(std::int64_t v) {
  // Inclusive upper edges: v lands in the first bucket with v <= bound.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  std::lock_guard<std::mutex> lk(m_);
  buckets_[idx] += 1;
  count_ += 1;
  sum_ += v;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lk(m_);
  return count_;
}

std::int64_t Histogram::sum() const {
  std::lock_guard<std::mutex> lk(m_);
  return sum_;
}

std::vector<std::uint64_t> Histogram::buckets() const {
  std::lock_guard<std::mutex> lk(m_);
  return buckets_;
}

const std::vector<std::int64_t>& latency_buckets_us() {
  static const std::vector<std::int64_t> kBuckets = {
      1000,      2000,      5000,      10000,     20000,    50000,
      100000,    200000,    500000,    1000000,   2000000,  5000000,
      10000000,  20000000,  50000000,  100000000};
  return kBuckets;
}

Counter& MetricsRegistry::counter(const std::string& family,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lk(m_);
  return counters_[family][labels.canonical()];
}

Gauge& MetricsRegistry::gauge(const std::string& family,
                              const Labels& labels) {
  std::lock_guard<std::mutex> lk(m_);
  return gauges_[family][labels.canonical()];
}

Histogram& MetricsRegistry::histogram(const std::string& family,
                                      const Labels& labels,
                                      const std::vector<std::int64_t>& bounds) {
  std::lock_guard<std::mutex> lk(m_);
  auto& by_label = histograms_[family];
  auto it = by_label
                .try_emplace(labels.canonical(),
                             bounds.empty() ? latency_buckets_us() : bounds)
                .first;
  return it->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& family,
                                             const Labels& labels) const {
  std::lock_guard<std::mutex> lk(m_);
  auto fit = counters_.find(family);
  if (fit == counters_.end()) return nullptr;
  auto it = fit->second.find(labels.canonical());
  return it == fit->second.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& family,
                                         const Labels& labels) const {
  std::lock_guard<std::mutex> lk(m_);
  auto fit = gauges_.find(family);
  if (fit == gauges_.end()) return nullptr;
  auto it = fit->second.find(labels.canonical());
  return it == fit->second.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& family,
                                                 const Labels& labels) const {
  std::lock_guard<std::mutex> lk(m_);
  auto fit = histograms_.find(family);
  if (fit == histograms_.end()) return nullptr;
  auto it = fit->second.find(labels.canonical());
  return it == fit->second.end() ? nullptr : &it->second;
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lk(m_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace hc::obs
