// Subnet-scoped metrics registry.
//
// Always-on instrumentation for the single-threaded simulator: counters,
// gauges and fixed-bucket histograms, labelable by subnet id (and any other
// dimension, e.g. engine type). Instrument handles returned by the registry
// are stable for the registry's lifetime, so hot paths pay one pointer
// dereference per update — the name/label lookup happens once at wiring
// time. All values are integers (simulated-time microseconds for latencies)
// so every export is byte-deterministic across identical runs.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace hc::obs {

/// A sorted, canonicalized label set, e.g. {subnet="/root/f0100",engine=...}.
class Labels {
 public:
  using Item = std::pair<std::string, std::string>;

  Labels() = default;
  Labels(std::initializer_list<Item> items);

  Labels& add(std::string key, std::string value);

  /// "engine=poa,subnet=/root" — keys sorted, empty for no labels. Used as
  /// the registry map key, so equal label sets always alias one instrument.
  [[nodiscard]] const std::string& canonical() const { return canonical_; }
  [[nodiscard]] const std::vector<Item>& items() const { return items_; }
  [[nodiscard]] bool empty() const { return items_.empty(); }

 private:
  void rebuild();

  std::vector<Item> items_;  // sorted by key
  std::string canonical_;
};

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A point-in-time level (queue depth, mempool occupancy).
class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  void add(std::int64_t d) { value_ += d; }
  [[nodiscard]] std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Fixed-bucket histogram. `bounds` are inclusive upper edges in ascending
/// order; one implicit +inf bucket catches the overflow. Designed for
/// simulated-time latencies (integer microseconds).
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void observe(std::int64_t v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::int64_t sum() const { return sum_; }
  [[nodiscard]] const std::vector<std::int64_t>& bounds() const {
    return bounds_;
  }
  /// bounds().size() + 1 entries; the last one is the +inf bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }

 private:
  std::vector<std::int64_t> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
};

/// Default bucket edges for simulated-time latencies: 1ms .. 100s, in µs.
[[nodiscard]] const std::vector<std::int64_t>& latency_buckets_us();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. References stay valid until clear()/destruction.
  Counter& counter(const std::string& family, const Labels& labels = {});
  Gauge& gauge(const std::string& family, const Labels& labels = {});
  /// `bounds` is consulted only when the instrument is first created;
  /// defaults to latency_buckets_us().
  Histogram& histogram(const std::string& family, const Labels& labels = {},
                       const std::vector<std::int64_t>& bounds = {});

  /// Lookup without creation; nullptr when absent. (Mainly for tests and
  /// exporter plumbing.)
  [[nodiscard]] const Counter* find_counter(const std::string& family,
                                            const Labels& labels = {}) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& family,
                                        const Labels& labels = {}) const;
  [[nodiscard]] const Histogram* find_histogram(
      const std::string& family, const Labels& labels = {}) const;

  /// Deterministic iteration for the exporters: family name sorted, then
  /// canonical label string sorted. The label map key is the canonical form.
  using CounterFamilies = std::map<std::string, std::map<std::string, Counter>>;
  using GaugeFamilies = std::map<std::string, std::map<std::string, Gauge>>;
  using HistogramFamilies =
      std::map<std::string, std::map<std::string, Histogram>>;
  [[nodiscard]] const CounterFamilies& counters() const { return counters_; }
  [[nodiscard]] const GaugeFamilies& gauges() const { return gauges_; }
  [[nodiscard]] const HistogramFamilies& histograms() const {
    return histograms_;
  }

  /// Drop every instrument (outstanding handles become dangling).
  void clear();

 private:
  CounterFamilies counters_;
  GaugeFamilies gauges_;
  HistogramFamilies histograms_;
};

}  // namespace hc::obs
