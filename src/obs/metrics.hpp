// Subnet-scoped metrics registry.
//
// Always-on instrumentation for the simulator: counters, gauges and
// fixed-bucket histograms, labelable by subnet id (and any other
// dimension, e.g. engine type). Instrument handles returned by the registry
// are stable for the registry's lifetime, so hot paths pay one pointer
// dereference per update — the name/label lookup happens once at wiring
// time. All values are integers (simulated-time microseconds for latencies)
// so every export is byte-deterministic across identical runs.
//
// Instruments are safe to update from ParallelExecutor worker lanes:
// counters and gauges are atomic, histograms take a short internal lock,
// and the registry's find-or-create paths are mutex-guarded (nodes create
// some instruments lazily from inside event callbacks). Sums and bucket
// tallies are order-insensitive, so exports stay byte-identical across
// worker counts.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hc::obs {

/// A sorted, canonicalized label set, e.g. {subnet="/root/f0100",engine=...}.
class Labels {
 public:
  using Item = std::pair<std::string, std::string>;

  Labels() = default;
  Labels(std::initializer_list<Item> items);

  Labels& add(std::string key, std::string value);

  /// "engine=poa,subnet=/root" — keys sorted, empty for no labels. Used as
  /// the registry map key, so equal label sets always alias one instrument.
  [[nodiscard]] const std::string& canonical() const { return canonical_; }
  [[nodiscard]] const std::vector<Item>& items() const { return items_; }
  [[nodiscard]] bool empty() const { return items_.empty(); }

 private:
  void rebuild();

  std::vector<Item> items_;  // sorted by key
  std::string canonical_;
};

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A point-in-time level (queue depth, mempool occupancy).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram. `bounds` are inclusive upper edges in ascending
/// order; one implicit +inf bucket catches the overflow. Designed for
/// simulated-time latencies (integer microseconds). Guarded by an internal
/// lock so lanes on different workers can observe concurrently.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(std::int64_t v);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] std::int64_t sum() const;
  [[nodiscard]] const std::vector<std::int64_t>& bounds() const {
    return bounds_;  // immutable after construction
  }
  /// bounds().size() + 1 entries; the last one is the +inf bucket.
  /// Returned by value: a consistent snapshot under the internal lock.
  [[nodiscard]] std::vector<std::uint64_t> buckets() const;

 private:
  mutable std::mutex m_;
  std::vector<std::int64_t> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
};

/// Default bucket edges for simulated-time latencies: 1ms .. 100s, in µs.
[[nodiscard]] const std::vector<std::int64_t>& latency_buckets_us();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. References stay valid until clear()/destruction
  /// (node-keyed std::map storage — insertion never moves instruments).
  Counter& counter(const std::string& family, const Labels& labels = {});
  Gauge& gauge(const std::string& family, const Labels& labels = {});
  /// `bounds` is consulted only when the instrument is first created;
  /// defaults to latency_buckets_us().
  Histogram& histogram(const std::string& family, const Labels& labels = {},
                       const std::vector<std::int64_t>& bounds = {});

  /// Lookup without creation; nullptr when absent. (Mainly for tests and
  /// exporter plumbing.)
  [[nodiscard]] const Counter* find_counter(const std::string& family,
                                            const Labels& labels = {}) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& family,
                                        const Labels& labels = {}) const;
  [[nodiscard]] const Histogram* find_histogram(
      const std::string& family, const Labels& labels = {}) const;

  /// Deterministic iteration for the exporters: family name sorted, then
  /// canonical label string sorted. The label map key is the canonical form.
  /// Iterate only from driver context (no lanes running) — exports happen
  /// between runs or at window barriers.
  using CounterFamilies = std::map<std::string, std::map<std::string, Counter>>;
  using GaugeFamilies = std::map<std::string, std::map<std::string, Gauge>>;
  using HistogramFamilies =
      std::map<std::string, std::map<std::string, Histogram>>;
  [[nodiscard]] const CounterFamilies& counters() const { return counters_; }
  [[nodiscard]] const GaugeFamilies& gauges() const { return gauges_; }
  [[nodiscard]] const HistogramFamilies& histograms() const {
    return histograms_;
  }

  /// Drop every instrument (outstanding handles become dangling).
  void clear();

 private:
  mutable std::mutex m_;
  CounterFamilies counters_;
  GaugeFamilies gauges_;
  HistogramFamilies histograms_;
};

}  // namespace hc::obs
