#include "obs/obs.hpp"

namespace hc::obs {

Obs& default_obs() {
  static Obs instance;
  return instance;
}

}  // namespace hc::obs
