// Hierarchical wall-clock profiler: where does the CPU time go?
//
// The metrics registry and tracer (metrics.hpp / trace.hpp) attribute
// *simulated* time and are part of the deterministic, replay-fingerprinted
// exports. This profiler is the opposite: it attributes REAL wall-clock
// time (std::chrono::steady_clock) to named phases — scheduler/dispatch,
// net/deliver, consensus/<engine>/step, chain/execute, crypto/verify,
// state/flush — so optimization work knows what to attack. Because wall
// time is inherently nondeterministic, profiler output is kept strictly
// OUT of the metrics registry, the tracer and every fingerprinted export;
// it only ever reaches the BENCH_*.profile.json / *.folded sidecars.
//
// Design constraints (DESIGN.md §13):
//   - Never perturb determinism. A scope reads the clock and writes to a
//     thread-private arena; it takes no locks on the hot path, allocates
//     only when a (parent, phase) pair is first seen, and cannot influence
//     event order. parallel_test passes with profiling enabled because the
//     profiler is invisible to everything the fingerprints cover.
//   - Low overhead: enter/exit is two steady_clock reads plus a short
//     linear scan of the parent's children. The report estimates its own
//     total overhead from a calibration loop so benches can assert it
//     stays below a few percent of runtime.
//   - Safe across ParallelExecutor lanes: each worker thread owns an
//     arena (a tree of (phase, parent) nodes); arenas are registered with
//     the profiler under a mutex on first use and merged by report() —
//     which must only run from driver context (no lanes executing), the
//     same discipline the registry's exporters already follow. Window
//     barriers establish exactly that context.
//
// Self vs cumulative time: arenas store a tree keyed by the scope *stack*
// (so recursion and shared phases stay distinguishable); cumulative time
// accumulates at each tree node, and self time falls out as
// total - sum(children). The flat per-phase table collapses recursion by
// counting only outermost instances toward a phase's cumulative total.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hc::obs {

/// Dense handle for an interned phase name. Resolve once at wiring time
/// (static local or constructor); never changes for a profiler's lifetime.
using PhaseId = std::uint32_t;

constexpr PhaseId kNoPhase = 0xffffffffu;

/// One node of the merged scope tree: a unique stack path.
struct ProfileNode {
  std::string name;
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;  // cumulative: includes children
  std::int64_t self_ns = 0;   // total minus instrumented children
  std::vector<ProfileNode> children;  // sorted by name
};

/// Flat per-phase roll-up across every stack position.
struct PhaseStat {
  std::string name;
  std::uint64_t count = 0;    // scope entries (recursive instances included)
  std::int64_t total_ns = 0;  // cumulative; recursion collapsed to outermost
  std::int64_t self_ns = 0;
};

/// Snapshot produced by Profiler::report(): merged across all arenas.
struct ProfileReport {
  std::vector<ProfileNode> roots;
  std::vector<PhaseStat> phases;  // sorted by self_ns descending
  /// Sum of root totals == sum of all self times: every nanosecond inside
  /// at least one scope, counted once.
  std::int64_t attributed_ns = 0;
  std::uint64_t scopes = 0;  // completed enter/exit pairs
  /// scopes * calibrated per-scope cost — the profiler's own footprint.
  std::int64_t overhead_ns_est = 0;

  [[nodiscard]] bool empty() const { return phases.empty(); }
};

class Profiler {
 public:
  Profiler() = default;
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// The process-wide profiler every instrumentation site records into.
  /// Deliberately leaked (like SigCache) so scopes in static destructors
  /// (bench ObsExporter flush) never observe a dead instance.
  [[nodiscard]] static Profiler& instance();

  /// Intern `name`, returning a stable id. Thread-safe; call at wiring
  /// time, not per scope.
  [[nodiscard]] PhaseId phase(std::string_view name);

  /// Number of interned phases so far.
  [[nodiscard]] std::size_t phase_count() const;

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Toggle recording. Scopes opened while disabled record nothing (their
  /// exits are no-ops even if re-enabled mid-scope). Driver context only.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Merge every thread arena into one report. Must run from driver
  /// context: no ParallelExecutor window may be executing (window
  /// barriers / run_until returns establish this). Open scopes are not
  /// counted until they close.
  [[nodiscard]] ProfileReport report() const;

  /// Zero every arena's accumulators (tree shapes are kept — cheaper than
  /// freeing and re-growing). Driver context only; no scope may be open.
  void reset();

  /// Measured cost of one enter/exit pair in ns (cached calibration loop
  /// over a scratch arena). Used for ProfileReport::overhead_ns_est.
  [[nodiscard]] static std::int64_t scope_cost_ns();

  /// Report-time POD snapshot of one arena node (defined in profile.cpp).
  struct TreeNodePublic;

 private:
  friend class ProfileScope;

  struct TreeNode {
    PhaseId phase = kNoPhase;
    std::uint32_t parent = 0;
    std::int64_t total_ns = 0;
    std::uint64_t count = 0;
    /// (phase -> node index); small, scanned linearly.
    std::vector<std::pair<PhaseId, std::uint32_t>> children;
  };

  /// One thread's private scope tree. Only its owner thread writes it;
  /// report()/reset() read it from driver context.
  struct Arena {
    Arena() { nodes.push_back(TreeNode{}); }  // [0] = synthetic root
    std::vector<TreeNode> nodes;
    std::uint32_t current = 0;  // index of the innermost open scope
    std::uint64_t scopes = 0;   // completed enter/exit pairs
  };

  /// This thread's arena in this profiler, creating + registering on
  /// first use.
  [[nodiscard]] Arena& local_arena();

  /// Descend from arena.current into `id`, creating the child on first
  /// use. Returns the child index.
  static std::uint32_t push(Arena& arena, PhaseId id);

  // Relaxed atomic: toggled only from driver context with no lanes
  // running; a stale read in a worker merely records (or skips) a scope —
  // never affects simulation state.
  std::atomic<bool> enabled_{true};
  /// Unique per instance (never reused), keys the thread-local arena
  /// cache. Lazily assigned on first scope.
  std::atomic<std::uint64_t> id_{0};

  mutable std::mutex m_;
  std::vector<std::string> phase_names_;
  std::vector<std::unique_ptr<Arena>> arenas_;
};

/// RAII scope. Two forms:
///   ProfileScope s(id);            // enter now
///   ProfileScope s; ... s.enter(id);  // deferred: enter only if work found
/// The deferred form lets dispatch loops avoid charging empty polls.
class ProfileScope {
 public:
  ProfileScope() = default;
  explicit ProfileScope(PhaseId id) { enter(id); }
  ProfileScope(Profiler& profiler, PhaseId id) { enter(profiler, id); }
  ~ProfileScope() { exit(); }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  void enter(PhaseId id) { enter(Profiler::instance(), id); }
  void enter(Profiler& profiler, PhaseId id);

  /// Close early (idempotent; the destructor is then a no-op).
  void exit();

  [[nodiscard]] bool active() const { return arena_ != nullptr; }

  /// Wall ns since enter() — one extra clock read; 0 when inactive.
  [[nodiscard]] std::int64_t ns_since_enter() const;

 private:
  Profiler::Arena* arena_ = nullptr;
  std::uint32_t prev_ = 0;
  std::uint32_t node_ = 0;
  std::int64_t start_ns_ = 0;
};

// ------------------------------------------------------------- exporters
// (Profiler output never joins the deterministic exports in export.hpp.)

/// Human-readable hotspot table of the top `n` phases by self time.
[[nodiscard]] std::string profile_top_table(const ProfileReport& report,
                                            std::size_t n = 10);

/// Folded-stack format ("a;b;c <self_ns>" per line), directly consumable
/// by flamegraph.pl / inferno / speedscope.
[[nodiscard]] std::string profile_to_folded(const ProfileReport& report);

/// JSON: {"attributed_ns":..,"scopes":..,"overhead_ns_est":..,
///        "phases":[{name,count,total_ns,self_ns}],"tree":[...nested...]}.
[[nodiscard]] std::string profile_to_json(const ProfileReport& report);

}  // namespace hc::obs
