#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

namespace hc::obs {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string quoted(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  append_escaped(out, s);
  out += '"';
  return out;
}

// Render a {family -> {labelset -> scalar}} map as a JSON object of objects.
template <typename Families, typename ValueFn>
void append_scalar_families(std::string& out, const Families& families,
                            ValueFn value_of) {
  out += '{';
  bool first_family = true;
  for (const auto& [family, by_label] : families) {
    if (!first_family) out += ',';
    first_family = false;
    out += quoted(family);
    out += ":{";
    bool first_label = true;
    for (const auto& [labelset, metric] : by_label) {
      if (!first_label) out += ',';
      first_label = false;
      out += quoted(labelset);
      out += ':';
      out += std::to_string(value_of(metric));
    }
    out += '}';
  }
  out += '}';
}

void append_int_array(std::string& out, const std::vector<std::int64_t>& xs) {
  out += '[';
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(xs[i]);
  }
  out += ']';
}

void append_u64_array(std::string& out, const std::vector<std::uint64_t>& xs) {
  out += '[';
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(xs[i]);
  }
  out += ']';
}

// "a=1,b=2" -> {a="1", b="2"}. The canonical form is produced by Labels
// itself; a value containing ',' or '=' cannot be split back apart, so the
// split is best-effort for such labels (documented limitation — the JSON
// export keeps the canonical string intact). Label NAMES are sanitized to
// the Prometheus charset and VALUES are escaped per the text exposition
// rules, so no registry content can break the exposition syntax.
std::string prometheus_labels(const std::string& canonical,
                              const std::string& extra = {}) {
  if (canonical.empty() && extra.empty()) return {};
  std::string out = "{";
  std::size_t pos = 0;
  bool first = true;
  while (pos < canonical.size()) {
    std::size_t comma = canonical.find(',', pos);
    if (comma == std::string::npos) comma = canonical.size();
    const std::size_t eq = canonical.find('=', pos);
    if (eq != std::string::npos && eq < comma) {
      if (!first) out += ',';
      first = false;
      out += prometheus_sanitize_label(canonical.substr(pos, eq - pos));
      out += "=\"";
      out += prometheus_escape_value(canonical.substr(eq + 1, comma - eq - 1));
      out += '"';
    }
    pos = comma + 1;
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

std::string sanitize_charset(const std::string& name, bool allow_colon) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' ||
                    (allow_colon && c == ':');
    out += ok ? c : '_';
  }
  if (out.empty() || (out.front() >= '0' && out.front() <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  append_escaped(out, s);
  return out;
}

std::string prometheus_sanitize_name(const std::string& name) {
  return sanitize_charset(name, /*allow_colon=*/true);
}

std::string prometheus_sanitize_label(const std::string& name) {
  return sanitize_charset(name, /*allow_colon=*/false);
}

std::string prometheus_escape_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string metrics_to_json(const MetricsRegistry& registry) {
  std::string out;
  out += "{\"counters\":";
  append_scalar_families(out, registry.counters(),
                         [](const Counter& c) { return c.value(); });
  out += ",\"gauges\":";
  append_scalar_families(out, registry.gauges(),
                         [](const Gauge& g) { return g.value(); });
  out += ",\"histograms\":{";
  bool first_family = true;
  for (const auto& [family, by_label] : registry.histograms()) {
    if (!first_family) out += ',';
    first_family = false;
    out += quoted(family);
    out += ":{";
    bool first_label = true;
    for (const auto& [labelset, h] : by_label) {
      if (!first_label) out += ',';
      first_label = false;
      out += quoted(labelset);
      out += ":{\"count\":";
      out += std::to_string(h.count());
      out += ",\"sum\":";
      out += std::to_string(h.sum());
      out += ",\"bounds\":";
      append_int_array(out, h.bounds());
      out += ",\"buckets\":";
      append_u64_array(out, h.buckets());
      out += '}';
    }
    out += '}';
  }
  out += "}}";
  return out;
}

std::string metrics_to_prometheus(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [raw_family, by_label] : registry.counters()) {
    const std::string family = prometheus_sanitize_name(raw_family);
    out += "# TYPE " + family + " counter\n";
    for (const auto& [labelset, c] : by_label) {
      out += family + prometheus_labels(labelset) + " " +
             std::to_string(c.value()) + "\n";
    }
  }
  for (const auto& [raw_family, by_label] : registry.gauges()) {
    const std::string family = prometheus_sanitize_name(raw_family);
    out += "# TYPE " + family + " gauge\n";
    for (const auto& [labelset, g] : by_label) {
      out += family + prometheus_labels(labelset) + " " +
             std::to_string(g.value()) + "\n";
    }
  }
  for (const auto& [raw_family, by_label] : registry.histograms()) {
    const std::string family = prometheus_sanitize_name(raw_family);
    out += "# TYPE " + family + " histogram\n";
    for (const auto& [labelset, h] : by_label) {
      std::uint64_t cumulative = 0;
      const auto& bounds = h.bounds();
      const auto& buckets = h.buckets();
      for (std::size_t i = 0; i < buckets.size(); ++i) {
        cumulative += buckets[i];
        const std::string le =
            i < bounds.size() ? std::to_string(bounds[i]) : std::string("+Inf");
        out += family + "_bucket" +
               prometheus_labels(labelset, "le=\"" + le + "\"") + " " +
               std::to_string(cumulative) + "\n";
      }
      out += family + "_sum" + prometheus_labels(labelset) + " " +
             std::to_string(h.sum()) + "\n";
      out += family + "_count" + prometheus_labels(labelset) + " " +
             std::to_string(h.count()) + "\n";
    }
  }
  return out;
}

std::string trace_to_chrome_json(const Tracer& tracer) {
  // Canonical span order: parallel lanes append to the tracer in
  // nondeterministic interleavings, so insertion order is not stable
  // across worker counts. Sorting by the full record content restores a
  // total order that depends only on what was traced, keeping the export
  // byte-identical between single- and multi-threaded runs.
  std::vector<const SpanRecord*> ordered;
  ordered.reserve(tracer.spans().size());
  for (const auto& span : tracer.spans()) ordered.push_back(&span);
  std::sort(ordered.begin(), ordered.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return std::tie(a->start, a->track, a->name, a->end, a->instant,
                              a->args) < std::tie(b->start, b->track, b->name,
                                                  b->end, b->instant, b->args);
            });

  // Dense tid per first-seen track (in canonical order), plus thread_name
  // metadata so the trace viewer shows the track string instead of a bare
  // number.
  std::map<std::string, int> tid_of;
  std::vector<std::string> track_order;
  for (const SpanRecord* span : ordered) {
    if (tid_of.emplace(span->track, static_cast<int>(track_order.size()))
            .second) {
      track_order.push_back(span->track);
    }
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < track_order.size(); ++i) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
           std::to_string(i) + ",\"args\":{\"name\":" + quoted(track_order[i]) +
           "}}";
  }
  for (const SpanRecord* span_ptr : ordered) {
    const SpanRecord& span = *span_ptr;
    if (!first) out += ',';
    first = false;
    const std::int64_t dur = span.end >= span.start ? span.end - span.start : 0;
    out += "{\"name\":" + quoted(span.name) + ",\"ph\":\"" +
           (span.instant ? 'i' : 'X') +
           "\",\"pid\":0,\"tid\":" + std::to_string(tid_of[span.track]) +
           ",\"ts\":" + std::to_string(span.start);
    if (span.instant) {
      out += ",\"s\":\"t\"";
    } else {
      out += ",\"dur\":" + std::to_string(dur);
    }
    if (!span.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [k, v] : span.args) {
        if (!first_arg) out += ',';
        first_arg = false;
        out += quoted(k);
        out += ':';
        out += quoted(v);
      }
      out += '}';
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << content;
  return static_cast<bool>(f);
}

}  // namespace hc::obs
