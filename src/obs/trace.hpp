// Trace spans keyed to simulated time.
//
// The tracer records two span shapes:
//   - scoped spans (begin()/end() returning an index) for nested,
//     single-component work on one track;
//   - keyed *flows* (flow_begin()/flow_end() addressed by a string key) for
//     protocol stages that start in one component and finish in another —
//     a cross-net message burned in a child and executed epochs later in an
//     ancestor, a checkpoint cut in the child chain and accepted by the
//     parent SCA.
//
// Flows double as a deduplication mechanism: every replica node of a subnet
// observes the same committed events, so the first observer wins and later
// begin/end calls for the same key are no-ops. flow_end() reports the span
// duration exactly once, which is what feeds the latency histograms.
//
// Tracks are free-form strings (one per subnet, plus "xnet" for end-to-end
// cross-net spans) and become named rows in the Chrome trace viewer.
//
// All record/close operations take a short internal lock so event lanes on
// different ParallelExecutor workers can trace concurrently. The exporter
// sorts spans canonically, so insertion interleaving never leaks into the
// output (flows racing on one key are separated by at least the executor's
// lookahead, which puts them in different windows — the winner is fixed).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace hc::obs {

using TraceArgs = std::vector<std::pair<std::string, std::string>>;

struct SpanRecord {
  std::string name;
  std::string track;
  std::int64_t start = 0;
  std::int64_t end = -1;  // -1 while still open
  bool instant = false;
  TraceArgs args;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Wire the simulated clock (sim::Scheduler::now). Without one, spans
  /// are stamped 0.
  void set_clock(std::function<std::int64_t()> clock) {
    clock_ = std::move(clock);
  }
  [[nodiscard]] std::int64_t now() const { return clock_ ? clock_() : 0; }

  // ------------------------------------------------------------- flows
  /// Open the keyed flow; no-op (returns false) when the key is already
  /// open or was already completed — the first observer wins.
  bool flow_begin(const std::string& key, std::string name, std::string track,
                  TraceArgs args = {});
  /// Close the keyed flow. Returns the span duration on the first close,
  /// nullopt on duplicates or unknown keys.
  std::optional<std::int64_t> flow_end(const std::string& key,
                                       TraceArgs args = {});
  /// Close every open flow whose key starts with `prefix` (e.g. all
  /// bottom-up window spans when their checkpoint is cut).
  void flow_end_prefix(const std::string& prefix);
  [[nodiscard]] bool flow_open(const std::string& key) const {
    std::lock_guard<std::mutex> lk(m_);
    return open_.count(key) != 0;
  }

  // ------------------------------------------------------ scoped spans
  /// Begin a span on `track`; returns its record index for end().
  std::size_t begin(std::string name, std::string track, TraceArgs args = {});
  void end(std::size_t index);

  /// A zero-duration marker.
  void instant(std::string name, std::string track, TraceArgs args = {});

  /// Raw span records in insertion order. Read only from driver context
  /// (no lanes running) — exporters canonicalize the order themselves.
  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return spans_; }
  void clear();

 private:
  mutable std::mutex m_;
  std::function<std::int64_t()> clock_;
  std::vector<SpanRecord> spans_;
  std::map<std::string, std::size_t> open_;  // flow key -> span index
  std::set<std::string> done_;               // completed flow keys
};

}  // namespace hc::obs
