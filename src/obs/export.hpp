// Exporters for the metrics registry and tracer.
//
// All three formats are deterministic: metric values are integers (simulated
// microseconds or counts), families and label sets iterate in std::map order,
// and spans are emitted in recording order. Two same-seed runs therefore
// produce byte-identical output, which the tests rely on.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hc::obs {

/// Escape a string for embedding inside a JSON string literal (quotes not
/// included).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Snapshot of every counter, gauge and histogram as a JSON object:
/// {"counters":{family:{labelset:value}},
///  "gauges":{...},
///  "histograms":{family:{labelset:{"count":..,"sum":..,
///                                  "bounds":[..],"buckets":[..]}}}}
[[nodiscard]] std::string metrics_to_json(const MetricsRegistry& registry);

/// Prometheus text exposition format (counters as `_total` convention is the
/// caller's naming concern; histograms expand to _bucket/_sum/_count with
/// cumulative le edges).
[[nodiscard]] std::string metrics_to_prometheus(const MetricsRegistry& registry);

/// Chrome trace-event JSON ("X" complete events, ts/dur in simulated µs,
/// one tid per track with thread_name metadata). Load via chrome://tracing
/// or https://ui.perfetto.dev. Spans still open are emitted with dur 0.
[[nodiscard]] std::string trace_to_chrome_json(const Tracer& tracer);

/// Write `content` to `path`, truncating. Returns false on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace hc::obs
