// Exporters for the metrics registry and tracer.
//
// All three formats are deterministic: metric values are integers (simulated
// microseconds or counts), families and label sets iterate in std::map order,
// and spans are emitted in recording order. Two same-seed runs therefore
// produce byte-identical output, which the tests rely on.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hc::obs {

/// Escape a string for embedding inside a JSON string literal (quotes not
/// included).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Sanitize a metric family name to the Prometheus charset
/// [a-zA-Z_:][a-zA-Z0-9_:]*. Invalid characters become '_'; an empty or
/// digit-leading name gains a '_' prefix. Idempotent.
[[nodiscard]] std::string prometheus_sanitize_name(const std::string& name);

/// Sanitize a label name to [a-zA-Z_][a-zA-Z0-9_]* (same rules; ':' is NOT
/// allowed in label names, unlike family names).
[[nodiscard]] std::string prometheus_sanitize_label(const std::string& name);

/// Escape a label value for the text exposition format: backslash, double
/// quote and newline get backslash-escaped; everything else (UTF-8
/// included) passes through verbatim, per the Prometheus spec.
[[nodiscard]] std::string prometheus_escape_value(const std::string& value);

/// Snapshot of every counter, gauge and histogram as a JSON object:
/// {"counters":{family:{labelset:value}},
///  "gauges":{...},
///  "histograms":{family:{labelset:{"count":..,"sum":..,
///                                  "bounds":[..],"buckets":[..]}}}}
[[nodiscard]] std::string metrics_to_json(const MetricsRegistry& registry);

/// Prometheus text exposition format (counters as `_total` convention is the
/// caller's naming concern; histograms expand to _bucket/_sum/_count with
/// cumulative le edges). Family and label names are sanitized to the
/// Prometheus charset and label values are escaped, so hostile or merely
/// unusual registry names cannot produce an unparseable exposition.
[[nodiscard]] std::string metrics_to_prometheus(const MetricsRegistry& registry);

/// Chrome trace-event JSON ("X" complete events, ts/dur in simulated µs,
/// one tid per track with thread_name metadata). Load via chrome://tracing
/// or https://ui.perfetto.dev. Spans still open are emitted with dur 0.
[[nodiscard]] std::string trace_to_chrome_json(const Tracer& tracer);

/// Write `content` to `path`, truncating. Returns false on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace hc::obs
