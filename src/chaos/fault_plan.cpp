#include "chaos/fault_plan.hpp"

#include <algorithm>
#include <string>

namespace hc::chaos {

const char* to_string(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kCrash:
      return "crash";
    case FaultEvent::Kind::kRestart:
      return "restart";
    case FaultEvent::Kind::kLinkFault:
      return "link-fault";
    case FaultEvent::Kind::kClearLinkFault:
      return "clear-link-fault";
    case FaultEvent::Kind::kNodeFault:
      return "node-fault";
    case FaultEvent::Kind::kClearNodeFault:
      return "clear-node-fault";
    case FaultEvent::Kind::kPartition:
      return "partition";
    case FaultEvent::Kind::kHeal:
      return "heal";
    case FaultEvent::Kind::kDropRate:
      return "drop-rate";
    case FaultEvent::Kind::kByzantine:
      return "byzantine";
    case FaultEvent::Kind::kClearByzantine:
      return "clear-byzantine";
    case FaultEvent::Kind::kSurge:
      return "surge";
  }
  return "unknown";
}

FaultPlan& FaultPlan::push(FaultEvent event) {
  events_.push_back(std::move(event));
  return *this;
}

FaultPlan& FaultPlan::crash(sim::Duration at, NodeRef n) {
  return crash(at, n, storage::DiskFault{});
}

FaultPlan& FaultPlan::crash(sim::Duration at, NodeRef n,
                            storage::DiskFault disk) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::kCrash;
  e.a = n;
  e.disk = disk;
  return push(e);
}

FaultPlan& FaultPlan::restart(sim::Duration at, NodeRef n) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::kRestart;
  e.a = n;
  return push(e);
}

FaultPlan& FaultPlan::link_fault(sim::Duration at, NodeRef a, NodeRef b,
                                 net::LinkFault fault) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::kLinkFault;
  e.a = a;
  e.b = b;
  e.fault = fault;
  return push(e);
}

FaultPlan& FaultPlan::clear_link_fault(sim::Duration at, NodeRef a,
                                       NodeRef b) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::kClearLinkFault;
  e.a = a;
  e.b = b;
  return push(e);
}

FaultPlan& FaultPlan::node_fault(sim::Duration at, NodeRef n,
                                 net::LinkFault fault) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::kNodeFault;
  e.a = n;
  e.fault = fault;
  return push(e);
}

FaultPlan& FaultPlan::clear_node_fault(sim::Duration at, NodeRef n) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::kClearNodeFault;
  e.a = n;
  return push(e);
}

FaultPlan& FaultPlan::partition(sim::Duration at,
                                std::vector<std::vector<NodeRef>> groups) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::kPartition;
  e.groups = std::move(groups);
  return push(std::move(e));
}

FaultPlan& FaultPlan::heal(sim::Duration at) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::kHeal;
  return push(e);
}

FaultPlan& FaultPlan::drop_rate(sim::Duration at, double p) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::kDropRate;
  e.drop_rate = p;
  return push(e);
}

FaultPlan& FaultPlan::byzantine(sim::Duration at, NodeRef n,
                                runtime::ByzantineBehavior behavior) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::kByzantine;
  e.a = n;
  e.behavior = behavior;
  return push(e);
}

FaultPlan& FaultPlan::clear_byzantine(sim::Duration at, NodeRef n) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::kClearByzantine;
  e.a = n;
  return push(e);
}

FaultPlan& FaultPlan::surge(sim::Duration at, NodeRef n, std::size_t senders,
                            std::size_t messages_each) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultEvent::Kind::kSurge;
  e.a = n;
  e.surge_senders = senders;
  e.surge_messages = messages_each;
  return push(e);
}

sim::Duration FaultPlan::horizon() const {
  sim::Duration h = 0;
  for (const auto& e : events_) h = std::max(h, e.at);
  return h;
}

namespace {

net::NodeId resolve(const runtime::Hierarchy& h, NodeRef ref) {
  return h.subnets().at(ref.subnet)->node_ids.at(ref.node);
}

std::string ref_string(NodeRef ref) {
  return std::to_string(ref.subnet) + "/" + std::to_string(ref.node);
}

void apply(const FaultEvent& e, runtime::Hierarchy& h) {
  net::Network& net = h.network();
  switch (e.kind) {
    case FaultEvent::Kind::kCrash:
      (void)h.crash_node(*h.subnets().at(e.a.subnet), e.a.node, e.disk);
      break;
    case FaultEvent::Kind::kRestart:
      (void)h.restart_node(*h.subnets().at(e.a.subnet), e.a.node);
      break;
    case FaultEvent::Kind::kLinkFault:
      net.set_link_fault(resolve(h, e.a), resolve(h, e.b), e.fault);
      break;
    case FaultEvent::Kind::kClearLinkFault:
      net.clear_link_fault(resolve(h, e.a), resolve(h, e.b));
      break;
    case FaultEvent::Kind::kNodeFault:
      net.set_node_fault(resolve(h, e.a), e.fault);
      break;
    case FaultEvent::Kind::kClearNodeFault:
      net.clear_node_fault(resolve(h, e.a));
      break;
    case FaultEvent::Kind::kPartition: {
      std::vector<std::vector<net::NodeId>> groups;
      groups.reserve(e.groups.size());
      for (const auto& g : e.groups) {
        std::vector<net::NodeId> ids;
        ids.reserve(g.size());
        for (NodeRef r : g) ids.push_back(resolve(h, r));
        groups.push_back(std::move(ids));
      }
      net.set_partition(groups);
      break;
    }
    case FaultEvent::Kind::kHeal:
      net.heal_partition();
      break;
    case FaultEvent::Kind::kDropRate:
      net.set_drop_rate(e.drop_rate);
      break;
    case FaultEvent::Kind::kByzantine:
    case FaultEvent::Kind::kClearByzantine: {
      // Arming survives on the node object only; a validator that crashes
      // and restarts comes back honest (state loss includes its malice).
      if (e.a.subnet >= h.subnets().size()) break;
      runtime::Subnet& subnet = *h.subnets()[e.a.subnet];
      if (subnet.alive(e.a.node)) {
        subnet.node(e.a.node).set_byzantine(
            e.kind == FaultEvent::Kind::kByzantine
                ? e.behavior
                : runtime::ByzantineBehavior::kNone);
      }
      break;
    }
    case FaultEvent::Kind::kSurge: {
      if (e.a.subnet >= h.subnets().size()) break;
      runtime::Subnet& subnet = *h.subnets()[e.a.subnet];
      if (!subnet.alive(e.a.node)) break;
      runtime::SubnetNode& node = subnet.node(e.a.node);
      // Sign + submit inside the node's lane (post), like LoadGenerator:
      // the surge is per-subnet work and must replay identically at any
      // thread count. Senders are unfunded — the point is admission
      // pressure; whatever is admitted and included simply fails to pay.
      for (std::size_t s = 0; s < e.surge_senders; ++s) {
        const auto key = crypto::KeyPair::from_label(
            "chaos/surge/" + std::to_string(e.a.subnet) + "/" +
            std::to_string(s));
        const Address from = Address::key(key.public_key().to_bytes());
        node.post(0, [&node, key, from, n = e.surge_messages] {
          for (std::size_t i = 0; i < n; ++i) {
            chain::Message m;
            m.from = from;
            m.to = from;
            m.nonce = i;
            m.gas_limit = 1u << 22;
            m.gas_price = TokenAmount::atto(1);
            (void)node.submit_message(
                chain::SignedMessage::sign(std::move(m), key));
          }
        });
      }
      break;
    }
  }
}

}  // namespace

void arm(const FaultPlan& plan, runtime::Hierarchy& hierarchy) {
  for (const FaultEvent& event : plan.events()) {
    hierarchy.scheduler().schedule(event.at, [event, &hierarchy] {
      apply(event, hierarchy);
      obs::Obs& obs = hierarchy.obs();
      obs.metrics
          .counter("chaos_faults_injected_total",
                   obs::Labels{{"kind", to_string(event.kind)}})
          .inc();
      obs.tracer.instant(std::string("chaos.") + to_string(event.kind),
                         "chaos", {{"target", ref_string(event.a)}});
    });
  }
}

}  // namespace hc::chaos
