// ChaosRunner: scenario x seed sweeps with invariant checking.
//
// Each run builds a fresh hierarchy (root + children + optionally a nested
// grandchild) from the seed, drives a deterministic cross-net workload,
// arms the scenario's FaultPlan, heals every fault at the end of the
// window (restarting any validator the plan left crashed), waits for
// quiescence, and evaluates the invariants in src/chaos/invariants.hpp.
// Everything — topology, workload, fault dice, metric exports — derives
// from the seed, so a scenario/seed pair is exactly reproducible: two runs
// yield byte-identical metrics JSON and identical state-root fingerprints.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/invariants.hpp"

namespace hc::chaos {

struct RunnerConfig {
  // ---- topology
  std::size_t root_validators = 3;
  std::size_t children = 2;          ///< subnets spawned under the root
  std::size_t child_validators = 3;
  /// Spawn one grandchild under the first child (exercises multi-hop
  /// routing and checkpoint commit at every ancestor). 0 or 1.
  std::size_t nested = 0;
  std::uint32_t checkpoint_period = 5;
  sim::Duration block_time = 100 * sim::kMillisecond;

  // ---- phases (simulated time)
  sim::Duration warmup = 2 * sim::kSecond;   ///< healthy run-in before faults
  sim::Duration fault_window = 10 * sim::kSecond;
  sim::Duration settle = 240 * sim::kSecond;  ///< max wait for quiescence

  // ---- workload injected during the fault window
  std::size_t transfer_rounds = 2;
  TokenAmount transfer = TokenAmount::whole(3);

  // ---- overload (DESIGN.md §14)
  /// Mempool capacity installed on every node. The defaults sit far above
  /// anything the standard workload queues, so only the surge scenario
  /// (and any caller opting into tighter caps) ever sheds.
  chain::MempoolConfig mempool{512, 128, 1024};
  /// Surge shape: senders x messages flooded at the first child's node 0
  /// by the surge-overload scenario.
  std::size_t surge_senders = 8;
  std::size_t surge_messages = 200;

  // ---- durability (DESIGN.md §15)
  /// Give every validator a durable WAL; crash_node damages the disk per
  /// the scenario's DiskFault and restart_node recovers by WAL replay.
  /// Off by default so the pre-durability scenario sets keep their exact
  /// behavior; the recovery scenario set requires it.
  bool durability = false;
  /// Lazy fsync cadence for block records when durability is on.
  std::uint32_t wal_fsync_every_blocks = 4;
  /// Resolved-content cache cap installed on every node (0 = unbounded).
  /// The recovery sweep bounds it; the bounded-queues invariant then
  /// asserts the observed peaks.
  common::CapacityPolicy content_store;

  // ---- byzantine expectations
  /// Stake each child validator joins with (collateral at risk per head).
  TokenAmount validator_stake = TokenAmount::whole(5);
  /// Every injected equivocation must be slashed within this many
  /// checkpoint periods of simulated time (mean bound, checked against the
  /// fraud_detection_latency_us histogram).
  std::uint32_t detect_bound_periods = 8;

  // ---- execution
  /// Worker threads for the hierarchy's windowed executor. Any value must
  /// reproduce the 1-thread fingerprints bit-for-bit (DESIGN.md §11);
  /// tests/parallel_test.cpp sweeps this knob to prove it.
  std::size_t threads = 1;
};

/// A named fault timeline. `plan` builds the timeline for one run; offsets
/// are relative to the end of warmup. Plans address nodes as NodeRef
/// {subnet index, validator slot}: 0 = root, 1..children = children in
/// spawn order, then the nested grandchild (when enabled).
/// What a Byzantine scenario must have caused by the end of the run; the
/// runner verifies this AFTER the standard invariants, so "slashing worked"
/// and "the system stayed safe" are checked together.
struct ByzantineExpectation {
  /// Validators expected slashed — exactly these, exactly once each.
  /// Everyone else's collateral must be untouched.
  std::vector<NodeRef> guilty;
  /// Subnet indexes expected deactivated (collateral < min_collateral).
  std::vector<std::size_t> deactivated;
};

struct Scenario {
  std::string name;
  std::string description;
  std::function<FaultPlan(const RunnerConfig&)> plan;
  /// Present on adversary scenarios: slash/deactivation postconditions.
  std::optional<ByzantineExpectation> byzantine;
};

struct RunResult {
  std::string scenario;
  std::uint64_t seed = 0;
  bool converged = false;  ///< reached quiescence before the settle deadline
  InvariantReport report;
  std::uint64_t faults_injected = 0;
  /// One line per subnet: "<id>@<height>=<state root>", deterministic.
  std::string state_roots;
  /// Full deterministic metrics export (obs::metrics_to_json).
  std::string metrics_json;
  /// FNV-1a over state roots + metrics + trace export; equal fingerprints
  /// mean byte-identical runs.
  std::uint64_t fingerprint = 0;

  [[nodiscard]] bool ok() const { return converged && report.ok(); }
  /// Human-readable one-line verdict for logs and bench output.
  [[nodiscard]] std::string summary() const;
};

class ChaosRunner {
 public:
  explicit ChaosRunner(RunnerConfig config = {});

  /// Execute one scenario under one seed.
  [[nodiscard]] RunResult run(const Scenario& scenario, std::uint64_t seed);

  /// The full sweep: every scenario under every seed.
  [[nodiscard]] std::vector<RunResult> sweep(
      const std::vector<Scenario>& scenarios,
      const std::vector<std::uint64_t>& seeds);

  /// The stock scenario set (>= 6): baseline, sustained 20% loss,
  /// child-subnet partition across the signing window, crash+restart of a
  /// checkpoint signer, crash+restart of a parent-view root validator,
  /// a gray child validator, and duplicate/reorder storms at the root.
  [[nodiscard]] static std::vector<Scenario> standard_scenarios();

  /// Byzantine adversary scenarios (DESIGN.md adversary model): checkpoint
  /// equivocation, forged cross-msg value, collateral collapse with subnet
  /// deactivation, checkpoint withholding, stale re-submission, and a
  /// depth-2 equivocation. The depth-2 scenario requires `nested = 1`; the
  /// collapse scenario requires `children >= 2`.
  [[nodiscard]] static std::vector<Scenario> byzantine_scenarios();

  /// Crash/recovery scenarios over durable disks (DESIGN.md §15): disk
  /// intact, power loss (un-fsynced suffix gone), torn tail, bit-flip
  /// corruption, total disk loss, and a double restart within one subnet.
  /// Require `durability = true`; the runner asserts the §15 recovery
  /// invariants plus zero slash records (an honest validator must never be
  /// slashed for "equivocating with its pre-crash self").
  [[nodiscard]] static std::vector<Scenario> recovery_scenarios();

  [[nodiscard]] const RunnerConfig& config() const { return config_; }

 private:
  RunnerConfig config_;
};

}  // namespace hc::chaos
