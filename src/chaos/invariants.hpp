// System-wide safety invariants checked after every chaos run.
//
// The checks encode what the paper guarantees must survive arbitrary
// crash/partition/loss faults:
//   - firewall / supply conservation (§II): for every tree edge, the
//     parent-side circulating supply equals the child chain's live supply
//     (total balance minus burnt funds);
//   - no account balance ever goes negative;
//   - no cross-net message is stuck forever once faults heal (every
//     top-down queue fully applied, every adopted bottom-up meta executed,
//     no window residue);
//   - the checkpoint chain commits at every ancestor edge;
//   - all alive replicas of a subnet agree on their common chain prefix.
#pragma once

#include <string>
#include <vector>

#include "runtime/hierarchy.hpp"

namespace hc::chaos {

struct InvariantReport {
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Quiescence predicate: every cross-net queue is drained, at least one
/// checkpoint committed on every edge, and the firewall equality holds
/// everywhere. Poll this (Hierarchy::run_until) after healing all faults;
/// once it turns true the full invariant check below must pass.
[[nodiscard]] bool quiescent(const runtime::Hierarchy& hierarchy);

/// Evaluate every invariant and report all violations (empty = healthy).
[[nodiscard]] InvariantReport check_invariants(
    const runtime::Hierarchy& hierarchy);

}  // namespace hc::chaos
