#include "chaos/runner.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "actors/methods.hpp"
#include "obs/export.hpp"

namespace hc::chaos {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

core::SubnetParams chaos_params(const RunnerConfig& cfg) {
  core::SubnetParams p;
  p.name = "chaos";
  p.consensus = core::ConsensusType::kPoaRoundRobin;
  p.min_validator_stake = TokenAmount::whole(5);
  p.min_collateral = TokenAmount::whole(10);
  p.checkpoint_period = cfg.checkpoint_period;
  // Threshold 2 so checkpoint quorum needs shares from more than one
  // validator — signature collection itself is under test.
  p.checkpoint_policy =
      core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, 2};
  return p;
}

consensus::EngineConfig chaos_engine(const RunnerConfig& cfg) {
  consensus::EngineConfig e;
  e.block_time = cfg.block_time;
  e.timeout_base = 3 * cfg.block_time;
  return e;
}

std::vector<NodeRef> whole_subnet(std::size_t subnet, std::size_t n) {
  std::vector<NodeRef> refs;
  refs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) refs.push_back(NodeRef{subnet, i});
  return refs;
}

/// Evaluate a Byzantine scenario's postconditions: exactly the guilty
/// slashed (once each), honest collateral untouched, deactivations as
/// expected, detection within the latency bound, local proof queues
/// drained. Appends violations to `report`.
void check_byzantine(runtime::Hierarchy& h, const RunnerConfig& cfg,
                     const ByzantineExpectation& exp,
                     InvariantReport& report) {
  std::map<std::size_t, std::vector<crypto::PublicKey>> expected;
  for (const NodeRef& ref : exp.guilty) {
    if (ref.subnet >= h.subnets().size()) {
      report.violations.push_back("byzantine expectation names subnet " +
                                  std::to_string(ref.subnet) +
                                  " absent from the topology");
      return;
    }
    expected[ref.subnet].push_back(
        h.subnets()[ref.subnet]->validator_keys.at(ref.node).public_key());
  }
  const auto deadline = static_cast<std::int64_t>(cfg.detect_bound_periods) *
                        static_cast<std::int64_t>(cfg.checkpoint_period) *
                        static_cast<std::int64_t>(cfg.block_time);

  for (std::size_t s = 1; s < h.subnets().size(); ++s) {
    runtime::Subnet& subnet = *h.subnets()[s];
    const std::string tag = subnet.id.to_string();
    const auto parent_sca = subnet.parent->api_node().sca_state();
    const auto guilty_it = expected.find(s);
    const std::vector<crypto::PublicKey> no_guilty;
    const std::vector<crypto::PublicKey>& guilty =
        guilty_it == expected.end() ? no_guilty : guilty_it->second;
    const auto is_guilty = [&](const crypto::PublicKey& k) {
      return std::find(guilty.begin(), guilty.end(), k) != guilty.end();
    };

    // ---- exactly the guilty slashed, each exactly once
    std::vector<actors::SlashRecord> records;
    for (const auto& r : parent_sca.slash_records) {
      if (r.subnet == subnet.id) records.push_back(r);
    }
    if (records.size() != guilty.size()) {
      report.violations.push_back(
          tag + ": " + std::to_string(records.size()) +
          " slash records on-chain, expected " +
          std::to_string(guilty.size()));
    }
    for (const auto& key : guilty) {
      const auto hits = std::count_if(
          records.begin(), records.end(),
          [&](const actors::SlashRecord& r) { return r.signer == key; });
      if (hits != 1) {
        report.violations.push_back(tag + ": guilty validator slashed " +
                                    std::to_string(hits) +
                                    " times, expected exactly once");
      }
    }
    for (const auto& r : records) {
      if (!is_guilty(r.signer)) {
        report.violations.push_back(tag +
                                    ": slash record for an honest validator");
      }
    }

    // ---- guilty expelled from the SA, honest collateral untouched
    const auto sa = subnet.parent->api_node().sa_state(subnet.sa);
    if (!sa.has_value()) {
      report.violations.push_back(tag + ": SA state unreadable at parent");
      continue;
    }
    for (const auto& kp : subnet.validator_keys) {
      const crypto::PublicKey key = kp.public_key();
      const auto it = std::find_if(
          sa->validators.begin(), sa->validators.end(),
          [&](const actors::ValidatorInfo& v) { return v.pubkey == key; });
      if (is_guilty(key)) {
        if (it != sa->validators.end()) {
          report.violations.push_back(
              tag + ": slashed validator still in the SA validator set");
        }
      } else {
        if (it == sa->validators.end()) {
          report.violations.push_back(
              tag + ": honest validator missing from the SA validator set");
        } else if (it->stake != cfg.validator_stake) {
          report.violations.push_back(
              tag + ": honest validator stake changed to " +
              it->stake.to_string());
        }
      }
    }

    // ---- deactivation exactly where expected
    const auto* entry = parent_sca.find_subnet(subnet.sa);
    const bool want_inactive =
        std::find(exp.deactivated.begin(), exp.deactivated.end(), s) !=
        exp.deactivated.end();
    if (entry == nullptr) {
      report.violations.push_back(tag + ": no parent SCA entry");
    } else {
      const bool inactive = entry->status != core::SubnetStatus::kActive;
      if (inactive != want_inactive) {
        report.violations.push_back(
            tag + (inactive ? ": unexpectedly deactivated"
                            : ": expected deactivation did not happen"));
      }
    }

    // ---- detection: one closed fraud flow per slashed signer, and the
    // mean latency within the configured period bound
    const auto* hist = h.obs().metrics.find_histogram(
        "fraud_detection_latency_us", obs::Labels{{"subnet", tag}});
    const std::uint64_t detected = hist == nullptr ? 0 : hist->count();
    if (detected != guilty.size()) {
      report.violations.push_back(
          tag + ": " + std::to_string(detected) +
          " fraud detections recorded, expected " +
          std::to_string(guilty.size()));
    }
    if (hist != nullptr && hist->count() > 0 &&
        hist->sum() >
            deadline * static_cast<std::int64_t>(hist->count())) {
      report.violations.push_back(
          tag + ": mean fraud detection latency " +
          std::to_string(hist->sum() /
                         static_cast<std::int64_t>(hist->count())) +
          "us exceeds the " + std::to_string(cfg.detect_bound_periods) +
          "-period bound");
    }

    // ---- every watcher's local proof queue drained by quiescence
    for (std::size_t i = 0; i < subnet.size(); ++i) {
      if (!subnet.alive(i)) continue;
      if (subnet.node(i).pending_fraud_proofs() != 0) {
        report.violations.push_back(
            tag + " node " + std::to_string(i) +
            ": fraud proofs still pending after settle");
      }
    }
  }
}

}  // namespace

std::string RunResult::summary() const {
  std::string s = scenario + " seed=" + std::to_string(seed) +
                  (ok() ? " OK" : " FAIL");
  if (!converged) s += " (no quiescence before deadline)";
  if (!report.ok()) s += " [" + report.to_string() + "]";
  return s;
}

ChaosRunner::ChaosRunner(RunnerConfig config) : config_(std::move(config)) {}

RunResult ChaosRunner::run(const Scenario& scenario, std::uint64_t seed) {
  RunResult out;
  out.scenario = scenario.name;
  out.seed = seed;

  runtime::HierarchyConfig cfg;
  cfg.seed = seed;
  cfg.latency = sim::LatencyModel(2 * sim::kMillisecond, sim::kMillisecond);
  cfg.root_params = chaos_params(config_);
  cfg.root_validators = config_.root_validators;
  cfg.root_engine = chaos_engine(config_);
  cfg.threads = config_.threads;
  cfg.mempool = config_.mempool;
  cfg.content_store = config_.content_store;
  cfg.durability.enabled = config_.durability;
  cfg.durability.fsync_every_blocks = config_.wal_fsync_every_blocks;
  runtime::Hierarchy h(cfg);

  // ---- topology: children under the root, optional nested grandchild.
  for (std::size_t c = 0; c < config_.children; ++c) {
    auto spawned = h.spawn_subnet(h.root(), "c" + std::to_string(c),
                                  chaos_params(config_),
                                  config_.child_validators,
                                  config_.validator_stake,
                                  chaos_engine(config_));
    if (!spawned.ok()) {
      out.report.violations.push_back("spawn failed: " +
                                      spawned.error().to_string());
      return out;
    }
  }
  if (config_.nested > 0 && config_.children > 0) {
    auto spawned = h.spawn_subnet(*h.subnets().at(1), "g0",
                                  chaos_params(config_),
                                  config_.child_validators,
                                  config_.validator_stake,
                                  chaos_engine(config_));
    if (!spawned.ok()) {
      out.report.violations.push_back("nested spawn failed: " +
                                      spawned.error().to_string());
      return out;
    }
  }

  // ---- workload identities: a root spender, one funded user per non-root
  // subnet (funded top-down so the transfer machinery is primed), and one
  // root-side sink per subnet for bottom-up releases.
  auto root_user = h.make_user("chaos-root", TokenAmount::whole(500));
  if (!root_user.ok()) {
    out.report.violations.push_back("root user funding failed");
    return out;
  }
  struct LocalUser {
    runtime::Subnet* subnet;
    runtime::User user;
    Address sink;
  };
  std::vector<LocalUser> locals;
  for (std::size_t s = 1; s < h.subnets().size(); ++s) {
    runtime::Subnet* subnet = h.subnets()[s].get();
    LocalUser lu;
    lu.subnet = subnet;
    lu.user.key =
        crypto::KeyPair::from_label("chaos/user/" + std::to_string(s));
    lu.user.addr = Address::key(lu.user.key.public_key().to_bytes());
    lu.sink = Address::key(
        crypto::KeyPair::from_label("chaos/sink/" + std::to_string(s))
            .public_key()
            .to_bytes());
    auto r = h.send_cross(h.root(), root_user.value(), subnet->id,
                          lu.user.addr, TokenAmount::whole(40));
    if (!r.ok() || !r.value().ok()) {
      out.report.violations.push_back("seed funding for " +
                                      subnet->id.to_string() + " failed");
      return out;
    }
    if (!h.run_until(
            [&] {
              return subnet->api_node().balance(lu.user.addr) >=
                     TokenAmount::whole(40);
            },
            120 * sim::kSecond)) {
      out.report.violations.push_back("seed funding for " +
                                      subnet->id.to_string() + " stalled");
      return out;
    }
    locals.push_back(std::move(lu));
  }

  h.run_for(config_.warmup);

  // ---- arm the fault timeline and drive the workload through it.
  const FaultPlan plan = scenario.plan(config_);
  arm(plan, h);
  out.faults_injected = plan.events().size();

  const sim::Duration slice =
      config_.fault_window /
      static_cast<sim::Duration>(config_.transfer_rounds + 1);
  for (std::size_t round = 0; round < config_.transfer_rounds; ++round) {
    h.run_for(slice);
    // Bottom-up release from every non-root subnet toward its root sink.
    for (const LocalUser& lu : locals) {
      actors::CrossParams p;
      p.dest = core::SubnetId::root();
      p.to = lu.sink;
      (void)h.submit(*lu.subnet, lu.user, chain::kScaAddr,
                     actors::sca_method::kSendCross, encode(p),
                     config_.transfer);
    }
    // One top-down transfer per round, rotating across subnets (a single
    // spender cannot overlap nonces within a round).
    if (!locals.empty()) {
      const LocalUser& lu = locals[round % locals.size()];
      actors::CrossParams p;
      p.dest = lu.subnet->id;
      p.to = lu.user.addr;
      (void)h.submit(h.root(), root_user.value(), chain::kScaAddr,
                     actors::sca_method::kSendCross, encode(p),
                     config_.transfer);
    }
  }
  h.run_for(config_.fault_window -
            slice * static_cast<sim::Duration>(config_.transfer_rounds));

  // ---- heal everything the plan may have left open, then let the system
  // quiesce. Recovery must need no outside help beyond the heal itself.
  h.network().heal_partition();
  h.network().clear_fault_rules();
  h.network().set_drop_rate(0.0);
  for (const auto& subnet : h.subnets()) {
    for (std::size_t i = 0; i < subnet->size(); ++i) {
      if (!subnet->alive(i)) {
        (void)h.restart_node(*subnet, i);
      } else {
        // Adversaries reform at heal time; their PAST fraud must still be
        // detected, slashed and settled before quiescence.
        subnet->node(i).set_byzantine(runtime::ByzantineBehavior::kNone);
      }
    }
  }

  out.converged =
      h.run_until([&] { return quiescent(h); }, config_.settle);
  out.report = check_invariants(h);
  if (scenario.byzantine.has_value()) {
    check_byzantine(h, config_, *scenario.byzantine, out.report);
  } else {
    // Fault-only scenarios must end with ZERO slash records. The sharp
    // edge is crash/restart under durability: a recovered validator that
    // forgot its pre-crash votes could sign a conflicting checkpoint and
    // be slashed for equivocating with itself (DESIGN.md §15).
    for (std::size_t s = 1; s < h.subnets().size(); ++s) {
      runtime::Subnet& subnet = *h.subnets()[s];
      const auto parent_sca = subnet.parent->api_node().sca_state();
      for (const auto& r : parent_sca.slash_records) {
        if (r.subnet == subnet.id) {
          out.report.violations.push_back(
              subnet.id.to_string() +
              ": validator slashed in a fault-only scenario "
              "(self-equivocation after restart?)");
        }
      }
    }
  }

  // ---- deterministic exports: same seed => byte-identical.
  for (const auto& subnet : h.subnets()) {
    const auto& api = subnet->api_node();
    out.state_roots += subnet->id.to_string() + "@" +
                       std::to_string(api.chain().height()) + "=" +
                       api.state().flush().to_hex() + "\n";
  }
  out.metrics_json = obs::metrics_to_json(h.obs().metrics);
  std::uint64_t fp = fnv1a(kFnvOffset, out.state_roots);
  fp = fnv1a(fp, out.metrics_json);
  fp = fnv1a(fp, obs::trace_to_chrome_json(h.obs().tracer));
  out.fingerprint = fp;
  return out;
}

std::vector<RunResult> ChaosRunner::sweep(
    const std::vector<Scenario>& scenarios,
    const std::vector<std::uint64_t>& seeds) {
  std::vector<RunResult> results;
  results.reserve(scenarios.size() * seeds.size());
  for (const Scenario& scenario : scenarios) {
    for (const std::uint64_t seed : seeds) {
      results.push_back(run(scenario, seed));
    }
  }
  return results;
}

std::vector<Scenario> ChaosRunner::standard_scenarios() {
  std::vector<Scenario> out;

  out.push_back({"baseline", "no faults; invariants must hold trivially",
                 [](const RunnerConfig&) { return FaultPlan{}; }, {}});

  out.push_back(
      {"loss-20", "sustained 20% random loss across the whole window",
       [](const RunnerConfig& cfg) {
         FaultPlan p;
         p.drop_rate(0, 0.20);
         p.drop_rate(cfg.fault_window, 0.0);
         return p;
       },
       {}});

  out.push_back(
      {"partition-child",
       "first child subnet partitioned away across a signing window",
       [](const RunnerConfig& cfg) {
         FaultPlan p;
         p.partition(cfg.fault_window / 8,
                     {whole_subnet(1, cfg.child_validators)});
         p.heal(5 * cfg.fault_window / 8);
         return p;
       },
       {}});

  out.push_back(
      {"crash-signer",
       "crash a checkpoint signer of the first child, restart mid-window",
       [](const RunnerConfig& cfg) {
         FaultPlan p;
         p.crash(cfg.fault_window / 8,
                 NodeRef{1, cfg.child_validators - 1});
         p.restart(cfg.fault_window / 2,
                   NodeRef{1, cfg.child_validators - 1});
         return p;
       },
       {}});

  out.push_back(
      {"crash-parent-view",
       "crash the root validator serving as parent view and api endpoint",
       [](const RunnerConfig& cfg) {
         FaultPlan p;
         p.crash(cfg.fault_window / 8, NodeRef{0, 0});
         p.restart(cfg.fault_window / 2, NodeRef{0, 0});
         return p;
       },
       {}});

  out.push_back(
      {"gray-validator",
       "one child validator on a lossy, slow, reordering line",
       [](const RunnerConfig& cfg) {
         net::LinkFault f;
         f.drop = 0.4;
         f.extra_delay = 30 * sim::kMillisecond;
         f.reorder_jitter = 20 * sim::kMillisecond;
         FaultPlan p;
         p.node_fault(cfg.fault_window / 8, NodeRef{1, 1}, f);
         p.clear_node_fault(3 * cfg.fault_window / 4, NodeRef{1, 1});
         return p;
       },
       {}});

  out.push_back(
      {"dup-reorder-root",
       "duplicate and reorder every transmission touching the root",
       [](const RunnerConfig& cfg) {
         net::LinkFault f;
         f.duplicate = 0.35;
         f.reorder_jitter = 10 * sim::kMillisecond;
         FaultPlan p;
         for (std::size_t s = 0; s < cfg.root_validators; ++s) {
           p.node_fault(cfg.fault_window / 8, NodeRef{0, s}, f);
           p.clear_node_fault(3 * cfg.fault_window / 4, NodeRef{0, s});
         }
         return p;
       },
       {}});

  out.push_back(
      {"surge-overload",
       "flood the first child's mempools well past their caps; bounded "
       "pools shed deterministically while real traffic still settles",
       [](const RunnerConfig& cfg) {
         FaultPlan p;
         p.surge(cfg.fault_window / 8, NodeRef{1, 0}, cfg.surge_senders,
                 cfg.surge_messages);
         return p;
       },
       {}});

  return out;
}

std::vector<Scenario> ChaosRunner::byzantine_scenarios() {
  using runtime::ByzantineBehavior;
  std::vector<Scenario> out;

  {
    Scenario s;
    s.name = "byz-equivocate";
    s.description =
        "first child validator signs a second, conflicting checkpoint "
        "every period, reforming before heal";
    s.plan = [](const RunnerConfig& cfg) {
      FaultPlan p;
      p.byzantine(0, NodeRef{1, 0}, ByzantineBehavior::kEquivocate);
      p.clear_byzantine(3 * cfg.fault_window / 4, NodeRef{1, 0});
      return p;
    };
    s.byzantine = ByzantineExpectation{{NodeRef{1, 0}}, {}};
    out.push_back(std::move(s));
  }

  {
    Scenario s;
    s.name = "byz-forge-meta";
    s.description =
        "a child validator co-signs checkpoints whose CrossMsgMeta value "
        "is inflated (firewall-bound attack)";
    s.plan = [](const RunnerConfig&) {
      FaultPlan p;
      p.byzantine(0, NodeRef{1, 1}, ByzantineBehavior::kForgeMeta);
      return p;
    };
    s.byzantine = ByzantineExpectation{{NodeRef{1, 1}}, {}};
    out.push_back(std::move(s));
  }

  {
    Scenario s;
    s.name = "byz-collapse";
    s.description =
        "two of three validators of the second child equivocate; slashing "
        "drops collateral under min_collateral and deactivates the subnet";
    s.plan = [](const RunnerConfig&) {
      FaultPlan p;
      p.byzantine(0, NodeRef{2, 0}, ByzantineBehavior::kEquivocate);
      p.byzantine(0, NodeRef{2, 1}, ByzantineBehavior::kEquivocate);
      return p;
    };
    s.byzantine =
        ByzantineExpectation{{NodeRef{2, 0}, NodeRef{2, 1}}, {2}};
    out.push_back(std::move(s));
  }

  {
    Scenario s;
    s.name = "byz-withhold";
    s.description =
        "a child validator signs and submits nothing for the whole window "
        "(omission: not provable fraud, so nobody is slashed; the subnet "
        "must stay live through the remaining signers)";
    s.plan = [](const RunnerConfig&) {
      FaultPlan p;
      p.byzantine(0, NodeRef{1, 2}, ByzantineBehavior::kWithhold);
      return p;
    };
    s.byzantine = ByzantineExpectation{{}, {}};
    out.push_back(std::move(s));
  }

  {
    Scenario s;
    s.name = "byz-stale-resubmit";
    s.description =
        "a child validator replays the last accepted checkpoint every "
        "period; the SA must reject every replay without wedging";
    s.plan = [](const RunnerConfig&) {
      FaultPlan p;
      p.byzantine(0, NodeRef{1, 0}, ByzantineBehavior::kStaleResubmit);
      return p;
    };
    s.byzantine = ByzantineExpectation{{}, {}};
    out.push_back(std::move(s));
  }

  {
    Scenario s;
    s.name = "byz-equivocate-deep";
    s.description =
        "a grandchild validator equivocates at depth 2: the MIDDLE subnet "
        "slashes it while the root-edge pipeline runs undisturbed "
        "(requires nested = 1)";
    s.plan = [](const RunnerConfig&) {
      FaultPlan p;
      p.byzantine(0, NodeRef{3, 0}, ByzantineBehavior::kEquivocate);
      return p;
    };
    s.byzantine = ByzantineExpectation{{NodeRef{3, 0}}, {}};
    out.push_back(std::move(s));
  }

  return out;
}

std::vector<Scenario> ChaosRunner::recovery_scenarios() {
  using storage::DiskFault;
  std::vector<Scenario> out;

  // Crash one checkpoint signer of the first child with a given disk
  // outcome, restart it mid-window. Offsets match crash-signer so the two
  // sets stay comparable.
  const auto signer_crash = [](DiskFault::Kind kind) {
    return [kind](const RunnerConfig& cfg) {
      DiskFault f;
      f.kind = kind;
      FaultPlan p;
      p.crash(cfg.fault_window / 8, NodeRef{1, cfg.child_validators - 1}, f);
      p.restart(cfg.fault_window / 2,
                NodeRef{1, cfg.child_validators - 1});
      return p;
    };
  };

  out.push_back(
      {"recover-disk-intact",
       "crash a child signer with a lucky disk (everything reached the "
       "medium); restart must replay the full WAL and rejoin",
       signer_crash(DiskFault::Kind::kKeepAll), {}});

  out.push_back(
      {"recover-power-loss",
       "crash a child signer losing the un-fsynced suffix; restart "
       "recovers the fsynced prefix and catches the rest up over the net",
       signer_crash(DiskFault::Kind::kLoseSuffix), {}});

  out.push_back(
      {"recover-torn-tail",
       "crash leaves a torn half-written frame at the WAL tail; recovery "
       "must detect it, truncate, and never apply the torn record",
       signer_crash(DiskFault::Kind::kTornTail), {}});

  out.push_back(
      {"recover-bit-flip",
       "one seeded bit flips on the medium (fsynced region included); the "
       "CRC catches it and recovery keeps only the prefix before the "
       "damaged frame",
       signer_crash(DiskFault::Kind::kBitFlip), {}});

  out.push_back(
      {"recover-disk-lost",
       "the disk comes back empty; the validator rebuilds from genesis "
       "via network catch-up, and must still never double-sign",
       signer_crash(DiskFault::Kind::kLoseDisk), {}});

  out.push_back(
      {"recover-root-view",
       "crash the root validator serving parent views, torn WAL tail; "
       "children must keep checkpointing through the replicas and the "
       "recovered root must converge",
       [](const RunnerConfig& cfg) {
         DiskFault f;
         f.kind = DiskFault::Kind::kTornTail;
         FaultPlan p;
         p.crash(cfg.fault_window / 8, NodeRef{0, 0}, f);
         p.restart(cfg.fault_window / 2, NodeRef{0, 0});
         return p;
       },
       {}});

  out.push_back(
      {"recover-double",
       "two validators of the same child crash with different disk "
       "outcomes and restart in the same epoch; both must recover without "
       "conflicting with their pre-crash votes or each other",
       [](const RunnerConfig& cfg) {
         DiskFault lose;
         lose.kind = DiskFault::Kind::kLoseSuffix;
         DiskFault torn;
         torn.kind = DiskFault::Kind::kTornTail;
         FaultPlan p;
         p.crash(cfg.fault_window / 8, NodeRef{1, 0}, lose);
         p.crash(cfg.fault_window / 6,
                 NodeRef{1, cfg.child_validators - 1}, torn);
         p.restart(cfg.fault_window / 2, NodeRef{1, 0});
         p.restart(cfg.fault_window / 2,
                   NodeRef{1, cfg.child_validators - 1});
         return p;
       },
       {}});

  return out;
}

}  // namespace hc::chaos
