#include "chaos/runner.hpp"

#include <utility>

#include "actors/methods.hpp"
#include "obs/export.hpp"

namespace hc::chaos {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

core::SubnetParams chaos_params(const RunnerConfig& cfg) {
  core::SubnetParams p;
  p.name = "chaos";
  p.consensus = core::ConsensusType::kPoaRoundRobin;
  p.min_validator_stake = TokenAmount::whole(5);
  p.min_collateral = TokenAmount::whole(10);
  p.checkpoint_period = cfg.checkpoint_period;
  // Threshold 2 so checkpoint quorum needs shares from more than one
  // validator — signature collection itself is under test.
  p.checkpoint_policy =
      core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, 2};
  return p;
}

consensus::EngineConfig chaos_engine(const RunnerConfig& cfg) {
  consensus::EngineConfig e;
  e.block_time = cfg.block_time;
  e.timeout_base = 3 * cfg.block_time;
  return e;
}

std::vector<NodeRef> whole_subnet(std::size_t subnet, std::size_t n) {
  std::vector<NodeRef> refs;
  refs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) refs.push_back(NodeRef{subnet, i});
  return refs;
}

}  // namespace

std::string RunResult::summary() const {
  std::string s = scenario + " seed=" + std::to_string(seed) +
                  (ok() ? " OK" : " FAIL");
  if (!converged) s += " (no quiescence before deadline)";
  if (!report.ok()) s += " [" + report.to_string() + "]";
  return s;
}

ChaosRunner::ChaosRunner(RunnerConfig config) : config_(std::move(config)) {}

RunResult ChaosRunner::run(const Scenario& scenario, std::uint64_t seed) {
  RunResult out;
  out.scenario = scenario.name;
  out.seed = seed;

  runtime::HierarchyConfig cfg;
  cfg.seed = seed;
  cfg.latency = sim::LatencyModel(2 * sim::kMillisecond, sim::kMillisecond);
  cfg.root_params = chaos_params(config_);
  cfg.root_validators = config_.root_validators;
  cfg.root_engine = chaos_engine(config_);
  runtime::Hierarchy h(cfg);

  // ---- topology: children under the root, optional nested grandchild.
  for (std::size_t c = 0; c < config_.children; ++c) {
    auto spawned = h.spawn_subnet(h.root(), "c" + std::to_string(c),
                                  chaos_params(config_),
                                  config_.child_validators,
                                  TokenAmount::whole(5), chaos_engine(config_));
    if (!spawned.ok()) {
      out.report.violations.push_back("spawn failed: " +
                                      spawned.error().to_string());
      return out;
    }
  }
  if (config_.nested > 0 && config_.children > 0) {
    auto spawned = h.spawn_subnet(*h.subnets().at(1), "g0",
                                  chaos_params(config_),
                                  config_.child_validators,
                                  TokenAmount::whole(5), chaos_engine(config_));
    if (!spawned.ok()) {
      out.report.violations.push_back("nested spawn failed: " +
                                      spawned.error().to_string());
      return out;
    }
  }

  // ---- workload identities: a root spender, one funded user per non-root
  // subnet (funded top-down so the transfer machinery is primed), and one
  // root-side sink per subnet for bottom-up releases.
  auto root_user = h.make_user("chaos-root", TokenAmount::whole(500));
  if (!root_user.ok()) {
    out.report.violations.push_back("root user funding failed");
    return out;
  }
  struct LocalUser {
    runtime::Subnet* subnet;
    runtime::User user;
    Address sink;
  };
  std::vector<LocalUser> locals;
  for (std::size_t s = 1; s < h.subnets().size(); ++s) {
    runtime::Subnet* subnet = h.subnets()[s].get();
    LocalUser lu;
    lu.subnet = subnet;
    lu.user.key =
        crypto::KeyPair::from_label("chaos/user/" + std::to_string(s));
    lu.user.addr = Address::key(lu.user.key.public_key().to_bytes());
    lu.sink = Address::key(
        crypto::KeyPair::from_label("chaos/sink/" + std::to_string(s))
            .public_key()
            .to_bytes());
    auto r = h.send_cross(h.root(), root_user.value(), subnet->id,
                          lu.user.addr, TokenAmount::whole(40));
    if (!r.ok() || !r.value().ok()) {
      out.report.violations.push_back("seed funding for " +
                                      subnet->id.to_string() + " failed");
      return out;
    }
    if (!h.run_until(
            [&] {
              return subnet->api_node().balance(lu.user.addr) >=
                     TokenAmount::whole(40);
            },
            120 * sim::kSecond)) {
      out.report.violations.push_back("seed funding for " +
                                      subnet->id.to_string() + " stalled");
      return out;
    }
    locals.push_back(std::move(lu));
  }

  h.run_for(config_.warmup);

  // ---- arm the fault timeline and drive the workload through it.
  const FaultPlan plan = scenario.plan(config_);
  arm(plan, h);
  out.faults_injected = plan.events().size();

  const sim::Duration slice =
      config_.fault_window /
      static_cast<sim::Duration>(config_.transfer_rounds + 1);
  for (std::size_t round = 0; round < config_.transfer_rounds; ++round) {
    h.run_for(slice);
    // Bottom-up release from every non-root subnet toward its root sink.
    for (const LocalUser& lu : locals) {
      actors::CrossParams p;
      p.dest = core::SubnetId::root();
      p.to = lu.sink;
      (void)h.submit(*lu.subnet, lu.user, chain::kScaAddr,
                     actors::sca_method::kSendCross, encode(p),
                     config_.transfer);
    }
    // One top-down transfer per round, rotating across subnets (a single
    // spender cannot overlap nonces within a round).
    if (!locals.empty()) {
      const LocalUser& lu = locals[round % locals.size()];
      actors::CrossParams p;
      p.dest = lu.subnet->id;
      p.to = lu.user.addr;
      (void)h.submit(h.root(), root_user.value(), chain::kScaAddr,
                     actors::sca_method::kSendCross, encode(p),
                     config_.transfer);
    }
  }
  h.run_for(config_.fault_window -
            slice * static_cast<sim::Duration>(config_.transfer_rounds));

  // ---- heal everything the plan may have left open, then let the system
  // quiesce. Recovery must need no outside help beyond the heal itself.
  h.network().heal_partition();
  h.network().clear_fault_rules();
  h.network().set_drop_rate(0.0);
  for (const auto& subnet : h.subnets()) {
    for (std::size_t i = 0; i < subnet->size(); ++i) {
      if (!subnet->alive(i)) (void)h.restart_node(*subnet, i);
    }
  }

  out.converged =
      h.run_until([&] { return quiescent(h); }, config_.settle);
  out.report = check_invariants(h);

  // ---- deterministic exports: same seed => byte-identical.
  for (const auto& subnet : h.subnets()) {
    const auto& api = subnet->api_node();
    out.state_roots += subnet->id.to_string() + "@" +
                       std::to_string(api.chain().height()) + "=" +
                       api.state().flush().to_hex() + "\n";
  }
  out.metrics_json = obs::metrics_to_json(h.obs().metrics);
  std::uint64_t fp = fnv1a(kFnvOffset, out.state_roots);
  fp = fnv1a(fp, out.metrics_json);
  fp = fnv1a(fp, obs::trace_to_chrome_json(h.obs().tracer));
  out.fingerprint = fp;
  return out;
}

std::vector<RunResult> ChaosRunner::sweep(
    const std::vector<Scenario>& scenarios,
    const std::vector<std::uint64_t>& seeds) {
  std::vector<RunResult> results;
  results.reserve(scenarios.size() * seeds.size());
  for (const Scenario& scenario : scenarios) {
    for (const std::uint64_t seed : seeds) {
      results.push_back(run(scenario, seed));
    }
  }
  return results;
}

std::vector<Scenario> ChaosRunner::standard_scenarios() {
  std::vector<Scenario> out;

  out.push_back({"baseline", "no faults; invariants must hold trivially",
                 [](const RunnerConfig&) { return FaultPlan{}; }});

  out.push_back(
      {"loss-20", "sustained 20% random loss across the whole window",
       [](const RunnerConfig& cfg) {
         FaultPlan p;
         p.drop_rate(0, 0.20);
         p.drop_rate(cfg.fault_window, 0.0);
         return p;
       }});

  out.push_back(
      {"partition-child",
       "first child subnet partitioned away across a signing window",
       [](const RunnerConfig& cfg) {
         FaultPlan p;
         p.partition(cfg.fault_window / 8,
                     {whole_subnet(1, cfg.child_validators)});
         p.heal(5 * cfg.fault_window / 8);
         return p;
       }});

  out.push_back(
      {"crash-signer",
       "crash a checkpoint signer of the first child, restart mid-window",
       [](const RunnerConfig& cfg) {
         FaultPlan p;
         p.crash(cfg.fault_window / 8,
                 NodeRef{1, cfg.child_validators - 1});
         p.restart(cfg.fault_window / 2,
                   NodeRef{1, cfg.child_validators - 1});
         return p;
       }});

  out.push_back(
      {"crash-parent-view",
       "crash the root validator serving as parent view and api endpoint",
       [](const RunnerConfig& cfg) {
         FaultPlan p;
         p.crash(cfg.fault_window / 8, NodeRef{0, 0});
         p.restart(cfg.fault_window / 2, NodeRef{0, 0});
         return p;
       }});

  out.push_back(
      {"gray-validator",
       "one child validator on a lossy, slow, reordering line",
       [](const RunnerConfig& cfg) {
         net::LinkFault f;
         f.drop = 0.4;
         f.extra_delay = 30 * sim::kMillisecond;
         f.reorder_jitter = 20 * sim::kMillisecond;
         FaultPlan p;
         p.node_fault(cfg.fault_window / 8, NodeRef{1, 1}, f);
         p.clear_node_fault(3 * cfg.fault_window / 4, NodeRef{1, 1});
         return p;
       }});

  out.push_back(
      {"dup-reorder-root",
       "duplicate and reorder every transmission touching the root",
       [](const RunnerConfig& cfg) {
         net::LinkFault f;
         f.duplicate = 0.35;
         f.reorder_jitter = 10 * sim::kMillisecond;
         FaultPlan p;
         for (std::size_t s = 0; s < cfg.root_validators; ++s) {
           p.node_fault(cfg.fault_window / 8, NodeRef{0, s}, f);
           p.clear_node_fault(3 * cfg.fault_window / 4, NodeRef{0, s});
         }
         return p;
       }});

  return out;
}

}  // namespace hc::chaos
