#include "chaos/invariants.hpp"

#include <algorithm>

#include "chain/state.hpp"

namespace hc::chaos {

std::string InvariantReport::to_string() const {
  std::string out;
  for (const auto& v : violations) {
    if (!out.empty()) out += "; ";
    out += v;
  }
  return out;
}

namespace {

using runtime::Subnet;
using runtime::SubnetNode;

/// The child chain's live token supply: everything on the chain minus the
/// burnt-funds sink. Funds this subnet has delegated further down are NOT
/// added on top: the top-down path freezes equal custody in this SCA for
/// everything it mints deeper, so the chain's own balance already mirrors
/// the whole subtree (and pass-through releases burn that custody again).
/// total_balance() is a running total (O(dirty), not O(actors)), so the
/// per-sweep invariant checks stay cheap even on large subnets.
TokenAmount live_supply(const SubnetNode& node) {
  TokenAmount total = node.state().total_balance();
  const auto* burn = node.state().get(chain::kBurnAddr);
  if (burn != nullptr) total -= burn->balance;
  return total;
}

/// Whether the parent SCA still lists `subnet` as active. Deactivation
/// (collateral slashed below min_collateral, or a kill) halts checkpoint
/// acceptance, so the drain/commit/supply-equality invariants no longer
/// apply to the edge — only the firewall BOUND below does.
bool parent_lists_active(const Subnet& subnet) {
  if (subnet.parent == nullptr) return true;
  const auto parent_sca = subnet.parent->api_node().sca_state();
  const auto* entry = parent_sca.find_subnet(subnet.sa);
  return entry == nullptr || entry->status == core::SubnetStatus::kActive;
}

/// Firewall bound for deactivated subnets: bottom-up burns in the child are
/// no longer reflected upward, so the child's live supply may drop BELOW
/// the parent-side circulating figure — but it must never exceed it (that
/// would mean the child minted value the parent never escrowed).
bool supply_bounded(const Subnet& subnet, std::string* why) {
  const auto parent_sca = subnet.parent->api_node().sca_state();
  const auto* entry = parent_sca.find_subnet(subnet.sa);
  if (entry == nullptr) {
    if (why != nullptr) *why = "not registered in parent SCA";
    return false;
  }
  const TokenAmount inside = live_supply(subnet.api_node());
  if (entry->circulating_supply < inside) {
    if (why != nullptr) {
      *why = "deactivated, yet live child supply " + inside.to_string() +
             " exceeds parent circulating_supply " +
             entry->circulating_supply.to_string();
    }
    return false;
  }
  return true;
}

/// Firewall equality (paper §II) on the edge parent(subnet) -> subnet.
bool supply_balanced(const Subnet& subnet, std::string* why) {
  const auto entry_sca = subnet.parent->api_node().sca_state();
  const auto* entry = entry_sca.find_subnet(subnet.sa);
  if (entry == nullptr) {
    if (why != nullptr) *why = "not registered in parent SCA";
    return false;
  }
  const TokenAmount inside = live_supply(subnet.api_node());
  if (entry->circulating_supply != inside) {
    if (why != nullptr) {
      *why = "circulating_supply " + entry->circulating_supply.to_string() +
             " != live child supply " + inside.to_string();
    }
    return false;
  }
  return true;
}

/// Every cross-net queue touching `subnet` is drained.
bool queues_drained(const Subnet& subnet, std::string* why) {
  const auto sca = subnet.api_node().sca_state();
  if (!sca.window_msgs.empty()) {
    if (why != nullptr) {
      *why = std::to_string(sca.window_msgs.size()) +
             " bottom-up msgs still buffered in the checkpoint window";
    }
    return false;
  }
  if (!sca.forward_meta.empty()) {
    if (why != nullptr) {
      *why = std::to_string(sca.forward_meta.size()) +
             " child metas awaiting upward forwarding";
    }
    return false;
  }
  for (const auto& p : sca.pending_bottomup) {
    if (!p.executed) {
      if (why != nullptr) {
        *why = "adopted bottom-up meta nonce " + std::to_string(p.nonce) +
               " never executed";
      }
      return false;
    }
  }
  if (subnet.parent != nullptr) {
    const auto parent_sca = subnet.parent->api_node().sca_state();
    const auto* entry = parent_sca.find_subnet(subnet.sa);
    if (entry != nullptr &&
        sca.applied_topdown_nonce != entry->topdown_nonce) {
      if (why != nullptr) {
        *why = "top-down queue stuck: applied " +
               std::to_string(sca.applied_topdown_nonce) + " of " +
               std::to_string(entry->topdown_nonce);
      }
      return false;
    }
  }
  return true;
}

/// At least one checkpoint of `subnet` committed at its parent.
bool checkpoint_committed(const Subnet& subnet, std::string* why) {
  const auto parent_sca = subnet.parent->api_node().sca_state();
  const auto* entry = parent_sca.find_subnet(subnet.sa);
  if (entry == nullptr || entry->last_checkpoint_epoch < 0) {
    if (why != nullptr) *why = "no checkpoint ever committed at the parent";
    return false;
  }
  return true;
}

}  // namespace

bool quiescent(const runtime::Hierarchy& hierarchy) {
  for (const auto& subnet : hierarchy.subnets()) {
    if (subnet->alive_count() == 0) return false;
    // A deactivated subnet can never settle its cross-net traffic (its
    // checkpoints are refused); quiescence only demands the bound.
    if (!parent_lists_active(*subnet)) continue;
    if (!queues_drained(*subnet, nullptr)) return false;
    if (subnet->parent != nullptr) {
      if (!checkpoint_committed(*subnet, nullptr)) return false;
      if (!supply_balanced(*subnet, nullptr)) return false;
    }
  }
  return true;
}

InvariantReport check_invariants(const runtime::Hierarchy& hierarchy) {
  InvariantReport report;

  // ---- bounded queues (DESIGN.md §14): no buffer ever outgrew its cap.
  // Peaks are high-water marks, so a transient breach during the fault
  // window is caught even after the pools drain.
  const runtime::HierarchyConfig& hcfg = hierarchy.config();
  if (hcfg.mempool.max_messages > 0) {
    for (const auto& subnet : hierarchy.subnets()) {
      for (std::size_t i = 0; i < subnet->size(); ++i) {
        if (!subnet->alive(i)) continue;
        const std::size_t peak =
            std::max(subnet->node(i).mempool_size(),
                     subnet->node(i).mempool_shed_stats().peak_items);
        if (peak > hcfg.mempool.max_messages) {
          report.violations.push_back(
              subnet->id.to_string() + " node " + std::to_string(i) +
              ": mempool peak " + std::to_string(peak) + " exceeds cap " +
              std::to_string(hcfg.mempool.max_messages));
        }
      }
    }
  }
  if (hcfg.content_store.bounded()) {
    for (const auto& subnet : hierarchy.subnets()) {
      for (std::size_t i = 0; i < subnet->size(); ++i) {
        if (!subnet->alive(i)) continue;
        const common::ShedStats& shed =
            subnet->node(i).content_store().shed_stats();
        const common::CapacityPolicy& cap = hcfg.content_store;
        if (cap.max_items > 0 && shed.peak_items > cap.max_items) {
          report.violations.push_back(
              subnet->id.to_string() + " node " + std::to_string(i) +
              ": content store peak items " +
              std::to_string(shed.peak_items) + " exceeds cap " +
              std::to_string(cap.max_items));
        }
        if (cap.max_bytes > 0 && shed.peak_bytes > cap.max_bytes) {
          report.violations.push_back(
              subnet->id.to_string() + " node " + std::to_string(i) +
              ": content store peak bytes " +
              std::to_string(shed.peak_bytes) + " exceeds cap " +
              std::to_string(cap.max_bytes));
        }
      }
    }
  }
  const net::NodeQueuePolicy& nq = hcfg.gossip.node_queue;
  if (nq.enabled()) {
    const net::Network::Stats net_stats = hierarchy.network().stats();
    if (nq.max_depth > 0 && net_stats.queue_peak_depth > nq.max_depth) {
      report.violations.push_back(
          "network: delivery queue peak depth " +
          std::to_string(net_stats.queue_peak_depth) + " exceeds cap " +
          std::to_string(nq.max_depth));
    }
    if (nq.max_bytes > 0 && net_stats.queue_peak_bytes > nq.max_bytes) {
      report.violations.push_back(
          "network: delivery queue peak bytes " +
          std::to_string(net_stats.queue_peak_bytes) + " exceeds cap " +
          std::to_string(nq.max_bytes));
    }
  }
  {
    // The per-node gossip dedup set is generational (hot/cold), so its
    // resident size must never exceed two generations regardless of how
    // much traffic the run pushed through.
    const net::Network::Stats net_stats = hierarchy.network().stats();
    constexpr std::uint64_t kSeenCap = 2 * net::Network::SeenSet::kSeenHotMax;
    if (net_stats.seen_peak_entries > kSeenCap) {
      report.violations.push_back(
          "network: gossip seen-set peak " +
          std::to_string(net_stats.seen_peak_entries) +
          " exceeds generational bound " + std::to_string(kSeenCap));
    }
  }

  for (const auto& subnet : hierarchy.subnets()) {
    const std::string tag = subnet->id.to_string();
    if (subnet->alive_count() == 0) {
      report.violations.push_back(tag + ": every validator is crashed");
      continue;
    }

    // ---- no negative balances, on every alive replica
    for (std::size_t i = 0; i < subnet->size(); ++i) {
      if (!subnet->alive(i)) continue;
      for (const auto& [addr, entry] : subnet->node(i).state()) {
        if (entry.balance.negative()) {
          report.violations.push_back(
              tag + " node " + std::to_string(i) + ": negative balance " +
              entry.balance.to_string() + " at " + addr.to_string());
        }
      }
    }

    // ---- replica agreement on the common chain prefix
    chain::Epoch min_height = 0;
    std::size_t reference = subnet->size();
    for (std::size_t i = 0; i < subnet->size(); ++i) {
      if (!subnet->alive(i)) continue;
      const chain::Epoch h = subnet->node(i).chain().height();
      if (reference == subnet->size() || h < min_height) min_height = h;
      reference = std::min(reference, i);
    }
    if (min_height >= 1) {
      const auto* ref_block =
          subnet->node(reference).chain().block_at(min_height);
      for (std::size_t i = 0; i < subnet->size(); ++i) {
        if (!subnet->alive(i) || i == reference) continue;
        const auto* other = subnet->node(i).chain().block_at(min_height);
        if (ref_block == nullptr || other == nullptr ||
            ref_block->cid() != other->cid()) {
          report.violations.push_back(
              tag + ": replicas " + std::to_string(reference) + " and " +
              std::to_string(i) + " diverge at height " +
              std::to_string(min_height));
        }
      }
    }

    std::string why;
    if (!parent_lists_active(*subnet)) {
      // ---- deactivated edge: only the firewall bound applies
      if (!supply_bounded(*subnet, &why)) {
        report.violations.push_back(tag + ": " + why);
      }
      continue;
    }

    // ---- cross-net queues drained
    if (!queues_drained(*subnet, &why)) {
      report.violations.push_back(tag + ": " + why);
    }

    if (subnet->parent == nullptr) continue;

    // ---- checkpoint chain commits at every ancestor edge
    if (!checkpoint_committed(*subnet, &why)) {
      report.violations.push_back(tag + ": " + why);
    }
    // ---- firewall / supply conservation (paper §II)
    if (!supply_balanced(*subnet, &why)) {
      report.violations.push_back(tag + ": " + why);
    }
  }

  // ---- durability & recovery (DESIGN.md §15), only with disks in play.
  // (a) A recovered replica's chain extends its replayed prefix: the WAL
  //     never resurrects blocks past the live head.
  // (b) Damage is DETECTED, never silently applied: every live WAL is a
  //     fully valid frame sequence (recovery truncated torn/corrupt tails
  //     at restart; post-restart appends extend the valid prefix).
  if (hcfg.durability.enabled) {
    for (const auto& subnet : hierarchy.subnets()) {
      const std::string tag = subnet->id.to_string();
      for (std::size_t i = 0; i < subnet->size(); ++i) {
        if (!subnet->alive(i)) continue;
        const runtime::SubnetNode& node = subnet->node(i);
        if (node.recovered_height() > node.chain().height()) {
          report.violations.push_back(
              tag + " node " + std::to_string(i) + ": recovered height " +
              std::to_string(node.recovered_height()) +
              " exceeds live height " +
              std::to_string(node.chain().height()));
        }
        const storage::DurableStore* disk = hierarchy.find_disk(*subnet, i);
        const storage::DurableLog* wal =
            disk == nullptr ? nullptr : disk->find("wal");
        if (wal == nullptr) {
          report.violations.push_back(tag + " node " + std::to_string(i) +
                                      ": durability enabled but no WAL");
          continue;
        }
        storage::DurableLog::RecoverStats stats;
        (void)wal->recover(&stats);
        if (stats.corrupt_records > 0 || stats.torn_tail) {
          report.violations.push_back(
              tag + " node " + std::to_string(i) +
              ": live WAL holds undetected damage (" +
              std::to_string(stats.corrupt_records) + " corrupt, torn=" +
              (stats.torn_tail ? "yes" : "no") + ")");
        }
      }
    }
  }
  return report;
}

}  // namespace hc::chaos
