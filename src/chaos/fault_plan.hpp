// FaultPlan: a declarative fault timeline executed deterministically from
// the run seed (DESIGN.md §9).
//
// A plan is a list of scheduled events — per-link and per-node fault rules
// (drop / delay / duplicate / reorder), node crash with state loss and
// restart with resync, partitions and heals, global loss-rate changes —
// addressed by (subnet index, validator slot) so the same plan replays
// against any topology of compatible shape. arm() schedules every event on
// the hierarchy's discrete-event scheduler; because the scheduler and all
// fault dice share the run seed, two same-seed runs inject the identical
// fault timeline and produce byte-identical observability exports.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "runtime/hierarchy.hpp"

namespace hc::chaos {

/// Addresses one validator slot: `subnet` indexes Hierarchy::subnets()
/// (0 = root, then spawn order), `node` the validator slot within it.
/// Slots stay valid across crash/restart cycles.
struct NodeRef {
  std::size_t subnet = 0;
  std::size_t node = 0;
};

struct FaultEvent {
  enum class Kind : std::uint8_t {
    kCrash = 0,
    kRestart,
    kLinkFault,
    kClearLinkFault,
    kNodeFault,
    kClearNodeFault,
    kPartition,
    kHeal,
    kDropRate,
    kByzantine,
    kClearByzantine,
    kSurge,
  };

  sim::Duration at = 0;  ///< Offset from the instant the plan is armed.
  Kind kind = Kind::kDropRate;
  NodeRef a;  ///< Target (crash/restart/node/byzantine fault, link source).
  NodeRef b;  ///< Link destination (link-fault kinds only).
  net::LinkFault fault;
  /// Disk outcome at crash time (kCrash only; DESIGN.md §15). Ignored by
  /// Hierarchy unless durability is enabled. Default = power-loss model.
  storage::DiskFault disk;
  /// Partition groups; slots absent from every group stay connected.
  std::vector<std::vector<NodeRef>> groups;
  double drop_rate = 0.0;
  /// Adversary behavior armed on `a` (kByzantine only).
  runtime::ByzantineBehavior behavior = runtime::ByzantineBehavior::kNone;
  /// Surge shape (kSurge only): `surge_senders` fresh unfunded identities
  /// each submit `surge_messages` consecutive-nonce messages at `a`.
  std::size_t surge_senders = 0;
  std::size_t surge_messages = 0;
};

[[nodiscard]] const char* to_string(FaultEvent::Kind kind);

/// Builder for fault timelines. Offsets may be added in any order; the
/// scheduler orders execution (ties run in insertion order).
class FaultPlan {
 public:
  FaultPlan& crash(sim::Duration at, NodeRef n);
  /// Crash with an explicit disk outcome: torn tail, bit flip, total loss
  /// (storage::DiskFault::Kind). Only meaningful with durability enabled.
  FaultPlan& crash(sim::Duration at, NodeRef n, storage::DiskFault disk);
  FaultPlan& restart(sim::Duration at, NodeRef n);
  /// Install a rule on the directed link a -> b (a "gray link" when the
  /// rule is mostly drop).
  FaultPlan& link_fault(sim::Duration at, NodeRef a, NodeRef b,
                        net::LinkFault fault);
  FaultPlan& clear_link_fault(sim::Duration at, NodeRef a, NodeRef b);
  /// Install a rule on everything `n` sends or receives (gray node).
  FaultPlan& node_fault(sim::Duration at, NodeRef n, net::LinkFault fault);
  FaultPlan& clear_node_fault(sim::Duration at, NodeRef n);
  FaultPlan& partition(sim::Duration at, std::vector<std::vector<NodeRef>> groups);
  FaultPlan& heal(sim::Duration at);
  FaultPlan& drop_rate(sim::Duration at, double p);
  /// Arm an adversary behavior on validator `n` (its consensus duties stay
  /// honest; only checkpoint signing/submission misbehaves — see
  /// runtime::ByzantineBehavior).
  FaultPlan& byzantine(sim::Duration at, NodeRef n,
                       runtime::ByzantineBehavior behavior);
  /// Restore validator `n` to honest behavior.
  FaultPlan& clear_byzantine(sim::Duration at, NodeRef n);
  /// Flood validator `n` with `senders` x `messages_each` signed messages
  /// from fresh unfunded identities (an admission-control surge, DESIGN.md
  /// §14). Submission runs in the node's own scheduler lane, so the surge
  /// replays byte-identically at any thread count.
  FaultPlan& surge(sim::Duration at, NodeRef n, std::size_t senders,
                   std::size_t messages_each);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  /// Largest event offset (0 for an empty plan).
  [[nodiscard]] sim::Duration horizon() const;

 private:
  FaultPlan& push(FaultEvent event);

  std::vector<FaultEvent> events_;
};

/// Schedule every event of `plan` against `hierarchy`, offsets relative to
/// now. Each applied event bumps chaos_faults_injected_total{kind=...} and
/// drops an instant marker on the "chaos" trace track. The hierarchy must
/// outlive its scheduler queue (it owns it, so this holds by construction).
void arm(const FaultPlan& plan, runtime::Hierarchy& hierarchy);

}  // namespace hc::chaos
