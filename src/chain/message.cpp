#include "crypto/sigcache.hpp"
#include "chain/message.hpp"
#include "obs/profile.hpp"

namespace hc::chain {

void Message::encode_to(Encoder& e) const {
  e.obj(from).obj(to).varint(nonce).obj(value).varint(method).bytes(params);
  e.varint(gas_limit).obj(gas_price);
}

Result<Message> Message::decode_from(Decoder& d) {
  Message m;
  HC_TRY(from, d.obj<Address>());
  HC_TRY(to, d.obj<Address>());
  HC_TRY(nonce, d.varint());
  HC_TRY(value, d.obj<TokenAmount>());
  HC_TRY(method, d.varint());
  HC_TRY(params, d.bytes());
  HC_TRY(gas_limit, d.varint());
  HC_TRY(gas_price, d.obj<TokenAmount>());
  m.from = from;
  m.to = to;
  m.nonce = nonce;
  m.value = value;
  m.method = method;
  m.params = std::move(params);
  m.gas_limit = gas_limit;
  m.gas_price = gas_price;
  return m;
}

Cid Message::cid() const { return Cid::of(CidCodec::kMessage, encode(*this)); }

SignedMessage SignedMessage::sign(Message msg, const crypto::KeyPair& key) {
  static const obs::PhaseId sign_phase =
      obs::Profiler::instance().phase("crypto/sign");
  obs::ProfileScope prof(sign_phase);
  SignedMessage sm;
  sm.message = std::move(msg);
  sm.pubkey = key.public_key();
  sm.signature = key.sign(encode(sm.message));
  return sm;
}

bool SignedMessage::verify() const {
  if (!sender_matches_key()) return false;
  return crypto::verify_cached(pubkey, encode(message), signature);
}

bool SignedMessage::verify_with(Arena& arena) const {
  if (!sender_matches_key()) return false;
  return crypto::verify_cached(pubkey, arena.encode_obj(message), signature);
}

bool SignedMessage::sender_matches_key() const {
  return message.from == Address::key(pubkey.to_bytes());
}

void SignedMessage::encode_to(Encoder& e) const {
  e.obj(message).obj(pubkey).obj(signature);
}

Result<SignedMessage> SignedMessage::decode_from(Decoder& d) {
  SignedMessage sm;
  HC_TRY(msg, d.obj<Message>());
  HC_TRY(pk, d.obj<crypto::PublicKey>());
  HC_TRY(sig, d.obj<crypto::Signature>());
  sm.message = std::move(msg);
  sm.pubkey = pk;
  sm.signature = sig;
  return sm;
}

Cid SignedMessage::cid() const {
  return Cid::of(CidCodec::kMessage, encode(*this));
}

}  // namespace hc::chain
