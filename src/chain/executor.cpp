#include "chain/executor.hpp"

#include <cassert>

#include "common/hash.hpp"
#include "crypto/batchverify.hpp"
#include "obs/profile.hpp"

namespace hc::chain {

void ActorRegistry::install(CodeId code, std::unique_ptr<ActorLogic> logic) {
  logics_[code] = std::move(logic);
}

ActorLogic* ActorRegistry::find(CodeId code) const {
  auto it = logics_.find(code);
  return it == logics_.end() ? nullptr : it->second.get();
}

namespace {

constexpr std::uint64_t kFirstDynamicActorId = 100;
constexpr int kMaxCallDepth = 32;

/// Runtime implementation backing one message invocation (and, recursively,
/// its internal sends).
class ExecRuntime final : public Runtime {
 public:
  ExecRuntime(const Executor& exec, StateTree& tree,
              const ExecutionContext& ctx, GasMeter& meter, Address self,
              Address caller, Address origin, TokenAmount value,
              std::vector<ActorEvent>& events, int depth)
      : exec_(exec),
        tree_(tree),
        ctx_(ctx),
        meter_(meter),
        self_(self),
        caller_(caller),
        origin_(origin),
        value_(value),
        events_(events),
        depth_(depth) {}

  [[nodiscard]] Address self() const override { return self_; }
  [[nodiscard]] Address caller() const override { return caller_; }
  [[nodiscard]] Address origin() const override { return origin_; }
  [[nodiscard]] TokenAmount value_received() const override { return value_; }
  [[nodiscard]] Epoch current_epoch() const override { return ctx_.height; }

  [[nodiscard]] Result<Bytes> get_state() override {
    HC_TRY_STATUS(meter_.charge(meter_.schedule().storage_read));
    const ActorEntry* entry = tree_.get(self_);
    if (entry == nullptr) {
      return Error(Errc::kNotFound, "actor has no state entry");
    }
    return entry->state;
  }

  [[nodiscard]] Status set_state(Bytes state) override {
    HC_TRY_STATUS(meter_.charge(meter_.schedule().storage_write_base +
                                meter_.schedule().storage_per_byte *
                                    static_cast<Gas>(state.size())));
    tree_.get_or_create(self_).state = std::move(state);
    return ok_status();
  }

  [[nodiscard]] TokenAmount balance() const override {
    const ActorEntry* entry = tree_.get(self_);
    return entry == nullptr ? TokenAmount() : entry->balance;
  }

  [[nodiscard]] Result<Bytes> send(const Address& to, MethodNum method,
                                   Bytes params, TokenAmount value) override {
    HC_TRY_STATUS(meter_.charge(meter_.schedule().internal_send));
    if (depth_ >= kMaxCallDepth) {
      return Error(Errc::kExhausted, "actor call depth exceeded");
    }
    // Nested sends roll back independently on failure: replay the undo
    // journal instead of deep-copying the whole tree (DESIGN.md §12).
    const StateTree::JournalMark mark = tree_.journal_mark();
    Message msg;
    msg.from = self_;
    msg.to = to;
    msg.value = value;
    msg.method = method;
    msg.params = std::move(params);
    auto result = exec_.invoke_inner(tree_, msg, ctx_, meter_, origin_,
                                     events_, depth_ + 1);
    if (!result) {
      tree_.journal_revert(mark);
      return result;
    }
    return result;
  }

  [[nodiscard]] Result<Address> create_actor(CodeId code,
                                             Bytes state) override {
    if (self_ != kInitAddr) {
      return Error(Errc::kPermissionDenied,
                   "only the Init actor may create actors");
    }
    HC_TRY_STATUS(meter_.charge(meter_.schedule().actor_creation));
    // The id counter lives in the Init actor's entry nonce field, making it
    // part of consensus state.
    ActorEntry& init = tree_.get_or_create(kInitAddr);
    if (init.nonce < kFirstDynamicActorId) init.nonce = kFirstDynamicActorId;
    const Address addr = Address::id(init.nonce++);
    ActorEntry entry;
    entry.code = code;
    entry.state = std::move(state);
    tree_.set(addr, entry);
    return addr;
  }

  void emit_event(std::string kind, Bytes payload) override {
    events_.push_back(ActorEvent{std::move(kind), std::move(payload)});
  }

  [[nodiscard]] Status charge_gas(Gas amount) override {
    return meter_.charge(amount);
  }

  [[nodiscard]] Digest randomness(std::string_view tag) override {
    Encoder e;
    e.i64(ctx_.height).obj(self_).str(std::string(tag));
    return Sha256::hash(e.data());
  }

 private:
  const Executor& exec_;
  StateTree& tree_;
  const ExecutionContext& ctx_;
  GasMeter& meter_;
  Address self_;
  Address caller_;
  Address origin_;
  TokenAmount value_;
  std::vector<ActorEvent>& events_;
  int depth_;
};

}  // namespace

// Out-of-line so ExecRuntime (in the anonymous namespace) can call back in.
Result<Bytes> Executor::invoke_inner(StateTree& tree, const Message& msg,
                                     const ExecutionContext& ctx,
                                     GasMeter& meter, const Address& origin,
                                     std::vector<ActorEvent>& events,
                                     int depth) const {
  // Value transfer. Minting: only the system address sends unbacked value.
  if (!msg.value.is_zero()) {
    HC_TRY_STATUS(meter.charge(schedule_.transfer));
    if (msg.value.negative()) {
      return Error(Errc::kInvalidArgument, "negative value transfer");
    }
    if (msg.from != kSystemAddr) {
      ActorEntry& sender = tree.get_or_create(msg.from);
      if (sender.balance < msg.value) {
        return Error(Errc::kInsufficientFunds,
                     "balance " + sender.balance.to_string() + " < value " +
                         msg.value.to_string());
      }
      sender.balance -= msg.value;
    }
    tree.get_or_create(msg.to).balance += msg.value;
  }

  ActorEntry& receiver = tree.get_or_create(msg.to);
  if (receiver.code == kCodeNone) {
    // Auto-create plain accounts on first touch (bare transfers only).
    receiver.code = kCodeAccount;
  }

  if (msg.method == 0) return Bytes{};  // bare transfer, no dispatch

  HC_TRY_STATUS(meter.charge(schedule_.method_invocation));
  ActorLogic* logic = registry_.find(receiver.code);
  if (logic == nullptr) {
    return Error(Errc::kInvalidArgument,
                 "no actor logic for code " + std::to_string(receiver.code));
  }
  ExecRuntime rt(*this, tree, ctx, meter, msg.to, msg.from, origin,
                 msg.value, events, depth);
  return logic->invoke(rt, msg.method, msg.params);
}

Receipt Executor::invoke_message(StateTree& tree, const Message& msg,
                                 const ExecutionContext& ctx, GasMeter& meter,
                                 bool implicit) const {
  Receipt receipt;
  const StateTree::JournalMark mark = tree.journal_mark();
  auto result = invoke_inner(tree, msg, ctx, meter, msg.from, receipt.events,
                             /*depth=*/0);
  receipt.gas_used = meter.used();
  if (!result) {
    tree.journal_revert(mark);
    receipt.events.clear();
    receipt.error = result.error().to_string();
    switch (result.error().code()) {
      case Errc::kExhausted:
        receipt.exit = ExitCode::kSysOutOfGas;
        break;
      case Errc::kInsufficientFunds:
        receipt.exit = ExitCode::kSysInsufficientFunds;
        break;
      default:
        receipt.exit = ExitCode::kActorError;
        break;
    }
    return receipt;
  }
  (void)implicit;
  receipt.exit = ExitCode::kOk;
  receipt.ret = std::move(result).value();
  return receipt;
}

Receipt Executor::apply(StateTree& tree, const SignedMessage& sm,
                        const ExecutionContext& ctx) const {
  return apply(tree, sm, ctx, sm.verify_with(arena_));
}

Receipt Executor::apply(StateTree& tree, const SignedMessage& sm,
                        const ExecutionContext& ctx, bool sig_valid) const {
  const Message& msg = sm.message;
  Receipt receipt;

  // Outermost commit boundary: nothing before this message can revert, so
  // undo entries from the previous message are dead weight.
  tree.journal_reset();

  GasMeter meter(msg.gas_limit, schedule_);
  if (!meter
           .charge(schedule_.message_base + schedule_.signature_check +
                   schedule_.per_param_byte *
                       static_cast<Gas>(msg.params.size()))
           .ok()) {
    receipt.exit = ExitCode::kSysOutOfGas;
    receipt.error = "gas limit below intrinsic cost";
    return receipt;
  }

  if (!sig_valid) {
    receipt.exit = ExitCode::kSysInvalidSignature;
    receipt.error = "envelope signature invalid";
    return receipt;
  }

  const ActorEntry* sender = tree.get(msg.from);
  if (sender == nullptr) {
    receipt.exit = ExitCode::kSysInsufficientFunds;
    receipt.error = "sender does not exist";
    return receipt;
  }
  if (msg.nonce != sender->nonce) {
    receipt.exit = ExitCode::kSysInvalidNonce;
    receipt.error = "expected nonce " + std::to_string(sender->nonce) +
                    ", got " + std::to_string(msg.nonce);
    return receipt;
  }
  const TokenAmount max_fee = msg.gas_price * msg.gas_limit;
  if (sender->balance < max_fee) {
    receipt.exit = ExitCode::kSysInsufficientFunds;
    receipt.error = "cannot cover gas fee";
    return receipt;
  }

  // Commit point: nonce advances and the fee escrow is taken even if the
  // message later fails.
  {
    ActorEntry& s = tree.get_or_create(msg.from);
    s.nonce += 1;
    s.balance -= max_fee;
  }

  receipt = invoke_message(tree, msg, ctx, meter, /*implicit=*/false);

  // Refund unused gas; pay the miner (fee flows are how subnet miners earn,
  // paper §II).
  const TokenAmount fee = msg.gas_price * receipt.gas_used;
  const TokenAmount refund = max_fee - fee;
  tree.get_or_create(msg.from).balance += refund;
  tree.get_or_create(ctx.miner.valid() ? ctx.miner : kRewardAddr).balance +=
      fee;
  return receipt;
}

Receipt Executor::apply_implicit(StateTree& tree, const Message& msg,
                                 const ExecutionContext& ctx) const {
  // Implicit messages execute with a large fixed budget; their cost is
  // accounted (receipt.gas_used) but not charged to anyone.
  tree.journal_reset();  // outermost commit boundary, as in apply()
  GasMeter meter(/*limit=*/static_cast<Gas>(1) << 32, schedule_);
  (void)meter.charge(schedule_.message_base +
                     schedule_.per_param_byte *
                         static_cast<Gas>(msg.params.size()));
  return invoke_message(tree, msg, ctx, meter, /*implicit=*/true);
}

std::vector<Receipt> Executor::apply_block(StateTree& tree,
                                           const Block& block) const {
  static const obs::PhaseId execute_phase =
      obs::Profiler::instance().phase("chain/execute");
  obs::ProfileScope prof(execute_phase);
  ExecutionContext ctx;
  ctx.height = block.header.height;
  ctx.miner = block.header.miner;
  ctx.timestamp = block.header.timestamp;

  std::vector<Receipt> receipts;
  receipts.reserve(block.cross_messages.size() + block.messages.size());
  for (const auto& cm : block.cross_messages) {
    receipts.push_back(apply_implicit(tree, cm, ctx));
  }

  // Batched signature pre-pass: every signing payload is encoded into the
  // block arena (one counting pass + one bump allocation each, no heap),
  // then the whole block resolves against the SigCache in one shard-grouped
  // pass with real Schnorr math only for misses.
  std::vector<char> sig_ok(block.messages.size(), 0);
  if (!block.messages.empty()) {
    crypto::BatchVerifier batch;
    for (const auto& sm : block.messages) {
      batch.add(sm.pubkey, arena_.encode_obj(sm.message), sm.signature);
    }
    const std::vector<bool> verified = batch.flush();
    for (std::size_t i = 0; i < block.messages.size(); ++i) {
      sig_ok[i] =
          (verified[i] && block.messages[i].sender_matches_key()) ? 1 : 0;
    }
  }
  for (std::size_t i = 0; i < block.messages.size(); ++i) {
    receipts.push_back(apply(tree, block.messages[i], ctx, sig_ok[i] != 0));
  }
  arena_.reset();
  return receipts;
}

}  // namespace hc::chain
