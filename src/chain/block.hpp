// Blocks and headers.
//
// Paper §IV-B: "Blocks in subnets include both messages originated within
// the subnet and cross-msgs targeting (or traversing) the subnet" — hence
// the two message sections. Cross-msgs are unsigned protocol-injected
// messages whose validity is checked against parent state / checkpoints by
// the consensus layer rather than by signature.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/message.hpp"
#include "common/cid.hpp"
#include "crypto/merkle.hpp"

namespace hc::chain {

/// Chain height / consensus epoch.
using Epoch = std::int64_t;

struct BlockHeader {
  Address miner;
  Epoch height = 0;
  Cid parent;           // previous block CID (null for genesis)
  Cid state_root;       // state after executing this block
  Digest msgs_root{};   // merkle root over all included messages
  std::int64_t timestamp = 0;  // simulated time (microseconds)
  Bytes ticket;         // consensus-specific randomness/leader proof
  Bytes proof;          // consensus-specific commitment (e.g. quorum cert)

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<BlockHeader> decode_from(Decoder& d);
  [[nodiscard]] Cid cid() const;
  bool operator==(const BlockHeader&) const = default;
};

struct Block {
  BlockHeader header;
  std::vector<SignedMessage> messages;   // subnet-internal, user-signed
  std::vector<Message> cross_messages;   // protocol-injected cross-msgs

  /// Recompute the merkle root over both message sections.
  [[nodiscard]] Digest compute_msgs_root() const;

  /// Deterministic logical footprint: fixed struct sizes plus dynamic
  /// payloads (params, ticket, proof). Feeds the chain store's retention
  /// accounting (DESIGN.md §17); never allocator capacities.
  [[nodiscard]] std::size_t mem_bytes() const;

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<Block> decode_from(Decoder& d);
  [[nodiscard]] Cid cid() const { return header.cid(); }
  bool operator==(const Block&) const = default;
};

}  // namespace hc::chain
