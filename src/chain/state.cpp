#include "chain/state.hpp"

#include <algorithm>
#include <cassert>

#include "obs/profile.hpp"

namespace hc::chain {

StateTree::StateTree(const StateTree& other)
    : actors_(other.actors_),
      order_(other.order_),
      tree_(other.tree_),
      dirty_(other.dirty_),
      structure_dirty_(other.structure_dirty_),
      root_valid_(other.root_valid_),
      cached_root_(other.cached_root_),
      clean_total_(other.clean_total_) {
  // journal_ and stats_ intentionally start fresh (see header).
}

StateTree& StateTree::operator=(const StateTree& other) {
  if (this != &other) {
    StateTree tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

void StateTree::revert_to(StateTree snapshot) {
  // Adopt the snapshot's state and commitment cache wholesale, but keep
  // this instance's accumulated stats; undo info predating the wholesale
  // replacement is meaningless.
  CommitStats kept = stats_;
  *this = std::move(snapshot);
  stats_ = kept;
  journal_.clear();
}

const ActorEntry* StateTree::get(const Address& addr) const {
  auto it = actors_.find(addr);
  return it == actors_.end() ? nullptr : &it->second;
}

void StateTree::mark_dirty(const Address& addr, const ActorEntry* existing) {
  root_valid_ = false;
  if (dirty_.insert(addr).second && existing != nullptr) {
    clean_total_ -= existing->balance;
  }
}

void StateTree::note_mutation(const Address& addr,
                              const ActorEntry* existing) {
  ++stats_.journal_entries;
  journal_.push_back({addr, existing == nullptr
                                ? std::nullopt
                                : std::optional<ActorEntry>(*existing)});
  mark_dirty(addr, existing);
}

void StateTree::set(const Address& addr, ActorEntry entry) {
  auto it = actors_.find(addr);
  if (it == actors_.end()) {
    note_mutation(addr, nullptr);
    structure_dirty_ = true;
    actors_.emplace(addr, std::move(entry));
  } else {
    note_mutation(addr, &it->second);
    it->second = std::move(entry);
  }
}

ActorEntry& StateTree::get_or_create(const Address& addr) {
  auto it = actors_.find(addr);
  if (it == actors_.end()) {
    note_mutation(addr, nullptr);
    structure_dirty_ = true;
    it = actors_.emplace(addr, ActorEntry{}).first;
  } else {
    // Conservatively treated as a mutation: the caller holds a mutable
    // reference and usually writes through it.
    note_mutation(addr, &it->second);
  }
  return it->second;
}

void StateTree::remove(const Address& addr) {
  auto it = actors_.find(addr);
  if (it == actors_.end()) return;
  note_mutation(addr, &it->second);
  structure_dirty_ = true;
  actors_.erase(it);
}

void StateTree::restore(const Address& addr, std::optional<ActorEntry> prior) {
  auto it = actors_.find(addr);
  mark_dirty(addr, it == actors_.end() ? nullptr : &it->second);
  if (prior.has_value()) {
    if (it == actors_.end()) {
      structure_dirty_ = true;
      actors_.emplace(addr, std::move(*prior));
    } else {
      it->second = std::move(*prior);
    }
  } else if (it != actors_.end()) {
    structure_dirty_ = true;
    actors_.erase(it);
  }
}

void StateTree::journal_revert(JournalMark mark) {
  assert(mark <= journal_.size() && "revert past a journal reset");
  if (mark < journal_.size()) ++stats_.journal_reverts;
  while (journal_.size() > mark) {
    JournalEntry e = std::move(journal_.back());
    journal_.pop_back();
    restore(e.addr, std::move(e.prior));
  }
}

TokenAmount StateTree::total_balance() const {
  // Invariant: clean_total_ sums every non-dirty entry; dirty entries are
  // read live (their balances may have changed through get_or_create refs).
  TokenAmount total = clean_total_;
  for (const auto& addr : dirty_) {
    if (auto it = actors_.find(addr); it != actors_.end()) {
      total += it->second.balance;
    }
  }
  return total;
}

void StateTree::encode_to(Encoder& e) const {
  e.varint(actors_.size());
  for (const auto& [addr, entry] : actors_) {
    e.obj(addr).obj(entry);
  }
}

Result<StateTree> StateTree::decode_from(Decoder& d) {
  StateTree t;
  HC_TRY(count, d.varint());
  if (count > (1u << 22)) {
    return Error(Errc::kDecodeError, "state tree too large");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    HC_TRY(addr, d.obj<Address>());
    HC_TRY(entry, d.obj<ActorEntry>());
    t.clean_total_ += entry.balance;  // decoded entries start clean
    t.actors_.emplace(addr, std::move(entry));
  }
  t.structure_dirty_ = count > 0;  // no cached tree yet
  return t;
}

Bytes StateTree::leaf_bytes(const Address& addr, const ActorEntry& entry) {
  Encoder e;
  e.obj(addr).obj(entry);
  return std::move(e).take();
}

void StateTree::rebuild_structure() const {
  // Merge the current actor set against the cached leaf order: clean
  // surviving leaves keep their cached digest, dirty/new ones are
  // re-encoded and rehashed. O(N) node hashes, O(dirty+new) leaf work.
  std::vector<Address> new_order;
  std::vector<Digest> new_digests;
  new_order.reserve(actors_.size());
  new_digests.reserve(actors_.size());
  const auto& old_digests = tree_.leaf_digests();
  std::size_t oi = 0;
  for (const auto& [addr, entry] : actors_) {
    while (oi < order_.size() && order_[oi] < addr) ++oi;  // removed leaves
    const bool cached = oi < order_.size() && order_[oi] == addr;
    if (cached && !dirty_.contains(addr)) {
      new_digests.push_back(old_digests[oi]);
    } else {
      new_digests.push_back(crypto::merkle_leaf_hash(leaf_bytes(addr, entry)));
      ++stats_.leaf_rehashes;
    }
    if (cached) ++oi;
    new_order.push_back(addr);
  }
  const std::uint64_t before = tree_.node_hashes();
  tree_.assign(std::move(new_digests));
  stats_.node_hashes += tree_.node_hashes() - before;
  order_ = std::move(new_order);
}

void StateTree::update_dirty_leaves() const {
  if (dirty_.empty()) return;
  std::vector<std::pair<std::size_t, Digest>> changes;
  changes.reserve(dirty_.size());
  for (const auto& addr : dirty_) {
    const auto it = actors_.find(addr);
    assert(it != actors_.end() && "content-dirty leaf must exist");
    const auto pos = std::lower_bound(order_.begin(), order_.end(), addr);
    assert(pos != order_.end() && *pos == addr && "leaf missing from order");
    changes.emplace_back(
        static_cast<std::size_t>(pos - order_.begin()),
        crypto::merkle_leaf_hash(leaf_bytes(addr, it->second)));
    ++stats_.leaf_rehashes;
  }
  // dirty_ iterates in address order == leaf order, so `changes` is sorted.
  const std::uint64_t before = tree_.node_hashes();
  tree_.update(changes);
  stats_.node_hashes += tree_.node_hashes() - before;
}

Cid StateTree::flush() const {
  if (root_valid_) {
    ++stats_.flush_cache_hits;
    return cached_root_;
  }
  // Cache hits above stay unprofiled (they are a compare + return); only
  // real re-hash work is attributed to state/flush.
  static const obs::PhaseId flush_phase =
      obs::Profiler::instance().phase("state/flush");
  obs::ProfileScope prof(flush_phase);
  if (structure_dirty_) {
    rebuild_structure();
  } else {
    update_dirty_leaves();
  }
  // Reconcile the running supply total: dirty balances are final now.
  for (const auto& addr : dirty_) {
    if (auto it = actors_.find(addr); it != actors_.end()) {
      clean_total_ += it->second.balance;
    }
  }
  dirty_.clear();
  structure_dirty_ = false;
  cached_root_ = Cid(CidCodec::kStateRoot, tree_.root());
  root_valid_ = true;
  ++stats_.flushes;
  return cached_root_;
}

Result<crypto::MerkleProof> StateTree::prove(const Address& addr) const {
  if (!actors_.contains(addr)) {
    return Error(Errc::kNotFound, "no actor at " + addr.to_string());
  }
  (void)flush();  // bring the cached tree up to date (free when clean)
  const auto pos = std::lower_bound(order_.begin(), order_.end(), addr);
  assert(pos != order_.end() && *pos == addr);
  return tree_.prove(static_cast<std::size_t>(pos - order_.begin()));
}

std::size_t StateTree::mem_bytes() const {
  std::size_t total = sizeof(StateTree);
  for (const auto& [addr, entry] : actors_) {
    total += sizeof(addr) + sizeof(entry) + entry.state.size();
  }
  for (const auto& j : journal_) {
    total += sizeof(j) + (j.prior ? j.prior->state.size() : 0);
  }
  total += order_.size() * sizeof(Address);
  // The incremental tree holds one digest per node over ~2N nodes.
  total += 2 * order_.size() * sizeof(Digest);
  total += dirty_.size() * sizeof(Address);
  return total;
}

bool StateTree::verify_entry(const Cid& root, const Address& addr,
                             const ActorEntry& entry,
                             const crypto::MerkleProof& proof) {
  if (root.codec() != CidCodec::kStateRoot) return false;
  return crypto::MerkleTree::verify(root.digest(), leaf_bytes(addr, entry),
                                    proof);
}

}  // namespace hc::chain
