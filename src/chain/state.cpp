#include "chain/state.hpp"

namespace hc::chain {

const ActorEntry* StateTree::get(const Address& addr) const {
  auto it = actors_.find(addr);
  return it == actors_.end() ? nullptr : &it->second;
}

void StateTree::set(const Address& addr, ActorEntry entry) {
  actors_[addr] = std::move(entry);
}

ActorEntry& StateTree::get_or_create(const Address& addr) {
  return actors_[addr];
}

void StateTree::remove(const Address& addr) { actors_.erase(addr); }

TokenAmount StateTree::total_balance() const {
  TokenAmount total;
  for (const auto& [addr, entry] : actors_) total += entry.balance;
  return total;
}

void StateTree::encode_to(Encoder& e) const {
  e.varint(actors_.size());
  for (const auto& [addr, entry] : actors_) {
    e.obj(addr).obj(entry);
  }
}

Result<StateTree> StateTree::decode_from(Decoder& d) {
  StateTree t;
  HC_TRY(count, d.varint());
  if (count > (1u << 22)) {
    return Error(Errc::kDecodeError, "state tree too large");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    HC_TRY(addr, d.obj<Address>());
    HC_TRY(entry, d.obj<ActorEntry>());
    t.actors_.emplace(addr, std::move(entry));
  }
  return t;
}

Bytes StateTree::leaf_bytes(const Address& addr, const ActorEntry& entry) {
  Encoder e;
  e.obj(addr).obj(entry);
  return std::move(e).take();
}

Cid StateTree::flush() const {
  std::vector<Bytes> leaves;
  leaves.reserve(actors_.size());
  for (const auto& [addr, entry] : actors_) {
    leaves.push_back(leaf_bytes(addr, entry));
  }
  return Cid(CidCodec::kStateRoot, crypto::MerkleTree::root_of(leaves));
}

Result<crypto::MerkleProof> StateTree::prove(const Address& addr) const {
  std::vector<Bytes> leaves;
  leaves.reserve(actors_.size());
  std::size_t index = actors_.size();
  std::size_t i = 0;
  for (const auto& [a, entry] : actors_) {
    if (a == addr) index = i;
    leaves.push_back(leaf_bytes(a, entry));
    ++i;
  }
  if (index == actors_.size()) {
    return Error(Errc::kNotFound, "no actor at " + addr.to_string());
  }
  return crypto::MerkleTree(leaves).prove(index);
}

bool StateTree::verify_entry(const Cid& root, const Address& addr,
                             const ActorEntry& entry,
                             const crypto::MerkleProof& proof) {
  if (root.codec() != CidCodec::kStateRoot) return false;
  return crypto::MerkleTree::verify(root.digest(), leaf_bytes(addr, entry),
                                    proof);
}

}  // namespace hc::chain
