#include "chain/chainstore.hpp"

#include "chain/executor.hpp"

namespace hc::chain {

ChainStore::ChainStore(Block genesis, StateTree genesis_state)
    : state_(genesis_state), genesis_state_(std::move(genesis_state)) {
  by_cid_.emplace(genesis.cid(), 0);
  blocks_.push_back(std::move(genesis));
}

Block ChainStore::make_genesis(const StateTree& state,
                               std::int64_t timestamp) {
  Block genesis;
  genesis.header.miner = kSystemAddr;
  genesis.header.height = 0;
  genesis.header.parent = Cid();
  genesis.header.state_root = state.flush();
  genesis.header.msgs_root = genesis.compute_msgs_root();
  genesis.header.timestamp = timestamp;
  return genesis;
}

Status ChainStore::append(Block block, StateTree new_state) {
  if (block.header.parent != head().cid()) {
    return Error(Errc::kStateConflict, "block does not extend current head");
  }
  if (block.header.height != height() + 1) {
    return Error(Errc::kStateConflict,
                 "expected height " + std::to_string(height() + 1) + ", got " +
                     std::to_string(block.header.height));
  }
  if (block.header.msgs_root != block.compute_msgs_root()) {
    return Error(Errc::kInvalidArgument, "message root mismatch");
  }
  // new_state is a snapshot of the previous head state, so this flush is
  // incremental: only the leaves the block's execution touched are
  // rehashed (DESIGN.md §12).
  if (block.header.state_root != new_state.flush()) {
    return Error(Errc::kInvalidArgument, "state root mismatch");
  }
  by_cid_.emplace(block.cid(), blocks_.size());
  blocks_.push_back(std::move(block));
  state_ = std::move(new_state);
  return ok_status();
}

const Block* ChainStore::block_at(Epoch height) const {
  if (height < 0 || static_cast<std::size_t>(height) >= blocks_.size()) {
    return nullptr;
  }
  return &blocks_[static_cast<std::size_t>(height)];
}

Result<StateTree> ChainStore::state_at(Epoch height,
                                       const Executor& exec) const {
  if (height < 0 || static_cast<std::size_t>(height) >= blocks_.size()) {
    return Error(Errc::kOutOfRange, "no block at requested height");
  }
  StateTree tree = genesis_state_.snapshot();
  for (Epoch h = 1; h <= height; ++h) {
    (void)exec.apply_block(tree, blocks_[static_cast<std::size_t>(h)]);
  }
  if (tree.flush() != blocks_[static_cast<std::size_t>(height)]
                          .header.state_root) {
    return Error(Errc::kInternal, "replay diverged from recorded state root");
  }
  return tree;
}

const Block* ChainStore::block_by_cid(const Cid& cid) const {
  auto it = by_cid_.find(cid);
  return it == by_cid_.end() ? nullptr : &blocks_[it->second];
}

}  // namespace hc::chain
