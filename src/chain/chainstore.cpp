#include "chain/chainstore.hpp"

#include "chain/executor.hpp"

namespace hc::chain {

ChainStore::ChainStore(Block genesis,
                       std::shared_ptr<const StateTree> genesis_state)
    : state_(*genesis_state), genesis_state_(std::move(genesis_state)) {
  by_cid_.emplace(genesis.cid(), 0);
  blocks_bytes_ = genesis.mem_bytes();
  blocks_.push_back(std::move(genesis));
}

ChainStore::ChainStore(Block genesis, StateTree genesis_state)
    : ChainStore(std::move(genesis), std::make_shared<const StateTree>(
                                         std::move(genesis_state))) {}

Block ChainStore::make_genesis(const StateTree& state,
                               std::int64_t timestamp) {
  Block genesis;
  genesis.header.miner = kSystemAddr;
  genesis.header.height = 0;
  genesis.header.parent = Cid();
  genesis.header.state_root = state.flush();
  genesis.header.msgs_root = genesis.compute_msgs_root();
  genesis.header.timestamp = timestamp;
  return genesis;
}

Status ChainStore::append(Block block, StateTree new_state) {
  if (block.header.parent != head().cid()) {
    return Error(Errc::kStateConflict, "block does not extend current head");
  }
  if (block.header.height != height() + 1) {
    return Error(Errc::kStateConflict,
                 "expected height " + std::to_string(height() + 1) + ", got " +
                     std::to_string(block.header.height));
  }
  if (block.header.msgs_root != block.compute_msgs_root()) {
    return Error(Errc::kInvalidArgument, "message root mismatch");
  }
  // new_state is a snapshot of the previous head state, so this flush is
  // incremental: only the leaves the block's execution touched are
  // rehashed (DESIGN.md §12).
  if (block.header.state_root != new_state.flush()) {
    return Error(Errc::kInvalidArgument, "state root mismatch");
  }
  by_cid_.emplace(block.cid(), block.header.height);
  blocks_bytes_ += block.mem_bytes();
  blocks_.push_back(std::move(block));
  state_ = std::move(new_state);
  prune_();
  return ok_status();
}

void ChainStore::set_retention(common::CapacityPolicy policy) {
  retention_ = policy;
  prune_();
}

void ChainStore::prune_() {
  if (!retention_.bounded()) return;
  const bool by_items = retention_.max_items != 0;
  const bool by_bytes = retention_.max_bytes != 0;
  std::size_t drop = 0;
  std::size_t bytes = blocks_bytes_;
  while (blocks_.size() - drop > 1 &&
         ((by_items && blocks_.size() - drop > retention_.max_items) ||
          (by_bytes && bytes > retention_.max_bytes))) {
    const Block& victim = blocks_[drop];
    bytes -= victim.mem_bytes();
    by_cid_.erase(victim.cid());
    ++drop;
  }
  if (drop == 0) return;
  blocks_.erase(blocks_.begin(),
                blocks_.begin() + static_cast<std::ptrdiff_t>(drop));
  blocks_bytes_ = bytes;
  base_height_ += static_cast<Epoch>(drop);
}

const Block* ChainStore::block_at(Epoch height) const {
  if (height < base_height_ || height > this->height()) {
    return nullptr;
  }
  return &blocks_[static_cast<std::size_t>(height - base_height_)];
}

Result<StateTree> ChainStore::state_at(Epoch height,
                                       const Executor& exec) const {
  if (height < 0 || height > this->height()) {
    return Error(Errc::kOutOfRange, "no block at requested height");
  }
  if (base_height_ > 0) {
    // Replay starts from genesis; once the window slid, the prefix is gone.
    return Error(Errc::kOutOfRange, "history pruned by retention policy");
  }
  StateTree tree = genesis_state_->snapshot();
  for (Epoch h = 1; h <= height; ++h) {
    (void)exec.apply_block(tree, blocks_[static_cast<std::size_t>(h)]);
  }
  if (tree.flush() != blocks_[static_cast<std::size_t>(height)]
                          .header.state_root) {
    return Error(Errc::kInternal, "replay diverged from recorded state root");
  }
  return tree;
}

const Block* ChainStore::block_by_cid(const Cid& cid) const {
  auto it = by_cid_.find(cid);
  return it == by_cid_.end() ? nullptr : block_at(it->second);
}

std::size_t ChainStore::mem_bytes() const {
  return blocks_bytes_ + state_.mem_bytes() +
         by_cid_.size() * (sizeof(Cid) + sizeof(Epoch));
}

}  // namespace hc::chain
