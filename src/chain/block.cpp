#include "chain/block.hpp"

namespace hc::chain {

void BlockHeader::encode_to(Encoder& e) const {
  e.obj(miner).i64(height).obj(parent).obj(state_root);
  e.raw(BytesView(msgs_root.data(), msgs_root.size()));
  e.i64(timestamp).bytes(ticket).bytes(proof);
}

Result<BlockHeader> BlockHeader::decode_from(Decoder& d) {
  BlockHeader h;
  HC_TRY(miner, d.obj<Address>());
  HC_TRY(height, d.i64());
  HC_TRY(parent, d.obj<Cid>());
  HC_TRY(state_root, d.obj<Cid>());
  HC_TRY(root_raw, d.raw(32));
  HC_TRY(timestamp, d.i64());
  HC_TRY(ticket, d.bytes());
  HC_TRY(proof, d.bytes());
  h.miner = miner;
  h.height = height;
  h.parent = parent;
  h.state_root = state_root;
  std::copy(root_raw.begin(), root_raw.end(), h.msgs_root.begin());
  h.timestamp = timestamp;
  h.ticket = std::move(ticket);
  h.proof = std::move(proof);
  return h;
}

Cid BlockHeader::cid() const { return Cid::of(CidCodec::kBlock, encode(*this)); }

Digest Block::compute_msgs_root() const {
  std::vector<Bytes> leaves;
  leaves.reserve(messages.size() + cross_messages.size());
  for (const auto& m : messages) leaves.push_back(encode(m));
  for (const auto& m : cross_messages) leaves.push_back(encode(m));
  return crypto::MerkleTree::root_of(leaves);
}

std::size_t Block::mem_bytes() const {
  std::size_t total =
      sizeof(Block) + header.ticket.size() + header.proof.size();
  for (const auto& sm : messages) {
    total += sizeof(sm) + sm.message.params.size();
  }
  for (const auto& m : cross_messages) {
    total += sizeof(m) + m.params.size();
  }
  return total;
}

void Block::encode_to(Encoder& e) const {
  e.obj(header).vec(messages).vec(cross_messages);
}

Result<Block> Block::decode_from(Decoder& d) {
  Block b;
  HC_TRY(header, d.obj<BlockHeader>());
  HC_TRY(messages, d.vec<SignedMessage>());
  HC_TRY(cross, d.vec<Message>());
  b.header = header;
  b.messages = std::move(messages);
  b.cross_messages = std::move(cross);
  return b;
}

}  // namespace hc::chain
