// Chain store: the canonical block sequence of one subnet plus the state at
// head. Validates linkage (parent CID, height, message root, state root) on
// append, so a corrupted or equivocating block cannot silently enter the
// store.
//
// Flyweight layout (DESIGN.md §17): the genesis state is held as a shared
// immutable tree — every replica of a subnet (and every restart of one)
// points at ONE copy instead of carrying a private snapshot. Retention is
// optionally bounded: with a CapacityPolicy installed, append() prunes the
// oldest blocks once the window exceeds the cap, trading historic replay
// (state_at) and deep catch-up for a flat memory ceiling.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/block.hpp"
#include "chain/state.hpp"
#include "common/capacity.hpp"

namespace hc::chain {

class ChainStore {
 public:
  /// Start a chain from a genesis block + matching state. `genesis_state`
  /// must be the state the genesis block's state_root commits to; callers
  /// sharing one tree across stores must flush it ONCE before sharing
  /// (flush() mutates the commitment cache, see StateTree).
  ChainStore(Block genesis, std::shared_ptr<const StateTree> genesis_state);

  /// Convenience for single-store callers (tests, raw usage): wraps the
  /// tree into a private shared holder.
  ChainStore(Block genesis, StateTree genesis_state);

  /// Build a conventional genesis for the given initial state.
  [[nodiscard]] static Block make_genesis(const StateTree& state,
                                          std::int64_t timestamp);

  [[nodiscard]] const Block& head() const { return blocks_.back(); }
  [[nodiscard]] Epoch height() const { return head().header.height; }
  [[nodiscard]] const StateTree& state() const { return state_; }
  /// Blocks currently retained (== height()+1 while unbounded).
  [[nodiscard]] std::size_t length() const { return blocks_.size(); }

  /// Append a block whose execution produced `new_state`. Validates:
  /// parent == head CID, height == head+1, msgs_root, state_root. With a
  /// bounded retention policy, prunes the oldest blocks past the cap.
  Status append(Block block, StateTree new_state);

  /// Bound the retained block window (0 fields = unbounded, the default).
  /// Catch-up and state_at need the pruned blocks, so callers must size
  /// the window beyond the worst replica lag they tolerate.
  void set_retention(common::CapacityPolicy policy);
  [[nodiscard]] const common::CapacityPolicy& retention() const {
    return retention_;
  }

  /// Height of the oldest retained block (0 while unbounded).
  [[nodiscard]] Epoch base_height() const { return base_height_; }

  /// nullptr when out of range or pruned by the retention policy.
  [[nodiscard]] const Block* block_at(Epoch height) const;
  [[nodiscard]] const Block* block_by_cid(const Cid& cid) const;

  /// Reconstruct the state as of `height` by replaying from genesis
  /// (deterministic; used for historic proofs and audits). Fails when the
  /// height is out of range, replay does not reproduce the recorded state
  /// root, or the retention policy has pruned the needed history.
  [[nodiscard]] Result<StateTree> state_at(Epoch height,
                                           const class Executor& exec) const;

  /// Retained blocks, oldest first (read-only view for audits/benches).
  /// blocks()[i] is the block at height base_height()+i.
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }

  /// Deterministic logical footprint of this store: retained blocks plus
  /// the head state (logical sizes only). The shared genesis tree is NOT
  /// counted — it belongs to the subnet, not to any one replica.
  [[nodiscard]] std::size_t mem_bytes() const;

 private:
  void prune_();

  std::vector<Block> blocks_;  // window [base_height_, height()]
  std::unordered_map<Cid, Epoch> by_cid_;
  StateTree state_;
  std::shared_ptr<const StateTree> genesis_state_;
  common::CapacityPolicy retention_;
  Epoch base_height_ = 0;
  std::size_t blocks_bytes_ = 0;  // Σ mem_bytes() of retained blocks
};

}  // namespace hc::chain
