// Chain store: the canonical block sequence of one subnet plus the state at
// head. Validates linkage (parent CID, height, message root, state root) on
// append, so a corrupted or equivocating block cannot silently enter the
// store.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/block.hpp"
#include "chain/state.hpp"

namespace hc::chain {

class ChainStore {
 public:
  /// Start a chain from a genesis block + matching state.
  ChainStore(Block genesis, StateTree genesis_state);

  /// Build a conventional genesis for the given initial state.
  [[nodiscard]] static Block make_genesis(const StateTree& state,
                                          std::int64_t timestamp);

  [[nodiscard]] const Block& head() const { return blocks_.back(); }
  [[nodiscard]] Epoch height() const { return head().header.height; }
  [[nodiscard]] const StateTree& state() const { return state_; }
  [[nodiscard]] std::size_t length() const { return blocks_.size(); }

  /// Append a block whose execution produced `new_state`. Validates:
  /// parent == head CID, height == head+1, msgs_root, state_root.
  Status append(Block block, StateTree new_state);

  [[nodiscard]] const Block* block_at(Epoch height) const;
  [[nodiscard]] const Block* block_by_cid(const Cid& cid) const;

  /// Reconstruct the state as of `height` by replaying from genesis
  /// (deterministic; used for historic proofs and audits). Fails when the
  /// height is out of range or replay does not reproduce the recorded
  /// state root.
  [[nodiscard]] Result<StateTree> state_at(Epoch height,
                                           const class Executor& exec) const;

  /// All blocks, genesis first (read-only view for audits/benches).
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }

 private:
  std::vector<Block> blocks_;
  std::unordered_map<Cid, std::size_t> by_cid_;
  StateTree state_;
  StateTree genesis_state_;
};

}  // namespace hc::chain
