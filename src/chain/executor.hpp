// Message executor: the VM.
//
// Applies messages to a StateTree with gas metering, nonce/funds checks,
// revert-on-failure semantics and synchronous internal sends. Reverts —
// both per-message and per-nested-send — replay the tree's undo journal
// backwards instead of restoring a deep-copied snapshot, so a failed
// message costs O(entries it touched), not O(all actors). Cross-net
// messages enter through apply_implicit(): they carry no signature, pay no
// fee, and — uniquely — may *mint* when sent from the system address, which
// is how top-down funds materialize inside a child subnet (paper §IV-A:
// "flowing messages trigger the minting of new funds in destination
// subnets").
#pragma once

#include <string>
#include <vector>

#include "chain/actor.hpp"
#include "chain/block.hpp"
#include "chain/gas.hpp"
#include "chain/message.hpp"
#include "chain/receipt.hpp"
#include "chain/state.hpp"
#include "common/arena.hpp"

namespace hc::chain {

/// Per-block execution context.
struct ExecutionContext {
  Epoch height = 0;
  Address miner;
  std::int64_t timestamp = 0;
};

class Executor {
 public:
  Executor(const ActorRegistry& registry, GasSchedule schedule)
      : registry_(registry), schedule_(schedule) {}

  /// Apply a user-signed message: signature, nonce and fee enforcement.
  Receipt apply(StateTree& tree, const SignedMessage& sm,
                const ExecutionContext& ctx) const;

  /// Same, with the signature outcome precomputed by a batch pre-pass
  /// (apply_block verifies a whole block's signatures through one
  /// BatchVerifier before executing). Semantics are identical to apply():
  /// the intrinsic-gas check still precedes the signature check.
  Receipt apply(StateTree& tree, const SignedMessage& sm,
                const ExecutionContext& ctx, bool sig_valid) const;

  /// Apply a protocol-injected message (cross-msg / reward). No signature,
  /// no nonce, no fee; minting allowed from kSystemAddr.
  Receipt apply_implicit(StateTree& tree, const Message& msg,
                         const ExecutionContext& ctx) const;

  /// Apply all messages of a block in order (cross-msgs first, mirroring
  /// their protocol-assigned total order; then user messages). Returns one
  /// receipt per message in that order.
  std::vector<Receipt> apply_block(StateTree& tree, const Block& block) const;

  [[nodiscard]] const GasSchedule& schedule() const { return schedule_; }

  /// Per-block transient arena (signature payloads, scratch). Reset at the
  /// end of every apply_block; exposed so the owning node can flush its
  /// allocation stats into obs counters at deterministic points.
  [[nodiscard]] Arena& arena() const { return arena_; }

  /// Internal invocation path shared by top-level apply and nested sends.
  /// Exposed for the Runtime implementation; not part of the public API.
  Result<Bytes> invoke_inner(StateTree& tree, const Message& msg,
                             const ExecutionContext& ctx, GasMeter& meter,
                             const Address& origin,
                             std::vector<ActorEvent>& events, int depth) const;

 private:
  /// Shared invocation path once envelope checks passed.
  Receipt invoke_message(StateTree& tree, const Message& msg,
                         const ExecutionContext& ctx, GasMeter& meter,
                         bool implicit) const;

  const ActorRegistry& registry_;
  GasSchedule schedule_;
  // Mutable: apply_block is logically const (the VM has no state of its
  // own) but reuses this scratch arena across blocks. Executors are
  // lane-local, never shared across threads.
  mutable Arena arena_;
};

}  // namespace hc::chain
