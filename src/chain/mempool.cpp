#include "chain/mempool.hpp"

namespace hc::chain {

Status Mempool::add(SignedMessage msg) {
  if (!msg.verify()) {
    return Error(Errc::kInvalidSignature, "mempool rejects unsigned message");
  }
  auto& per_sender = pending_[msg.message.from];
  const std::uint64_t nonce = msg.message.nonce;
  if (per_sender.contains(nonce)) {
    return Error(Errc::kAlreadyExists,
                 "duplicate nonce " + std::to_string(nonce));
  }
  per_sender.emplace(nonce, std::move(msg));
  return ok_status();
}

std::vector<SignedMessage> Mempool::select(
    std::size_t max,
    const std::function<std::uint64_t(const Address&)>& next_nonce) const {
  std::vector<SignedMessage> out;
  for (const auto& [sender, msgs] : pending_) {
    std::uint64_t expected = next_nonce(sender);
    for (auto it = msgs.find(expected); it != msgs.end(); ++it) {
      if (it->first != expected) break;  // nonce gap: stop this sender
      if (out.size() >= max) return out;
      out.push_back(it->second);
      ++expected;
    }
  }
  return out;
}

void Mempool::remove_included(const std::vector<SignedMessage>& included) {
  for (const auto& sm : included) {
    auto it = pending_.find(sm.message.from);
    if (it == pending_.end()) continue;
    it->second.erase(sm.message.nonce);
    if (it->second.empty()) pending_.erase(it);
  }
}

void Mempool::prune_stale(
    const std::function<std::uint64_t(const Address&)>& next_nonce) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    const std::uint64_t expected = next_nonce(it->first);
    auto& msgs = it->second;
    msgs.erase(msgs.begin(), msgs.lower_bound(expected));
    it = msgs.empty() ? pending_.erase(it) : std::next(it);
  }
}

std::size_t Mempool::size() const {
  std::size_t n = 0;
  for (const auto& [sender, msgs] : pending_) n += msgs.size();
  return n;
}

}  // namespace hc::chain
