#include "chain/mempool.hpp"

namespace hc::chain {

using common::ShedReason;

bool Mempool::EvictKey::lower_priority_than(const EvictKey& o) const {
  if (gas_price != o.gas_price) return gas_price < o.gas_price;
  if (sender != o.sender) return sender > o.sender;
  return nonce > o.nonce;
}

void Mempool::erase_one(const Address& sender, std::uint64_t nonce) {
  auto it = pending_.find(sender);
  if (it == pending_.end()) return;
  if (it->second.erase(nonce) > 0) --size_;
  if (it->second.empty()) pending_.erase(it);
}

Status Mempool::add(SignedMessage msg, std::uint64_t next_nonce) {
  const bool sig_ok = msg.verify_with(arena_);
  arena_.reset();
  if (!sig_ok) {
    return Error(Errc::kInvalidSignature, "mempool rejects unsigned message");
  }
  const std::uint64_t nonce = msg.message.nonce;
  if (config_.nonce_gap > 0 && nonce >= next_nonce &&
      nonce - next_nonce >= config_.nonce_gap) {
    shed_.count(ShedReason::kNonceGap);
    return Error(Errc::kOverloaded,
                 "nonce " + std::to_string(nonce) + " beyond admission window "
                 "(next " + std::to_string(next_nonce) + " + gap " +
                 std::to_string(config_.nonce_gap) + ")");
  }
  auto& per_sender = pending_[msg.message.from];
  if (per_sender.contains(nonce)) {
    return Error(Errc::kAlreadyExists,
                 "duplicate nonce " + std::to_string(nonce));
  }
  const EvictKey arrival{msg.message.gas_price, msg.message.from, nonce};
  if (config_.max_per_sender > 0 &&
      per_sender.size() >= config_.max_per_sender) {
    // A sender at cap may only trade its own highest nonce for a lower one.
    const std::uint64_t tail = per_sender.rbegin()->first;
    if (nonce > tail) {
      shed_.count(ShedReason::kPerSenderCap);
      return Error(Errc::kOverloaded,
                   "sender pending cap " +
                       std::to_string(config_.max_per_sender) + " reached");
    }
    erase_one(msg.message.from, tail);
    shed_.count(ShedReason::kEvicted);
  }
  if (config_.max_messages > 0 && size_ >= config_.max_messages) {
    // Evict the pool-wide lowest priority tail, unless the arrival itself
    // is the lowest priority — then refuse it instead. Candidates are each
    // sender's highest nonce only, so lower nonces always survive higher
    // ones of the same sender.
    std::optional<EvictKey> victim;
    for (const auto& [sender, msgs] : pending_) {
      if (msgs.empty()) continue;  // placeholder for the arriving sender
      const auto& tail = msgs.rbegin()->second.message;
      const EvictKey key{tail.gas_price, sender, tail.nonce};
      if (!victim || key.lower_priority_than(*victim)) victim = key;
    }
    if (!victim || !victim->lower_priority_than(arrival)) {
      auto self = pending_.find(msg.message.from);
      if (self != pending_.end() && self->second.empty()) pending_.erase(self);
      shed_.count(ShedReason::kQueueFull);
      return Error(Errc::kOverloaded,
                   "mempool full (" + std::to_string(config_.max_messages) +
                       " messages)");
    }
    erase_one(victim->sender, victim->nonce);
    shed_.count(ShedReason::kEvicted);
  }
  pending_[msg.message.from].emplace(nonce, std::move(msg));
  ++size_;
  shed_.observe(size_, 0);
  return ok_status();
}

std::vector<SignedMessage> Mempool::select(
    std::size_t max,
    const std::function<std::uint64_t(const Address&)>& next_nonce) const {
  std::vector<SignedMessage> out;
  for (const auto& [sender, msgs] : pending_) {
    std::uint64_t expected = next_nonce(sender);
    for (auto it = msgs.find(expected); it != msgs.end(); ++it) {
      if (it->first != expected) break;  // nonce gap: stop this sender
      if (out.size() >= max) return out;
      out.push_back(it->second);
      ++expected;
    }
  }
  return out;
}

void Mempool::remove_included(const std::vector<SignedMessage>& included) {
  for (const auto& sm : included) {
    erase_one(sm.message.from, sm.message.nonce);
  }
}

void Mempool::prune_stale(
    const std::function<std::uint64_t(const Address&)>& next_nonce) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    const std::uint64_t expected = next_nonce(it->first);
    auto& msgs = it->second;
    const auto cut = msgs.lower_bound(expected);
    size_ -= static_cast<std::size_t>(std::distance(msgs.begin(), cut));
    msgs.erase(msgs.begin(), cut);
    it = msgs.empty() ? pending_.erase(it) : std::next(it);
  }
}

}  // namespace hc::chain
