// The state tree: every actor's balance, nonce, code and serialized state.
//
// Deterministically committable: flush() canonically encodes the (ordered)
// actor map and returns its CID, which block headers carry as state_root.
// Snapshots support the executor's revert-on-failure semantics and the
// paper's SCA `save()` function (§III-C).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "common/address.hpp"
#include "common/cid.hpp"
#include "common/codec.hpp"
#include "common/token.hpp"
#include "crypto/merkle.hpp"

namespace hc::chain {

/// Identifies which actor logic governs an address.
using CodeId = std::uint64_t;

constexpr CodeId kCodeNone = 0;
constexpr CodeId kCodeAccount = 1;
constexpr CodeId kCodeInit = 2;
constexpr CodeId kCodeSca = 3;          // Subnet Coordinator Actor
constexpr CodeId kCodeSubnetActor = 4;  // user-deployed Subnet Actor (SA)
constexpr CodeId kCodeKvApp = 10;       // demo application actor

/// Well-known addresses (mirroring Filecoin's reserved actor ids).
inline const Address kSystemAddr = Address::id(0);   // protocol itself
inline const Address kInitAddr = Address::id(1);     // actor factory
inline const Address kScaAddr = Address::id(2);      // subnet coordinator
inline const Address kRewardAddr = Address::id(98);  // fee sink for miners
inline const Address kBurnAddr = Address::id(99);    // burnt-funds sink
/// Slashed collateral is quarantined here, not sent to kBurnAddr: burns in
/// kBurnAddr are mirrored by a release on the parent edge (bottom-up value
/// transfer), while a slash destroys value with no parent-side movement.
/// Keeping the dead stake on-chain preserves the parent's exact
/// circulating-supply accounting for this subnet's edge.
inline const Address kSlashPotAddr = Address::id(97);

struct ActorEntry {
  CodeId code = kCodeNone;
  TokenAmount balance;
  std::uint64_t nonce = 0;  // meaningful for account actors
  Bytes state;              // actor-specific serialized state

  void encode_to(Encoder& e) const {
    e.varint(code).obj(balance).varint(nonce).bytes(state);
  }
  [[nodiscard]] static Result<ActorEntry> decode_from(Decoder& d) {
    ActorEntry a;
    HC_TRY(code, d.varint());
    HC_TRY(balance, d.obj<TokenAmount>());
    HC_TRY(nonce, d.varint());
    HC_TRY(state, d.bytes());
    a.code = code;
    a.balance = balance;
    a.nonce = nonce;
    a.state = std::move(state);
    return a;
  }
  bool operator==(const ActorEntry&) const = default;
};

class StateTree {
 public:
  /// Look up an actor; nullptr when absent. The pointer is invalidated by
  /// any mutation of the tree.
  [[nodiscard]] const ActorEntry* get(const Address& addr) const;

  /// True when an actor exists at `addr`.
  [[nodiscard]] bool has(const Address& addr) const { return get(addr) != nullptr; }

  /// Create or overwrite an actor entry.
  void set(const Address& addr, ActorEntry entry);

  /// Mutable access, creating a default (empty, kCodeNone) entry if absent.
  [[nodiscard]] ActorEntry& get_or_create(const Address& addr);

  /// Delete an actor (used when killing subnets' SAs is modeled).
  void remove(const Address& addr);

  /// Total token supply held across all actors (conservation checks).
  [[nodiscard]] TokenAmount total_balance() const;

  /// Canonical commitment of the whole tree: the Merkle root over the
  /// per-actor leaves (address order). Merkle-based so that individual
  /// actor entries can be proven against a committed state root — the
  /// foundation of §III-C fund recovery from dead subnets.
  [[nodiscard]] Cid flush() const;

  /// The canonical leaf bytes for one actor (what proofs verify against).
  [[nodiscard]] static Bytes leaf_bytes(const Address& addr,
                                        const ActorEntry& entry);

  /// Inclusion proof for the actor at `addr` against flush(). Fails with
  /// kNotFound when the actor does not exist.
  [[nodiscard]] Result<crypto::MerkleProof> prove(const Address& addr) const;

  /// Verify that (addr, entry) is part of the state committed by `root`.
  [[nodiscard]] static bool verify_entry(const Cid& root, const Address& addr,
                                         const ActorEntry& entry,
                                         const crypto::MerkleProof& proof);

  /// Deep-copy snapshot / revert, for failed-message rollback.
  [[nodiscard]] StateTree snapshot() const { return *this; }
  void revert_to(StateTree snapshot) { actors_ = std::move(snapshot.actors_); }

  [[nodiscard]] std::size_t actor_count() const { return actors_.size(); }

  /// Iterate in canonical (address) order.
  [[nodiscard]] auto begin() const { return actors_.begin(); }
  [[nodiscard]] auto end() const { return actors_.end(); }

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<StateTree> decode_from(Decoder& d);

 private:
  std::map<Address, ActorEntry> actors_;
};

}  // namespace hc::chain
