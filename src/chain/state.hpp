// The state tree: every actor's balance, nonce, code and serialized state.
//
// Deterministically committable: flush() canonically encodes the (ordered)
// actor map and returns its CID, which block headers carry as state_root.
// The commitment is incremental (DESIGN.md §12): mutators mark leaves
// dirty, per-leaf digests are cached, and a persistent
// crypto::IncrementalMerkleTree rehashes only the changed leaves and their
// root paths — a clean flush() returns the cached CID, a k-leaf change
// costs O(k log N) hashes, and the resulting roots are byte-identical to
// rebuilding the full tree from scratch.
//
// Two rollback mechanisms coexist:
//   - journal_mark()/journal_revert(): an undo log of prior entry values,
//     used by the executor for per-message and nested-send revert without
//     copying the tree;
//   - snapshot()/revert_to(): a deep copy, kept for long-lived forks
//     (genesis templates, parent-view buffers, the paper's SCA `save()`
//     §III-C).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/address.hpp"
#include "common/cid.hpp"
#include "common/codec.hpp"
#include "common/token.hpp"
#include "crypto/merkle.hpp"

namespace hc::chain {

/// Identifies which actor logic governs an address.
using CodeId = std::uint64_t;

constexpr CodeId kCodeNone = 0;
constexpr CodeId kCodeAccount = 1;
constexpr CodeId kCodeInit = 2;
constexpr CodeId kCodeSca = 3;          // Subnet Coordinator Actor
constexpr CodeId kCodeSubnetActor = 4;  // user-deployed Subnet Actor (SA)
constexpr CodeId kCodeKvApp = 10;       // demo application actor

/// Well-known addresses (mirroring Filecoin's reserved actor ids).
inline const Address kSystemAddr = Address::id(0);   // protocol itself
inline const Address kInitAddr = Address::id(1);     // actor factory
inline const Address kScaAddr = Address::id(2);      // subnet coordinator
inline const Address kRewardAddr = Address::id(98);  // fee sink for miners
inline const Address kBurnAddr = Address::id(99);    // burnt-funds sink
/// Slashed collateral is quarantined here, not sent to kBurnAddr: burns in
/// kBurnAddr are mirrored by a release on the parent edge (bottom-up value
/// transfer), while a slash destroys value with no parent-side movement.
/// Keeping the dead stake on-chain preserves the parent's exact
/// circulating-supply accounting for this subnet's edge.
inline const Address kSlashPotAddr = Address::id(97);

struct ActorEntry {
  CodeId code = kCodeNone;
  TokenAmount balance;
  std::uint64_t nonce = 0;  // meaningful for account actors
  Bytes state;              // actor-specific serialized state

  void encode_to(Encoder& e) const {
    e.varint(code).obj(balance).varint(nonce).bytes(state);
  }
  [[nodiscard]] static Result<ActorEntry> decode_from(Decoder& d) {
    ActorEntry a;
    HC_TRY(code, d.varint());
    HC_TRY(balance, d.obj<TokenAmount>());
    HC_TRY(nonce, d.varint());
    HC_TRY(state, d.bytes());
    a.code = code;
    a.balance = balance;
    a.nonce = nonce;
    a.state = std::move(state);
    return a;
  }
  bool operator==(const ActorEntry&) const = default;
};

class StateTree {
 public:
  StateTree() = default;
  /// Copies logical state AND the commitment cache (leaf order, digest
  /// levels, cached root), so a copy of a flushed tree flushes
  /// incrementally. The journal and the commit stats start fresh: undo
  /// info and counters belong to one instance's mutation history.
  StateTree(const StateTree& other);
  StateTree& operator=(const StateTree& other);
  StateTree(StateTree&&) = default;
  StateTree& operator=(StateTree&&) = default;

  /// Look up an actor; nullptr when absent. The pointer is invalidated by
  /// any mutation of the tree.
  [[nodiscard]] const ActorEntry* get(const Address& addr) const;

  /// True when an actor exists at `addr`.
  [[nodiscard]] bool has(const Address& addr) const { return get(addr) != nullptr; }

  /// Create or overwrite an actor entry.
  void set(const Address& addr, ActorEntry entry);

  /// Mutable access, creating a default (empty, kCodeNone) entry if absent.
  /// The returned reference is stable across other mutations (map nodes do
  /// not move) but must not be written through after the next flush(): the
  /// entry is assumed clean again once flushed.
  [[nodiscard]] ActorEntry& get_or_create(const Address& addr);

  /// Delete an actor (used when killing subnets' SAs is modeled).
  void remove(const Address& addr);

  /// Total token supply held across all actors (conservation checks).
  /// Maintained as a running total: O(dirty) per call, not O(N).
  [[nodiscard]] TokenAmount total_balance() const;

  /// Canonical commitment of the whole tree: the Merkle root over the
  /// per-actor leaves (address order). Merkle-based so that individual
  /// actor entries can be proven against a committed state root — the
  /// foundation of §III-C fund recovery from dead subnets.
  ///
  /// Incremental: with no mutations since the last flush this returns the
  /// cached CID; with k mutated leaves it re-encodes/rehashes those k
  /// leaves plus their O(k log N) root paths; only membership changes
  /// (insert/remove) rebuild the interior levels (O(N) node hashes, still
  /// zero re-encodes for clean leaves). Logically const, but updates the
  /// internal cache — call only from the thread owning the tree, never on
  /// a published read-only view shared across lanes (DESIGN.md §11/§12).
  [[nodiscard]] Cid flush() const;

  /// The canonical leaf bytes for one actor (what proofs verify against).
  [[nodiscard]] static Bytes leaf_bytes(const Address& addr,
                                        const ActorEntry& entry);

  /// Inclusion proof for the actor at `addr` against flush(). Fails with
  /// kNotFound when the actor does not exist. Reuses the cached
  /// incremental tree (flushing first if needed), so proving after a clean
  /// flush costs O(log N) — no leaf re-assembly.
  [[nodiscard]] Result<crypto::MerkleProof> prove(const Address& addr) const;

  /// Verify that (addr, entry) is part of the state committed by `root`.
  [[nodiscard]] static bool verify_entry(const Cid& root, const Address& addr,
                                         const ActorEntry& entry,
                                         const crypto::MerkleProof& proof);

  // ------------------------------------------------------------- journal
  // Undo log for revert-on-failure. Every mutator records the prior entry
  // value; reverting to a mark replays the log backwards. Marks nest (the
  // executor takes one per message and one per internal send).

  using JournalMark = std::size_t;

  /// Current journal position; pass to journal_revert() to roll back to it.
  [[nodiscard]] JournalMark journal_mark() const { return journal_.size(); }

  /// Undo every mutation recorded after `mark`, newest first.
  void journal_revert(JournalMark mark);

  /// Drop all undo information (outermost commit point). Marks taken
  /// before a reset are invalidated.
  void journal_reset() { journal_.clear(); }

  [[nodiscard]] std::size_t journal_depth() const { return journal_.size(); }

  /// Deep-copy snapshot / revert, for long-lived forks (SCA save()).
  [[nodiscard]] StateTree snapshot() const { return *this; }
  void revert_to(StateTree snapshot);

  [[nodiscard]] std::size_t actor_count() const { return actors_.size(); }

  /// Leaves whose content changed since the last flush (diagnostics).
  [[nodiscard]] std::size_t dirty_count() const { return dirty_.size(); }

  /// Deterministic logical memory footprint: per-actor fixed overhead plus
  /// dynamic payloads (serialized actor state, journal priors) plus the
  /// commitment cache's dominant terms. Logical sizes only — never
  /// allocator capacities — so same-seed runs report the same number
  /// (city-scale accounting, DESIGN.md §17).
  [[nodiscard]] std::size_t mem_bytes() const;

  /// Commitment-cost accounting since this instance was constructed or
  /// copied (copies start at zero). Scraped into the obs counters
  /// state_leaf_rehashes_total / state_flush_cache_hits_total by the node.
  struct CommitStats {
    std::uint64_t leaf_rehashes = 0;     // leaf encodes + leaf hashes
    std::uint64_t node_hashes = 0;       // interior-node hashes
    std::uint64_t flushes = 0;           // flushes that recomputed
    std::uint64_t flush_cache_hits = 0;  // flushes served from cache
    std::uint64_t journal_entries = 0;   // prior values recorded
    std::uint64_t journal_reverts = 0;   // rollbacks replayed
  };
  [[nodiscard]] const CommitStats& commit_stats() const { return stats_; }

  /// Iterate in canonical (address) order.
  [[nodiscard]] auto begin() const { return actors_.begin(); }
  [[nodiscard]] auto end() const { return actors_.end(); }

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<StateTree> decode_from(Decoder& d);

 private:
  struct JournalEntry {
    Address addr;
    std::optional<ActorEntry> prior;  // nullopt: entry did not exist
  };

  /// Record `existing` (pre-mutation value, nullptr when absent) in the
  /// journal and mark the leaf dirty, moving its balance out of the clean
  /// running total on first touch.
  void note_mutation(const Address& addr, const ActorEntry* existing);
  /// Dirty/total bookkeeping shared with journal restores (no recording).
  void mark_dirty(const Address& addr, const ActorEntry* existing);
  /// Undo one journal entry (bypasses the journal itself).
  void restore(const Address& addr, std::optional<ActorEntry> prior);

  /// Re-merge the leaf order after membership changes, reusing cached
  /// digests for clean leaves, then rebuild interior levels.
  void rebuild_structure() const;
  /// Rehash only content-dirty leaves and their root paths.
  void update_dirty_leaves() const;

  std::map<Address, ActorEntry> actors_;
  std::vector<JournalEntry> journal_;

  // Commitment cache. Mutable: flush()/prove() are logically const.
  // clean_total_ + Σ balance(dirty_) == Σ balance(all) at all times.
  mutable std::vector<Address> order_;  // leaf order at last (re)build
  mutable crypto::IncrementalMerkleTree tree_;
  mutable std::set<Address> dirty_;  // content changed since last flush
  mutable bool structure_dirty_ = false;  // membership changed
  mutable bool root_valid_ = false;
  mutable Cid cached_root_;
  mutable TokenAmount clean_total_;
  mutable CommitStats stats_;
};

}  // namespace hc::chain
