// Mempool: pending user messages awaiting inclusion.
//
// Each subnet instantiates its own mempool (paper §III-A). Selection is
// deterministic: per-sender nonce order, senders in address order — so all
// honest proposers holding the same pool contents build the same block.
//
// The pool is bounded (DESIGN.md §14). Admission enforces a nonce-gap
// window and a per-sender pending cap; a full pool evicts deterministically
// by priority — lowest gas price first, ties broken by sender address
// (descending) then nonce (descending). Only each sender's highest pending
// nonce is ever evicted, so an includable lower-nonce message is never
// removed before a higher one.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "chain/message.hpp"
#include "common/arena.hpp"
#include "common/capacity.hpp"
#include "common/result.hpp"

namespace hc::chain {

/// Caps for one mempool; every limit 0 disables that limit, so a
/// default-constructed config only enforces the nonce-gap window.
struct MempoolConfig {
  /// Total pending messages across all senders (0 = unbounded).
  std::size_t max_messages = 0;
  /// Pending messages per sender (0 = unbounded).
  std::size_t max_per_sender = 0;
  /// Admission window: reject a nonce at or beyond `next_nonce + nonce_gap`
  /// (0 = any future nonce accepted). The default plugs the
  /// memory-exhaustion hole where one sender parks unbounded far-future
  /// nonces that prune_stale never reclaims.
  std::uint64_t nonce_gap = 1024;
};

class Mempool {
 public:
  Mempool() = default;
  explicit Mempool(MempoolConfig config) : config_(config) {}

  /// Add a message. Rejects invalid signatures, (sender, nonce) duplicates,
  /// nonces beyond the admission window (`next_nonce` comes from chain
  /// state), and — when the pool or the sender is at cap — either evicts
  /// the lowest-priority resident tail or rejects the arrival with
  /// kOverloaded if the arrival itself is the lowest priority.
  /// No balance check — that happens at execution.
  Status add(SignedMessage msg, std::uint64_t next_nonce = 0);

  /// Select up to `max` messages for a block, nonce-ordered per sender
  /// starting at each sender's `next_nonce` (from chain state).
  [[nodiscard]] std::vector<SignedMessage> select(
      std::size_t max,
      const std::function<std::uint64_t(const Address&)>& next_nonce) const;

  /// Drop messages included in a committed block (by sender+nonce).
  void remove_included(const std::vector<SignedMessage>& included);

  /// Drop every message whose nonce is below the sender's next nonce.
  void prune_stale(
      const std::function<std::uint64_t(const Address&)>& next_nonce);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] const MempoolConfig& config() const { return config_; }
  /// Shed/eviction ledger: kNonceGap, kPerSenderCap, kQueueFull count
  /// rejected arrivals; kEvicted counts residents displaced by
  /// higher-priority arrivals. peak_items tracks the high-water size.
  [[nodiscard]] const common::ShedStats& shed_stats() const { return shed_; }

  /// Admission scratch arena (signature payload re-encodes). Exposed so the
  /// owning node can flush allocation stats to obs at deterministic points.
  [[nodiscard]] Arena& arena() { return arena_; }

 private:
  /// Priority key for eviction: evict the *smallest* under (gas_price asc,
  /// sender desc, nonce desc). Higher nonce of the same sender is always
  /// less valuable than a lower one (it cannot be included first).
  struct EvictKey {
    TokenAmount gas_price;
    Address sender;
    std::uint64_t nonce = 0;
    [[nodiscard]] bool lower_priority_than(const EvictKey& o) const;
  };

  void erase_one(const Address& sender, std::uint64_t nonce);

  MempoolConfig config_;
  // sender -> (nonce -> message); ordered for deterministic iteration.
  std::map<Address, std::map<std::uint64_t, SignedMessage>> pending_;
  std::size_t size_ = 0;
  common::ShedStats shed_;
  // Scratch for per-admission transients; reset after every add(). Small
  // chunks: an admission encodes exactly one signing payload.
  Arena arena_{4 * 1024};
};

}  // namespace hc::chain
