// Mempool: pending user messages awaiting inclusion.
//
// Each subnet instantiates its own mempool (paper §III-A). Selection is
// deterministic: per-sender nonce order, senders in address order — so all
// honest proposers holding the same pool contents build the same block.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "chain/message.hpp"
#include "common/result.hpp"

namespace hc::chain {

class Mempool {
 public:
  /// Add a message. Rejects invalid signatures and (sender, nonce)
  /// duplicates. No balance check — that happens at execution.
  Status add(SignedMessage msg);

  /// Select up to `max` messages for a block, nonce-ordered per sender
  /// starting at each sender's `next_nonce` (from chain state).
  [[nodiscard]] std::vector<SignedMessage> select(
      std::size_t max,
      const std::function<std::uint64_t(const Address&)>& next_nonce) const;

  /// Drop messages included in a committed block (by sender+nonce).
  void remove_included(const std::vector<SignedMessage>& included);

  /// Drop every message whose nonce is below the sender's next nonce.
  void prune_stale(
      const std::function<std::uint64_t(const Address&)>& next_nonce);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  // sender -> (nonce -> message); ordered for deterministic iteration.
  std::map<Address, std::map<std::uint64_t, SignedMessage>> pending_;
};

}  // namespace hc::chain
