// Execution receipts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "chain/gas.hpp"

namespace hc::chain {

/// Message execution outcome. Values are stable (serialized in receipts).
enum class ExitCode : std::uint8_t {
  kOk = 0,
  kSysInsufficientFunds = 1,
  kSysInvalidNonce = 2,
  kSysInvalidMethod = 3,
  kSysInvalidReceiver = 4,
  kSysOutOfGas = 5,
  kSysInvalidSignature = 6,
  kActorError = 10,  // actor logic returned an operational error
};

[[nodiscard]] constexpr bool success(ExitCode c) { return c == ExitCode::kOk; }

/// An event emitted by an actor during execution. The node layer watches
/// these to learn about SCA state changes (new top-down msgs, committed
/// checkpoints, atomic-execution transitions) without re-reading state.
struct ActorEvent {
  std::string kind;
  Bytes payload;

  void encode_to(Encoder& e) const { e.str(kind).bytes(payload); }
  [[nodiscard]] static Result<ActorEvent> decode_from(Decoder& d) {
    ActorEvent ev;
    HC_TRY(kind, d.str());
    HC_TRY(payload, d.bytes());
    ev.kind = std::move(kind);
    ev.payload = std::move(payload);
    return ev;
  }
  bool operator==(const ActorEvent&) const = default;
};

struct Receipt {
  ExitCode exit = ExitCode::kOk;
  Bytes ret;             // actor return payload
  Gas gas_used = 0;
  std::string error;     // human-readable failure context (not consensus)
  std::vector<ActorEvent> events;

  [[nodiscard]] bool ok() const { return success(exit); }
};

}  // namespace hc::chain
