// Chain messages (transactions) and their signed envelope.
//
// A Message is the unit of state mutation: a call from one actor to another
// carrying value, a method number and encoded parameters. User-submitted
// messages travel as SignedMessage; cross-net messages arrive as *implicit*
// messages injected by the protocol (paper §IV-B) and carry no signature —
// their authenticity derives from the parent chain state or a committed
// checkpoint instead.
#pragma once

#include <cstdint>

#include "common/address.hpp"
#include "common/arena.hpp"
#include "common/cid.hpp"
#include "common/codec.hpp"
#include "common/token.hpp"
#include "crypto/schnorr.hpp"

namespace hc::chain {

/// Actor method selector. Method 0 is a bare value transfer everywhere.
using MethodNum = std::uint64_t;

struct Message {
  Address from;
  Address to;
  std::uint64_t nonce = 0;
  TokenAmount value;
  MethodNum method = 0;
  Bytes params;
  std::uint64_t gas_limit = 0;
  TokenAmount gas_price;  // atto per gas unit

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<Message> decode_from(Decoder& d);

  /// Content id of the canonical encoding.
  [[nodiscard]] Cid cid() const;

  bool operator==(const Message&) const = default;
};

/// A message plus the sender's signature over its CID digest.
struct SignedMessage {
  Message message;
  crypto::PublicKey pubkey;
  crypto::Signature signature;

  /// Sign `msg` with `key`; the sender address must be derived from the
  /// signing key (Address::key of the public key) for verify() to pass.
  [[nodiscard]] static SignedMessage sign(Message msg,
                                          const crypto::KeyPair& key);

  /// Check the signature AND that `message.from` matches the public key.
  [[nodiscard]] bool verify() const;

  /// Same check, but the canonical signing payload is encoded into `arena`
  /// instead of a fresh heap buffer — the admission/execution hot path,
  /// where payloads die at the owner's next arena reset.
  [[nodiscard]] bool verify_with(Arena& arena) const;

  /// The sender-address binding half of verify(): message.from must be the
  /// key address of the attached public key.
  [[nodiscard]] bool sender_matches_key() const;

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<SignedMessage> decode_from(Decoder& d);

  [[nodiscard]] Cid cid() const;

  bool operator==(const SignedMessage&) const = default;
};

}  // namespace hc::chain
