// The actor framework: the VM surface that actor logic programs against.
//
// Mirrors the Filecoin actor model the paper assumes (§III-A: "a new
// instance of the Virtual Machine ... system actors, i.e., smart contracts
// in Filecoin terminology"). Actor *logic* is stateless C++ registered per
// CodeId; actor *state* lives in the StateTree as opaque bytes that the
// logic encodes/decodes. The Runtime interface is the only capability an
// actor gets — no ambient access to the tree, the network, or the clock.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "chain/block.hpp"
#include "chain/message.hpp"
#include "chain/receipt.hpp"
#include "chain/state.hpp"

namespace hc::chain {

/// Execution capabilities handed to actor logic. Implemented by the
/// Executor; tests may stub it.
class Runtime {
 public:
  virtual ~Runtime() = default;

  // ------------------------------------------------------------- identity
  [[nodiscard]] virtual Address self() const = 0;
  [[nodiscard]] virtual Address caller() const = 0;
  /// Original (top-level) message sender.
  [[nodiscard]] virtual Address origin() const = 0;
  [[nodiscard]] virtual TokenAmount value_received() const = 0;
  [[nodiscard]] virtual Epoch current_epoch() const = 0;

  // ---------------------------------------------------------------- state
  /// This actor's serialized state (charges storage_read gas).
  [[nodiscard]] virtual Result<Bytes> get_state() = 0;
  /// Replace this actor's serialized state (charges storage_write gas).
  [[nodiscard]] virtual Status set_state(Bytes state) = 0;
  /// This actor's current balance.
  [[nodiscard]] virtual TokenAmount balance() const = 0;

  // ---------------------------------------------------------------- calls
  /// Synchronous internal call to another actor (value may be zero).
  [[nodiscard]] virtual Result<Bytes> send(const Address& to, MethodNum method,
                                           Bytes params,
                                           TokenAmount value) = 0;

  /// Create a new actor via the Init-actor machinery; returns its address.
  /// Only callable by the Init actor itself.
  [[nodiscard]] virtual Result<Address> create_actor(CodeId code,
                                                     Bytes state) = 0;

  // ---------------------------------------------------------------- misc
  /// Emit an event into the receipt (node layer subscribes to these).
  virtual void emit_event(std::string kind, Bytes payload) = 0;

  /// Charge extra gas for actor-specific heavy work.
  [[nodiscard]] virtual Status charge_gas(Gas amount) = 0;

  /// Deterministic per-message entropy (e.g. leader tickets).
  [[nodiscard]] virtual Digest randomness(std::string_view tag) = 0;
};

/// Stateless logic for one actor code id.
class ActorLogic {
 public:
  virtual ~ActorLogic() = default;

  /// Dispatch a method call. Returning an Error produces an kActorError
  /// receipt and rolls back all state changes made by this message.
  [[nodiscard]] virtual Result<Bytes> invoke(Runtime& rt, MethodNum method,
                                             const Bytes& params) = 0;
};

/// Registry mapping CodeId -> logic singleton.
class ActorRegistry {
 public:
  void install(CodeId code, std::unique_ptr<ActorLogic> logic);
  [[nodiscard]] ActorLogic* find(CodeId code) const;

 private:
  std::unordered_map<CodeId, std::unique_ptr<ActorLogic>> logics_;
};

}  // namespace hc::chain
