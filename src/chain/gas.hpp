// Gas schedule and metering.
//
// Gas serves two roles here, both needed by the paper's economics: it makes
// execution cost measurable (subnet miners "are rewarded with fees for the
// transactions executed in the subnet", §II) and it bounds the work a single
// message can consume (the DDoS concern of §IV-B).
#pragma once

#include <cstdint>

#include "common/result.hpp"

namespace hc::chain {

using Gas = std::uint64_t;

struct GasSchedule {
  Gas message_base = 1000;        // flat cost of including a message
  Gas per_param_byte = 3;         // message payload size cost
  Gas method_invocation = 500;    // dispatching into actor logic
  Gas storage_read = 100;         // actor state read
  Gas storage_write_base = 300;   // actor state write
  Gas storage_per_byte = 2;       // bytes written
  Gas transfer = 200;             // balance mutation
  Gas actor_creation = 5000;      // Init actor instantiating a new actor
  Gas signature_check = 800;      // envelope validation
  Gas internal_send = 400;        // actor-to-actor call overhead
};

/// Tracks gas consumed against a limit.
class GasMeter {
 public:
  GasMeter(Gas limit, const GasSchedule& schedule)
      : limit_(limit), schedule_(schedule) {}

  /// Consume `amount`; fails with kExhausted when the limit is crossed.
  [[nodiscard]] Status charge(Gas amount) {
    used_ += amount;
    if (used_ > limit_) {
      return Error(Errc::kExhausted, "out of gas");
    }
    return ok_status();
  }

  [[nodiscard]] Gas used() const { return used_ < limit_ ? used_ : limit_; }
  [[nodiscard]] Gas limit() const { return limit_; }
  [[nodiscard]] const GasSchedule& schedule() const { return schedule_; }

 private:
  Gas limit_;
  GasSchedule schedule_;
  Gas used_ = 0;
};

}  // namespace hc::chain
