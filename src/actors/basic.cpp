#include "actors/basic.hpp"

#include "actors/util.hpp"

namespace hc::actors {

Result<Bytes> AccountActor::invoke(chain::Runtime& rt,
                                   chain::MethodNum method,
                                   const Bytes& params) {
  (void)rt;
  (void)params;
  return Error(Errc::kInvalidArgument,
               "account actor has no method " + std::to_string(method));
}

Result<Bytes> InitActor::invoke(chain::Runtime& rt, chain::MethodNum method,
                                const Bytes& params) {
  if (method != init_method::kExec) {
    return Error(Errc::kInvalidArgument, "init actor: unknown method");
  }
  HC_TRY(exec, decode<ExecParams>(params));
  if (exec.code == chain::kCodeNone || exec.code == chain::kCodeInit ||
      exec.code == chain::kCodeSca) {
    return Error(Errc::kPermissionDenied,
                 "cannot instantiate reserved actor code");
  }
  HC_TRY(addr, rt.create_actor(exec.code, std::move(exec.ctor_state)));
  rt.emit_event("init/exec", encode(addr));
  return encode(addr);
}

Result<Bytes> KvStoreActor::invoke(chain::Runtime& rt,
                                   chain::MethodNum method,
                                   const Bytes& params) {
  HC_TRY(state, load_state<KvState>(rt));
  HC_TRY(p, decode<KvParams>(params));

  switch (method) {
    case kv_method::kPut: {
      KvState::Entry* entry = state.find(p.key);
      if (entry != nullptr) {
        if (entry->locked) {
          return Error(Errc::kStateConflict, "key is locked");
        }
        entry->value = std::move(p.value);
      } else {
        state.entries.push_back({std::move(p.key), std::move(p.value), false});
      }
      HC_TRY_STATUS(save_state(rt, state));
      return Bytes{};
    }
    case kv_method::kGet: {
      const KvState::Entry* entry = state.find(p.key);
      if (entry == nullptr) return Error(Errc::kNotFound, "no such key");
      return entry->value;
    }
    case kv_method::kLock: {
      KvState::Entry* entry = state.find(p.key);
      if (entry == nullptr) return Error(Errc::kNotFound, "no such key");
      if (entry->locked) {
        return Error(Errc::kStateConflict, "key already locked");
      }
      entry->locked = true;
      HC_TRY_STATUS(save_state(rt, state));
      rt.emit_event("kv/locked", entry->key);
      // Return the locked input value: this is the state the user ships to
      // the other parties of an atomic execution.
      return entry->value;
    }
    case kv_method::kUnlock: {
      KvState::Entry* entry = state.find(p.key);
      if (entry == nullptr) return Error(Errc::kNotFound, "no such key");
      if (!entry->locked) {
        return Error(Errc::kStateConflict, "key is not locked");
      }
      entry->locked = false;
      HC_TRY_STATUS(save_state(rt, state));
      rt.emit_event("kv/unlocked", entry->key);
      return Bytes{};
    }
    case kv_method::kApplyOutput: {
      KvState::Entry* entry = state.find(p.key);
      if (entry == nullptr) return Error(Errc::kNotFound, "no such key");
      if (!entry->locked) {
        return Error(Errc::kStateConflict,
                     "output applies only to locked keys");
      }
      entry->value = std::move(p.value);
      entry->locked = false;
      HC_TRY_STATUS(save_state(rt, state));
      rt.emit_event("kv/output-applied", entry->key);
      return Bytes{};
    }
    default:
      return Error(Errc::kInvalidArgument, "kv actor: unknown method");
  }
}

}  // namespace hc::actors
