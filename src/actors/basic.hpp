// Basic system actors: Account, Init, and the KV demo application.
#pragma once

#include "actors/methods.hpp"
#include "chain/actor.hpp"

namespace hc::actors {

/// Plain externally-owned account. Accepts bare transfers only; the
/// executor handles method 0 itself, so every dispatched method is invalid.
class AccountActor final : public chain::ActorLogic {
 public:
  Result<Bytes> invoke(chain::Runtime& rt, chain::MethodNum method,
                       const Bytes& params) override;
};

/// Init actor parameters for Exec.
struct ExecParams {
  chain::CodeId code = 0;
  Bytes ctor_state;  // initial serialized state for the new actor

  void encode_to(Encoder& e) const { e.varint(code).bytes(ctor_state); }
  [[nodiscard]] static Result<ExecParams> decode_from(Decoder& d) {
    ExecParams p;
    HC_TRY(code, d.varint());
    HC_TRY(ctor, d.bytes());
    p.code = code;
    p.ctor_state = std::move(ctor);
    return p;
  }
};

/// The actor factory (address f01): assigns ID addresses to new actors.
/// Spawning a subnet starts here: "peers need to deploy a new Subnet Actor"
/// (paper §III-A) — i.e. call Exec with kCodeSubnetActor.
class InitActor final : public chain::ActorLogic {
 public:
  Result<Bytes> invoke(chain::Runtime& rt, chain::MethodNum method,
                       const Bytes& params) override;
};

/// KV app parameters.
struct KvParams {
  Bytes key;
  Bytes value;  // used by kPut / kApplyOutput

  void encode_to(Encoder& e) const { e.bytes(key).bytes(value); }
  [[nodiscard]] static Result<KvParams> decode_from(Decoder& d) {
    KvParams p;
    HC_TRY(key, d.bytes());
    HC_TRY(value, d.bytes());
    p.key = std::move(key);
    p.value = std::move(value);
    return p;
  }
};

/// Demo application actor: a key-value store whose keys can be locked as
/// atomic-execution inputs (paper §IV-D "each user needs to lock, in their
/// subnet, the state that will be used as input for the execution").
class KvStoreActor final : public chain::ActorLogic {
 public:
  Result<Bytes> invoke(chain::Runtime& rt, chain::MethodNum method,
                       const Bytes& params) override;
};

/// KV actor state, exposed for tests and the atomic-execution client.
struct KvState {
  struct Entry {
    Bytes key;
    Bytes value;
    bool locked = false;

    void encode_to(Encoder& e) const {
      e.bytes(key).bytes(value).boolean(locked);
    }
    [[nodiscard]] static Result<Entry> decode_from(Decoder& d) {
      Entry en;
      HC_TRY(key, d.bytes());
      HC_TRY(value, d.bytes());
      HC_TRY(locked, d.boolean());
      en.key = std::move(key);
      en.value = std::move(value);
      en.locked = locked;
      return en;
    }
    bool operator==(const Entry&) const = default;
  };
  std::vector<Entry> entries;

  [[nodiscard]] Entry* find(const Bytes& key) {
    for (auto& e : entries) {
      if (e.key == key) return &e;
    }
    return nullptr;
  }

  void encode_to(Encoder& e) const { e.vec(entries); }
  [[nodiscard]] static Result<KvState> decode_from(Decoder& d) {
    KvState s;
    HC_TRY(entries, d.vec<Entry>());
    s.entries = std::move(entries);
    return s;
  }
  bool operator==(const KvState&) const = default;
};

}  // namespace hc::actors
