#include "actors/sca_actor.hpp"

#include <algorithm>
#include <map>

#include "actors/subnet_actor.hpp"
#include "actors/util.hpp"

namespace hc::actors {

namespace {

/// Registry key for a batch CID.
Bytes registry_key(const Cid& cid) {
  return Bytes(cid.digest().begin(), cid.digest().end());
}

}  // namespace

Bytes make_sca_ctor_state(const core::SubnetId& self,
                          std::uint32_t checkpoint_period,
                          std::uint64_t topdown_window_cap,
                          chain::Epoch breaker_stall_epochs) {
  ScaState state;
  state.self = self;
  state.checkpoint_period = checkpoint_period;
  state.topdown_window_cap = topdown_window_cap;
  state.breaker_stall_epochs = breaker_stall_epochs;
  return encode(state);
}

bool breaker_open(const ScaState& s, const SubnetEntry& child,
                  chain::Epoch now) {
  if (s.topdown_window_cap > 0 &&
      child.topdown_since_checkpoint >= s.topdown_window_cap) {
    return true;
  }
  if (s.breaker_stall_epochs > 0) {
    // A child that never checkpointed measures staleness from genesis.
    const chain::Epoch basis =
        child.last_checkpoint_epoch >= 0 ? child.last_checkpoint_epoch : 0;
    if (now - basis > s.breaker_stall_epochs) return true;
  }
  return false;
}

Result<Bytes> ScaActor::invoke(chain::Runtime& rt, chain::MethodNum method,
                               const Bytes& params) {
  HC_TRY(state, load_state<ScaState>(rt));

  // Implicit-only methods: injected by the protocol, never by users.
  const bool implicit_only = method == sca_method::kCutCheckpoint ||
                             method == sca_method::kApplyTopDown ||
                             method == sca_method::kApplyBottomUp;
  if (implicit_only && rt.caller() != chain::kSystemAddr) {
    return Error(Errc::kPermissionDenied,
                 "method reserved for protocol-injected messages");
  }

  Result<Bytes> result = Bytes{};
  switch (method) {
    case sca_method::kRegister:
      result = register_subnet(rt, state, params);
      break;
    case sca_method::kAddStake:
      result = add_stake(rt, state);
      break;
    case sca_method::kReleaseStake:
      result = release_stake(rt, state, params);
      break;
    case sca_method::kKill:
      result = kill_subnet(rt, state, params);
      break;
    case sca_method::kFund:
    case sca_method::kRelease:
    case sca_method::kSendCross:
      result = send_cross(rt, state, params);
      break;
    case sca_method::kCommitChildCheckpoint:
      result = commit_child_checkpoint(rt, state, params);
      break;
    case sca_method::kCutCheckpoint:
      result = cut_checkpoint(rt, state, params);
      break;
    case sca_method::kApplyTopDown:
      result = apply_topdown(rt, state, params);
      break;
    case sca_method::kApplyBottomUp:
      result = apply_bottomup(rt, state, params);
      break;
    case sca_method::kSubmitFraudProof:
      result = submit_fraud_proof(rt, state, params);
      break;
    case sca_method::kSave:
      result = save_snapshot(rt, state, params);
      break;
    case sca_method::kRecover:
      result = recover_funds(rt, state, params);
      break;
    case sca_method::kAtomicInit:
      result = atomic_init(rt, state, AtomicParty{state.self, rt.caller()},
                           params);
      break;
    case sca_method::kAtomicSubmit:
      result = atomic_submit(rt, state, AtomicParty{state.self, rt.caller()},
                             params);
      break;
    case sca_method::kAtomicAbort:
      result = atomic_abort(rt, state, AtomicParty{state.self, rt.caller()},
                            params);
      break;
    default:
      return Error(Errc::kInvalidArgument, "SCA: unknown method");
  }
  if (!result) return result;
  HC_TRY_STATUS(save_state(rt, state));
  return result;
}

Result<Bytes> ScaActor::register_subnet(Rt& rt, ScaState& s,
                                        const Bytes& params) {
  HC_TRY(p, decode<core::SubnetParams>(params));
  const Address sa = rt.caller();
  if (s.subnets.contains(sa)) {
    return Error(Errc::kAlreadyExists, "subnet already registered");
  }
  if (rt.value_received() < p.min_collateral) {
    return Error(Errc::kInsufficientFunds,
                 "registration collateral below the subnet minimum");
  }
  SubnetEntry entry;
  entry.id = s.self.child(sa);
  entry.sa = sa;
  entry.status = core::SubnetStatus::kActive;
  entry.collateral = rt.value_received();
  entry.min_collateral = p.min_collateral;
  const Bytes id_bytes = encode(entry.id);
  s.subnets.emplace(sa, std::move(entry));
  rt.emit_event("sca/subnet-registered", id_bytes);
  return id_bytes;
}

Result<Bytes> ScaActor::add_stake(Rt& rt, ScaState& s) {
  SubnetEntry* entry = s.find_subnet(rt.caller());
  if (entry == nullptr) {
    return Error(Errc::kNotFound, "caller is not a registered subnet");
  }
  if (entry->status == core::SubnetStatus::kKilled) {
    return Error(Errc::kUnavailable, "subnet is killed");
  }
  entry->collateral += rt.value_received();
  if (entry->status == core::SubnetStatus::kInactive &&
      entry->collateral >= entry->min_collateral) {
    entry->status = core::SubnetStatus::kActive;
    rt.emit_event("sca/subnet-activated", encode(entry->id));
  }
  return Bytes{};
}

Result<Bytes> ScaActor::release_stake(Rt& rt, ScaState& s,
                                      const Bytes& params) {
  HC_TRY(p, decode<ReleaseStakeParams>(params));
  SubnetEntry* entry = s.find_subnet(rt.caller());
  if (entry == nullptr) {
    return Error(Errc::kNotFound, "caller is not a registered subnet");
  }
  if (entry->status == core::SubnetStatus::kKilled) {
    return Error(Errc::kUnavailable, "subnet is killed");
  }
  if (p.amount.negative() || entry->collateral < p.amount) {
    return Error(Errc::kInsufficientFunds,
                 "release exceeds deposited collateral");
  }
  entry->collateral -= p.amount;
  HC_TRY_STATUS(to_status(rt.send(p.recipient, 0, {}, p.amount)));
  if (entry->collateral < entry->min_collateral &&
      entry->status == core::SubnetStatus::kActive) {
    // Paper §III-B: "If the subnet's collateral drops below
    // minCollateral, the subnet enters an inactive state."
    entry->status = core::SubnetStatus::kInactive;
    rt.emit_event("sca/subnet-deactivated", encode(entry->id));
  }
  return Bytes{};
}

Result<Bytes> ScaActor::kill_subnet(Rt& rt, ScaState& s, const Bytes& params) {
  HC_TRY(p, decode<KillParams>(params));
  SubnetEntry* entry = s.find_subnet(rt.caller());
  if (entry == nullptr) {
    return Error(Errc::kNotFound, "caller is not a registered subnet");
  }
  if (entry->status == core::SubnetStatus::kKilled) {
    return Error(Errc::kUnavailable, "subnet is already killed");
  }
  const TokenAmount refund = entry->collateral;
  entry->collateral = TokenAmount();
  entry->status = core::SubnetStatus::kKilled;
  if (!refund.is_zero()) {
    HC_TRY_STATUS(to_status(rt.send(p.recipient, 0, {}, refund)));
  }
  rt.emit_event("sca/subnet-killed", encode(entry->id));
  return Bytes{};
}

Status ScaActor::route_out(Rt& rt, ScaState& s, core::CrossMsg cross) {
  if (s.self.is_prefix_of(cross.to_subnet) && cross.to_subnet != s.self) {
    // Top-down: freeze the funds in this SCA, assign the child-scoped nonce
    // fixing total order in the destination (paper §IV-A).
    SubnetEntry* child = s.child_toward(cross.to_subnet);
    if (child == nullptr) {
      return Error(Errc::kNotFound,
                   "no registered child toward " + cross.to_subnet.to_string());
    }
    if (child->status != core::SubnetStatus::kActive) {
      return Error(Errc::kUnavailable,
                   "child subnet toward destination is not active");
    }
    // Circuit breaker (DESIGN.md §14): shed BEFORE consuming a nonce or
    // minting circulating supply, so a shed message leaves no trace in the
    // child's total order and the firewall bound is untouched. The caller's
    // failure path emits the paper's revert cross-msg (§IV) for forwarded
    // hops, or reverts the sender's funds locally for fresh sends.
    if (breaker_open(s, *child, rt.current_epoch())) {
      ++child->topdown_shed;
      rt.emit_event("sca/topdown-shed", encode(cross));
      return Error(Errc::kOverloaded,
                   "top-down breaker open toward " + child->id.to_string() +
                       " (backlog " +
                       std::to_string(child->topdown_since_checkpoint) +
                       ", last checkpoint epoch " +
                       std::to_string(child->last_checkpoint_epoch) + ")");
    }
    ++child->topdown_since_checkpoint;
    cross.nonce = child->topdown_nonce++;
    child->circulating_supply += cross.msg.value;
    const Bytes payload = encode(cross);
    child->topdown_queue.push_back(std::move(cross));
    rt.emit_event("sca/topdown", payload);
    return ok_status();
  }
  // Bottom-up (or path) leg: burn locally, carry in the next checkpoint
  // (paper §IV-A: "Every message leaving the subnet triggers the burn (in
  // the child) and release (in the parent) of the funds included").
  if (s.self.is_root()) {
    return Error(Errc::kNotFound,
                 "destination " + cross.to_subnet.to_string() +
                     " is not part of the hierarchy");
  }
  if (!cross.msg.value.is_zero()) {
    HC_TRY_STATUS(to_status(rt.send(chain::kBurnAddr, 0, {}, cross.msg.value)));
  }
  const Bytes payload = encode(cross);
  s.window_msgs.push_back(std::move(cross));
  rt.emit_event("sca/release", payload);
  return ok_status();
}

Result<Bytes> ScaActor::send_cross(Rt& rt, ScaState& s, const Bytes& params) {
  HC_TRY(p, decode<CrossParams>(params));
  if (p.dest == s.self) {
    return Error(Errc::kInvalidArgument,
                 "cross-net destination is this subnet itself");
  }
  core::CrossMsg cross;
  cross.from_subnet = s.self;
  cross.to_subnet = p.dest;
  cross.msg.from = rt.caller();
  cross.msg.to = p.to;
  cross.msg.value = rt.value_received();
  cross.msg.method = p.method;
  cross.msg.params = std::move(p.inner_params);
  HC_TRY_STATUS(route_out(rt, s, std::move(cross)));
  return Bytes{};
}

Result<Bytes> ScaActor::commit_child_checkpoint(Rt& rt, ScaState& s,
                                                const Bytes& params) {
  SubnetEntry* entry = s.find_subnet(rt.caller());
  if (entry == nullptr) {
    return Error(Errc::kPermissionDenied,
                 "checkpoint committer is not a registered subnet's SA");
  }
  if (entry->status != core::SubnetStatus::kActive) {
    // Paper §III-B: an inactive subnet "can no longer interact with the
    // rest of the hierarchy".
    return Error(Errc::kUnavailable, "subnet is not active");
  }
  HC_TRY(sc, decode<core::SignedCheckpoint>(params));
  const core::Checkpoint& cp = sc.checkpoint;
  if (cp.source != entry->id) {
    return Error(Errc::kInvalidArgument, "checkpoint source mismatch");
  }
  if (cp.epoch <= entry->last_checkpoint_epoch) {
    return Error(Errc::kStateConflict, "stale checkpoint epoch");
  }
  const Cid expected_prev =
      entry->checkpoints.empty() ? Cid() : entry->checkpoints.back();
  if (cp.prev != expected_prev) {
    return Error(Errc::kStateConflict, "checkpoint prev-chain broken");
  }

  // Process the CrossMsgMeta tree (paper §IV-B and Fig. 3 right).
  for (const core::CrossMsgMeta& meta : cp.cross_meta) {
    if (!entry->id.is_prefix_of(meta.from)) {
      return Error(Errc::kInvalidArgument,
                   "cross-msg meta claims a source outside the child subtree");
    }
    // FIREWALL (paper §II): a child can never withdraw more than its
    // circulating supply, bounding the damage of a compromised subnet.
    if (meta.value > entry->circulating_supply) {
      return Error(Errc::kPermissionDenied,
                   "firewall: cross-msg value exceeds the child's "
                   "circulating supply");
    }
    entry->circulating_supply -= meta.value;

    if (s.self.is_prefix_of(meta.to)) {
      // Destined here or below: adopt with the next bottom-up nonce
      // ("assigned an increasing nonce for posterior validation and
      // application by the subnet's consensus algorithm").
      PendingBottomUp pending;
      pending.nonce = s.bottomup_nonce++;
      pending.meta = meta;
      const Bytes payload = encode(pending);
      s.pending_bottomup.push_back(std::move(pending));
      rt.emit_event("sca/bottomup-adopted", payload);
    } else {
      // Destined elsewhere: the funds leave this subnet too, so the custody
      // frozen here when they came down must burn now, mirroring the
      // release the ancestor will perform (paper §IV-A: burn in the child,
      // release in the parent). Without the burn the custody is orphaned
      // and the subtree drifts off the parent's circulating-supply entry.
      if (!meta.value.is_zero()) {
        HC_TRY_STATUS(
            to_status(rt.send(chain::kBurnAddr, 0, {}, meta.value)));
      }
      // Propagate the meta farther up in our next checkpoint.
      s.forward_meta.push_back(meta);
    }
  }

  const Cid cid = cp.cid();
  entry->checkpoints.push_back(cid);
  entry->last_checkpoint_epoch = cp.epoch;
  // A fresh checkpoint acknowledges the child's progress: the top-down
  // backlog window restarts and the circuit breaker (if open) closes.
  entry->topdown_since_checkpoint = 0;

  // Aggregate into our own next checkpoint's children tree.
  auto child_it = std::find_if(
      s.window_children.begin(), s.window_children.end(),
      [&](const core::ChildCheck& c) { return c.subnet == entry->id; });
  if (child_it == s.window_children.end()) {
    s.window_children.push_back(core::ChildCheck{entry->id, {cid}});
  } else {
    child_it->checkpoints.push_back(cid);
  }

  rt.emit_event("sca/checkpoint-committed", encode(cp));
  return encode(cid);
}

Result<Bytes> ScaActor::cut_checkpoint(Rt& rt, ScaState& s,
                                       const Bytes& params) {
  if (s.self.is_root()) {
    return Error(Errc::kInvalidArgument,
                 "the rootnet has no parent to checkpoint to");
  }
  HC_TRY(p, decode<CutParams>(params));
  if (p.epoch <= s.last_own_checkpoint_epoch) {
    return Error(Errc::kStateConflict, "checkpoint window already cut");
  }

  core::Checkpoint cp;
  cp.source = s.self;
  cp.epoch = p.epoch;
  cp.proof = p.proof;
  cp.prev = s.last_own_checkpoint;
  cp.children = std::move(s.window_children);
  cp.cross_meta = std::move(s.forward_meta);

  // Bundle this window's own bottom-up msgs into per-destination batches;
  // record each batch in the registry so the content-resolution protocol
  // can serve it (paper §IV-C).
  std::map<core::SubnetId, core::CrossMsgBatch> by_dest;
  for (auto& m : s.window_msgs) {
    by_dest[m.to_subnet].msgs.push_back(std::move(m));
  }
  for (auto& [dest, batch] : by_dest) {
    const Cid batch_cid = batch.cid();
    core::CrossMsgMeta meta;
    meta.from = s.self;
    meta.to = dest;
    meta.msgs_cid = batch_cid;
    meta.msg_count = static_cast<std::uint32_t>(batch.msgs.size());
    meta.value = batch.total_value();
    cp.cross_meta.push_back(std::move(meta));
    s.msg_registry[registry_key(batch_cid)] = encode(batch);
  }

  s.window_msgs.clear();
  s.window_children.clear();
  s.forward_meta.clear();
  s.pending_checkpoint = cp;
  s.last_own_checkpoint = cp.cid();
  s.last_own_checkpoint_epoch = p.epoch;
  rt.emit_event("sca/checkpoint-cut", encode(cp));
  return encode(cp);
}

Status ScaActor::deliver(Rt& rt, ScaState& s, const core::CrossMsg& cross) {
  if (cross.to_subnet == s.self) {
    // Arrived: execute against the local state.
    Result<Bytes> result = Bytes{};
    if (cross.msg.to == chain::kScaAddr &&
        (cross.msg.method == sca_method::kAtomicInit ||
         cross.msg.method == sca_method::kAtomicSubmit ||
         cross.msg.method == sca_method::kAtomicAbort)) {
      // Atomic-execution calls arriving cross-net carry their origin
      // identity from the (already verified) source subnet.
      const AtomicParty party{cross.from_subnet, cross.msg.from};
      switch (cross.msg.method) {
        case sca_method::kAtomicInit:
          result = atomic_init(rt, s, party, cross.msg.params);
          break;
        case sca_method::kAtomicSubmit:
          result = atomic_submit(rt, s, party, cross.msg.params);
          break;
        default:
          result = atomic_abort(rt, s, party, cross.msg.params);
          break;
      }
    } else {
      result = rt.send(cross.msg.to, cross.msg.method, cross.msg.params,
                       cross.msg.value);
    }
    if (!result) {
      // Paper §IV-B: "a cross-msg that cannot be applied in a subnet
      // triggers a new cross-msg with the subnet where the execution ...
      // failed as source and the original source of the message as
      // destination", reverting intermediate state changes (funds).
      core::CrossMsg revert;
      revert.from_subnet = s.self;
      revert.to_subnet = cross.from_subnet;
      revert.msg.from = cross.msg.to;
      revert.msg.to = cross.msg.from;
      revert.msg.value = cross.msg.value;
      rt.emit_event("sca/cross-reverted", encode(cross));
      return route_out(rt, s, std::move(revert));
    }
    return ok_status();
  }
  if (s.self.is_prefix_of(cross.to_subnet)) {
    // Forward down the next hop, preserving the original source.
    core::CrossMsg fwd = cross;
    Status routed = route_out(rt, s, std::move(fwd));
    if (!routed) {
      // Next hop missing or inactive: revert toward the source.
      core::CrossMsg revert;
      revert.from_subnet = s.self;
      revert.to_subnet = cross.from_subnet;
      revert.msg.from = cross.msg.to;
      revert.msg.to = cross.msg.from;
      revert.msg.value = cross.msg.value;
      rt.emit_event("sca/cross-reverted", encode(cross));
      return route_out(rt, s, std::move(revert));
    }
    return routed;
  }
  // Needs to continue upward (unusual: only when adoption rules change);
  // treat like a locally originated bottom-up message.
  core::CrossMsg up = cross;
  return route_out(rt, s, std::move(up));
}

Result<Bytes> ScaActor::apply_topdown(Rt& rt, ScaState& s,
                                      const Bytes& params) {
  HC_TRY(cross, decode<core::CrossMsg>(params));
  if (cross.nonce != s.applied_topdown_nonce) {
    return Error(Errc::kInvalidNonce,
                 "top-down nonce " + std::to_string(cross.nonce) +
                     " applied out of order (expected " +
                     std::to_string(s.applied_topdown_nonce) + ")");
  }
  s.applied_topdown_nonce += 1;
  HC_TRY_STATUS(deliver(rt, s, cross));
  return Bytes{};
}

Result<Bytes> ScaActor::apply_bottomup(Rt& rt, ScaState& s,
                                       const Bytes& params) {
  HC_TRY(p, decode<ApplyBottomUpParams>(params));
  if (p.nonce != s.applied_bottomup_nonce) {
    return Error(Errc::kInvalidNonce, "bottom-up batch applied out of order");
  }
  auto it = std::find_if(
      s.pending_bottomup.begin(), s.pending_bottomup.end(),
      [&](const PendingBottomUp& pb) { return pb.nonce == p.nonce; });
  if (it == s.pending_bottomup.end()) {
    return Error(Errc::kNotFound, "no adopted meta with this nonce");
  }
  if (it->executed) {
    return Error(Errc::kStateConflict, "batch already executed");
  }
  // Unforgeability: the batch must hash to the CID committed in the
  // checkpoint (paper §IV-C / §IV-D property (iii)).
  if (p.batch.cid() != it->meta.msgs_cid) {
    return Error(Errc::kInvalidArgument,
                 "batch content does not match the committed CID");
  }
  it->executed = true;
  s.applied_bottomup_nonce += 1;
  for (const core::CrossMsg& m : p.batch.msgs) {
    HC_TRY_STATUS(deliver(rt, s, m));
  }
  rt.emit_event("sca/bottomup-applied", encode_varint(p.nonce));
  return Bytes{};
}

Result<Bytes> ScaActor::submit_fraud_proof(Rt& rt, ScaState& s,
                                           const Bytes& params) {
  HC_TRY(proof, decode<core::FraudProof>(params));
  // Replay dedup, cheapest check first: a proof already processed (or its
  // mirror — the digest canonicalizes side order) conflicts instead of
  // re-running the slash path and re-emitting events.
  const Cid digest = proof.digest();
  if (std::find(s.fraud_digests.begin(), s.fraud_digests.end(), digest) !=
      s.fraud_digests.end()) {
    return Error(Errc::kStateConflict, "fraud proof already processed");
  }
  HC_TRY(guilty, proof.guilty_signers());
  const core::SubnetId& source = proof.first.checkpoint.source;
  const chain::Epoch epoch = proof.first.checkpoint.epoch;
  SubnetEntry* entry = nullptr;
  for (auto& [sa, e] : s.subnets) {
    if (e.id == source) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr) {
    return Error(Errc::kNotFound, "fraud proof targets an unknown child");
  }
  // Per-(subnet, epoch, signer) dedup: a differently-assembled proof over
  // the same equivocation (other signature subset, other forged side) must
  // not slash the same validator twice.
  std::vector<crypto::PublicKey> fresh;
  for (const auto& key : guilty) {
    if (!s.slashed(source, epoch, key)) fresh.push_back(key);
  }
  if (fresh.empty()) {
    return Error(Errc::kStateConflict,
                 "every equivocator already slashed for this epoch");
  }
  // Remove the equivocators from the SA's validator set; the SA reports
  // which validators it actually removed and the stake each held.
  HC_TRY(removed_bytes, rt.send(entry->sa, sa_method::kSlash,
                                encode(SlashParams{fresh}), TokenAmount()));
  Decoder removed_d(removed_bytes);
  HC_TRY(removed, removed_d.vec<ValidatorInfo>());
  if (removed.empty()) {
    // Every accused validator is already gone from the SA (slashed via an
    // earlier epoch's proof, or left): nothing to burn, no new record.
    return Error(Errc::kStateConflict,
                 "equivocators are no longer in the validator set");
  }
  TokenAmount slashed;
  for (const auto& v : removed) slashed += v.stake;
  // Slash the collateral (paper §III-B: "These collateral funds are the
  // ones slashed in the face of a valid fraud proof"). The stake goes to
  // the quarantine pot, not the burnt-funds sink: this chain may itself be
  // a subnet, and its parent's circulating-supply figure must keep
  // covering every token on it — including dead ones (see kSlashPotAddr).
  TokenAmount burn = slashed < entry->collateral ? slashed : entry->collateral;
  entry->collateral -= burn;
  if (!burn.is_zero()) {
    HC_TRY_STATUS(to_status(rt.send(chain::kSlashPotAddr, 0, {}, burn)));
  }
  // Record the outcome per signer, attributing the burn stake-by-stake
  // until the (possibly smaller) collateral runs out.
  std::vector<SlashRecord> records;
  TokenAmount remaining = burn;
  for (const auto& v : removed) {
    SlashRecord r;
    r.subnet = source;
    r.epoch = epoch;
    r.signer = v.pubkey;
    r.burned = v.stake < remaining ? v.stake : remaining;
    remaining -= r.burned;
    s.slash_records.push_back(r);
    records.push_back(std::move(r));
  }
  s.fraud_digests.push_back(digest);
  if (entry->collateral < entry->min_collateral &&
      entry->status == core::SubnetStatus::kActive) {
    entry->status = core::SubnetStatus::kInactive;
    rt.emit_event("sca/subnet-deactivated", encode(entry->id));
  }
  Encoder ev;
  ev.vec(records);
  rt.emit_event("sca/slashed", std::move(ev).take());
  return encode(burn);
}

Result<Bytes> ScaActor::save_snapshot(Rt& rt, ScaState& s,
                                      const Bytes& params) {
  HC_TRY(p, decode<SaveParams>(params));
  s.snapshots.push_back(StateSnapshot{rt.current_epoch(), p.state_root});
  rt.emit_event("sca/saved", encode(p.state_root));
  return Bytes{};
}

Result<Bytes> ScaActor::recover_funds(Rt& rt, ScaState& s,
                                      const Bytes& params) {
  HC_TRY(p, decode<RecoverParams>(params));
  SubnetEntry* entry = s.find_subnet(p.sa);
  if (entry == nullptr) {
    return Error(Errc::kNotFound, "unknown subnet");
  }
  // Recovery is the §III-C escape hatch for subnets that can no longer
  // move funds out the normal way.
  if (entry->status == core::SubnetStatus::kActive) {
    return Error(Errc::kStateConflict,
                 "subnet is active: withdraw with a bottom-up cross-msg");
  }
  if (rt.caller() != p.claimed_addr) {
    return Error(Errc::kPermissionDenied,
                 "only the account owner may recover its funds");
  }
  const bool already =
      std::find(entry->recovered.begin(), entry->recovered.end(),
                p.claimed_addr) != entry->recovered.end();
  if (already) {
    return Error(Errc::kAlreadyExists, "funds already recovered");
  }

  // Chain of trust: committed checkpoint -> block header -> state entry.
  const Cid cp_cid = p.checkpoint.cid();
  const bool committed =
      std::find(entry->checkpoints.begin(), entry->checkpoints.end(),
                cp_cid) != entry->checkpoints.end();
  if (!committed) {
    return Error(Errc::kInvalidArgument,
                 "checkpoint was never committed by this subnet");
  }
  if (p.header.cid() != p.checkpoint.proof) {
    return Error(Errc::kInvalidArgument,
                 "block header does not match the checkpoint's proof CID");
  }
  if (!chain::StateTree::verify_entry(p.header.state_root, p.claimed_addr,
                                      p.claimed_entry, p.proof)) {
    return Error(Errc::kInvalidSignature,
                 "state proof does not verify against the committed root");
  }

  // Firewall still applies: never release beyond the remaining supply.
  const TokenAmount amount = p.claimed_entry.balance < entry->circulating_supply
                                 ? p.claimed_entry.balance
                                 : entry->circulating_supply;
  entry->circulating_supply -= amount;
  entry->recovered.push_back(p.claimed_addr);
  if (!amount.is_zero()) {
    HC_TRY_STATUS(to_status(rt.send(p.claimed_addr, 0, {}, amount)));
  }
  rt.emit_event("sca/recovered", encode(amount));
  return encode(amount);
}

Result<Bytes> ScaActor::atomic_init(Rt& rt, ScaState& s,
                                    const AtomicParty& initiator,
                                    const Bytes& params) {
  HC_TRY(p, decode<AtomicInitParams>(params));
  if (p.parties.size() < 2) {
    return Error(Errc::kInvalidArgument,
                 "atomic execution needs at least two parties");
  }
  if (p.input_cids.size() != p.parties.size()) {
    return Error(Errc::kInvalidArgument,
                 "one input CID required per party");
  }
  const bool initiator_is_party =
      std::any_of(p.parties.begin(), p.parties.end(), [&](const AtomicParty& a) {
        return a.subnet == initiator.subnet && a.addr == initiator.addr;
      });
  if (!initiator_is_party) {
    return Error(Errc::kPermissionDenied,
                 "initiator is not a party of the execution");
  }
  AtomicExec exec;
  exec.id = s.next_exec_id++;
  exec.parties = std::move(p.parties);
  exec.input_cids = std::move(p.input_cids);
  exec.outputs.assign(exec.parties.size(), Cid());
  const std::uint64_t id = exec.id;
  s.atomic_execs.emplace(id, std::move(exec));
  rt.emit_event("sca/atomic-init", encode_varint(id));
  return encode_varint(id);
}

Result<Bytes> ScaActor::atomic_submit(Rt& rt, ScaState& s,
                                      const AtomicParty& party,
                                      const Bytes& params) {
  HC_TRY(p, decode<AtomicSubmitParams>(params));
  auto it = s.atomic_execs.find(p.exec_id);
  if (it == s.atomic_execs.end()) {
    return Error(Errc::kNotFound, "unknown atomic execution");
  }
  AtomicExec& exec = it->second;
  if (exec.status != AtomicStatus::kPending) {
    return Error(Errc::kStateConflict, "atomic execution already finished");
  }
  if (p.output.is_null()) {
    return Error(Errc::kInvalidArgument, "output CID must not be null");
  }
  auto party_it =
      std::find_if(exec.parties.begin(), exec.parties.end(),
                   [&](const AtomicParty& a) {
                     return a.subnet == party.subnet && a.addr == party.addr;
                   });
  if (party_it == exec.parties.end()) {
    return Error(Errc::kPermissionDenied, "submitter is not a party");
  }
  const std::size_t index =
      static_cast<std::size_t>(party_it - exec.parties.begin());
  exec.outputs[index] = p.output;

  if (exec.all_submitted_and_equal()) {
    // Paper Fig. 5: "The SCA waits for all the parties involved to submit
    // the output state, and checks if they all match."
    exec.status = AtomicStatus::kCommitted;
    rt.emit_event("sca/atomic-committed", encode_varint(exec.id));
    HC_TRY_STATUS(notify_atomic(rt, s, exec));
  } else if (std::none_of(exec.outputs.begin(), exec.outputs.end(),
                          [](const Cid& c) { return c.is_null(); })) {
    // Everyone submitted but the outputs disagree: abort.
    exec.status = AtomicStatus::kAborted;
    rt.emit_event("sca/atomic-aborted", encode_varint(exec.id));
    HC_TRY_STATUS(notify_atomic(rt, s, exec));
  }
  return Bytes{};
}

Result<Bytes> ScaActor::atomic_abort(Rt& rt, ScaState& s,
                                     const AtomicParty& party,
                                     const Bytes& params) {
  HC_TRY(p, decode<AtomicAbortParams>(params));
  auto it = s.atomic_execs.find(p.exec_id);
  if (it == s.atomic_execs.end()) {
    return Error(Errc::kNotFound, "unknown atomic execution");
  }
  AtomicExec& exec = it->second;
  if (exec.status != AtomicStatus::kPending) {
    return Error(Errc::kStateConflict, "atomic execution already finished");
  }
  const bool is_party =
      std::any_of(exec.parties.begin(), exec.parties.end(),
                  [&](const AtomicParty& a) {
                    return a.subnet == party.subnet && a.addr == party.addr;
                  });
  if (!is_party) {
    return Error(Errc::kPermissionDenied, "aborter is not a party");
  }
  // Paper Fig. 5: "At any point, users are allowed to abort the execution
  // by sending a message to the SCA of the parent."
  exec.status = AtomicStatus::kAborted;
  rt.emit_event("sca/atomic-aborted", encode_varint(exec.id));
  HC_TRY_STATUS(notify_atomic(rt, s, exec));
  return Bytes{};
}

Status ScaActor::notify_atomic(Rt& rt, ScaState& s, const AtomicExec& exec) {
  // Cross-net result notifications to every remote party ("subnets are
  // notified, through a cross-net message, that it is safe to incorporate
  // the output state" — paper §IV-D).
  AtomicNotice notice{exec.id, exec.status};
  for (const AtomicParty& party : exec.parties) {
    if (party.subnet == s.self) continue;
    core::CrossMsg cross;
    cross.from_subnet = s.self;
    cross.to_subnet = party.subnet;
    cross.msg.from = chain::kScaAddr;
    cross.msg.to = party.addr;
    cross.msg.method = 0;
    cross.msg.params = encode(notice);
    // Best-effort: a party subnet that has since vanished or gone inactive
    // must not block the coordinator's decision (parties also learn the
    // outcome by observing the coordinator chain's state).
    Status routed = route_out(rt, s, std::move(cross));
    if (!routed) {
      rt.emit_event("sca/atomic-notify-failed", encode(party.subnet));
    }
  }
  return ok_status();
}

}  // namespace hc::actors
