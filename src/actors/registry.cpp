#include "actors/registry.hpp"

#include <memory>

#include "actors/basic.hpp"
#include "actors/sca_actor.hpp"
#include "actors/subnet_actor.hpp"

namespace hc::actors {

void install_standard_actors(chain::ActorRegistry& registry) {
  registry.install(chain::kCodeAccount, std::make_unique<AccountActor>());
  registry.install(chain::kCodeInit, std::make_unique<InitActor>());
  registry.install(chain::kCodeSca, std::make_unique<ScaActor>());
  registry.install(chain::kCodeSubnetActor, std::make_unique<SubnetActor>());
  registry.install(chain::kCodeKvApp, std::make_unique<KvStoreActor>());
}

}  // namespace hc::actors
