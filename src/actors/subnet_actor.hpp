// The Subnet Actor (SA): per-subnet governance contract.
//
// Paper §III-A: "To spawn a new subnet, peers need to deploy a new Subnet
// Actor (SA) that implements the core logic for the new subnet. The
// contract specifies the consensus protocol to be run by the subnet and the
// set of policies to be enforced for new members, leaving members,
// checkpointing, killing the subnet, etc."
//
// The SA lives in the PARENT chain. It registers the subnet with the
// parent's SCA once enough stake has accumulated, validates checkpoint
// signature policies before relaying checkpoints to the SCA (§III-B), and
// manages the validator set.
#pragma once

#include "actors/methods.hpp"
#include "actors/sa_state.hpp"
#include "chain/actor.hpp"

namespace hc::actors {

/// Join parameters: the validator's public key; the attached message value
/// is the stake.
struct JoinParams {
  crypto::PublicKey pubkey;

  void encode_to(Encoder& e) const { e.obj(pubkey); }
  [[nodiscard]] static Result<JoinParams> decode_from(Decoder& d) {
    HC_TRY(pk, d.obj<crypto::PublicKey>());
    return JoinParams{pk};
  }
};

/// Slash parameters (SCA -> SA callback after a valid fraud proof).
struct SlashParams {
  std::vector<crypto::PublicKey> guilty;

  void encode_to(Encoder& e) const { e.vec(guilty); }
  [[nodiscard]] static Result<SlashParams> decode_from(Decoder& d) {
    SlashParams p;
    HC_TRY(guilty, d.vec<crypto::PublicKey>());
    p.guilty = std::move(guilty);
    return p;
  }
};

/// Constructor state for deploying an SA through the Init actor.
[[nodiscard]] Bytes make_sa_ctor_state(const core::SubnetParams& params);

class SubnetActor final : public chain::ActorLogic {
 public:
  Result<Bytes> invoke(chain::Runtime& rt, chain::MethodNum method,
                       const Bytes& params) override;

 private:
  Result<Bytes> join(chain::Runtime& rt, SaState state, const Bytes& params);
  Result<Bytes> leave(chain::Runtime& rt, SaState state);
  Result<Bytes> kill(chain::Runtime& rt, SaState state);
  Result<Bytes> submit_checkpoint(chain::Runtime& rt, SaState state,
                                  const Bytes& params);
  Result<Bytes> slash(chain::Runtime& rt, SaState state, const Bytes& params);
};

// SCA -> SA slash callback method id (not user callable).
namespace sa_method {
inline constexpr chain::MethodNum kSlash = 5;
}

}  // namespace hc::actors
