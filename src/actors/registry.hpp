// Installation of the standard actor set.
#pragma once

#include "chain/actor.hpp"

namespace hc::actors {

/// Install Account, Init, SCA, SubnetActor and the KV demo app into a
/// registry. Every subnet chain runs this same actor set (paper §III-A).
void install_standard_actors(chain::ActorRegistry& registry);

}  // namespace hc::actors
