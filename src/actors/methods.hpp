// Method numbers for the built-in actors.
//
// Method 0 is a bare value transfer for every actor (enforced by the
// executor). Numbers are part of consensus and must stay stable.
#pragma once

#include "chain/message.hpp"

namespace hc::actors {

// ----------------------------------------------------------- Init actor
namespace init_method {
/// Exec(code_id, constructor_params) -> Address of the new actor.
inline constexpr chain::MethodNum kExec = 1;
}  // namespace init_method

// ------------------------------------------------- Subnet Actor (SA)
namespace sa_method {
/// Join(pubkey) + value = stake: become a validator (paper §III-A).
inline constexpr chain::MethodNum kJoin = 1;
/// Leave(): exit the validator set, releasing stake (paper §III-C).
inline constexpr chain::MethodNum kLeave = 2;
/// Kill(): destroy the subnet once empty of validators (paper §III-C).
inline constexpr chain::MethodNum kKill = 3;
/// SubmitCheckpoint(SignedCheckpoint): validate policy, forward to SCA
/// (paper §III-B).
inline constexpr chain::MethodNum kSubmitCheckpoint = 4;
/// GetInfo() -> encoded SaState (read-only convenience).
inline constexpr chain::MethodNum kGetInfo = 10;
}  // namespace sa_method

// --------------------------------------- Subnet Coordinator Actor (SCA)
namespace sca_method {
/// Register(SubnetParams) + value = initial collateral; caller is the SA.
inline constexpr chain::MethodNum kRegister = 1;
/// AddStake() + value; caller is the SA.
inline constexpr chain::MethodNum kAddStake = 2;
/// ReleaseStake(amount, recipient); caller is the SA.
inline constexpr chain::MethodNum kReleaseStake = 3;
/// Kill(recipient): release remaining collateral; caller is the SA.
inline constexpr chain::MethodNum kKill = 4;
/// Fund(dest_subnet, dest_addr) + value: top-down cross-msg (paper §IV-A).
inline constexpr chain::MethodNum kFund = 5;
/// Release(dest_subnet, dest_addr) + value: bottom-up cross-msg, burned
/// locally, carried by the next checkpoint (paper §IV-A).
inline constexpr chain::MethodNum kRelease = 6;
/// SendCross(dest_subnet, dest_addr, method, params) + value: general
/// cross-net invocation routed like Fund/Release by direction.
inline constexpr chain::MethodNum kSendCross = 7;
/// CommitChildCheckpoint(SignedCheckpoint); caller is the child's SA.
inline constexpr chain::MethodNum kCommitChildCheckpoint = 8;
/// CutCheckpoint(): implicit, at checkpoint heights; freezes the current
/// cross-msg window into this subnet's next checkpoint (paper Fig. 2).
inline constexpr chain::MethodNum kCutCheckpoint = 9;
/// ApplyTopDown(CrossMsg): implicit; executes one committed top-down msg
/// in nonce order (paper Fig. 3 left).
inline constexpr chain::MethodNum kApplyTopDown = 10;
/// ApplyBottomUpBatch(nonce, CrossMsgBatch): implicit; executes an adopted
/// bottom-up batch after content resolution (paper Fig. 3 right).
inline constexpr chain::MethodNum kApplyBottomUp = 11;
/// SubmitFraudProof(FraudProof): slash equivocating validators' collateral
/// (paper §III-B).
inline constexpr chain::MethodNum kSubmitFraudProof = 12;
/// Save(): record a state snapshot for fund recovery (paper §III-C).
inline constexpr chain::MethodNum kSave = 13;
/// Recover(proof): withdraw funds stranded in a killed/inactive child by
/// proving an account entry against a committed checkpoint (paper §III-C:
/// "users are able to provide proof of pending funds held in the subnet").
inline constexpr chain::MethodNum kRecover = 14;

/// AtomicInit(parties, input_cids) -> exec id (paper §IV-D, Fig. 5).
inline constexpr chain::MethodNum kAtomicInit = 20;
/// AtomicSubmit(exec_id, output_cid); caller must be a party.
inline constexpr chain::MethodNum kAtomicSubmit = 21;
/// AtomicAbort(exec_id); caller must be a party.
inline constexpr chain::MethodNum kAtomicAbort = 22;
}  // namespace sca_method

// ------------------------------------------------- demo KV application
namespace kv_method {
inline constexpr chain::MethodNum kPut = 1;
inline constexpr chain::MethodNum kGet = 2;
/// Lock(key): freeze a key as atomic-execution input (paper §IV-D).
inline constexpr chain::MethodNum kLock = 3;
/// Unlock(key): release without changes (abort path).
inline constexpr chain::MethodNum kUnlock = 4;
/// ApplyOutput(key, value): install the atomic output state and unlock.
inline constexpr chain::MethodNum kApplyOutput = 5;
}  // namespace kv_method

}  // namespace hc::actors
