// Subnet Coordinator Actor (SCA) state.
//
// Exactly one SCA exists per chain (address f02). It is the system actor
// implementing the hierarchical-consensus interface (paper §III-A): child
// subnet registration and collateral, cross-msg routing and nonces, the
// checkpoint window, the cross-msg registry for content resolution, fraud
// slashing, state snapshots, and atomic-execution coordination.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/crossmsg.hpp"
#include "core/fraud.hpp"
#include "core/params.hpp"

namespace hc::actors {

/// Parent-side bookkeeping for one registered child subnet.
struct SubnetEntry {
  core::SubnetId id;
  Address sa;  // the governing SA's address in this chain
  core::SubnetStatus status = core::SubnetStatus::kActive;
  TokenAmount collateral;
  TokenAmount min_collateral;
  /// Paper §II: tokens injected minus tokens withdrawn — the firewall bound.
  TokenAmount circulating_supply;
  /// Next nonce for top-down msgs committed toward this child (paper §IV-A:
  /// "the SCA of the source subnet (parent) increments a nonce that is
  /// unique to the top-down transaction directed to each of its childs").
  std::uint64_t topdown_nonce = 0;
  /// Committed, not-yet-garbage-collected top-down msgs for this child.
  std::vector<core::CrossMsg> topdown_queue;
  /// CIDs of checkpoints this child committed (newest last).
  std::vector<Cid> checkpoints;
  chain::Epoch last_checkpoint_epoch = -1;
  /// Addresses that already recovered stranded funds (paper §III-C);
  /// prevents double claims.
  std::vector<Address> recovered;
  /// Top-down msgs admitted since this child's last committed checkpoint —
  /// the unacknowledged backlog the circuit breaker bounds (DESIGN.md §14).
  /// Reset when the child's next checkpoint commits.
  std::uint64_t topdown_since_checkpoint = 0;
  /// Top-down msgs refused by the breaker (shed before consuming a nonce
  /// or minting circulating supply, so the firewall bound is untouched).
  std::uint64_t topdown_shed = 0;

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<SubnetEntry> decode_from(Decoder& d);
  bool operator==(const SubnetEntry&) const = default;
};

/// Economic outcome of one accepted fraud proof, per guilty validator
/// (paper §III-B). Keyed by (subnet, epoch, signer): a second proof over
/// the same equivocation — replayed, mirrored, or assembled from a
/// different signature subset — must conflict instead of double-slashing.
struct SlashRecord {
  core::SubnetId subnet;
  chain::Epoch epoch = 0;
  crypto::PublicKey signer;
  /// Collateral share actually burned for this validator.
  TokenAmount burned;

  void encode_to(Encoder& e) const {
    e.obj(subnet).i64(epoch).obj(signer).obj(burned);
  }
  [[nodiscard]] static Result<SlashRecord> decode_from(Decoder& d) {
    SlashRecord r;
    HC_TRY(subnet, d.obj<core::SubnetId>());
    HC_TRY(epoch, d.i64());
    HC_TRY(signer, d.obj<crypto::PublicKey>());
    HC_TRY(burned, d.obj<TokenAmount>());
    r.subnet = std::move(subnet);
    r.epoch = epoch;
    r.signer = signer;
    r.burned = burned;
    return r;
  }
  bool operator==(const SlashRecord&) const = default;
};

/// A bottom-up meta adopted by this SCA, awaiting batch execution.
struct PendingBottomUp {
  std::uint64_t nonce = 0;
  core::CrossMsgMeta meta;
  bool executed = false;

  void encode_to(Encoder& e) const {
    e.varint(nonce).obj(meta).boolean(executed);
  }
  [[nodiscard]] static Result<PendingBottomUp> decode_from(Decoder& d) {
    PendingBottomUp p;
    HC_TRY(nonce, d.varint());
    HC_TRY(meta, d.obj<core::CrossMsgMeta>());
    HC_TRY(executed, d.boolean());
    p.nonce = nonce;
    p.meta = std::move(meta);
    p.executed = executed;
    return p;
  }
  bool operator==(const PendingBottomUp&) const = default;
};

/// One party of an atomic execution (paper §IV-D).
struct AtomicParty {
  core::SubnetId subnet;
  Address addr;

  void encode_to(Encoder& e) const { e.obj(subnet).obj(addr); }
  [[nodiscard]] static Result<AtomicParty> decode_from(Decoder& d) {
    AtomicParty p;
    HC_TRY(subnet, d.obj<core::SubnetId>());
    HC_TRY(addr, d.obj<Address>());
    p.subnet = std::move(subnet);
    p.addr = addr;
    return p;
  }
  bool operator==(const AtomicParty&) const = default;
};

enum class AtomicStatus : std::uint8_t {
  kPending = 0,
  kCommitted = 1,
  kAborted = 2,
};

/// Coordinator record for one atomic execution (2PC with the SCA of the
/// least common ancestor as coordinator, paper §IV-D).
struct AtomicExec {
  std::uint64_t id = 0;
  std::vector<AtomicParty> parties;
  std::vector<Cid> input_cids;
  AtomicStatus status = AtomicStatus::kPending;
  /// outputs[i] = output CID submitted by parties[i] (null = not yet).
  std::vector<Cid> outputs;

  [[nodiscard]] bool all_submitted_and_equal() const;

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<AtomicExec> decode_from(Decoder& d);
  bool operator==(const AtomicExec&) const = default;
};

/// A persisted state snapshot (paper §III-C save()).
struct StateSnapshot {
  chain::Epoch epoch = 0;
  Cid state_root;

  void encode_to(Encoder& e) const { e.i64(epoch).obj(state_root); }
  [[nodiscard]] static Result<StateSnapshot> decode_from(Decoder& d) {
    StateSnapshot s;
    HC_TRY(epoch, d.i64());
    HC_TRY(root, d.obj<Cid>());
    s.epoch = epoch;
    s.state_root = root;
    return s;
  }
  bool operator==(const StateSnapshot&) const = default;
};

struct ScaState {
  /// This chain's own subnet id (root for the rootnet).
  core::SubnetId self;
  /// This subnet's own checkpoint period (epochs).
  std::uint32_t checkpoint_period = 10;
  /// Circuit breaker (DESIGN.md §14): max top-down msgs admitted per child
  /// between its checkpoints (0 = unbounded). While a child's
  /// `topdown_since_checkpoint` is at the cap, further top-down msgs toward
  /// it are shed with kOverloaded and revert to their source (paper §IV).
  std::uint64_t topdown_window_cap = 0;
  /// Breaker staleness trip: shed top-down msgs toward a child whose last
  /// committed checkpoint lags the current epoch by more than this many
  /// epochs (0 = disabled).
  chain::Epoch breaker_stall_epochs = 0;

  // ------------------------------------------------ children (as parent)
  std::map<Address, SubnetEntry> subnets;  // keyed by SA address

  // -------------------------------------- own cross-msg window (as child)
  /// Bottom-up msgs buffered in the current checkpoint window.
  std::vector<core::CrossMsg> window_msgs;
  /// Metas received from children that must be forwarded upward.
  std::vector<core::CrossMsgMeta> forward_meta;
  /// Child checkpoint CIDs accumulated since our last cut.
  std::vector<core::ChildCheck> window_children;
  /// The checkpoint frozen by the last kCutCheckpoint, awaiting signatures
  /// and submission to the parent (paper Fig. 2's "signature window").
  std::optional<core::Checkpoint> pending_checkpoint;
  Cid last_own_checkpoint;
  chain::Epoch last_own_checkpoint_epoch = -1;

  /// Registry: batch CID digest bytes -> encoded CrossMsgBatch. Serves the
  /// content-resolution protocol (paper §IV-C).
  std::map<Bytes, Bytes> msg_registry;

  // --------------------------------------------- inbound cross-msg queues
  /// Next nonce to assign to an adopted bottom-up meta.
  std::uint64_t bottomup_nonce = 0;
  /// Adopted metas awaiting execution (in nonce order).
  std::vector<PendingBottomUp> pending_bottomup;
  /// Execution cursors.
  std::uint64_t applied_bottomup_nonce = 0;
  std::uint64_t applied_topdown_nonce = 0;

  // --------------------------------------------------- atomic executions
  std::uint64_t next_exec_id = 1;
  std::map<std::uint64_t, AtomicExec> atomic_execs;

  // ------------------------------------------------------------ snapshots
  std::vector<StateSnapshot> snapshots;

  // ------------------------------------------------------------- slashing
  /// Digests of accepted fraud proofs (replay/mirror dedup).
  std::vector<Cid> fraud_digests;
  /// One record per slashed (subnet, epoch, signer).
  std::vector<SlashRecord> slash_records;

  /// Whether a slash record for (subnet, epoch, signer) already exists.
  [[nodiscard]] bool slashed(const core::SubnetId& subnet, chain::Epoch epoch,
                             const crypto::PublicKey& signer) const;

  [[nodiscard]] const SubnetEntry* find_subnet(const Address& sa) const;
  [[nodiscard]] SubnetEntry* find_subnet(const Address& sa);
  /// The direct child entry on the path toward `dest` (nullptr if none).
  [[nodiscard]] SubnetEntry* child_toward(const core::SubnetId& dest);

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<ScaState> decode_from(Decoder& d);
  bool operator==(const ScaState&) const = default;
};

}  // namespace hc::actors
