// Shared helpers for actor implementations.
#pragma once

#include "chain/actor.hpp"
#include "common/codec.hpp"

namespace hc::actors {

/// Load and decode an actor's state; default-constructs on first touch
/// (empty state bytes).
template <typename S>
[[nodiscard]] Result<S> load_state(chain::Runtime& rt) {
  HC_TRY(bytes, rt.get_state());
  if (bytes.empty()) return S{};
  return decode<S>(bytes);
}

/// Encode and persist an actor's state.
template <typename S>
[[nodiscard]] Status save_state(chain::Runtime& rt, const S& state) {
  return rt.set_state(encode(state));
}

}  // namespace hc::actors
