// Codec implementations for SA/SCA state structures.
#include "actors/sa_state.hpp"
#include "actors/sca_state.hpp"

#include <algorithm>

namespace hc::actors {

// ------------------------------------------------------------------ SA

void SaState::encode_to(Encoder& e) const {
  e.obj(params).obj(subnet_id).boolean(registered).boolean(killed);
  e.vec(validators).obj(total_stake).obj(last_checkpoint);
  e.i64(last_checkpoint_epoch);
}

Result<SaState> SaState::decode_from(Decoder& d) {
  SaState s;
  HC_TRY(params, d.obj<core::SubnetParams>());
  HC_TRY(subnet_id, d.obj<core::SubnetId>());
  HC_TRY(registered, d.boolean());
  HC_TRY(killed, d.boolean());
  HC_TRY(validators, d.vec<ValidatorInfo>());
  HC_TRY(total_stake, d.obj<TokenAmount>());
  HC_TRY(last_checkpoint, d.obj<Cid>());
  HC_TRY(epoch, d.i64());
  s.params = std::move(params);
  s.subnet_id = std::move(subnet_id);
  s.registered = registered;
  s.killed = killed;
  s.validators = std::move(validators);
  s.total_stake = total_stake;
  s.last_checkpoint = last_checkpoint;
  s.last_checkpoint_epoch = epoch;
  return s;
}

// ----------------------------------------------------------------- SCA

void SubnetEntry::encode_to(Encoder& e) const {
  e.obj(id).obj(sa).u8(static_cast<std::uint8_t>(status));
  e.obj(collateral).obj(min_collateral).obj(circulating_supply);
  e.varint(topdown_nonce).vec(topdown_queue).vec(checkpoints);
  e.i64(last_checkpoint_epoch);
  e.vec(recovered);
  e.varint(topdown_since_checkpoint).varint(topdown_shed);
}

Result<SubnetEntry> SubnetEntry::decode_from(Decoder& d) {
  SubnetEntry s;
  HC_TRY(id, d.obj<core::SubnetId>());
  HC_TRY(sa, d.obj<Address>());
  HC_TRY(status, d.u8());
  if (status > 2) return Error(Errc::kDecodeError, "bad subnet status");
  HC_TRY(collateral, d.obj<TokenAmount>());
  HC_TRY(min_collateral, d.obj<TokenAmount>());
  HC_TRY(supply, d.obj<TokenAmount>());
  HC_TRY(nonce, d.varint());
  HC_TRY(queue, d.vec<core::CrossMsg>());
  HC_TRY(checkpoints, d.vec<Cid>());
  HC_TRY(epoch, d.i64());
  HC_TRY(recovered, d.vec<Address>());
  HC_TRY(since_cp, d.varint());
  HC_TRY(shed, d.varint());
  s.id = std::move(id);
  s.sa = sa;
  s.status = static_cast<core::SubnetStatus>(status);
  s.collateral = collateral;
  s.min_collateral = min_collateral;
  s.circulating_supply = supply;
  s.topdown_nonce = nonce;
  s.topdown_queue = std::move(queue);
  s.checkpoints = std::move(checkpoints);
  s.last_checkpoint_epoch = epoch;
  s.recovered = std::move(recovered);
  s.topdown_since_checkpoint = since_cp;
  s.topdown_shed = shed;
  return s;
}

bool AtomicExec::all_submitted_and_equal() const {
  if (outputs.size() != parties.size()) return false;
  for (const auto& o : outputs) {
    if (o.is_null()) return false;
  }
  return std::all_of(outputs.begin(), outputs.end(),
                     [&](const Cid& c) { return c == outputs.front(); });
}

void AtomicExec::encode_to(Encoder& e) const {
  e.varint(id).vec(parties).vec(input_cids);
  e.u8(static_cast<std::uint8_t>(status)).vec(outputs);
}

Result<AtomicExec> AtomicExec::decode_from(Decoder& d) {
  AtomicExec a;
  HC_TRY(id, d.varint());
  HC_TRY(parties, d.vec<AtomicParty>());
  HC_TRY(inputs, d.vec<Cid>());
  HC_TRY(status, d.u8());
  if (status > 2) return Error(Errc::kDecodeError, "bad atomic status");
  HC_TRY(outputs, d.vec<Cid>());
  a.id = id;
  a.parties = std::move(parties);
  a.input_cids = std::move(inputs);
  a.status = static_cast<AtomicStatus>(status);
  a.outputs = std::move(outputs);
  return a;
}

const SubnetEntry* ScaState::find_subnet(const Address& sa) const {
  auto it = subnets.find(sa);
  return it == subnets.end() ? nullptr : &it->second;
}

SubnetEntry* ScaState::find_subnet(const Address& sa) {
  auto it = subnets.find(sa);
  return it == subnets.end() ? nullptr : &it->second;
}

SubnetEntry* ScaState::child_toward(const core::SubnetId& dest) {
  if (!self.is_prefix_of(dest) || self == dest) return nullptr;
  const core::SubnetId next = self.down_toward(dest);
  return find_subnet(next.actor());
}

void ScaState::encode_to(Encoder& e) const {
  e.obj(self).u32(checkpoint_period);
  e.varint(subnets.size());
  for (const auto& [sa, entry] : subnets) {
    e.obj(sa).obj(entry);
  }
  e.vec(window_msgs).vec(forward_meta).vec(window_children);
  e.boolean(pending_checkpoint.has_value());
  if (pending_checkpoint) e.obj(*pending_checkpoint);
  e.obj(last_own_checkpoint).i64(last_own_checkpoint_epoch);
  e.varint(msg_registry.size());
  for (const auto& [k, v] : msg_registry) {
    e.bytes(k).bytes(v);
  }
  e.varint(bottomup_nonce).vec(pending_bottomup);
  e.varint(applied_bottomup_nonce).varint(applied_topdown_nonce);
  e.varint(next_exec_id);
  e.varint(atomic_execs.size());
  for (const auto& [id, exec] : atomic_execs) {
    e.varint(id).obj(exec);
  }
  e.vec(snapshots);
  e.vec(fraud_digests).vec(slash_records);
  e.varint(topdown_window_cap).i64(breaker_stall_epochs);
}

Result<ScaState> ScaState::decode_from(Decoder& d) {
  ScaState s;
  HC_TRY(self, d.obj<core::SubnetId>());
  HC_TRY(period, d.u32());
  s.self = std::move(self);
  s.checkpoint_period = period;
  HC_TRY(n_subnets, d.varint());
  if (n_subnets > (1u << 16)) {
    return Error(Errc::kDecodeError, "too many subnets");
  }
  for (std::uint64_t i = 0; i < n_subnets; ++i) {
    HC_TRY(sa, d.obj<Address>());
    HC_TRY(entry, d.obj<SubnetEntry>());
    s.subnets.emplace(sa, std::move(entry));
  }
  HC_TRY(window_msgs, d.vec<core::CrossMsg>());
  HC_TRY(forward_meta, d.vec<core::CrossMsgMeta>());
  HC_TRY(window_children, d.vec<core::ChildCheck>());
  s.window_msgs = std::move(window_msgs);
  s.forward_meta = std::move(forward_meta);
  s.window_children = std::move(window_children);
  HC_TRY(has_pending, d.boolean());
  if (has_pending) {
    HC_TRY(cp, d.obj<core::Checkpoint>());
    s.pending_checkpoint = std::move(cp);
  }
  HC_TRY(last_cp, d.obj<Cid>());
  HC_TRY(last_epoch, d.i64());
  s.last_own_checkpoint = last_cp;
  s.last_own_checkpoint_epoch = last_epoch;
  HC_TRY(n_reg, d.varint());
  if (n_reg > (1u << 20)) return Error(Errc::kDecodeError, "registry too big");
  for (std::uint64_t i = 0; i < n_reg; ++i) {
    HC_TRY(k, d.bytes());
    HC_TRY(v, d.bytes());
    s.msg_registry.emplace(std::move(k), std::move(v));
  }
  HC_TRY(bu_nonce, d.varint());
  HC_TRY(pending_bu, d.vec<PendingBottomUp>());
  HC_TRY(applied_bu, d.varint());
  HC_TRY(applied_td, d.varint());
  HC_TRY(next_exec, d.varint());
  s.bottomup_nonce = bu_nonce;
  s.pending_bottomup = std::move(pending_bu);
  s.applied_bottomup_nonce = applied_bu;
  s.applied_topdown_nonce = applied_td;
  s.next_exec_id = next_exec;
  HC_TRY(n_atomic, d.varint());
  if (n_atomic > (1u << 16)) {
    return Error(Errc::kDecodeError, "too many atomic execs");
  }
  for (std::uint64_t i = 0; i < n_atomic; ++i) {
    HC_TRY(id, d.varint());
    HC_TRY(exec, d.obj<AtomicExec>());
    s.atomic_execs.emplace(id, std::move(exec));
  }
  HC_TRY(snapshots, d.vec<StateSnapshot>());
  s.snapshots = std::move(snapshots);
  HC_TRY(fraud_digests, d.vec<Cid>());
  HC_TRY(slash_records, d.vec<SlashRecord>());
  s.fraud_digests = std::move(fraud_digests);
  s.slash_records = std::move(slash_records);
  HC_TRY(td_cap, d.varint());
  HC_TRY(stall_epochs, d.i64());
  s.topdown_window_cap = td_cap;
  s.breaker_stall_epochs = stall_epochs;
  return s;
}

bool ScaState::slashed(const core::SubnetId& subnet, chain::Epoch epoch,
                       const crypto::PublicKey& signer) const {
  return std::any_of(slash_records.begin(), slash_records.end(),
                     [&](const SlashRecord& r) {
                       return r.epoch == epoch && r.signer == signer &&
                              r.subnet == subnet;
                     });
}

}  // namespace hc::actors
