// Subnet Actor (SA) state.
//
// One SA instance exists in the parent chain per spawned subnet; it is the
// user-deployed governance contract (paper §III-A) holding the validator
// set, the consensus choice and the checkpointing policy.
#pragma once

#include <vector>

#include "core/checkpoint.hpp"
#include "core/params.hpp"
#include "crypto/schnorr.hpp"

namespace hc::actors {

struct ValidatorInfo {
  crypto::PublicKey pubkey;
  TokenAmount stake;

  /// The validator's account address (stake refunds go here).
  [[nodiscard]] Address address() const {
    return Address::key(pubkey.to_bytes());
  }

  void encode_to(Encoder& e) const { e.obj(pubkey).obj(stake); }
  [[nodiscard]] static Result<ValidatorInfo> decode_from(Decoder& d) {
    ValidatorInfo v;
    HC_TRY(pk, d.obj<crypto::PublicKey>());
    HC_TRY(stake, d.obj<TokenAmount>());
    v.pubkey = pk;
    v.stake = stake;
    return v;
  }
  bool operator==(const ValidatorInfo&) const = default;
};

struct SaState {
  core::SubnetParams params;
  core::SubnetId subnet_id;  // assigned when registered with the SCA
  bool registered = false;
  bool killed = false;
  std::vector<ValidatorInfo> validators;
  TokenAmount total_stake;
  /// CID of the last checkpoint this SA accepted (prev-linkage check).
  Cid last_checkpoint;
  chain::Epoch last_checkpoint_epoch = -1;

  [[nodiscard]] std::vector<crypto::PublicKey> validator_keys() const {
    std::vector<crypto::PublicKey> keys;
    keys.reserve(validators.size());
    for (const auto& v : validators) keys.push_back(v.pubkey);
    return keys;
  }

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<SaState> decode_from(Decoder& d);
  bool operator==(const SaState&) const = default;
};

}  // namespace hc::actors
