#include "actors/subnet_actor.hpp"

#include <algorithm>

#include "actors/util.hpp"

namespace hc::actors {

Bytes make_sa_ctor_state(const core::SubnetParams& params) {
  SaState state;
  state.params = params;
  return encode(state);
}

Result<Bytes> SubnetActor::invoke(chain::Runtime& rt, chain::MethodNum method,
                                  const Bytes& params) {
  HC_TRY(state, load_state<SaState>(rt));
  if (state.killed && method != sa_method::kGetInfo) {
    return Error(Errc::kUnavailable, "subnet actor is killed");
  }
  switch (method) {
    case sa_method::kJoin:
      return join(rt, std::move(state), params);
    case sa_method::kLeave:
      return leave(rt, std::move(state));
    case sa_method::kKill:
      return kill(rt, std::move(state));
    case sa_method::kSubmitCheckpoint:
      return submit_checkpoint(rt, std::move(state), params);
    case sa_method::kSlash:
      return slash(rt, std::move(state), params);
    case sa_method::kGetInfo:
      return encode(state);
    default:
      return Error(Errc::kInvalidArgument, "subnet actor: unknown method");
  }
}

Result<Bytes> SubnetActor::join(chain::Runtime& rt, SaState state,
                                const Bytes& params) {
  HC_TRY(p, decode<JoinParams>(params));
  if (!p.pubkey.valid()) {
    return Error(Errc::kInvalidArgument, "invalid validator public key");
  }
  // Validators join on their own behalf: the caller must own the key.
  if (rt.caller() != Address::key(p.pubkey.to_bytes())) {
    return Error(Errc::kPermissionDenied,
                 "caller does not own the provided public key");
  }
  const TokenAmount stake = rt.value_received();
  if (stake < state.params.min_validator_stake) {
    return Error(Errc::kInsufficientFunds,
                 "stake below the subnet's minimum validator stake");
  }

  auto it = std::find_if(
      state.validators.begin(), state.validators.end(),
      [&](const ValidatorInfo& v) { return v.pubkey == p.pubkey; });
  if (it != state.validators.end()) {
    it->stake += stake;
  } else {
    state.validators.push_back(ValidatorInfo{p.pubkey, stake});
  }
  state.total_stake += stake;

  if (!state.registered) {
    if (state.total_stake >= state.params.min_collateral) {
      // Enough collateral gathered: register with the SCA, depositing all
      // accumulated stake (paper §III-B: "Subnet miners need to provide a
      // minimum collateral in their parent's SCA to register the subnet").
      HC_TRY(ret, rt.send(chain::kScaAddr, sca_method::kRegister,
                          encode(state.params), state.total_stake));
      HC_TRY(assigned, decode<core::SubnetId>(ret));
      state.subnet_id = assigned;
      state.registered = true;
      rt.emit_event("sa/registered", encode(state.subnet_id));
    }
    // Below threshold: stake accumulates in the SA's own balance.
  } else {
    HC_TRY_STATUS(to_status(
        rt.send(chain::kScaAddr, sca_method::kAddStake, {}, stake)));
  }
  HC_TRY_STATUS(save_state(rt, state));
  rt.emit_event("sa/joined", p.pubkey.to_bytes());
  return Bytes{};
}

Result<Bytes> SubnetActor::leave(chain::Runtime& rt, SaState state) {
  auto it = std::find_if(state.validators.begin(), state.validators.end(),
                         [&](const ValidatorInfo& v) {
                           return v.address() == rt.caller();
                         });
  if (it == state.validators.end()) {
    return Error(Errc::kNotFound, "caller is not a validator of this subnet");
  }
  const TokenAmount refund = it->stake;
  state.total_stake -= refund;
  state.validators.erase(it);

  if (state.registered) {
    Encoder p;
    p.obj(refund).obj(rt.caller());
    HC_TRY_STATUS(to_status(rt.send(chain::kScaAddr, sca_method::kReleaseStake,
                                   p.data(), TokenAmount())));
  } else {
    // Never registered: funds still sit in this SA; refund directly.
    HC_TRY_STATUS(to_status(rt.send(rt.caller(), 0, {}, refund)));
  }
  HC_TRY_STATUS(save_state(rt, state));
  rt.emit_event("sa/left", encode(rt.caller()));
  return Bytes{};
}

Result<Bytes> SubnetActor::kill(chain::Runtime& rt, SaState state) {
  // Paper §III-C: killing requires the SA-defined conditions; this default
  // SA requires the validator set to be empty (everyone has left).
  if (!state.validators.empty()) {
    return Error(Errc::kStateConflict,
                 "subnet still has validators; all must leave before kill");
  }
  if (state.registered) {
    Encoder p;
    p.obj(rt.caller());
    HC_TRY_STATUS(to_status(rt.send(chain::kScaAddr, sca_method::kKill,
                                   p.data(), TokenAmount())));
  }
  state.killed = true;
  HC_TRY_STATUS(save_state(rt, state));
  rt.emit_event("sa/killed", encode(state.subnet_id));
  return Bytes{};
}

Result<Bytes> SubnetActor::submit_checkpoint(chain::Runtime& rt, SaState state,
                                             const Bytes& params) {
  if (!state.registered) {
    return Error(Errc::kUnavailable, "subnet is not registered");
  }
  HC_TRY(sc, decode<core::SignedCheckpoint>(params));
  const core::Checkpoint& cp = sc.checkpoint;
  if (cp.source != state.subnet_id) {
    return Error(Errc::kInvalidArgument,
                 "checkpoint source does not match this subnet");
  }
  if (cp.epoch <= state.last_checkpoint_epoch) {
    return Error(Errc::kStateConflict, "checkpoint epoch is not newer");
  }
  if (cp.prev != state.last_checkpoint) {
    return Error(Errc::kStateConflict,
                 "checkpoint prev pointer does not match last accepted");
  }
  // The SA enforces its signature policy before anything reaches the SCA
  // (paper §III-B: "The specific signature policy is defined in the SA").
  HC_TRY_STATUS(
      state.params.checkpoint_policy.verify(sc, state.validator_keys()));

  state.last_checkpoint = cp.cid();
  state.last_checkpoint_epoch = cp.epoch;
  HC_TRY_STATUS(save_state(rt, state));

  HC_TRY_STATUS(to_status(rt.send(chain::kScaAddr,
                                   sca_method::kCommitChildCheckpoint,
                                   encode(sc), TokenAmount())));
  rt.emit_event("sa/checkpoint", encode(state.last_checkpoint));
  return Bytes{};
}

Result<Bytes> SubnetActor::slash(chain::Runtime& rt, SaState state,
                                 const Bytes& params) {
  if (rt.caller() != chain::kScaAddr) {
    return Error(Errc::kPermissionDenied, "only the SCA may slash");
  }
  HC_TRY(p, decode<SlashParams>(params));
  TokenAmount slashed;
  std::vector<ValidatorInfo> removed;
  for (const auto& key : p.guilty) {
    auto it = std::find_if(
        state.validators.begin(), state.validators.end(),
        [&](const ValidatorInfo& v) { return v.pubkey == key; });
    if (it == state.validators.end()) continue;
    slashed += it->stake;
    state.total_stake -= it->stake;
    removed.push_back(*it);
    state.validators.erase(it);
  }
  // Keep checkpointing live after the set shrinks: a 3-of-3 policy with one
  // validator slashed degrades to 2-of-2 instead of wedging forever.
  core::SignaturePolicy& policy = state.params.checkpoint_policy;
  if (policy.kind != core::SignaturePolicyKind::kSingle &&
      !state.validators.empty() &&
      policy.threshold > state.validators.size()) {
    policy.threshold = static_cast<std::uint32_t>(state.validators.size());
  }
  HC_TRY_STATUS(save_state(rt, state));
  rt.emit_event("sa/slashed", encode(slashed));
  Encoder ret;
  ret.vec(removed);
  return std::move(ret).take();
}

}  // namespace hc::actors
