// The Subnet Coordinator Actor (SCA).
//
// Paper §III-A: "The SCA is a system actor that exposes the interface for
// subnets to interact with the hierarchical consensus protocol. ... And, as
// SAs are user-defined and untrusted, it also enforces security
// assumptions, fund management, and the cryptoeconomics of hierarchical
// consensus."
//
// One SCA exists per chain at address f02. It owns: child registration and
// collateral custody, the firewall (circulating-supply) accounting of §II,
// top-down nonce assignment and queues (§IV-A), the checkpoint window and
// cross-msg registry (§III-B, §IV-C), bottom-up meta adoption and batch
// execution (§IV-B), fraud-proof slashing (§III-B), state snapshots
// (§III-C), and atomic-execution coordination (§IV-D).
#pragma once

#include "actors/methods.hpp"
#include "actors/sca_state.hpp"
#include "chain/actor.hpp"
#include "core/fraud.hpp"

namespace hc::actors {

/// Parameters for Fund / Release / SendCross: a general cross-net call.
struct CrossParams {
  core::SubnetId dest;
  Address to;
  chain::MethodNum method = 0;
  Bytes inner_params;

  void encode_to(Encoder& e) const {
    e.obj(dest).obj(to).varint(method).bytes(inner_params);
  }
  [[nodiscard]] static Result<CrossParams> decode_from(Decoder& d) {
    CrossParams p;
    HC_TRY(dest, d.obj<core::SubnetId>());
    HC_TRY(to, d.obj<Address>());
    HC_TRY(method, d.varint());
    HC_TRY(inner, d.bytes());
    p.dest = std::move(dest);
    p.to = to;
    p.method = method;
    p.inner_params = std::move(inner);
    return p;
  }
};

struct ReleaseStakeParams {
  TokenAmount amount;
  Address recipient;

  void encode_to(Encoder& e) const { e.obj(amount).obj(recipient); }
  [[nodiscard]] static Result<ReleaseStakeParams> decode_from(Decoder& d) {
    ReleaseStakeParams p;
    HC_TRY(amount, d.obj<TokenAmount>());
    HC_TRY(recipient, d.obj<Address>());
    p.amount = amount;
    p.recipient = recipient;
    return p;
  }
};

struct KillParams {
  Address recipient;

  void encode_to(Encoder& e) const { e.obj(recipient); }
  [[nodiscard]] static Result<KillParams> decode_from(Decoder& d) {
    HC_TRY(recipient, d.obj<Address>());
    return KillParams{recipient};
  }
};

/// Implicit checkpoint-cut parameters (injected at checkpoint heights).
struct CutParams {
  chain::Epoch epoch = 0;
  Cid proof;  // CID of the block anchoring this checkpoint

  void encode_to(Encoder& e) const { e.i64(epoch).obj(proof); }
  [[nodiscard]] static Result<CutParams> decode_from(Decoder& d) {
    CutParams p;
    HC_TRY(epoch, d.i64());
    HC_TRY(proof, d.obj<Cid>());
    p.epoch = epoch;
    p.proof = proof;
    return p;
  }
};

struct ApplyBottomUpParams {
  std::uint64_t nonce = 0;
  core::CrossMsgBatch batch;

  void encode_to(Encoder& e) const { e.varint(nonce).obj(batch); }
  [[nodiscard]] static Result<ApplyBottomUpParams> decode_from(Decoder& d) {
    ApplyBottomUpParams p;
    HC_TRY(nonce, d.varint());
    HC_TRY(batch, d.obj<core::CrossMsgBatch>());
    p.nonce = nonce;
    p.batch = std::move(batch);
    return p;
  }
};

/// Fund-recovery proof (paper §III-C): ties an account entry inside a dead
/// child subnet to a checkpoint the child committed while alive. The chain
/// of trust: SCA knows the checkpoint CID -> the checkpoint names a block
/// CID (`proof`) -> the block header names a state root -> the Merkle proof
/// places (address, entry) under that root.
struct RecoverParams {
  Address sa;                        // the dead child's SA
  core::Checkpoint checkpoint;       // committed by that child
  chain::BlockHeader header;         // header behind checkpoint.proof
  Address claimed_addr;              // account inside the child
  chain::ActorEntry claimed_entry;   // its state entry
  crypto::MerkleProof proof;         // inclusion under header.state_root

  void encode_to(Encoder& e) const {
    e.obj(sa).obj(checkpoint).obj(header).obj(claimed_addr);
    e.obj(claimed_entry).vec(proof);
  }
  [[nodiscard]] static Result<RecoverParams> decode_from(Decoder& d) {
    RecoverParams p;
    HC_TRY(sa, d.obj<Address>());
    HC_TRY(cp, d.obj<core::Checkpoint>());
    HC_TRY(header, d.obj<chain::BlockHeader>());
    HC_TRY(addr, d.obj<Address>());
    HC_TRY(entry, d.obj<chain::ActorEntry>());
    HC_TRY(proof, d.vec<crypto::MerkleStep>());
    p.sa = sa;
    p.checkpoint = std::move(cp);
    p.header = header;
    p.claimed_addr = addr;
    p.claimed_entry = std::move(entry);
    p.proof = std::move(proof);
    return p;
  }
};

struct SaveParams {
  Cid state_root;

  void encode_to(Encoder& e) const { e.obj(state_root); }
  [[nodiscard]] static Result<SaveParams> decode_from(Decoder& d) {
    HC_TRY(root, d.obj<Cid>());
    return SaveParams{root};
  }
};

struct AtomicInitParams {
  std::vector<AtomicParty> parties;
  std::vector<Cid> input_cids;

  void encode_to(Encoder& e) const { e.vec(parties).vec(input_cids); }
  [[nodiscard]] static Result<AtomicInitParams> decode_from(Decoder& d) {
    AtomicInitParams p;
    HC_TRY(parties, d.vec<AtomicParty>());
    HC_TRY(inputs, d.vec<Cid>());
    p.parties = std::move(parties);
    p.input_cids = std::move(inputs);
    return p;
  }
};

struct AtomicSubmitParams {
  std::uint64_t exec_id = 0;
  Cid output;

  void encode_to(Encoder& e) const { e.varint(exec_id).obj(output); }
  [[nodiscard]] static Result<AtomicSubmitParams> decode_from(Decoder& d) {
    AtomicSubmitParams p;
    HC_TRY(id, d.varint());
    HC_TRY(output, d.obj<Cid>());
    p.exec_id = id;
    p.output = output;
    return p;
  }
};

struct AtomicAbortParams {
  std::uint64_t exec_id = 0;

  void encode_to(Encoder& e) const { e.varint(exec_id); }
  [[nodiscard]] static Result<AtomicAbortParams> decode_from(Decoder& d) {
    HC_TRY(id, d.varint());
    return AtomicAbortParams{id};
  }
};

/// Atomic-execution result notification payload (carried by the zero-value
/// notification cross-msgs the coordinator sends to party subnets).
struct AtomicNotice {
  std::uint64_t exec_id = 0;
  AtomicStatus status = AtomicStatus::kPending;

  void encode_to(Encoder& e) const {
    e.varint(exec_id).u8(static_cast<std::uint8_t>(status));
  }
  [[nodiscard]] static Result<AtomicNotice> decode_from(Decoder& d) {
    AtomicNotice n;
    HC_TRY(id, d.varint());
    HC_TRY(status, d.u8());
    if (status > 2) return Error(Errc::kDecodeError, "bad atomic status");
    n.exec_id = id;
    n.status = static_cast<AtomicStatus>(status);
    return n;
  }
};

/// Build the initial SCA state for a chain with the given identity.
/// `topdown_window_cap` / `breaker_stall_epochs` configure the top-down
/// circuit breaker (DESIGN.md §14); 0 disables each trip condition.
[[nodiscard]] Bytes make_sca_ctor_state(const core::SubnetId& self,
                                        std::uint32_t checkpoint_period,
                                        std::uint64_t topdown_window_cap = 0,
                                        chain::Epoch breaker_stall_epochs = 0);

/// Whether the top-down circuit breaker refuses new cross-msgs toward
/// `child` at epoch `now`: the unacknowledged backlog reached the window
/// cap, or the child's checkpoints stalled. Pure function of on-chain
/// state, so every replica agrees on every shed decision.
[[nodiscard]] bool breaker_open(const ScaState& s, const SubnetEntry& child,
                                chain::Epoch now);

class ScaActor final : public chain::ActorLogic {
 public:
  Result<Bytes> invoke(chain::Runtime& rt, chain::MethodNum method,
                       const Bytes& params) override;

 private:
  using Rt = chain::Runtime;

  Result<Bytes> register_subnet(Rt& rt, ScaState& s, const Bytes& params);
  Result<Bytes> add_stake(Rt& rt, ScaState& s);
  Result<Bytes> release_stake(Rt& rt, ScaState& s, const Bytes& params);
  Result<Bytes> kill_subnet(Rt& rt, ScaState& s, const Bytes& params);
  Result<Bytes> send_cross(Rt& rt, ScaState& s, const Bytes& params);
  Result<Bytes> commit_child_checkpoint(Rt& rt, ScaState& s,
                                        const Bytes& params);
  Result<Bytes> cut_checkpoint(Rt& rt, ScaState& s, const Bytes& params);
  Result<Bytes> apply_topdown(Rt& rt, ScaState& s, const Bytes& params);
  Result<Bytes> apply_bottomup(Rt& rt, ScaState& s, const Bytes& params);
  Result<Bytes> submit_fraud_proof(Rt& rt, ScaState& s, const Bytes& params);
  Result<Bytes> save_snapshot(Rt& rt, ScaState& s, const Bytes& params);
  Result<Bytes> recover_funds(Rt& rt, ScaState& s, const Bytes& params);
  Result<Bytes> atomic_init(Rt& rt, ScaState& s, const AtomicParty& initiator,
                            const Bytes& params);
  Result<Bytes> atomic_submit(Rt& rt, ScaState& s, const AtomicParty& party,
                              const Bytes& params);
  Result<Bytes> atomic_abort(Rt& rt, ScaState& s, const AtomicParty& party,
                             const Bytes& params);

  /// Deliver a cross-msg that has arrived at this subnet: execute locally,
  /// forward down toward its destination, or (rare) send back up. On local
  /// execution failure, emits the revert cross-msg of paper §IV-B.
  Status deliver(Rt& rt, ScaState& s, const core::CrossMsg& cross);

  /// Route an outbound cross-msg from this SCA: enqueue top-down (freezing
  /// value) or append to the bottom-up window (burning value).
  Status route_out(Rt& rt, ScaState& s, core::CrossMsg cross);

  /// Send result notifications for a finished atomic execution.
  Status notify_atomic(Rt& rt, ScaState& s, const AtomicExec& exec);
};

}  // namespace hc::actors
