#include "core/light_client.hpp"

namespace hc::core {

LightClient::LightClient(SubnetId subnet, SignaturePolicy policy,
                         std::vector<crypto::PublicKey> validators,
                         std::uint32_t checkpoint_period)
    : subnet_(std::move(subnet)),
      policy_(policy),
      validators_(std::move(validators)),
      period_(checkpoint_period) {}

Status LightClient::advance(const SignedCheckpoint& sc) {
  const Checkpoint& cp = sc.checkpoint;
  if (cp.source != subnet_) {
    return Error(Errc::kInvalidArgument,
                 "checkpoint is for a different subnet");
  }
  if (cp.epoch <= latest_epoch_) {
    return Error(Errc::kStateConflict, "checkpoint epoch is not newer");
  }
  if (period_ > 0 && cp.epoch % period_ != 0) {
    return Error(Errc::kInvalidArgument,
                 "checkpoint epoch not aligned to the subnet period");
  }
  if (cp.prev != latest_cid_) {
    return Error(Errc::kStateConflict,
                 "checkpoint does not extend the accepted chain");
  }
  HC_TRY_STATUS(policy_.verify(sc, validators_));

  latest_epoch_ = cp.epoch;
  latest_cid_ = cp.cid();
  accepted_.insert(latest_cid_);
  for (const auto& meta : cp.cross_meta) {
    committed_batches_.insert(meta.msgs_cid);
  }
  return ok_status();
}

}  // namespace hc::core
