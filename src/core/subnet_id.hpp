// Hierarchical subnet identifiers.
//
// Paper §III-A: "Subnets are identified with a unique ID that is inferred
// deterministically from the ID of its ancestor and from the ID of the SA
// that governs its operation. This deterministic naming enables the
// discovery of and interaction with subnets from any other point in the
// hierarchy without the need of a discovery service."
//
// An id is the rootnet marker plus the path of Subnet Actor addresses, e.g.
// "/root/f0100/f0102". The routing helpers (common ancestor, next hop down)
// implement the path decomposition used by cross-net messages (§IV-A).
//
// Representation (DESIGN.md §17): a SubnetId is a 4-byte flyweight handle
// into the process-wide SubnetInterner. Copying an id copies one word;
// equality is handle equality (interning canonicalizes paths); hashing
// returns the precomputed path hash; `to_string()`, `topic()` and `path()`
// return references to the interned artifacts instead of materializing
// them per call. Ordering, hashing and the wire codec are all derived from
// path CONTENT, never from handle values — handle numbering depends on
// intern order, and nothing observable may.
#pragma once

#include <compare>
#include <optional>
#include <string>
#include <vector>

#include "common/address.hpp"
#include "common/codec.hpp"
#include "core/intern.hpp"

namespace hc::core {

class SubnetId {
 public:
  /// The rootnet id "/root".
  SubnetId() = default;

  /// The rootnet.
  [[nodiscard]] static SubnetId root() { return SubnetId(); }

  /// The id behind an interner handle (must come from the interner).
  [[nodiscard]] static SubnetId from_ref(SubnetRef r) { return SubnetId(r); }

  /// The child of this subnet governed by SA at `sa`.
  [[nodiscard]] SubnetId child(const Address& sa) const {
    return SubnetId(SubnetInterner::instance().child_of(ref_, sa));
  }

  /// Parent id; nullopt for the rootnet.
  [[nodiscard]] std::optional<SubnetId> parent() const {
    if (is_root()) return std::nullopt;
    return SubnetId(entry_().parent);
  }

  [[nodiscard]] bool is_root() const { return ref_ == kRootRef; }

  /// Number of edges from the root (root = 0).
  [[nodiscard]] std::size_t depth() const { return entry_().depth; }

  /// SA address governing this subnet in its parent; invalid for root.
  /// Returns the canonical interned copy (process lifetime).
  [[nodiscard]] const Address& actor() const { return entry_().actor; }

  /// True when `this` is an ancestor of (or equal to) `other`.
  [[nodiscard]] bool is_prefix_of(const SubnetId& other) const;

  /// Deepest subnet that is an ancestor of (or equal to) both.
  [[nodiscard]] static SubnetId common_ancestor(const SubnetId& a,
                                                const SubnetId& b);

  /// For a destination below this subnet: the immediate child on the path
  /// toward `dest`. Precondition: is_prefix_of(dest) && *this != dest.
  [[nodiscard]] SubnetId down_toward(const SubnetId& dest) const;

  /// "/root/f0100/f0102" — interned, no allocation.
  [[nodiscard]] const std::string& to_string() const { return entry_().str; }

  /// Pubsub topic for this subnet's traffic — interned, no allocation.
  [[nodiscard]] const std::string& topic() const { return entry_().topic; }

  /// Derived per-protocol topic ("<topic>/msgs", ...) — interned.
  [[nodiscard]] const std::string& topic(SubnetTopic t) const {
    return entry_().sub_topics[static_cast<std::size_t>(t)];
  }

  [[nodiscard]] const std::vector<Address>& path() const {
    return entry_().path;
  }

  /// Precomputed FNV-1a fold over the path addresses: byte-identical to
  /// the values the pre-interning per-probe walk produced, and stable
  /// across intern order (content-derived).
  [[nodiscard]] std::size_t hash() const { return entry_().path_hash; }

  /// The interner handle (diagnostics only — order-dependent!).
  [[nodiscard]] SubnetRef ref() const { return ref_; }

  /// Interning canonicalizes: same path <=> same handle.
  friend bool operator==(const SubnetId& a, const SubnetId& b) {
    return a.ref_ == b.ref_;
  }
  /// Path-lexicographic, exactly as the vector<Address> representation
  /// ordered — std::map<SubnetId, ...> iteration feeds deterministic
  /// encodes and must not depend on intern order.
  friend std::strong_ordering operator<=>(const SubnetId& a,
                                          const SubnetId& b);

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<SubnetId> decode_from(Decoder& d);

 private:
  explicit SubnetId(SubnetRef r) : ref_(r) {}
  [[nodiscard]] const SubnetInterner::Entry& entry_() const {
    return SubnetInterner::instance().entry(ref_);
  }

  SubnetRef ref_ = kRootRef;
};

}  // namespace hc::core

template <>
struct std::hash<hc::core::SubnetId> {
  std::size_t operator()(const hc::core::SubnetId& id) const noexcept {
    return id.hash();
  }
};
