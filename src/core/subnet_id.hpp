// Hierarchical subnet identifiers.
//
// Paper §III-A: "Subnets are identified with a unique ID that is inferred
// deterministically from the ID of its ancestor and from the ID of the SA
// that governs its operation. This deterministic naming enables the
// discovery of and interaction with subnets from any other point in the
// hierarchy without the need of a discovery service."
//
// An id is the rootnet marker plus the path of Subnet Actor addresses, e.g.
// "/root/f0100/f0102". The routing helpers (common ancestor, next hop down)
// implement the path decomposition used by cross-net messages (§IV-A).
#pragma once

#include <compare>
#include <optional>
#include <string>
#include <vector>

#include "common/address.hpp"
#include "common/codec.hpp"

namespace hc::core {

class SubnetId {
 public:
  /// The rootnet id "/root".
  SubnetId() = default;

  /// The rootnet.
  [[nodiscard]] static SubnetId root() { return SubnetId(); }

  /// The child of this subnet governed by SA at `sa`.
  [[nodiscard]] SubnetId child(const Address& sa) const;

  /// Parent id; nullopt for the rootnet.
  [[nodiscard]] std::optional<SubnetId> parent() const;

  [[nodiscard]] bool is_root() const { return path_.empty(); }

  /// Number of edges from the root (root = 0).
  [[nodiscard]] std::size_t depth() const { return path_.size(); }

  /// SA address governing this subnet in its parent; invalid for root.
  [[nodiscard]] Address actor() const {
    return path_.empty() ? Address() : path_.back();
  }

  /// True when `this` is an ancestor of (or equal to) `other`.
  [[nodiscard]] bool is_prefix_of(const SubnetId& other) const;

  /// Deepest subnet that is an ancestor of (or equal to) both.
  [[nodiscard]] static SubnetId common_ancestor(const SubnetId& a,
                                                const SubnetId& b);

  /// For a destination below this subnet: the immediate child on the path
  /// toward `dest`. Precondition: is_prefix_of(dest) && *this != dest.
  [[nodiscard]] SubnetId down_toward(const SubnetId& dest) const;

  /// "/root/f0100/f0102".
  [[nodiscard]] std::string to_string() const;

  /// Pubsub topic for this subnet's traffic.
  [[nodiscard]] std::string topic() const { return "hc" + to_string(); }

  [[nodiscard]] const std::vector<Address>& path() const { return path_; }

  friend auto operator<=>(const SubnetId&, const SubnetId&) = default;

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<SubnetId> decode_from(Decoder& d);

 private:
  std::vector<Address> path_;
};

}  // namespace hc::core

template <>
struct std::hash<hc::core::SubnetId> {
  std::size_t operator()(const hc::core::SubnetId& id) const noexcept {
    std::size_t h = 0xcbf29ce484222325ull;
    for (const auto& a : id.path()) {
      h = (h ^ std::hash<hc::Address>{}(a)) * 0x100000001b3ull;
    }
    return h;
  }
};
