#include "crypto/sigcache.hpp"
#include "core/policy.hpp"

#include <algorithm>
#include <set>

namespace hc::core {

SignaturePolicy SignaturePolicy::bft_quorum(std::size_t n_validators) {
  const std::size_t f = n_validators >= 1 ? (n_validators - 1) / 3 : 0;
  return SignaturePolicy{SignaturePolicyKind::kMultiSig,
                         static_cast<std::uint32_t>(2 * f + 1)};
}

SignaturePolicy SignaturePolicy::majority(std::size_t n_validators) {
  return SignaturePolicy{SignaturePolicyKind::kMultiSig,
                         static_cast<std::uint32_t>(n_validators / 2 + 1)};
}

Status SignaturePolicy::verify(
    const SignedCheckpoint& sc,
    const std::vector<crypto::PublicKey>& validators) const {
  const std::uint32_t required =
      kind == SignaturePolicyKind::kSingle ? 1 : threshold;

  // Count distinct, registered, cryptographically valid signers.
  const Bytes payload = SignedCheckpoint::signing_payload(sc.checkpoint);
  std::set<Bytes> seen;
  std::uint32_t valid = 0;
  for (const auto& s : sc.signatures) {
    const Bytes key_bytes = s.signer.to_bytes();
    if (!seen.insert(key_bytes).second) {
      return Error(Errc::kInvalidSignature, "duplicate checkpoint signer");
    }
    const bool registered =
        std::find(validators.begin(), validators.end(), s.signer) !=
        validators.end();
    if (!registered) {
      return Error(Errc::kPermissionDenied,
                   "checkpoint signer is not a registered validator");
    }
    if (!crypto::verify_cached(s.signer, payload, s.signature)) {
      return Error(Errc::kInvalidSignature, "invalid checkpoint signature");
    }
    ++valid;
  }
  if (valid < required) {
    return Error(Errc::kPermissionDenied,
                 "policy requires " + std::to_string(required) +
                     " signatures, got " + std::to_string(valid));
  }
  return ok_status();
}

std::size_t SignaturePolicy::compact_proof_size(
    std::size_t n_signatures) const {
  constexpr std::size_t kSigBytes = 96;
  constexpr std::size_t kKeyBytes = 64;
  switch (kind) {
    case SignaturePolicyKind::kSingle:
      return kSigBytes + kKeyBytes;
    case SignaturePolicyKind::kMultiSig:
      return n_signatures * (kSigBytes + kKeyBytes);
    case SignaturePolicyKind::kThreshold:
      // One aggregate signature plus a signer bitmap.
      return kSigBytes + (n_signatures + 7) / 8;
  }
  return 0;
}

}  // namespace hc::core
