// Fraud (equivocation) proofs.
//
// Paper §III-B: "Checkpoints for a subnet can be verified at any point using
// the state of the subnet chain which can then be used to generate
// equivocation proofs (or so-called fraud proofs) which, in turn, can be
// used for penalizing misbehaving entities ('slashing')."
//
// The canonical fraud here is checkpoint equivocation: two differing
// checkpoints for the same (subnet, epoch), both signed by an overlapping
// set of validators. Any full node can assemble such a proof and submit it
// to the parent SCA, which slashes the guilty validators' collateral.
#pragma once

#include <vector>

#include "core/checkpoint.hpp"
#include "core/policy.hpp"

namespace hc::core {

struct FraudProof {
  SignedCheckpoint first;
  SignedCheckpoint second;

  /// Validate the proof and return the equivocating signers: both
  /// checkpoints must target the same (subnet, epoch), differ in content,
  /// carry valid signatures, and share at least one signer. Signers listed
  /// are those that signed BOTH sides.
  [[nodiscard]] Result<std::vector<crypto::PublicKey>> guilty_signers() const;

  /// Canonical content id for replay dedup: the two sides are ordered by
  /// their encoding before hashing, so a mirrored proof (first/second
  /// swapped) hashes to the same digest.
  [[nodiscard]] Cid digest() const;

  void encode_to(Encoder& e) const { e.obj(first).obj(second); }
  [[nodiscard]] static Result<FraudProof> decode_from(Decoder& d) {
    FraudProof fp;
    HC_TRY(a, d.obj<SignedCheckpoint>());
    HC_TRY(b, d.obj<SignedCheckpoint>());
    fp.first = std::move(a);
    fp.second = std::move(b);
    return fp;
  }
  bool operator==(const FraudProof&) const = default;
};

}  // namespace hc::core
