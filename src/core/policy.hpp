// Checkpoint signature policies.
//
// Paper §III-B: "The specific signature policy is defined in the SA and
// determines the type and minimum number of signatures required for a
// checkpoint to be accepted ... Different signature schemes may be used
// here, including multi-signatures or threshold signatures among subnet
// miners."
//
// kThreshold is *functionally* verified the same way as kMultiSig (t
// distinct valid validator signatures) — a faithful BLS-style aggregate is
// out of scope — but its wire footprint is modeled by compact_proof_size()
// as a single aggregate signature, which is what the checkpoint-size bench
// (E2) measures. This substitution is recorded in DESIGN.md §2.
#pragma once

#include <cstdint>
#include <vector>

#include "core/checkpoint.hpp"

namespace hc::core {

enum class SignaturePolicyKind : std::uint8_t {
  kSingle = 0,     // any one registered validator
  kMultiSig = 1,   // at least `threshold` distinct validator signatures
  kThreshold = 2,  // t-of-n threshold signature (aggregate)
};

struct SignaturePolicy {
  SignaturePolicyKind kind = SignaturePolicyKind::kMultiSig;
  std::uint32_t threshold = 1;

  /// Classic BFT quorum policy: 2f+1 of n, f = (n-1)/3.
  [[nodiscard]] static SignaturePolicy bft_quorum(std::size_t n_validators);
  /// Simple majority policy: floor(n/2)+1 of n.
  [[nodiscard]] static SignaturePolicy majority(std::size_t n_validators);

  /// Verify `sc` against the subnet's registered validator keys: every
  /// signature must be cryptographically valid, from a registered validator,
  /// with no duplicates, and the count must satisfy the policy.
  [[nodiscard]] Status verify(
      const SignedCheckpoint& sc,
      const std::vector<crypto::PublicKey>& validators) const;

  /// Serialized proof size in bytes under this policy (threshold policies
  /// aggregate to a single signature on the wire).
  [[nodiscard]] std::size_t compact_proof_size(std::size_t n_signatures) const;

  void encode_to(Encoder& e) const {
    e.u8(static_cast<std::uint8_t>(kind)).u32(threshold);
  }
  [[nodiscard]] static Result<SignaturePolicy> decode_from(Decoder& d) {
    HC_TRY(kind, d.u8());
    HC_TRY(threshold, d.u32());
    if (kind > 2) return Error(Errc::kDecodeError, "bad policy kind");
    return SignaturePolicy{static_cast<SignaturePolicyKind>(kind), threshold};
  }
  bool operator==(const SignaturePolicy&) const = default;
};

}  // namespace hc::core
