// Cross-net messages and their checkpoint metadata.
//
// Paper §IV-A distinguishes *top-down* messages (parent → descendant,
// applied directly once the parent commits them), *bottom-up* messages
// (descendant → ancestor, carried as CrossMsgMeta inside checkpoints), and
// *path* messages (bottom-up to the least common ancestor, then top-down).
// A CrossMsg pairs a chain::Message with fully-qualified source and
// destination (SubnetId, Address) endpoints plus the protocol-assigned
// nonce that fixes its total order of application in the destination.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/message.hpp"
#include "core/subnet_id.hpp"

namespace hc::core {

/// Which way a message travels relative to the current subnet.
enum class CrossMsgKind : std::uint8_t {
  kTopDown = 0,
  kBottomUp = 1,
  kPath = 2,  // needs both legs (not in the same branch)
};

struct CrossMsg {
  SubnetId from_subnet;
  SubnetId to_subnet;
  chain::Message msg;     // msg.from/to are subnet-local addresses
  std::uint64_t nonce = 0;  // assigned by the committing SCA

  /// Classify relative routing (paper §IV-A).
  [[nodiscard]] CrossMsgKind kind() const;

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<CrossMsg> decode_from(Decoder& d);
  [[nodiscard]] Cid cid() const;
  bool operator==(const CrossMsg&) const = default;
};

/// A batch of cross-msgs moving together between two subnets; the unit
/// that CrossMsgMeta commits to by CID.
struct CrossMsgBatch {
  std::vector<CrossMsg> msgs;

  void encode_to(Encoder& e) const { e.vec(msgs); }
  [[nodiscard]] static Result<CrossMsgBatch> decode_from(Decoder& d) {
    CrossMsgBatch b;
    HC_TRY(msgs, d.vec<CrossMsg>());
    b.msgs = std::move(msgs);
    return b;
  }
  [[nodiscard]] Cid cid() const {
    return Cid::of(CidCodec::kCrossMsgs, encode(*this));
  }
  /// Total token value carried by the batch.
  [[nodiscard]] TokenAmount total_value() const;
  bool operator==(const CrossMsgBatch&) const = default;
};

/// Checkpoint-carried metadata for one batch (paper §III-B:
/// "crossMeta = (from, to, nonce, msgsCid)").
struct CrossMsgMeta {
  SubnetId from;
  SubnetId to;
  std::uint64_t nonce = 0;  // assigned when the destination's SCA adopts it
  Cid msgs_cid;             // CID of the CrossMsgBatch
  std::uint32_t msg_count = 0;
  TokenAmount value;        // total tokens carried (for supply accounting)

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<CrossMsgMeta> decode_from(Decoder& d);
  bool operator==(const CrossMsgMeta&) const = default;
};

}  // namespace hc::core
