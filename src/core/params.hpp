// Subnet configuration vocabulary shared by the SA/SCA actors and the node
// runtime.
#pragma once

#include <cstdint>
#include <string>

#include "common/codec.hpp"
#include "common/token.hpp"
#include "core/policy.hpp"

namespace hc::core {

/// Consensus protocols a subnet can run (paper §II: "Each subnet can run
/// its own independent consensus algorithm"; §VI names Tendermint and
/// MirBFT as integration targets).
enum class ConsensusType : std::uint8_t {
  kPoaRoundRobin = 0,  // permissioned rotation, instant finality
  kPowerLottery = 1,   // Filecoin EC-style weighted leader lottery
  kTendermint = 2,     // 3-phase BFT
  kRoundRobinBft = 3,  // MirBFT stand-in: rotating-leader BFT batching
};

[[nodiscard]] std::string_view consensus_name(ConsensusType t);

/// Lifecycle status tracked by the parent SCA (paper §III-B/§III-C).
enum class SubnetStatus : std::uint8_t {
  kActive = 0,
  kInactive = 1,  // collateral below minimum; cross-net interaction frozen
  kKilled = 2,
};

/// Parameters fixed at SA deployment (paper §III-A: "The contract specifies
/// the consensus protocol to be run by the subnet and the set of policies
/// to be enforced for new members, leaving members, checkpointing, killing
/// the subnet, etc.").
struct SubnetParams {
  std::string name;
  ConsensusType consensus = ConsensusType::kPoaRoundRobin;
  TokenAmount min_validator_stake = TokenAmount::whole(1);
  TokenAmount min_collateral = TokenAmount::whole(1);  // minCollateral_subnet
  std::uint32_t checkpoint_period = 10;  // in subnet epochs
  SignaturePolicy checkpoint_policy;

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<SubnetParams> decode_from(Decoder& d);
  bool operator==(const SubnetParams&) const = default;
};

}  // namespace hc::core
