// Checkpoints: the anchor of subnet security and the carrier of bottom-up
// cross-msgs.
//
// Paper §III-B: "Checkpoints include the following data:
// ⟨s, proof, prev, children, crossMeta⟩" — source subnet, CID of the latest
// committed subnet block, pointer to the previous checkpoint, the tree of
// child checkpoints aggregated this period, and the CrossMsgMeta tree.
// Checkpoints are signed under the subnet's SA-defined signature policy
// (single signer / multi-signature / threshold) and committed to the parent
// chain, recursively propagating to the rootnet.
#pragma once

#include <vector>

#include "chain/block.hpp"
#include "core/crossmsg.hpp"
#include "crypto/schnorr.hpp"

namespace hc::core {

/// A child subnet's checkpoint CIDs aggregated into this checkpoint.
struct ChildCheck {
  SubnetId subnet;
  std::vector<Cid> checkpoints;

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<ChildCheck> decode_from(Decoder& d);
  bool operator==(const ChildCheck&) const = default;
};

struct Checkpoint {
  SubnetId source;           // s
  chain::Epoch epoch = 0;    // subnet height this checkpoint commits
  Cid proof;                 // CID of the latest committed subnet block
  Cid prev;                  // CID of the previous checkpoint (null = first)
  std::vector<ChildCheck> children;
  std::vector<CrossMsgMeta> cross_meta;

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<Checkpoint> decode_from(Decoder& d);
  [[nodiscard]] Cid cid() const;
  bool operator==(const Checkpoint&) const = default;

  /// Total bottom-up value leaving this subnet in this checkpoint.
  [[nodiscard]] TokenAmount outgoing_value() const;
};

/// One validator's signature over a checkpoint CID digest.
struct CheckpointSignature {
  crypto::PublicKey signer;
  crypto::Signature signature;

  void encode_to(Encoder& e) const { e.obj(signer).obj(signature); }
  [[nodiscard]] static Result<CheckpointSignature> decode_from(Decoder& d) {
    CheckpointSignature cs;
    HC_TRY(signer, d.obj<crypto::PublicKey>());
    HC_TRY(sig, d.obj<crypto::Signature>());
    cs.signer = signer;
    cs.signature = sig;
    return cs;
  }
  bool operator==(const CheckpointSignature&) const = default;
};

/// Checkpoint plus its policy proof (the signature set).
struct SignedCheckpoint {
  Checkpoint checkpoint;
  std::vector<CheckpointSignature> signatures;

  /// The byte string validators sign: the checkpoint CID digest.
  [[nodiscard]] static Bytes signing_payload(const Checkpoint& cp);

  /// Same payload derived from a bare CID: a signature share can be
  /// verified against the cid it claims without knowing the checkpoint
  /// content behind it (equivocation watchers rely on this).
  [[nodiscard]] static Bytes signing_payload_for(const Cid& cid);

  /// Append `key`'s signature.
  void add_signature(const crypto::KeyPair& key);

  /// Verify every attached signature against the payload (membership /
  /// threshold checks are the SignaturePolicy's job — see policy.hpp).
  [[nodiscard]] bool signatures_valid() const;

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<SignedCheckpoint> decode_from(Decoder& d);
  bool operator==(const SignedCheckpoint&) const = default;
};

}  // namespace hc::core
