#include "core/subnet_id.hpp"

#include <cassert>

namespace hc::core {

bool SubnetId::is_prefix_of(const SubnetId& other) const {
  const auto& interner = SubnetInterner::instance();
  const std::uint32_t my_depth = interner.entry(ref_).depth;
  SubnetRef r = other.ref_;
  std::uint32_t d = interner.entry(r).depth;
  if (my_depth > d) return false;
  while (d > my_depth) {
    r = interner.entry(r).parent;
    --d;
  }
  return r == ref_;
}

SubnetId SubnetId::common_ancestor(const SubnetId& a, const SubnetId& b) {
  const auto& interner = SubnetInterner::instance();
  SubnetRef ra = a.ref_;
  SubnetRef rb = b.ref_;
  std::uint32_t da = interner.entry(ra).depth;
  std::uint32_t db = interner.entry(rb).depth;
  while (da > db) {
    ra = interner.entry(ra).parent;
    --da;
  }
  while (db > da) {
    rb = interner.entry(rb).parent;
    --db;
  }
  while (ra != rb) {
    ra = interner.entry(ra).parent;
    rb = interner.entry(rb).parent;
  }
  return SubnetId(ra);
}

SubnetId SubnetId::down_toward(const SubnetId& dest) const {
  assert(is_prefix_of(dest) && *this != dest &&
         "down_toward requires a strict descendant");
  const auto& interner = SubnetInterner::instance();
  const std::uint32_t my_depth = interner.entry(ref_).depth;
  SubnetRef r = dest.ref_;
  while (interner.entry(r).depth > my_depth + 1) {
    r = interner.entry(r).parent;
  }
  return SubnetId(r);
}

std::strong_ordering operator<=>(const SubnetId& a, const SubnetId& b) {
  if (a.ref_ == b.ref_) return std::strong_ordering::equal;
  return a.path() <=> b.path();
}

void SubnetId::encode_to(Encoder& e) const {
  const auto& path = entry_().path;
  e.varint(path.size());
  for (const auto& a : path) e.obj(a);
}

Result<SubnetId> SubnetId::decode_from(Decoder& d) {
  HC_TRY(count, d.varint());
  if (count > 64) return Error(Errc::kDecodeError, "subnet path too deep");
  auto& interner = SubnetInterner::instance();
  SubnetRef r = kRootRef;
  for (std::uint64_t i = 0; i < count; ++i) {
    HC_TRY(addr, d.obj<Address>());
    if (!addr.valid()) {
      return Error(Errc::kDecodeError, "invalid address in subnet path");
    }
    r = interner.child_of(r, addr);
  }
  return SubnetId(r);
}

}  // namespace hc::core
