#include "core/subnet_id.hpp"

#include <cassert>

namespace hc::core {

SubnetId SubnetId::child(const Address& sa) const {
  assert(sa.valid() && "child subnet requires a valid SA address");
  SubnetId c = *this;
  c.path_.push_back(sa);
  return c;
}

std::optional<SubnetId> SubnetId::parent() const {
  if (path_.empty()) return std::nullopt;
  SubnetId p = *this;
  p.path_.pop_back();
  return p;
}

bool SubnetId::is_prefix_of(const SubnetId& other) const {
  if (path_.size() > other.path_.size()) return false;
  return std::equal(path_.begin(), path_.end(), other.path_.begin());
}

SubnetId SubnetId::common_ancestor(const SubnetId& a, const SubnetId& b) {
  SubnetId out;
  const std::size_t limit = std::min(a.path_.size(), b.path_.size());
  for (std::size_t i = 0; i < limit && a.path_[i] == b.path_[i]; ++i) {
    out.path_.push_back(a.path_[i]);
  }
  return out;
}

SubnetId SubnetId::down_toward(const SubnetId& dest) const {
  assert(is_prefix_of(dest) && *this != dest &&
         "down_toward requires a strict descendant");
  SubnetId next = *this;
  next.path_.push_back(dest.path_[path_.size()]);
  return next;
}

std::string SubnetId::to_string() const {
  std::string out = "/root";
  for (const auto& a : path_) {
    out += "/";
    out += a.to_string();
  }
  return out;
}

void SubnetId::encode_to(Encoder& e) const {
  e.varint(path_.size());
  for (const auto& a : path_) e.obj(a);
}

Result<SubnetId> SubnetId::decode_from(Decoder& d) {
  HC_TRY(count, d.varint());
  if (count > 64) return Error(Errc::kDecodeError, "subnet path too deep");
  SubnetId id;
  for (std::uint64_t i = 0; i < count; ++i) {
    HC_TRY(addr, d.obj<Address>());
    if (!addr.valid()) {
      return Error(Errc::kDecodeError, "invalid address in subnet path");
    }
    id.path_.push_back(addr);
  }
  return id;
}

}  // namespace hc::core
