// Process-wide intern table for hierarchical subnet identities.
//
// Motivation (DESIGN.md §17): at city scale — O(1000) subnets, 4+ level
// trees — subnet ids appear in every cross-msg, checkpoint, gossip topic
// and metric label. Carrying a `std::vector<Address>` path per id copy and
// re-materializing "/root/f0100/..." strings per use makes identity cost
// O(depth) allocations on the hot path. The interner stores each distinct
// path ONCE and hands out a 4-byte handle (`SubnetRef`); every derived
// artifact — the address path, the canonical string, the pubsub topic and
// its per-protocol sub-topics, the SA address, the FNV path hash — is
// computed at intern time and shared by all holders for the process
// lifetime.
//
// The tree is parent-pointer shaped: entry(r).parent is the handle of the
// id one level up, so parent/ancestor/prefix queries walk O(depth) refs
// without touching addresses. Handle VALUES depend on intern order (first
// come, first numbered) and must never leak into anything observable; all
// observable behavior (ordering, hashing, encoding, strings) is derived
// from interned CONTENT, which is order-independent. That is what keeps
// same-seed runs byte-identical at any thread count.
//
// Concurrency: reads (`entry()`, child lookup walks) are lock-free —
// entries live in chunked block storage whose block pointers, published
// size and per-entry child lists are release/acquire atomics, and every
// entry is immutable after publication. Only a miss (interning a NEW path
// element) takes the single mutex.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/address.hpp"

namespace hc::core {

/// Flyweight handle of an interned subnet path. 0 is always "/root".
using SubnetRef = std::uint32_t;
inline constexpr SubnetRef kRootRef = 0;

/// Derived per-subnet pubsub topics, memoized at intern time so a gossip
/// publish never builds a string (paper §IV-C resolution runs on
/// "<topic>/resolve", checkpoint signatures on "<topic>/sigs", ...).
enum class SubnetTopic : std::uint8_t {
  kMsgs = 0,
  kConsensus = 1,
  kSigs = 2,
  kResolve = 3,
};
inline constexpr std::size_t kSubnetTopicCount = 4;

class SubnetInterner {
 public:
  struct Entry {
    SubnetRef parent = kRootRef;
    std::uint32_t depth = 0;
    /// FNV-1a fold over std::hash<Address> of each path element — the
    /// exact value the pre-interning std::hash<SubnetId> computed per
    /// probe. Content-derived, so it is stable across intern order.
    std::size_t path_hash = 0;
    /// SA address governing this subnet in its parent (invalid for root).
    /// This is the canonical interned copy: `SubnetId::actor()` returns a
    /// reference to it instead of copying 48 bytes per call.
    Address actor;
    /// Materialized path, root-to-leaf; length == depth.
    std::vector<Address> path;
    std::string str;    // "/root/f0100/f0102"
    std::string topic;  // "hc" + str
    std::array<std::string, kSubnetTopicCount> sub_topics;

   private:
    friend class SubnetInterner;
    struct ChildLink {
      Address sa;
      SubnetRef ref;
      ChildLink* next;  // immutable after publication
    };
    /// Head of this entry's child list. Appended under the interner mutex,
    /// walked lock-free (store-release pairs with load-acquire).
    std::atomic<ChildLink*> children{nullptr};
  };

  /// The one process-wide table. Function-local static: constructed on
  /// first use, destroyed at exit (leak-sanitizer clean).
  static SubnetInterner& instance();

  SubnetInterner(const SubnetInterner&) = delete;
  SubnetInterner& operator=(const SubnetInterner&) = delete;

  /// Handle of `parent`'s child governed by SA `sa`, interning it on first
  /// sight. Lock-free on the (overwhelmingly common) hit path.
  SubnetRef child_of(SubnetRef parent, const Address& sa);

  /// Intern a full root-to-leaf path (decode path).
  SubnetRef intern_path(const std::vector<Address>& path);

  /// Lock-free entry access. `r` must come from this table.
  [[nodiscard]] const Entry& entry(SubnetRef r) const {
    const Block* b = blocks_[r >> kBlockBits].load(std::memory_order_acquire);
    return b->entries[r & (kBlockSize - 1)];
  }

  /// Distinct paths interned so far (>= 1: root). The chaos growth test
  /// asserts this stays bounded by the set of subnets a run ever names.
  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_acquire);
  }

  /// Deterministic footprint estimate: logical sizes only (never
  /// allocator-dependent capacities), so two same-seed runs report the
  /// same number. Drained into the city-scale bench's bytes accounting.
  [[nodiscard]] std::size_t approx_bytes() const;

 private:
  SubnetInterner();
  ~SubnetInterner();

  [[nodiscard]] Entry& entry_mut(SubnetRef r) {
    Block* b = blocks_[r >> kBlockBits].load(std::memory_order_acquire);
    return b->entries[r & (kBlockSize - 1)];
  }

  static constexpr std::size_t kBlockBits = 10;
  static constexpr std::size_t kBlockSize = 1 << kBlockBits;  // entries/block
  static constexpr std::size_t kMaxBlocks = 1024;             // 2^20 entries

  struct Block {
    std::array<Entry, kBlockSize> entries;
  };

  std::mutex mutex_;  // guards inserts only
  std::atomic<std::uint32_t> size_{0};
  std::array<std::atomic<Block*>, kMaxBlocks> blocks_{};
};

}  // namespace hc::core
