#include "core/params.hpp"

namespace hc::core {

std::string_view consensus_name(ConsensusType t) {
  switch (t) {
    case ConsensusType::kPoaRoundRobin: return "poa-round-robin";
    case ConsensusType::kPowerLottery: return "power-lottery";
    case ConsensusType::kTendermint: return "tendermint";
    case ConsensusType::kRoundRobinBft: return "round-robin-bft";
  }
  return "unknown";
}

void SubnetParams::encode_to(Encoder& e) const {
  e.str(name).u8(static_cast<std::uint8_t>(consensus));
  e.obj(min_validator_stake).obj(min_collateral);
  e.u32(checkpoint_period).obj(checkpoint_policy);
}

Result<SubnetParams> SubnetParams::decode_from(Decoder& d) {
  SubnetParams p;
  HC_TRY(name, d.str());
  HC_TRY(consensus, d.u8());
  if (consensus > 3) return Error(Errc::kDecodeError, "bad consensus type");
  HC_TRY(stake, d.obj<TokenAmount>());
  HC_TRY(collateral, d.obj<TokenAmount>());
  HC_TRY(period, d.u32());
  HC_TRY(policy, d.obj<SignaturePolicy>());
  p.name = std::move(name);
  p.consensus = static_cast<ConsensusType>(consensus);
  p.min_validator_stake = stake;
  p.min_collateral = collateral;
  p.checkpoint_period = period;
  p.checkpoint_policy = policy;
  return p;
}

}  // namespace hc::core
