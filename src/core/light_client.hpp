// Light-client verification of a subnet's checkpoint chain.
//
// Paper §II: checkpoints "should include enough information that any client
// receiving it is able to verify the correctness of the subnet consensus"
// — light clients are nodes "that do not synchronize and retain a full copy
// of the blockchain". A LightClient holds only the subnet's registration
// facts (validator keys, signature policy, checkpoint period — all readable
// from the parent chain's SA) and verifies checkpoints as they arrive:
// prev-linkage, epoch progression/alignment, and the policy proof. It can
// then answer whether a given cross-msg batch CID was committed — exactly
// what a user needs to trust an incoming bottom-up payment without running
// the source subnet.
#pragma once

#include <set>

#include "core/checkpoint.hpp"
#include "core/policy.hpp"

namespace hc::core {

class LightClient {
 public:
  LightClient(SubnetId subnet, SignaturePolicy policy,
              std::vector<crypto::PublicKey> validators,
              std::uint32_t checkpoint_period);

  /// Verify `sc` as the next checkpoint of the tracked subnet and accept
  /// it. Rejections leave the client state unchanged.
  [[nodiscard]] Status advance(const SignedCheckpoint& sc);

  /// Update the validator set (after observing SA membership changes on
  /// the parent chain).
  void set_validators(std::vector<crypto::PublicKey> validators) {
    validators_ = std::move(validators);
  }

  /// True when an accepted checkpoint committed this cross-msg batch.
  [[nodiscard]] bool batch_committed(const Cid& msgs_cid) const {
    return committed_batches_.contains(msgs_cid);
  }
  /// True when this checkpoint CID is part of the accepted chain.
  [[nodiscard]] bool checkpoint_accepted(const Cid& cid) const {
    return accepted_.contains(cid);
  }

  [[nodiscard]] chain::Epoch latest_epoch() const { return latest_epoch_; }
  [[nodiscard]] const Cid& latest_cid() const { return latest_cid_; }
  [[nodiscard]] std::size_t accepted_count() const {
    return accepted_.size();
  }

 private:
  SubnetId subnet_;
  SignaturePolicy policy_;
  std::vector<crypto::PublicKey> validators_;
  std::uint32_t period_;
  chain::Epoch latest_epoch_ = -1;
  Cid latest_cid_;
  std::set<Cid> accepted_;
  std::set<Cid> committed_batches_;
};

}  // namespace hc::core
