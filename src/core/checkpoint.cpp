#include "crypto/sigcache.hpp"
#include "core/checkpoint.hpp"

namespace hc::core {

void ChildCheck::encode_to(Encoder& e) const {
  e.obj(subnet).vec(checkpoints);
}

Result<ChildCheck> ChildCheck::decode_from(Decoder& d) {
  ChildCheck c;
  HC_TRY(subnet, d.obj<SubnetId>());
  HC_TRY(cids, d.vec<Cid>());
  c.subnet = std::move(subnet);
  c.checkpoints = std::move(cids);
  return c;
}

void Checkpoint::encode_to(Encoder& e) const {
  e.obj(source).i64(epoch).obj(proof).obj(prev).vec(children).vec(cross_meta);
}

Result<Checkpoint> Checkpoint::decode_from(Decoder& d) {
  Checkpoint c;
  HC_TRY(source, d.obj<SubnetId>());
  HC_TRY(epoch, d.i64());
  HC_TRY(proof, d.obj<Cid>());
  HC_TRY(prev, d.obj<Cid>());
  HC_TRY(children, d.vec<ChildCheck>());
  HC_TRY(meta, d.vec<CrossMsgMeta>());
  c.source = std::move(source);
  c.epoch = epoch;
  c.proof = proof;
  c.prev = prev;
  c.children = std::move(children);
  c.cross_meta = std::move(meta);
  return c;
}

Cid Checkpoint::cid() const {
  return Cid::of(CidCodec::kCheckpoint, encode(*this));
}

TokenAmount Checkpoint::outgoing_value() const {
  TokenAmount total;
  for (const auto& m : cross_meta) {
    if (m.from == source) total += m.value;
  }
  return total;
}

Bytes SignedCheckpoint::signing_payload(const Checkpoint& cp) {
  return signing_payload_for(cp.cid());
}

Bytes SignedCheckpoint::signing_payload_for(const Cid& cid) {
  Bytes payload = to_bytes("hc/checkpoint-sig");
  append(payload, BytesView(cid.digest().data(), cid.digest().size()));
  return payload;
}

void SignedCheckpoint::add_signature(const crypto::KeyPair& key) {
  const Bytes payload = signing_payload(checkpoint);
  signatures.push_back(
      CheckpointSignature{key.public_key(), key.sign(payload)});
}

bool SignedCheckpoint::signatures_valid() const {
  const Bytes payload = signing_payload(checkpoint);
  for (const auto& s : signatures) {
    if (!crypto::verify_cached(s.signer, payload, s.signature)) return false;
  }
  return true;
}

void SignedCheckpoint::encode_to(Encoder& e) const {
  e.obj(checkpoint).vec(signatures);
}

Result<SignedCheckpoint> SignedCheckpoint::decode_from(Decoder& d) {
  SignedCheckpoint sc;
  HC_TRY(cp, d.obj<Checkpoint>());
  HC_TRY(sigs, d.vec<CheckpointSignature>());
  sc.checkpoint = std::move(cp);
  sc.signatures = std::move(sigs);
  return sc;
}

}  // namespace hc::core
