#include "core/fraud.hpp"

#include <algorithm>

namespace hc::core {

Result<std::vector<crypto::PublicKey>> FraudProof::guilty_signers() const {
  const Checkpoint& a = first.checkpoint;
  const Checkpoint& b = second.checkpoint;
  if (a.source != b.source) {
    return Error(Errc::kInvalidArgument,
                 "checkpoints target different subnets");
  }
  if (a.epoch != b.epoch) {
    return Error(Errc::kInvalidArgument,
                 "checkpoints target different epochs");
  }
  if (a.cid() == b.cid()) {
    return Error(Errc::kInvalidArgument,
                 "checkpoints are identical: no equivocation");
  }
  if (!first.signatures_valid() || !second.signatures_valid()) {
    return Error(Errc::kInvalidSignature, "fraud proof carries bad signatures");
  }
  std::vector<crypto::PublicKey> guilty;
  for (const auto& sa : first.signatures) {
    const bool also_in_second =
        std::any_of(second.signatures.begin(), second.signatures.end(),
                    [&](const CheckpointSignature& sb) {
                      return sb.signer == sa.signer;
                    });
    if (also_in_second) guilty.push_back(sa.signer);
  }
  if (guilty.empty()) {
    return Error(Errc::kInvalidArgument,
                 "no overlapping signer: not attributable equivocation");
  }
  return guilty;
}

Cid FraudProof::digest() const {
  const Bytes a = encode(first);
  const Bytes b = encode(second);
  Encoder e;
  if (b < a) {
    e.bytes(b).bytes(a);
  } else {
    e.bytes(a).bytes(b);
  }
  return Cid::of(CidCodec::kRaw, e.data());
}

}  // namespace hc::core
