#include "core/crossmsg.hpp"

namespace hc::core {

CrossMsgKind CrossMsg::kind() const {
  if (from_subnet.is_prefix_of(to_subnet)) return CrossMsgKind::kTopDown;
  if (to_subnet.is_prefix_of(from_subnet)) return CrossMsgKind::kBottomUp;
  return CrossMsgKind::kPath;
}

void CrossMsg::encode_to(Encoder& e) const {
  e.obj(from_subnet).obj(to_subnet).obj(msg).varint(nonce);
}

Result<CrossMsg> CrossMsg::decode_from(Decoder& d) {
  CrossMsg c;
  HC_TRY(from, d.obj<SubnetId>());
  HC_TRY(to, d.obj<SubnetId>());
  HC_TRY(msg, d.obj<chain::Message>());
  HC_TRY(nonce, d.varint());
  c.from_subnet = std::move(from);
  c.to_subnet = std::move(to);
  c.msg = std::move(msg);
  c.nonce = nonce;
  return c;
}

Cid CrossMsg::cid() const {
  return Cid::of(CidCodec::kCrossMsgs, encode(*this));
}

TokenAmount CrossMsgBatch::total_value() const {
  TokenAmount total;
  for (const auto& m : msgs) total += m.msg.value;
  return total;
}

void CrossMsgMeta::encode_to(Encoder& e) const {
  e.obj(from).obj(to).varint(nonce).obj(msgs_cid).u32(msg_count).obj(value);
}

Result<CrossMsgMeta> CrossMsgMeta::decode_from(Decoder& d) {
  CrossMsgMeta m;
  HC_TRY(from, d.obj<SubnetId>());
  HC_TRY(to, d.obj<SubnetId>());
  HC_TRY(nonce, d.varint());
  HC_TRY(cid, d.obj<Cid>());
  HC_TRY(count, d.u32());
  HC_TRY(value, d.obj<TokenAmount>());
  m.from = std::move(from);
  m.to = std::move(to);
  m.nonce = nonce;
  m.msgs_cid = cid;
  m.msg_count = count;
  m.value = value;
  return m;
}

}  // namespace hc::core
