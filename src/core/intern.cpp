#include "core/intern.hpp"

#include <cassert>
#include <stdexcept>

namespace hc::core {

SubnetInterner& SubnetInterner::instance() {
  static SubnetInterner interner;
  return interner;
}

SubnetInterner::SubnetInterner() {
  // Entry 0 is always "/root": the empty path, hashed to the FNV offset
  // basis (the value the path-walking hash produced for an empty path).
  auto* block = new Block();
  Entry& root = block->entries[0];
  root.parent = kRootRef;
  root.depth = 0;
  root.path_hash = 0xcbf29ce484222325ull;
  root.str = "/root";
  root.topic = "hc/root";
  root.sub_topics = {root.topic + "/msgs", root.topic + "/consensus",
                     root.topic + "/sigs", root.topic + "/resolve"};
  blocks_[0].store(block, std::memory_order_release);
  size_.store(1, std::memory_order_release);
}

SubnetInterner::~SubnetInterner() {
  const std::uint32_t n = size_.load(std::memory_order_acquire);
  for (std::uint32_t r = 0; r < n; ++r) {
    Block* b = blocks_[r >> kBlockBits].load(std::memory_order_acquire);
    Entry::ChildLink* link =
        b->entries[r & (kBlockSize - 1)].children.load(
            std::memory_order_acquire);
    while (link != nullptr) {
      Entry::ChildLink* next = link->next;
      delete link;
      link = next;
    }
  }
  for (auto& slot : blocks_) {
    delete slot.load(std::memory_order_acquire);
  }
}

SubnetRef SubnetInterner::child_of(SubnetRef parent, const Address& sa) {
  assert(sa.valid() && "child subnet requires a valid SA address");
  Entry& p = entry_mut(parent);
  // Fast path: the child is already interned. The list is append-only and
  // links are immutable once published, so the walk needs no lock.
  for (const Entry::ChildLink* l =
           p.children.load(std::memory_order_acquire);
       l != nullptr; l = l->next) {
    if (l->sa == sa) return l->ref;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  // Re-check: another thread may have interned it since the lock-free scan.
  for (const Entry::ChildLink* l =
           p.children.load(std::memory_order_relaxed);
       l != nullptr; l = l->next) {
    if (l->sa == sa) return l->ref;
  }

  const std::uint32_t ref = size_.load(std::memory_order_relaxed);
  if (ref >= kBlockSize * kMaxBlocks) {
    throw std::length_error("subnet intern table full");
  }
  Block* block = blocks_[ref >> kBlockBits].load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new Block();
    blocks_[ref >> kBlockBits].store(block, std::memory_order_release);
  }
  Entry& e = block->entries[ref & (kBlockSize - 1)];
  e.parent = parent;
  e.depth = p.depth + 1;
  e.actor = sa;
  e.path = p.path;
  e.path.push_back(sa);
  // Incremental FNV-1a step: folding one more element onto the parent's
  // fold reproduces the full-path walk exactly.
  e.path_hash =
      (p.path_hash ^ std::hash<Address>{}(sa)) * 0x100000001b3ull;
  e.str = p.str + "/" + sa.to_string();
  e.topic = "hc" + e.str;
  e.sub_topics = {e.topic + "/msgs", e.topic + "/consensus",
                  e.topic + "/sigs", e.topic + "/resolve"};
  // Publish: size first (entry fields are complete), then the child link
  // that makes the ref discoverable by lock-free readers.
  size_.store(ref + 1, std::memory_order_release);
  auto* link = new Entry::ChildLink{
      sa, ref, p.children.load(std::memory_order_relaxed)};
  p.children.store(link, std::memory_order_release);
  return ref;
}

SubnetRef SubnetInterner::intern_path(const std::vector<Address>& path) {
  SubnetRef r = kRootRef;
  for (const Address& sa : path) r = child_of(r, sa);
  return r;
}

std::size_t SubnetInterner::approx_bytes() const {
  const std::uint32_t n = size_.load(std::memory_order_acquire);
  std::size_t total = 0;
  for (std::uint32_t r = 0; r < n; ++r) {
    const Entry& e = entry(r);
    total += sizeof(Entry) + e.path.size() * sizeof(Address) + e.str.size() +
             e.topic.size() + sizeof(Entry::ChildLink);
    for (const auto& t : e.sub_topics) total += t.size();
  }
  return total;
}

}  // namespace hc::core
