#include "runtime/atomic.hpp"

#include "actors/basic.hpp"
#include "actors/methods.hpp"

namespace hc::runtime {

AtomicExecution::AtomicExecution(Hierarchy& hierarchy, Subnet& coordinator,
                                 std::vector<AtomicPartySpec> parties,
                                 ComputeFn compute)
    : hierarchy_(hierarchy),
      coordinator_(coordinator),
      parties_(std::move(parties)),
      compute_(std::move(compute)) {}

Status AtomicExecution::lock_inputs() {
  inputs_.clear();
  input_cids_.clear();
  for (auto& party : parties_) {
    actors::KvParams p{party.key, {}};
    HC_TRY(receipt, hierarchy_.call(*party.home, party.user, party.app,
                                    actors::kv_method::kLock, encode(p),
                                    TokenAmount()));
    if (!receipt.ok()) {
      return Error(Errc::kStateConflict, "input lock failed: " + receipt.error);
    }
    // kLock returns the locked input value: this is the state the party
    // ships to its peers.
    inputs_.push_back(receipt.ret);
    input_cids_.push_back(Cid::of(CidCodec::kActorState, receipt.ret));
  }
  return ok_status();
}

Result<Cid> AtomicExecution::compute_output() {
  if (inputs_.size() != parties_.size()) {
    return Error(Errc::kStateConflict, "inputs not locked yet");
  }
  // The off-chain exchange (paper Fig. 5 "collect the pending inputs from
  // other subnets"): in this client all parties are driven by the same
  // process, so the exchange is the identity; the content-addressed input
  // CIDs recorded at init() are what makes forged inputs detectable.
  outputs_ = compute_(inputs_);
  if (outputs_.size() != parties_.size()) {
    return Error(Errc::kInvalidArgument,
                 "compute function returned wrong arity");
  }
  Encoder e;
  e.varint(outputs_.size());
  for (const auto& o : outputs_) e.bytes(o);
  output_cid_ = Cid::of(CidCodec::kActorState, e.data());
  return output_cid_;
}

Result<chain::Receipt> AtomicExecution::send_to_coordinator(
    std::size_t index, chain::MethodNum method, Bytes params) {
  AtomicPartySpec& party = parties_.at(index);
  if (party.home == &coordinator_) {
    return hierarchy_.call(coordinator_, party.user, chain::kScaAddr, method,
                           std::move(params), TokenAmount());
  }
  return hierarchy_.send_cross(*party.home, party.user, coordinator_.id,
                               chain::kScaAddr, TokenAmount(), method,
                               std::move(params));
}

Result<std::uint64_t> AtomicExecution::init(sim::Duration timeout) {
  actors::AtomicInitParams p;
  for (const auto& party : parties_) {
    p.parties.push_back(
        actors::AtomicParty{party.home->id, party.user.addr});
  }
  p.input_cids = input_cids_;
  const std::uint64_t before = coordinator_.node(0).sca_state().next_exec_id;
  HC_TRY(receipt, send_to_coordinator(0, actors::sca_method::kAtomicInit,
                                      encode(p)));
  if (!receipt.ok()) {
    return Error(Errc::kInternal, "atomic init failed: " + receipt.error);
  }
  // Cross-net inits land asynchronously: wait for the exec to appear.
  const bool appeared = hierarchy_.run_until(
      [&] {
        return coordinator_.node(0).sca_state().next_exec_id > before;
      },
      timeout);
  if (!appeared) {
    return Error(Errc::kTimeout, "atomic execution did not start");
  }
  // Ours is the exec created with id == before (ids are sequential).
  exec_id_ = before;
  return exec_id_;
}

Status AtomicExecution::submit(std::size_t index) {
  actors::AtomicSubmitParams p{exec_id_, output_cid_};
  HC_TRY(receipt, send_to_coordinator(index, actors::sca_method::kAtomicSubmit,
                                      encode(p)));
  if (!receipt.ok()) {
    return Error(Errc::kInternal, "submit failed: " + receipt.error);
  }
  return ok_status();
}

Status AtomicExecution::abort(std::size_t index) {
  actors::AtomicAbortParams p{exec_id_};
  HC_TRY(receipt, send_to_coordinator(index, actors::sca_method::kAtomicAbort,
                                      encode(p)));
  if (!receipt.ok()) {
    return Error(Errc::kInternal, "abort failed: " + receipt.error);
  }
  return ok_status();
}

Result<actors::AtomicStatus> AtomicExecution::await_decision(
    sim::Duration timeout) {
  actors::AtomicStatus status = actors::AtomicStatus::kPending;
  const bool decided = hierarchy_.run_until(
      [&] {
        const auto sca = coordinator_.node(0).sca_state();
        auto it = sca.atomic_execs.find(exec_id_);
        if (it == sca.atomic_execs.end()) return false;
        status = it->second.status;
        return status != actors::AtomicStatus::kPending;
      },
      timeout);
  if (!decided) {
    return Error(Errc::kTimeout, "coordinator did not decide in time");
  }
  return status;
}

Status AtomicExecution::finalize(actors::AtomicStatus decision) {
  for (std::size_t i = 0; i < parties_.size(); ++i) {
    AtomicPartySpec& party = parties_[i];
    if (decision == actors::AtomicStatus::kCommitted) {
      actors::KvParams p{party.key, outputs_.at(i)};
      HC_TRY(receipt, hierarchy_.call(*party.home, party.user, party.app,
                                      actors::kv_method::kApplyOutput,
                                      encode(p), TokenAmount()));
      if (!receipt.ok()) {
        return Error(Errc::kInternal, "apply-output failed: " + receipt.error);
      }
    } else {
      actors::KvParams p{party.key, {}};
      HC_TRY(receipt, hierarchy_.call(*party.home, party.user, party.app,
                                      actors::kv_method::kUnlock, encode(p),
                                      TokenAmount()));
      if (!receipt.ok()) {
        return Error(Errc::kInternal, "unlock failed: " + receipt.error);
      }
    }
  }
  return ok_status();
}

Result<actors::AtomicStatus> AtomicExecution::run() {
  HC_TRY_STATUS(lock_inputs());
  HC_TRY(cid, compute_output());
  (void)cid;
  HC_TRY(id, init());
  (void)id;
  for (std::size_t i = 0; i < parties_.size(); ++i) {
    HC_TRY_STATUS(submit(i));
  }
  HC_TRY(decision, await_decision());
  HC_TRY_STATUS(finalize(decision));
  return decision;
}

}  // namespace hc::runtime
