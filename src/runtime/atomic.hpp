// Client-side orchestration of cross-net atomic executions (paper §IV-D,
// Fig. 5).
//
// The protocol is a 2PC with the SCA of an agreed coordinator subnet
// (generally the least common ancestor) as coordinator:
//   1. every party locks its input state in its own subnet (KV actor lock),
//   2. parties exchange the locked inputs off-chain (modeled over the
//      content-resolution pubsub),
//   3. each party computes the common output state locally,
//   4. each party submits the output CID to the coordinator SCA
//      (cross-net when the party lives in another subnet),
//   5. the SCA commits when all outputs match — or aborts on mismatch or
//      an explicit ABORT — and notifies party subnets via cross-msgs,
//   6. parties apply the output (or unlock unchanged) in their subnets.
//
// AtomicExecution drives steps 1-6 for KV-actor state; each step is a
// separate method so examples can narrate and tests can interleave faults.
#pragma once

#include "runtime/hierarchy.hpp"

namespace hc::runtime {

/// One party of an atomic execution.
struct AtomicPartySpec {
  Subnet* home = nullptr;
  User user;
  Address app;  // KV actor address in `home`
  Bytes key;    // the KV key contributed as input state
};

class AtomicExecution {
 public:
  /// `compute` maps the vector of locked input values (party order) to the
  /// per-party output values; it must be deterministic — every party runs
  /// it locally and the SCA only commits when the resulting output states
  /// coincide (Fig. 5 "checks if they all match").
  using ComputeFn =
      std::function<std::vector<Bytes>(const std::vector<Bytes>&)>;

  AtomicExecution(Hierarchy& hierarchy, Subnet& coordinator,
                  std::vector<AtomicPartySpec> parties, ComputeFn compute);

  /// Step 1: lock every party's input; records the input values and CIDs.
  Status lock_inputs();

  /// Steps 2-3: exchange inputs (off-chain) and compute the output state.
  /// Returns the common output CID.
  Result<Cid> compute_output();

  /// Step 4a: initiator starts the execution at the coordinator SCA.
  /// Returns the execution id.
  Result<std::uint64_t> init(sim::Duration timeout = 120 * sim::kSecond);

  /// Step 4b: party `index` submits the output CID to the coordinator.
  Status submit(std::size_t index);

  /// A party aborts instead of submitting (Fig. 5 "at any point").
  Status abort(std::size_t index);

  /// Step 5: wait for the coordinator's decision.
  Result<actors::AtomicStatus> await_decision(
      sim::Duration timeout = 180 * sim::kSecond);

  /// Step 6: apply outputs (commit) or unlock inputs (abort) everywhere.
  Status finalize(actors::AtomicStatus decision);

  /// Convenience: run the whole happy path.
  Result<actors::AtomicStatus> run();

  [[nodiscard]] std::uint64_t exec_id() const { return exec_id_; }
  [[nodiscard]] const std::vector<Bytes>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<Bytes>& outputs() const { return outputs_; }

 private:
  /// Send an SCA atomic method from party `index` — directly when the
  /// party lives in the coordinator subnet, cross-net otherwise.
  Result<chain::Receipt> send_to_coordinator(std::size_t index,
                                             chain::MethodNum method,
                                             Bytes params);

  Hierarchy& hierarchy_;
  Subnet& coordinator_;
  std::vector<AtomicPartySpec> parties_;
  ComputeFn compute_;
  std::vector<Bytes> inputs_;
  std::vector<Cid> input_cids_;
  std::vector<Bytes> outputs_;
  Cid output_cid_;
  std::uint64_t exec_id_ = 0;
};

}  // namespace hc::runtime
