#include "runtime/watcher.hpp"

namespace hc::runtime {

namespace {

Bytes cid_key(const Cid& cid) {
  return Bytes(cid.digest().begin(), cid.digest().end());
}

}  // namespace

const char* to_string(ByzantineBehavior b) {
  switch (b) {
    case ByzantineBehavior::kNone:
      return "none";
    case ByzantineBehavior::kEquivocate:
      return "equivocate";
    case ByzantineBehavior::kWithhold:
      return "withhold";
    case ByzantineBehavior::kForgeMeta:
      return "forge-meta";
    case ByzantineBehavior::kStaleResubmit:
      return "stale-resubmit";
  }
  return "unknown";
}

bool CheckpointWatcher::reserve_epoch(chain::Epoch epoch) {
  if (max_epochs_ == 0 || evidence_.contains(epoch)) return true;
  while (evidence_.size() >= max_epochs_) {
    auto oldest = evidence_.begin();
    if (oldest->first >= epoch) {
      // The arrival is older than everything retained: shed it rather
      // than displacing fresher evidence.
      ++evidence_evicted_;
      return false;
    }
    evidence_.erase(oldest);
    ++evidence_evicted_;
  }
  return true;
}

std::vector<core::FraudProof> CheckpointWatcher::record_checkpoint(
    const core::Checkpoint& cp) {
  if (!reserve_epoch(cp.epoch)) return {};
  auto& ev = evidence_[cp.epoch];
  const Bytes key = cid_key(cp.cid());
  if (ev.contents.contains(key)) return {};
  ev.contents.emplace(key, cp);
  return try_assemble(cp.epoch);
}

std::vector<core::FraudProof> CheckpointWatcher::record_share(
    chain::Epoch epoch, const Cid& cid, const crypto::PublicKey& signer,
    const crypto::Signature& signature) {
  if (!reserve_epoch(epoch)) return {};
  auto& ev = evidence_[epoch];
  ev.sigs[cid_key(cid)][signer.to_bytes()] =
      core::CheckpointSignature{signer, signature};
  return try_assemble(epoch);
}

std::vector<core::FraudProof> CheckpointWatcher::try_assemble(
    chain::Epoch epoch) {
  auto ev_it = evidence_.find(epoch);
  if (ev_it == evidence_.end()) return {};
  EpochEvidence& ev = ev_it->second;

  std::vector<core::FraudProof> proofs;
  // Ordered maps make the pair scan — and thus proof content — fully
  // deterministic across replicas observing the same evidence.
  for (auto a = ev.sigs.begin(); a != ev.sigs.end(); ++a) {
    auto b = a;
    for (++b; b != ev.sigs.end(); ++b) {
      auto ca = ev.contents.find(a->first);
      auto cb = ev.contents.find(b->first);
      if (ca == ev.contents.end() || cb == ev.contents.end()) continue;
      std::vector<Bytes> guilty;
      for (const auto& [signer_bytes, sig] : a->second) {
        if (!b->second.contains(signer_bytes)) continue;
        if (reported_.contains({epoch, signer_bytes})) continue;
        guilty.push_back(signer_bytes);
      }
      if (guilty.empty()) continue;
      core::FraudProof proof;
      proof.first.checkpoint = ca->second;
      proof.second.checkpoint = cb->second;
      for (const Bytes& g : guilty) {
        proof.first.signatures.push_back(a->second.at(g));
        proof.second.signatures.push_back(b->second.at(g));
        reported_.insert({epoch, g});
      }
      proofs.push_back(std::move(proof));
    }
  }
  return proofs;
}

void CheckpointWatcher::prune_below(chain::Epoch epoch) {
  evidence_.erase(evidence_.begin(), evidence_.lower_bound(epoch));
  reported_.erase(reported_.begin(),
                  reported_.lower_bound({epoch, Bytes{}}));
}

}  // namespace hc::runtime
