// SubnetNode: a full node / validator of one subnet.
//
// Owns the subnet's chain, state, mempool and cross-msg pool; runs the
// subnet's chosen consensus engine; performs checkpointing duty (cut, sign,
// submit to the parent SA); serves and consumes the content-resolution
// protocol; and — per paper §II ("child subnet nodes also run full nodes on
// the parent subnet") — holds a trusted read view of a parent node, which
// the cross-msg pool polls for committed top-down messages.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "actors/sca_actor.hpp"
#include "actors/subnet_actor.hpp"
#include "chain/chainstore.hpp"
#include "chain/executor.hpp"
#include "chain/mempool.hpp"
#include "consensus/engine.hpp"
#include "core/params.hpp"
#include "runtime/resolution.hpp"
#include "runtime/watcher.hpp"
#include "storage/durable.hpp"
#include "storage/store.hpp"
#include "storage/wal.hpp"

namespace hc::runtime {

struct NodeConfig {
  core::SubnetId subnet;
  core::SubnetParams params;
  consensus::EngineConfig engine;
  std::size_t max_user_msgs_per_block = 500;
  std::size_t max_cross_msgs_per_block = 200;
  /// Mempool caps (DESIGN.md §14). Defaults enforce only the nonce-gap
  /// admission window; benches and chaos runs tighten the totals.
  chain::MempoolConfig mempool;
  /// Cap on the resolved cross-msg content cache (DESIGN.md §14): evicted
  /// batches are re-fetchable through the resolution protocol, so the
  /// store degrades to a bounded cache. 0 fields = unbounded.
  common::CapacityPolicy content_store;
  /// Max distinct epochs of checkpoint-signature evidence the fraud
  /// watcher retains (0 = unbounded; see CheckpointWatcher).
  std::size_t watcher_max_epochs = 64;
  /// Push batches to destination subnets when checkpoints are cut
  /// (paper §IV-C push approach). Pull always remains available.
  bool push_resolution = true;
  /// Address of this subnet's SA in the parent chain (invalid for root).
  Address sa_in_parent;
  /// Re-wire an existing network id instead of registering a fresh one.
  /// Set by Hierarchy::restart_node: a restarted validator keeps its
  /// transport identity (and metric labels) across the crash.
  std::optional<net::NodeId> reuse_net_id;
  /// Scheduler execution domain (lane) this node's events run in; 0 is
  /// the root/global lane. Hierarchy assigns one domain per subnet so the
  /// ParallelExecutor can run subnets concurrently (DESIGN.md §11).
  sim::DomainId domain = 0;
  /// Simulated durable medium for this validator (DESIGN.md §15). Owned by
  /// the Hierarchy so it survives crash_node/restart_node; nullptr runs the
  /// node fully volatile (the pre-durability behavior, still the default).
  storage::DurableStore* disk = nullptr;
  /// Commit WAL records are fsynced every N blocks (lazy batching); vote
  /// state is ALWAYS fsynced before the signed message leaves the node.
  std::uint32_t wal_fsync_every_blocks = 4;
  /// Bounded chain retention (DESIGN.md §17): keep only the newest blocks
  /// under this cap, pruning history. Catch-up and state_at replay need
  /// the pruned blocks, so bound only with a window comfortably beyond
  /// replica lag. 0 fields = unbounded (full history, the default).
  common::CapacityPolicy chain_retention;
  /// Export node_mem_bytes / node_mem_peak_bytes gauges (DESIGN.md §17).
  /// Off by default so existing metric exports stay byte-identical.
  bool mem_metrics = false;
};

/// Counter snapshot exposed for benches and tests; backed by the metrics
/// registry (families node_* labeled {node, subnet}) and assembled on read.
struct NodeStats {
  std::uint64_t blocks_committed = 0;
  std::uint64_t user_msgs_executed = 0;
  std::uint64_t cross_msgs_executed = 0;
  std::uint64_t checkpoints_cut = 0;
  std::uint64_t checkpoints_submitted = 0;
  std::uint64_t pulls_sent = 0;
  std::uint64_t pushes_sent = 0;
  std::uint64_t resolves_served = 0;
  /// Mempool admissions refused with kOverloaded (all shed reasons).
  std::uint64_t mempool_shed = 0;
  /// Residents displaced by higher-priority arrivals.
  std::uint64_t mempool_evicted = 0;
};

class SubnetNode final : public consensus::BlockSource,
                         public consensus::VoteStore {
 public:
  /// `genesis_state` is shared immutable (DESIGN.md §17): every replica
  /// of a subnet points at the same flushed tree; the node copies it once
  /// into its mutable head state. Callers sharing one tree must flush it
  /// before sharing and boot nodes from driver context.
  SubnetNode(sim::Scheduler& scheduler, net::Network& network,
             const chain::ActorRegistry& registry, NodeConfig config,
             crypto::KeyPair key, consensus::ValidatorSet validators,
             std::shared_ptr<const chain::StateTree> genesis_state);
  ~SubnetNode() override;

  SubnetNode(const SubnetNode&) = delete;
  SubnetNode& operator=(const SubnetNode&) = delete;

  /// Wire the trusted parent view (must outlive this node; may be nullptr
  /// while every parent replica is crashed). Root: none. Maintains the
  /// parent's viewer count — snapshots are only materialized on nodes
  /// that actually have child readers (DESIGN.md §17). Driver context
  /// only (lanes parked): may publish a view on the new parent.
  void attach_parent(SubnetNode* parent);
  [[nodiscard]] SubnetNode* parent_view() const { return parent_; }

  void start();
  void stop();

  // ----------------------------------------------------------- client API
  /// Inject a signed message locally and gossip it to the subnet.
  Status submit_message(chain::SignedMessage msg);

  /// Schedule `fn` onto this node's scheduler lane after `delay` (0 = next
  /// window at the current time). Client-side work posted this way — load
  /// generators signing and submitting transactions — executes inside the
  /// subnet's domain, so it runs in parallel with other subnets under the
  /// ParallelExecutor and stays deterministic at any thread count. Call
  /// from driver context only (between run_for/run_until slices).
  void post(sim::Duration delay, std::function<void()> fn);

  [[nodiscard]] const chain::ChainStore& chain() const { return *store_; }
  [[nodiscard]] const chain::StateTree& state() const {
    return store_->state();
  }
  [[nodiscard]] TokenAmount balance(const Address& addr) const;
  /// Account nonce for building messages.
  [[nodiscard]] std::uint64_t account_nonce(const Address& addr) const;
  /// Decoded SCA state of this subnet chain.
  [[nodiscard]] actors::ScaState sca_state() const;
  /// Decoded SA state of a child subnet (SA lives on THIS chain).
  [[nodiscard]] std::optional<actors::SaState> sa_state(
      const Address& sa) const;

  // ------------------------------------------------- parent view snapshot
  // Child nodes run in a different scheduler lane than their parent; they
  // must read the parent through the snapshot published at the last window
  // barrier, never through the live accessors above (DESIGN.md §11). While
  // no snapshot has been published (raw single-lane usage without a
  // Hierarchy), these fall back to live state.
  [[nodiscard]] std::uint64_t account_nonce_view(const Address& addr) const;
  [[nodiscard]] actors::ScaState sca_state_view() const;
  [[nodiscard]] std::optional<actors::SaState> sa_state_view(
      const Address& sa) const;

  /// Flip the pending state snapshot into the published parent view.
  /// Called by Hierarchy between execution windows (never concurrently
  /// with lane callbacks). Viewer-gated (DESIGN.md §17): a node with no
  /// attached child readers skips the snapshot entirely — at city scale
  /// ~90% of subnets are leaves, so their per-window full-state copy
  /// vanishes. Readers in driver context fall back to live state, which
  /// post-barrier equals what the snapshot would hold.
  void publish_view();

  /// Nodes currently reading this node as their trusted parent view.
  [[nodiscard]] std::size_t viewer_count() const {
    return static_cast<std::size_t>(viewers_);
  }

  /// Deterministic logical memory footprint of this replica: chain window
  /// + head state + resolved-content cache + view buffers. The shared
  /// genesis tree is excluded (counted once per subnet, not per replica).
  [[nodiscard]] std::size_t mem_bytes() const;

  [[nodiscard]] NodeStats stats() const;
  [[nodiscard]] const core::SubnetId& subnet() const {
    return config_.subnet;
  }
  [[nodiscard]] net::NodeId net_id() const { return net_id_; }
  [[nodiscard]] const crypto::KeyPair& key() const { return key_; }
  [[nodiscard]] Address address() const {
    return Address::key(key_.public_key().to_bytes());
  }
  [[nodiscard]] storage::ContentStore& content_store() { return resolved_; }

  /// Mempool occupancy/caps/shed ledger, exposed for invariant checks and
  /// benches (read from this node's lane, or driver context with lanes
  /// parked).
  [[nodiscard]] std::size_t mempool_size() const { return mempool_.size(); }
  [[nodiscard]] const chain::MempoolConfig& mempool_config() const {
    return mempool_.config();
  }
  [[nodiscard]] const common::ShedStats& mempool_shed_stats() const {
    return mempool_.shed_stats();
  }

  /// Adjust the block-size ceiling (benches model per-chain capacity).
  void set_max_user_msgs_per_block(std::size_t n) {
    config_.max_user_msgs_per_block = n;
  }

  /// Toggle the push leg of content resolution (paper §IV-C); pull always
  /// remains available. Benches compare the two approaches.
  void set_push_resolution(bool enabled) {
    config_.push_resolution = enabled;
  }

  /// Arm (or clear, with kNone) an adversary behavior on this validator.
  /// Chaos plans flip this at runtime; consensus participation, block
  /// validation and the equivocation watcher stay honest — only the
  /// checkpoint signing/submission duty misbehaves.
  void set_byzantine(ByzantineBehavior behavior) { byzantine_ = behavior; }
  [[nodiscard]] ByzantineBehavior byzantine() const { return byzantine_; }

  /// Fraud proofs this node has assembled and not yet seen resolved
  /// on-chain (exposed for tests).
  [[nodiscard]] std::size_t pending_fraud_proofs() const {
    return pending_proofs_.size();
  }

  /// Receipts of the block committed at `height` (local execution record).
  [[nodiscard]] const std::vector<chain::Receipt>* receipts_at(
      chain::Epoch height) const;

  /// Historic state reconstruction (replay from genesis); used to build
  /// §III-C recovery proofs against checkpointed state roots.
  [[nodiscard]] Result<chain::StateTree> state_at(chain::Epoch height) const {
    return store_->state_at(height, executor_);
  }

  // -------------------------------------------------- durability (§15)
  /// Chain height reconstructed from the WAL at construction (0 = nothing
  /// replayed: fresh boot, volatile node, or lost disk).
  [[nodiscard]] chain::Epoch recovered_height() const {
    return recovered_height_;
  }
  /// WAL replay outcome of this node's construction (all zero when no
  /// disk was attached). Exposed for recovery tests and invariants.
  [[nodiscard]] const storage::DurableLog::RecoverStats& recovery_stats()
      const {
    return recovery_stats_;
  }

  // ------------------------------------------------ VoteStore interface
  // The consensus engine's write-ahead barrier: persist() lands the vote
  // state in the WAL and fsyncs BEFORE the signed vote leaves the node;
  // recovered() surfaces the last vote-state record replayed at boot.
  void persist(BytesView state) override;
  [[nodiscard]] std::optional<Bytes> recovered() const override {
    return recovered_votes_;
  }

  // ------------------------------------------------- BlockSource interface
  [[nodiscard]] chain::Block build_block(const Address& miner) override;
  [[nodiscard]] Status validate_block(const chain::Block& block) override;
  void commit_block(chain::Block block, Bytes proof) override;
  [[nodiscard]] chain::Epoch head_height() const override {
    return store_->height();
  }
  [[nodiscard]] Cid head_cid() const override { return store_->head().cid(); }
  [[nodiscard]] std::optional<chain::Block> block_at(
      chain::Epoch height) const override;
  [[nodiscard]] Bytes proof_at(chain::Epoch height) const override;

 private:
  /// Collect the implicit cross-msg section for the next block (top-down
  /// from the parent view, resolved bottom-up batches, checkpoint cut).
  [[nodiscard]] std::vector<chain::Message> gather_cross_messages();

  /// Validate the implicit section of a proposed block against the parent
  /// view and local SCA state.
  [[nodiscard]] Status validate_cross_messages(const chain::Block& block);

  /// Post-commit duties: signing freshly cut checkpoints, pushing batches,
  /// requesting pulls for unresolved metas, submitting quorum checkpoints.
  void after_commit(const chain::Block& block,
                    const std::vector<chain::Receipt>& receipts);

  void handle_msgs_topic(const net::Envelope& payload);
  void handle_sigs_topic(const net::Envelope& payload);
  void handle_resolve_topic(const net::Envelope& payload);

  void maybe_submit_checkpoint();
  /// While the earliest cut checkpoint stays unaccepted, periodically
  /// re-gossip our signature share (exponential backoff + jitter) so that
  /// shares lost to partitions/crashes resurface after heal.
  void maybe_regossip_share();

  /// Register freshly assembled fraud proofs (watcher output) for
  /// submission; dedups by proof digest.
  void on_fraud_proofs(std::vector<core::FraudProof> proofs);
  /// Submit pending fraud proofs to the parent SCA. One designated
  /// reporter per proof (deterministic over the non-guilty validators,
  /// rotating every stalled period) keeps N honest watchers from racing N
  /// copies on-chain; the SCA's digest/slash-record dedup catches the
  /// residual races.
  void maybe_submit_fraud_proofs();
  /// Byzantine duty hooks, called from the checkpoint-cut path.
  void act_byzantine_on_cut(const core::Checkpoint& cp);
  [[nodiscard]] core::Checkpoint forge_checkpoint(
      const core::Checkpoint& cp) const;
  void push_own_batches(const core::Checkpoint& cp);
  void request_missing_batches();

  /// Mirror the mempool's shed ledger into the reason-labelled obs
  /// counters and refresh the occupancy gauges. Lane-local (cheap deltas).
  void sync_mempool_obs();

  /// Flush the executor/mempool arenas' cumulative allocation demand into
  /// `alloc_bytes_total`. Called at the deterministic arena reset points.
  void sync_arena_obs();

  [[nodiscard]] bool is_validator() const;

  /// The state tree the parent-facing _view accessors read from.
  [[nodiscard]] const chain::StateTree& view_tree() const;

  /// Replay the WAL (blocks, checkpoints, vote state) into a freshly built
  /// genesis store, then physically truncate the damaged tail. Runs in the
  /// constructor, before the engine exists; no gossip, no signing.
  void recover_from_wal();
  /// Append a committed block (+ proof) to the WAL, fsyncing lazily every
  /// `wal_fsync_every_blocks` commits.
  void wal_append_block(const chain::Block& block, const Bytes& proof);

  /// Feed the tracer and latency histograms from a freshly committed block:
  /// opens/closes the cross-net and checkpoint pipeline flows derived from
  /// the block's implicit messages and SCA events. Flows dedupe across
  /// replica nodes (first committer wins), so each protocol event is
  /// recorded exactly once per hierarchy.
  void observe_commit(const chain::Block& block,
                      const std::vector<chain::Receipt>& receipts);
  void observe_cross_event(const chain::ActorEvent& event);

  sim::Scheduler& scheduler_;
  net::Network& network_;
  const chain::ActorRegistry& registry_;
  NodeConfig config_;
  crypto::KeyPair key_;
  consensus::ValidatorSet validators_;
  net::NodeId net_id_;

  std::unique_ptr<chain::ChainStore> store_;
  chain::Mempool mempool_;
  chain::Executor executor_;
  std::unique_ptr<consensus::Engine> engine_;
  SubnetNode* parent_ = nullptr;

  /// Double-buffered parent view (DESIGN.md §11): commit_block refreshes
  /// the pending buffer inside this node's lane, publish_view() flips it
  /// between windows, and readers in other lanes only ever dereference the
  /// published buffer — which is stable for a whole window. Null until a
  /// child attaches (viewer gating, §17) or for raw single-lane usage.
  std::shared_ptr<const chain::StateTree> view_pending_;
  std::shared_ptr<const chain::StateTree> view_published_;
  /// Child nodes holding this node as parent view; maintained by
  /// attach_parent()/~SubnetNode from driver context. Buffers above are
  /// only materialized while this is > 0.
  int viewers_ = 0;
  /// Set by the first publish_view(): snapshots are in use (windowed
  /// execution), so a late-attaching viewer must be served a snapshot
  /// immediately instead of waiting for the next barrier.
  bool views_enabled_ = false;
  /// Bump the viewer count; publishes an immediate snapshot for the first
  /// viewer once windowed execution is live.
  void add_viewer();
  /// Drop one viewer; the last one releases both view buffers.
  void remove_viewer();

  /// Resolved cross-msg batches (local cache + registry mirror).
  storage::ContentStore resolved_;
  /// Proofs and receipts per height (height-1 indexed like blocks).
  std::vector<Bytes> proofs_;
  std::map<chain::Epoch, std::vector<chain::Receipt>> receipts_;

  /// Signature shares collected for pending checkpoints: epoch -> signer
  /// pubkey bytes -> share.
  std::map<chain::Epoch, std::map<Bytes, SigShare>> sig_shares_;
  /// Checkpoints cut by this chain that the parent SA has not (yet)
  /// accepted; rebuilt deterministically from block events on catch-up.
  std::map<chain::Epoch, core::Checkpoint> cut_checkpoints_;

  /// Exponential backoff + jitter state, in block heights. Used for both
  /// checkpoint re-submission and signature re-gossip; a fresh node (or a
  /// crash-restarted one) starts at attempt 0, so resubmission after
  /// restart is immediate once it is the designated submitter.
  struct RetryState {
    std::uint32_t attempts = 0;
    chain::Epoch next_height = 0;  // retry allowed once head >= this
  };
  /// Schedule the next attempt: period * 2^min(attempts,kMaxBackoffShift)
  /// plus uniform jitter in [0, period). Bounded so a stalled checkpoint
  /// is retried at least every 8 periods + jitter.
  void arm_retry(RetryState& retry, chain::Epoch head);
  std::map<chain::Epoch, RetryState> submit_retry_;
  std::map<chain::Epoch, RetryState> share_retry_;
  /// Per-unresolved-batch pull backoff, keyed by msgs_cid digest. Bounds
  /// the resolution-request flood under overload: at most
  /// kMaxInflightPulls fresh pulls per commit, each CID retried on the
  /// arm_retry schedule instead of every block (DESIGN.md §14).
  std::map<Bytes, RetryState> pull_retry_;
  static constexpr std::size_t kMaxInflightPulls = 4;

  // ----------------------------------------------------- fraud watchdog
  CheckpointWatcher watcher_;
  ByzantineBehavior byzantine_ = ByzantineBehavior::kNone;
  /// Last parent-accepted checkpoint, stashed by the kStaleResubmit
  /// behavior for replay.
  std::optional<core::SignedCheckpoint> stale_checkpoint_;
  struct PendingProof {
    core::FraudProof proof;
    std::vector<crypto::PublicKey> guilty;
    chain::Epoch detected_at = 0;
    RetryState retry;
  };
  /// Keyed by proof digest bytes; entries drop once every accused signer
  /// left the parent SA's validator set (slash landed, or they left).
  std::map<Bytes, PendingProof> pending_proofs_;
  /// Deterministic jitter stream (seeded from the net id, so replicas
  /// desynchronize their retries but identical runs stay identical).
  sim::Rng retry_rng_;

  bool running_ = false;

  // ------------------------------------------------------ durability §15
  /// Borrowed WAL (nullptr = volatile node). Points into config_.disk,
  /// which the Hierarchy keeps alive across crashes.
  storage::DurableLog* wal_ = nullptr;
  /// Last kVoteState payload replayed at boot (last-wins).
  std::optional<Bytes> recovered_votes_;
  /// Head height right after WAL replay (0 = nothing replayed).
  chain::Epoch recovered_height_ = 0;
  storage::DurableLog::RecoverStats recovery_stats_;
  /// Block records appended since the last fsync barrier.
  std::uint32_t wal_unsynced_blocks_ = 0;
  /// True for nodes rebuilt via restart (reuse_net_id): the first commit
  /// past recovered_height_ closes the resync latency measurement.
  bool resync_pending_ = false;
  sim::Time boot_time_ = 0;

  // ------------------------------------------------------- observability
  // Shared with every node of the hierarchy via the network's Obs; counter
  // handles are resolved once in the constructor (see src/obs/).
  obs::Obs& obs_;
  obs::Counter* c_blocks_committed_;
  obs::Counter* c_user_msgs_;
  obs::Counter* c_cross_msgs_;
  obs::Counter* c_checkpoints_cut_;
  obs::Counter* c_checkpoints_submitted_;
  obs::Counter* c_checkpoint_retries_;
  obs::Counter* c_share_regossips_;
  obs::Counter* c_pulls_sent_;
  obs::Counter* c_pushes_sent_;
  obs::Counter* c_resolves_served_;
  obs::Counter* c_fraud_detected_;
  obs::Counter* c_fraud_submitted_;
  /// Incremental state-commitment cost (DESIGN.md §12): scraped from
  /// StateTree::commit_stats() after every propose/validate/commit flush.
  obs::Counter* c_state_leaf_rehashes_;
  obs::Counter* c_state_flush_hits_;
  /// Reason-labelled mempool shed counters ({node, subnet, reason}),
  /// mirrored from Mempool::shed_stats() by sync_mempool_obs().
  obs::Counter* c_mempool_shed_[common::kShedReasonCount];
  obs::Gauge* g_mempool_;
  obs::Gauge* g_mempool_peak_;
  /// Cumulative arena allocation demand ({node, subnet}), flushed from the
  /// executor's and mempool's Arena stats by sync_arena_obs().
  obs::Counter* c_alloc_bytes_;
  obs::Histogram* h_commit_latency_;
  /// Durability counters ({node, subnet}); resolved only when a disk is
  /// attached, so volatile topologies keep their metrics export (and chaos
  /// fingerprints) byte-identical to the pre-durability builds.
  obs::Counter* c_wal_appends_ = nullptr;
  obs::Counter* c_wal_fsyncs_ = nullptr;
  obs::Counter* c_recovery_replayed_ = nullptr;
  obs::Counter* c_recovery_truncated_bytes_ = nullptr;
  obs::Counter* c_recovery_corrupt_ = nullptr;
  /// Sim-time from restart to the first commit past the recovered head.
  obs::Histogram* h_recovery_resync_ = nullptr;
  /// Memory gauges ({node, subnet}); resolved only with
  /// NodeConfig::mem_metrics, so default exports stay byte-identical
  /// (same opt-in pattern as the durability counters above).
  obs::Gauge* g_mem_bytes_ = nullptr;
  obs::Gauge* g_mem_peak_ = nullptr;
  std::int64_t mem_peak_ = 0;
  /// Refresh the memory gauges from mem_bytes() (height-paced).
  void refresh_mem_metrics();
  /// Last-synced copy of the mempool shed ledger (delta source).
  common::ShedStats mempool_obs_synced_;

  /// Add one tree's accumulated commitment stats to the node counters.
  void record_state_stats(const chain::StateTree& tree);
};

}  // namespace hc::runtime
