#include "crypto/sigcache.hpp"
#include "runtime/node.hpp"

#include <algorithm>

#include "actors/methods.hpp"
#include "common/log.hpp"
#include "crypto/batchverify.hpp"
#include "obs/profile.hpp"

namespace hc::runtime {

namespace {

Bytes registry_key(const Cid& cid) {
  return Bytes(cid.digest().begin(), cid.digest().end());
}

// ---- trace flow keys ---------------------------------------------------
// Flow keys must be derivable at BOTH endpoints of a protocol stage from
// the data each side observes in committed state; see observe_commit().

/// End-to-end identity of one cross-net message. Built from fields the SCA
/// preserves across hops (per-hop nonces are reassigned, so they cannot
/// key the e2e span).
std::string xmsg_key(const core::CrossMsg& cross) {
  return "xmsg:" + cross.from_subnet.to_string() + ">" +
         cross.to_subnet.to_string() + ":" + cross.msg.from.to_string() +
         ">" + cross.msg.to.to_string() + ":" + cross.msg.value.to_string();
}

/// One top-down hop into `hop`, keyed by the hop-scoped nonce.
std::string topdown_key(const core::SubnetId& hop, std::uint64_t nonce) {
  return "td:" + hop.to_string() + ":" + std::to_string(nonce);
}

/// Time a burned bottom-up msg waits in `subnet`'s window for the cut.
std::string window_key(const core::SubnetId& subnet,
                       const core::CrossMsg& cross) {
  return "buwin:" + subnet.to_string() + ":" + cross.cid().to_string();
}

/// A cut batch in transit until the parent SCA adopts its meta.
std::string batch_key(const Cid& msgs_cid) {
  return "bubatch:" + msgs_cid.to_string();
}

/// An adopted batch awaiting execution, keyed by the adoption nonce.
std::string buexec_key(const core::SubnetId& subnet, std::uint64_t nonce) {
  return "buexec:" + subnet.to_string() + ":" + std::to_string(nonce);
}

std::string cp_key(const char* stage, const core::SubnetId& source,
                   chain::Epoch epoch) {
  return std::string(stage) + ":" + source.to_string() + ":" +
         std::to_string(epoch);
}

}  // namespace

SubnetNode::SubnetNode(sim::Scheduler& scheduler, net::Network& network,
                       const chain::ActorRegistry& registry,
                       NodeConfig config, crypto::KeyPair key,
                       consensus::ValidatorSet validators,
                       std::shared_ptr<const chain::StateTree> genesis_state)
    : scheduler_(scheduler),
      network_(network),
      registry_(registry),
      config_(std::move(config)),
      key_(std::move(key)),
      validators_(std::move(validators)),
      net_id_(config_.reuse_net_id.has_value() ? *config_.reuse_net_id
                                               : network.add_node()),
      mempool_(config_.mempool),
      executor_(registry_, chain::GasSchedule{}),
      watcher_(config_.watcher_max_epochs),
      retry_rng_(0x9e3779b97f4a7c15ULL ^ net_id_),
      obs_(network.obs()) {
  const obs::Labels node_labels{{"node", std::to_string(net_id_)},
                                {"subnet", config_.subnet.to_string()}};
  const obs::Labels subnet_labels{{"subnet", config_.subnet.to_string()}};
  auto& m = obs_.metrics;
  c_blocks_committed_ = &m.counter("node_blocks_committed_total", node_labels);
  c_user_msgs_ = &m.counter("node_user_msgs_executed_total", node_labels);
  c_cross_msgs_ = &m.counter("node_cross_msgs_executed_total", node_labels);
  c_checkpoints_cut_ = &m.counter("node_checkpoints_cut_total", node_labels);
  c_checkpoints_submitted_ =
      &m.counter("node_checkpoints_submitted_total", node_labels);
  c_checkpoint_retries_ =
      &m.counter("node_checkpoint_retries_total", node_labels);
  c_share_regossips_ =
      &m.counter("node_share_regossips_total", node_labels);
  c_pulls_sent_ = &m.counter("node_pulls_sent_total", node_labels);
  c_pushes_sent_ = &m.counter("node_pushes_sent_total", node_labels);
  c_resolves_served_ = &m.counter("node_resolves_served_total", node_labels);
  c_fraud_detected_ = &m.counter("node_fraud_detected_total", node_labels);
  c_fraud_submitted_ =
      &m.counter("node_fraud_proofs_submitted_total", node_labels);
  c_state_leaf_rehashes_ =
      &m.counter("state_leaf_rehashes_total", node_labels);
  c_state_flush_hits_ =
      &m.counter("state_flush_cache_hits_total", node_labels);
  for (std::size_t r = 0; r < common::kShedReasonCount; ++r) {
    obs::Labels labels = node_labels;
    labels.add("reason",
               common::to_string(static_cast<common::ShedReason>(r)));
    c_mempool_shed_[r] = &m.counter("node_mempool_shed_total", labels);
  }
  g_mempool_ = &m.gauge("mempool_size", node_labels);
  g_mempool_peak_ = &m.gauge("mempool_peak_size", node_labels);
  c_alloc_bytes_ = &m.counter("alloc_bytes_total", node_labels);
  h_commit_latency_ = &m.histogram("block_commit_latency_us", subnet_labels);
  resolved_.set_policy(config_.content_store);
  // The shared genesis arrives pre-flushed (Hierarchy flushes once before
  // sharing), so this flush inside make_genesis is a cache hit.
  chain::Block genesis = chain::ChainStore::make_genesis(*genesis_state, 0);
  store_ = std::make_unique<chain::ChainStore>(std::move(genesis),
                                               std::move(genesis_state));
  store_->set_retention(config_.chain_retention);
  if (config_.mem_metrics) {
    g_mem_bytes_ = &m.gauge("node_mem_bytes", node_labels);
    g_mem_peak_ = &m.gauge("node_mem_peak_bytes", node_labels);
  }

  boot_time_ = scheduler_.now();
  if (config_.disk != nullptr) {
    c_wal_appends_ = &m.counter("wal_appends_total", node_labels);
    c_wal_fsyncs_ = &m.counter("wal_fsyncs_total", node_labels);
    c_recovery_replayed_ =
        &m.counter("recovery_replayed_records_total", node_labels);
    c_recovery_truncated_bytes_ =
        &m.counter("recovery_truncated_tail_bytes_total", node_labels);
    c_recovery_corrupt_ =
        &m.counter("recovery_corrupt_records_total", node_labels);
    h_recovery_resync_ =
        &m.histogram("recovery_resync_latency_us", subnet_labels);
    wal_ = &config_.disk->log("wal");
    recover_from_wal();
    resync_pending_ = config_.reuse_net_id.has_value();
  }

  consensus::EngineContext ectx;
  ectx.scheduler = &scheduler_;
  ectx.network = &network_;
  ectx.node = net_id_;
  ectx.topic = Topics::consensus(config_.subnet);
  ectx.key = key_;
  ectx.validators = validators_;
  ectx.source = this;
  if (wal_ != nullptr) ectx.votes = this;
  ectx.obs = &obs_;
  ectx.scope = config_.subnet.to_string();
  engine_ =
      consensus::make_engine(config_.params.consensus, std::move(ectx),
                             config_.engine);

  // Deliveries to this node must land in its subnet's scheduler lane.
  network_.set_node_domain(net_id_, config_.domain);
  network_.subscribe(net_id_, Topics::msgs(config_.subnet));
  network_.subscribe(net_id_, Topics::consensus(config_.subnet));
  network_.subscribe(net_id_, Topics::signatures(config_.subnet));
  network_.subscribe(net_id_, Topics::resolve(config_.subnet));
  network_.set_topic_handler(
      net_id_, [this](net::NodeId from, const std::string& topic,
                      const net::Envelope& payload) {
        if (topic == Topics::consensus(config_.subnet)) {
          engine_->on_message(from, payload);
        } else if (topic == Topics::msgs(config_.subnet)) {
          handle_msgs_topic(payload);
        } else if (topic == Topics::signatures(config_.subnet)) {
          handle_sigs_topic(payload);
        } else if (topic == Topics::resolve(config_.subnet)) {
          handle_resolve_topic(payload);
        }
      });
}

SubnetNode::~SubnetNode() {
  if (parent_ != nullptr) parent_->remove_viewer();
}

void SubnetNode::attach_parent(SubnetNode* parent) {
  if (parent == parent_) return;
  if (parent_ != nullptr) parent_->remove_viewer();
  parent_ = parent;
  if (parent_ != nullptr) parent_->add_viewer();
}

void SubnetNode::add_viewer() {
  ++viewers_;
  // First viewer while windowed snapshots are live: publish immediately
  // (we are in driver context, lanes parked) so the child never reads
  // cross-lane live state.
  if (views_enabled_ && view_published_ == nullptr) {
    view_pending_ =
        std::make_shared<const chain::StateTree>(store_->state().snapshot());
    view_published_ = view_pending_;
  }
}

void SubnetNode::remove_viewer() {
  if (--viewers_ == 0) {
    // Last reader gone: release both buffers. A later attach re-snapshots
    // fresh state instead of serving a stale view.
    view_pending_.reset();
    view_published_.reset();
  }
}

void SubnetNode::post(sim::Duration delay, std::function<void()> fn) {
  sim::Scheduler::DomainScope scope(scheduler_, config_.domain);
  scheduler_.schedule(delay, std::move(fn));
}

void SubnetNode::start() {
  // Timers the engine arms here must run in this node's lane, not in the
  // lane of whoever called start() (the driver, or a restart fault).
  sim::Scheduler::DomainScope scope(scheduler_, config_.domain);
  running_ = true;
  // Non-validators run the engine too: they never produce or vote (the
  // engines check set membership) but follow and validate committed blocks.
  engine_->start();
}

void SubnetNode::stop() {
  running_ = false;
  engine_->stop();
}

bool SubnetNode::is_validator() const {
  return validators_.index_of(key_.public_key()).has_value();
}

NodeStats SubnetNode::stats() const {
  NodeStats s;
  s.blocks_committed = c_blocks_committed_->value();
  s.user_msgs_executed = c_user_msgs_->value();
  s.cross_msgs_executed = c_cross_msgs_->value();
  s.checkpoints_cut = c_checkpoints_cut_->value();
  s.checkpoints_submitted = c_checkpoints_submitted_->value();
  s.pulls_sent = c_pulls_sent_->value();
  s.pushes_sent = c_pushes_sent_->value();
  s.resolves_served = c_resolves_served_->value();
  const common::ShedStats& shed = mempool_.shed_stats();
  s.mempool_evicted = shed.by(common::ShedReason::kEvicted);
  s.mempool_shed = shed.total() - s.mempool_evicted;
  return s;
}

void SubnetNode::sync_mempool_obs() {
  const common::ShedStats& shed = mempool_.shed_stats();
  for (std::size_t r = 0; r < common::kShedReasonCount; ++r) {
    const std::uint64_t delta = shed.shed[r] - mempool_obs_synced_.shed[r];
    if (delta > 0) c_mempool_shed_[r]->inc(delta);
  }
  mempool_obs_synced_ = shed;
  g_mempool_->set(static_cast<std::int64_t>(mempool_.size()));
  g_mempool_peak_->set(static_cast<std::int64_t>(shed.peak_items));
}

void SubnetNode::sync_arena_obs() {
  const std::uint64_t demand = executor_.arena().take_bytes_requested() +
                               mempool_.arena().take_bytes_requested();
  if (demand > 0) c_alloc_bytes_->inc(demand);
}

void SubnetNode::record_state_stats(const chain::StateTree& tree) {
  const auto& s = tree.commit_stats();
  if (s.leaf_rehashes > 0) c_state_leaf_rehashes_->inc(s.leaf_rehashes);
  if (s.flush_cache_hits > 0) c_state_flush_hits_->inc(s.flush_cache_hits);
}

Status SubnetNode::submit_message(chain::SignedMessage msg) {
  // A cross-net send entering at this node starts its end-to-end span here,
  // before it even reaches a block — the span covers mempool wait too.
  if (msg.message.to == chain::kScaAddr &&
      msg.message.method == actors::sca_method::kSendCross) {
    if (auto p = decode<actors::CrossParams>(msg.message.params)) {
      core::CrossMsg cross;
      cross.from_subnet = config_.subnet;
      cross.to_subnet = p.value().dest;
      cross.msg.from = msg.message.from;
      cross.msg.to = p.value().to;
      cross.msg.value = msg.message.value;
      obs_.tracer.flow_begin(xmsg_key(cross), "crossmsg.e2e", "xnet",
                             {{"from", cross.from_subnet.to_string()},
                              {"to", cross.to_subnet.to_string()}});
    }
  }
  const Bytes wire = encode(msg);
  const std::uint64_t next_nonce = account_nonce(msg.message.from);
  const Status admitted = mempool_.add(std::move(msg), next_nonce);
  sync_mempool_obs();
  // Backpressure: kOverloaded propagates to the caller, who is expected to
  // retry with exponential backoff (DESIGN.md §14).
  HC_TRY_STATUS(admitted);
  network_.publish(net_id_, Topics::msgs(config_.subnet), wire);
  return ok_status();
}

TokenAmount SubnetNode::balance(const Address& addr) const {
  const auto* entry = store_->state().get(addr);
  return entry == nullptr ? TokenAmount() : entry->balance;
}

std::uint64_t SubnetNode::account_nonce(const Address& addr) const {
  const auto* entry = store_->state().get(addr);
  return entry == nullptr ? 0 : entry->nonce;
}

actors::ScaState SubnetNode::sca_state() const {
  const auto* entry = store_->state().get(chain::kScaAddr);
  if (entry == nullptr || entry->state.empty()) return {};
  auto decoded = decode<actors::ScaState>(entry->state);
  return decoded.ok() ? std::move(decoded).value() : actors::ScaState{};
}

std::optional<actors::SaState> SubnetNode::sa_state(const Address& sa) const {
  const auto* entry = store_->state().get(sa);
  if (entry == nullptr || entry->code != chain::kCodeSubnetActor) {
    return std::nullopt;
  }
  auto decoded = decode<actors::SaState>(entry->state);
  if (!decoded) return std::nullopt;
  return std::move(decoded).value();
}

// ----------------------------------------------------- parent view snapshot

const chain::StateTree& SubnetNode::view_tree() const {
  return view_published_ == nullptr ? store_->state() : *view_published_;
}

std::uint64_t SubnetNode::account_nonce_view(const Address& addr) const {
  const auto* entry = view_tree().get(addr);
  return entry == nullptr ? 0 : entry->nonce;
}

actors::ScaState SubnetNode::sca_state_view() const {
  const auto* entry = view_tree().get(chain::kScaAddr);
  if (entry == nullptr || entry->state.empty()) return {};
  auto decoded = decode<actors::ScaState>(entry->state);
  return decoded.ok() ? std::move(decoded).value() : actors::ScaState{};
}

std::optional<actors::SaState> SubnetNode::sa_state_view(
    const Address& sa) const {
  const auto* entry = view_tree().get(sa);
  if (entry == nullptr || entry->code != chain::kCodeSubnetActor) {
    return std::nullopt;
  }
  auto decoded = decode<actors::SaState>(entry->state);
  if (!decoded) return std::nullopt;
  return std::move(decoded).value();
}

void SubnetNode::publish_view() {
  views_enabled_ = true;
  if (viewers_ == 0) return;  // leaf: no child reader, skip the snapshot
  if (view_pending_ == nullptr) {
    view_pending_ =
        std::make_shared<const chain::StateTree>(store_->state().snapshot());
  }
  view_published_ = view_pending_;
}

std::size_t SubnetNode::mem_bytes() const {
  std::size_t total = store_->mem_bytes() + resolved_.total_bytes();
  if (view_published_ != nullptr) total += view_published_->mem_bytes();
  if (view_pending_ != nullptr && view_pending_ != view_published_) {
    total += view_pending_->mem_bytes();
  }
  return total;
}

void SubnetNode::refresh_mem_metrics() {
  const auto bytes = static_cast<std::int64_t>(mem_bytes());
  g_mem_bytes_->set(bytes);
  if (bytes > mem_peak_) {
    mem_peak_ = bytes;
    g_mem_peak_->set(bytes);
  }
}

const std::vector<chain::Receipt>* SubnetNode::receipts_at(
    chain::Epoch height) const {
  auto it = receipts_.find(height);
  return it == receipts_.end() ? nullptr : &it->second;
}

std::optional<chain::Block> SubnetNode::block_at(chain::Epoch height) const {
  const auto* b = store_->block_at(height);
  if (b == nullptr) return std::nullopt;
  return *b;
}

Bytes SubnetNode::proof_at(chain::Epoch height) const {
  if (height < 1) return {};
  const auto idx = static_cast<std::size_t>(height - 1);
  return idx < proofs_.size() ? proofs_[idx] : Bytes{};
}

// --------------------------------------------------------------- building

std::vector<chain::Message> SubnetNode::gather_cross_messages() {
  std::vector<chain::Message> out;
  const chain::Epoch next = store_->height() + 1;
  const actors::ScaState my_sca = sca_state();

  // 1. Checkpoint cut at period boundaries (paper Fig. 2): freeze the
  //    window and open the signature window.
  if (!config_.subnet.is_root() && config_.params.checkpoint_period > 0 &&
      next % config_.params.checkpoint_period == 0 &&
      next > my_sca.last_own_checkpoint_epoch) {
    actors::CutParams cut;
    cut.epoch = next;
    cut.proof = store_->head().cid();
    chain::Message m;
    m.from = chain::kSystemAddr;
    m.to = chain::kScaAddr;
    m.method = actors::sca_method::kCutCheckpoint;
    m.params = encode(cut);
    out.push_back(std::move(m));
  }

  // 2. Top-down msgs committed by the parent, in nonce order (paper Fig. 3
  //    left: the pool syncs with the parent SCA's state).
  if (parent_ != nullptr) {
    const actors::ScaState parent_sca = parent_->sca_state_view();
    const auto* entry = parent_sca.find_subnet(config_.sa_in_parent);
    if (entry != nullptr) {
      std::uint64_t expected = my_sca.applied_topdown_nonce;
      for (const auto& cross : entry->topdown_queue) {
        if (out.size() >= config_.max_cross_msgs_per_block) break;
        if (cross.nonce < expected) continue;
        if (cross.nonce != expected) break;  // queue is nonce-ordered
        chain::Message m;
        m.from = chain::kSystemAddr;
        m.to = chain::kScaAddr;
        m.method = actors::sca_method::kApplyTopDown;
        m.params = encode(cross);
        m.value = cross.msg.value;  // minted into the subnet (paper §IV-A)
        out.push_back(std::move(m));
        ++expected;
      }
    }
  }

  // 3. Adopted bottom-up batches whose content has been resolved, strictly
  //    in adoption-nonce order (paper Fig. 3 right).
  std::uint64_t expected_bu = my_sca.applied_bottomup_nonce;
  for (const auto& pending : my_sca.pending_bottomup) {
    if (out.size() >= config_.max_cross_msgs_per_block) break;
    if (pending.executed || pending.nonce < expected_bu) continue;
    if (pending.nonce != expected_bu) break;
    auto content = resolved_.get(pending.meta.msgs_cid);
    if (!content.has_value()) break;  // unresolved: order must not be broken
    auto batch = decode<core::CrossMsgBatch>(*content);
    if (!batch) break;
    actors::ApplyBottomUpParams params;
    params.nonce = pending.nonce;
    params.batch = std::move(batch).value();
    chain::Message m;
    m.from = chain::kSystemAddr;
    m.to = chain::kScaAddr;
    m.method = actors::sca_method::kApplyBottomUp;
    m.params = encode(params);
    out.push_back(std::move(m));
    ++expected_bu;
  }
  return out;
}

chain::Block SubnetNode::build_block(const Address& miner) {
  static const obs::PhaseId build_phase =
      obs::Profiler::instance().phase("chain/build");
  obs::ProfileScope prof(build_phase);
  chain::Block block;
  block.header.miner = miner;
  block.header.height = store_->height() + 1;
  block.header.parent = store_->head().cid();
  block.header.timestamp = scheduler_.now();

  block.cross_messages = gather_cross_messages();
  block.messages = mempool_.select(
      config_.max_user_msgs_per_block,
      [this](const Address& a) { return account_nonce(a); });

  chain::StateTree tree = store_->state().snapshot();
  (void)executor_.apply_block(tree, block);
  block.header.state_root = tree.flush();
  record_state_stats(tree);
  block.header.msgs_root = block.compute_msgs_root();
  return block;
}

Status SubnetNode::validate_cross_messages(const chain::Block& block) {
  const actors::ScaState my_sca = sca_state();
  std::uint64_t expected_td = my_sca.applied_topdown_nonce;
  std::uint64_t expected_bu = my_sca.applied_bottomup_nonce;
  bool cut_seen = false;

  // Parent view for authenticating top-down msgs.
  const actors::SubnetEntry* parent_entry = nullptr;
  actors::ScaState parent_sca;
  if (parent_ != nullptr) {
    parent_sca = parent_->sca_state_view();
    parent_entry = parent_sca.find_subnet(config_.sa_in_parent);
  }

  for (const auto& m : block.cross_messages) {
    if (m.from != chain::kSystemAddr || m.to != chain::kScaAddr) {
      return Error(Errc::kInvalidArgument,
                   "implicit message with non-system envelope");
    }
    switch (m.method) {
      case actors::sca_method::kCutCheckpoint: {
        if (cut_seen) {
          return Error(Errc::kInvalidArgument, "duplicate checkpoint cut");
        }
        cut_seen = true;
        HC_TRY(cut, decode<actors::CutParams>(m.params));
        if (config_.params.checkpoint_period == 0 ||
            block.header.height % config_.params.checkpoint_period != 0 ||
            cut.epoch != block.header.height) {
          return Error(Errc::kInvalidArgument, "cut at wrong epoch");
        }
        if (cut.proof != block.header.parent) {
          return Error(Errc::kInvalidArgument, "cut proof mismatch");
        }
        break;
      }
      case actors::sca_method::kApplyTopDown: {
        HC_TRY(cross, decode<core::CrossMsg>(m.params));
        if (cross.nonce != expected_td) {
          return Error(Errc::kInvalidNonce, "top-down out of order");
        }
        // Authenticity: the message must exist verbatim in the parent
        // SCA's committed queue — a Byzantine proposer cannot mint.
        if (parent_entry == nullptr) {
          return Error(Errc::kUnavailable, "no parent view to verify against");
        }
        const auto it = std::find_if(
            parent_entry->topdown_queue.begin(),
            parent_entry->topdown_queue.end(),
            [&](const core::CrossMsg& q) { return q.nonce == cross.nonce; });
        if (it == parent_entry->topdown_queue.end()) {
          return Error(Errc::kUnavailable,
                       "top-down msg not (yet) visible in parent state");
        }
        if (!(*it == cross)) {
          return Error(Errc::kInvalidArgument, "forged top-down msg");
        }
        if (m.value != cross.msg.value) {
          return Error(Errc::kInvalidArgument, "top-down mint mismatch");
        }
        ++expected_td;
        break;
      }
      case actors::sca_method::kApplyBottomUp: {
        HC_TRY(params, decode<actors::ApplyBottomUpParams>(m.params));
        if (params.nonce != expected_bu) {
          return Error(Errc::kInvalidNonce, "bottom-up out of order");
        }
        const auto it = std::find_if(
            my_sca.pending_bottomup.begin(), my_sca.pending_bottomup.end(),
            [&](const actors::PendingBottomUp& p) {
              return p.nonce == params.nonce;
            });
        if (it == my_sca.pending_bottomup.end()) {
          return Error(Errc::kNotFound, "bottom-up nonce not adopted");
        }
        if (params.batch.cid() != it->meta.msgs_cid) {
          return Error(Errc::kInvalidArgument, "bottom-up batch forged");
        }
        // Side benefit: blocks disseminate batch content to validators
        // that missed both push and pull.
        (void)resolved_.put_verified(it->meta.msgs_cid, encode(params.batch));
        ++expected_bu;
        break;
      }
      default:
        return Error(Errc::kInvalidArgument, "unexpected implicit method");
    }
  }
  return ok_status();
}

Status SubnetNode::validate_block(const chain::Block& block) {
  static const obs::PhaseId validate_phase =
      obs::Profiler::instance().phase("chain/validate");
  obs::ProfileScope prof(validate_phase);
  if (block.header.height != store_->height() + 1) {
    return Error(Errc::kStateConflict, "height does not extend head");
  }
  if (block.header.parent != store_->head().cid()) {
    return Error(Errc::kStateConflict, "parent does not match head");
  }
  if (block.header.msgs_root != block.compute_msgs_root()) {
    return Error(Errc::kInvalidArgument, "msgs root mismatch");
  }
  HC_TRY_STATUS(validate_cross_messages(block));
  if (!block.messages.empty()) {
    // One batched pass through the sharded signature cache instead of a
    // per-message lookup; payload re-encodes live in the executor's arena.
    Arena& arena = executor_.arena();
    crypto::BatchVerifier batch;
    for (const auto& sm : block.messages) {
      batch.add(sm.pubkey, arena.encode_obj(sm.message), sm.signature);
    }
    const std::vector<bool> verified = batch.flush();
    arena.reset();
    for (std::size_t i = 0; i < block.messages.size(); ++i) {
      if (!verified[i] || !block.messages[i].sender_matches_key()) {
        return Error(Errc::kInvalidSignature,
                     "unsigned user message in block");
      }
    }
  }
  chain::StateTree tree = store_->state().snapshot();
  (void)executor_.apply_block(tree, block);
  const bool root_ok = tree.flush() == block.header.state_root;
  record_state_stats(tree);
  sync_arena_obs();
  if (!root_ok) {
    return Error(Errc::kInvalidArgument, "state root mismatch");
  }
  return ok_status();
}

void SubnetNode::commit_block(chain::Block block, Bytes proof) {
  static const obs::PhaseId commit_phase =
      obs::Profiler::instance().phase("chain/commit");
  obs::ProfileScope prof(commit_phase);
  chain::StateTree tree = store_->state().snapshot();
  std::vector<chain::Receipt> receipts = executor_.apply_block(tree, block);
  const chain::Epoch height = block.header.height;
  const chain::Block committed = block;  // keep for after_commit
  if (Status ok = store_->append(std::move(block), std::move(tree)); !ok) {
    LogLine(LogLevel::kError, config_.subnet.to_string())
            .kv("height", height)
        << "commit failed: " << ok.error().to_string();
    return;
  }
  // The appended tree (snapshot copy, so stats started at zero) now holds
  // the commitment cost of executing + flushing this block.
  record_state_stats(store_->state());
  proofs_.resize(static_cast<std::size_t>(height));
  proofs_[static_cast<std::size_t>(height - 1)] = std::move(proof);

  wal_append_block(committed,
                   proofs_[static_cast<std::size_t>(height - 1)]);
  if (resync_pending_ && height > recovered_height_) {
    // First live commit past the recovered head: the restarted replica has
    // fully rejoined (WAL replay + network tail catch-up).
    resync_pending_ = false;
    h_recovery_resync_->observe(scheduler_.now() - boot_time_);
  }

  mempool_.remove_included(committed.messages);
  mempool_.prune_stale([this](const Address& a) { return account_nonce(a); });
  sync_mempool_obs();
  sync_arena_obs();
  // Height-paced so every replica samples at the same commits regardless
  // of wall-clock (deterministic exports); O(actors) per sample.
  if (g_mem_bytes_ != nullptr && height % 8 == 0) refresh_mem_metrics();

  // Refresh the pending parent view once snapshots are in use (first
  // publish_view() call enables them); flipped at the next barrier.
  if (view_published_ != nullptr) {
    view_pending_ =
        std::make_shared<const chain::StateTree>(store_->state().snapshot());
  }

  c_blocks_committed_->inc();
  h_commit_latency_->observe(scheduler_.now() - committed.header.timestamp);
  const std::size_t n_cross = committed.cross_messages.size();
  for (std::size_t i = 0; i < receipts.size(); ++i) {
    if (!receipts[i].ok()) continue;
    if (i < n_cross) {
      c_cross_msgs_->inc();
    } else {
      c_user_msgs_->inc();
    }
  }
  observe_commit(committed, receipts);

  receipts_[height] = receipts;
  if (receipts_.size() > 64) receipts_.erase(receipts_.begin());

  after_commit(committed, receipts);
}

// --------------------------------------------------------- durability §15

void SubnetNode::recover_from_wal() {
  const std::vector<storage::WalRecord> records =
      storage::wal_recover(*wal_, &recovery_stats_);
  for (const storage::WalRecord& rec : records) {
    switch (rec.type) {
      case storage::WalRecordType::kBlock: {
        auto block_r = decode<chain::Block>(rec.payload);
        if (!block_r) break;
        chain::Block block = std::move(block_r).value();
        // Replay is a strict prefix: any gap (e.g. a dropped record) stops
        // block application; later records for higher heights are skipped.
        if (block.header.height != store_->height() + 1) break;
        const auto height = static_cast<std::size_t>(block.header.height);
        chain::StateTree tree = store_->state().snapshot();
        (void)executor_.apply_block(tree, block);
        if (Status ok = store_->append(std::move(block), std::move(tree));
            !ok) {
          break;
        }
        proofs_.resize(height);
        proofs_[height - 1] = rec.aux;
        break;
      }
      case storage::WalRecordType::kCheckpoint: {
        if (auto cp_r = decode<core::Checkpoint>(rec.payload)) {
          const core::Checkpoint cp = std::move(cp_r).value();
          // Restores the sign/submit duty; epochs the parent has since
          // accepted get pruned by the first maybe_submit_checkpoint().
          cut_checkpoints_[cp.epoch] = cp;
        }
        break;
      }
      case storage::WalRecordType::kVoteState:
        recovered_votes_ = rec.payload;  // last record wins
        break;
    }
  }
  record_state_stats(store_->state());
  recovered_height_ = store_->height();
  // Physically drop the damaged tail (torn/corrupt frames must never sit
  // under fresh appends) and barrier the surviving prefix.
  wal_->truncate(wal_->size_bytes() - recovery_stats_.truncated_bytes);
  wal_->fsync();
  if (!records.empty()) c_recovery_replayed_->inc(records.size());
  if (recovery_stats_.truncated_bytes > 0) {
    c_recovery_truncated_bytes_->inc(recovery_stats_.truncated_bytes);
  }
  if (recovery_stats_.corrupt_records > 0) {
    c_recovery_corrupt_->inc(recovery_stats_.corrupt_records);
  }
}

void SubnetNode::persist(BytesView state) {
  if (wal_ == nullptr) return;
  storage::WalRecord rec;
  rec.type = storage::WalRecordType::kVoteState;
  rec.height = static_cast<std::uint64_t>(store_->height());
  rec.payload.assign(state.begin(), state.end());
  storage::wal_append(*wal_, rec);
  // Write-ahead barrier: the vote state must reach the medium BEFORE the
  // signed message leaves this node. Also flushes lazily pending blocks.
  wal_->fsync();
  wal_unsynced_blocks_ = 0;
  c_wal_appends_->inc();
  c_wal_fsyncs_->inc();
}

void SubnetNode::wal_append_block(const chain::Block& block,
                                  const Bytes& proof) {
  if (wal_ == nullptr) return;
  storage::WalRecord rec;
  rec.type = storage::WalRecordType::kBlock;
  rec.height = static_cast<std::uint64_t>(block.header.height);
  rec.payload = encode(block);
  rec.aux = proof;
  storage::wal_append(*wal_, rec);
  c_wal_appends_->inc();
  if (++wal_unsynced_blocks_ >=
      std::max<std::uint32_t>(1, config_.wal_fsync_every_blocks)) {
    wal_->fsync();
    c_wal_fsyncs_->inc();
    wal_unsynced_blocks_ = 0;
  }
}

// ---------------------------------------------------------- observability

void SubnetNode::observe_commit(const chain::Block& block,
                                const std::vector<chain::Receipt>& receipts) {
  auto& tracer = obs_.tracer;
  const std::size_t n_cross =
      std::min(block.cross_messages.size(), receipts.size());

  // The implicit section tells us which cross-net messages ARRIVED in this
  // block; SCA events (below) tell us which ones departed.
  for (std::size_t i = 0; i < n_cross; ++i) {
    if (!receipts[i].ok()) continue;
    const chain::Message& m = block.cross_messages[i];
    if (m.method == actors::sca_method::kApplyTopDown) {
      auto cross_r = decode<core::CrossMsg>(m.params);
      if (!cross_r) continue;
      const core::CrossMsg cross = std::move(cross_r).value();
      tracer.flow_end(topdown_key(config_.subnet, cross.nonce));
      if (cross.to_subnet == config_.subnet) {
        if (auto d = tracer.flow_end(xmsg_key(cross))) {
          obs_.metrics
              .histogram("cross_msg_e2e_latency_us",
                         obs::Labels{{"subnet", config_.subnet.to_string()}})
              .observe(*d);
        }
      }
    } else if (m.method == actors::sca_method::kApplyBottomUp) {
      auto p_r = decode<actors::ApplyBottomUpParams>(m.params);
      if (!p_r) continue;
      const actors::ApplyBottomUpParams p = std::move(p_r).value();
      tracer.flow_end(buexec_key(config_.subnet, p.nonce));
      for (const core::CrossMsg& cross : p.batch.msgs) {
        if (cross.to_subnet == config_.subnet) {
          if (auto d = tracer.flow_end(xmsg_key(cross))) {
            obs_.metrics
                .histogram("cross_msg_e2e_latency_us",
                           obs::Labels{{"subnet", config_.subnet.to_string()}})
                .observe(*d);
          }
        }
      }
    }
  }

  for (const auto& receipt : receipts) {
    if (!receipt.ok()) continue;
    for (const auto& event : receipt.events) observe_cross_event(event);
  }
}

void SubnetNode::observe_cross_event(const chain::ActorEvent& event) {
  auto& tracer = obs_.tracer;
  const std::string self = config_.subnet.to_string();

  if (event.kind == "sca/topdown") {
    // A cross-msg frozen here and enqueued for the next hop down.
    auto cross_r = decode<core::CrossMsg>(event.payload);
    if (!cross_r) return;
    const core::CrossMsg cross = std::move(cross_r).value();
    tracer.flow_begin(xmsg_key(cross), "crossmsg.e2e", "xnet",
                      {{"from", cross.from_subnet.to_string()},
                       {"to", cross.to_subnet.to_string()}});
    const core::SubnetId hop = config_.subnet.down_toward(cross.to_subnet);
    tracer.flow_begin(topdown_key(hop, cross.nonce), "crossmsg.topdown.hop",
                      hop.to_string(),
                      {{"nonce", std::to_string(cross.nonce)}});
  } else if (event.kind == "sca/release") {
    // Burned into this subnet's bottom-up window.
    auto cross_r = decode<core::CrossMsg>(event.payload);
    if (!cross_r) return;
    const core::CrossMsg cross = std::move(cross_r).value();
    tracer.flow_begin(xmsg_key(cross), "crossmsg.e2e", "xnet",
                      {{"from", cross.from_subnet.to_string()},
                       {"to", cross.to_subnet.to_string()}});
    tracer.flow_begin(window_key(config_.subnet, cross),
                      "crossmsg.bottomup.window", self);
  } else if (event.kind == "sca/checkpoint-cut") {
    auto cp_r = decode<core::Checkpoint>(event.payload);
    if (!cp_r) return;
    const core::Checkpoint cp = std::move(cp_r).value();
    // The cut drains the window into batches...
    tracer.flow_end_prefix("buwin:" + self + ":");
    for (const core::CrossMsgMeta& meta : cp.cross_meta) {
      tracer.flow_begin(batch_key(meta.msgs_cid), "crossmsg.batch.transit",
                        self,
                        {{"from", meta.from.to_string()},
                         {"to", meta.to.to_string()}});
    }
    // ...and opens the checkpoint pipeline: overall (cut -> parent commit)
    // plus the signature-collection leg (cut -> submit).
    tracer.flow_begin(cp_key("cp", cp.source, cp.epoch), "checkpoint.pipeline",
                      cp.source.to_string(),
                      {{"epoch", std::to_string(cp.epoch)}});
    tracer.flow_begin(cp_key("cpsign", cp.source, cp.epoch),
                      "checkpoint.sign", cp.source.to_string());
  } else if (event.kind == "sca/bottomup-adopted") {
    // The parent SCA adopted a child batch's meta.
    auto p_r = decode<actors::PendingBottomUp>(event.payload);
    if (!p_r) return;
    const actors::PendingBottomUp pending = std::move(p_r).value();
    tracer.flow_end(batch_key(pending.meta.msgs_cid));
    tracer.flow_begin(buexec_key(config_.subnet, pending.nonce),
                      "crossmsg.batch.pending", self,
                      {{"nonce", std::to_string(pending.nonce)}});
  } else if (event.kind == "sca/checkpoint-committed") {
    // The parent SA/SCA accepted a child checkpoint.
    auto cp_r = decode<core::Checkpoint>(event.payload);
    if (!cp_r) return;
    const core::Checkpoint cp = std::move(cp_r).value();
    tracer.flow_end(cp_key("cpsub", cp.source, cp.epoch));
    if (auto d = tracer.flow_end(cp_key("cp", cp.source, cp.epoch))) {
      obs_.metrics
          .histogram("checkpoint_accept_latency_us",
                     obs::Labels{{"subnet", cp.source.to_string()}})
          .observe(*d);
    }
  } else if (event.kind == "sca/slashed") {
    // Fraud resolved on this (parent) chain: close the detection flow the
    // adversary opened at injection time and count the slash, both exactly
    // once per hierarchy (flows dedupe across replicas).
    Decoder dec(event.payload);
    auto records_r = dec.vec<actors::SlashRecord>();
    if (!records_r) return;
    for (const actors::SlashRecord& rec : std::move(records_r).value()) {
      const std::string fraud = "fraud:" + rec.subnet.to_string() + ":" +
                                std::to_string(rec.epoch) + ":" +
                                Address::key(rec.signer.to_bytes()).to_string();
      if (auto dur = tracer.flow_end(fraud)) {
        obs_.metrics
            .histogram("fraud_detection_latency_us",
                       obs::Labels{{"subnet", rec.subnet.to_string()}})
            .observe(*dur);
      }
      if (tracer.flow_begin("slashed:" + fraud, "fraud.slashed",
                            rec.subnet.to_string())) {
        tracer.flow_end("slashed:" + fraud);  // zero-length dedup marker
        obs_.metrics
            .counter("validators_slashed_total",
                     obs::Labels{{"subnet", rec.subnet.to_string()}})
            .inc();
      }
    }
  } else if (event.kind == "sca/subnet-deactivated") {
    auto id_r = decode<core::SubnetId>(event.payload);
    if (!id_r) return;
    const core::SubnetId id = std::move(id_r).value();
    const std::string key = "deact:" + id.to_string();
    if (tracer.flow_begin(key, "subnet.deactivated", id.to_string())) {
      tracer.flow_end(key);  // zero-length dedup marker
      obs_.metrics
          .counter("subnets_deactivated_total",
                   obs::Labels{{"subnet", id.to_string()}})
          .inc();
    }
  }
}

// ------------------------------------------------------------ post-commit

void SubnetNode::after_commit(const chain::Block& block,
                              const std::vector<chain::Receipt>& receipts) {
  if (!running_) return;
  // Detect a freshly cut checkpoint: sign it and push its batches.
  for (const auto& receipt : receipts) {
    for (const auto& event : receipt.events) {
      if (event.kind != "sca/checkpoint-cut") continue;
      auto cp_r = decode<core::Checkpoint>(event.payload);
      if (!cp_r) continue;
      const core::Checkpoint cp = std::move(cp_r).value();
      c_checkpoints_cut_->inc();
      cut_checkpoints_[cp.epoch] = cp;
      if (wal_ != nullptr) {
        storage::WalRecord rec;
        rec.type = storage::WalRecordType::kCheckpoint;
        rec.height = static_cast<std::uint64_t>(cp.epoch);
        rec.payload = event.payload;
        storage::wal_append(*wal_, rec);
        c_wal_appends_->inc();  // fsynced lazily with the block cadence
      }
      // Every full node attributes its own deterministic cut content to
      // its cid; gossiped shares attach to it in the watcher.
      on_fraud_proofs(watcher_.record_checkpoint(cp));
      if (is_validator() && byzantine_ != ByzantineBehavior::kWithhold) {
        // Paper Fig. 2: a signature window opens for the cut checkpoint.
        SigShare share;
        share.epoch = cp.epoch;
        share.checkpoint_cid = cp.cid();
        share.signer = key_.public_key();
        share.signature =
            key_.sign(core::SignedCheckpoint::signing_payload(cp));
        sig_shares_[cp.epoch][share.signer.to_bytes()] = share;
        on_fraud_proofs(watcher_.record_share(
            share.epoch, share.checkpoint_cid, share.signer,
            share.signature));
        network_.publish(net_id_, Topics::signatures(config_.subnet),
                         encode(SigGossip{share, std::nullopt}));
      }
      if (is_validator() && byzantine_ != ByzantineBehavior::kNone) {
        act_byzantine_on_cut(cp);
      }
      if (config_.push_resolution) push_own_batches(cp);
    }
  }
  request_missing_batches();
  maybe_submit_checkpoint();
  maybe_regossip_share();
  maybe_submit_fraud_proofs();
  (void)block;
}

void SubnetNode::arm_retry(RetryState& retry, chain::Epoch head) {
  constexpr std::uint32_t kMaxBackoffShift = 3;  // 1,2,4,8 periods, capped
  const auto period = static_cast<chain::Epoch>(
      std::max<std::uint32_t>(1, config_.params.checkpoint_period));
  const auto shift = std::min(retry.attempts, kMaxBackoffShift);
  ++retry.attempts;
  const auto jitter = static_cast<chain::Epoch>(
      retry_rng_.uniform(static_cast<std::uint64_t>(period)));
  retry.next_height = head + (period << shift) + jitter;
}

void SubnetNode::push_own_batches(const core::Checkpoint& cp) {
  const actors::ScaState my_sca = sca_state();
  for (const auto& meta : cp.cross_meta) {
    if (!(meta.from == config_.subnet)) continue;  // children push their own
    auto it = my_sca.msg_registry.find(registry_key(meta.msgs_cid));
    if (it == my_sca.msg_registry.end()) continue;
    ResolutionMsg push;
    push.kind = ResolutionKind::kPush;
    push.cid = meta.msgs_cid;
    push.content = it->second;
    network_.publish(net_id_, Topics::resolve(meta.to), encode(push));
    c_pushes_sent_->inc();
  }
}

void SubnetNode::request_missing_batches() {
  const actors::ScaState my_sca = sca_state();
  const chain::Epoch head = store_->height();
  // Keep only retry state for batches still missing; resolved or executed
  // entries drop out so the map stays bounded by the pending set.
  std::set<Bytes> missing;
  std::size_t issued = 0;
  for (const auto& pending : my_sca.pending_bottomup) {
    if (pending.executed) continue;
    if (resolved_.has(pending.meta.msgs_cid)) continue;
    const Bytes key = registry_key(pending.meta.msgs_cid);
    missing.insert(key);
    // Backoff per batch CID: the first pull goes out immediately; while a
    // batch stays unresolved, later pulls follow the arm_retry schedule
    // instead of re-flooding the resolve topic every commit. At most
    // kMaxInflightPulls fresh pulls per commit bound the burst.
    RetryState& retry = pull_retry_[key];
    if (retry.attempts > 0 && head < retry.next_height) continue;
    if (issued >= kMaxInflightPulls) continue;
    ++issued;
    arm_retry(retry, head);
    ResolutionMsg pull;
    pull.kind = ResolutionKind::kPull;
    pull.cid = pending.meta.msgs_cid;
    pull.reply_to = config_.subnet;
    network_.publish(net_id_, Topics::resolve(pending.meta.from),
                     encode(pull));
    c_pulls_sent_->inc();
  }
  for (auto it = pull_retry_.begin(); it != pull_retry_.end();) {
    it = missing.contains(it->first) ? std::next(it) : pull_retry_.erase(it);
  }
}

void SubnetNode::maybe_submit_checkpoint() {
  if (parent_ == nullptr || !is_validator()) return;

  // Prune checkpoints the parent SA has accepted, then pick the EARLIEST
  // outstanding one (prev-linkage forces in-order acceptance).
  const auto sa = parent_->sa_state_view(config_.sa_in_parent);
  if (!sa.has_value()) return;
  while (!cut_checkpoints_.empty() &&
         cut_checkpoints_.begin()->first <= sa->last_checkpoint_epoch) {
    const chain::Epoch accepted = cut_checkpoints_.begin()->first;
    if (byzantine_ == ByzantineBehavior::kStaleResubmit &&
        accepted == sa->last_checkpoint_epoch) {
      // Stash the just-accepted checkpoint with its full signature set:
      // the adversary will replay this well-formed-but-stale submission
      // every future period (the SA must reject it on epoch staleness).
      core::SignedCheckpoint sc;
      sc.checkpoint = cut_checkpoints_.begin()->second;
      const Cid accepted_cid = sc.checkpoint.cid();
      if (auto it = sig_shares_.find(accepted); it != sig_shares_.end()) {
        for (const auto& [signer_bytes, share] : it->second) {
          if (share.checkpoint_cid != accepted_cid) continue;
          sc.signatures.push_back(
              core::CheckpointSignature{share.signer, share.signature});
        }
      }
      stale_checkpoint_ = std::move(sc);
    }
    submit_retry_.erase(accepted);
    share_retry_.erase(accepted);
    sig_shares_.erase(accepted);
    cut_checkpoints_.erase(cut_checkpoints_.begin());
  }
  // Bounded watcher memory: keep a few periods behind parent acceptance so
  // late forged shares for recently-accepted epochs stay provable.
  {
    const auto period = static_cast<chain::Epoch>(
        std::max<std::uint32_t>(1, config_.params.checkpoint_period));
    if (sa->last_checkpoint_epoch > 4 * period) {
      watcher_.prune_below(sa->last_checkpoint_epoch - 4 * period);
    }
  }
  // A withholding adversary never volunteers for submission duty either.
  if (byzantine_ == ByzantineBehavior::kWithhold) return;
  if (cut_checkpoints_.empty()) return;
  const core::Checkpoint& cp = cut_checkpoints_.begin()->second;

  // Designated submitter rotates per checkpoint; if acceptance stalls
  // (partition, crashed submitter), the designation rotates onward every
  // further period of silence so some live validator eventually retries.
  const auto my_index = validators_.index_of(key_.public_key());
  if (!my_index.has_value()) return;
  const chain::Epoch head = store_->height();
  const std::uint64_t periods_waited = static_cast<std::uint64_t>(
      std::max<chain::Epoch>(0, head - cp.epoch)) /
      std::max<std::uint32_t>(1, config_.params.checkpoint_period);
  const std::size_t designated =
      (static_cast<std::size_t>(cp.epoch /
                                config_.params.checkpoint_period) +
       periods_waited) %
      validators_.size();
  if (*my_index != designated) return;

  // Back off re-submissions exponentially (with jitter) instead of
  // hammering the parent chain every block while acceptance stalls.
  RetryState& retry = submit_retry_[cp.epoch];
  if (retry.attempts > 0 && head < retry.next_height) return;

  // Collect this epoch's signature shares for exactly this checkpoint CID,
  // restricted to signers the SA currently registers (the validator set in
  // the SA changes on leave/slash; stale signers would fail its policy).
  const Cid cid = cp.cid();
  const auto sa_keys = sa->validator_keys();
  core::SignedCheckpoint sc;
  sc.checkpoint = cp;
  auto shares_it = sig_shares_.find(cp.epoch);
  if (shares_it != sig_shares_.end()) {
    for (const auto& [signer_bytes, share] : shares_it->second) {
      if (share.checkpoint_cid != cid) continue;
      const bool registered =
          std::find(sa_keys.begin(), sa_keys.end(), share.signer) !=
          sa_keys.end();
      if (!registered) continue;
      sc.signatures.push_back(
          core::CheckpointSignature{share.signer, share.signature});
    }
  }
  // Read the threshold from the SA's LIVE policy, not the static node
  // config: slashing shrinks the validator set and clamps the policy with
  // it (a 3-of-3 subnet that loses a validator becomes 2-of-2, not wedged).
  const core::SignaturePolicy& policy = sa->params.checkpoint_policy;
  const std::uint32_t required =
      policy.kind == core::SignaturePolicyKind::kSingle ? 1
                                                        : policy.threshold;
  if (sc.signatures.size() < required) return;

  // Submit to the SA on the parent chain, paid from this validator's
  // parent-chain account (paper §III-B: "checkpoints from /root/A/B are
  // committed to the SA B of the subnet chain /root/A").
  chain::Message m;
  m.from = address();
  m.to = config_.sa_in_parent;
  m.nonce = parent_->account_nonce_view(address());
  m.method = actors::sa_method::kSubmitCheckpoint;
  m.params = encode(sc);
  m.gas_limit = 1u << 26;
  m.gas_price = TokenAmount::atto(1);
  auto signed_msg = chain::SignedMessage::sign(std::move(m), key_);
  network_.publish(net_id_, Topics::msgs(*config_.subnet.parent()),
                   encode(signed_msg));
  if (retry.attempts > 0) c_checkpoint_retries_->inc();
  arm_retry(retry, head);
  c_checkpoints_submitted_->inc();
  // Signature collection ends at the (first) submission; acceptance by the
  // parent SA closes the cpsub leg in observe_cross_event().
  if (auto d = obs_.tracer.flow_end(cp_key("cpsign", cp.source, cp.epoch))) {
    obs_.metrics
        .histogram("checkpoint_sign_latency_us",
                   obs::Labels{{"subnet", cp.source.to_string()}})
        .observe(*d);
  }
  obs_.tracer.flow_begin(cp_key("cpsub", cp.source, cp.epoch),
                         "checkpoint.submit", cp.source.to_string(),
                         {{"epoch", std::to_string(cp.epoch)}});
}

void SubnetNode::maybe_regossip_share() {
  if (!is_validator() || cut_checkpoints_.empty()) return;
  const chain::Epoch epoch = cut_checkpoints_.begin()->first;
  if (wal_ != nullptr && !sig_shares_[epoch].contains(
                             key_.public_key().to_bytes()) &&
      byzantine_ != ByzantineBehavior::kWithhold) {
    // Recovered duty (§15): WAL replay restored this cut but our share
    // died with the process (the constructor replays silently). Re-sign
    // the SAME cid — byte-identical signature, idempotent, NOT
    // equivocation — so small validator sets can still reach threshold.
    const core::Checkpoint& cp = cut_checkpoints_.begin()->second;
    SigShare share;
    share.epoch = cp.epoch;
    share.checkpoint_cid = cp.cid();
    share.signer = key_.public_key();
    share.signature = key_.sign(core::SignedCheckpoint::signing_payload(cp));
    sig_shares_[epoch][share.signer.to_bytes()] = share;
    on_fraud_proofs(watcher_.record_share(share.epoch, share.checkpoint_cid,
                                          share.signer, share.signature));
    network_.publish(net_id_, Topics::signatures(config_.subnet),
                     encode(SigGossip{share, std::nullopt}));
  }
  auto shares_it = sig_shares_.find(epoch);
  if (shares_it == sig_shares_.end()) return;
  auto own_it = shares_it->second.find(key_.public_key().to_bytes());
  if (own_it == shares_it->second.end()) return;
  RetryState& retry = share_retry_[epoch];
  const chain::Epoch head = store_->height();
  if (retry.attempts == 0) {
    // The original share went out at cut time; only re-gossip once the
    // checkpoint has been stuck for a full backoff interval.
    arm_retry(retry, epoch);
    return;
  }
  if (head < retry.next_height) return;
  network_.publish(net_id_, Topics::signatures(config_.subnet),
                   encode(own_it->second));
  c_share_regossips_->inc();
  arm_retry(retry, head);
}

// -------------------------------------------------------- fraud watchdog

void SubnetNode::act_byzantine_on_cut(const core::Checkpoint& cp) {
  obs_.metrics
      .counter("node_byzantine_actions_total",
               obs::Labels{{"node", std::to_string(net_id_)},
                           {"subnet", config_.subnet.to_string()},
                           {"behavior", to_string(byzantine_)}})
      .inc();
  switch (byzantine_) {
    case ByzantineBehavior::kEquivocate:
    case ByzantineBehavior::kForgeMeta: {
      const core::Checkpoint forged = forge_checkpoint(cp);
      SigShare share;
      share.epoch = forged.epoch;
      share.checkpoint_cid = forged.cid();
      share.signer = key_.public_key();
      share.signature =
          key_.sign(core::SignedCheckpoint::signing_payload(forged));
      // The forged side must carry its content: no honest replica can
      // reconstruct it from its own chain, and the watcher needs both
      // contents to assemble a proof.
      network_.publish(net_id_, Topics::signatures(config_.subnet),
                       encode(SigGossip{share, forged}));
      // Detection-latency flow: provable fraud injected here, closed when
      // a slash record for this (subnet, epoch, signer) lands on the
      // parent chain.
      obs_.tracer.flow_begin(
          "fraud:" + config_.subnet.to_string() + ":" +
              std::to_string(cp.epoch) + ":" + address().to_string(),
          "fraud.detect", config_.subnet.to_string(),
          {{"behavior", to_string(byzantine_)}});
      break;
    }
    case ByzantineBehavior::kStaleResubmit: {
      if (!stale_checkpoint_.has_value() || parent_ == nullptr) break;
      chain::Message m;
      m.from = address();
      m.to = config_.sa_in_parent;
      m.nonce = parent_->account_nonce_view(address());
      m.method = actors::sa_method::kSubmitCheckpoint;
      m.params = encode(*stale_checkpoint_);
      m.gas_limit = 1u << 26;
      m.gas_price = TokenAmount::atto(1);
      auto signed_msg = chain::SignedMessage::sign(std::move(m), key_);
      network_.publish(net_id_, Topics::msgs(*config_.subnet.parent()),
                       encode(signed_msg));
      break;
    }
    case ByzantineBehavior::kNone:
    case ByzantineBehavior::kWithhold:
      break;
  }
}

core::Checkpoint SubnetNode::forge_checkpoint(
    const core::Checkpoint& cp) const {
  core::Checkpoint forged = cp;
  if (byzantine_ == ByzantineBehavior::kForgeMeta) {
    // Inflate the bottom-up value this checkpoint claims toward the
    // parent. Were it accepted, the parent would release more than the
    // child ever burned — the exact theft the firewall property (§II) and
    // the supply invariants must catch.
    if (forged.cross_meta.empty()) {
      core::CrossMsgMeta meta;
      meta.from = config_.subnet;
      meta.to = config_.subnet.parent().value_or(core::SubnetId{});
      meta.msg_count = 1;
      meta.value = TokenAmount::whole(1'000'000);
      forged.cross_meta.push_back(std::move(meta));
    } else {
      forged.cross_meta.front().value += TokenAmount::whole(1'000'000);
    }
  } else {
    // Plain equivocation: same (source, epoch), different block proof —
    // a second history for the same height.
    Encoder e;
    e.obj(cp.proof);
    forged.proof = Cid::of(CidCodec::kRaw, std::move(e).take());
  }
  return forged;
}

void SubnetNode::on_fraud_proofs(std::vector<core::FraudProof> proofs) {
  bool added = false;
  for (auto& proof : proofs) {
    auto guilty_r = proof.guilty_signers();
    if (!guilty_r) continue;  // watcher output always validates; belt+braces
    const Cid digest = proof.digest();
    Bytes key(digest.digest().begin(), digest.digest().end());
    if (pending_proofs_.contains(key)) continue;
    c_fraud_detected_->inc();
    LogLine(LogLevel::kWarn, config_.subnet.to_string())
            .kv("epoch", proof.first.checkpoint.epoch)
            .kv("signers", guilty_r.value().size())
        << "checkpoint equivocation detected";
    PendingProof pending;
    pending.proof = std::move(proof);
    pending.guilty = std::move(guilty_r).value();
    pending.detected_at = store_->height();
    pending_proofs_.emplace(std::move(key), std::move(pending));
    added = true;
  }
  if (added) maybe_submit_fraud_proofs();
}

void SubnetNode::maybe_submit_fraud_proofs() {
  if (pending_proofs_.empty() || parent_ == nullptr || !is_validator()) {
    return;
  }
  const auto sa = parent_->sa_state_view(config_.sa_in_parent);
  if (!sa.has_value()) return;
  const auto sa_keys = sa->validator_keys();
  const chain::Epoch head = store_->height();
  const auto period = static_cast<chain::Epoch>(
      std::max<std::uint32_t>(1, config_.params.checkpoint_period));

  for (auto it = pending_proofs_.begin(); it != pending_proofs_.end();) {
    PendingProof& pending = it->second;
    // Resolved: every accused signer left the SA's validator set (our
    // proof — or a peer's equivalent one — landed, or they left on their
    // own). The SCA keeps the durable dedup; local state can forget.
    const bool any_left = std::any_of(
        pending.guilty.begin(), pending.guilty.end(),
        [&](const crypto::PublicKey& k) {
          return std::find(sa_keys.begin(), sa_keys.end(), k) !=
                 sa_keys.end();
        });
    if (!any_left) {
      it = pending_proofs_.erase(it);
      continue;
    }
    // Designated reporter, deterministic over the NON-guilty validators
    // (seeded by the proof digest, rotating every stalled period): N
    // honest watchers converge on one submitter instead of racing N
    // copies on-chain. The SCA's digest dedup catches residual races.
    std::vector<crypto::PublicKey> honest;
    for (const auto& v : validators_.members()) {
      if (std::find(pending.guilty.begin(), pending.guilty.end(), v.key) ==
          pending.guilty.end()) {
        honest.push_back(v.key);
      }
    }
    if (!honest.empty()) {
      const std::uint64_t periods_waited =
          static_cast<std::uint64_t>(
              std::max<chain::Epoch>(0, head - pending.detected_at)) /
          period;
      const std::size_t designated =
          (static_cast<std::size_t>(it->first.front()) + periods_waited) %
          honest.size();
      RetryState& retry = pending.retry;
      if (honest[designated] == key_.public_key() &&
          (retry.attempts == 0 || head >= retry.next_height)) {
        chain::Message m;
        m.from = address();
        m.to = chain::kScaAddr;
        m.nonce = parent_->account_nonce_view(address());
        m.method = actors::sca_method::kSubmitFraudProof;
        m.params = encode(pending.proof);
        m.gas_limit = 1u << 26;
        m.gas_price = TokenAmount::atto(1);
        auto signed_msg = chain::SignedMessage::sign(std::move(m), key_);
        network_.publish(net_id_, Topics::msgs(*config_.subnet.parent()),
                         encode(signed_msg));
        c_fraud_submitted_->inc();
        arm_retry(retry, head);
      }
    }
    ++it;
  }
}

// ---------------------------------------------------------------- topics

void SubnetNode::handle_msgs_topic(const net::Envelope& payload) {
  auto msg = payload.decoded<chain::SignedMessage>();
  if (!msg) return;
  const std::uint64_t next_nonce = account_nonce(msg.value()->message.from);
  // Gossip has no caller to backpressure; refused admissions only feed the
  // reason-labelled shed counters. The mempool takes ownership, so copy out
  // of the shared decode (still one parse for N subscribers).
  (void)mempool_.add(*msg.value(), next_nonce);
  sync_mempool_obs();
  sync_arena_obs();
}

void SubnetNode::handle_sigs_topic(const net::Envelope& payload) {
  auto gossip_r = payload.decoded<SigGossip>();
  if (!gossip_r) return;
  const SigGossip& gossip = *gossip_r.value();
  const SigShare& share = gossip.share;
  if (!validators_.index_of(share.signer).has_value()) return;
  // Shares sign the cid digest, so they verify against the cid they CLAIM
  // — no content needed. A valid signature over a checkpoint we never cut
  // is attributable evidence of a second side, exactly what the
  // equivocation watcher indexes.
  if (!crypto::verify_cached(
          share.signer,
          core::SignedCheckpoint::signing_payload_for(share.checkpoint_cid),
          share.signature)) {
    return;
  }
  // Carried content is self-authenticating: admit it only when it hashes
  // to the claimed cid and targets this subnet's epoch.
  if (gossip.checkpoint.has_value() &&
      gossip.checkpoint->source == config_.subnet &&
      gossip.checkpoint->epoch == share.epoch &&
      gossip.checkpoint->cid() == share.checkpoint_cid) {
    on_fraud_proofs(watcher_.record_checkpoint(*gossip.checkpoint));
  }
  on_fraud_proofs(watcher_.record_share(share.epoch, share.checkpoint_cid,
                                        share.signer, share.signature));
  // The honest aggregation path only pools shares matching our own
  // deterministic record of that epoch's cut.
  auto cut_it = cut_checkpoints_.find(share.epoch);
  if (cut_it == cut_checkpoints_.end()) return;
  if (cut_it->second.cid() != share.checkpoint_cid) return;
  sig_shares_[share.epoch][share.signer.to_bytes()] = share;
  if (sig_shares_.size() > 64) sig_shares_.erase(sig_shares_.begin());
  maybe_submit_checkpoint();
}

void SubnetNode::handle_resolve_topic(const net::Envelope& payload) {
  auto msg_r = payload.decoded<ResolutionMsg>();
  if (!msg_r) return;
  const std::shared_ptr<const ResolutionMsg> msg = msg_r.value();
  switch (msg->kind) {
    case ResolutionKind::kPush:
    case ResolutionKind::kResolve: {
      // Self-authenticating: only content hashing to the CID is stored.
      // The store aliases the shared decoded object (zero-copy: N replicas
      // and the content store reference one materialization).
      (void)resolved_.put_verified(
          msg->cid, std::shared_ptr<const Bytes>(msg, &msg->content));
      break;
    }
    case ResolutionKind::kPull: {
      // Serve from the on-chain registry (paper §IV-C) or local cache.
      Bytes content;
      const actors::ScaState my_sca = sca_state();
      auto it = my_sca.msg_registry.find(registry_key(msg->cid));
      if (it != my_sca.msg_registry.end()) {
        content = it->second;
      } else if (auto cached = resolved_.get_shared(msg->cid)) {
        content = *cached;
      } else {
        return;
      }
      ResolutionMsg resolve;
      resolve.kind = ResolutionKind::kResolve;
      resolve.cid = msg->cid;
      resolve.content = std::move(content);
      network_.publish(net_id_, Topics::resolve(msg->reply_to),
                       encode(resolve));
      c_resolves_served_->inc();
      break;
    }
  }
}

}  // namespace hc::runtime
