#include "runtime/hierarchy.hpp"

#include <algorithm>
#include <stdexcept>

#include "actors/basic.hpp"
#include "actors/methods.hpp"
#include "actors/registry.hpp"
#include "actors/sa_state.hpp"
#include "actors/sca_state.hpp"
#include "common/log.hpp"

namespace hc::runtime {

std::size_t Subnet::alive_count() const {
  std::size_t n = 0;
  for (const auto& node : nodes) {
    if (node) ++n;
  }
  return n;
}

SubnetNode& Subnet::api_node() const {
  for (const auto& node : nodes) {
    if (node) return *node;
  }
  throw std::runtime_error("subnet " + id.to_string() +
                           ": every validator is crashed");
}

namespace {

/// Genesis state shared by every chain: Init actor + SCA.
chain::StateTree base_genesis(const core::SubnetId& self,
                              std::uint32_t checkpoint_period,
                              std::uint64_t topdown_window_cap,
                              chain::Epoch breaker_stall_epochs) {
  chain::StateTree tree;
  chain::ActorEntry init;
  init.code = chain::kCodeInit;
  init.nonce = 100;
  tree.set(chain::kInitAddr, init);
  chain::ActorEntry sca;
  sca.code = chain::kCodeSca;
  sca.state = actors::make_sca_ctor_state(
      self, checkpoint_period, topdown_window_cap, breaker_stall_epochs);
  tree.set(chain::kScaAddr, sca);
  return tree;
}

/// Conservative lookahead for the windowed executor: the smallest delay
/// any cross-lane (= cross-subnet) delivery can have. With the override
/// knob set, every cross-subnet pair uses it, so its floor IS the bound;
/// otherwise fall back to the base model's global floor (smaller than
/// necessary — same-subnet links are same-lane — but always safe).
sim::Duration executor_lookahead(const HierarchyConfig& cfg) {
  if (cfg.cross_subnet_latency.has_value()) {
    const auto& x = *cfg.cross_subnet_latency;
    const sim::Duration floor = x.jitter <= 0 ? x.base : x.base - x.jitter;
    return std::max<sim::Duration>(sim::Duration{1}, floor);
  }
  return cfg.latency.min_delay();
}

/// FNV-1a over a string; part of the deterministic disk-fault seed
/// derivation (no OS entropy anywhere in the crash path).
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h = (h ^ static_cast<std::uint8_t>(c)) * 1099511628211ull;
  }
  return h;
}

consensus::ValidatorSet make_validator_set(
    const std::vector<crypto::KeyPair>& keys) {
  std::vector<consensus::Validator> members;
  members.reserve(keys.size());
  for (const auto& k : keys) {
    members.push_back(consensus::Validator{k.public_key(), 1});
  }
  return consensus::ValidatorSet(std::move(members));
}

}  // namespace

void Hierarchy::init_common() {
  scheduler_.attach_obs(&obs_);
  obs_.tracer.set_clock([this] { return scheduler_.now(); });
  actors::install_standard_actors(registry_);
  // Child nodes read their parent through the view snapshot published at
  // the last barrier (never live state, which another lane may be
  // mutating); flip every alive node's buffer between windows. The flip
  // is viewer-gated: leaves (no attached child readers) skip the snapshot
  // entirely (DESIGN.md §17).
  executor_.add_barrier_hook([this] {
    for (auto& s : subnets_) {
      for (auto& n : s->nodes) {
        if (n) n->publish_view();
      }
    }
  });
}

NodeConfig Hierarchy::node_config(const Subnet& subnet, std::size_t slot) {
  NodeConfig nc;
  nc.subnet = subnet.id;
  nc.params = subnet.params;
  nc.engine = subnet.engine;
  nc.sa_in_parent = subnet.sa;
  nc.domain = subnet.domain;
  nc.mempool = config_.mempool;
  nc.content_store = config_.content_store;
  nc.chain_retention = config_.chain_retention;
  nc.mem_metrics = config_.mem_metrics;
  nc.disk = disk_for(subnet, slot);
  nc.wal_fsync_every_blocks = config_.durability.fsync_every_blocks;
  return nc;
}

void Hierarchy::boot_subnet(Subnet& subnet, chain::StateTree genesis) {
  // Flush ONCE before sharing: flush() mutates the commitment cache, so a
  // published shared tree must already be warm (every later flush is a
  // read-only cache hit).
  (void)genesis.flush();
  subnet.genesis =
      std::make_shared<const chain::StateTree>(std::move(genesis));
  const auto validators = make_validator_set(subnet.validator_keys);
  for (std::size_t i = 0; i < subnet.validator_keys.size(); ++i) {
    auto node = std::make_unique<SubnetNode>(
        scheduler_, network_, registry_, node_config(subnet, i),
        subnet.validator_keys[i], validators, subnet.genesis);
    install_cross_latency(node->net_id(), subnet);
    if (subnet.parent != nullptr) {
      // Spread parent views across alive parent replicas (paper §II:
      // child nodes run full nodes on the parent subnet).
      SubnetNode* view = nullptr;
      for (std::size_t off = 0; off < subnet.parent->size(); ++off) {
        const std::size_t slot = (i + off) % subnet.parent->size();
        if (subnet.parent->alive(slot)) {
          view = subnet.parent->nodes[slot].get();
          break;
        }
      }
      node->attach_parent(view);
    }
    subnet.nodes.push_back(std::move(node));
    subnet.node_ids.push_back(subnet.nodes.back()->net_id());
  }
  for (auto& n : subnet.nodes) n->start();
  for (auto& n : subnet.nodes) n->publish_view();
}

Hierarchy::Hierarchy(HierarchyConfig config)
    : config_(std::move(config)),
      network_(scheduler_, config_.latency, config_.seed, config_.gossip,
               &obs_),
      executor_(scheduler_, config_.threads, executor_lookahead(config_)),
      faucet_(crypto::KeyPair::from_label("hc/faucet")) {
  init_common();

  auto root = std::make_unique<Subnet>();
  root->id = core::SubnetId::root();
  root->params = config_.root_params;
  root->engine = config_.root_engine;
  root->domain = scheduler_.add_domain();
  for (std::size_t i = 0; i < config_.root_validators; ++i) {
    root->validator_keys.push_back(
        crypto::KeyPair::from_label("root-val-" + std::to_string(i)));
  }

  chain::StateTree genesis =
      base_genesis(root->id, config_.root_params.checkpoint_period,
                   config_.topdown_window_cap, config_.breaker_stall_epochs);
  chain::ActorEntry faucet_entry;
  faucet_entry.code = chain::kCodeAccount;
  faucet_entry.balance = config_.faucet_balance;
  genesis.set(Address::key(faucet_.public_key().to_bytes()), faucet_entry);
  // Root validators get small gas allowances.
  for (const auto& k : root->validator_keys) {
    chain::ActorEntry v;
    v.code = chain::kCodeAccount;
    v.balance = TokenAmount::whole(1000);
    genesis.set(Address::key(k.public_key().to_bytes()), v);
  }

  root_ = root.get();
  subnets_.push_back(std::move(root));
  boot_subnet(*root_, std::move(genesis));
}

// ----------------------------------------------------- static tree (§17)

struct Hierarchy::Staged {
  std::unique_ptr<Subnet> subnet;
  chain::StateTree genesis;
  /// Σ balances in the composed genesis — the circulating supply the
  /// parent SCA records for this child (firewall bound, paper §II).
  TokenAmount total;
  std::vector<Staged> children;
};

Hierarchy::Hierarchy(HierarchyConfig config, const TreeSpec& spec)
    : config_(std::move(config)),
      network_(scheduler_, config_.latency, config_.seed, config_.gossip,
               &obs_),
      executor_(scheduler_, config_.threads, executor_lookahead(config_)),
      faucet_(crypto::KeyPair::from_label("hc/faucet")) {
  init_common();
  boot_staged(compose_static(spec, nullptr, Address()));
}

Hierarchy::Staged Hierarchy::compose_static(const TreeSpec& spec,
                                            Subnet* parent,
                                            const Address& sa) {
  Staged st;
  st.subnet = std::make_unique<Subnet>();
  Subnet& s = *st.subnet;
  s.id = parent == nullptr ? core::SubnetId::root() : parent->id.child(sa);
  s.sa = sa;
  s.params = spec.params;
  s.engine = spec.engine;
  s.parent = parent;
  s.domain = scheduler_.add_domain();
  for (std::size_t i = 0; i < spec.n_validators; ++i) {
    s.validator_keys.push_back(crypto::KeyPair::from_label(
        spec.name + "-val-" + std::to_string(i)));
  }

  // Children compose first: this genesis embeds their registration state
  // and circulating supply.
  st.children.reserve(spec.children.size());
  for (std::size_t k = 0; k < spec.children.size(); ++k) {
    st.children.push_back(
        compose_static(spec.children[k], &s, Address::id(100 + k)));
  }

  chain::StateTree genesis =
      base_genesis(s.id, spec.params.checkpoint_period,
                   config_.topdown_window_cap, config_.breaker_stall_epochs);
  if (parent == nullptr) {
    // Keep the faucet so make_user()/spawn_subnet() compose with a
    // statically built tree.
    chain::ActorEntry faucet_entry;
    faucet_entry.code = chain::kCodeAccount;
    faucet_entry.balance = config_.faucet_balance;
    genesis.set(Address::key(faucet_.public_key().to_bytes()), faucet_entry);
  }
  for (const auto& k : s.validator_keys) {
    chain::ActorEntry v;
    v.code = chain::kCodeAccount;
    v.balance = TokenAmount::whole(100);  // gas allowance
    genesis.set(Address::key(k.public_key().to_bytes()), v);
  }
  // Cold account mass: id addresses, no keypairs (1000+j stays clear of
  // the SA range 100+k for any realistic fan-out).
  for (std::size_t j = 0; j < spec.accounts; ++j) {
    chain::ActorEntry a;
    a.code = chain::kCodeAccount;
    a.balance = spec.account_balance;
    genesis.set(Address::id(1000 + j), a);
  }
  for (std::size_t i = 0; i < spec.hot_accounts; ++i) {
    const auto key = crypto::KeyPair::from_label(
        spec.name + "-hot-" + std::to_string(i));
    chain::ActorEntry a;
    a.code = chain::kCodeAccount;
    a.balance = spec.hot_balance;
    genesis.set(Address::key(key.public_key().to_bytes()), a);
  }

  if (!spec.children.empty()) {
    // Fabricate exactly what the deploy→join→register protocol leaves
    // behind: a registered SA actor per child plus the SCA's subnet entry
    // with escrowed collateral and the child's circulating supply. The
    // Init nonce advances past the fabricated deploys so later dynamic
    // spawn_subnet() calls get fresh SA addresses.
    chain::ActorEntry init = *genesis.get(chain::kInitAddr);
    init.nonce = 100 + spec.children.size();
    genesis.set(chain::kInitAddr, init);

    chain::ActorEntry sca_entry = *genesis.get(chain::kScaAddr);
    auto sca_r = decode<actors::ScaState>(sca_entry.state);
    actors::ScaState sca = std::move(sca_r).value();
    TokenAmount escrowed;
    for (std::size_t k = 0; k < spec.children.size(); ++k) {
      const TreeSpec& child_spec = spec.children[k];
      const Staged& child = st.children[k];
      const Address child_sa = Address::id(100 + k);

      actors::SaState sa_state;
      sa_state.params = child_spec.params;
      sa_state.subnet_id = child.subnet->id;
      sa_state.registered = true;
      for (const auto& key : child.subnet->validator_keys) {
        sa_state.validators.push_back(
            actors::ValidatorInfo{key.public_key(), child_spec.stake_each});
        sa_state.total_stake += child_spec.stake_each;
      }
      chain::ActorEntry sa_actor;
      sa_actor.code = chain::kCodeSubnetActor;
      sa_actor.state = encode(sa_state);
      genesis.set(child_sa, sa_actor);

      // Child validators submit checkpoints to this SA as parent-chain
      // messages paid from their own parent-chain accounts — the join
      // protocol would have left them funded here, so fabricate that too.
      for (const auto& key : child.subnet->validator_keys) {
        const Address addr = Address::key(key.public_key().to_bytes());
        if (!genesis.has(addr)) {
          chain::ActorEntry v;
          v.code = chain::kCodeAccount;
          v.balance = TokenAmount::whole(100);  // gas allowance
          genesis.set(addr, v);
        }
      }

      actors::SubnetEntry entry;
      entry.id = child.subnet->id;
      entry.sa = child_sa;
      entry.collateral = sa_state.total_stake;
      entry.min_collateral = child_spec.params.min_collateral;
      entry.circulating_supply = child.total;
      sca.subnets[child_sa] = entry;
      escrowed += sa_state.total_stake + child.total;
    }
    sca_entry.state = encode(sca);
    sca_entry.balance += escrowed;
    genesis.set(chain::kScaAddr, sca_entry);
  }

  st.total = genesis.total_balance();
  st.genesis = std::move(genesis);
  return st;
}

void Hierarchy::boot_staged(Staged staged) {
  Subnet* s = staged.subnet.get();
  if (s->parent == nullptr) root_ = s;
  subnets_.push_back(std::move(staged.subnet));
  boot_subnet(*s, std::move(staged.genesis));
  // Top-down: children attach their views to the now-running parent nodes.
  for (auto& child : staged.children) boot_staged(std::move(child));
}

Hierarchy::~Hierarchy() {
  for (auto& s : subnets_) {
    for (auto& n : s->nodes) {
      if (n) n->stop();
    }
  }
  // Child nodes detach from their parent's viewer count in ~SubnetNode;
  // destroy deepest-first (creation order is parents-first) so parent_
  // stays valid while children unwind.
  while (!subnets_.empty()) subnets_.pop_back();
}

void Hierarchy::run_for(sim::Duration d) {
  executor_.run_until(scheduler_.now() + d);
}

bool Hierarchy::run_until(const std::function<bool()>& pred,
                          sim::Duration max, sim::Duration step) {
  const sim::Time deadline = scheduler_.now() + max;
  for (;;) {
    if (pred()) return true;
    if (scheduler_.now() >= deadline) return false;
    executor_.run_until(std::min(scheduler_.now() + step, deadline));
  }
}

Result<User> Hierarchy::make_user(const std::string& label, TokenAmount funds,
                                  sim::Duration timeout) {
  User user;
  user.key = crypto::KeyPair::from_label(label + "#" +
                                         std::to_string(label_counter_++));
  user.addr = Address::key(user.key.public_key().to_bytes());

  User faucet_user{faucet_, Address::key(faucet_.public_key().to_bytes())};
  chain::Message m;
  m.from = faucet_user.addr;
  m.to = user.addr;
  m.nonce = root_->api_node().account_nonce(faucet_user.addr);
  m.value = funds;
  m.gas_limit = 1u << 22;
  m.gas_price = TokenAmount::atto(1);
  HC_TRY_STATUS(root_->api_node().submit_message(
      chain::SignedMessage::sign(std::move(m), faucet_)));
  const bool funded = run_until(
      [&] { return root_->api_node().balance(user.addr) >= funds; }, timeout);
  if (!funded) {
    return Error(Errc::kTimeout, "user funding did not land");
  }
  return user;
}

Status Hierarchy::submit(Subnet& subnet, const User& user, const Address& to,
                         chain::MethodNum method, Bytes params,
                         TokenAmount value) {
  chain::Message m;
  m.from = user.addr;
  m.to = to;
  m.nonce = subnet.api_node().account_nonce(user.addr);
  m.value = value;
  m.method = method;
  m.params = std::move(params);
  m.gas_limit = 1u << 26;
  m.gas_price = TokenAmount::atto(1);
  return subnet.api_node().submit_message(
      chain::SignedMessage::sign(std::move(m), user.key));
}

Result<chain::Receipt> Hierarchy::call(Subnet& subnet, const User& user,
                                       const Address& to,
                                       chain::MethodNum method, Bytes params,
                                       TokenAmount value,
                                       sim::Duration timeout) {
  const std::uint64_t nonce = subnet.api_node().account_nonce(user.addr);
  chain::Message m;
  m.from = user.addr;
  m.to = to;
  m.nonce = nonce;
  m.value = value;
  m.method = method;
  m.params = std::move(params);
  m.gas_limit = 1u << 26;
  m.gas_price = TokenAmount::atto(1);
  const auto sm = chain::SignedMessage::sign(std::move(m), user.key);
  HC_TRY_STATUS(subnet.api_node().submit_message(sm));

  // Wait until the account nonce passes ours, then locate the receipt.
  // The endpoint is re-resolved on every poll so a crash of the current
  // api node mid-wait does not leave us polling a dead reference.
  const bool included = run_until(
      [&] { return subnet.api_node().account_nonce(user.addr) > nonce; },
      timeout);
  if (!included) {
    return Error(Errc::kTimeout, "message was not included in time");
  }
  // Find the receipt by scanning recent blocks for our message.
  SubnetNode& api = subnet.api_node();
  const auto& store = api.chain();
  for (chain::Epoch h = store.height(); h >= 1; --h) {
    const auto* block = store.block_at(h);
    if (block == nullptr) break;
    for (std::size_t i = 0; i < block->messages.size(); ++i) {
      if (block->messages[i] == sm) {
        const auto* receipts = api.receipts_at(h);
        if (receipts == nullptr) {
          return Error(Errc::kNotFound, "receipts pruned");
        }
        return (*receipts)[block->cross_messages.size() + i];
      }
    }
  }
  return Error(Errc::kNotFound, "included message not found in chain");
}

Result<Subnet*> Hierarchy::spawn_subnet(Subnet& parent,
                                        const std::string& name,
                                        core::SubnetParams params,
                                        std::size_t n_validators,
                                        TokenAmount stake_each,
                                        consensus::EngineConfig engine,
                                        sim::Duration timeout) {
  if (n_validators == 0) {
    return Error(Errc::kInvalidArgument, "subnet needs validators");
  }
  if (!parent.id.is_root()) {
    // Validators of a nested subnet need funds on the parent chain, which
    // themselves arrive via cross-net funding from the root.
  }

  // 1. Create and fund validator identities on the PARENT chain.
  std::vector<crypto::KeyPair> keys;
  std::vector<User> users;
  for (std::size_t i = 0; i < n_validators; ++i) {
    keys.push_back(crypto::KeyPair::from_label(
        name + "-val-" + std::to_string(i) + "#" +
        std::to_string(label_counter_++)));
    users.push_back(User{keys.back(),
                         Address::key(keys.back().public_key().to_bytes())});
  }
  const TokenAmount validator_funds =
      stake_each + TokenAmount::whole(100);  // stake + gas headroom
  for (const auto& u : users) {
    if (parent.id.is_root()) {
      User faucet_user{faucet_,
                       Address::key(faucet_.public_key().to_bytes())};
      chain::Message m;
      m.from = faucet_user.addr;
      m.to = u.addr;
      m.nonce = root_->api_node().account_nonce(faucet_user.addr);
      m.value = validator_funds;
      m.gas_limit = 1u << 22;
      m.gas_price = TokenAmount::atto(1);
      HC_TRY_STATUS(root_->api_node().submit_message(
          chain::SignedMessage::sign(std::move(m), faucet_)));
      if (!run_until([&] {
            return root_->api_node().balance(u.addr) >= validator_funds;
          }, timeout)) {
        return Error(Errc::kTimeout, "validator funding did not land");
      }
    } else {
      // Route funds from the root faucet down to the parent subnet.
      HC_TRY(faucet_user, make_user(name + "-route", validator_funds +
                                                         TokenAmount::whole(1),
                                    timeout));
      HC_TRY(receipt,
             send_cross(*root_, faucet_user, parent.id, u.addr,
                        validator_funds));
      if (!receipt.ok()) {
        return Error(Errc::kInternal, "cross-net funding failed: " +
                                          receipt.error);
      }
      if (!run_until([&] {
            return parent.api_node().balance(u.addr) >= validator_funds;
          }, timeout)) {
        return Error(Errc::kTimeout, "cross-net validator funding stalled");
      }
    }
  }

  // 2. Deploy the SA through the parent's Init actor (paper §III-A).
  actors::ExecParams exec;
  exec.code = chain::kCodeSubnetActor;
  exec.ctor_state = actors::make_sa_ctor_state(params);
  HC_TRY(deploy_receipt,
         call(parent, users[0], chain::kInitAddr, actors::init_method::kExec,
              encode(exec), TokenAmount(), timeout));
  if (!deploy_receipt.ok()) {
    return Error(Errc::kInternal, "SA deploy failed: " + deploy_receipt.error);
  }
  HC_TRY(sa_addr, decode<Address>(deploy_receipt.ret));

  // 3. Validators join with stake; the SA registers with the SCA once the
  //    collateral threshold is crossed (paper §III-B).
  for (std::size_t i = 0; i < n_validators; ++i) {
    HC_TRY(join_receipt,
           call(parent, users[i], sa_addr, actors::sa_method::kJoin,
                encode(actors::JoinParams{keys[i].public_key()}), stake_each,
                timeout));
    if (!join_receipt.ok()) {
      return Error(Errc::kInternal, "join failed: " + join_receipt.error);
    }
  }
  const bool registered = run_until(
      [&] {
        const auto sa = parent.api_node().sa_state(sa_addr);
        return sa.has_value() && sa->registered;
      },
      timeout);
  if (!registered) {
    return Error(Errc::kTimeout,
                 "subnet did not register (insufficient collateral?)");
  }

  // 4. Boot the child chain: one node per validator, each holding a parent
  //    view on a distinct parent node (paper §II: child nodes run full
  //    nodes on the parent subnet).
  auto child = std::make_unique<Subnet>();
  child->id = parent.id.child(sa_addr);
  child->sa = sa_addr;
  child->params = params;
  child->engine = engine;
  child->parent = &parent;
  child->domain = scheduler_.add_domain();
  child->validator_keys = keys;

  chain::StateTree genesis =
      base_genesis(child->id, params.checkpoint_period,
                   config_.topdown_window_cap, config_.breaker_stall_epochs);
  Subnet* out = child.get();
  subnets_.push_back(std::move(child));
  boot_subnet(*out, std::move(genesis));
  return out;
}

storage::DurableStore* Hierarchy::disk_for(const Subnet& subnet,
                                           std::size_t i) {
  if (!config_.durability.enabled) return nullptr;
  return &disks_[subnet.id.to_string() + "#" + std::to_string(i)];
}

const storage::DurableStore* Hierarchy::find_disk(const Subnet& subnet,
                                                  std::size_t i) const {
  const auto it = disks_.find(subnet.id.to_string() + "#" + std::to_string(i));
  return it == disks_.end() ? nullptr : &it->second;
}

Status Hierarchy::crash_node(Subnet& subnet, std::size_t i) {
  // Default power-loss model: the disk survives minus its un-fsynced
  // suffix (storage::DiskFault::Kind::kLoseSuffix).
  return crash_node(subnet, i, storage::DiskFault{});
}

Status Hierarchy::crash_node(Subnet& subnet, std::size_t i,
                             storage::DiskFault fault) {
  if (i >= subnet.nodes.size()) {
    return Error(Errc::kInvalidArgument, "no such validator slot");
  }
  if (!subnet.nodes[i]) {
    return Error(Errc::kInvalidArgument, "validator already crashed");
  }
  SubnetNode* dying = subnet.nodes[i].get();
  dying->stop();

  // Child subnet nodes hold a trusted read view into a parent replica;
  // re-point any view at the dying node to an alive sibling (nullptr when
  // the whole parent subnet is down — restart_node re-adopts them later).
  SubnetNode* replacement = nullptr;
  for (std::size_t j = 0; j < subnet.nodes.size(); ++j) {
    if (j != i && subnet.nodes[j]) {
      replacement = subnet.nodes[j].get();
      break;
    }
  }
  for (auto& s : subnets_) {
    if (s->parent != &subnet) continue;
    for (auto& n : s->nodes) {
      if (n && n->parent_view() == dying) n->attach_parent(replacement);
    }
  }

  // Fail-stop: the endpoint goes dark and the network forgets everything
  // it knew about it (subscriptions, gossip dedup). In-memory state dies
  // with the node; with durability enabled the disk survives below.
  const net::NodeId id = subnet.node_ids.at(i);
  network_.set_node_down(id, true);
  network_.reset_node(id);
  subnet.nodes[i].reset();

  if (storage::DurableStore* disk = disk_for(subnet, i)) {
    // Crash-time damage, deterministically seeded: same config seed, same
    // crash order => byte-identical medium at any thread count.
    ++crash_counter_;
    fault.seed ^= config_.seed ^
                  fnv1a(subnet.id.to_string() + "#" + std::to_string(i)) ^
                  (crash_counter_ * 0x9e3779b97f4a7c15ull);
    disk->crash(fault);
  }
  return ok_status();
}

Status Hierarchy::restart_node(Subnet& subnet, std::size_t i) {
  if (i >= subnet.nodes.size()) {
    return Error(Errc::kInvalidArgument, "no such validator slot");
  }
  if (subnet.nodes[i]) {
    return Error(Errc::kInvalidArgument, "validator is not crashed");
  }

  NodeConfig nc = node_config(subnet, i);
  nc.reuse_net_id = subnet.node_ids.at(i);
  auto node = std::make_unique<SubnetNode>(
      scheduler_, network_, registry_, nc, subnet.validator_keys.at(i),
      make_validator_set(subnet.validator_keys), subnet.genesis);
  if (subnet.parent != nullptr) {
    SubnetNode* view = nullptr;
    for (std::size_t off = 0; off < subnet.parent->size(); ++off) {
      const std::size_t slot = (i + off) % subnet.parent->size();
      if (subnet.parent->alive(slot)) {
        view = subnet.parent->nodes[slot].get();
        break;
      }
    }
    node->attach_parent(view);
  }

  network_.set_node_down(subnet.node_ids.at(i), false);
  subnet.nodes[i] = std::move(node);
  subnet.nodes[i]->start();
  subnet.nodes[i]->publish_view();

  // Re-adopt child nodes orphaned while every replica of this subnet was
  // crashed.
  for (auto& s : subnets_) {
    if (s->parent != &subnet) continue;
    for (auto& n : s->nodes) {
      if (n && n->parent_view() == nullptr) {
        n->attach_parent(subnet.nodes[i].get());
      }
    }
  }
  return ok_status();
}

void Hierarchy::install_cross_latency(net::NodeId id, const Subnet& home) {
  if (!config_.cross_subnet_latency.has_value()) return;
  const auto& x = *config_.cross_subnet_latency;
  for (const auto& s : subnets_) {
    if (s.get() == &home) continue;
    for (const net::NodeId other : s->node_ids) {
      network_.set_pair_latency(id, other, x.base, x.jitter);
    }
  }
}

Result<chain::Receipt> Hierarchy::send_cross(Subnet& from, const User& user,
                                             const core::SubnetId& dest,
                                             const Address& to,
                                             TokenAmount value,
                                             chain::MethodNum method,
                                             Bytes inner_params) {
  actors::CrossParams p;
  p.dest = dest;
  p.to = to;
  p.method = method;
  p.inner_params = std::move(inner_params);
  return call(from, user, chain::kScaAddr, actors::sca_method::kSendCross,
              encode(p), value);
}

}  // namespace hc::runtime
