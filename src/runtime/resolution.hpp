// Content-resolution protocol messages (paper §IV-C, Fig. 4).
//
// Checkpoints carry only the CIDs of cross-msg batches; the raw messages
// are resolved over per-subnet pubsub topics:
//   - push:    proactively publish a batch into the destination subnet
//   - pull:    ask the source subnet for the batch behind a CID
//   - resolve: answer a pull by publishing the batch into the requester
// Content addressing makes responses self-authenticating: receivers verify
// hash(content) == cid before accepting (storage::ContentStore::put_verified).
#pragma once

#include <optional>

#include "chain/block.hpp"
#include "common/cid.hpp"
#include "common/codec.hpp"
#include "core/checkpoint.hpp"
#include "core/subnet_id.hpp"
#include "crypto/schnorr.hpp"

namespace hc::runtime {

enum class ResolutionKind : std::uint8_t {
  kPush = 0,
  kPull = 1,
  kResolve = 2,
};

struct ResolutionMsg {
  ResolutionKind kind = ResolutionKind::kPush;
  Cid cid;
  Bytes content;            // batch bytes (push/resolve); empty for pull
  core::SubnetId reply_to;  // pull only: where to publish the resolve

  void encode_to(Encoder& e) const {
    e.u8(static_cast<std::uint8_t>(kind)).obj(cid).bytes(content).obj(reply_to);
  }
  [[nodiscard]] static Result<ResolutionMsg> decode_from(Decoder& d) {
    ResolutionMsg m;
    HC_TRY(kind, d.u8());
    if (kind > 2) return Error(Errc::kDecodeError, "bad resolution kind");
    HC_TRY(cid, d.obj<Cid>());
    HC_TRY(content, d.bytes());
    HC_TRY(reply, d.obj<core::SubnetId>());
    m.kind = static_cast<ResolutionKind>(kind);
    m.cid = cid;
    m.content = std::move(content);
    m.reply_to = std::move(reply);
    return m;
  }
};

/// Topic naming scheme shared by all nodes. Every name is interned with
/// the subnet id (DESIGN.md §17), so publishes and per-delivery dispatch
/// never build a string.
struct Topics {
  [[nodiscard]] static const std::string& msgs(const core::SubnetId& id) {
    return id.topic(core::SubnetTopic::kMsgs);
  }
  [[nodiscard]] static const std::string& consensus(
      const core::SubnetId& id) {
    return id.topic(core::SubnetTopic::kConsensus);
  }
  [[nodiscard]] static const std::string& signatures(
      const core::SubnetId& id) {
    return id.topic(core::SubnetTopic::kSigs);
  }
  [[nodiscard]] static const std::string& resolve(const core::SubnetId& id) {
    return id.topic(core::SubnetTopic::kResolve);
  }
};

/// A gossiped checkpoint signature share (paper Fig. 2's signature window).
struct SigShare {
  chain::Epoch epoch = 0;
  Cid checkpoint_cid;
  crypto::PublicKey signer;
  crypto::Signature signature;

  void encode_to(Encoder& e) const {
    e.i64(epoch).obj(checkpoint_cid).obj(signer).obj(signature);
  }
  [[nodiscard]] static Result<SigShare> decode_from(Decoder& d) {
    SigShare s;
    HC_TRY(epoch, d.i64());
    HC_TRY(cid, d.obj<Cid>());
    HC_TRY(signer, d.obj<crypto::PublicKey>());
    HC_TRY(sig, d.obj<crypto::Signature>());
    s.epoch = epoch;
    s.checkpoint_cid = cid;
    s.signer = signer;
    s.signature = sig;
    return s;
  }
};

/// Envelope gossiped on the signatures topic: the share plus, optionally,
/// the full checkpoint content behind share.checkpoint_cid. Honest signers
/// omit the content — every replica reconstructs the cut deterministically
/// from its own chain. Carrying it lets any observer attribute a signature
/// over a checkpoint it never cut itself, which is exactly the evidence an
/// equivocation watcher needs to assemble a core::FraudProof (content is
/// self-authenticating: accepted only when it hashes to the claimed cid).
struct SigGossip {
  SigShare share;
  std::optional<core::Checkpoint> checkpoint;

  void encode_to(Encoder& e) const {
    e.obj(share).boolean(checkpoint.has_value());
    if (checkpoint) e.obj(*checkpoint);
  }
  [[nodiscard]] static Result<SigGossip> decode_from(Decoder& d) {
    SigGossip g;
    HC_TRY(share, d.obj<SigShare>());
    HC_TRY(has_cp, d.boolean());
    g.share = std::move(share);
    if (has_cp) {
      HC_TRY(cp, d.obj<core::Checkpoint>());
      g.checkpoint = std::move(cp);
    }
    return g;
  }
};

}  // namespace hc::runtime
