// Hierarchy: end-to-end orchestration of a hierarchical-consensus system.
//
// This is the library's top-level API (what Fig. 1 depicts): boot a rootnet,
// spawn subnets at any point of the tree (deploy SA -> validators join ->
// SA registers with the parent SCA -> child chain boots), and drive
// cross-net operations. All nodes share one discrete-event scheduler and
// one simulated network, so runs are reproducible.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/node.hpp"
#include "sim/parallel.hpp"

namespace hc::runtime {

struct HierarchyConfig {
  std::uint64_t seed = 1;
  sim::LatencyModel latency = sim::LatencyModel::lan();
  net::GossipConfig gossip;

  /// Mempool capacity policy installed on every node of every subnet
  /// (defaults keep pools unbounded except for the nonce-gap window;
  /// DESIGN.md §14).
  chain::MempoolConfig mempool;

  /// Resolved-content cache cap installed on every node (DESIGN.md §14);
  /// default unbounded. Chaos runs bound it and assert the observed peaks
  /// in the bounded-queues invariant.
  common::CapacityPolicy content_store;

  /// Per-node chain retention window (DESIGN.md §17); default unbounded
  /// (full history — the pre-§17 behavior). City-scale runs bound it to
  /// flatten the per-node memory ceiling; the window must exceed worst
  /// replica lag (catch-up reads pruned blocks).
  common::CapacityPolicy chain_retention;

  /// Export per-node memory gauges (node_mem_bytes/node_mem_peak_bytes,
  /// DESIGN.md §17). Off by default: existing exports stay byte-identical.
  bool mem_metrics = false;

  /// Top-down circuit breaker (SCA, DESIGN.md §14), baked into every
  /// chain's genesis SCA state. 0 disables each trip condition.
  std::uint64_t topdown_window_cap = 0;
  chain::Epoch breaker_stall_epochs = 0;

  /// Rootnet parameters (consensus type; checkpoint fields unused at root).
  core::SubnetParams root_params;
  std::size_t root_validators = 4;
  consensus::EngineConfig root_engine;

  /// Genesis balance of the faucet account used to fund users/validators.
  TokenAmount faucet_balance = TokenAmount::whole(1000000000);

  /// Worker threads for windowed parallel execution (one scheduler lane
  /// per subnet). 1 keeps execution sequential but still window-driven,
  /// so 1- and N-thread runs of the same seed replay byte-identically
  /// (DESIGN.md §11).
  std::size_t threads = 1;

  /// Durability (DESIGN.md §15): when enabled, every validator gets a
  /// simulated durable medium owned by the hierarchy. Nodes write-ahead
  /// log committed blocks, checkpoint cuts and consensus vote state;
  /// crash_node applies a disk fault (default: lose the un-fsynced
  /// suffix) instead of total state loss, and restart_node recovers by
  /// WAL replay + network tail catch-up instead of a genesis rebuild.
  /// Off by default: volatile topologies stay byte-identical to
  /// pre-durability builds.
  struct Durability {
    bool enabled = false;
    /// Lazy fsync cadence for block records (vote state always fsyncs).
    std::uint32_t fsync_every_blocks = 4;
  };
  Durability durability;

  /// Optional latency override installed on every cross-subnet node pair.
  /// Models the paper's deployment (co-located subnet validators, WAN
  /// between subnets) and widens the executor's conservative lookahead
  /// (= the minimum cross-lane delay), and with it the usable parallelism.
  struct CrossSubnetLatency {
    sim::Duration base = 0;
    sim::Duration jitter = 0;
  };
  std::optional<CrossSubnetLatency> cross_subnet_latency;
};

/// A spawned subnet (or the rootnet): its nodes and identity. Slots in
/// `nodes` are stable: a crashed validator leaves a null entry that
/// restart_node refills (same key, same transport id).
class Subnet {
 public:
  core::SubnetId id;
  Address sa;  // SA address in the parent chain; invalid for root
  core::SubnetParams params;
  consensus::EngineConfig engine;
  Subnet* parent = nullptr;
  /// Scheduler lane shared by this subnet's nodes (root subnet included;
  /// lane 0 stays reserved for driver/chaos events).
  sim::DomainId domain = 0;
  std::vector<crypto::KeyPair> validator_keys;
  std::vector<std::unique_ptr<SubnetNode>> nodes;
  /// Transport id per slot, kept across crash/restart cycles.
  std::vector<net::NodeId> node_ids;
  /// Shared immutable genesis (flyweight, DESIGN.md §17): every replica's
  /// chain store and every restart point at this ONE flushed tree instead
  /// of private snapshots. Restarted validators replay from here (crash
  /// loses all local state) and catch up via the catch-up protocol.
  std::shared_ptr<const chain::StateTree> genesis;

  [[nodiscard]] SubnetNode& node(std::size_t i = 0) { return *nodes.at(i); }
  [[nodiscard]] const SubnetNode& node(std::size_t i = 0) const {
    return *nodes.at(i);
  }
  [[nodiscard]] std::size_t size() const { return nodes.size(); }

  /// Whether validator slot `i` is currently running.
  [[nodiscard]] bool alive(std::size_t i) const {
    return i < nodes.size() && nodes[i] != nullptr;
  }
  [[nodiscard]] std::size_t alive_count() const;
  /// First alive node — the default endpoint for client API calls.
  /// Throws when every validator of the subnet is crashed.
  [[nodiscard]] SubnetNode& api_node() const;
};

/// A user identity with per-subnet nonce tracking handled by the caller
/// through Hierarchy::call (nonces are read from chain state).
struct User {
  crypto::KeyPair key = crypto::KeyPair::from_label("unset");
  Address addr;
};

/// Declarative subnet-tree topology for static genesis-time construction
/// (DESIGN.md §17). One node of the spec = one subnet; the k-th child's SA
/// address is Address::id(100+k) in its parent chain — exactly what the
/// parent's Init actor (nonce 100) would have assigned had the subnets
/// been spawned through the deploy→join→register protocol. Registration
/// state (SA actor, SCA subnet entry, escrowed collateral + circulating
/// supply) is fabricated directly into each genesis, so booting a
/// 1000-subnet city costs seconds instead of simulating thousands of
/// spawn round-trips.
struct TreeSpec {
  std::string name = "root";
  core::SubnetParams params;
  consensus::EngineConfig engine;
  std::size_t n_validators = 1;
  /// Per-validator collateral recorded in the parent's SA/SCA entries
  /// (fabricated escrow; nothing to fund or join at runtime).
  TokenAmount stake_each = TokenAmount::whole(10);
  /// Pre-funded cold accounts Address::id(1000+j), j < accounts — account
  /// mass without per-account keypairs (a keyed identity costs ~100× the
  /// bytes of an id address at 10⁶ scale).
  std::size_t accounts = 0;
  TokenAmount account_balance = TokenAmount::whole(1);
  /// Pre-funded keyed sender accounts for load generators, derived as
  /// KeyPair::from_label(name + "-hot-" + i) — benches re-derive the same
  /// keys to sign traffic.
  std::size_t hot_accounts = 0;
  TokenAmount hot_balance = TokenAmount::whole(100);
  std::vector<TreeSpec> children;

  /// Subnets in this spec, self included.
  [[nodiscard]] std::size_t subnet_count() const {
    std::size_t n = 1;
    for (const auto& c : children) n += c.subnet_count();
    return n;
  }
};

class Hierarchy {
 public:
  explicit Hierarchy(HierarchyConfig config);

  /// Static genesis-time boot of a whole subnet tree (DESIGN.md §17):
  /// ids, validator sets and SA/SCA registration state are fabricated
  /// into each chain's genesis (see TreeSpec) and every chain boots
  /// immediately — no spawn protocol, no cross-net funding. The spec
  /// root replaces config.root_params/root_validators/root_engine. The
  /// faucet account still exists on the root chain, so make_user() and
  /// dynamic spawn_subnet() compose with a static tree.
  Hierarchy(HierarchyConfig config, const TreeSpec& spec);

  ~Hierarchy();

  Hierarchy(const Hierarchy&) = delete;
  Hierarchy& operator=(const Hierarchy&) = delete;

  [[nodiscard]] Subnet& root() { return *root_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] const net::Network& network() const { return network_; }
  /// The windowed executor run_for/run_until drive time through.
  [[nodiscard]] sim::ParallelExecutor& executor() { return executor_; }
  /// Metrics + traces for this hierarchy. Owned (not the process default),
  /// so same-seed runs export byte-identical snapshots.
  [[nodiscard]] obs::Obs& obs() { return obs_; }

  /// Advance simulated time.
  void run_for(sim::Duration d);

  /// Run until `pred` holds or `max` elapses; returns whether it held.
  bool run_until(const std::function<bool()>& pred, sim::Duration max,
                 sim::Duration step = 50 * sim::kMillisecond);

  /// Create a user identity and fund it on the rootnet from the faucet.
  Result<User> make_user(const std::string& label, TokenAmount funds,
                         sim::Duration timeout = 30 * sim::kSecond);

  /// Submit a signed call from `user` on `subnet` (auto nonce/gas) and wait
  /// for inclusion. Returns the execution receipt.
  Result<chain::Receipt> call(Subnet& subnet, const User& user,
                              const Address& to, chain::MethodNum method,
                              Bytes params, TokenAmount value,
                              sim::Duration timeout = 60 * sim::kSecond);

  /// Fire-and-forget variant of call (no waiting).
  Status submit(Subnet& subnet, const User& user, const Address& to,
                chain::MethodNum method, Bytes params, TokenAmount value);

  /// Spawn a child subnet of `parent`: deploys the SA, funds fresh
  /// validators on the parent chain, joins them with `stake_each`, waits
  /// for SCA registration, then boots the child chain's nodes.
  Result<Subnet*> spawn_subnet(Subnet& parent, const std::string& name,
                               core::SubnetParams params,
                               std::size_t n_validators,
                               TokenAmount stake_each,
                               consensus::EngineConfig engine = {},
                               sim::Duration timeout = 120 * sim::kSecond);

  /// Cross-net value transfer / invocation from `user` on `from`, routed
  /// per paper §IV-A (top-down, bottom-up, or path). Returns once the SCA
  /// of `from` accepted the message (delivery is asynchronous).
  Result<chain::Receipt> send_cross(Subnet& from, const User& user,
                                    const core::SubnetId& dest,
                                    const Address& to, TokenAmount value,
                                    chain::MethodNum method = 0,
                                    Bytes inner_params = {});

  /// Crash validator `i` of `subnet` (fail-stop with state loss): stops its
  /// engine, marks its transport endpoint down, forgets its network-side
  /// state, and destroys the node. Child subnet nodes whose trusted parent
  /// view pointed at it are re-pointed to an alive replica (or detached if
  /// none is left). Idempotent errors: out-of-range / already crashed.
  /// With durability enabled the validator's disk survives with the
  /// default power-loss fault (un-fsynced suffix lost).
  Status crash_node(Subnet& subnet, std::size_t i);

  /// Crash with an explicit disk outcome (DESIGN.md §15): kKeepAll /
  /// kLoseSuffix / kTornTail / kBitFlip damage the medium in place;
  /// kLoseDisk models total medium loss (restart rebuilds from genesis
  /// and catches up over the network). The fault seed is mixed with a
  /// deterministic per-crash derivation, so same-seed runs replay the
  /// same damage. No-op on the disk when durability is disabled.
  Status crash_node(Subnet& subnet, std::size_t i, storage::DiskFault fault);

  /// Restart a previously crashed validator: rebuilds the node from the
  /// subnet's genesis snapshot under the SAME key and transport id, brings
  /// the endpoint back up, re-attaches parent views (its own, and any child
  /// nodes orphaned while every replica was down) and starts it. The node
  /// catches up via the consensus catch-up protocol and re-signs checkpoint
  /// cuts during replay, resuming its checkpointing duty.
  Status restart_node(Subnet& subnet, std::size_t i);

  /// All subnets spawned so far (including root), tree order.
  [[nodiscard]] const std::vector<std::unique_ptr<Subnet>>& subnets() const {
    return subnets_;
  }

  /// The registry shared by every chain in the hierarchy.
  [[nodiscard]] const chain::ActorRegistry& registry() const {
    return registry_;
  }

  /// The configuration this hierarchy was built with (invariant checks
  /// compare observed queue depths against its caps).
  [[nodiscard]] const HierarchyConfig& config() const { return config_; }

  /// The durable medium of validator slot `i` of `subnet`, created on
  /// first use. nullptr when durability is disabled. Exposed so recovery
  /// tests and invariants can inspect WAL contents.
  [[nodiscard]] storage::DurableStore* disk_for(const Subnet& subnet,
                                                std::size_t i);
  /// Const lookup variant: nullptr when the slot never had a disk.
  [[nodiscard]] const storage::DurableStore* find_disk(const Subnet& subnet,
                                                       std::size_t i) const;

 private:
  /// Install the cross-subnet latency override (when configured) between
  /// `id` and every node of every OTHER subnet spawned so far.
  void install_cross_latency(net::NodeId id, const Subnet& home);

  /// Scheduler/obs/actor wiring shared by both constructors.
  void init_common();

  /// The per-node config every boot path derives from (subnet identity +
  /// hierarchy-wide policies); restart_node adds reuse_net_id on top.
  [[nodiscard]] NodeConfig node_config(const Subnet& subnet,
                                       std::size_t slot);

  /// Boot one composed subnet: flush + share the genesis, construct its
  /// validator nodes, attach parent views round-robin, start. Shared by
  /// the root boot, spawn_subnet and the static tree builder.
  void boot_subnet(Subnet& subnet, chain::StateTree genesis);

  // Static construction (DESIGN.md §17). Staged holds a composed-but-not-
  // booted subnet; composition runs bottom-up (a parent genesis embeds its
  // children's registration + circulating supply), boot runs top-down
  // (children attach views to running parent nodes).
  struct Staged;
  [[nodiscard]] Staged compose_static(const TreeSpec& spec, Subnet* parent,
                                      const Address& sa);
  void boot_staged(Staged staged);

  HierarchyConfig config_;
  obs::Obs obs_;  // declared before network_/scheduler users
  sim::Scheduler scheduler_;
  net::Network network_;
  sim::ParallelExecutor executor_;
  chain::ActorRegistry registry_;
  crypto::KeyPair faucet_;
  std::vector<std::unique_ptr<Subnet>> subnets_;
  Subnet* root_ = nullptr;
  std::uint64_t label_counter_ = 0;
  /// Per-validator durable media, keyed "subnet-id#slot" (stable across
  /// crash/restart cycles — that is the point). Populated lazily, only
  /// when durability is enabled.
  std::map<std::string, storage::DurableStore> disks_;
  /// Monotone crash ordinal, mixed into derived disk-fault seeds.
  std::uint64_t crash_counter_ = 0;
};

}  // namespace hc::runtime
