// CheckpointWatcher: autonomous equivocation detection over checkpoint
// signature gossip (paper §III-B fraud proofs; cf. Tendermint's evidence
// pool and the accountability analysis in "BFT Protocol Forensics").
//
// Every node feeds the watcher two evidence streams: verified signature
// shares from the subnet's sigs topic (epoch, cid, signer, signature) and
// checkpoint contents it can attribute to a cid (its own deterministic
// cut, or content carried inside a SigGossip envelope). One signer behind
// two cids for the same epoch is equivocation; once the contents of both
// sides are known the watcher assembles a core::FraudProof carrying the
// overlapping signatures. Per-(epoch, signer) dedup ensures one proof per
// offence per watcher — on-chain dedup against N racing watchers is the
// SCA's job (fraud digests + slash records).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/fraud.hpp"

namespace hc::runtime {

/// Adversary behaviors a validator node can be armed with (chaos plans
/// flip these at runtime; kNone restores honesty).
enum class ByzantineBehavior : std::uint8_t {
  kNone = 0,
  /// Sign the honest cut AND a forged variant of it each period.
  kEquivocate,
  /// Sign nothing and never submit (omission; not provable fraud).
  kWithhold,
  /// Equivocate with a forged checkpoint carrying an inflated
  /// CrossMsgMeta value (a firewall-bound attack, paper §II).
  kForgeMeta,
  /// Re-submit the last parent-accepted checkpoint every period.
  kStaleResubmit,
};

[[nodiscard]] const char* to_string(ByzantineBehavior b);

class CheckpointWatcher {
 public:
  CheckpointWatcher() = default;
  /// `max_epochs` caps how many distinct epochs of evidence are retained
  /// at once (0 = unbounded). When a new epoch would exceed the cap the
  /// oldest tracked epoch is evicted — deterministic, since the evidence
  /// map is ordered — and counted in `evidence_evicted()`. Protects the
  /// watcher from unbounded growth when parent acceptance stalls and the
  /// prune_below horizon stops advancing (DESIGN.md §14).
  explicit CheckpointWatcher(std::size_t max_epochs)
      : max_epochs_(max_epochs) {}

  /// Record checkpoint content attributable to its cid. Returns any fraud
  /// proofs this observation completes.
  [[nodiscard]] std::vector<core::FraudProof> record_checkpoint(
      const core::Checkpoint& cp);

  /// Record one signature share already verified against the cid it
  /// claims. Returns any fraud proofs this observation completes.
  [[nodiscard]] std::vector<core::FraudProof> record_share(
      chain::Epoch epoch, const Cid& cid, const crypto::PublicKey& signer,
      const crypto::Signature& signature);

  /// Drop evidence for epochs below `epoch` (bounded memory; the caller
  /// keeps a horizon of a few periods behind parent acceptance so late
  /// forged shares for recently-accepted epochs stay provable).
  void prune_below(chain::Epoch epoch);

  /// Equivocating (epoch, signer) pairs this watcher has proven so far.
  [[nodiscard]] std::size_t equivocations_detected() const {
    return reported_.size();
  }

  /// Distinct epochs currently holding evidence.
  [[nodiscard]] std::size_t evidence_epochs() const {
    return evidence_.size();
  }
  /// Epochs evicted by the retention cap (not by prune_below).
  [[nodiscard]] std::uint64_t evidence_evicted() const {
    return evidence_evicted_;
  }

 private:
  struct EpochEvidence {
    /// cid digest bytes -> checkpoint content (once attributable).
    std::map<Bytes, core::Checkpoint> contents;
    /// cid digest bytes -> signer key bytes -> signature.
    std::map<Bytes, std::map<Bytes, core::CheckpointSignature>> sigs;
  };

  /// Scan every cid pair of `epoch` for overlapping signers not yet
  /// reported whose contents are both known; assemble one proof per pair.
  [[nodiscard]] std::vector<core::FraudProof> try_assemble(chain::Epoch epoch);

  /// Make room for evidence at `epoch` under the retention cap, evicting
  /// the oldest tracked epochs if needed. Returns false when the arrival
  /// itself is older than everything retained and must be shed instead.
  [[nodiscard]] bool reserve_epoch(chain::Epoch epoch);

  std::size_t max_epochs_ = 0;
  std::uint64_t evidence_evicted_ = 0;
  std::map<chain::Epoch, EpochEvidence> evidence_;
  /// (epoch, signer key bytes) pairs already covered by an emitted proof.
  std::set<std::pair<chain::Epoch, Bytes>> reported_;
};

}  // namespace hc::runtime
