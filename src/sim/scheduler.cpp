#include "sim/scheduler.hpp"

#include <cassert>
#include <cstdio>
#include <limits>

namespace hc::sim {

EventId Scheduler::schedule(Duration delay, Callback fn) {
  assert(delay >= 0 && "cannot schedule in the past");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Scheduler::schedule_at(Time when, Callback fn) {
  assert(when >= now_ && "cannot schedule in the past");
  const EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  update_queue_gauge();
  return id;
}

void Scheduler::cancel(EventId id) {
  callbacks_.erase(id);
  update_queue_gauge();
}

void Scheduler::attach_obs(obs::Obs* obs) {
  if (obs == nullptr) {
    events_run_counter_ = nullptr;
    queue_depth_ = nullptr;
    return;
  }
  events_run_counter_ = &obs->metrics.counter("sim_events_run_total");
  queue_depth_ = &obs->metrics.gauge("sim_queue_depth");
  update_queue_gauge();
}

std::size_t Scheduler::run_until(Time deadline) {
  std::size_t ran = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    if (step()) ++ran;
  }
  if (now_ < deadline) now_ = deadline;
  return ran;
}

std::size_t Scheduler::run_all() {
  std::size_t ran = 0;
  while (step()) ++ran;
  return ran;
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) continue;  // cancelled
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    update_queue_gauge();
    assert(ev.when >= now_);
    now_ = ev.when;
    ++events_run_;
    if (events_run_counter_ != nullptr) events_run_counter_->inc();
    fn();
    return true;
  }
  return false;
}

std::string format_time(Time t) {
  const double secs = static_cast<double>(t) / static_cast<double>(kSecond);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", secs);
  return buf;
}

}  // namespace hc::sim
