#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "obs/profile.hpp"

namespace hc::sim {

thread_local Scheduler::LaneCtx Scheduler::t_lane_ctx_;
thread_local Scheduler::ScopeCtx Scheduler::t_scope_ctx_;

Scheduler::Scheduler() {
  add_domain();  // domain 0: the driver/global lane
}

Scheduler::~Scheduler() = default;

Time Scheduler::now() const {
  const LaneCtx& ctx = t_lane_ctx_;
  if (ctx.sched == this && ctx.lane != nullptr) return ctx.lane->now;
  return now_;
}

DomainId Scheduler::add_domain() {
  const auto domain = static_cast<DomainId>(lanes_.size());
  assert(domain < (DomainId{1} << (64 - kSeqBits)) && "domain space full");
  auto lane = std::make_unique<Lane>();
  lane->domain = domain;
  lane->now = now_;
  lanes_.push_back(std::move(lane));
  return domain;
}

DomainId Scheduler::current_domain() const {
  const LaneCtx& ctx = t_lane_ctx_;
  if (ctx.sched == this && ctx.lane != nullptr) return ctx.domain;
  if (t_scope_ctx_.sched == this) return t_scope_ctx_.domain;
  return kGlobalDomain;
}

EventId Scheduler::schedule(Duration delay, Callback fn) {
  assert(delay >= 0 && "cannot schedule in the past");
  return insert(current_domain(), now() + delay, std::move(fn));
}

EventId Scheduler::schedule_at(Time when, Callback fn) {
  assert(when >= now() && "cannot schedule in the past");
  return insert(current_domain(), when, std::move(fn));
}

EventId Scheduler::schedule_in(DomainId domain, Duration delay, Callback fn) {
  assert(delay >= 0 && "cannot schedule in the past");
  return insert(domain, now() + delay, std::move(fn));
}

EventId Scheduler::insert(DomainId domain, Time when, Callback fn) {
  assert(domain < lanes_.size() && "unknown domain");
  LaneCtx& ctx = t_lane_ctx_;
  const bool in_lane = ctx.sched == this && ctx.lane != nullptr;
  if (in_lane && !ctx.exclusive && ctx.domain != domain) {
    // Cross-lane send from inside a parallel window: defer through the
    // source lane's outbox; the barrier merges it into the destination
    // heap single-threaded. The id comes from the source lane's counter
    // (deterministic — only this thread runs this lane).
    Lane& src = *ctx.lane;
    const EventId id = make_id(ctx.domain, src.next_seq++);
    src.outbox.push_back(Outgoing{domain, when, id, std::move(fn)});
    return id;
  }
  Lane& dest = *lanes_[domain];
  const EventId id = make_id(domain, dest.next_seq++);
  dest.heap.push_back(Event{when, id});
  std::push_heap(dest.heap.begin(), dest.heap.end(), std::greater<>{});
  dest.callbacks.emplace(id, std::move(fn));
  update_queue_gauge();
  return id;
}

void Scheduler::cancel(EventId id) {
  const auto domain = static_cast<DomainId>(id >> kSeqBits);
  if (domain >= lanes_.size()) return;
  const LaneCtx& ctx = t_lane_ctx_;
  const bool in_lane = ctx.sched == this && ctx.lane != nullptr;
  // Cross-lane cancel from a worker would race the owning lane; it is a
  // deliberate no-op (only same-lane engine timers are ever cancelled).
  if (in_lane && !ctx.exclusive && ctx.domain != domain) return;
  Lane& lane = *lanes_[domain];
  if (lane.callbacks.erase(id) == 0) return;
  ++lane.cancelled;
  maybe_compact(lane);
  update_queue_gauge();
}

void Scheduler::skip_cancelled(Lane& lane) {
  while (!lane.heap.empty() &&
         lane.callbacks.find(lane.heap.front().id) == lane.callbacks.end()) {
    std::pop_heap(lane.heap.begin(), lane.heap.end(), std::greater<>{});
    lane.heap.pop_back();
    if (lane.cancelled > 0) --lane.cancelled;
  }
}

void Scheduler::maybe_compact(Lane& lane) {
  // Lazy compaction: drop cancelled residue once it outweighs the live
  // entries, so mass-cancellation cannot bloat the heap unboundedly while
  // the amortized cost per cancel stays O(log n).
  if (lane.cancelled * 2 <= lane.heap.size()) return;
  std::erase_if(lane.heap, [&lane](const Event& ev) {
    return lane.callbacks.find(ev.id) == lane.callbacks.end();
  });
  std::make_heap(lane.heap.begin(), lane.heap.end(), std::greater<>{});
  lane.cancelled = 0;
}

void Scheduler::run_top(Lane& lane, bool exclusive) {
  const Event ev = lane.heap.front();
  std::pop_heap(lane.heap.begin(), lane.heap.end(), std::greater<>{});
  lane.heap.pop_back();
  auto it = lane.callbacks.find(ev.id);
  assert(it != lane.callbacks.end() && "skip_cancelled must run first");
  Callback fn = std::move(it->second);
  lane.callbacks.erase(it);
  assert(ev.when >= lane.now);
  lane.now = ev.when;
  if (exclusive && ev.when > now_) now_ = ev.when;
  const LaneCtx saved = t_lane_ctx_;
  t_lane_ctx_ = LaneCtx{this, &lane, lane.domain, exclusive};
  events_run_.fetch_add(1, std::memory_order_relaxed);
  if (events_run_counter_ != nullptr) events_run_counter_->inc();
  update_queue_gauge();
  fn();
  t_lane_ctx_ = saved;
}

Scheduler::Lane* Scheduler::find_next_lane() {
  Lane* best = nullptr;
  for (auto& lp : lanes_) {
    skip_cancelled(*lp);
    if (lp->heap.empty()) continue;
    if (best == nullptr || best->heap.front() > lp->heap.front()) {
      best = lp.get();
    }
  }
  return best;
}

std::size_t Scheduler::run_until(Time deadline) {
  static const obs::PhaseId dispatch_phase =
      obs::Profiler::instance().phase("scheduler/dispatch");
  std::size_t ran = 0;
  // Deferred scope: a run_until that finds no runnable event costs nothing.
  obs::ProfileScope prof;
  for (;;) {
    Lane* lane = find_next_lane();
    if (lane == nullptr || lane->heap.front().when > deadline) break;
    if (!prof.active()) prof.enter(dispatch_phase);
    run_top(*lane, /*exclusive=*/true);
    ++ran;
  }
  if (now_ < deadline) now_ = deadline;
  for (auto& lp : lanes_) lp->now = std::max(lp->now, now_);
  update_queue_gauge();
  return ran;
}

std::size_t Scheduler::run_all() {
  std::size_t ran = 0;
  while (step()) ++ran;
  return ran;
}

bool Scheduler::step() {
  Lane* lane = find_next_lane();
  if (lane == nullptr) return false;
  run_top(*lane, /*exclusive=*/true);
  return true;
}

std::size_t Scheduler::pending() const {
  std::size_t n = 0;
  for (const auto& lp : lanes_) n += lp->callbacks.size();
  return n;
}

std::size_t Scheduler::queue_size() const {
  std::size_t n = 0;
  for (const auto& lp : lanes_) n += lp->heap.size();
  return n;
}

void Scheduler::merge_outboxes() {
  // Single-threaded (barrier) merge: lanes in domain order, entries in
  // append order. Heap position depends only on the unique (when, id)
  // key, so the merged order is independent of worker interleaving.
  for (auto& lp : lanes_) {
    for (Outgoing& out : lp->outbox) {
      Lane& dest = *lanes_[out.dest];
      const Time when = std::max(out.when, dest.now);
      dest.heap.push_back(Event{when, out.id});
      std::push_heap(dest.heap.begin(), dest.heap.end(), std::greater<>{});
      dest.callbacks.emplace(out.id, std::move(out.fn));
    }
    lp->outbox.clear();
  }
}

void Scheduler::update_queue_gauge() {
  if (queue_depth_ == nullptr) return;
  const LaneCtx& ctx = t_lane_ctx_;
  // Inside a parallel window the gauge would race other lanes; it is
  // refreshed at the next barrier instead.
  if (ctx.sched == this && ctx.lane != nullptr && !ctx.exclusive) return;
  queue_depth_->set(static_cast<std::int64_t>(pending()));
}

void Scheduler::attach_obs(obs::Obs* obs) {
  if (obs == nullptr) {
    events_run_counter_ = nullptr;
    queue_depth_ = nullptr;
    return;
  }
  events_run_counter_ = &obs->metrics.counter("sim_events_run_total");
  queue_depth_ = &obs->metrics.gauge("sim_queue_depth");
  update_queue_gauge();
}

Scheduler::DomainScope::DomainScope(Scheduler& sched, DomainId domain)
    : prev_sched_(t_scope_ctx_.sched), prev_domain_(t_scope_ctx_.domain) {
  t_scope_ctx_ = ScopeCtx{&sched, domain};
}

Scheduler::DomainScope::~DomainScope() {
  t_scope_ctx_ = ScopeCtx{prev_sched_, prev_domain_};
}

std::string format_time(Time t) {
  const double secs = static_cast<double>(t) / static_cast<double>(kSecond);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", secs);
  return buf;
}

}  // namespace hc::sim
