// Discrete-event scheduler: the heartbeat of the whole simulation.
//
// Every asynchronous action in the system — a gossip hop, a block proposal
// timer, a consensus timeout, a checkpoint window — is an event scheduled
// here. Events are partitioned into per-domain *lanes*: domain 0 is the
// driver/global lane (test drivers, chaos fault injection, hierarchy
// bootstrap), and the runtime assigns one further domain per subnet. Lanes
// let sim::ParallelExecutor run independent subnets on worker threads
// inside conservative time windows while cross-lane sends travel through
// per-lane outboxes merged at window barriers.
//
// Event ids are globally unique — the origin domain lives in the top bits,
// a per-lane sequence number in the low bits — so the (when, id) order is
// total and runs are deterministic regardless of worker count. Used
// directly (run_until / run_all / step), the scheduler behaves exactly
// like the classic single-heap, FIFO-stable event loop: everything lands
// in lane 0 and (when, id) degenerates to (when, schedule order).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "obs/obs.hpp"
#include "sim/clock.hpp"

namespace hc::sim {

class ParallelExecutor;

/// Handle for cancelling a scheduled event. Encodes the origin lane, so
/// ids are globally unique and (when, id) is a total order with no ties.
using EventId = std::uint64_t;

/// Identifies an event lane. Domain 0 is the driver/global lane; the
/// runtime creates one domain per subnet via add_domain().
using DomainId = std::uint32_t;

constexpr DomainId kGlobalDomain = 0;

class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler();
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time: the running lane's clock when called from
  /// inside an event callback, the global (window) clock otherwise.
  [[nodiscard]] Time now() const;

  /// Create a new event lane and return its domain id. Must be called
  /// from driver context or an exclusive (single-threaded) event — never
  /// from inside a parallel window.
  DomainId add_domain();

  [[nodiscard]] std::size_t domain_count() const { return lanes_.size(); }

  /// The domain new events land in by default: the running lane's domain
  /// inside an event callback, an active DomainScope override otherwise,
  /// else domain 0.
  [[nodiscard]] DomainId current_domain() const;

  /// Schedule `fn` to run `delay` from now (delay >= 0; 0 = "next tick",
  /// still asynchronous). Returns an id usable with cancel().
  EventId schedule(Duration delay, Callback fn);

  /// Schedule at an absolute time (>= now()).
  EventId schedule_at(Time when, Callback fn);

  /// Schedule into a specific domain's lane. From inside a parallel
  /// window, a cross-domain send is deferred through the source lane's
  /// outbox and merged into the destination heap at the next barrier;
  /// `delay` must then be >= the executor's lookahead (network latency
  /// guarantees this for all deliveries).
  EventId schedule_in(DomainId domain, Duration delay, Callback fn);

  /// Cancel a pending event. Safe to call for already-fired ids (no-op).
  /// Only same-lane cancellation is supported from inside a parallel
  /// window (engine timers are always same-lane); a cross-lane cancel
  /// from a worker is a deliberate no-op.
  void cancel(EventId id);

  /// Run events until the queue is empty or `deadline` is passed; the
  /// clock stops at the earlier of the two. Returns events run. This is
  /// the single-threaded path; Hierarchy routes through ParallelExecutor.
  std::size_t run_until(Time deadline);

  /// Run until the queue drains completely.
  std::size_t run_all();

  /// Run exactly one event if present; returns false when idle.
  bool step();

  /// Live (not-yet-fired, not-cancelled) event count across all lanes.
  [[nodiscard]] std::size_t pending() const;

  /// Total heap entries across all lanes, including cancelled residue
  /// that has not been popped or compacted yet. Lazy compaction bounds
  /// this at ~2x pending() per lane.
  [[nodiscard]] std::size_t queue_size() const;

  /// Total events fired so far.
  [[nodiscard]] std::uint64_t events_run() const {
    return events_run_.load(std::memory_order_relaxed);
  }

  /// Route scheduler metrics (events-run counter, queue-depth gauge) into
  /// `obs`'s registry. Pass nullptr to detach.
  void attach_obs(obs::Obs* obs);

  /// RAII default-domain override for driver code constructing components
  /// whose timers belong in a subnet's lane (e.g. SubnetNode::start()
  /// arming consensus timers before any event has run in that lane).
  class DomainScope {
   public:
    DomainScope(Scheduler& sched, DomainId domain);
    ~DomainScope();
    DomainScope(const DomainScope&) = delete;
    DomainScope& operator=(const DomainScope&) = delete;

   private:
    Scheduler* prev_sched_;
    DomainId prev_domain_;
  };

 private:
  friend class ParallelExecutor;

  static constexpr int kSeqBits = 40;  // 24-bit domain, 40-bit sequence
  static constexpr EventId make_id(DomainId domain, std::uint64_t seq) {
    return (static_cast<EventId>(domain) << kSeqBits) | seq;
  }

  struct Event {
    Time when;
    EventId id;
    // Ordered as a min-heap via operator> with std::greater. Ids are
    // globally unique, so this order has no ties and heap pops are
    // deterministic regardless of insertion interleaving.
    friend bool operator>(const Event& a, const Event& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  /// A cross-lane send deferred until the next window barrier.
  struct Outgoing {
    DomainId dest;
    Time when;
    EventId id;
    Callback fn;
  };

  struct Lane {
    DomainId domain = 0;
    Time now = 0;
    std::uint64_t next_seq = 1;
    std::size_t cancelled = 0;  // cancelled entries still in the heap
    std::vector<Event> heap;    // min-heap by (when, id) via std::greater
    std::unordered_map<EventId, Callback> callbacks;
    std::vector<Outgoing> outbox;
  };

  /// Which lane (if any) this thread is executing, and whether it holds
  /// exclusive (single-threaded) access to the whole scheduler.
  struct LaneCtx {
    Scheduler* sched = nullptr;
    Lane* lane = nullptr;
    DomainId domain = 0;
    bool exclusive = false;
  };
  struct ScopeCtx {
    Scheduler* sched = nullptr;
    DomainId domain = 0;
  };
  static thread_local LaneCtx t_lane_ctx_;
  static thread_local ScopeCtx t_scope_ctx_;

  EventId insert(DomainId domain, Time when, Callback fn);
  void run_top(Lane& lane, bool exclusive);
  Lane* find_next_lane();
  static void skip_cancelled(Lane& lane);
  static void maybe_compact(Lane& lane);
  void merge_outboxes();
  void update_queue_gauge();

  Time now_ = 0;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::atomic<std::uint64_t> events_run_{0};
  obs::Counter* events_run_counter_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
};

}  // namespace hc::sim
