// Discrete-event scheduler: the heartbeat of the whole simulation.
//
// Every asynchronous action in the system — a gossip hop, a block proposal
// timer, a consensus timeout, a checkpoint window — is an event scheduled
// here. Events at the same timestamp run in schedule order (stable FIFO),
// which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "obs/obs.hpp"
#include "sim/clock.hpp"

namespace hc::sim {

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` to run `delay` from now (delay >= 0; 0 = "next tick",
  /// still asynchronous). Returns an id usable with cancel().
  EventId schedule(Duration delay, Callback fn);

  /// Schedule at an absolute time (>= now()).
  EventId schedule_at(Time when, Callback fn);

  /// Cancel a pending event. Safe to call for already-fired ids (no-op).
  void cancel(EventId id);

  /// Run events until the queue is empty or `deadline` is passed; the clock
  /// stops at the earlier of the two. Returns the number of events run.
  std::size_t run_until(Time deadline);

  /// Run until the queue drains completely.
  std::size_t run_all();

  /// Run exactly one event if present; returns false when idle.
  bool step();

  /// Live (not-yet-fired, not-cancelled) event count. Cancelled events
  /// linger in the heap until popped but are excluded here.
  [[nodiscard]] std::size_t pending() const { return callbacks_.size(); }

  /// Total events fired so far.
  [[nodiscard]] std::uint64_t events_run() const { return events_run_; }

  /// Route scheduler metrics (events-run counter, queue-depth gauge) into
  /// `obs`'s registry. Pass nullptr to detach.
  void attach_obs(obs::Obs* obs);

 private:
  void update_queue_gauge() {
    if (queue_depth_ != nullptr) {
      queue_depth_->set(static_cast<std::int64_t>(callbacks_.size()));
    }
  }

  struct Event {
    Time when;
    std::uint64_t seq;  // tie-break: schedule order
    EventId id;
    // Ordered as a min-heap via operator> in the priority_queue.
    friend bool operator>(const Event& a, const Event& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t events_run_ = 0;
  obs::Counter* events_run_counter_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // Callbacks keyed by id; erased on fire/cancel. Cancellation leaves the
  // heap entry in place and simply drops the callback.
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace hc::sim
