#include "sim/parallel.hpp"

#include <algorithm>
#include <limits>

namespace hc::sim {
namespace {

constexpr Time kNever = std::numeric_limits<Time>::max();

// Spin budget before a thread parks on its condition variable. Windows are
// microseconds apart in wall time, so the dispatch/done handoff almost
// always completes within the spin and the futex round-trip is skipped.
constexpr int kSpinLimit = 4096;

}  // namespace

ParallelExecutor::ParallelExecutor(Scheduler& sched, std::size_t threads,
                                   Duration lookahead)
    : sched_(sched),
      threads_(std::max<std::size_t>(threads, 1)),
      lookahead_(std::max<Duration>(lookahead, 1)),
      dispatch_phase_(obs::Profiler::instance().phase("scheduler/dispatch")) {
  for (std::size_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_.store(true, std::memory_order_release);
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ParallelExecutor::add_barrier_hook(std::function<void()> hook) {
  hooks_.push_back(std::move(hook));
}

std::size_t ParallelExecutor::run_until(Time deadline) {
  std::size_t ran = 0;
  // Window loop: [t, w_end). The conservative bound only requires
  // w_end <= earliest-unprocessed-event + lookahead (a cross-lane send from
  // an event at time e lands at >= e + lookahead), so the window extends a
  // full lookahead past the earliest pending event rather than past the
  // clock — idle stretches collapse into a single window instead of
  // ceil(idle / lookahead) empty ones. Lane-0 events (driver/chaos) mutate
  // global state, so the window also never crosses the next one.
  for (;;) {
    const Time t = sched_.now_;
    if (t >= deadline) break;
    drain_exclusive(t, ran);
    Scheduler::Lane& lane0 = *sched_.lanes_[0];
    Scheduler::skip_cancelled(lane0);
    const Time lane0_next =
        lane0.heap.empty() ? kNever : lane0.heap.front().when;
    Time min_next = kNever;
    for (std::size_t i = 1; i < sched_.lanes_.size(); ++i) {
      Scheduler::Lane& lane = *sched_.lanes_[i];
      Scheduler::skip_cancelled(lane);
      if (!lane.heap.empty()) {
        min_next = std::min(min_next, lane.heap.front().when);
      }
    }
    const Time horizon = min_next > kNever - lookahead_
                             ? kNever
                             : min_next + lookahead_;
    const Time w_end = std::min(std::min(deadline, horizon), lane0_next);
    ++windows_;
    ran += parallel_pass(w_end, /*inclusive=*/false);
    barrier(w_end);
  }
  // Closing pass: run_until semantics include events at exactly
  // `deadline` (windows are half-open, so they remain). Same-lane
  // zero-delay chains drain inside each lane; lane-0 events may insert
  // new work anywhere, hence the fixpoint loop.
  for (;;) {
    const bool drained = drain_exclusive(deadline, ran);
    const std::size_t n = parallel_pass(deadline, /*inclusive=*/true);
    ran += n;
    barrier(deadline);
    if (!drained && n == 0) break;
  }
  return ran;
}

bool ParallelExecutor::drain_exclusive(Time bound, std::size_t& ran) {
  Scheduler::Lane& lane0 = *sched_.lanes_[0];
  // Deferred profiling scope: entered only once work is found, so the
  // (very frequent) empty polls of the window loop are not charged.
  obs::ProfileScope prof;
  bool any = false;
  for (;;) {
    Scheduler::skip_cancelled(lane0);
    if (lane0.heap.empty() || lane0.heap.front().when > bound) break;
    if (!prof.active()) prof.enter(dispatch_phase_);
    sched_.run_top(lane0, /*exclusive=*/true);
    ++ran;
    any = true;
  }
  if (prof.active()) {
    if (lane_wall_ns_.empty()) lane_wall_ns_.resize(1, 0);
    lane_wall_ns_[0] += prof.ns_since_enter();
  }
  return any;
}

std::size_t ParallelExecutor::parallel_pass(Time w_end, bool inclusive) {
  const std::size_t lane_count = sched_.lanes_.size();
  if (lane_events_.size() < lane_count) lane_events_.resize(lane_count, 0);
  if (lane_wall_ns_.size() < lane_count) lane_wall_ns_.resize(lane_count, 0);
  // Driver-side pre-scan: find the lanes that actually have runnable work.
  // Dispatching the pool for a window where at most one lane runs pays the
  // wake/park round-trip for nothing, and such windows dominate sparse
  // phases (driver polling loops, closing fixpoint confirmation passes).
  // Lanes are sealed within a window — no event can appear in an inactive
  // lane until the barrier merges outboxes — so the scan is exact.
  std::size_t active = 0;
  std::size_t last_active = 0;
  for (std::size_t i = 1; i < lane_count; ++i) {
    Scheduler::Lane& lane = *sched_.lanes_[i];
    Scheduler::skip_cancelled(lane);
    if (lane.heap.empty()) continue;
    const Time when = lane.heap.front().when;
    if (inclusive ? when > w_end : when >= w_end) continue;
    ++active;
    last_active = i;
  }
  if (active == 0) return 0;
  if (workers_.empty() || active == 1) {
    // Inline path: identical semantics, no thread handoff. Lane order is
    // irrelevant for the result (lanes are independent within a window).
    if (active == 1) {
      const std::size_t n = run_lane_window(*sched_.lanes_[last_active],
                                            w_end, inclusive, last_active);
      lane_events_[last_active] += n;
      return n;
    }
    std::size_t ran = 0;
    for (std::size_t i = 1; i < lane_count; ++i) {
      const std::size_t n =
          run_lane_window(*sched_.lanes_[i], w_end, inclusive, i);
      lane_events_[i] += n;
      ran += n;
    }
    return ran;
  }
  ++dispatches_;
  {
    std::lock_guard<std::mutex> lk(m_);
    window_end_ = w_end;
    inclusive_ = inclusive;
    lane_count_ = lane_count;
    done_workers_.store(0, std::memory_order_relaxed);
    window_ran_.store(0, std::memory_order_relaxed);
    // Release: publishes the window_* fields to workers that observe the
    // new epoch through the lock-free spin path below.
    epoch_.store(epoch_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_release);
  }
  cv_start_.notify_all();
  process_lanes(threads_ - 1);
  // Spin-then-park for worker completion (mirrors the workers' dispatch
  // wait): the calling thread usually finishes its share of lanes last or
  // near-last, so the remaining wait is sub-microsecond.
  int spins = 0;
  while (done_workers_.load(std::memory_order_acquire) != workers_.size()) {
    if (++spins > kSpinLimit) {
      std::unique_lock<std::mutex> lk(m_);
      cv_done_.wait(lk, [&] {
        return done_workers_.load(std::memory_order_acquire) ==
               workers_.size();
      });
      break;
    }
  }
  return window_ran_.load(std::memory_order_relaxed);
}

void ParallelExecutor::worker_loop(std::size_t part) {
  std::uint64_t seen = 0;
  for (;;) {
    // Spin briefly for the next window before parking: dispatches arrive
    // back-to-back while a run is active, and the park/notify round-trip
    // costs more than the window itself for sparse windows.
    std::uint64_t e = seen;
    for (int spins = 0; spins < kSpinLimit; ++spins) {
      if (stop_.load(std::memory_order_acquire)) return;
      e = epoch_.load(std::memory_order_acquire);
      if (e != seen) break;
    }
    if (e == seen) {
      std::unique_lock<std::mutex> lk(m_);
      cv_start_.wait(lk, [&] {
        return stop_.load(std::memory_order_acquire) ||
               epoch_.load(std::memory_order_acquire) != seen;
      });
      if (stop_.load(std::memory_order_acquire)) return;
      e = epoch_.load(std::memory_order_acquire);
    }
    seen = e;
    process_lanes(part);
    if (done_workers_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        workers_.size()) {
      std::lock_guard<std::mutex> lk(m_);
      cv_done_.notify_one();
    }
  }
}

void ParallelExecutor::process_lanes(std::size_t part) {
  // Sticky assignment: participant `part` owns lanes (i - 1) % threads_ ==
  // part. Deterministic by construction, and a lane's node state stays
  // warm in its owner's cache across windows.
  std::size_t ran = 0;
  for (std::size_t i = 1 + part; i < lane_count_; i += threads_) {
    const std::size_t n =
        run_lane_window(*sched_.lanes_[i], window_end_, inclusive_, i);
    lane_events_[i] += n;
    ran += n;
  }
  if (ran > 0) window_ran_.fetch_add(ran, std::memory_order_relaxed);
}

std::size_t ParallelExecutor::run_lane_window(Scheduler::Lane& lane,
                                              Time w_end, bool inclusive,
                                              std::size_t lane_idx) {
  std::size_t ran = 0;
  // Deferred scope: lanes with no runnable event this window cost nothing.
  // Everything an event does nests under scheduler/dispatch in the scope
  // tree, so dispatch self-time is the event-loop machinery plus any
  // uninstrumented event work.
  obs::ProfileScope prof;
  for (;;) {
    Scheduler::skip_cancelled(lane);
    if (lane.heap.empty()) break;
    const Time when = lane.heap.front().when;
    if (inclusive ? when > w_end : when >= w_end) break;
    if (!prof.active()) prof.enter(dispatch_phase_);
    sched_.run_top(lane, /*exclusive=*/false);
    ++ran;
  }
  // Sticky ownership (see process_lanes) makes this write race-free.
  if (prof.active()) lane_wall_ns_[lane_idx] += prof.ns_since_enter();
  return ran;
}

void ParallelExecutor::barrier(Time w_end) {
  for (auto& lp : sched_.lanes_) lp->now = std::max(lp->now, w_end);
  if (sched_.now_ < w_end) sched_.now_ = w_end;
  sched_.merge_outboxes();
  sched_.update_queue_gauge();
  for (auto& hook : hooks_) hook();
}

}  // namespace hc::sim
