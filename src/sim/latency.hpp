// Link latency models for the simulated network.
//
// The paper's deployment target is a planetary P2P network (libp2p over
// WAN); the model here reproduces its relevant characteristics: a base
// propagation delay, jitter, and optional per-link overrides (e.g. to give
// a co-located subnet LAN-class latency while the rootnet sees WAN-class).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/clock.hpp"
#include "sim/rng.hpp"

namespace hc::sim {

/// Node identity within a simulation (dense small integers).
using NodeId = std::uint32_t;

class LatencyModel {
 public:
  /// Uniform jittered latency: base ± jitter for every pair.
  LatencyModel(Duration base, Duration jitter) : base_(base), jitter_(jitter) {}

  /// WAN default: 80ms ± 40ms, roughly public-internet gossip hops.
  [[nodiscard]] static LatencyModel wan() {
    return LatencyModel(80 * kMillisecond, 40 * kMillisecond);
  }
  /// LAN default: 1ms ± 0.5ms, co-located subnet validators.
  [[nodiscard]] static LatencyModel lan() {
    return LatencyModel(kMillisecond, kMillisecond / 2);
  }

  /// Override the delay between a specific (unordered) node pair.
  void set_pair(NodeId a, NodeId b, Duration base, Duration jitter);

  /// Sample a delivery delay for a concrete transmission.
  [[nodiscard]] Duration sample(NodeId from, NodeId to, Rng& rng) const;

  /// Smallest delay sample() can ever return, over the base model and all
  /// pair overrides. ParallelExecutor uses this as its conservative
  /// lookahead: no delivery can land sooner than this.
  [[nodiscard]] Duration min_delay() const;

 private:
  struct Link {
    Duration base;
    Duration jitter;
  };
  [[nodiscard]] static std::uint64_t pair_key(NodeId a, NodeId b);

  Duration base_;
  Duration jitter_;
  std::unordered_map<std::uint64_t, Link> overrides_;
};

}  // namespace hc::sim
