// Deterministic pseudo-random number generation (xoshiro256**).
//
// std::mt19937 would work, but its state is bulky and the distributions in
// <random> are not guaranteed to produce identical sequences across standard
// library implementations. Simulation reproducibility is a hard requirement
// (deterministic-replay property tests depend on it), so we implement the
// generator and the distributions we need ourselves.
#pragma once

#include <cstdint>

namespace hc::sim {

class Rng {
 public:
  /// Seeded via splitmix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed);

  /// Uniform over the full 64-bit range.
  [[nodiscard]] std::uint64_t next();

  /// Uniform in [0, bound) (bound > 0), unbiased via rejection.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  [[nodiscard]] double real();

  /// True with probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p);

  /// Exponentially distributed with the given mean (> 0).
  [[nodiscard]] double exponential(double mean);

  /// Fork an independent child stream (stable given call order).
  [[nodiscard]] Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace hc::sim
