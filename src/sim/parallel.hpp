// Conservative-lookahead parallel executor for the event scheduler.
//
// The paper's subnets are independent consensus instances that interact
// only at narrow cross-net boundaries; this executor exploits exactly that
// independence. It runs each scheduler lane (one per subnet) on a fixed
// worker pool inside time windows no wider than the minimum cross-domain
// network latency (the *lookahead*), so no event executed in a window can
// affect another lane within the same window. Cross-lane sends travel
// through per-lane outboxes merged at the window barrier in deterministic
// (time, id) order, and lane 0 — the driver/chaos lane, whose events
// mutate global state such as fault rules — always runs exclusively with
// every other lane parked. The result is byte-identical output at any
// worker count, verified by the chaos runner's replay fingerprints.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/profile.hpp"
#include "sim/clock.hpp"
#include "sim/scheduler.hpp"

namespace hc::sim {

class ParallelExecutor {
 public:
  /// `threads` >= 1 (1 = run windows inline on the calling thread);
  /// `lookahead` must lower-bound every cross-domain event delay — use
  /// LatencyModel::min_delay() or the minimum cross-subnet link floor.
  ParallelExecutor(Scheduler& sched, std::size_t threads, Duration lookahead);
  ~ParallelExecutor();
  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  /// Windowed equivalent of Scheduler::run_until: runs every event with
  /// when <= deadline and advances the clock to exactly `deadline`.
  /// Returns the number of events run.
  std::size_t run_until(Time deadline);

  /// Register a hook run at every window barrier with all lanes parked
  /// (e.g. flipping double-buffered parent-view snapshots).
  void add_barrier_hook(std::function<void()> hook);

  [[nodiscard]] std::size_t threads() const { return threads_; }
  [[nodiscard]] Duration lookahead() const { return lookahead_; }

  /// Diagnostics: windows executed / pool dispatches since construction.
  /// A dispatch is a window handed to the worker pool; windows with zero
  /// or one active lane skip the pool entirely (driver-side pre-scan).
  [[nodiscard]] std::uint64_t windows() const { return windows_; }
  [[nodiscard]] std::uint64_t dispatches() const { return dispatches_; }

  /// Diagnostics: events run per lane (index = lane/domain id). Useful to
  /// spot load imbalance — the root lane typically dominates.
  [[nodiscard]] const std::vector<std::uint64_t>& lane_events() const {
    return lane_events_;
  }

  /// Diagnostics: wall-clock ns spent executing each lane's events
  /// (index = lane/domain id; [0] = the exclusive driver lane). Same
  /// write discipline as lane_events(): one sticky owner per lane, read
  /// from driver context. Cheap per-domain cost attribution for the
  /// profiler sidecars; values are wall time and therefore NOT part of
  /// any deterministic export.
  [[nodiscard]] const std::vector<std::int64_t>& lane_wall_ns() const {
    return lane_wall_ns_;
  }

 private:
  void worker_loop(std::size_t part);
  void process_lanes(std::size_t part);
  std::size_t run_lane_window(Scheduler::Lane& lane, Time w_end,
                              bool inclusive, std::size_t lane_idx);
  bool drain_exclusive(Time bound, std::size_t& ran);
  std::size_t parallel_pass(Time w_end, bool inclusive);
  void barrier(Time w_end);

  Scheduler& sched_;
  std::size_t threads_;
  Duration lookahead_;
  std::vector<std::function<void()>> hooks_;

  // Worker pool: threads_ - 1 persistent workers plus the calling thread.
  // A window is dispatched by bumping epoch_ under m_. Lane->thread
  // assignment is STICKY: participant `part` always runs lanes with
  // (lane - 1) % threads_ == part, so a subnet's working set (state tree,
  // mempool, heaps) stays in one core's cache across windows instead of
  // migrating every dispatch.
  std::vector<std::thread> workers_;
  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  /// Bumped (release) to dispatch a window; workers spin briefly on it
  /// before parking on cv_start_, so back-to-back windows avoid the
  /// futex round-trip. The release store orders the window_* fields.
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> stop_{false};
  Time window_end_ = 0;
  bool inclusive_ = false;
  std::size_t lane_count_ = 0;
  std::atomic<std::size_t> done_workers_{0};
  std::atomic<std::size_t> window_ran_{0};

  std::uint64_t windows_ = 0;
  std::uint64_t dispatches_ = 0;
  /// Written once per (window, lane) by the lane's sticky owner; sized on
  /// the driver thread before dispatch.
  std::vector<std::uint64_t> lane_events_;
  std::vector<std::int64_t> lane_wall_ns_;
  /// Interned "scheduler/dispatch" phase (obs profiler; see DESIGN.md §13).
  obs::PhaseId dispatch_phase_;
};

}  // namespace hc::sim
