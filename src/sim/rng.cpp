#include "sim/rng.hpp"

#include <bit>
#include <cassert>
#include <cmath>

namespace hc::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  assert(bound > 0 && "uniform bound must be positive");
  // Rejection sampling over the largest multiple of bound.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi && "range requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::real() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return real() < p;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0 && "exponential mean must be positive");
  double u = real();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace hc::sim
