// Virtual time for the discrete-event simulator.
//
// All protocol timing (block periods, network latency, checkpoint windows)
// is expressed in simulated time, decoupled from wall-clock time, so runs
// are exactly reproducible and large hierarchies can be simulated faster
// than real time.
#pragma once

#include <cstdint>
#include <string>

namespace hc::sim {

/// A point in simulated time, in microseconds since simulation start.
using Time = std::int64_t;
/// A span of simulated time, in microseconds.
using Duration = std::int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;

/// "12.345s" style rendering for logs and bench output.
[[nodiscard]] std::string format_time(Time t);

}  // namespace hc::sim
