#include "sim/latency.hpp"

#include <algorithm>

namespace hc::sim {

std::uint64_t LatencyModel::pair_key(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

void LatencyModel::set_pair(NodeId a, NodeId b, Duration base,
                            Duration jitter) {
  overrides_[pair_key(a, b)] = Link{base, jitter};
}

Duration LatencyModel::sample(NodeId from, NodeId to, Rng& rng) const {
  Duration base = base_;
  Duration jitter = jitter_;
  if (auto it = overrides_.find(pair_key(from, to)); it != overrides_.end()) {
    base = it->second.base;
    jitter = it->second.jitter;
  }
  if (jitter <= 0) return std::max<Duration>(base, 1);
  const Duration lo = base - jitter;
  const Duration hi = base + jitter;
  return std::max<Duration>(rng.range(lo, hi), 1);
}

Duration LatencyModel::min_delay() const {
  const auto floor_of = [](Duration base, Duration jitter) {
    return std::max<Duration>(jitter <= 0 ? base : base - jitter, 1);
  };
  Duration m = floor_of(base_, jitter_);
  for (const auto& [key, link] : overrides_) {
    m = std::min(m, floor_of(link.base, link.jitter));
  }
  return m;
}

}  // namespace hc::sim
