// Proof-of-Authority round-robin consensus.
//
// The simplest subnet engine: a fixed validator set takes turns producing
// one block per block_time; followers validate the leader's signature and
// commit immediately (instant finality, no fault tolerance to a silent
// leader — the chain stalls until the leader returns, which the failure-
// injection tests exercise). This is the engine the paper's low-latency
// use cases (§I "new use cases ... highly-customized environments") map to.
#pragma once

#include <map>

#include "consensus/engine.hpp"
#include "consensus/wire.hpp"

namespace hc::consensus {

/// Durable production state (DESIGN.md §15): the highest height this
/// authority already produced a signed block for. Persisted before each
/// production so a restarted leader never signs a second, different block
/// for a height its pre-crash self already served.
struct PoaVoteState {
  chain::Epoch last_produced = 0;

  void encode_to(Encoder& e) const { e.i64(last_produced); }
  static Result<PoaVoteState> decode_from(Decoder& d) {
    PoaVoteState s;
    HC_TRY(last_produced, d.i64());
    s.last_produced = last_produced;
    return s;
  }
};

class PoaRoundRobin final : public Engine {
 public:
  PoaRoundRobin(EngineContext context, EngineConfig config);

  void start() override;
  void stop() override;
  void on_message(net::NodeId from, const net::Envelope& payload) override;
  [[nodiscard]] std::string_view name() const override {
    return "poa-round-robin";
  }

 private:
  /// Leader for a given height.
  [[nodiscard]] const Validator& leader(chain::Epoch height) const;
  void tick();
  void try_commit_pending();
  /// Ask peers for blocks starting at head+1 (recovering validator).
  void request_catch_up();
  /// Serve a catch-up request for heights >= `from`.
  void serve_catch_up(chain::Epoch from);

  struct PendingBlock {
    chain::Block block;
    Bytes proof;    // the height leader's signature
    bool relayed;   // arrived as a catch-up copy, not straight from leader
  };

  EngineContext ctx_;
  EngineConfig cfg_;
  EngineMetrics metrics_;
  bool running_ = false;
  sim::EventId timer_ = 0;
  chain::Epoch last_produced_ = 0;
  /// Out-of-order blocks buffered by height (gossip may reorder).
  std::map<chain::Epoch, PendingBlock> pending_;
  /// Stall detection for catch-up requests.
  chain::Epoch last_seen_head_ = 0;
  int stalled_ticks_ = 0;
  /// Production is suppressed until this time after committing a relayed
  /// catch-up block: having accepted a relayed copy proves this replica is
  /// behind, and producing for a height the true chain already holds would
  /// fork it off permanently (PoA has no reorg). The window is re-armed on
  /// every relayed commit, so it only expires once replay has drained.
  sim::Time no_produce_before_ = 0;
  /// Rate limit: at most one catch-up request per block time. Without it a
  /// burst of out-of-order served blocks triggers one request each, every
  /// request makes every peer sign and broadcast a full batch, and the
  /// feedback loop amplifies exponentially.
  sim::Time last_catch_up_request_ = -1;
};

}  // namespace hc::consensus
