#include "consensus/tendermint.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace hc::consensus {

Tendermint::Tendermint(EngineContext context, EngineConfig config)
    : ctx_(std::move(context)), cfg_(config), metrics_(ctx_, "tendermint") {}

const Validator& Tendermint::proposer(chain::Epoch height,
                                      std::uint32_t round) const {
  const auto& members = ctx_.validators.members();
  return members[(static_cast<std::size_t>(height) + round) % members.size()];
}

sim::Duration Tendermint::timeout_for(std::uint32_t round) const {
  return cfg_.timeout_base +
         static_cast<sim::Duration>(round) * (cfg_.timeout_base / 2);
}

void Tendermint::start() {
  running_ = true;
  if (ctx_.votes != nullptr) {
    if (const auto blob = ctx_.votes->recovered()) {
      if (auto st = decode<TendermintVoteState>(*blob)) {
        restored_ = std::move(st).value();
      }
    }
  }
  new_height();
}

void Tendermint::persist_votes() {
  if (ctx_.votes == nullptr) return;
  TendermintVoteState st;
  st.height = height_;
  st.round = round_;
  st.proposed = proposed_this_round_;
  st.prevoted = prevoted_this_round_;
  st.precommitted = precommitted_this_round_;
  st.locked_round = locked_round_;
  if (locked_block_.has_value()) st.locked_block = encode(*locked_block_);
  ctx_.votes->persist(encode(st));
}

void Tendermint::stop() {
  running_ = false;
  ++timer_epoch_;
}

void Tendermint::new_height() {
  height_ = ctx_.source->head_height() + 1;
  proposals_.clear();
  prevotes_.clear();
  precommits_.clear();
  locked_block_.reset();
  locked_round_ = -1;
  // Replay buffered future-height messages after the state reset.
  std::vector<WireMsg> replay;
  replay.swap(future_);
  if (restored_.has_value() && restored_->height < height_) restored_.reset();
  if (restored_.has_value() && restored_->height == height_) {
    resume_round();
  } else {
    start_round(0);
  }
  for (auto& m : replay) handle(std::move(m));
}

void Tendermint::resume_round() {
  // Rejoin the round the pre-crash self was voting in. The persisted flags
  // gate every signing path, so nothing already signed is re-sent (let
  // alone re-signed differently); a single round timeout then advances to
  // round+1, where voting restarts fresh.
  const TendermintVoteState st = *restored_;
  restored_.reset();
  if (!st.locked_block.empty()) {
    if (auto b = decode<chain::Block>(st.locked_block)) {
      locked_block_ = std::move(b).value();
      locked_round_ = st.locked_round;
    }
  }
  round_ = st.round;
  proposed_this_round_ = st.proposed;
  prevoted_this_round_ = st.prevoted;
  precommitted_this_round_ = st.precommitted;
  step_ = st.precommitted ? Step::kPrecommit
          : st.prevoted   ? Step::kPrevote
                          : Step::kPropose;
  metrics_.round();
  const std::uint64_t epoch = ++timer_epoch_;
  const std::uint32_t round = round_;
  ctx_.scheduler->schedule(cfg_.block_time + timeout_for(round),
                           guarded([this, epoch, round] {
    if (!running_ || timer_epoch_ != epoch) return;
    if (round == round_) {
      metrics_.timeout();
      start_round(round + 1);
    }
  }));
}

void Tendermint::start_round(std::uint32_t round) {
  if (!running_) return;
  round_ = round;
  step_ = Step::kPropose;
  proposed_this_round_ = false;
  prevoted_this_round_ = false;
  precommitted_this_round_ = false;
  metrics_.round();
  if (round > 0) {
    ++rounds_skipped_;
    metrics_.view_change();
  }
  const std::uint64_t epoch = ++timer_epoch_;

  if (i_am(proposer(height_, round))) {
    // Pace block production to the configured block time (round-0 only;
    // backup rounds are already late). Scheduling also bounds recursion:
    // commit -> new height -> proposal never nests inside a vote handler.
    const sim::Duration delay = round == 0 ? cfg_.block_time : 0;
    const chain::Epoch height = height_;
    ctx_.scheduler->schedule(delay, guarded([this, epoch, round, height] {
      if (!running_ || timer_epoch_ != epoch || height != height_) return;
      if (behind_restored()) return;  // passive until past pre-crash votes
      obs::ProfileScope prof(metrics_.step_phase());
      chain::Block block =
          locked_block_.has_value()
              ? *locked_block_
              : ctx_.source->build_block(
                    Address::key(ctx_.key.public_key().to_bytes()));
      proposed_this_round_ = true;
      persist_votes();  // write-ahead: durable before the proposal is out
      broadcast(WireMsg::make(WireKind::kProposal, height_, round,
                              block.cid(), encode(block), ctx_.key));
    }));
  }
  // Propose timeout: prevote nil if no (acceptable) proposal arrived.
  ctx_.scheduler->schedule(cfg_.block_time + timeout_for(round),
                           guarded([this, epoch, round] {
    if (!running_ || timer_epoch_ != epoch) return;
    if (step_ == Step::kPropose) {
      metrics_.timeout();
      do_prevote(round);
    }
  }));
}

void Tendermint::broadcast(WireMsg msg) {
  ctx_.network->publish(ctx_.node, ctx_.topic, encode(msg));
  handle(std::move(msg));  // gossip does not self-deliver
}

void Tendermint::on_message(net::NodeId from, const net::Envelope& payload) {
  (void)from;
  if (!running_) return;
  auto decoded = payload.decoded<WireMsg>();
  if (!decoded) return;
  handle(*decoded.value());  // shared decode, private mutable copy
}

void Tendermint::handle(WireMsg msg) {
  obs::ProfileScope prof(metrics_.step_phase());
  if (!msg.verify()) return;
  if (msg.kind == WireKind::kBlock) {
    on_committed_block(std::move(msg));
    return;
  }
  if (msg.height < height_) return;  // stale
  if (msg.height > height_) {
    if (future_.size() < 4096) future_.push_back(std::move(msg));
    return;
  }
  switch (msg.kind) {
    case WireKind::kProposal:
      on_proposal(std::move(msg));
      break;
    case WireKind::kPrevote:
      on_prevote(msg);
      break;
    case WireKind::kPrecommit:
      on_precommit(msg);
      break;
    default:
      break;
  }
}

void Tendermint::on_proposal(WireMsg msg) {
  // Only the legitimate proposer for (height, round) is accepted.
  if (!(proposer(height_, msg.round).key == msg.sender)) return;
  auto block = decode<chain::Block>(msg.block);
  if (!block || block.value().cid() != msg.block_cid) return;
  proposals_[msg.round] = std::move(block).value();
  if (msg.round == round_ && step_ == Step::kPropose) {
    do_prevote(msg.round);
  }
}

void Tendermint::do_prevote(std::uint32_t round) {
  if (prevoted_this_round_ || round != round_) return;
  if (behind_restored()) return;  // passive until past pre-crash votes
  prevoted_this_round_ = true;
  step_ = Step::kPrevote;

  Cid vote;  // nil by default
  auto it = proposals_.find(round);
  if (it != proposals_.end()) {
    const chain::Block& proposal = it->second;
    const bool lock_allows =
        !locked_block_.has_value() ||
        locked_block_->cid() == proposal.cid();
    if (lock_allows && ctx_.source->validate_block(proposal).ok()) {
      vote = proposal.cid();
    }
  }
  persist_votes();  // write-ahead: durable before the vote is out
  broadcast(WireMsg::make(WireKind::kPrevote, height_, round, vote, {},
                          ctx_.key));

  // Prevote timeout: precommit nil if no polka materializes.
  const std::uint64_t epoch = timer_epoch_;
  ctx_.scheduler->schedule(timeout_for(round), guarded([this, epoch, round] {
    if (!running_ || timer_epoch_ != epoch) return;
    if (step_ == Step::kPrevote && round == round_) {
      metrics_.timeout();
      do_precommit(round, Cid());
    }
  }));
}

void Tendermint::on_prevote(const WireMsg& msg) {
  const auto idx = ctx_.validators.index_of(msg.sender);
  if (!idx.has_value()) return;
  VoteSet& set = prevotes_[msg.round][msg.block_cid];
  if (!set.emplace(*idx, msg.signature).second) return;  // duplicate

  if (msg.round != round_ || step_ != Step::kPrevote) return;
  const std::size_t quorum = ctx_.validators.quorum();
  // Polka on a block: lock and precommit it.
  if (!msg.block_cid.is_null() &&
      count_votes(prevotes_, msg.round, msg.block_cid) >= quorum) {
    auto it = proposals_.find(msg.round);
    if (it != proposals_.end() && it->second.cid() == msg.block_cid) {
      locked_block_ = it->second;
      locked_round_ = msg.round;
      do_precommit(msg.round, msg.block_cid);
      return;
    }
  }
  // Polka on nil: precommit nil.
  if (msg.block_cid.is_null() &&
      count_votes(prevotes_, msg.round, Cid()) >= quorum) {
    do_precommit(msg.round, Cid());
  }
}

void Tendermint::do_precommit(std::uint32_t round, const Cid& cid) {
  if (precommitted_this_round_ || round != round_) return;
  if (behind_restored()) return;  // passive until past pre-crash votes
  precommitted_this_round_ = true;
  step_ = Step::kPrecommit;
  persist_votes();  // write-ahead: durable before the vote is out
  broadcast(
      WireMsg::make(WireKind::kPrecommit, height_, round, cid, {}, ctx_.key));

  // Precommit timeout: move to the next round if nothing commits.
  const std::uint64_t epoch = timer_epoch_;
  ctx_.scheduler->schedule(timeout_for(round), guarded([this, epoch, round] {
    if (!running_ || timer_epoch_ != epoch) return;
    if (round == round_) {
      metrics_.timeout();
      start_round(round + 1);
    }
  }));
}

void Tendermint::on_precommit(const WireMsg& msg) {
  const auto idx = ctx_.validators.index_of(msg.sender);
  if (!idx.has_value()) return;
  VoteSet& set = precommits_[msg.round][msg.block_cid];
  if (!set.emplace(*idx, msg.signature).second) return;

  const std::size_t quorum = ctx_.validators.quorum();
  if (!msg.block_cid.is_null() &&
      count_votes(precommits_, msg.round, msg.block_cid) >= quorum) {
    try_commit(msg.round, msg.block_cid);
    return;
  }
  if (msg.block_cid.is_null() && msg.round == round_ &&
      count_votes(precommits_, msg.round, Cid()) >= quorum) {
    start_round(msg.round + 1);
  }
}

void Tendermint::try_commit(std::uint32_t round, const Cid& cid) {
  auto it = proposals_.find(round);
  if (it == proposals_.end() || it->second.cid() != cid) {
    // We saw the quorum but miss the block; a kBlock catch-up broadcast
    // from a committing peer will bring it.
    return;
  }
  chain::Block block = it->second;
  if (block.header.parent != ctx_.source->head_cid()) return;

  // Assemble the commit certificate from the precommit signatures.
  QuorumCert cert;
  cert.height = height_;
  cert.round = round;
  cert.block_cid = cid;
  for (const auto& [index, sig] : precommits_[round][cid]) {
    cert.signers.push_back(ctx_.validators.members()[index].key);
    cert.signatures.push_back(sig);
  }
  const Bytes proof = encode(cert);
  ctx_.source->commit_block(block, proof);

  // Catch-up broadcast for lagging peers.
  WireMsg announce = WireMsg::make(WireKind::kBlock, cert.height, round, cid,
                                   encode(block), ctx_.key);
  announce.extra = proof;
  ctx_.network->publish(ctx_.node, ctx_.topic, encode(announce));

  new_height();
}

void Tendermint::on_committed_block(WireMsg msg) {
  if (msg.height != ctx_.source->head_height() + 1) return;
  auto cert_r = decode<QuorumCert>(msg.extra);
  if (!cert_r) return;
  const QuorumCert cert = std::move(cert_r).value();
  if (cert.block_cid != msg.block_cid || cert.height != msg.height) return;
  // Every signer must be a validator.
  for (const auto& key : cert.signers) {
    if (!ctx_.validators.index_of(key).has_value()) return;
  }
  if (!cert.verify(WireKind::kPrecommit, ctx_.validators.quorum())) return;
  auto block_r = decode<chain::Block>(msg.block);
  if (!block_r || block_r.value().cid() != msg.block_cid) return;
  chain::Block block = std::move(block_r).value();
  if (block.header.parent != ctx_.source->head_cid()) return;
  if (!ctx_.source->validate_block(block).ok()) return;
  ctx_.source->commit_block(std::move(block), msg.extra);
  new_height();
}

std::size_t Tendermint::count_votes(
    const std::map<std::uint32_t, std::map<Cid, VoteSet>>& votes,
    std::uint32_t round, const Cid& cid) const {
  auto rit = votes.find(round);
  if (rit == votes.end()) return 0;
  auto cit = rit->second.find(cid);
  return cit == rit->second.end() ? 0 : cit->second.size();
}

}  // namespace hc::consensus
