// Power-weighted leader lottery (Expected-Consensus-style).
//
// Substitution for Filecoin EC (see DESIGN.md §2): each height draws a
// verifiable, deterministic leader ranking from H(prev_cid, height, key)
// weighted by validator power. Rank 0 proposes immediately; rank r acts as
// a fallback after r * (block_time / 2) of silence, so the chain keeps a
// steady cadence even with offline miners. Followers verify that the miner
// really holds the rank it claims. Finality is probabilistic (depth-based),
// like the PoW/PoS chains this models.
#pragma once

#include <map>

#include "consensus/engine.hpp"
#include "consensus/wire.hpp"
#include "crypto/u256.hpp"

namespace hc::consensus {

/// Durable production state (DESIGN.md §15): the highest height this miner
/// already proposed a signed block for. Persisted before each proposal so
/// a restarted miner never signs a second block for the same height.
struct LotteryVoteState {
  chain::Epoch proposed_height = 0;

  void encode_to(Encoder& e) const { e.i64(proposed_height); }
  static Result<LotteryVoteState> decode_from(Decoder& d) {
    LotteryVoteState s;
    HC_TRY(proposed_height, d.i64());
    s.proposed_height = proposed_height;
    return s;
  }
};

class PowerLottery final : public Engine {
 public:
  PowerLottery(EngineContext context, EngineConfig config);

  void start() override;
  void stop() override;
  void on_message(net::NodeId from, const net::Envelope& payload) override;
  [[nodiscard]] std::string_view name() const override {
    return "power-lottery";
  }
  [[nodiscard]] int finality_depth() const override { return 5; }

  /// Deterministic ranking of validator indices for (prev, height):
  /// index 0 is the expected leader. Exposed for tests/benches to verify
  /// power-weighted selection statistics.
  [[nodiscard]] static std::vector<std::size_t> rank_validators(
      const ValidatorSet& validators, const Cid& prev, chain::Epoch height);

 private:
  void tick();
  void maybe_propose();
  void try_commit_pending();

  EngineContext ctx_;
  EngineConfig cfg_;
  EngineMetrics metrics_;
  bool running_ = false;
  sim::EventId timer_ = 0;
  chain::Epoch proposed_height_ = 0;
  std::map<chain::Epoch, chain::Block> pending_;
  /// Simulated-time moment the current height's slot started.
  sim::Time slot_start_ = 0;
  chain::Epoch slot_height_ = 0;
};

}  // namespace hc::consensus
