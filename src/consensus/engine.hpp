// Pluggable consensus engines.
//
// Paper §II: "Subnets can run a consensus algorithm of their choosing to
// validate blocks"; §VI names Tendermint and MirBFT as integration targets
// next to Filecoin's Expected Consensus. Every engine drives the same
// BlockSource interface (assemble / validate / commit), so the subnet node
// is agnostic to the protocol it runs.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "chain/block.hpp"
#include "core/params.hpp"
#include "crypto/schnorr.hpp"
#include "net/network.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace hc::consensus {

/// One member of a subnet's validator set.
struct Validator {
  crypto::PublicKey key;
  std::uint64_t power = 1;  // voting/mining power (stake-derived)

  [[nodiscard]] Address address() const {
    return Address::key(key.to_bytes());
  }
};

class ValidatorSet {
 public:
  ValidatorSet() = default;
  explicit ValidatorSet(std::vector<Validator> members)
      : members_(std::move(members)) {}

  [[nodiscard]] const std::vector<Validator>& members() const {
    return members_;
  }
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] std::uint64_t total_power() const;

  /// Index of a key in the set; nullopt when absent.
  [[nodiscard]] std::optional<std::size_t> index_of(
      const crypto::PublicKey& key) const;

  /// Count-based BFT quorum: 2f+1 where f = (n-1)/3.
  [[nodiscard]] std::size_t quorum() const {
    return size() == 0 ? 0 : 2 * ((size() - 1) / 3) + 1;
  }
  /// Maximum tolerable Byzantine members.
  [[nodiscard]] std::size_t max_faulty() const {
    return size() == 0 ? 0 : (size() - 1) / 3;
  }

 private:
  std::vector<Validator> members_;
};

/// Node-side callbacks an engine drives. The engine owns WHEN blocks happen;
/// the BlockSource owns WHAT is in them and what they do to state.
class BlockSource {
 public:
  virtual ~BlockSource() = default;

  /// Assemble a candidate block extending the current head.
  [[nodiscard]] virtual chain::Block build_block(const Address& miner) = 0;

  /// Validate a proposed block against the current head/state (without
  /// committing). Implementations must be side-effect free.
  [[nodiscard]] virtual Status validate_block(const chain::Block& block) = 0;

  /// Irreversibly append a block. `proof` is the consensus commitment
  /// (leader signature, quorum certificate, ...) recorded in the header.
  virtual void commit_block(chain::Block block, Bytes proof) = 0;

  [[nodiscard]] virtual chain::Epoch head_height() const = 0;
  [[nodiscard]] virtual Cid head_cid() const = 0;

  /// Historical access, used by catch-up sync for recovering validators.
  [[nodiscard]] virtual std::optional<chain::Block> block_at(
      chain::Epoch height) const = 0;
  /// The consensus proof recorded when `height` was committed.
  [[nodiscard]] virtual Bytes proof_at(chain::Epoch height) const = 0;
};

struct EngineConfig {
  sim::Duration block_time = sim::kSecond;
  /// Base timeout for leader-failure detection (BFT engines).
  sim::Duration timeout_base = 2 * sim::kSecond;
};

/// Write-ahead persistence for an engine's voting/production state
/// (DESIGN.md §15). persist() must make the bytes durable BEFORE the
/// caller lets the corresponding signed vote, ACK or block leave the node
/// — that ordering is the write-ahead barrier that lets a restarted
/// validator know exactly what its pre-crash self signed, so it never
/// signs a conflicting message at the same (height, round). Records are
/// last-wins: recovered() returns only the newest persisted state.
class VoteStore {
 public:
  virtual ~VoteStore() = default;

  /// Durably record (and fsync) the engine's current vote state.
  virtual void persist(BytesView state) = 0;

  /// The last state persisted before the crash this node recovered from;
  /// nullopt on a fresh (or disk-lost) start.
  [[nodiscard]] virtual std::optional<Bytes> recovered() const = 0;
};

/// Everything an engine needs from its environment.
struct EngineContext {
  sim::Scheduler* scheduler = nullptr;
  net::Network* network = nullptr;
  net::NodeId node = 0;
  std::string topic;  // consensus pubsub topic (subnet topic + "/consensus")
  crypto::KeyPair key = crypto::KeyPair::from_label("unset");
  ValidatorSet validators;
  BlockSource* source = nullptr;
  /// Write-ahead vote persistence; nullptr = volatile (no durability).
  VoteStore* votes = nullptr;
  std::uint64_t rng_seed = 0;
  /// Metrics/trace sink; nullptr falls back to obs::default_obs().
  obs::Obs* obs = nullptr;
  /// Label scope for metrics, normally the subnet id string.
  std::string scope;
};

/// Registry-backed progress counters shared by every engine, labeled
/// {engine=<name>, subnet=<ctx.scope>}. Resolved once at engine
/// construction so the hot path is a single pointer bump.
class EngineMetrics {
 public:
  EngineMetrics(const EngineContext& ctx, std::string_view engine);

  /// A consensus round started (PoA/lottery: a block production attempt).
  void round() { rounds_->inc(); }
  /// Moved past round 0 at some height — a leader was silent or slow.
  void view_change() { view_changes_->inc(); }
  /// A protocol timeout actually fired and changed behaviour.
  void timeout() { timeouts_->inc(); }
  /// Asked peers for missed blocks.
  void catch_up() { catchups_->inc(); }

  /// Interned "consensus/<engine>/step" profiler phase. Engines open a
  /// ProfileScope on this around message handling and timer-driven
  /// production so the wall-clock profiler can attribute consensus cost
  /// per engine (DESIGN.md §13). Wall time only — never part of the
  /// deterministic metric/trace exports.
  [[nodiscard]] obs::PhaseId step_phase() const { return step_phase_; }

 private:
  obs::Counter* rounds_;
  obs::Counter* view_changes_;
  obs::Counter* timeouts_;
  obs::Counter* catchups_;
  obs::PhaseId step_phase_;
};

class Engine {
 public:
  virtual ~Engine() = default;

  /// Begin participating (schedules timers, subscribes handled by node).
  virtual void start() = 0;
  /// Stop producing/voting (a crashed or stopped validator).
  virtual void stop() = 0;
  /// Deliver a consensus wire message published on the consensus topic.
  /// The envelope's decoded-object cache means the N validators of a
  /// subnet parse each proposal/vote once between them.
  virtual void on_message(net::NodeId from, const net::Envelope& payload) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Blocks needing `n` confirmations before being final; 0 = instant
  /// finality (BFT engines). Used by benches reporting time-to-finality.
  [[nodiscard]] virtual int finality_depth() const { return 0; }

 protected:
  /// Wrap a timer callback so it dies with the engine. Engines leave timers
  /// in the scheduler past stop() (epoch counters make them no-ops), but a
  /// crash-restarted node DESTROYS its engine with timers still pending —
  /// the guard turns those into no-ops instead of use-after-frees.
  template <typename F>
  [[nodiscard]] auto guarded(F fn) {
    return [weak = std::weak_ptr<const bool>(alive_), fn = std::move(fn)] {
      if (const auto alive = weak.lock()) fn();
    };
  }

 private:
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

/// Factory covering every ConsensusType a subnet can choose (paper §II).
[[nodiscard]] std::unique_ptr<Engine> make_engine(core::ConsensusType type,
                                                  EngineContext context,
                                                  EngineConfig config);

}  // namespace hc::consensus
