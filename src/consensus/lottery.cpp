#include "consensus/lottery.hpp"

#include <algorithm>
#include <numeric>

namespace hc::consensus {

namespace {

/// Draw the raw 64-bit ticket for one validator.
std::uint64_t raw_ticket(const Cid& prev, chain::Epoch height,
                         const crypto::PublicKey& key) {
  Encoder e;
  e.str("hc/lottery").obj(prev).i64(height).obj(key);
  const Digest d = Sha256::hash(e.data());
  std::uint64_t t = 0;
  for (int i = 0; i < 8; ++i) t = (t << 8) | d[static_cast<std::size_t>(i)];
  return t;
}

}  // namespace

std::vector<std::size_t> PowerLottery::rank_validators(
    const ValidatorSet& validators, const Cid& prev, chain::Epoch height) {
  const auto& members = validators.members();
  std::vector<std::uint64_t> tickets(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    tickets[i] = raw_ticket(prev, height, members[i].key);
  }
  std::vector<std::size_t> order(members.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Effective ticket is ticket/power: compare as exact rationals in 128-bit
  // (t_a / p_a < t_b / p_b  <=>  t_a * p_b < t_b * p_a). Higher power =>
  // proportionally smaller effective ticket => leads more often.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const unsigned __int128 lhs =
        static_cast<unsigned __int128>(tickets[a]) * members[b].power;
    const unsigned __int128 rhs =
        static_cast<unsigned __int128>(tickets[b]) * members[a].power;
    if (lhs != rhs) return lhs < rhs;
    return a < b;  // stable total order
  });
  return order;
}

PowerLottery::PowerLottery(EngineContext context, EngineConfig config)
    : ctx_(std::move(context)), cfg_(config), metrics_(ctx_, "power-lottery") {}

void PowerLottery::start() {
  running_ = true;
  if (ctx_.votes != nullptr) {
    if (const auto blob = ctx_.votes->recovered()) {
      if (auto st = decode<LotteryVoteState>(*blob)) {
        // Never propose again for a height the pre-crash self already
        // mined (its block may survive only in peers' chains).
        proposed_height_ =
            std::max(proposed_height_, st.value().proposed_height);
      }
    }
  }
  slot_start_ = ctx_.scheduler->now();
  slot_height_ = ctx_.source->head_height() + 1;
  // Poll at half-block granularity: drives both leading and fallbacks.
  timer_ = ctx_.scheduler->schedule(cfg_.block_time, [this] { tick(); });
}

void PowerLottery::stop() {
  running_ = false;
  ctx_.scheduler->cancel(timer_);
}

void PowerLottery::tick() {
  if (!running_) return;
  obs::ProfileScope prof(metrics_.step_phase());
  maybe_propose();
  timer_ =
      ctx_.scheduler->schedule(cfg_.block_time / 4, [this] { tick(); });
}

void PowerLottery::maybe_propose() {
  const chain::Epoch next = ctx_.source->head_height() + 1;
  if (next != slot_height_) {
    slot_height_ = next;
    slot_start_ = ctx_.scheduler->now();
  }
  if (proposed_height_ >= next) return;

  const auto order =
      rank_validators(ctx_.validators, ctx_.source->head_cid(), next);
  const auto my_index = ctx_.validators.index_of(ctx_.key.public_key());
  if (!my_index.has_value()) return;
  const auto rank_it = std::find(order.begin(), order.end(), *my_index);
  const std::size_t rank =
      static_cast<std::size_t>(rank_it - order.begin());

  // Rank 0 proposes after one block time; rank r steps in a full extra
  // block time later per rank, so gossip latency cannot race the expected
  // leader into a fork.
  const sim::Time due =
      slot_start_ +
      static_cast<sim::Duration>(rank + 1) * cfg_.block_time;
  if (ctx_.scheduler->now() < due) return;

  proposed_height_ = next;
  if (ctx_.votes != nullptr) {
    // Write-ahead: durable before the signed block leaves the node.
    ctx_.votes->persist(encode(LotteryVoteState{proposed_height_}));
  }
  metrics_.round();
  // A non-zero rank proposing means the expected leader stayed silent past
  // its slot — the fallback ladder is this engine's view-change analogue.
  if (rank > 0) metrics_.view_change();
  chain::Block block =
      ctx_.source->build_block(Address::key(ctx_.key.public_key().to_bytes()));
  // The ticket records the claimed rank for verification.
  Encoder ticket;
  ticket.varint(rank);
  block.header.ticket = ticket.data();
  block.header.msgs_root = block.compute_msgs_root();

  WireMsg msg = WireMsg::make(WireKind::kBlock, next, 0, block.cid(),
                              encode(block), ctx_.key);
  ctx_.network->publish(ctx_.node, ctx_.topic, encode(msg));
  ctx_.source->commit_block(std::move(block), encode(msg.signature));
  try_commit_pending();
}

void PowerLottery::on_message(net::NodeId from, const net::Envelope& payload) {
  (void)from;
  if (!running_) return;
  obs::ProfileScope prof(metrics_.step_phase());
  auto decoded = payload.decoded<WireMsg>();
  if (!decoded || decoded.value()->kind != WireKind::kBlock) return;
  WireMsg msg = *decoded.value();  // shared decode, private mutable copy
  if (!msg.verify()) return;
  auto block_r = decode<chain::Block>(msg.block);
  if (!block_r || block_r.value().cid() != msg.block_cid) return;
  chain::Block block = std::move(block_r).value();

  // The miner must be a validator and hold the rank claimed in the ticket.
  const auto idx = ctx_.validators.index_of(msg.sender);
  if (!idx.has_value()) return;
  if (block.header.miner != Address::key(msg.sender.to_bytes())) return;
  if (msg.height <= ctx_.source->head_height()) return;

  pending_[msg.height] = std::move(block);
  try_commit_pending();
}

void PowerLottery::try_commit_pending() {
  for (;;) {
    const chain::Epoch next = ctx_.source->head_height() + 1;
    auto it = pending_.find(next);
    if (it == pending_.end()) break;
    chain::Block block = std::move(it->second);
    pending_.erase(it);
    if (block.header.parent != ctx_.source->head_cid()) continue;
    // Verify the claimed lottery rank against the deterministic draw.
    const auto order =
        rank_validators(ctx_.validators, block.header.parent, next);
    Decoder d(block.header.ticket);
    auto rank = d.varint();
    if (!rank || rank.value() >= order.size()) continue;
    const auto& claimed =
        ctx_.validators.members()[order[static_cast<std::size_t>(
            rank.value())]];
    if (block.header.miner != claimed.address()) continue;
    if (!ctx_.source->validate_block(block)) continue;
    ctx_.source->commit_block(std::move(block), {});
  }
  const chain::Epoch head = ctx_.source->head_height();
  std::erase_if(pending_, [&](const auto& kv) { return kv.first <= head; });
}

}  // namespace hc::consensus
