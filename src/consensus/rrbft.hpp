// Rotating-leader BFT with single-round acknowledgements (MirBFT stand-in).
//
// Paper §VI names MirBFT as a planned subnet consensus. This engine stands
// in for a leader-rotating, high-throughput BFT: the height's leader
// proposes a batch; validators broadcast signed ACKs; everyone commits on a
// 2f+1 ACK quorum, whose signatures form the block's quorum certificate.
// On leader silence the round counter advances to a backup leader. Compared
// to Tendermint it trades the locking machinery (and thus some liveness
// edge cases under equivocating leaders) for one fewer voting phase —
// the E7 consensus-comparison bench quantifies that tradeoff.
#pragma once

#include <map>

#include "consensus/engine.hpp"
#include "consensus/wire.hpp"

namespace hc::consensus {

/// Durable vote state (DESIGN.md §15), persisted through the VoteStore
/// before each proposal/ACK broadcast so a restarted validator never
/// re-signs differently at a (height, round) it already signed in.
struct RrBftVoteState {
  chain::Epoch height = 0;
  std::uint32_t round = 0;
  bool proposed = false;
  bool acked = false;

  void encode_to(Encoder& e) const {
    e.i64(height).u32(round).u8(proposed ? 1 : 0).u8(acked ? 1 : 0);
  }
  static Result<RrBftVoteState> decode_from(Decoder& d) {
    RrBftVoteState s;
    HC_TRY(height, d.i64());
    s.height = height;
    HC_TRY(round, d.u32());
    s.round = round;
    HC_TRY(proposed, d.u8());
    s.proposed = proposed != 0;
    HC_TRY(acked, d.u8());
    s.acked = acked != 0;
    return s;
  }
};

class RoundRobinBft final : public Engine {
 public:
  RoundRobinBft(EngineContext context, EngineConfig config);

  void start() override;
  void stop() override;
  void on_message(net::NodeId from, const net::Envelope& payload) override;
  [[nodiscard]] std::string_view name() const override {
    return "round-robin-bft";
  }

 private:
  using VoteSet = std::map<std::size_t, crypto::Signature>;

  [[nodiscard]] const Validator& leader(chain::Epoch height,
                                        std::uint32_t round) const;
  void new_height();
  void start_round(std::uint32_t round);
  void broadcast(WireMsg msg);
  void handle(WireMsg msg);
  void maybe_commit(std::uint32_t round, const Cid& cid);
  /// Re-broadcast committed blocks (with their ACK quorum certificates)
  /// from `from` on, for a peer observed signing at an already-committed
  /// height — e.g. a crash-restarted validator whose chain tail was lost.
  void serve_catch_up(chain::Epoch from);
  /// Commit a caught-up block on the strength of its certificate alone.
  void on_committed_block(const WireMsg& msg);

  /// Write-ahead barrier: durably record the current vote state before a
  /// signed broadcast (no-op without a VoteStore).
  void persist_votes();
  /// Rejoin the restored in-flight round without re-signing anything.
  void resume_round();
  [[nodiscard]] bool behind_restored() const {
    return restored_.has_value() && height_ < restored_->height;
  }

  EngineContext ctx_;
  EngineConfig cfg_;
  EngineMetrics metrics_;
  bool running_ = false;
  chain::Epoch height_ = 0;
  std::uint32_t round_ = 0;
  std::uint64_t timer_epoch_ = 0;
  bool proposed_this_round_ = false;
  bool acked_this_round_ = false;
  /// Vote state recovered from the WAL (see TendermintVoteState docs).
  std::optional<RrBftVoteState> restored_;
  std::map<std::uint32_t, chain::Block> proposals_;
  std::map<std::uint32_t, std::map<Cid, VoteSet>> acks_;
  std::vector<WireMsg> future_;
  /// Throttle for serve_catch_up (at most one batch per block time).
  sim::Time last_catch_up_serve_ = -1;
};

}  // namespace hc::consensus
