// Rotating-leader BFT with single-round acknowledgements (MirBFT stand-in).
//
// Paper §VI names MirBFT as a planned subnet consensus. This engine stands
// in for a leader-rotating, high-throughput BFT: the height's leader
// proposes a batch; validators broadcast signed ACKs; everyone commits on a
// 2f+1 ACK quorum, whose signatures form the block's quorum certificate.
// On leader silence the round counter advances to a backup leader. Compared
// to Tendermint it trades the locking machinery (and thus some liveness
// edge cases under equivocating leaders) for one fewer voting phase —
// the E7 consensus-comparison bench quantifies that tradeoff.
#pragma once

#include <map>

#include "consensus/engine.hpp"
#include "consensus/wire.hpp"

namespace hc::consensus {

class RoundRobinBft final : public Engine {
 public:
  RoundRobinBft(EngineContext context, EngineConfig config);

  void start() override;
  void stop() override;
  void on_message(net::NodeId from, const Bytes& payload) override;
  [[nodiscard]] std::string_view name() const override {
    return "round-robin-bft";
  }

 private:
  using VoteSet = std::map<std::size_t, crypto::Signature>;

  [[nodiscard]] const Validator& leader(chain::Epoch height,
                                        std::uint32_t round) const;
  void new_height();
  void start_round(std::uint32_t round);
  void broadcast(WireMsg msg);
  void handle(WireMsg msg);
  void maybe_commit(std::uint32_t round, const Cid& cid);

  EngineContext ctx_;
  EngineConfig cfg_;
  EngineMetrics metrics_;
  bool running_ = false;
  chain::Epoch height_ = 0;
  std::uint32_t round_ = 0;
  std::uint64_t timer_epoch_ = 0;
  bool acked_this_round_ = false;
  std::map<std::uint32_t, chain::Block> proposals_;
  std::map<std::uint32_t, std::map<Cid, VoteSet>> acks_;
  std::vector<WireMsg> future_;
};

}  // namespace hc::consensus
