#include "consensus/poa.hpp"

#include "common/log.hpp"

namespace hc::consensus {

PoaRoundRobin::PoaRoundRobin(EngineContext context, EngineConfig config)
    : ctx_(std::move(context)),
      cfg_(config),
      metrics_(ctx_, "poa-round-robin") {}

const Validator& PoaRoundRobin::leader(chain::Epoch height) const {
  const auto& members = ctx_.validators.members();
  return members[static_cast<std::size_t>(height) % members.size()];
}

void PoaRoundRobin::start() {
  running_ = true;
  if (ctx_.votes != nullptr) {
    if (const auto blob = ctx_.votes->recovered()) {
      if (auto st = decode<PoaVoteState>(*blob)) {
        // Never produce again for a height the pre-crash self already
        // signed a block for (the block may live on only in peers'
        // chains if the crash ate the un-fsynced tail).
        last_produced_ = std::max(last_produced_, st.value().last_produced);
      }
    }
  }
  timer_ = ctx_.scheduler->schedule(cfg_.block_time, [this] { tick(); });
}

void PoaRoundRobin::stop() {
  running_ = false;
  ctx_.scheduler->cancel(timer_);
}

void PoaRoundRobin::tick() {
  if (!running_) return;
  obs::ProfileScope prof(metrics_.step_phase());
  // Stall detection: if the chain has not advanced for a few ticks and it
  // is not our turn, ask peers whether we are behind.
  if (ctx_.source->head_height() == last_seen_head_) {
    if (++stalled_ticks_ >= 3) {
      stalled_ticks_ = 0;
      metrics_.timeout();
      request_catch_up();
    }
  } else {
    last_seen_head_ = ctx_.source->head_height();
    stalled_ticks_ = 0;
  }
  const chain::Epoch next = ctx_.source->head_height() + 1;
  if (next > last_produced_ &&
      ctx_.scheduler->now() >= no_produce_before_ &&
      leader(next).key == ctx_.key.public_key()) {
    last_produced_ = next;
    if (ctx_.votes != nullptr) {
      // Write-ahead: durable before the signed block leaves the node.
      ctx_.votes->persist(encode(PoaVoteState{last_produced_}));
    }
    metrics_.round();
    chain::Block block = ctx_.source->build_block(
        Address::key(ctx_.key.public_key().to_bytes()));
    const Cid cid = block.cid();
    WireMsg msg = WireMsg::make(WireKind::kBlock, next, 0, cid,
                                encode(block), ctx_.key);
    ctx_.network->publish(ctx_.node, ctx_.topic, encode(msg));
    // The leader commits its own block directly.
    ctx_.source->commit_block(std::move(block), encode(msg.signature));
    try_commit_pending();
  }
  timer_ = ctx_.scheduler->schedule(cfg_.block_time, [this] { tick(); });
}

void PoaRoundRobin::on_message(net::NodeId from,
                               const net::Envelope& payload) {
  (void)from;
  if (!running_) return;
  obs::ProfileScope prof(metrics_.step_phase());
  auto decoded = payload.decoded<WireMsg>();
  if (!decoded) return;
  WireMsg msg = *decoded.value();  // shared decode, private mutable copy
  if (!msg.verify()) return;

  if (msg.kind == WireKind::kAck) {
    // Catch-up request: a peer (validator or observer) is missing blocks
    // from msg.height on.
    serve_catch_up(msg.height);
    return;
  }
  if (msg.kind != WireKind::kBlock) return;

  // Authority: either signed by THE leader for that height, or a relayed
  // catch-up copy carrying the leader's original signature in `extra`.
  const bool from_leader = leader(msg.height).key == msg.sender;
  if (!from_leader) {
    auto relayed = decode<crypto::Signature>(msg.extra);
    if (!relayed) return;
    const Bytes payload_signed = WireMsg::signing_payload(
        WireKind::kBlock, msg.height, 0, msg.block_cid);
    if (!crypto::verify(leader(msg.height).key, payload_signed,
                        relayed.value())) {
      return;
    }
  }
  auto block = decode<chain::Block>(msg.block);
  if (!block || block.value().cid() != msg.block_cid) return;
  if (msg.height <= ctx_.source->head_height()) return;  // already have it
  const Bytes proof =
      from_leader ? encode(msg.signature) : msg.extra;
  pending_[msg.height] =
      PendingBlock{std::move(block).value(), proof, !from_leader};
  if (msg.height > ctx_.source->head_height() + 1 &&
      !pending_.contains(ctx_.source->head_height() + 1)) {
    request_catch_up();
  }
  try_commit_pending();
}

void PoaRoundRobin::request_catch_up() {
  // One request per block time: a served batch arriving out of order must
  // not trigger a fresh broadcast per block (every peer answers every
  // request with a signed batch — unthrottled, that feedback amplifies
  // exponentially until the scheduler drowns).
  const sim::Time now = ctx_.scheduler->now();
  if (last_catch_up_request_ >= 0 &&
      now < last_catch_up_request_ + cfg_.block_time) {
    return;
  }
  last_catch_up_request_ = now;
  metrics_.catch_up();
  ctx_.network->publish(
      ctx_.node, ctx_.topic,
      encode(WireMsg::make(WireKind::kAck, ctx_.source->head_height() + 1, 0,
                           Cid(), {}, ctx_.key)));
}

void PoaRoundRobin::serve_catch_up(chain::Epoch from) {
  constexpr chain::Epoch kMaxServe = 16;
  const chain::Epoch to =
      std::min(ctx_.source->head_height(), from + kMaxServe - 1);
  for (chain::Epoch h = from; h <= to; ++h) {
    auto block = ctx_.source->block_at(h);
    if (!block.has_value()) continue;
    WireMsg relay = WireMsg::make(WireKind::kBlock, h, 0, block->cid(),
                                  encode(*block), ctx_.key);
    relay.extra = ctx_.source->proof_at(h);
    ctx_.network->publish(ctx_.node, ctx_.topic, encode(relay));
  }
}

void PoaRoundRobin::try_commit_pending() {
  for (;;) {
    const chain::Epoch next = ctx_.source->head_height() + 1;
    auto it = pending_.find(next);
    if (it == pending_.end()) break;
    PendingBlock pb = std::move(it->second);
    pending_.erase(it);
    if (pb.block.header.parent != ctx_.source->head_cid()) continue;
    if (Status ok = ctx_.source->validate_block(pb.block); !ok) {
      LogLine(LogLevel::kWarn, ctx_.scope)
              .kv("height", pb.block.header.height)
          << "poa: rejecting block: " << ok.error().to_string();
      continue;
    }
    if (pb.relayed) {
      // Accepting a relayed copy proves we are replaying history; hold off
      // producing until replay has visibly drained (the window covers the
      // stall-detection delay plus a serve round trip, and every further
      // relayed commit re-arms it). Producing mid-replay would fork us off
      // the canonical chain at the first height where we are leader.
      no_produce_before_ = ctx_.scheduler->now() + 5 * cfg_.block_time;
    }
    ctx_.source->commit_block(std::move(pb.block), std::move(pb.proof));
  }
  // Garbage-collect stale buffered blocks.
  const chain::Epoch head = ctx_.source->head_height();
  std::erase_if(pending_,
                [&](const auto& kv) { return kv.first <= head; });
}

}  // namespace hc::consensus
