// Tendermint-style BFT consensus (propose / prevote / precommit).
//
// Paper §VI lists Tendermint as an integration target for subnets. This is
// a faithful (if compact) implementation of the 3-phase algorithm: rotating
// proposers per round, 2f+1 polka locking, nil-votes on timeout, and commit
// certificates (quorum certs) recorded as the block's consensus proof —
// which doubles as the light-client evidence a subnet can cite in its
// checkpoints (§II). Safe with up to f = (n-1)/3 Byzantine validators;
// liveness requires partial synchrony (timeouts grow with round number).
#pragma once

#include <map>
#include <optional>
#include <set>

#include "consensus/engine.hpp"
#include "consensus/wire.hpp"

namespace hc::consensus {

/// Durable vote state (DESIGN.md §15): everything a restarted validator
/// needs to avoid re-signing differently at a (height, round) its
/// pre-crash self already signed in. Persisted through the EngineContext
/// VoteStore before each proposal/prevote/precommit broadcast, last-wins.
struct TendermintVoteState {
  chain::Epoch height = 0;
  std::uint32_t round = 0;
  bool proposed = false;
  bool prevoted = false;
  bool precommitted = false;
  std::int64_t locked_round = -1;
  Bytes locked_block;  ///< encoded chain::Block; empty = no lock

  void encode_to(Encoder& e) const {
    e.i64(height)
        .u32(round)
        .u8(proposed ? 1 : 0)
        .u8(prevoted ? 1 : 0)
        .u8(precommitted ? 1 : 0)
        .i64(locked_round)
        .bytes(locked_block);
  }
  static Result<TendermintVoteState> decode_from(Decoder& d) {
    TendermintVoteState s;
    HC_TRY(height, d.i64());
    s.height = height;
    HC_TRY(round, d.u32());
    s.round = round;
    HC_TRY(proposed, d.u8());
    s.proposed = proposed != 0;
    HC_TRY(prevoted, d.u8());
    s.prevoted = prevoted != 0;
    HC_TRY(precommitted, d.u8());
    s.precommitted = precommitted != 0;
    HC_TRY(locked_round, d.i64());
    s.locked_round = locked_round;
    HC_TRY(locked_block, d.bytes());
    s.locked_block = std::move(locked_block);
    return s;
  }
};

class Tendermint final : public Engine {
 public:
  Tendermint(EngineContext context, EngineConfig config);

  void start() override;
  void stop() override;
  void on_message(net::NodeId from, const net::Envelope& payload) override;
  [[nodiscard]] std::string_view name() const override { return "tendermint"; }

  /// Rounds this node has burned waiting for silent/faulty proposers —
  /// visible to benches measuring liveness under faults.
  [[nodiscard]] std::uint64_t rounds_skipped() const {
    return rounds_skipped_;
  }

 private:
  enum class Step { kPropose, kPrevote, kPrecommit };

  /// Vote bookkeeping for one (round, cid): validator index -> signature.
  using VoteSet = std::map<std::size_t, crypto::Signature>;

  [[nodiscard]] const Validator& proposer(chain::Epoch height,
                                          std::uint32_t round) const;
  [[nodiscard]] bool i_am(const Validator& v) const {
    return v.key == ctx_.key.public_key();
  }
  [[nodiscard]] sim::Duration timeout_for(std::uint32_t round) const;

  void new_height();
  void start_round(std::uint32_t round);
  void broadcast(WireMsg msg);
  void handle(WireMsg msg);

  void on_proposal(WireMsg msg);
  void on_prevote(const WireMsg& msg);
  void on_precommit(const WireMsg& msg);
  void on_committed_block(WireMsg msg);

  void do_prevote(std::uint32_t round);
  void do_precommit(std::uint32_t round, const Cid& cid);
  void try_commit(std::uint32_t round, const Cid& cid);

  /// Write-ahead barrier: durably record the current vote state (no-op
  /// without a VoteStore). Called BEFORE any signed broadcast.
  void persist_votes();
  /// Rejoin the restored in-flight round without re-signing anything.
  void resume_round();
  /// True while the chain is still below a height the pre-crash self
  /// voted at (lost un-fsynced tail): stay passive, catch up only.
  [[nodiscard]] bool behind_restored() const {
    return restored_.has_value() && height_ < restored_->height;
  }

  [[nodiscard]] std::size_t count_votes(
      const std::map<std::uint32_t, std::map<Cid, VoteSet>>& votes,
      std::uint32_t round, const Cid& cid) const;

  EngineContext ctx_;
  EngineConfig cfg_;
  EngineMetrics metrics_;
  bool running_ = false;

  chain::Epoch height_ = 0;
  std::uint32_t round_ = 0;
  Step step_ = Step::kPropose;
  std::uint64_t timer_epoch_ = 0;  // invalidates stale timeout callbacks

  std::map<std::uint32_t, chain::Block> proposals_;  // by round
  std::map<std::uint32_t, std::map<Cid, VoteSet>> prevotes_;
  std::map<std::uint32_t, std::map<Cid, VoteSet>> precommits_;
  std::optional<chain::Block> locked_block_;
  std::int64_t locked_round_ = -1;
  bool proposed_this_round_ = false;
  bool prevoted_this_round_ = false;
  bool precommitted_this_round_ = false;
  /// Vote state recovered from the WAL, held until the chain reaches its
  /// height (then consumed by resume_round) or passes it (then dropped).
  std::optional<TendermintVoteState> restored_;

  /// Messages for future heights, replayed after commit.
  std::vector<WireMsg> future_;
  std::uint64_t rounds_skipped_ = 0;
};

}  // namespace hc::consensus
