// Consensus wire messages, shared by all engines.
#pragma once

#include <cstdint>

#include "chain/block.hpp"
#include "crypto/schnorr.hpp"

namespace hc::consensus {

enum class WireKind : std::uint8_t {
  kBlock = 0,      // committed/announced block (PoA, lottery, catch-up)
  kProposal = 1,   // BFT proposal carrying a block
  kPrevote = 2,    // Tendermint prevote
  kPrecommit = 3,  // Tendermint precommit
  kAck = 4,        // RRBFT acknowledgement
};

/// One consensus message. Votes reference blocks by CID; kBlock/kProposal
/// carry the encoded block. `signature` covers (kind, height, round, cid)
/// so votes are non-forgeable and usable in quorum certificates.
struct WireMsg {
  WireKind kind = WireKind::kBlock;
  chain::Epoch height = 0;
  std::uint32_t round = 0;
  Cid block_cid;       // null for nil-votes
  Bytes block;         // encoded chain::Block; empty for votes
  Bytes extra;         // engine-specific (e.g. commit certificates)
  crypto::PublicKey sender;
  crypto::Signature signature;

  /// The signed payload for this message's (kind, height, round, cid).
  [[nodiscard]] static Bytes signing_payload(WireKind kind,
                                             chain::Epoch height,
                                             std::uint32_t round,
                                             const Cid& cid);

  /// Build and sign a message.
  [[nodiscard]] static WireMsg make(WireKind kind, chain::Epoch height,
                                    std::uint32_t round, const Cid& cid,
                                    Bytes block, const crypto::KeyPair& key);

  /// Check the signature against `sender`.
  [[nodiscard]] bool verify() const;

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<WireMsg> decode_from(Decoder& d);
};

/// A quorum certificate: the votes that justified a commit. Stored as the
/// block's consensus proof and reused as checkpoint evidence.
struct QuorumCert {
  chain::Epoch height = 0;
  std::uint32_t round = 0;
  Cid block_cid;
  std::vector<crypto::PublicKey> signers;
  std::vector<crypto::Signature> signatures;

  /// Verify every signature is a valid precommit/ack for (height, round,
  /// cid) and that there are at least `quorum` distinct signers.
  [[nodiscard]] bool verify(WireKind vote_kind, std::size_t quorum) const;

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<QuorumCert> decode_from(Decoder& d);
};

}  // namespace hc::consensus
