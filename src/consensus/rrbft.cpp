#include "consensus/rrbft.hpp"

namespace hc::consensus {

RoundRobinBft::RoundRobinBft(EngineContext context, EngineConfig config)
    : ctx_(std::move(context)),
      cfg_(config),
      metrics_(ctx_, "round-robin-bft") {}

const Validator& RoundRobinBft::leader(chain::Epoch height,
                                       std::uint32_t round) const {
  const auto& members = ctx_.validators.members();
  return members[(static_cast<std::size_t>(height) + round) % members.size()];
}

void RoundRobinBft::start() {
  running_ = true;
  new_height();
}

void RoundRobinBft::stop() {
  running_ = false;
  ++timer_epoch_;
}

void RoundRobinBft::new_height() {
  height_ = ctx_.source->head_height() + 1;
  proposals_.clear();
  acks_.clear();
  std::vector<WireMsg> replay;
  replay.swap(future_);
  start_round(0);
  for (auto& m : replay) handle(std::move(m));
}

void RoundRobinBft::start_round(std::uint32_t round) {
  if (!running_) return;
  round_ = round;
  acked_this_round_ = false;
  metrics_.round();
  if (round > 0) metrics_.view_change();
  const std::uint64_t epoch = ++timer_epoch_;

  if (leader(height_, round).key == ctx_.key.public_key()) {
    // Pace block production: leaders wait out the block time before
    // proposing (round > 0 backups fire immediately — they are already
    // late).
    const sim::Duration delay = round == 0 ? cfg_.block_time : 0;
    ctx_.scheduler->schedule(delay, guarded([this, epoch, round] {
      if (!running_ || timer_epoch_ != epoch) return;
      obs::ProfileScope prof(metrics_.step_phase());
      chain::Block block = ctx_.source->build_block(
          Address::key(ctx_.key.public_key().to_bytes()));
      broadcast(WireMsg::make(WireKind::kProposal, height_, round,
                              block.cid(), encode(block), ctx_.key));
    }));
  }
  // Leader-failure timeout.
  const sim::Duration timeout =
      cfg_.block_time + cfg_.timeout_base +
      static_cast<sim::Duration>(round) * (cfg_.timeout_base / 2);
  ctx_.scheduler->schedule(timeout, guarded([this, epoch, round] {
    if (!running_ || timer_epoch_ != epoch) return;
    if (round == round_) {
      metrics_.timeout();
      start_round(round + 1);
    }
  }));
}

void RoundRobinBft::broadcast(WireMsg msg) {
  ctx_.network->publish(ctx_.node, ctx_.topic, encode(msg));
  handle(std::move(msg));
}

void RoundRobinBft::on_message(net::NodeId from, const Bytes& payload) {
  (void)from;
  if (!running_) return;
  auto decoded = decode<WireMsg>(payload);
  if (!decoded) return;
  handle(std::move(decoded).value());
}

void RoundRobinBft::handle(WireMsg msg) {
  obs::ProfileScope prof(metrics_.step_phase());
  if (!msg.verify()) return;
  if (msg.height < height_) return;
  if (msg.height > height_) {
    if (future_.size() < 4096) future_.push_back(std::move(msg));
    return;
  }
  if (msg.kind == WireKind::kProposal) {
    if (!(leader(height_, msg.round).key == msg.sender)) return;
    auto block = decode<chain::Block>(msg.block);
    if (!block || block.value().cid() != msg.block_cid) return;
    proposals_[msg.round] = std::move(block).value();
    if (msg.round == round_ && !acked_this_round_ &&
        ctx_.validators.index_of(ctx_.key.public_key()).has_value() &&
        ctx_.source->validate_block(proposals_[msg.round]).ok()) {
      acked_this_round_ = true;
      broadcast(WireMsg::make(WireKind::kAck, height_, msg.round,
                              msg.block_cid, {}, ctx_.key));
    }
    return;
  }
  if (msg.kind == WireKind::kAck) {
    const auto idx = ctx_.validators.index_of(msg.sender);
    if (!idx.has_value()) return;
    acks_[msg.round][msg.block_cid].emplace(*idx, msg.signature);
    maybe_commit(msg.round, msg.block_cid);
  }
}

void RoundRobinBft::maybe_commit(std::uint32_t round, const Cid& cid) {
  const auto rit = acks_.find(round);
  if (rit == acks_.end()) return;
  const auto cit = rit->second.find(cid);
  if (cit == rit->second.end()) return;
  if (cit->second.size() < ctx_.validators.quorum()) return;

  auto pit = proposals_.find(round);
  if (pit == proposals_.end() || pit->second.cid() != cid) return;
  chain::Block block = pit->second;
  if (block.header.parent != ctx_.source->head_cid()) return;

  QuorumCert cert;
  cert.height = height_;
  cert.round = round;
  cert.block_cid = cid;
  for (const auto& [index, sig] : cit->second) {
    cert.signers.push_back(ctx_.validators.members()[index].key);
    cert.signatures.push_back(sig);
  }
  ctx_.source->commit_block(std::move(block), encode(cert));
  new_height();
}

}  // namespace hc::consensus
