#include "consensus/rrbft.hpp"

namespace hc::consensus {

RoundRobinBft::RoundRobinBft(EngineContext context, EngineConfig config)
    : ctx_(std::move(context)),
      cfg_(config),
      metrics_(ctx_, "round-robin-bft") {}

const Validator& RoundRobinBft::leader(chain::Epoch height,
                                       std::uint32_t round) const {
  const auto& members = ctx_.validators.members();
  return members[(static_cast<std::size_t>(height) + round) % members.size()];
}

void RoundRobinBft::start() {
  running_ = true;
  if (ctx_.votes != nullptr) {
    if (const auto blob = ctx_.votes->recovered()) {
      if (auto st = decode<RrBftVoteState>(*blob)) {
        restored_ = std::move(st).value();
      }
    }
  }
  new_height();
}

void RoundRobinBft::persist_votes() {
  if (ctx_.votes == nullptr) return;
  RrBftVoteState st;
  st.height = height_;
  st.round = round_;
  st.proposed = proposed_this_round_;
  st.acked = acked_this_round_;
  ctx_.votes->persist(encode(st));
}

void RoundRobinBft::stop() {
  running_ = false;
  ++timer_epoch_;
}

void RoundRobinBft::new_height() {
  height_ = ctx_.source->head_height() + 1;
  proposals_.clear();
  acks_.clear();
  std::vector<WireMsg> replay;
  replay.swap(future_);
  if (restored_.has_value() && restored_->height < height_) restored_.reset();
  if (restored_.has_value() && restored_->height == height_) {
    resume_round();
  } else {
    start_round(0);
  }
  for (auto& m : replay) handle(std::move(m));
}

void RoundRobinBft::resume_round() {
  // Rejoin the round the pre-crash self signed in. The persisted flags
  // gate the proposal and ACK paths, so nothing is re-signed; the
  // leader-failure timeout then advances to round+1 as usual.
  const RrBftVoteState st = *restored_;
  restored_.reset();
  round_ = st.round;
  proposed_this_round_ = st.proposed;
  acked_this_round_ = st.acked;
  metrics_.round();
  const std::uint64_t epoch = ++timer_epoch_;
  const std::uint32_t round = round_;
  const sim::Duration timeout =
      cfg_.block_time + cfg_.timeout_base +
      static_cast<sim::Duration>(round) * (cfg_.timeout_base / 2);
  ctx_.scheduler->schedule(timeout, guarded([this, epoch, round] {
    if (!running_ || timer_epoch_ != epoch) return;
    if (round == round_) {
      metrics_.timeout();
      start_round(round + 1);
    }
  }));
}

void RoundRobinBft::start_round(std::uint32_t round) {
  if (!running_) return;
  round_ = round;
  proposed_this_round_ = false;
  acked_this_round_ = false;
  metrics_.round();
  if (round > 0) metrics_.view_change();
  const std::uint64_t epoch = ++timer_epoch_;

  if (leader(height_, round).key == ctx_.key.public_key()) {
    // Pace block production: leaders wait out the block time before
    // proposing (round > 0 backups fire immediately — they are already
    // late).
    const sim::Duration delay = round == 0 ? cfg_.block_time : 0;
    ctx_.scheduler->schedule(delay, guarded([this, epoch, round] {
      if (!running_ || timer_epoch_ != epoch) return;
      if (behind_restored()) return;  // passive until past pre-crash votes
      obs::ProfileScope prof(metrics_.step_phase());
      chain::Block block = ctx_.source->build_block(
          Address::key(ctx_.key.public_key().to_bytes()));
      proposed_this_round_ = true;
      persist_votes();  // write-ahead: durable before the proposal is out
      broadcast(WireMsg::make(WireKind::kProposal, height_, round,
                              block.cid(), encode(block), ctx_.key));
    }));
  }
  // Leader-failure timeout.
  const sim::Duration timeout =
      cfg_.block_time + cfg_.timeout_base +
      static_cast<sim::Duration>(round) * (cfg_.timeout_base / 2);
  ctx_.scheduler->schedule(timeout, guarded([this, epoch, round] {
    if (!running_ || timer_epoch_ != epoch) return;
    if (round == round_) {
      metrics_.timeout();
      start_round(round + 1);
    }
  }));
}

void RoundRobinBft::broadcast(WireMsg msg) {
  ctx_.network->publish(ctx_.node, ctx_.topic, encode(msg));
  handle(std::move(msg));
}

void RoundRobinBft::on_message(net::NodeId from,
                               const net::Envelope& payload) {
  (void)from;
  if (!running_) return;
  auto decoded = payload.decoded<WireMsg>();
  if (!decoded) return;
  handle(*decoded.value());  // shared decode, private mutable copy
}

void RoundRobinBft::handle(WireMsg msg) {
  obs::ProfileScope prof(metrics_.step_phase());
  if (!msg.verify()) return;
  if (msg.height < height_) {
    // A proposal or ACK below our height means a live validator is behind
    // (typically crash-restarted with a lost chain tail): serve it the
    // committed blocks. Stale kBlock relays don't indicate anyone behind.
    if (msg.kind != WireKind::kBlock) serve_catch_up(msg.height);
    return;
  }
  if (msg.height > height_) {
    if (future_.size() < 4096) future_.push_back(std::move(msg));
    return;
  }
  if (msg.kind == WireKind::kBlock) {
    on_committed_block(msg);
    return;
  }
  if (msg.kind == WireKind::kProposal) {
    if (!(leader(height_, msg.round).key == msg.sender)) return;
    auto block = decode<chain::Block>(msg.block);
    if (!block || block.value().cid() != msg.block_cid) return;
    proposals_[msg.round] = std::move(block).value();
    // Round synchronization: a valid proposal from THE leader of a later
    // round pulls us forward. A restarted validator rejoins at its
    // persisted round while peers timed out far past it; without the jump
    // the two sides chase round counters and never overlap. Acking a round
    // we never signed in is safe — the jump only skips rounds forward.
    if (msg.round > round_) start_round(msg.round);
    if (msg.round == round_ && !acked_this_round_ && !behind_restored() &&
        ctx_.validators.index_of(ctx_.key.public_key()).has_value() &&
        ctx_.source->validate_block(proposals_[msg.round]).ok()) {
      acked_this_round_ = true;
      persist_votes();  // write-ahead: durable before the ACK is out
      broadcast(WireMsg::make(WireKind::kAck, height_, msg.round,
                              msg.block_cid, {}, ctx_.key));
    }
    return;
  }
  if (msg.kind == WireKind::kAck) {
    const auto idx = ctx_.validators.index_of(msg.sender);
    if (!idx.has_value()) return;
    acks_[msg.round][msg.block_cid].emplace(*idx, msg.signature);
    maybe_commit(msg.round, msg.block_cid);
  }
}

void RoundRobinBft::maybe_commit(std::uint32_t round, const Cid& cid) {
  const auto rit = acks_.find(round);
  if (rit == acks_.end()) return;
  const auto cit = rit->second.find(cid);
  if (cit == rit->second.end()) return;
  if (cit->second.size() < ctx_.validators.quorum()) return;

  auto pit = proposals_.find(round);
  if (pit == proposals_.end() || pit->second.cid() != cid) return;
  chain::Block block = pit->second;
  if (block.header.parent != ctx_.source->head_cid()) return;

  QuorumCert cert;
  cert.height = height_;
  cert.round = round;
  cert.block_cid = cid;
  for (const auto& [index, sig] : cit->second) {
    cert.signers.push_back(ctx_.validators.members()[index].key);
    cert.signatures.push_back(sig);
  }
  const Bytes proof = encode(cert);
  ctx_.source->commit_block(std::move(block), proof);

  // Catch-up announce: a peer that missed the ACK quorum (down, partitioned,
  // or freshly restarted) commits from the certificate alone.
  WireMsg announce = WireMsg::make(WireKind::kBlock, cert.height, round, cid,
                                   encode(pit->second), ctx_.key);
  announce.extra = proof;
  ctx_.network->publish(ctx_.node, ctx_.topic, encode(announce));

  new_height();
}

void RoundRobinBft::serve_catch_up(chain::Epoch from) {
  // One batch per block time: every peer sees every stale message, and an
  // unthrottled response would answer each straggler with a full batch.
  const sim::Time now = ctx_.scheduler->now();
  if (last_catch_up_serve_ >= 0 &&
      now < last_catch_up_serve_ + cfg_.block_time) {
    return;
  }
  last_catch_up_serve_ = now;
  metrics_.catch_up();
  constexpr chain::Epoch kMaxServe = 8;
  const chain::Epoch to =
      std::min(ctx_.source->head_height(), from + kMaxServe - 1);
  for (chain::Epoch h = from; h <= to; ++h) {
    auto block = ctx_.source->block_at(h);
    const Bytes proof = ctx_.source->proof_at(h);
    if (!block.has_value() || proof.empty()) continue;
    WireMsg relay = WireMsg::make(WireKind::kBlock, h, 0, block->cid(),
                                  encode(*block), ctx_.key);
    relay.extra = proof;
    ctx_.network->publish(ctx_.node, ctx_.topic, encode(relay));
  }
}

void RoundRobinBft::on_committed_block(const WireMsg& msg) {
  if (msg.height != ctx_.source->head_height() + 1) return;
  auto cert_r = decode<QuorumCert>(msg.extra);
  if (!cert_r) return;
  const QuorumCert cert = std::move(cert_r).value();
  if (cert.block_cid != msg.block_cid || cert.height != msg.height) return;
  for (const auto& key : cert.signers) {
    if (!ctx_.validators.index_of(key).has_value()) return;
  }
  if (!cert.verify(WireKind::kAck, ctx_.validators.quorum())) return;
  auto block_r = decode<chain::Block>(msg.block);
  if (!block_r || block_r.value().cid() != msg.block_cid) return;
  chain::Block block = std::move(block_r).value();
  if (block.header.parent != ctx_.source->head_cid()) return;
  if (!ctx_.source->validate_block(block).ok()) return;
  ctx_.source->commit_block(std::move(block), msg.extra);
  new_height();
}

}  // namespace hc::consensus
