#include "consensus/engine.hpp"

#include "consensus/lottery.hpp"
#include "consensus/poa.hpp"
#include "consensus/rrbft.hpp"
#include "consensus/tendermint.hpp"

namespace hc::consensus {

std::uint64_t ValidatorSet::total_power() const {
  std::uint64_t total = 0;
  for (const auto& m : members_) total += m.power;
  return total;
}

EngineMetrics::EngineMetrics(const EngineContext& ctx,
                             std::string_view engine) {
  auto& metrics = obs::obs_or_default(ctx.obs).metrics;
  const obs::Labels labels{{"engine", std::string(engine)},
                           {"subnet", ctx.scope}};
  rounds_ = &metrics.counter("consensus_rounds_total", labels);
  view_changes_ = &metrics.counter("consensus_view_changes_total", labels);
  timeouts_ = &metrics.counter("consensus_timeouts_total", labels);
  catchups_ = &metrics.counter("consensus_catchup_requests_total", labels);
  step_phase_ = obs::Profiler::instance().phase("consensus/" +
                                                std::string(engine) + "/step");
}

std::optional<std::size_t> ValidatorSet::index_of(
    const crypto::PublicKey& key) const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].key == key) return i;
  }
  return std::nullopt;
}

std::unique_ptr<Engine> make_engine(core::ConsensusType type,
                                    EngineContext context,
                                    EngineConfig config) {
  switch (type) {
    case core::ConsensusType::kPoaRoundRobin:
      return std::make_unique<PoaRoundRobin>(std::move(context), config);
    case core::ConsensusType::kPowerLottery:
      return std::make_unique<PowerLottery>(std::move(context), config);
    case core::ConsensusType::kTendermint:
      return std::make_unique<Tendermint>(std::move(context), config);
    case core::ConsensusType::kRoundRobinBft:
      return std::make_unique<RoundRobinBft>(std::move(context), config);
  }
  return nullptr;
}

}  // namespace hc::consensus
