#include "crypto/sigcache.hpp"
#include "consensus/wire.hpp"

#include <set>

namespace hc::consensus {

Bytes WireMsg::signing_payload(WireKind kind, chain::Epoch height,
                               std::uint32_t round, const Cid& cid) {
  Encoder e;
  e.str("hc/consensus-vote");
  e.u8(static_cast<std::uint8_t>(kind)).i64(height).u32(round).obj(cid);
  return std::move(e).take();
}

WireMsg WireMsg::make(WireKind kind, chain::Epoch height, std::uint32_t round,
                      const Cid& cid, Bytes block,
                      const crypto::KeyPair& key) {
  WireMsg m;
  m.kind = kind;
  m.height = height;
  m.round = round;
  m.block_cid = cid;
  m.block = std::move(block);
  m.sender = key.public_key();
  m.signature = key.sign(signing_payload(kind, height, round, cid));
  return m;
}

bool WireMsg::verify() const {
  return crypto::verify_cached(
      sender, signing_payload(kind, height, round, block_cid), signature);
}

void WireMsg::encode_to(Encoder& e) const {
  e.u8(static_cast<std::uint8_t>(kind)).i64(height).u32(round);
  e.obj(block_cid).bytes(block).bytes(extra).obj(sender).obj(signature);
}

Result<WireMsg> WireMsg::decode_from(Decoder& d) {
  WireMsg m;
  HC_TRY(kind, d.u8());
  if (kind > 4) return Error(Errc::kDecodeError, "bad wire kind");
  HC_TRY(height, d.i64());
  HC_TRY(round, d.u32());
  HC_TRY(cid, d.obj<Cid>());
  HC_TRY(block, d.bytes());
  HC_TRY(extra, d.bytes());
  HC_TRY(sender, d.obj<crypto::PublicKey>());
  HC_TRY(sig, d.obj<crypto::Signature>());
  m.kind = static_cast<WireKind>(kind);
  m.height = height;
  m.round = round;
  m.block_cid = cid;
  m.block = std::move(block);
  m.extra = std::move(extra);
  m.sender = sender;
  m.signature = sig;
  return m;
}

bool QuorumCert::verify(WireKind vote_kind, std::size_t quorum) const {
  if (signers.size() != signatures.size()) return false;
  const Bytes payload =
      WireMsg::signing_payload(vote_kind, height, round, block_cid);
  std::set<Bytes> seen;
  std::size_t valid = 0;
  for (std::size_t i = 0; i < signers.size(); ++i) {
    if (!seen.insert(signers[i].to_bytes()).second) return false;
    if (!crypto::verify_cached(signers[i], payload, signatures[i])) {
      return false;
    }
    ++valid;
  }
  return valid >= quorum;
}

void QuorumCert::encode_to(Encoder& e) const {
  e.i64(height).u32(round).obj(block_cid).vec(signers).vec(signatures);
}

Result<QuorumCert> QuorumCert::decode_from(Decoder& d) {
  QuorumCert q;
  HC_TRY(height, d.i64());
  HC_TRY(round, d.u32());
  HC_TRY(cid, d.obj<Cid>());
  HC_TRY(signers, d.vec<crypto::PublicKey>());
  HC_TRY(sigs, d.vec<crypto::Signature>());
  q.height = height;
  q.round = round;
  q.block_cid = cid;
  q.signers = std::move(signers);
  q.signatures = std::move(sigs);
  return q;
}

}  // namespace hc::consensus
