#include "common/errors.hpp"

namespace hc {

std::string_view errc_name(Errc code) {
  switch (code) {
    case Errc::kOk: return "kOk";
    case Errc::kInvalidArgument: return "kInvalidArgument";
    case Errc::kNotFound: return "kNotFound";
    case Errc::kAlreadyExists: return "kAlreadyExists";
    case Errc::kOutOfRange: return "kOutOfRange";
    case Errc::kDecodeError: return "kDecodeError";
    case Errc::kInsufficientFunds: return "kInsufficientFunds";
    case Errc::kPermissionDenied: return "kPermissionDenied";
    case Errc::kInvalidSignature: return "kInvalidSignature";
    case Errc::kInvalidNonce: return "kInvalidNonce";
    case Errc::kStateConflict: return "kStateConflict";
    case Errc::kUnavailable: return "kUnavailable";
    case Errc::kTimeout: return "kTimeout";
    case Errc::kAborted: return "kAborted";
    case Errc::kExhausted: return "kExhausted";
    case Errc::kInternal: return "kInternal";
    case Errc::kOverloaded: return "kOverloaded";
  }
  return "kUnknown";
}

std::string Error::to_string() const {
  std::string out(errc_name(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace hc
