// Bump-pointer arena for hot-path transients.
//
// The execute/commit path creates many short-lived buffers whose lifetime is
// bounded by a block (or a mempool admission attempt): canonical re-encodes
// for signature checks, receipt scratch, key material. An Arena services
// those from contiguous chunks with a pointer bump and releases them all at
// one deterministic reset point (end of apply_block / admission), so the
// general-purpose heap sees one amortized allocation per chunk instead of
// one per transient.
//
// Arenas are strictly single-threaded: each owner (an Executor, a Mempool)
// keeps its own, and owners only run from their subnet's scheduler lane.
// Stats are plain local counters the owner flushes to obs at deterministic
// points — common/ cannot depend on obs/ (obs depends on common).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "common/codec.hpp"

namespace hc {

class Arena {
 public:
  /// `chunk_size` is the granularity of heap requests; oversized single
  /// allocations get a dedicated chunk of exactly their size.
  explicit Arena(std::size_t chunk_size = 64 * 1024)
      : chunk_size_(chunk_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `n` bytes (8-byte aligned). Valid until
  /// reset().
  [[nodiscard]] std::uint8_t* allocate(std::size_t n) {
    const std::size_t need = (n + 7) & ~std::size_t{7};
    stats_.bytes_requested += n;
    if (used_ + need > cap_) grow(need);
    std::uint8_t* p = cur_ + used_;
    used_ += need;
    live_ += need;
    if (live_ > stats_.high_water) stats_.high_water = live_;
    return p;
  }

  /// Copy a byte view into the arena; the returned view aliases arena
  /// storage and dies at reset().
  [[nodiscard]] BytesView copy(BytesView src) {
    std::uint8_t* p = allocate(src.size());
    if (!src.empty()) std::memcpy(p, src.data(), src.size());
    return {p, src.size()};
  }

  /// Canonically encode `v` into arena storage: a counting pass sizes the
  /// buffer, then an external-mode Encoder fills it. No heap traffic, no
  /// realloc — the hot-path replacement for `encode<T>()` when the bytes
  /// only need to live until the next reset (e.g. signature payloads).
  template <typename T>
  [[nodiscard]] BytesView encode_obj(const T& v) {
    const std::size_t n = encoded_size(v);
    std::uint8_t* p = allocate(n);
    Encoder e(p, n);
    e.obj(v);
    return {p, n};
  }

  /// Invalidate every outstanding allocation. Chunks are retained (the
  /// steady state allocates nothing), except oversized one-off chunks which
  /// are returned to the heap.
  void reset() {
    for (auto it = chunks_.begin(); it != chunks_.end();) {
      if (it->size > chunk_size_) {
        it = chunks_.erase(it);
      } else {
        ++it;
      }
    }
    cur_ = chunks_.empty() ? nullptr : chunks_.front().data.get();
    cap_ = chunks_.empty() ? 0 : chunks_.front().size;
    chunk_idx_ = 0;
    used_ = 0;
    live_ = 0;
  }

  struct Stats {
    std::uint64_t bytes_requested = 0;  // cumulative allocate() demand
    std::uint64_t high_water = 0;       // max live bytes between resets
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Consume the cumulative demand counter (owner flushes the delta into an
  /// obs counter at a deterministic point).
  [[nodiscard]] std::uint64_t take_bytes_requested() {
    const std::uint64_t v = stats_.bytes_requested;
    stats_.bytes_requested = 0;
    return v;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size;
  };

  void grow(std::size_t need) {
    // Reuse a retained chunk if the next one fits, else allocate.
    while (chunk_idx_ + 1 < chunks_.size()) {
      ++chunk_idx_;
      if (chunks_[chunk_idx_].size >= need) {
        cur_ = chunks_[chunk_idx_].data.get();
        cap_ = chunks_[chunk_idx_].size;
        used_ = 0;
        return;
      }
    }
    const std::size_t size = need > chunk_size_ ? need : chunk_size_;
    chunks_.push_back(Chunk{std::make_unique<std::uint8_t[]>(size), size});
    chunk_idx_ = chunks_.size() - 1;
    cur_ = chunks_.back().data.get();
    cap_ = size;
    used_ = 0;
  }

  std::size_t chunk_size_;
  std::vector<Chunk> chunks_;
  std::size_t chunk_idx_ = 0;
  std::uint8_t* cur_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t used_ = 0;   // offset into current chunk
  std::size_t live_ = 0;   // total live bytes since last reset
  Stats stats_;
};

}  // namespace hc
