// Content Identifier (CID).
//
// A CID uniquely identifies a piece of content by the SHA-256 digest of its
// canonical encoding, tagged with a codec describing what the content is
// (paper §III-B: "Checkpoints are always identified through their Content
// Identifier (CID), a unique identifier inferred from the checkpoint's
// hash"). The codec tag mirrors multiformats CIDs without the multibase
// framing.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "common/hash.hpp"

namespace hc {

/// What kind of content a CID points to. Purely informational; equality and
/// lookup include the codec so distinct kinds never collide.
enum class CidCodec : std::uint8_t {
  kRaw = 0,         // opaque bytes
  kMessage = 1,     // chain message
  kBlock = 2,       // block
  kStateRoot = 3,   // state tree commitment
  kCheckpoint = 4,  // subnet checkpoint
  kCrossMsgs = 5,   // batch of cross-net messages (CrossMsgMeta payload)
  kActorState = 6,  // actor state blob
};

class Cid {
 public:
  /// The zero CID: used as "no previous checkpoint" / "no parent" sentinel.
  Cid() : codec_(CidCodec::kRaw), digest_{} {}

  Cid(CidCodec codec, Digest digest) : codec_(codec), digest_(digest) {}

  /// CID of a content blob under the given codec.
  [[nodiscard]] static Cid of(CidCodec codec, BytesView content) {
    return Cid(codec, Sha256::hash(content));
  }

  [[nodiscard]] CidCodec codec() const { return codec_; }
  [[nodiscard]] const Digest& digest() const { return digest_; }

  /// True iff this is the default/zero sentinel.
  [[nodiscard]] bool is_null() const;

  /// Short human form, e.g. "cid:4:a1b2c3d4…" (codec + first 8 digest hex).
  [[nodiscard]] std::string to_string() const;
  /// Full hex form.
  [[nodiscard]] std::string to_hex() const;

  friend auto operator<=>(const Cid&, const Cid&) = default;

  void encode_to(Encoder& e) const {
    e.u8(static_cast<std::uint8_t>(codec_)).raw(digest_view(digest_));
  }
  [[nodiscard]] static Result<Cid> decode_from(Decoder& d);

 private:
  CidCodec codec_;
  Digest digest_;
};

}  // namespace hc

template <>
struct std::hash<hc::Cid> {
  std::size_t operator()(const hc::Cid& c) const noexcept {
    // The digest is itself uniformly distributed; fold the first 8 bytes.
    std::size_t h = 0;
    for (int i = 0; i < 8; ++i) {
      h = (h << 8) | c.digest()[static_cast<std::size_t>(i)];
    }
    return h ^ static_cast<std::size_t>(c.codec());
  }
};
