#include "common/codec.hpp"

#include <cassert>

namespace hc {

std::atomic<std::uint64_t>& codec_realloc_count() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

void Encoder::put_byte(std::uint8_t b) { put(&b, 1); }

void Encoder::put(const std::uint8_t* p, std::size_t n) {
  if (n == 0) return;
  if (counting_) {
    size_ += n;
    return;
  }
  if (ext_ != nullptr) {
    assert(size_ + n <= ext_cap_ && "external encode buffer undersized");
    std::memcpy(ext_ + size_, p, n);
    size_ += n;
    return;
  }
  if (buf_.size() + n > buf_.capacity() && buf_.capacity() != 0) {
    codec_realloc_count().fetch_add(1, std::memory_order_relaxed);
  }
  buf_.insert(buf_.end(), p, p + n);
  size_ = buf_.size();
}

Encoder& Encoder::u8(std::uint8_t v) {
  put_byte(v);
  return *this;
}

Encoder& Encoder::u16(std::uint16_t v) {
  const std::uint8_t b[2] = {static_cast<std::uint8_t>(v >> 8),
                             static_cast<std::uint8_t>(v)};
  put(b, 2);
  return *this;
}

Encoder& Encoder::u32(std::uint32_t v) {
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) {
    b[i] = static_cast<std::uint8_t>(v >> (24 - 8 * i));
  }
  put(b, 4);
  return *this;
}

Encoder& Encoder::u64(std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
  }
  put(b, 8);
  return *this;
}

Encoder& Encoder::i64(std::int64_t v) {
  return u64(static_cast<std::uint64_t>(v));
}

Encoder& Encoder::varint(std::uint64_t v) {
  std::uint8_t b[10];
  std::size_t n = 0;
  while (v >= 0x80) {
    b[n++] = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  b[n++] = static_cast<std::uint8_t>(v);
  put(b, n);
  return *this;
}

Encoder& Encoder::boolean(bool v) { return u8(v ? 1 : 0); }

Encoder& Encoder::bytes(BytesView v) {
  varint(v.size());
  return raw(v);
}

Encoder& Encoder::str(std::string_view v) {
  varint(v.size());
  put(reinterpret_cast<const std::uint8_t*>(v.data()), v.size());
  return *this;
}

Encoder& Encoder::raw(BytesView v) {
  put(v.data(), v.size());
  return *this;
}

Status Decoder::need(std::size_t n) {
  if (data_.size() - pos_ < n) {
    return Error(Errc::kDecodeError, "unexpected end of input");
  }
  return ok_status();
}

Result<std::uint8_t> Decoder::u8() {
  HC_TRY_STATUS(need(1));
  return data_[pos_++];
}

Result<std::uint16_t> Decoder::u16() {
  HC_TRY_STATUS(need(2));
  std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

Result<std::uint32_t> Decoder::u32() {
  HC_TRY_STATUS(need(4));
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

Result<std::uint64_t> Decoder::u64() {
  HC_TRY_STATUS(need(8));
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

Result<std::int64_t> Decoder::i64() {
  HC_TRY(v, u64());
  return static_cast<std::int64_t>(v);
}

Result<std::uint64_t> Decoder::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    HC_TRY_STATUS(need(1));
    const std::uint8_t b = data_[pos_++];
    if (shift == 63 && (b & 0x7e) != 0) {
      return Error(Errc::kDecodeError, "varint overflow");
    }
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      // Canonicality: reject non-minimal encodings (a zero final group
      // after a continuation), so every value has exactly one encoding —
      // required for content addressing to be injective.
      if (shift > 0 && b == 0) {
        return Error(Errc::kDecodeError, "non-minimal varint");
      }
      break;
    }
    shift += 7;
    if (shift > 63) return Error(Errc::kDecodeError, "varint too long");
  }
  return v;
}

Result<bool> Decoder::boolean() {
  HC_TRY(v, u8());
  if (v > 1) return Error(Errc::kDecodeError, "invalid boolean");
  return v == 1;
}

Result<Bytes> Decoder::bytes() {
  HC_TRY(len, varint());
  if (len > remaining()) return Error(Errc::kDecodeError, "bytes overrun");
  return raw(static_cast<std::size_t>(len));
}

Result<std::string> Decoder::str() {
  HC_TRY(b, bytes());
  return std::string(b.begin(), b.end());
}

Result<Bytes> Decoder::raw(std::size_t n) {
  HC_TRY_STATUS(need(n));
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace hc
