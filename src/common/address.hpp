// Account/actor addresses.
//
// Two address classes, mirroring Filecoin's scheme:
//   - ID addresses ("f0<n>"): compact sequential ids assigned by the Init
//     actor; used for system actors and as the canonical on-chain identity.
//   - Key addresses ("f1<hex>"): hash of a public key; used by externally
//     owned accounts before/while an ID is assigned.
//
// Addresses are *subnet-local*: the same Address may exist in many subnets
// with unrelated state. Cross-net message routing pairs an Address with a
// SubnetId (see core/subnet_id.hpp).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "common/codec.hpp"
#include "common/hash.hpp"

namespace hc {

class Address {
 public:
  enum class Kind : std::uint8_t { kInvalid = 0, kId = 1, kKey = 2 };

  /// Invalid/empty address.
  Address() = default;

  /// ID address f0<id>.
  [[nodiscard]] static Address id(std::uint64_t actor_id) {
    Address a;
    a.kind_ = Kind::kId;
    a.id_ = actor_id;
    return a;
  }

  /// Key address from a public key (f1<hash>).
  [[nodiscard]] static Address key(BytesView pubkey) {
    Address a;
    a.kind_ = Kind::kKey;
    a.key_hash_ = Sha256::hash(pubkey);
    a.id_ = 0;
    return a;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool valid() const { return kind_ != Kind::kInvalid; }
  [[nodiscard]] bool is_id() const { return kind_ == Kind::kId; }

  /// Actor id; only meaningful for ID addresses.
  [[nodiscard]] std::uint64_t actor_id() const { return id_; }

  /// Public-key hash; only meaningful for key addresses.
  [[nodiscard]] const Digest& key_hash() const { return key_hash_; }

  /// "f065" or "f1a3b4…" or "<invalid>".
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const Address&, const Address&) = default;

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<Address> decode_from(Decoder& d);

 private:
  Kind kind_ = Kind::kInvalid;
  std::uint64_t id_ = 0;
  Digest key_hash_{};
};

}  // namespace hc

template <>
struct std::hash<hc::Address> {
  std::size_t operator()(const hc::Address& a) const noexcept {
    if (a.kind() == hc::Address::Kind::kId) {
      return std::hash<std::uint64_t>{}(a.actor_id()) ^ 0x9e3779b97f4a7c15ull;
    }
    std::size_t h = static_cast<std::size_t>(a.kind());
    for (int i = 0; i < 8; ++i) {
      h = (h << 8) | a.key_hash()[static_cast<std::size_t>(i)];
    }
    return h;
  }
};
