// TokenAmount: checked 128-bit fixed-point token arithmetic.
//
// Amounts are held in "atto" units (10^-18 of a whole token), matching
// Filecoin's attoFIL. All arithmetic is overflow-checked: supply accounting
// is the foundation of the paper's firewall property (§II), so silent
// wraparound would be a correctness disaster. Amounts may be transiently
// negative only inside accounting deltas; the chain layer enforces
// non-negative balances.
#pragma once

#include <compare>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/codec.hpp"

namespace hc {

class TokenAmount {
 public:
  /// Zero tokens.
  constexpr TokenAmount() = default;

  /// From raw atto units.
  [[nodiscard]] static constexpr TokenAmount atto(__int128 v) {
    return TokenAmount(v);
  }

  /// From whole tokens (10^18 atto each).
  [[nodiscard]] static constexpr TokenAmount whole(std::int64_t tokens) {
    return TokenAmount(static_cast<__int128>(tokens) * kAttoPerToken);
  }

  [[nodiscard]] constexpr __int128 raw() const { return v_; }
  [[nodiscard]] constexpr bool is_zero() const { return v_ == 0; }
  [[nodiscard]] constexpr bool negative() const { return v_ < 0; }

  /// Whole-token part (truncated toward zero), e.g. for display.
  [[nodiscard]] constexpr std::int64_t whole_part() const {
    return static_cast<std::int64_t>(v_ / kAttoPerToken);
  }

  /// "12.000000000000000345 tok" style rendering.
  [[nodiscard]] std::string to_string() const;

  TokenAmount& operator+=(TokenAmount rhs);
  TokenAmount& operator-=(TokenAmount rhs);
  [[nodiscard]] friend TokenAmount operator+(TokenAmount a, TokenAmount b) {
    a += b;
    return a;
  }
  [[nodiscard]] friend TokenAmount operator-(TokenAmount a, TokenAmount b) {
    a -= b;
    return a;
  }
  [[nodiscard]] TokenAmount operator-() const { return TokenAmount(-v_); }

  /// Scalar multiply (gas pricing). Throws std::overflow_error on overflow.
  friend TokenAmount operator*(TokenAmount a, std::uint64_t k);

  friend constexpr auto operator<=>(TokenAmount, TokenAmount) = default;

  void encode_to(Encoder& e) const;
  [[nodiscard]] static Result<TokenAmount> decode_from(Decoder& d);

  static constexpr __int128 kAttoPerToken = static_cast<__int128>(1000000000ull) * 1000000000ull;

 private:
  explicit constexpr TokenAmount(__int128 v) : v_(v) {}
  __int128 v_ = 0;
};

}  // namespace hc
