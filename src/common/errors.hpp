// Error vocabulary for operational (recoverable) failures.
//
// Programming errors (contract violations) use assertions/exceptions;
// operational errors — malformed input, insufficient funds, unknown subnet —
// travel through Result<T> (see result.hpp) carrying an Error value.
#pragma once

#include <string>
#include <string_view>

namespace hc {

/// Coarse error categories shared across all modules.
enum class Errc {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kDecodeError,
  kInsufficientFunds,
  kPermissionDenied,
  kInvalidSignature,
  kInvalidNonce,
  kStateConflict,
  kUnavailable,       // e.g., inactive subnet, network partition
  kTimeout,
  kAborted,           // e.g., atomic execution aborted
  kExhausted,         // e.g., out of gas
  kInternal,
  kOverloaded,        // capacity cap hit; retry after backoff (DESIGN.md §14)
};

/// Human-readable name for an error category.
[[nodiscard]] std::string_view errc_name(Errc code);

/// An error: category plus a contextual message.
class Error {
 public:
  Error(Errc code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] Errc code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "kNotFound: subnet /root/f0101 is not registered"
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Error& a, const Error& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Errc code_;
  std::string message_;
};

}  // namespace hc
