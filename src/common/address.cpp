#include "common/address.hpp"

#include <algorithm>

#include "common/bytes.hpp"

namespace hc {

std::string Address::to_string() const {
  switch (kind_) {
    case Kind::kInvalid:
      return "<invalid>";
    case Kind::kId:
      return "f0" + std::to_string(id_);
    case Kind::kKey:
      return "f1" + hc::to_hex(BytesView(key_hash_.data(), 6));
  }
  return "<invalid>";
}

void Address::encode_to(Encoder& e) const {
  e.u8(static_cast<std::uint8_t>(kind_));
  switch (kind_) {
    case Kind::kInvalid:
      break;
    case Kind::kId:
      e.varint(id_);
      break;
    case Kind::kKey:
      e.raw(digest_view(key_hash_));
      break;
  }
}

Result<Address> Address::decode_from(Decoder& d) {
  HC_TRY(kind, d.u8());
  Address a;
  switch (static_cast<Kind>(kind)) {
    case Kind::kInvalid:
      return a;
    case Kind::kId: {
      HC_TRY(id, d.varint());
      return Address::id(id);
    }
    case Kind::kKey: {
      HC_TRY(raw, d.raw(32));
      a.kind_ = Kind::kKey;
      std::copy(raw.begin(), raw.end(), a.key_hash_.begin());
      return a;
    }
  }
  return Error(Errc::kDecodeError, "unknown address kind");
}

}  // namespace hc
