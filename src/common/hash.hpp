// SHA-256 (FIPS 180-4), implemented from the specification.
//
// Lives in `common` (rather than `crypto`) because content identifiers —
// the backbone of the whole system — are hash-derived, and every module
// depends on them. Higher-level primitives (HMAC, signatures, Merkle trees)
// live in `crypto`.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace hc {

/// A 32-byte SHA-256 digest.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256();

  /// Absorb more input.
  Sha256& update(BytesView data);

  /// Finalize and return the digest. The hasher must not be reused after.
  [[nodiscard]] Digest finalize();

  /// One-shot convenience.
  [[nodiscard]] static Digest hash(BytesView data);

  /// One-shot over the concatenation of several views.
  [[nodiscard]] static Digest hash_all(std::initializer_list<BytesView> parts);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t total_len_ = 0;   // bytes absorbed
  std::size_t buffer_len_ = 0;    // bytes pending in buffer_
};

/// View of a digest as bytes.
[[nodiscard]] inline BytesView digest_view(const Digest& d) {
  return BytesView(d.data(), d.size());
}

}  // namespace hc
