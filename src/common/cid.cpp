#include "common/cid.hpp"

#include <algorithm>

namespace hc {

bool Cid::is_null() const {
  return codec_ == CidCodec::kRaw &&
         std::all_of(digest_.begin(), digest_.end(),
                     [](std::uint8_t b) { return b == 0; });
}

std::string Cid::to_string() const {
  std::string hex = hc::to_hex(BytesView(digest_.data(), 4));
  return "cid:" + std::to_string(static_cast<int>(codec_)) + ":" + hex + "…";
}

std::string Cid::to_hex() const {
  return hc::to_hex(digest_view(digest_));
}

Result<Cid> Cid::decode_from(Decoder& d) {
  HC_TRY(codec, d.u8());
  if (codec > static_cast<std::uint8_t>(CidCodec::kActorState)) {
    return Error(Errc::kDecodeError, "unknown CID codec");
  }
  HC_TRY(raw, d.raw(32));
  Digest digest;
  std::copy(raw.begin(), raw.end(), digest.begin());
  return Cid(static_cast<CidCodec>(codec), digest);
}

}  // namespace hc
