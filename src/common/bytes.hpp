// Byte-buffer vocabulary type and hex helpers.
//
// `Bytes` is the universal wire/content representation in the library: every
// encoded message, block, checkpoint and actor-state blob is a `Bytes` value.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hc {

/// Owned byte buffer.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning view over bytes (read-only).
using BytesView = std::span<const std::uint8_t>;

/// Encode `data` as lowercase hex (two chars per byte, no prefix).
[[nodiscard]] std::string to_hex(BytesView data);

/// Decode a hex string (with or without "0x" prefix). Returns std::nullopt on
/// malformed input (odd length or non-hex character).
[[nodiscard]] std::optional<Bytes> from_hex(std::string_view hex);

/// Convert a string literal/value to bytes (no terminator).
[[nodiscard]] Bytes to_bytes(std::string_view s);

/// Concatenate any number of byte views into a fresh buffer.
[[nodiscard]] Bytes concat(std::initializer_list<BytesView> parts);

/// Append `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Constant-time equality (length leak only); used for digest comparison.
[[nodiscard]] bool ct_equal(BytesView a, BytesView b);

}  // namespace hc
