#include "common/capacity.hpp"

namespace hc::common {

const char* to_string(ShedReason reason) {
  switch (reason) {
    case ShedReason::kQueueFull: return "queue-full";
    case ShedReason::kByteCap: return "byte-cap";
    case ShedReason::kPerSenderCap: return "sender-cap";
    case ShedReason::kNonceGap: return "nonce-gap";
    case ShedReason::kBreakerOpen: return "breaker-open";
    case ShedReason::kEvicted: return "evicted";
  }
  return "unknown";
}

}  // namespace hc::common
