// Result<T>: value-or-Error, the library's return type for operations that
// can fail for operational reasons (C++23 std::expected is unavailable under
// the C++20 target, so we provide the minimal subset we need).
//
// Usage:
//   Result<Block> r = decode_block(bytes);
//   if (!r) return r.error();
//   use(r.value());
//
// The HC_TRY macro unwraps a Result or early-returns its error, mirroring
// Rust's `?`. It is the single (justified) macro in the library: there is no
// non-macro way to express early return in the caller's frame.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "common/errors.hpp"

namespace hc {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit: allows `return value;` and `return error;`.
  Result(T value) : v_(std::move(value)) {}            // NOLINT
  Result(Error error) : v_(std::move(error)) {}        // NOLINT
  Result(Errc code, std::string message)
      : v_(Error(code, std::move(message))) {}

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok() && "Result::value() on error");
    return std::get<T>(v_);
  }
  [[nodiscard]] T& value() & {
    assert(ok() && "Result::value() on error");
    return std::get<T>(v_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok() && "Result::value() on error");
    return std::get<T>(std::move(v_));
  }

  [[nodiscard]] const Error& error() const {
    assert(!ok() && "Result::error() on value");
    return std::get<Error>(v_);
  }

  /// Value or a fallback if this holds an error.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> v_;
};

/// Result specialization for operations with no payload.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : err_(std::move(error)) {}  // NOLINT
  Result(Errc code, std::string message)
      : err_(Error(code, std::move(message))) {}

  [[nodiscard]] bool ok() const { return !err_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const {
    assert(!ok() && "Result::error() on success");
    return *err_;
  }

  [[nodiscard]] static Result success() { return {}; }

 private:
  std::optional<Error> err_;
};

using Status = Result<void>;

/// Convenience constructor for success statuses.
[[nodiscard]] inline Status ok_status() { return Status::success(); }

/// Drop a Result's payload, keeping only success/failure.
template <typename T>
[[nodiscard]] Status to_status(const Result<T>& r) {
  if (r.ok()) return ok_status();
  return r.error();
}

}  // namespace hc

// Unwrap a Result<T> into `var` or early-return the error.
#define HC_TRY(var, expr)                      \
  auto var##_result_ = (expr);                 \
  if (!var##_result_) return var##_result_.error(); \
  auto var = std::move(var##_result_).value()

// Propagate a Status-producing expression's error.
#define HC_TRY_STATUS(expr)                    \
  do {                                         \
    auto status_ = (expr);                     \
    if (!status_) return status_.error();      \
  } while (false)
