#include "common/token.hpp"

namespace hc {

namespace {

constexpr __int128 kInt128Max =
    (static_cast<__int128>(1) << 126) - 1 + (static_cast<__int128>(1) << 126);
constexpr __int128 kInt128Min = -kInt128Max - 1;

}  // namespace

std::string TokenAmount::to_string() const {
  __int128 v = v_;
  const bool neg = v < 0;
  if (neg) v = -v;
  const __int128 whole = v / kAttoPerToken;
  const __int128 frac = v % kAttoPerToken;

  auto u128_to_string = [](__int128 x) {
    if (x == 0) return std::string("0");
    std::string s;
    while (x > 0) {
      s.push_back(static_cast<char>('0' + static_cast<int>(x % 10)));
      x /= 10;
    }
    return std::string(s.rbegin(), s.rend());
  };

  std::string out = neg ? "-" : "";
  out += u128_to_string(whole);
  if (frac != 0) {
    std::string f = u128_to_string(frac);
    f.insert(f.begin(), 18 - f.size(), '0');
    // Trim trailing zeros for readability.
    while (!f.empty() && f.back() == '0') f.pop_back();
    out += "." + f;
  }
  out += " tok";
  return out;
}

TokenAmount& TokenAmount::operator+=(TokenAmount rhs) {
  if (rhs.v_ > 0 && v_ > kInt128Max - rhs.v_) {
    throw std::overflow_error("TokenAmount overflow in +");
  }
  if (rhs.v_ < 0 && v_ < kInt128Min - rhs.v_) {
    throw std::overflow_error("TokenAmount underflow in +");
  }
  v_ += rhs.v_;
  return *this;
}

TokenAmount& TokenAmount::operator-=(TokenAmount rhs) {
  if (rhs.v_ < 0 && v_ > kInt128Max + rhs.v_) {
    throw std::overflow_error("TokenAmount overflow in -");
  }
  if (rhs.v_ > 0 && v_ < kInt128Min + rhs.v_) {
    throw std::overflow_error("TokenAmount underflow in -");
  }
  v_ -= rhs.v_;
  return *this;
}

TokenAmount operator*(TokenAmount a, std::uint64_t k) {
  if (k == 0 || a.v_ == 0) return TokenAmount();
  const __int128 limit = (a.v_ > 0 ? kInt128Max : kInt128Min) / static_cast<__int128>(k);
  if ((a.v_ > 0 && a.v_ > limit) || (a.v_ < 0 && a.v_ < limit)) {
    throw std::overflow_error("TokenAmount overflow in *");
  }
  return TokenAmount(a.v_ * static_cast<__int128>(k));
}

void TokenAmount::encode_to(Encoder& e) const {
  // Sign byte + magnitude as two big-endian u64 halves.
  const bool neg = v_ < 0;
  unsigned __int128 mag = neg ? static_cast<unsigned __int128>(-v_)
                              : static_cast<unsigned __int128>(v_);
  e.u8(neg ? 1 : 0);
  e.u64(static_cast<std::uint64_t>(mag >> 64));
  e.u64(static_cast<std::uint64_t>(mag));
}

Result<TokenAmount> TokenAmount::decode_from(Decoder& d) {
  HC_TRY(sign, d.u8());
  if (sign > 1) return Error(Errc::kDecodeError, "bad token sign byte");
  HC_TRY(hi, d.u64());
  HC_TRY(lo, d.u64());
  unsigned __int128 mag =
      (static_cast<unsigned __int128>(hi) << 64) | lo;
  if (mag > static_cast<unsigned __int128>(kInt128Max)) {
    return Error(Errc::kDecodeError, "token magnitude overflow");
  }
  if (sign == 1 && mag == 0) {
    // Canonicality: zero has exactly one encoding (positive).
    return Error(Errc::kDecodeError, "non-canonical negative zero");
  }
  __int128 v = static_cast<__int128>(mag);
  return TokenAmount::atto(sign == 1 ? -v : v);
}

}  // namespace hc
