// Shared overload-control vocabulary (DESIGN.md §14).
//
// Every bounded buffer in the stack — mempool, gossip delivery queues,
// checkpoint-evidence windows, SCA top-down windows — expresses its limits
// as a CapacityPolicy and accounts what it refuses or evicts in a ShedStats
// ledger keyed by ShedReason. Keeping the vocabulary in one place makes the
// shed counters comparable across layers and keeps eviction deterministic:
// a policy only says *how much* fits; each buffer defines a total order over
// its contents and always sheds the minimum of that order.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hc::common {

/// Why a message/item was refused admission or evicted. Used as the
/// "reason" label on shed counters so policy drops are distinguishable
/// from fault drops in every export.
enum class ShedReason : std::uint8_t {
  kQueueFull = 0,   ///< buffer at max_items; lowest-priority resident kept out
  kByteCap,         ///< buffer at max_bytes
  kPerSenderCap,    ///< one sender exceeded its pending allowance
  kNonceGap,        ///< nonce too far beyond the sender's next nonce
  kBreakerOpen,     ///< circuit breaker open for the destination path
  kEvicted,         ///< resident item displaced by a higher-priority arrival
};

inline constexpr std::size_t kShedReasonCount = 6;

[[nodiscard]] const char* to_string(ShedReason reason);

/// A capacity cap. All limits are inclusive; 0 means "unbounded" so a
/// default-constructed policy changes nothing.
struct CapacityPolicy {
  std::size_t max_items = 0;
  std::size_t max_bytes = 0;

  [[nodiscard]] bool bounded() const { return max_items > 0 || max_bytes > 0; }
  /// Would a buffer currently holding `items` admit one more?
  [[nodiscard]] bool admits_item(std::size_t items) const {
    return max_items == 0 || items < max_items;
  }
  /// Would a buffer currently holding `bytes` admit `add` more bytes?
  [[nodiscard]] bool admits_bytes(std::size_t bytes, std::size_t add) const {
    return max_bytes == 0 || bytes + add <= max_bytes;
  }
};

/// Per-buffer shed ledger. Buffers live in one scheduler lane, so plain
/// integers suffice; cross-lane aggregates go through obs counters instead.
struct ShedStats {
  std::uint64_t shed[kShedReasonCount] = {};
  std::size_t peak_items = 0;
  std::size_t peak_bytes = 0;

  void count(ShedReason reason) {
    ++shed[static_cast<std::size_t>(reason)];
  }
  [[nodiscard]] std::uint64_t by(ShedReason reason) const {
    return shed[static_cast<std::size_t>(reason)];
  }
  void observe(std::size_t items, std::size_t bytes) {
    if (items > peak_items) peak_items = items;
    if (bytes > peak_bytes) peak_bytes = bytes;
  }
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t n = 0;
    for (std::uint64_t v : shed) n += v;
    return n;
  }
};

}  // namespace hc::common
