// Canonical binary codec.
//
// Every hashed or signed structure in the library (messages, blocks,
// checkpoints, actor state) is serialized with this codec so that equal
// values always produce identical bytes (a requirement for content
// addressing — see cid.hpp). The format is a compact deterministic TLV-free
// encoding: fixed-width big-endian integers for ordering-sensitive fields,
// LEB128 varints for counts, and length-prefixed byte strings.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace hc {

/// Times an owned-mode Encoder buffer grew past already-reserved capacity.
/// The zero-copy hot path pre-sizes every encode (encoded_size() counting
/// pass + a single exact reservation), so on pre-sized paths this counter
/// must stay flat — the codec property tests assert exactly that.
[[nodiscard]] std::atomic<std::uint64_t>& codec_realloc_count();

/// Append-only encoder. Methods return *this to allow chaining.
///
/// Three sink modes share one encode_to() traversal:
///  - owned (default): appends into an internal Bytes buffer;
///  - counting (Encoder::sizer()): writes nothing, only tracks size() —
///    the first pass of a size-precomputed encode;
///  - external (Encoder(out, cap)): writes into caller storage previously
///    sized by a counting pass (arena blocks, exactly-reserved vectors).
class Encoder {
 public:
  Encoder() = default;

  /// Counting encoder: size() advances, no bytes are stored.
  [[nodiscard]] static Encoder sizer() {
    Encoder e;
    e.counting_ = true;
    return e;
  }

  /// External-buffer encoder; writing past `cap` is a programming error
  /// (the counting pass determines `cap` exactly).
  Encoder(std::uint8_t* out, std::size_t cap) : ext_(out), ext_cap_(cap) {}

  Encoder& u8(std::uint8_t v);
  Encoder& u16(std::uint16_t v);   // big-endian
  Encoder& u32(std::uint32_t v);   // big-endian
  Encoder& u64(std::uint64_t v);   // big-endian
  Encoder& i64(std::int64_t v);    // zig-zag free: two's complement BE
  Encoder& varint(std::uint64_t v);  // LEB128
  Encoder& boolean(bool v);
  Encoder& bytes(BytesView v);     // varint length + raw
  Encoder& str(std::string_view v);

  /// Raw append with NO length prefix (for fixed-size digests etc.).
  Encoder& raw(BytesView v);

  /// Encode any type that provides `void encode_to(Encoder&) const`.
  template <typename T>
  Encoder& obj(const T& v) {
    v.encode_to(*this);
    return *this;
  }

  /// Encode a vector of encodable objects (varint count + items).
  template <typename T>
  Encoder& vec(const std::vector<T>& items) {
    varint(items.size());
    for (const auto& item : items) obj(item);
    return *this;
  }

  /// Bytes produced so far (all modes).
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Reserve capacity ahead of appends (owned mode only; no-op otherwise).
  void reserve(std::size_t n) {
    if (!counting_ && ext_ == nullptr) buf_.reserve(n);
  }

  [[nodiscard]] const Bytes& data() const& { return buf_; }
  [[nodiscard]] Bytes&& take() && { return std::move(buf_); }

 private:
  void put(const std::uint8_t* p, std::size_t n);
  void put_byte(std::uint8_t b);

  Bytes buf_;                        // owned mode storage
  std::uint8_t* ext_ = nullptr;      // external mode destination
  std::size_t ext_cap_ = 0;
  std::size_t size_ = 0;             // bytes produced (all modes)
  bool counting_ = false;
};

/// Bounds-checked decoder over a byte view.
class Decoder {
 public:
  explicit Decoder(BytesView data) : data_(data) {}

  [[nodiscard]] Result<std::uint8_t> u8();
  [[nodiscard]] Result<std::uint16_t> u16();
  [[nodiscard]] Result<std::uint32_t> u32();
  [[nodiscard]] Result<std::uint64_t> u64();
  [[nodiscard]] Result<std::int64_t> i64();
  [[nodiscard]] Result<std::uint64_t> varint();
  [[nodiscard]] Result<bool> boolean();
  [[nodiscard]] Result<Bytes> bytes();
  [[nodiscard]] Result<std::string> str();

  /// Read exactly `n` raw bytes (no length prefix).
  [[nodiscard]] Result<Bytes> raw(std::size_t n);

  /// Decode a T via its static `decode_from(Decoder&) -> Result<T>`.
  template <typename T>
  [[nodiscard]] Result<T> obj() {
    return T::decode_from(*this);
  }

  /// Decode a vector of T (varint count + items). `max` guards against
  /// maliciously huge counts.
  template <typename T>
  [[nodiscard]] Result<std::vector<T>> vec(std::size_t max = 1u << 20) {
    HC_TRY(count, varint());
    if (count > max) return Error(Errc::kDecodeError, "vector too large");
    std::vector<T> out;
    out.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      HC_TRY(item, obj<T>());
      out.push_back(std::move(item));
    }
    return out;
  }

  /// True when all input has been consumed.
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  [[nodiscard]] Status need(std::size_t n);

  BytesView data_;
  std::size_t pos_ = 0;
};

/// Encode a bare integer as a varint blob (event payloads, ids).
[[nodiscard]] inline Bytes encode_varint(std::uint64_t v) {
  Encoder e;
  e.varint(v);
  return std::move(e).take();
}

/// Decode a bare varint blob.
[[nodiscard]] inline Result<std::uint64_t> decode_varint(BytesView data) {
  Decoder d(data);
  HC_TRY(v, d.varint());
  if (!d.done()) return Error(Errc::kDecodeError, "trailing bytes");
  return v;
}

/// Exact encoded size of an object (counting traversal; allocation-free).
template <typename T>
[[nodiscard]] std::size_t encoded_size(const T& v) {
  Encoder e = Encoder::sizer();
  e.obj(v);
  return e.size();
}

/// Encode a single encodable object to bytes. Two-pass: a counting
/// traversal sizes the buffer, then a second pass fills it — exactly one
/// allocation, never a realloc, regardless of object shape.
template <typename T>
[[nodiscard]] Bytes encode(const T& v) {
  Bytes out(encoded_size(v));
  Encoder e(out.data(), out.size());
  e.obj(v);
  return out;
}

/// Decode a single object, requiring the input to be fully consumed.
template <typename T>
[[nodiscard]] Result<T> decode(BytesView data) {
  Decoder d(data);
  HC_TRY(v, d.obj<T>());
  if (!d.done()) return Error(Errc::kDecodeError, "trailing bytes");
  return v;
}

}  // namespace hc
