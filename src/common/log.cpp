#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace hc {

namespace {

// The level is read on every (possibly disabled) log statement from any
// ParallelExecutor worker, so it is atomic; the sink is only replaced from
// driver context but invoked from workers, so writes serialize on a mutex
// to keep lines whole.
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_write_mutex;
Log::Sink g_sink;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kOff: return "OFF";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lk(g_write_mutex);
  g_sink = std::move(sink);
}

void Log::write(LogLevel level, std::string_view msg) {
  std::lock_guard<std::mutex> lk(g_write_mutex);
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[%s] %.*s\n", level_tag(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace hc
