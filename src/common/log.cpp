#include "common/log.hpp"

#include <cstdio>

namespace hc {

namespace {

LogLevel g_level = LogLevel::kWarn;
Log::Sink g_sink;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kOff: return "OFF";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) { g_level = level; }
LogLevel Log::level() { return g_level; }
void Log::set_sink(Sink sink) { g_sink = std::move(sink); }

void Log::write(LogLevel level, std::string_view msg) {
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[%s] %.*s\n", level_tag(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace hc
