// Minimal leveled logger.
//
// The simulator is single-threaded and deterministic, so the logger is
// deliberately simple: a process-global level and sink. Tests set the level
// to kOff; examples raise it to kInfo to narrate protocol runs.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace hc {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static void set_level(LogLevel level);
  [[nodiscard]] static LogLevel level();

  /// Replace the output sink (default: stderr). Pass nullptr to restore.
  static void set_sink(Sink sink);

  static void write(LogLevel level, std::string_view msg);

  [[nodiscard]] static bool enabled(LogLevel level) {
    const LogLevel cur = Log::level();
    return cur != LogLevel::kOff && level <= cur;
  }
};

/// Stream-style log statement builder:
///   LogLine(LogLevel::kInfo) << "subnet " << id << " spawned";
///   LogLine(LogLevel::kWarn, subnet_str).kv("height", h) << "stalled";
///
/// The enabled bit is captured once at construction — a disabled line costs
/// one level read, with no per-insertion re-checks.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : enabled_(Log::enabled(level)),
                                     level_(level) {}
  /// `scope` prefixes the line as "[scope] " — conventionally the subnet id.
  LogLine(LogLevel level, std::string_view scope)
      : enabled_(Log::enabled(level)), level_(level) {
    if (enabled_) out_ << '[' << scope << "] ";
  }
  ~LogLine() {
    if (enabled_) Log::write(level_, out_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) out_ << v;
    return *this;
  }

  /// Append a structured " key=value" field.
  template <typename T>
  LogLine& kv(std::string_view key, const T& value) {
    if (enabled_) out_ << ' ' << key << '=' << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream out_;
};

}  // namespace hc
