// Minimal leveled logger.
//
// The simulator is single-threaded and deterministic, so the logger is
// deliberately simple: a process-global level and sink. Tests set the level
// to kOff; examples raise it to kInfo to narrate protocol runs.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace hc {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static void set_level(LogLevel level);
  [[nodiscard]] static LogLevel level();

  /// Replace the output sink (default: stderr). Pass nullptr to restore.
  static void set_sink(Sink sink);

  static void write(LogLevel level, std::string_view msg);

  [[nodiscard]] static bool enabled(LogLevel level) {
    return level <= Log::level() && Log::level() != LogLevel::kOff;
  }
};

/// Stream-style log statement builder:
///   LogLine(LogLevel::kInfo) << "subnet " << id << " spawned";
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (Log::enabled(level_)) Log::write(level_, out_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (Log::enabled(level_)) out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};

}  // namespace hc
