// Binary Merkle trees over SHA-256.
//
// Used for block message roots and checkpoint batch commitments. Leaves are
// domain-separated from interior nodes (0x00 / 0x01 prefixes) to prevent
// second-preimage splicing attacks. Odd layers promote the last node
// unchanged (no duplication, avoiding the CVE-2012-2459-style ambiguity).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "common/hash.hpp"

namespace hc::crypto {

/// Domain-separated leaf digest (0x00-prefixed SHA-256). Exposed so callers
/// that cache per-leaf digests (the incremental state commitment) hash
/// exactly the bytes MerkleTree would.
[[nodiscard]] Digest merkle_leaf_hash(BytesView content);

/// Domain-separated interior-node digest (0x01-prefixed SHA-256).
[[nodiscard]] Digest merkle_node_hash(const Digest& left, const Digest& right);

/// An inclusion proof: sibling digests from leaf to root, with direction.
struct MerkleStep {
  Digest sibling;
  bool sibling_on_left = false;

  void encode_to(Encoder& e) const {
    e.raw(digest_view(sibling)).boolean(sibling_on_left);
  }
  [[nodiscard]] static Result<MerkleStep> decode_from(Decoder& d) {
    MerkleStep s;
    HC_TRY(raw, d.raw(32));
    std::copy(raw.begin(), raw.end(), s.sibling.begin());
    HC_TRY(left, d.boolean());
    s.sibling_on_left = left;
    return s;
  }
  bool operator==(const MerkleStep&) const = default;
};
using MerkleProof = std::vector<MerkleStep>;

class MerkleTree {
 public:
  /// Build a tree over the given leaf contents (hashed internally).
  explicit MerkleTree(const std::vector<Bytes>& leaves);

  /// Root digest; the all-zero digest for an empty tree.
  [[nodiscard]] const Digest& root() const { return root_; }

  [[nodiscard]] std::size_t leaf_count() const { return leaf_count_; }

  /// Inclusion proof for leaf at `index` (must be < leaf_count()).
  [[nodiscard]] MerkleProof prove(std::size_t index) const;

  /// Verify that `leaf_content` is at some position under `root`.
  [[nodiscard]] static bool verify(const Digest& root, BytesView leaf_content,
                                   const MerkleProof& proof);

  /// Convenience: root over leaves without keeping the tree.
  [[nodiscard]] static Digest root_of(const std::vector<Bytes>& leaves);

 private:
  // levels_[0] = leaf digests, levels_.back() = {root} (absent when empty).
  std::vector<std::vector<Digest>> levels_;
  Digest root_{};
  std::size_t leaf_count_ = 0;
};

/// A persistent Merkle tree over pre-hashed leaf digests that supports
/// point updates in O(log N) node hashes. Layout (leaf/node domain
/// separation, odd-node promotion) is byte-identical to MerkleTree, so a
/// root computed here equals MerkleTree's root over the same leaf contents
/// — the foundation of the incremental state commitment (DESIGN.md §12).
///
/// Structural changes (leaf insertion/removal) are handled by re-assigning
/// the full digest vector: O(N) node hashes but zero leaf re-encodes when
/// the caller caches unchanged digests.
class IncrementalMerkleTree {
 public:
  IncrementalMerkleTree() = default;

  /// Rebuild every interior level over `leaf_digests` (already leaf-hashed
  /// via merkle_leaf_hash). O(N) node hashes.
  void assign(std::vector<Digest> leaf_digests);

  /// Replace the leaves at the given (index, digest) pairs — sorted by
  /// index, unique — and rehash only the affected root paths. O(k log N)
  /// node hashes for k changes.
  void update(const std::vector<std::pair<std::size_t, Digest>>& changes);

  /// Root digest; the all-zero digest for an empty tree. Matches
  /// MerkleTree::root_of over the same leaf contents.
  [[nodiscard]] const Digest& root() const { return root_; }

  [[nodiscard]] std::size_t leaf_count() const {
    return levels_.empty() ? 0 : levels_[0].size();
  }

  /// The current leaf-digest level (empty for an empty tree). Stable only
  /// until the next assign()/update().
  [[nodiscard]] const std::vector<Digest>& leaf_digests() const;

  /// Inclusion proof for the leaf at `index`; verifiable with
  /// MerkleTree::verify against root().
  [[nodiscard]] MerkleProof prove(std::size_t index) const;

  /// Cumulative interior-node hash count since construction; callers
  /// difference this around assign()/update() to attribute hash work.
  [[nodiscard]] std::uint64_t node_hashes() const { return node_hashes_; }

 private:
  std::vector<std::vector<Digest>> levels_;
  Digest root_{};
  std::uint64_t node_hashes_ = 0;
};

}  // namespace hc::crypto
