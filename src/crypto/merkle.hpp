// Binary Merkle trees over SHA-256.
//
// Used for block message roots and checkpoint batch commitments. Leaves are
// domain-separated from interior nodes (0x00 / 0x01 prefixes) to prevent
// second-preimage splicing attacks. Odd layers promote the last node
// unchanged (no duplication, avoiding the CVE-2012-2459-style ambiguity).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "common/hash.hpp"

namespace hc::crypto {

/// An inclusion proof: sibling digests from leaf to root, with direction.
struct MerkleStep {
  Digest sibling;
  bool sibling_on_left = false;

  void encode_to(Encoder& e) const {
    e.raw(digest_view(sibling)).boolean(sibling_on_left);
  }
  [[nodiscard]] static Result<MerkleStep> decode_from(Decoder& d) {
    MerkleStep s;
    HC_TRY(raw, d.raw(32));
    std::copy(raw.begin(), raw.end(), s.sibling.begin());
    HC_TRY(left, d.boolean());
    s.sibling_on_left = left;
    return s;
  }
  bool operator==(const MerkleStep&) const = default;
};
using MerkleProof = std::vector<MerkleStep>;

class MerkleTree {
 public:
  /// Build a tree over the given leaf contents (hashed internally).
  explicit MerkleTree(const std::vector<Bytes>& leaves);

  /// Root digest; the all-zero digest for an empty tree.
  [[nodiscard]] const Digest& root() const { return root_; }

  [[nodiscard]] std::size_t leaf_count() const { return leaf_count_; }

  /// Inclusion proof for leaf at `index` (must be < leaf_count()).
  [[nodiscard]] MerkleProof prove(std::size_t index) const;

  /// Verify that `leaf_content` is at some position under `root`.
  [[nodiscard]] static bool verify(const Digest& root, BytesView leaf_content,
                                   const MerkleProof& proof);

  /// Convenience: root over leaves without keeping the tree.
  [[nodiscard]] static Digest root_of(const std::vector<Bytes>& leaves);

 private:
  // levels_[0] = leaf digests, levels_.back() = {root} (absent when empty).
  std::vector<std::vector<Digest>> levels_;
  Digest root_{};
  std::size_t leaf_count_ = 0;
};

}  // namespace hc::crypto
