// secp256k1 elliptic-curve arithmetic: y^2 = x^3 + 7 over F_p.
//
// Field multiplication uses the fast reduction enabled by the special prime
// p = 2^256 - 2^32 - 977; scalar arithmetic mod the group order n uses a
// generic (slower, rarely called) shift-add reduction. Points are tracked in
// Jacobian coordinates to avoid per-operation field inversions.
#pragma once

#include <optional>

#include "crypto/u256.hpp"

namespace hc::crypto {

/// Field arithmetic modulo the secp256k1 prime p.
namespace fp {
/// The field prime p = 2^256 - 2^32 - 977.
[[nodiscard]] const U256& P();
[[nodiscard]] U256 add(const U256& a, const U256& b);
[[nodiscard]] U256 sub(const U256& a, const U256& b);
[[nodiscard]] U256 mul(const U256& a, const U256& b);
[[nodiscard]] U256 sqr(const U256& a);
/// a^e mod p (square-and-multiply).
[[nodiscard]] U256 pow(const U256& a, const U256& e);
/// Multiplicative inverse via Fermat (a != 0).
[[nodiscard]] U256 inv(const U256& a);
/// Reduce an arbitrary 256-bit value into [0, p).
[[nodiscard]] U256 reduce(const U256& a);
}  // namespace fp

/// Scalar arithmetic modulo the group order n.
namespace fn {
/// The group order n.
[[nodiscard]] const U256& N();
[[nodiscard]] U256 add(const U256& a, const U256& b);
[[nodiscard]] U256 sub(const U256& a, const U256& b);
[[nodiscard]] U256 mul(const U256& a, const U256& b);
/// Reduce an arbitrary 256-bit value into [0, n).
[[nodiscard]] U256 reduce(const U256& a);
}  // namespace fn

/// A curve point in Jacobian coordinates (X/Z^2, Y/Z^3); Z == 0 encodes the
/// point at infinity.
class Point {
 public:
  /// Point at infinity.
  Point() : x_(), y_(U256(1)), z_() {}

  /// From affine coordinates (assumed on-curve; see is_on_curve()).
  [[nodiscard]] static Point from_affine(const U256& x, const U256& y);

  /// The generator G.
  [[nodiscard]] static const Point& generator();

  [[nodiscard]] bool is_infinity() const { return z_.is_zero(); }

  [[nodiscard]] Point doubled() const;
  [[nodiscard]] Point add(const Point& other) const;
  /// Mixed addition with an affine point (implicit Z == 1): 8M + 3S versus
  /// the 12M + 4S of the general Jacobian add. The workhorse of the
  /// fixed-base table walk in mul_generator().
  [[nodiscard]] Point add_affine(const U256& x, const U256& y) const;
  /// Group negation (X, -Y, Z).
  [[nodiscard]] Point negated() const;
  /// Scalar multiplication k * this (width-5 wNAF: a shared doubling chain
  /// plus one add per ~6 scalar bits against 8 precomputed odd multiples).
  [[nodiscard]] Point mul(const U256& k) const;

  /// k * G via a fixed-base comb: 32 byte-indexed windows of precomputed
  /// affine multiples (v * 2^(8j) * G), so a full-width scalar costs at
  /// most 32 mixed additions and no doublings. Signing and the s*G term
  /// of verification are the simulation's hottest code paths — consensus
  /// engines sign every vote and every user message verifies once.
  [[nodiscard]] static Point mul_generator(const U256& k);

  /// Affine coordinates; nullopt for infinity. Costs one field inversion.
  struct Affine {
    U256 x;
    U256 y;
  };
  [[nodiscard]] std::optional<Affine> to_affine() const;

  /// Verify the affine point satisfies the curve equation.
  [[nodiscard]] static bool is_on_curve(const U256& x, const U256& y);

  /// Equality as group elements (cross-multiplied, no inversion).
  [[nodiscard]] bool equals(const Point& other) const;

 private:
  friend struct GenTableBuilder;  // batch-normalizes the fixed-base table

  Point(const U256& x, const U256& y, const U256& z) : x_(x), y_(y), z_(z) {}

  U256 x_;
  U256 y_;
  U256 z_;
};

}  // namespace hc::crypto
