#include "crypto/merkle.hpp"

#include <cassert>

namespace hc::crypto {

namespace {

Digest hash_leaf(BytesView content) {
  const std::uint8_t prefix = 0x00;
  return Sha256::hash_all({BytesView(&prefix, 1), content});
}

Digest hash_node(const Digest& left, const Digest& right) {
  const std::uint8_t prefix = 0x01;
  return Sha256::hash_all(
      {BytesView(&prefix, 1), digest_view(left), digest_view(right)});
}

}  // namespace

MerkleTree::MerkleTree(const std::vector<Bytes>& leaves)
    : leaf_count_(leaves.size()) {
  if (leaves.empty()) return;
  std::vector<Digest> level;
  level.reserve(leaves.size());
  for (const auto& leaf : leaves) level.push_back(hash_leaf(leaf));
  levels_.push_back(level);
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Digest> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < prev.size(); i += 2) {
      next.push_back(hash_node(prev[i], prev[i + 1]));
    }
    if (prev.size() % 2 == 1) next.push_back(prev.back());  // promote
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back()[0];
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  assert(index < leaf_count_ && "Merkle proof index out of range");
  MerkleProof proof;
  std::size_t pos = index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& level = levels_[lvl];
    const std::size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    if (sibling < level.size()) {
      proof.push_back({level[sibling], /*sibling_on_left=*/pos % 2 == 1});
    }
    // Promoted odd nodes keep their digest; their position halves too.
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Digest& root, BytesView leaf_content,
                        const MerkleProof& proof) {
  Digest acc = hash_leaf(leaf_content);
  for (const auto& step : proof) {
    acc = step.sibling_on_left ? hash_node(step.sibling, acc)
                               : hash_node(acc, step.sibling);
  }
  return acc == root;
}

Digest MerkleTree::root_of(const std::vector<Bytes>& leaves) {
  return MerkleTree(leaves).root();
}

}  // namespace hc::crypto
