#include "crypto/merkle.hpp"

#include <cassert>

namespace hc::crypto {

Digest merkle_leaf_hash(BytesView content) {
  const std::uint8_t prefix = 0x00;
  return Sha256::hash_all({BytesView(&prefix, 1), content});
}

Digest merkle_node_hash(const Digest& left, const Digest& right) {
  const std::uint8_t prefix = 0x01;
  return Sha256::hash_all(
      {BytesView(&prefix, 1), digest_view(left), digest_view(right)});
}

MerkleTree::MerkleTree(const std::vector<Bytes>& leaves)
    : leaf_count_(leaves.size()) {
  if (leaves.empty()) return;
  std::vector<Digest> level;
  level.reserve(leaves.size());
  for (const auto& leaf : leaves) level.push_back(merkle_leaf_hash(leaf));
  levels_.push_back(level);
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Digest> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < prev.size(); i += 2) {
      next.push_back(merkle_node_hash(prev[i], prev[i + 1]));
    }
    if (prev.size() % 2 == 1) next.push_back(prev.back());  // promote
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back()[0];
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  assert(index < leaf_count_ && "Merkle proof index out of range");
  MerkleProof proof;
  std::size_t pos = index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& level = levels_[lvl];
    const std::size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    if (sibling < level.size()) {
      proof.push_back({level[sibling], /*sibling_on_left=*/pos % 2 == 1});
    }
    // Promoted odd nodes keep their digest; their position halves too.
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Digest& root, BytesView leaf_content,
                        const MerkleProof& proof) {
  Digest acc = merkle_leaf_hash(leaf_content);
  for (const auto& step : proof) {
    acc = step.sibling_on_left ? merkle_node_hash(step.sibling, acc)
                               : merkle_node_hash(acc, step.sibling);
  }
  return acc == root;
}

Digest MerkleTree::root_of(const std::vector<Bytes>& leaves) {
  return MerkleTree(leaves).root();
}

// ------------------------------------------------------------ incremental

void IncrementalMerkleTree::assign(std::vector<Digest> leaf_digests) {
  levels_.clear();
  root_ = Digest{};
  if (leaf_digests.empty()) return;
  levels_.push_back(std::move(leaf_digests));
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Digest> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < prev.size(); i += 2) {
      next.push_back(merkle_node_hash(prev[i], prev[i + 1]));
      ++node_hashes_;
    }
    if (prev.size() % 2 == 1) next.push_back(prev.back());  // promote
    levels_.push_back(std::move(next));
  }
  root_ = levels_.back()[0];
}

void IncrementalMerkleTree::update(
    const std::vector<std::pair<std::size_t, Digest>>& changes) {
  if (changes.empty()) return;
  assert(!levels_.empty() && "update on an empty tree");
  auto& leaves = levels_[0];
  std::vector<std::size_t> positions;
  positions.reserve(changes.size());
  for (const auto& [index, digest] : changes) {
    assert(index < leaves.size() && "leaf update index out of range");
    assert(positions.empty() || positions.back() < index);
    leaves[index] = digest;
    positions.push_back(index);
  }
  // Walk the changed positions upward, level by level. Positions stay
  // sorted, so siblings sharing a parent dedupe via the back() check and
  // each affected interior node is hashed exactly once.
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& level = levels_[lvl];
    auto& parents = levels_[lvl + 1];
    std::vector<std::size_t> next;
    next.reserve(positions.size());
    for (const std::size_t pos : positions) {
      const std::size_t parent = pos / 2;
      if (!next.empty() && next.back() == parent) continue;
      const std::size_t left = parent * 2;
      const std::size_t right = left + 1;
      if (right < level.size()) {
        parents[parent] = merkle_node_hash(level[left], level[right]);
        ++node_hashes_;
      } else {
        parents[parent] = level[left];  // promoted odd node
      }
      next.push_back(parent);
    }
    positions = std::move(next);
  }
  root_ = levels_.back()[0];
}

const std::vector<Digest>& IncrementalMerkleTree::leaf_digests() const {
  static const std::vector<Digest> kEmpty;
  return levels_.empty() ? kEmpty : levels_[0];
}

MerkleProof IncrementalMerkleTree::prove(std::size_t index) const {
  assert(index < leaf_count() && "Merkle proof index out of range");
  MerkleProof proof;
  std::size_t pos = index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& level = levels_[lvl];
    const std::size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    if (sibling < level.size()) {
      proof.push_back({level[sibling], /*sibling_on_left=*/pos % 2 == 1});
    }
    pos /= 2;
  }
  return proof;
}

}  // namespace hc::crypto
