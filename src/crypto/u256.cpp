#include "crypto/u256.hpp"

#include <bit>
#include <cassert>

namespace hc::crypto {

U256 U256::from_be_bytes(BytesView bytes) {
  assert(bytes.size() == 32 && "from_be_bytes requires exactly 32 bytes");
  U256 r;
  for (int limb = 0; limb < 4; ++limb) {
    std::uint64_t v = 0;
    for (int byte = 0; byte < 8; ++byte) {
      v = (v << 8) | bytes[static_cast<std::size_t>((3 - limb) * 8 + byte)];
    }
    r.limbs_[static_cast<std::size_t>(limb)] = v;
  }
  return r;
}

U256 U256::from_digest(const std::array<std::uint8_t, 32>& d) {
  return from_be_bytes(BytesView(d.data(), d.size()));
}

Bytes U256::to_be_bytes() const {
  Bytes out(32);
  for (int limb = 0; limb < 4; ++limb) {
    const std::uint64_t v = limbs_[static_cast<std::size_t>(limb)];
    for (int byte = 0; byte < 8; ++byte) {
      out[static_cast<std::size_t>((3 - limb) * 8 + byte)] =
          static_cast<std::uint8_t>(v >> (56 - 8 * byte));
    }
  }
  return out;
}

std::string U256::to_hex() const { return hc::to_hex(to_be_bytes()); }

int U256::top_bit() const {
  for (int i = 3; i >= 0; --i) {
    if (limbs_[static_cast<std::size_t>(i)] != 0) {
      return i * 64 + 63 - std::countl_zero(limbs_[static_cast<std::size_t>(i)]);
    }
  }
  return -1;
}

std::uint64_t U256::add_with_carry(const U256& rhs) {
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    carry += static_cast<unsigned __int128>(limbs_[i]) + rhs.limbs_[i];
    limbs_[i] = static_cast<std::uint64_t>(carry);
    carry >>= 64;
  }
  return static_cast<std::uint64_t>(carry);
}

std::uint64_t U256::sub_with_borrow(const U256& rhs) {
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const unsigned __int128 lhs = limbs_[i];
    const unsigned __int128 sub =
        static_cast<unsigned __int128>(rhs.limbs_[i]) + borrow;
    limbs_[i] = static_cast<std::uint64_t>(lhs - sub);
    borrow = lhs < sub ? 1 : 0;
  }
  return borrow;
}

WideProduct mul_wide(const U256& a, const U256& b) {
  std::uint64_t prod[8] = {};
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      unsigned __int128 cur =
          static_cast<unsigned __int128>(a.limbs_[i]) * b.limbs_[j] +
          prod[i + j] + carry;
      prod[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    prod[i + 4] += carry;
  }
  WideProduct w;
  for (std::size_t i = 0; i < 4; ++i) {
    w.lo.limbs_[i] = prod[i];
    w.hi.limbs_[i] = prod[i + 4];
  }
  return w;
}

}  // namespace hc::crypto
