#include "crypto/ec.hpp"

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

namespace hc::crypto {

namespace {

// p = FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFE FFFFFC2F
const U256 kP = U256::from_limbs_be(0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull,
                                    0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFEFFFFFC2Full);
// n = FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFE BAAEDCE6 AF48A03B BFD25E8C D0364141
const U256 kN = U256::from_limbs_be(0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFEull,
                                    0xBAAEDCE6AF48A03Bull, 0xBFD25E8CD0364141ull);
// 2^256 mod p = 2^32 + 977
const U256 kPComplement = U256(0x1000003D1ull);

const U256 kGx = U256::from_limbs_be(0x79BE667EF9DCBBACull, 0x55A06295CE870B07ull,
                                     0x029BFCDB2DCE28D9ull, 0x59F2815B16F81798ull);
const U256 kGy = U256::from_limbs_be(0x483ADA7726A3C465ull, 0x5DA4FBFC0E1108A8ull,
                                     0xFD17B448A6855419ull, 0x9C47D08FFB10D4B8ull);

// Reduce a 512-bit value mod p using 2^256 ≡ 2^32 + 977 (mod p).
U256 reduce512_p(const WideProduct& w) {
  // First fold: result = lo + hi * (2^32 + 977). hi*(2^32+977) < 2^289, so
  // express it as another Wide via mul_wide and fold again.
  WideProduct f1 = mul_wide(w.hi, kPComplement);
  U256 acc = w.lo;
  std::uint64_t carry = acc.add_with_carry(f1.lo);
  // Remaining high part: f1.hi (tiny, < 2^33) plus the carry.
  U256 high = f1.hi;
  high.add_with_carry(U256(carry));
  // Second fold: high * (2^32 + 977) fits comfortably in 256 bits.
  WideProduct f2 = mul_wide(high, kPComplement);
  assert(f2.hi.is_zero());
  carry = acc.add_with_carry(f2.lo);
  if (carry != 0) {
    // acc overflowed 2^256: add the complement once more.
    acc.add_with_carry(kPComplement);
  }
  while (acc >= kP) acc.sub_with_borrow(kP);
  return acc;
}

}  // namespace

namespace fp {

const U256& P() { return kP; }

U256 reduce(const U256& a) {
  U256 r = a;
  while (r >= kP) r.sub_with_borrow(kP);
  return r;
}

U256 add(const U256& a, const U256& b) {
  U256 r = a;
  const std::uint64_t carry = r.add_with_carry(b);
  if (carry != 0) r.add_with_carry(kPComplement);
  while (r >= kP) r.sub_with_borrow(kP);
  return r;
}

U256 sub(const U256& a, const U256& b) {
  U256 r = a;
  if (r.sub_with_borrow(b) != 0) r.add_with_carry(kP);
  return r;
}

U256 mul(const U256& a, const U256& b) {
  return reduce512_p(mul_wide(a, b));
}

U256 sqr(const U256& a) { return mul(a, a); }

U256 pow(const U256& a, const U256& e) {
  U256 result(1);
  const int top = e.top_bit();
  for (int i = top; i >= 0; --i) {
    result = sqr(result);
    if (e.bit(i)) result = mul(result, a);
  }
  return result;
}

U256 inv(const U256& a) {
  assert(!a.is_zero() && "field inverse of zero");
  U256 exp = kP;
  exp.sub_with_borrow(U256(2));
  return pow(a, exp);
}

}  // namespace fp

namespace fn {

const U256& N() { return kN; }

U256 reduce(const U256& a) {
  U256 r = a;
  while (r >= kN) r.sub_with_borrow(kN);
  return r;
}

U256 add(const U256& a, const U256& b) {
  U256 r = a;
  const std::uint64_t carry = r.add_with_carry(b);
  if (carry != 0) {
    // r + 2^256 ≡ r + (2^256 - n) (mod n); 2^256 - n < n so one addition
    // plus a conditional subtract suffices.
    U256 comp;  // 2^256 - n
    comp.sub_with_borrow(kN);
    r.add_with_carry(comp);
  }
  while (r >= kN) r.sub_with_borrow(kN);
  return r;
}

U256 sub(const U256& a, const U256& b) {
  U256 r = a;
  if (r.sub_with_borrow(b) != 0) r.add_with_carry(kN);
  return r;
}

U256 mul(const U256& a, const U256& b) {
  // Shift-add: mod-n multiplications are rare (a handful per signature), so
  // the simple O(256)-addition loop is fine here.
  U256 acc;
  const U256 aa = reduce(a);
  const int top = b.top_bit();
  for (int i = top; i >= 0; --i) {
    acc = add(acc, acc);
    if (b.bit(i)) acc = add(acc, aa);
  }
  return acc;
}

}  // namespace fn

Point Point::from_affine(const U256& x, const U256& y) {
  return Point(x, y, U256(1));
}

const Point& Point::generator() {
  static const Point g = Point::from_affine(kGx, kGy);
  return g;
}

Point Point::doubled() const {
  if (is_infinity() || y_.is_zero()) return Point();
  // dbl-2007-bl formulas for a = 0.
  const U256 a = fp::sqr(x_);                       // X^2
  const U256 b = fp::sqr(y_);                       // Y^2
  const U256 c = fp::sqr(b);                        // B^2
  U256 d = fp::sub(fp::sqr(fp::add(x_, b)), fp::add(a, c));
  d = fp::add(d, d);                                // 2*((X+B)^2 - A - C)
  const U256 e = fp::add(fp::add(a, a), a);         // 3*A
  const U256 f = fp::sqr(e);
  const U256 x3 = fp::sub(f, fp::add(d, d));
  U256 c8 = fp::add(c, c);
  c8 = fp::add(c8, c8);
  c8 = fp::add(c8, c8);
  const U256 y3 = fp::sub(fp::mul(e, fp::sub(d, x3)), c8);
  const U256 z3 = fp::mul(fp::add(y_, y_), z_);
  return Point(x3, y3, z3);
}

Point Point::add(const Point& other) const {
  if (is_infinity()) return other;
  if (other.is_infinity()) return *this;
  const U256 z1z1 = fp::sqr(z_);
  const U256 z2z2 = fp::sqr(other.z_);
  const U256 u1 = fp::mul(x_, z2z2);
  const U256 u2 = fp::mul(other.x_, z1z1);
  const U256 s1 = fp::mul(y_, fp::mul(z2z2, other.z_));
  const U256 s2 = fp::mul(other.y_, fp::mul(z1z1, z_));
  const U256 h = fp::sub(u2, u1);
  const U256 r = fp::sub(s2, s1);
  if (h.is_zero()) {
    if (r.is_zero()) return doubled();
    return Point();  // P + (-P) = infinity
  }
  const U256 h2 = fp::sqr(h);
  const U256 h3 = fp::mul(h2, h);
  const U256 u1h2 = fp::mul(u1, h2);
  U256 x3 = fp::sub(fp::sqr(r), h3);
  x3 = fp::sub(x3, fp::add(u1h2, u1h2));
  const U256 y3 = fp::sub(fp::mul(r, fp::sub(u1h2, x3)), fp::mul(s1, h3));
  const U256 z3 = fp::mul(h, fp::mul(z_, other.z_));
  return Point(x3, y3, z3);
}

Point Point::add_affine(const U256& x, const U256& y) const {
  if (is_infinity()) return Point(x, y, U256(1));
  // madd-2007-bl specialization of add() for Z2 == 1.
  const U256 z1z1 = fp::sqr(z_);
  const U256 u2 = fp::mul(x, z1z1);
  const U256 s2 = fp::mul(y, fp::mul(z1z1, z_));
  const U256 h = fp::sub(u2, x_);
  const U256 r = fp::sub(s2, y_);
  if (h.is_zero()) {
    if (r.is_zero()) return doubled();
    return Point();  // P + (-P) = infinity
  }
  const U256 h2 = fp::sqr(h);
  const U256 h3 = fp::mul(h2, h);
  const U256 u1h2 = fp::mul(x_, h2);
  U256 x3 = fp::sub(fp::sqr(r), h3);
  x3 = fp::sub(x3, fp::add(u1h2, u1h2));
  const U256 y3 = fp::sub(fp::mul(r, fp::sub(u1h2, x3)), fp::mul(y_, h3));
  const U256 z3 = fp::mul(h, z_);
  return Point(x3, y3, z3);
}

Point Point::negated() const {
  return Point(x_, fp::sub(U256(), y_), z_);
}

namespace {

/// One normalized entry of the fixed-base comb table.
struct AffineEntry {
  U256 x;
  U256 y;
};

}  // namespace

/// Builds the mul_generator comb: 32 byte windows * 255 multiples
/// (entry [j][v-1] = v * 2^(8j) * G), all normalized to affine with ONE
/// shared field inversion (Montgomery's trick) so process start-up stays
/// in the low milliseconds. Friend of Point for raw Jacobian access.
struct GenTableBuilder {
  static constexpr std::size_t kWindows = 32;
  static constexpr std::size_t kPerWindow = 255;

  [[nodiscard]] static std::vector<AffineEntry> build() {
    std::vector<Point> jac;
    jac.reserve(kWindows * kPerWindow);
    Point base = Point::generator();  // 2^(8j) * G for the current window
    for (std::size_t j = 0; j < kWindows; ++j) {
      Point acc = base;
      for (std::size_t v = 1; v <= kPerWindow; ++v) {
        jac.push_back(acc);
        acc = acc.add(base);
      }
      base = acc;  // 256 * (2^(8j) * G) = 2^(8(j+1)) * G
    }
    // Batch inversion: prefix[i] = Z_0 * ... * Z_i, one inv, walk back.
    std::vector<U256> prefix(jac.size());
    U256 running(1);
    for (std::size_t i = 0; i < jac.size(); ++i) {
      running = fp::mul(running, jac[i].z_);
      prefix[i] = running;
    }
    U256 inv_all = fp::inv(running);
    std::vector<AffineEntry> out(jac.size());
    for (std::size_t i = jac.size(); i-- > 0;) {
      const U256 zinv =
          i == 0 ? inv_all : fp::mul(inv_all, prefix[i - 1]);
      inv_all = fp::mul(inv_all, jac[i].z_);
      const U256 zinv2 = fp::sqr(zinv);
      out[i].x = fp::mul(jac[i].x_, zinv2);
      out[i].y = fp::mul(jac[i].y_, fp::mul(zinv2, zinv));
    }
    return out;
  }

  [[nodiscard]] static const std::vector<AffineEntry>& table() {
    static const std::vector<AffineEntry> t = build();
    return t;
  }
};

namespace {

/// Width-5 wNAF digits of k, least significant first. Digits are odd in
/// {-15..15}; the carry from folding a negative digit can push one bit
/// past 2^256, hence the 5-limb scratch.
int wnaf_digits(const U256& k, std::array<std::int8_t, 260>& digits) {
  std::uint64_t limbs[5] = {k.limb(0), k.limb(1), k.limb(2), k.limb(3), 0};
  const auto is_zero = [&] {
    return (limbs[0] | limbs[1] | limbs[2] | limbs[3] | limbs[4]) == 0;
  };
  const auto shr1 = [&] {
    for (int i = 0; i < 4; ++i) {
      limbs[i] = (limbs[i] >> 1) | (limbs[i + 1] << 63);
    }
    limbs[4] >>= 1;
  };
  int count = 0;
  while (!is_zero()) {
    std::int8_t d = 0;
    if ((limbs[0] & 1) != 0) {
      const auto low = static_cast<int>(limbs[0] & 31u);
      d = static_cast<std::int8_t>(low > 16 ? low - 32 : low);
      if (d > 0) {
        // Subtract d (fits in the low limb; k is odd so k >= d).
        std::uint64_t borrow = static_cast<std::uint64_t>(d);
        for (int i = 0; i < 5 && borrow != 0; ++i) {
          const std::uint64_t before = limbs[i];
          limbs[i] -= borrow;
          borrow = before < borrow ? 1 : 0;
        }
      } else {
        std::uint64_t carry = static_cast<std::uint64_t>(-d);
        for (int i = 0; i < 5 && carry != 0; ++i) {
          limbs[i] += carry;
          carry = limbs[i] < carry ? 1 : 0;
        }
      }
    }
    digits[static_cast<std::size_t>(count++)] = d;
    shr1();
  }
  return count;
}

}  // namespace

Point Point::mul(const U256& k) const {
  if (is_infinity() || k.is_zero()) return Point();
  // Odd multiples 1P, 3P, ..., 15P.
  std::array<Point, 8> odd;
  odd[0] = *this;
  const Point twice = doubled();
  for (std::size_t i = 1; i < odd.size(); ++i) {
    odd[i] = odd[i - 1].add(twice);
  }
  std::array<std::int8_t, 260> digits{};
  const int count = wnaf_digits(k, digits);
  Point acc;  // infinity
  for (int i = count - 1; i >= 0; --i) {
    acc = acc.doubled();
    const int d = digits[static_cast<std::size_t>(i)];
    if (d > 0) {
      acc = acc.add(odd[static_cast<std::size_t>((d - 1) / 2)]);
    } else if (d < 0) {
      acc = acc.add(odd[static_cast<std::size_t>((-d - 1) / 2)].negated());
    }
  }
  return acc;
}

Point Point::mul_generator(const U256& k) {
  const std::vector<AffineEntry>& table = GenTableBuilder::table();
  Point acc;  // infinity
  for (std::size_t j = 0; j < GenTableBuilder::kWindows; ++j) {
    const std::uint64_t v = (k.limb(static_cast<int>(j / 8)) >>
                             ((j % 8) * 8)) & 0xFFu;
    if (v != 0) {
      const AffineEntry& e =
          table[j * GenTableBuilder::kPerWindow + (v - 1)];
      acc = acc.add_affine(e.x, e.y);
    }
  }
  return acc;
}

std::optional<Point::Affine> Point::to_affine() const {
  if (is_infinity()) return std::nullopt;
  const U256 zinv = fp::inv(z_);
  const U256 zinv2 = fp::sqr(zinv);
  return Affine{fp::mul(x_, zinv2), fp::mul(y_, fp::mul(zinv2, zinv))};
}

bool Point::is_on_curve(const U256& x, const U256& y) {
  const U256 lhs = fp::sqr(y);
  const U256 rhs = fp::add(fp::mul(fp::sqr(x), x), U256(7));
  return lhs == rhs;
}

bool Point::equals(const Point& other) const {
  if (is_infinity() || other.is_infinity()) {
    return is_infinity() == other.is_infinity();
  }
  // X1/Z1^2 == X2/Z2^2  <=>  X1*Z2^2 == X2*Z1^2 (and same for Y with cubes).
  const U256 z1z1 = fp::sqr(z_);
  const U256 z2z2 = fp::sqr(other.z_);
  if (fp::mul(x_, z2z2) != fp::mul(other.x_, z1z1)) return false;
  return fp::mul(y_, fp::mul(z2z2, other.z_)) ==
         fp::mul(other.y_, fp::mul(z1z1, z_));
}

}  // namespace hc::crypto
