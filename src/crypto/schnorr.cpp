#include "crypto/schnorr.hpp"

#include <cassert>

namespace hc::crypto {

Digest tagged_hash(std::string_view tag, std::initializer_list<BytesView> parts) {
  const Digest tag_hash = Sha256::hash(to_bytes(tag));
  Sha256 h;
  h.update(digest_view(tag_hash));
  h.update(digest_view(tag_hash));
  for (const auto& p : parts) h.update(p);
  return h.finalize();
}

Bytes PublicKey::to_bytes() const {
  Bytes out = x_.to_be_bytes();
  append(out, y_.to_be_bytes());
  return out;
}

Result<PublicKey> PublicKey::from_bytes(BytesView bytes) {
  if (bytes.size() != 64) {
    return Error(Errc::kDecodeError, "public key must be 64 bytes");
  }
  PublicKey pk(U256::from_be_bytes(bytes.subspan(0, 32)),
               U256::from_be_bytes(bytes.subspan(32, 32)));
  if (!pk.valid()) {
    return Error(Errc::kDecodeError, "public key not on curve");
  }
  return pk;
}

Result<PublicKey> PublicKey::decode_from(Decoder& d) {
  HC_TRY(raw, d.raw(64));
  return from_bytes(raw);
}

Bytes Signature::to_bytes() const {
  Bytes out = rx_.to_be_bytes();
  append(out, ry_.to_be_bytes());
  append(out, s_.to_be_bytes());
  return out;
}

Result<Signature> Signature::from_bytes(BytesView bytes) {
  if (bytes.size() != 96) {
    return Error(Errc::kDecodeError, "signature must be 96 bytes");
  }
  return Signature(U256::from_be_bytes(bytes.subspan(0, 32)),
                   U256::from_be_bytes(bytes.subspan(32, 32)),
                   U256::from_be_bytes(bytes.subspan(64, 32)));
}

Result<Signature> Signature::decode_from(Decoder& d) {
  HC_TRY(raw, d.raw(96));
  return from_bytes(raw);
}

KeyPair KeyPair::from_seed(BytesView seed) {
  U256 d = fn::reduce(U256::from_digest(tagged_hash("hc/keygen", {seed})));
  if (d.is_zero()) d = U256(1);  // negligible probability; keep total
  const Point p = Point::mul_generator(d);
  const auto affine = p.to_affine();
  assert(affine.has_value());
  return KeyPair(d, PublicKey(affine->x, affine->y));
}

KeyPair KeyPair::from_label(std::string_view label) {
  return from_seed(to_bytes(label));
}

Signature KeyPair::sign(BytesView message) const {
  const Bytes d_bytes = secret_.to_be_bytes();
  U256 k = fn::reduce(
      U256::from_digest(tagged_hash("hc/nonce", {d_bytes, message})));
  if (k.is_zero()) k = U256(1);
  const Point r_point = Point::mul_generator(k);
  const auto r = r_point.to_affine();
  assert(r.has_value());
  const Bytes r_bytes = concat({r->x.to_be_bytes(), r->y.to_be_bytes()});
  const Bytes p_bytes = pub_.to_bytes();
  const U256 e = fn::reduce(
      U256::from_digest(tagged_hash("hc/chal", {r_bytes, p_bytes, message})));
  const U256 s = fn::add(k, fn::mul(e, secret_));
  return Signature(r->x, r->y, s);
}

bool verify(const PublicKey& pub, BytesView message, const Signature& sig) {
  if (!pub.valid()) return false;
  if (!Point::is_on_curve(sig.rx(), sig.ry())) return false;
  if (sig.s() >= fn::N()) return false;
  const Bytes r_bytes = concat({sig.rx().to_be_bytes(), sig.ry().to_be_bytes()});
  const Bytes p_bytes = pub.to_bytes();
  const U256 e = fn::reduce(
      U256::from_digest(tagged_hash("hc/chal", {r_bytes, p_bytes, message})));
  // s*G == R + e*P
  const Point lhs = Point::mul_generator(sig.s());
  const Point rhs = Point::from_affine(sig.rx(), sig.ry())
                        .add(Point::from_affine(pub.x(), pub.y()).mul(e));
  return lhs.equals(rhs);
}

}  // namespace hc::crypto
