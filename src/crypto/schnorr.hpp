// Deterministic Schnorr signatures over secp256k1.
//
// The scheme follows BIP340's structure with two simplifications that are
// irrelevant to the protocols built on top: public keys and nonce points are
// carried as full (x, y) affine pairs instead of x-only keys, and the nonce
// derivation uses a tagged SHA-256 of (secret key, message) rather than the
// BIP340 auxiliary-randomness construction. Signing is fully deterministic,
// which the discrete-event simulator relies on for reproducibility.
//
//   sign(d, m):  k = H_tag("hc/nonce", d, m) mod n;  R = k*G
//                e = H_tag("hc/chal", R, P, m) mod n; s = k + e*d mod n
//                signature = (R, s)
//   verify:      s*G == R + e*P
#pragma once

#include <string_view>

#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "common/hash.hpp"
#include "common/result.hpp"
#include "crypto/ec.hpp"
#include "crypto/u256.hpp"

namespace hc::crypto {

/// Domain-separated hash: SHA256(SHA256(tag) || SHA256(tag) || parts...).
[[nodiscard]] Digest tagged_hash(std::string_view tag,
                                 std::initializer_list<BytesView> parts);

/// A serialized public key: 64 bytes (x || y, big-endian).
class PublicKey {
 public:
  PublicKey() = default;
  PublicKey(const U256& x, const U256& y) : x_(x), y_(y) {}

  [[nodiscard]] const U256& x() const { return x_; }
  [[nodiscard]] const U256& y() const { return y_; }

  /// 64-byte serialization (also the preimage for key Addresses).
  [[nodiscard]] Bytes to_bytes() const;
  [[nodiscard]] static Result<PublicKey> from_bytes(BytesView bytes);

  [[nodiscard]] bool valid() const { return Point::is_on_curve(x_, y_); }

  friend bool operator==(const PublicKey&, const PublicKey&) = default;

  void encode_to(Encoder& e) const { e.raw(to_bytes()); }
  [[nodiscard]] static Result<PublicKey> decode_from(Decoder& d);

 private:
  U256 x_;
  U256 y_;
};

/// A Schnorr signature (R.x, R.y, s): 96 bytes serialized.
class Signature {
 public:
  Signature() = default;
  Signature(const U256& rx, const U256& ry, const U256& s)
      : rx_(rx), ry_(ry), s_(s) {}

  [[nodiscard]] Bytes to_bytes() const;
  [[nodiscard]] static Result<Signature> from_bytes(BytesView bytes);

  [[nodiscard]] const U256& rx() const { return rx_; }
  [[nodiscard]] const U256& ry() const { return ry_; }
  [[nodiscard]] const U256& s() const { return s_; }

  friend bool operator==(const Signature&, const Signature&) = default;

  void encode_to(Encoder& e) const { e.raw(to_bytes()); }
  [[nodiscard]] static Result<Signature> decode_from(Decoder& d);

 private:
  U256 rx_;
  U256 ry_;
  U256 s_;
};

/// A signing key pair. Create via KeyPair::from_seed — deterministic, so
/// simulation runs are reproducible.
class KeyPair {
 public:
  /// Derive a key pair from arbitrary seed bytes (d = H(seed) mod n, d != 0).
  [[nodiscard]] static KeyPair from_seed(BytesView seed);

  /// Convenience: derive from a printable label ("validator-3").
  [[nodiscard]] static KeyPair from_label(std::string_view label);

  [[nodiscard]] const PublicKey& public_key() const { return pub_; }

  /// Sign a message (deterministic nonce).
  [[nodiscard]] Signature sign(BytesView message) const;

 private:
  KeyPair(const U256& secret, PublicKey pub) : secret_(secret), pub_(pub) {}

  U256 secret_;
  PublicKey pub_;
};

/// Verify a signature over `message` by `pub`. Never throws.
[[nodiscard]] bool verify(const PublicKey& pub, BytesView message,
                          const Signature& sig);

}  // namespace hc::crypto
