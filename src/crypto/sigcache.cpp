#include "crypto/sigcache.hpp"

#include <vector>

#include "common/hash.hpp"
#include "crypto/schnorr.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"

namespace hc::crypto {

namespace {

// Hit/miss rates live in the process-wide obs registry (the cache itself
// is process-wide, unlike per-hierarchy instruments), so they never enter
// per-run metric exports or replay fingerprints.
obs::Counter& hits_counter() {
  static obs::Counter& c =
      obs::default_obs().metrics.counter("crypto_sigcache_hits_total");
  return c;
}

obs::Counter& misses_counter() {
  static obs::Counter& c =
      obs::default_obs().metrics.counter("crypto_sigcache_misses_total");
  return c;
}

}  // namespace

SigCache::SigCache() {
  hits_counter();
  misses_counter();
}

SigCache& SigCache::instance() {
  static SigCache cache;
  return cache;
}

std::uint64_t SigCache::key(BytesView payload, BytesView pubkey,
                            BytesView signature) {
  const Digest d = Sha256::hash_all({payload, pubkey, signature});
  std::uint64_t k = 0;
  for (int i = 0; i < 8; ++i) k = (k << 8) | d[static_cast<std::size_t>(i)];
  return k;
}

bool SigCache::lookup(std::uint64_t key, bool& result) const {
  Shard& shard = shard_of(key);
  {
    std::lock_guard<std::mutex> lk(shard.m);
    if (auto it = shard.hot.find(key); it != shard.hot.end()) {
      result = it->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      hits_counter().inc();
      return true;
    }
    if (auto it = shard.cold.find(key); it != shard.cold.end()) {
      result = it->second;
      shard.hot.emplace(key, result);  // promote: recently touched
      hits_.fetch_add(1, std::memory_order_relaxed);
      hits_counter().inc();
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  misses_counter().inc();
  return false;
}

void SigCache::lookup_batch(const std::uint64_t* keys, std::size_t n,
                            std::uint8_t* present,
                            std::uint8_t* results) const {
  // Bucket entry indices by shard so each mutex is locked once.
  std::vector<std::uint32_t> by_shard[kShardCount];
  for (std::size_t i = 0; i < n; ++i) {
    by_shard[keys[i] & (kShardCount - 1)].push_back(
        static_cast<std::uint32_t>(i));
  }
  std::uint64_t hits = 0;
  for (std::size_t s = 0; s < kShardCount; ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lk(shard.m);
    for (std::uint32_t i : by_shard[s]) {
      const std::uint64_t key = keys[i];
      if (auto it = shard.hot.find(key); it != shard.hot.end()) {
        present[i] = 1;
        results[i] = it->second ? 1 : 0;
        ++hits;
      } else if (auto it2 = shard.cold.find(key); it2 != shard.cold.end()) {
        present[i] = 1;
        results[i] = it2->second ? 1 : 0;
        shard.hot.emplace(key, it2->second);  // promote: recently touched
        ++hits;
      } else {
        present[i] = 0;
      }
    }
  }
  hits_.fetch_add(hits, std::memory_order_relaxed);
  misses_.fetch_add(n - hits, std::memory_order_relaxed);
  hits_counter().inc(hits);
  misses_counter().inc(n - hits);
}

void SigCache::store_batch(const std::uint64_t* keys,
                           const std::uint8_t* results,
                           const std::uint8_t* skip, std::size_t n) {
  std::vector<std::uint32_t> by_shard[kShardCount];
  for (std::size_t i = 0; i < n; ++i) {
    if (skip != nullptr && skip[i] != 0) continue;
    by_shard[keys[i] & (kShardCount - 1)].push_back(
        static_cast<std::uint32_t>(i));
  }
  for (std::size_t s = 0; s < kShardCount; ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lk(shard.m);
    for (std::uint32_t i : by_shard[s]) {
      shard.hot.emplace(keys[i], results[i] != 0);
      if (shard.hot.size() >= kShardHotMax) {
        shard.cold = std::move(shard.hot);
        shard.hot.clear();
      }
    }
  }
}

void SigCache::store(std::uint64_t key, bool result) {
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lk(shard.m);
  shard.hot.emplace(key, result);
  if (shard.hot.size() >= kShardHotMax) {
    // Generation rotation: the hot map ages into cold, the old cold is
    // dropped. Recently verified triples survive a capacity turnover.
    shard.cold = std::move(shard.hot);
    shard.hot.clear();
  }
}

bool verify_cached(const PublicKey& pub, BytesView message,
                   const Signature& sig) {
  const Bytes pk = pub.to_bytes();
  const Bytes sg = sig.to_bytes();
  const std::uint64_t key = SigCache::key(message, pk, sg);
  bool result = false;
  if (SigCache::instance().lookup(key, result)) return result;
  {
    // Only the miss path pays real Schnorr math; cache hits above stay
    // unprofiled so the crypto/verify phase measures verification cost,
    // not hash-map lookups.
    static const obs::PhaseId verify_phase =
        obs::Profiler::instance().phase("crypto/verify");
    obs::ProfileScope prof(verify_phase);
    result = verify(pub, message, sig);
  }
  SigCache::instance().store(key, result);
  return result;
}

}  // namespace hc::crypto
