#include "crypto/sigcache.hpp"

#include "common/hash.hpp"
#include "crypto/schnorr.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"

namespace hc::crypto {

namespace {

// Hit/miss rates live in the process-wide obs registry (the cache itself
// is process-wide, unlike per-hierarchy instruments), so they never enter
// per-run metric exports or replay fingerprints.
obs::Counter& hits_counter() {
  static obs::Counter& c =
      obs::default_obs().metrics.counter("crypto_sigcache_hits_total");
  return c;
}

obs::Counter& misses_counter() {
  static obs::Counter& c =
      obs::default_obs().metrics.counter("crypto_sigcache_misses_total");
  return c;
}

}  // namespace

SigCache::SigCache() {
  hits_counter();
  misses_counter();
}

SigCache& SigCache::instance() {
  static SigCache cache;
  return cache;
}

std::uint64_t SigCache::key(BytesView payload, BytesView pubkey,
                            BytesView signature) {
  const Digest d = Sha256::hash_all({payload, pubkey, signature});
  std::uint64_t k = 0;
  for (int i = 0; i < 8; ++i) k = (k << 8) | d[static_cast<std::size_t>(i)];
  return k;
}

bool SigCache::lookup(std::uint64_t key, bool& result) const {
  Shard& shard = shard_of(key);
  {
    std::lock_guard<std::mutex> lk(shard.m);
    if (auto it = shard.hot.find(key); it != shard.hot.end()) {
      result = it->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      hits_counter().inc();
      return true;
    }
    if (auto it = shard.cold.find(key); it != shard.cold.end()) {
      result = it->second;
      shard.hot.emplace(key, result);  // promote: recently touched
      hits_.fetch_add(1, std::memory_order_relaxed);
      hits_counter().inc();
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  misses_counter().inc();
  return false;
}

void SigCache::store(std::uint64_t key, bool result) {
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lk(shard.m);
  shard.hot.emplace(key, result);
  if (shard.hot.size() >= kShardHotMax) {
    // Generation rotation: the hot map ages into cold, the old cold is
    // dropped. Recently verified triples survive a capacity turnover.
    shard.cold = std::move(shard.hot);
    shard.hot.clear();
  }
}

bool verify_cached(const PublicKey& pub, BytesView message,
                   const Signature& sig) {
  const Bytes pk = pub.to_bytes();
  const Bytes sg = sig.to_bytes();
  const std::uint64_t key = SigCache::key(message, pk, sg);
  bool result = false;
  if (SigCache::instance().lookup(key, result)) return result;
  {
    // Only the miss path pays real Schnorr math; cache hits above stay
    // unprofiled so the crypto/verify phase measures verification cost,
    // not hash-map lookups.
    static const obs::PhaseId verify_phase =
        obs::Profiler::instance().phase("crypto/verify");
    obs::ProfileScope prof(verify_phase);
    result = verify(pub, message, sig);
  }
  SigCache::instance().store(key, result);
  return result;
}

}  // namespace hc::crypto
