#include "crypto/sigcache.hpp"

#include "common/hash.hpp"
#include "crypto/schnorr.hpp"

namespace hc::crypto {

SigCache& SigCache::instance() {
  static SigCache cache;
  return cache;
}

std::uint64_t SigCache::key(BytesView payload, BytesView pubkey,
                            BytesView signature) {
  const Digest d = Sha256::hash_all({payload, pubkey, signature});
  std::uint64_t k = 0;
  for (int i = 0; i < 8; ++i) k = (k << 8) | d[static_cast<std::size_t>(i)];
  return k;
}

bool SigCache::lookup(std::uint64_t key, bool& result) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  result = it->second;
  return true;
}

void SigCache::store(std::uint64_t key, bool result) {
  if (entries_.size() >= kMaxEntries) entries_.clear();
  entries_.emplace(key, result);
}

bool verify_cached(const PublicKey& pub, BytesView message,
                   const Signature& sig) {
  const Bytes pk = pub.to_bytes();
  const Bytes sg = sig.to_bytes();
  const std::uint64_t key = SigCache::key(message, pk, sg);
  bool result = false;
  if (SigCache::instance().lookup(key, result)) return result;
  result = verify(pub, message, sig);
  SigCache::instance().store(key, result);
  return result;
}

}  // namespace hc::crypto
