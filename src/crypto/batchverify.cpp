#include "crypto/batchverify.hpp"

#include "crypto/sigcache.hpp"
#include "obs/profile.hpp"

namespace hc::crypto {

void BatchVerifier::add(const PublicKey& pub, BytesView message,
                        const Signature& sig) {
  const Bytes pk = pub.to_bytes();
  const Bytes sg = sig.to_bytes();
  entries_.push_back(
      Entry{pub, message, sig, SigCache::key(message, pk, sg)});
}

std::vector<bool> BatchVerifier::flush() {
  const std::size_t n = entries_.size();
  std::vector<bool> results(n, false);
  if (n == 0) return results;

  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = entries_[i].key;

  // Pass 1: resolve cached outcomes, one lock per touched shard.
  std::vector<std::uint8_t> present(n, 0);
  std::vector<std::uint8_t> outcome(n, 0);
  SigCache::instance().lookup_batch(keys.data(), n, present.data(),
                                    outcome.data());

  // Pass 2: real Schnorr math for the misses only, one profiled region for
  // the whole cluster (the same accounting rule as verify_cached: hits are
  // hash-map time, not verification time).
  bool any_miss = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (!present[i]) {
      any_miss = true;
      break;
    }
  }
  if (any_miss) {
    static const obs::PhaseId verify_phase =
        obs::Profiler::instance().phase("crypto/verify");
    obs::ProfileScope prof(verify_phase);
    for (std::size_t i = 0; i < n; ++i) {
      if (present[i]) continue;
      outcome[i] =
          verify(entries_[i].pub, entries_[i].message, entries_[i].sig) ? 1
                                                                        : 0;
    }
  }

  // Pass 3: publish the fresh outcomes, again one lock per shard. `present`
  // doubles as the skip mask: hits need no store.
  if (any_miss) {
    SigCache::instance().store_batch(keys.data(), outcome.data(),
                                     present.data(), n);
  }

  for (std::size_t i = 0; i < n; ++i) results[i] = outcome[i] != 0;
  entries_.clear();
  return results;
}

}  // namespace hc::crypto
