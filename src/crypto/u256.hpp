// 256-bit unsigned integer arithmetic.
//
// Fixed-width little-endian limb representation (limbs_[0] is least
// significant). This is the substrate for the secp256k1 field/scalar
// arithmetic in ec.hpp; only the operations those need are provided.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace hc::crypto {

class U256;
struct WideProduct;
[[nodiscard]] WideProduct mul_wide(const U256& a, const U256& b);

class U256 {
 public:
  /// Zero.
  constexpr U256() : limbs_{} {}

  /// From a single 64-bit value.
  constexpr explicit U256(std::uint64_t v) : limbs_{v, 0, 0, 0} {}

  /// From four 64-bit limbs, most-significant first (matches how constants
  /// are written in standards documents).
  [[nodiscard]] static constexpr U256 from_limbs_be(std::uint64_t a,
                                                    std::uint64_t b,
                                                    std::uint64_t c,
                                                    std::uint64_t d) {
    U256 r;
    r.limbs_ = {d, c, b, a};
    return r;
  }

  /// From exactly 32 big-endian bytes.
  [[nodiscard]] static U256 from_be_bytes(BytesView bytes);

  /// From a 32-byte digest (big-endian interpretation).
  [[nodiscard]] static U256 from_digest(const std::array<std::uint8_t, 32>& d);

  /// To 32 big-endian bytes.
  [[nodiscard]] Bytes to_be_bytes() const;

  /// Hex rendering (64 chars, no prefix).
  [[nodiscard]] std::string to_hex() const;

  [[nodiscard]] constexpr bool is_zero() const {
    return (limbs_[0] | limbs_[1] | limbs_[2] | limbs_[3]) == 0;
  }

  [[nodiscard]] constexpr std::uint64_t limb(int i) const {
    return limbs_[static_cast<std::size_t>(i)];
  }

  /// Bit i (0 = least significant).
  [[nodiscard]] constexpr bool bit(int i) const {
    return (limbs_[static_cast<std::size_t>(i / 64)] >>
            (static_cast<unsigned>(i) % 64)) & 1u;
  }

  /// Index of the highest set bit, or -1 if zero.
  [[nodiscard]] int top_bit() const;

  /// this + rhs; returns the carry out (0/1).
  std::uint64_t add_with_carry(const U256& rhs);
  /// this - rhs; returns the borrow out (0/1).
  std::uint64_t sub_with_borrow(const U256& rhs);

  [[nodiscard]] friend U256 operator+(U256 a, const U256& b) {
    a.add_with_carry(b);
    return a;
  }
  [[nodiscard]] friend U256 operator-(U256 a, const U256& b) {
    a.sub_with_borrow(b);
    return a;
  }

  friend constexpr auto operator<=>(const U256& a, const U256& b) {
    for (int i = 3; i >= 0; --i) {
      if (a.limbs_[static_cast<std::size_t>(i)] !=
          b.limbs_[static_cast<std::size_t>(i)]) {
        return a.limbs_[static_cast<std::size_t>(i)] <=>
               b.limbs_[static_cast<std::size_t>(i)];
      }
    }
    return std::strong_ordering::equal;
  }
  friend constexpr bool operator==(const U256&, const U256&) = default;

 private:
  friend WideProduct mul_wide(const U256& a, const U256& b);

  std::array<std::uint64_t, 4> limbs_;
};

/// Full 512-bit product as {lo, hi} (see mul_wide).
struct WideProduct {
  U256 lo;
  U256 hi;
};

}  // namespace hc::crypto
