// Signature verification cache.
//
// The same (message, key, signature) triple is verified many times across a
// system: every validator checks every gossiped message, and blocks are
// re-executed at proposal, validation and commit. Like Bitcoin's and
// go-ethereum's sigcache, we memoize verification outcomes keyed by a hash
// of the triple.
//
// The cache is process-wide and hit from every ParallelExecutor worker
// lane, so it is sharded 16 ways (shard = low key bits — the key is itself
// a hash, so shards balance) with one mutex per shard. Eviction is
// generational per shard: entries insert into a *hot* map; when hot fills,
// it becomes the *cold* generation and the previous cold is dropped.
// Lookups that land in cold promote back to hot. At capacity this keeps
// the most recently touched half of the entries instead of dropping
// everything at once.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/bytes.hpp"

namespace hc::crypto {

class SigCache {
 public:
  /// Process-wide instance.
  [[nodiscard]] static SigCache& instance();

  /// Compute the cache key for a (payload, pubkey, signature) triple.
  [[nodiscard]] static std::uint64_t key(BytesView payload, BytesView pubkey,
                                         BytesView signature);

  /// Lookup; returns true and sets `result` when present. A cold-
  /// generation hit promotes the entry back into the hot generation.
  [[nodiscard]] bool lookup(std::uint64_t key, bool& result) const;

  /// Record an outcome.
  void store(std::uint64_t key, bool result);

  /// Batched lookup for `n` keys: sets `present[i]` / `results[i]` (0/1)
  /// per key. Keys are grouped by shard first so each shard mutex is taken
  /// at most once per call, instead of once per signature as with lookup()
  /// in a loop — the cache-side half of BatchVerifier's per-block pass.
  void lookup_batch(const std::uint64_t* keys, std::size_t n,
                    std::uint8_t* present, std::uint8_t* results) const;

  /// Batched store; same shard-grouped single-lock discipline. Entries with
  /// `skip[i]` nonzero are ignored (already-cached hits from the lookup
  /// pass). `skip` may be null to store everything.
  void store_batch(const std::uint64_t* keys, const std::uint8_t* results,
                   const std::uint8_t* skip, std::size_t n);

  [[nodiscard]] std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  SigCache();

  static constexpr std::size_t kMaxEntries = 1u << 20;
  static constexpr std::size_t kShardCount = 16;
  // Rotate a shard's generations when its hot map reaches half the
  // shard's share of the capacity, so hot + cold stay within budget.
  static constexpr std::size_t kShardHotMax = kMaxEntries / kShardCount / 2;

  struct Shard {
    mutable std::mutex m;
    std::unordered_map<std::uint64_t, bool> hot;
    std::unordered_map<std::uint64_t, bool> cold;
  };

  [[nodiscard]] Shard& shard_of(std::uint64_t key) const {
    return shards_[key & (kShardCount - 1)];
  }

  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable Shard shards_[kShardCount];
};

/// Cached variant of crypto::verify for hot paths.
class PublicKey;
class Signature;
[[nodiscard]] bool verify_cached(const PublicKey& pub, BytesView message,
                                 const Signature& sig);

}  // namespace hc::crypto
