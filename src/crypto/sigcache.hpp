// Signature verification cache.
//
// The same (message, key, signature) triple is verified many times across a
// system: every validator checks every gossiped message, and blocks are
// re-executed at proposal, validation and commit. Like Bitcoin's and
// go-ethereum's sigcache, we memoize verification outcomes keyed by a hash
// of the triple. Single-threaded by design (the simulator is
// single-threaded); bounded by clearing at capacity.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/bytes.hpp"

namespace hc::crypto {

class SigCache {
 public:
  /// Process-wide instance.
  [[nodiscard]] static SigCache& instance();

  /// Compute the cache key for a (payload, pubkey, signature) triple.
  [[nodiscard]] static std::uint64_t key(BytesView payload, BytesView pubkey,
                                         BytesView signature);

  /// Lookup; returns true and sets `result` when present.
  [[nodiscard]] bool lookup(std::uint64_t key, bool& result) const;

  /// Record an outcome.
  void store(std::uint64_t key, bool result);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  static constexpr std::size_t kMaxEntries = 1u << 20;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::unordered_map<std::uint64_t, bool> entries_;
};

/// Cached variant of crypto::verify for hot paths.
class PublicKey;
class Signature;
[[nodiscard]] bool verify_cached(const PublicKey& pub, BytesView message,
                                 const Signature& sig);

}  // namespace hc::crypto
