// Batched signature verification through the sharded SigCache.
//
// The hot path verifies signatures in clusters with known boundaries: all
// SignedMessages of a block at proposal/validation/commit, all checkpoint
// shares of a window. Verifying them one at a time pays one SigCache shard
// lock round-trip per signature; a BatchVerifier instead collects the whole
// cluster, resolves every cached outcome in one shard-grouped lookup pass
// (each shard mutex taken at most once), runs real Schnorr math only for
// the misses inside a single profiled region, and writes the new outcomes
// back in one shard-grouped store pass.
//
// Results are positional and deterministic: flush() returns outcomes in
// add() order, and the underlying math is the same deterministic per-triple
// verify() as the scalar path, so batch and scalar verification agree
// bit-for-bit (parallel determinism gates depend on this).
#pragma once

#include <cstddef>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/schnorr.hpp"

namespace hc::crypto {

class BatchVerifier {
 public:
  /// Queue a (pubkey, message, signature) triple. `message` is NOT copied —
  /// the view must stay valid until flush() (arena-backed payloads satisfy
  /// this: the owner resets its arena only after the block's flush).
  void add(const PublicKey& pub, BytesView message, const Signature& sig);

  /// Verify everything queued since the last flush. Returns one outcome per
  /// add(), in order, and leaves the verifier empty for reuse.
  [[nodiscard]] std::vector<bool> flush();

  [[nodiscard]] std::size_t pending() const { return entries_.size(); }

 private:
  struct Entry {
    PublicKey pub;
    BytesView message;
    Signature sig;
    std::uint64_t key;
  };
  std::vector<Entry> entries_;
};

}  // namespace hc::crypto
