// Content-addressable and key-value storage.
//
// The CAS backs the paper's content-resolution registry (§IV-C: "the subnet
// SCA ... keeps a registry with all CIDs for CrossMsgMetas propagated (i.e.,
// a content-addressable key-value store)"), block/checkpoint stores, and
// the atomic-execution state exchange.
#pragma once

#include <optional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/cid.hpp"
#include "common/result.hpp"

namespace hc::storage {

/// In-memory content-addressable store: the key IS the content's CID, so
/// integrity is verified structurally on put.
class ContentStore {
 public:
  /// Store content under its computed CID; returns that CID. Idempotent.
  Cid put(CidCodec codec, Bytes content);

  /// Store content that must match a known CID (resolution responses).
  /// Fails with kInvalidArgument when the bytes do not hash to `expected`.
  Status put_verified(const Cid& expected, Bytes content);

  [[nodiscard]] bool has(const Cid& cid) const;
  [[nodiscard]] std::optional<Bytes> get(const Cid& cid) const;

  [[nodiscard]] std::size_t size() const { return blobs_.size(); }
  [[nodiscard]] std::size_t total_bytes() const { return total_bytes_; }

 private:
  std::unordered_map<Cid, Bytes> blobs_;
  std::size_t total_bytes_ = 0;
};

/// Simple byte-keyed KV store with string-namespaced views.
class KvStore {
 public:
  void put(const Bytes& key, Bytes value);
  [[nodiscard]] std::optional<Bytes> get(const Bytes& key) const;
  [[nodiscard]] bool has(const Bytes& key) const;
  void erase(const Bytes& key);
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct BytesHash {
    std::size_t operator()(const Bytes& b) const noexcept {
      std::size_t h = 1469598103934665603ull;
      for (std::uint8_t c : b) h = (h ^ c) * 1099511628211ull;
      return h;
    }
  };
  std::unordered_map<Bytes, Bytes, BytesHash> entries_;
};

}  // namespace hc::storage
