// Content-addressable and key-value storage.
//
// The CAS backs the paper's content-resolution registry (§IV-C: "the subnet
// SCA ... keeps a registry with all CIDs for CrossMsgMetas propagated (i.e.,
// a content-addressable key-value store)"), block/checkpoint stores, and
// the atomic-execution state exchange.
//
// Both stores accept an optional common::CapacityPolicy (DESIGN.md §14):
// when bounded, admission past the cap evicts the OLDEST resident (stable
// insertion order, so eviction is deterministic) and the displacement is
// accounted in a reason-labelled ShedStats ledger. CAS entries are safe to
// evict — content is re-fetchable through the resolution protocol — so the
// policy turns the store into a bounded cache rather than refusing puts.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/capacity.hpp"
#include "common/cid.hpp"
#include "common/result.hpp"

namespace hc::storage {

/// In-memory content-addressable store: the key IS the content's CID, so
/// integrity is verified structurally on put.
class ContentStore {
 public:
  /// Store content under its computed CID; returns that CID. Idempotent.
  Cid put(CidCodec codec, Bytes content);

  /// Store content that must match a known CID (resolution responses).
  /// Fails with kInvalidArgument when the bytes do not hash to `expected`.
  Status put_verified(const Cid& expected, Bytes content);

  /// Zero-copy variant: share already-materialized bytes (e.g. a field of
  /// a gossip envelope's decoded object, via the shared_ptr aliasing
  /// constructor) instead of copying them into the store.
  Status put_verified(const Cid& expected,
                      std::shared_ptr<const Bytes> content);

  [[nodiscard]] bool has(const Cid& cid) const;
  [[nodiscard]] std::optional<Bytes> get(const Cid& cid) const;
  /// Zero-copy read: the returned pointer shares ownership with the store
  /// (and stays valid across eviction). Null when absent.
  [[nodiscard]] std::shared_ptr<const Bytes> get_shared(const Cid& cid) const;

  [[nodiscard]] std::size_t size() const { return blobs_.size(); }
  [[nodiscard]] std::size_t total_bytes() const { return total_bytes_; }

  /// Install a capacity cap (0 fields = unbounded). Existing residents are
  /// trimmed immediately if they already exceed the new cap.
  void set_policy(common::CapacityPolicy policy);
  [[nodiscard]] const common::CapacityPolicy& policy() const {
    return policy_;
  }
  [[nodiscard]] const common::ShedStats& shed_stats() const { return shed_; }

 private:
  /// Evict oldest residents until `incoming_items` more entries totalling
  /// `incoming_bytes` fit (0/0 = trim to the current policy).
  void make_room(std::size_t incoming_bytes, std::size_t incoming_items);
  void record(const Cid& cid, std::size_t bytes);

  // Shared immutable blobs: a resident can alias a gossip envelope's
  // decoded object (zero-copy put) and outlive eviction via get_shared().
  std::unordered_map<Cid, std::shared_ptr<const Bytes>> blobs_;
  std::deque<Cid> order_;  // insertion order; front = eviction candidate
  std::size_t total_bytes_ = 0;
  common::CapacityPolicy policy_;
  common::ShedStats shed_;
};

/// Simple byte-keyed KV store with string-namespaced views.
class KvStore {
 public:
  void put(const Bytes& key, Bytes value);
  [[nodiscard]] std::optional<Bytes> get(const Bytes& key) const;
  [[nodiscard]] bool has(const Bytes& key) const;
  void erase(const Bytes& key);
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t total_bytes() const { return total_bytes_; }

  /// Install a capacity cap (0 fields = unbounded); trims immediately.
  void set_policy(common::CapacityPolicy policy);
  [[nodiscard]] const common::CapacityPolicy& policy() const {
    return policy_;
  }
  [[nodiscard]] const common::ShedStats& shed_stats() const { return shed_; }

 private:
  struct BytesHash {
    std::size_t operator()(const Bytes& b) const noexcept {
      std::size_t h = 1469598103934665603ull;
      for (std::uint8_t c : b) h = (h ^ c) * 1099511628211ull;
      return h;
    }
  };
  void make_room(std::size_t incoming_bytes, std::size_t incoming_items);

  std::unordered_map<Bytes, Bytes, BytesHash> entries_;
  std::deque<Bytes> order_;  // insertion order; front = eviction candidate
  std::size_t total_bytes_ = 0;
  common::CapacityPolicy policy_;
  common::ShedStats shed_;
};

}  // namespace hc::storage
