#include "storage/wal.hpp"

namespace hc::storage {

void wal_append(DurableLog& log, const WalRecord& record) {
  log.append(encode(record));
}

std::vector<WalRecord> wal_recover(const DurableLog& log,
                                   DurableLog::RecoverStats* stats) {
  DurableLog::RecoverStats local;
  const std::vector<Bytes> frames = log.recover(&local);
  std::vector<WalRecord> out;
  out.reserve(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    auto decoded = decode<WalRecord>(frames[i]);
    if (!decoded) {
      // Framed correctly but undecodable: treat like corruption and drop
      // this record and everything after it (replay must stay a prefix).
      local.records = i;
      ++local.corrupt_records;
      for (std::size_t j = i; j < frames.size(); ++j) {
        local.truncated_bytes += frames[j].size() + 8;
      }
      break;
    }
    out.push_back(std::move(decoded).value());
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace hc::storage
