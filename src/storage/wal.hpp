// Write-ahead log record vocabulary (DESIGN.md §15).
//
// A SubnetNode persists three kinds of records into its DurableLog:
//   kBlock      — a committed block (payload) + its commit proof (aux);
//                 appended after every local commit, fsynced lazily.
//   kCheckpoint — a checkpoint this chain cut (payload), keyed by epoch;
//                 restores the submit/sign duty bookkeeping on recovery.
//   kVoteState  — the consensus engine's opaque safety state; last record
//                 wins. ALWAYS fsynced before the vote/production it
//                 covers leaves the node (the write-ahead barrier rule): a
//                 recovered validator must never sign conflicting with a
//                 vote the network may already hold.
//
// The record layer is deliberately dumb: framing integrity is the
// DurableLog's job, replay policy is the node's. wal_recover() stops at
// the first undecodable record (only reachable through medium corruption
// that slipped past the CRC, or a version skew) and reports it as corrupt
// rather than guessing.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "common/result.hpp"
#include "storage/durable.hpp"

namespace hc::storage {

enum class WalRecordType : std::uint8_t {
  kBlock = 1,
  kCheckpoint = 2,
  kVoteState = 3,
};

struct WalRecord {
  WalRecordType type = WalRecordType::kBlock;
  std::uint64_t height = 0;  ///< block height / checkpoint epoch / 0
  Bytes payload;
  Bytes aux;

  void encode_to(Encoder& e) const {
    e.u8(static_cast<std::uint8_t>(type))
        .u64(height)
        .bytes(payload)
        .bytes(aux);
  }
  static Result<WalRecord> decode_from(Decoder& d) {
    WalRecord r;
    HC_TRY(type, d.u8());
    if (type < 1 || type > 3) {
      return Error(Errc::kDecodeError, "unknown WAL record type");
    }
    r.type = static_cast<WalRecordType>(type);
    HC_TRY(height, d.u64());
    r.height = height;
    HC_TRY(payload, d.bytes());
    r.payload = std::move(payload);
    HC_TRY(aux, d.bytes());
    r.aux = std::move(aux);
    return r;
  }
};

/// Append one record (buffered; call log.fsync() to draw the barrier).
void wal_append(DurableLog& log, const WalRecord& record);

/// Recover every decodable record up to the first bad frame. `stats`
/// reflects the DurableLog scan plus any record that framed correctly but
/// failed to decode (counted corrupt, scan stops there).
[[nodiscard]] std::vector<WalRecord> wal_recover(
    const DurableLog& log, DurableLog::RecoverStats* stats = nullptr);

}  // namespace hc::storage
