#include "storage/durable.hpp"

#include <array>

namespace hc::storage {

namespace {

constexpr std::size_t kFrameHeader = 8;  // u32 len + u32 crc

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

/// Deterministic 64-bit mixer (splitmix64 finalizer); the fault machinery
/// needs only a couple of independent draws per crash, so a full RNG
/// stream (and the hc_sim dependency it would bring) is unnecessary.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint32_t read_u32(const Bytes& buf, std::size_t at) {
  return (static_cast<std::uint32_t>(buf[at]) << 24) |
         (static_cast<std::uint32_t>(buf[at + 1]) << 16) |
         (static_cast<std::uint32_t>(buf[at + 2]) << 8) |
         static_cast<std::uint32_t>(buf[at + 3]);
}

void push_u32(Bytes& buf, std::uint32_t v) {
  buf.push_back(static_cast<std::uint8_t>(v >> 24));
  buf.push_back(static_cast<std::uint8_t>(v >> 16));
  buf.push_back(static_cast<std::uint8_t>(v >> 8));
  buf.push_back(static_cast<std::uint8_t>(v));
}

}  // namespace

std::uint32_t crc32(BytesView data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xffffffffu;
  for (std::uint8_t b : data) {
    c = table[(c ^ b) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

const char* to_string(DiskFault::Kind kind) {
  switch (kind) {
    case DiskFault::Kind::kKeepAll:
      return "keep-all";
    case DiskFault::Kind::kLoseSuffix:
      return "lose-suffix";
    case DiskFault::Kind::kTornTail:
      return "torn-tail";
    case DiskFault::Kind::kBitFlip:
      return "bit-flip";
    case DiskFault::Kind::kLoseDisk:
      return "lose-disk";
  }
  return "unknown";
}

void DurableLog::append(BytesView payload) {
  push_u32(file_, static_cast<std::uint32_t>(payload.size()));
  push_u32(file_, crc32(payload));
  file_.insert(file_.end(), payload.begin(), payload.end());
  ++appends_;
}

void DurableLog::fsync() {
  durable_ = file_.size();
  ++fsyncs_;
}

void DurableLog::crash(const DiskFault& fault) {
  switch (fault.kind) {
    case DiskFault::Kind::kKeepAll:
      break;
    case DiskFault::Kind::kLoseSuffix:
      file_.resize(durable_);
      break;
    case DiskFault::Kind::kTornTail: {
      // Keep a strict partial prefix of the un-fsynced suffix: the medium
      // got some of the write out before power failed. An empty suffix
      // (everything fsynced) tears nothing.
      const std::size_t suffix = file_.size() - durable_;
      if (suffix > 1) {
        const std::size_t cut = 1 + mix64(fault.seed) % (suffix - 1);
        file_.resize(durable_ + cut);
      } else {
        file_.resize(durable_);
      }
      break;
    }
    case DiskFault::Kind::kBitFlip: {
      if (!file_.empty()) {
        const std::uint64_t r = mix64(fault.seed);
        file_[r % file_.size()] ^=
            static_cast<std::uint8_t>(1u << ((r >> 32) % 8));
      }
      break;
    }
    case DiskFault::Kind::kLoseDisk:
      file_.clear();
      break;
  }
  // Whatever survived the crash IS the medium's content now.
  durable_ = file_.size();
}

std::vector<Bytes> DurableLog::recover(RecoverStats* stats) const {
  std::vector<Bytes> out;
  RecoverStats local;
  std::size_t pos = 0;
  while (pos < file_.size()) {
    if (file_.size() - pos < kFrameHeader) {
      local.torn_tail = true;
      break;
    }
    const std::uint32_t len = read_u32(file_, pos);
    const std::uint32_t want = read_u32(file_, pos + 4);
    if (file_.size() - pos - kFrameHeader < len) {
      // Truncated payload: either a genuinely torn write or a bit flip in
      // the length field; both must stop the scan here.
      local.torn_tail = true;
      break;
    }
    const BytesView payload(file_.data() + pos + kFrameHeader, len);
    if (crc32(payload) != want) {
      ++local.corrupt_records;
      break;
    }
    out.emplace_back(payload.begin(), payload.end());
    ++local.records;
    pos += kFrameHeader + len;
  }
  local.truncated_bytes = file_.size() - pos;
  if (stats != nullptr) *stats = local;
  return out;
}

void DurableLog::wipe() {
  file_.clear();
  durable_ = 0;
}

void DurableLog::truncate(std::size_t bytes) {
  if (bytes < file_.size()) file_.resize(bytes);
  if (durable_ > file_.size()) durable_ = file_.size();
}

DurableLog& DurableStore::log(const std::string& name) { return logs_[name]; }

const DurableLog* DurableStore::find(const std::string& name) const {
  auto it = logs_.find(name);
  return it == logs_.end() ? nullptr : &it->second;
}

void DurableStore::crash(const DiskFault& fault) {
  for (auto& [name, log] : logs_) {
    DiskFault forked = fault;
    std::uint64_t h = 1469598103934665603ull;
    for (char c : name) {
      h = (h ^ static_cast<std::uint8_t>(c)) * 1099511628211ull;
    }
    forked.seed = fault.seed ^ h;
    log.crash(forked);
  }
}

bool DurableStore::empty() const {
  for (const auto& [name, log] : logs_) {
    if (!log.empty()) return false;
  }
  return true;
}

std::size_t DurableStore::total_bytes() const {
  std::size_t n = 0;
  for (const auto& [name, log] : logs_) n += log.size_bytes();
  return n;
}

void DurableStore::wipe() {
  for (auto& [name, log] : logs_) log.wipe();
}

}  // namespace hc::storage
