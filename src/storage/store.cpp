#include "storage/store.hpp"

namespace hc::storage {

// ------------------------------------------------------------ ContentStore

void ContentStore::set_policy(common::CapacityPolicy policy) {
  policy_ = policy;
  make_room(0, 0);
  shed_.observe(blobs_.size(), total_bytes_);
}

void ContentStore::make_room(std::size_t incoming_bytes,
                             std::size_t incoming_items) {
  if (!policy_.bounded()) return;
  while (!order_.empty() &&
         ((policy_.max_items > 0 &&
           blobs_.size() + incoming_items > policy_.max_items) ||
          (policy_.max_bytes > 0 &&
           total_bytes_ + incoming_bytes > policy_.max_bytes))) {
    const Cid victim = order_.front();
    order_.pop_front();
    auto it = blobs_.find(victim);
    if (it == blobs_.end()) continue;
    total_bytes_ -= it->second->size();
    blobs_.erase(it);
    shed_.count(common::ShedReason::kEvicted);
  }
}

void ContentStore::record(const Cid& cid, std::size_t bytes) {
  order_.push_back(cid);
  total_bytes_ += bytes;
  shed_.observe(blobs_.size(), total_bytes_);
}

Cid ContentStore::put(CidCodec codec, Bytes content) {
  const Cid cid = Cid::of(codec, content);
  if (blobs_.contains(cid)) return cid;
  const std::size_t bytes = content.size();
  make_room(bytes, 1);
  if (policy_.max_bytes > 0 && bytes > policy_.max_bytes) {
    // A single blob larger than the whole cache can never fit; the caller
    // still gets the CID (content stays re-fetchable via resolution).
    shed_.count(common::ShedReason::kByteCap);
    return cid;
  }
  blobs_.emplace(cid, std::make_shared<const Bytes>(std::move(content)));
  record(cid, bytes);
  return cid;
}

Status ContentStore::put_verified(const Cid& expected, Bytes content) {
  return put_verified(expected,
                      std::make_shared<const Bytes>(std::move(content)));
}

Status ContentStore::put_verified(const Cid& expected,
                                  std::shared_ptr<const Bytes> content) {
  const Cid actual = Cid::of(expected.codec(), *content);
  if (actual != expected) {
    return Error(Errc::kInvalidArgument,
                 "content does not match CID " + expected.to_string());
  }
  if (blobs_.contains(actual)) return ok_status();
  const std::size_t bytes = content->size();
  make_room(bytes, 1);
  if (policy_.max_bytes > 0 && bytes > policy_.max_bytes) {
    shed_.count(common::ShedReason::kByteCap);
    return ok_status();  // verified, just not cacheable at this cap
  }
  blobs_.emplace(actual, std::move(content));
  record(actual, bytes);
  return ok_status();
}

bool ContentStore::has(const Cid& cid) const { return blobs_.contains(cid); }

std::optional<Bytes> ContentStore::get(const Cid& cid) const {
  auto it = blobs_.find(cid);
  if (it == blobs_.end()) return std::nullopt;
  return *it->second;
}

std::shared_ptr<const Bytes> ContentStore::get_shared(const Cid& cid) const {
  auto it = blobs_.find(cid);
  if (it == blobs_.end()) return nullptr;
  return it->second;
}

// ---------------------------------------------------------------- KvStore

void KvStore::set_policy(common::CapacityPolicy policy) {
  policy_ = policy;
  make_room(0, 0);
  shed_.observe(entries_.size(), total_bytes_);
}

void KvStore::make_room(std::size_t incoming_bytes,
                        std::size_t incoming_items) {
  if (!policy_.bounded()) return;
  while (!order_.empty() &&
         ((policy_.max_items > 0 &&
           entries_.size() + incoming_items > policy_.max_items) ||
          (policy_.max_bytes > 0 &&
           total_bytes_ + incoming_bytes > policy_.max_bytes))) {
    const Bytes victim = order_.front();
    order_.pop_front();
    auto it = entries_.find(victim);
    if (it == entries_.end()) continue;  // erased earlier; stale order entry
    total_bytes_ -= it->first.size() + it->second.size();
    entries_.erase(it);
    shed_.count(common::ShedReason::kEvicted);
  }
}

void KvStore::put(const Bytes& key, Bytes value) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    total_bytes_ -= it->second.size();
    total_bytes_ += value.size();
    it->second = std::move(value);
    shed_.observe(entries_.size(), total_bytes_);
    return;
  }
  const std::size_t bytes = key.size() + value.size();
  make_room(bytes, 1);
  if (policy_.max_bytes > 0 && bytes > policy_.max_bytes) {
    shed_.count(common::ShedReason::kByteCap);
    return;
  }
  entries_.emplace(key, std::move(value));
  order_.push_back(key);
  total_bytes_ += bytes;
  shed_.observe(entries_.size(), total_bytes_);
}

std::optional<Bytes> KvStore::get(const Bytes& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool KvStore::has(const Bytes& key) const { return entries_.contains(key); }

void KvStore::erase(const Bytes& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  total_bytes_ -= it->first.size() + it->second.size();
  entries_.erase(it);  // order_ entry goes stale; make_room skips it
}

}  // namespace hc::storage
