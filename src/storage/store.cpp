#include "storage/store.hpp"

namespace hc::storage {

Cid ContentStore::put(CidCodec codec, Bytes content) {
  const Cid cid = Cid::of(codec, content);
  auto [it, inserted] = blobs_.emplace(cid, std::move(content));
  if (inserted) total_bytes_ += it->second.size();
  return cid;
}

Status ContentStore::put_verified(const Cid& expected, Bytes content) {
  const Cid actual = Cid::of(expected.codec(), content);
  if (actual != expected) {
    return Error(Errc::kInvalidArgument,
                 "content does not match CID " + expected.to_string());
  }
  auto [it, inserted] = blobs_.emplace(actual, std::move(content));
  if (inserted) total_bytes_ += it->second.size();
  return ok_status();
}

bool ContentStore::has(const Cid& cid) const { return blobs_.contains(cid); }

std::optional<Bytes> ContentStore::get(const Cid& cid) const {
  auto it = blobs_.find(cid);
  if (it == blobs_.end()) return std::nullopt;
  return it->second;
}

void KvStore::put(const Bytes& key, Bytes value) {
  entries_[key] = std::move(value);
}

std::optional<Bytes> KvStore::get(const Bytes& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool KvStore::has(const Bytes& key) const { return entries_.contains(key); }

void KvStore::erase(const Bytes& key) { entries_.erase(key); }

}  // namespace hc::storage
