// Deterministic simulated durable medium (DESIGN.md §15).
//
// DurableLog models one append-only file on a crash-prone disk. Writers
// append CRC-framed records and draw explicit fsync barriers; everything
// behind the last barrier is guaranteed to survive a crash, everything
// after it is at the mercy of the configured DiskFault. Faults are seeded
// and purely arithmetic — no wall clock, no OS entropy — so a crash at the
// same simulated instant with the same seed replays byte-identically,
// which keeps the chaos fingerprints stable at any thread count.
//
// Recovery scans the frames front to back, verifies each CRC, and
// truncates at the FIRST bad frame: a torn or corrupted record is never
// surfaced to the caller, only counted. This is the contract the WAL
// layer (wal.hpp) builds its replay-to-last-durable-point guarantee on.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace hc::storage {

/// CRC-32 (IEEE 802.3, reflected) over `data`. Exposed for tests.
[[nodiscard]] std::uint32_t crc32(BytesView data);

/// What happens to a disk's contents at crash time. `seed` drives the torn
/// cut point and the bit-flip offset, so the damage is replayable.
struct DiskFault {
  enum class Kind : std::uint8_t {
    /// Lucky crash: the page cache had already reached the medium.
    kKeepAll = 0,
    /// Default power-loss model: every byte after the last fsync barrier
    /// is gone.
    kLoseSuffix,
    /// Lose the un-fsynced suffix except a partial prefix of it — the
    /// classic torn write. Recovery must detect and drop the torn frame.
    kTornTail,
    /// Medium corruption: one seeded bit flips anywhere on the disk,
    /// fsynced region included. Recovery must detect the CRC mismatch.
    kBitFlip,
    /// Total medium loss: the disk comes back empty (recover from
    /// genesis + network catch-up).
    kLoseDisk,
  };
  Kind kind = Kind::kLoseSuffix;
  std::uint64_t seed = 0;
};

[[nodiscard]] const char* to_string(DiskFault::Kind kind);

/// One append-only CRC-framed log file. Frame layout:
///   u32 payload length (BE) | u32 crc32(payload) (BE) | payload bytes
class DurableLog {
 public:
  /// Frame and buffer `payload`. NOT durable until the next fsync().
  void append(BytesView payload);

  /// Durability barrier: everything appended so far survives any crash
  /// except kBitFlip corruption and kLoseDisk.
  void fsync();

  /// Apply a crash-time fault to the medium. After this call the file IS
  /// what recovery will see (durable watermark = file size).
  void crash(const DiskFault& fault);

  struct RecoverStats {
    std::size_t records = 0;          ///< valid frames recovered
    std::size_t truncated_bytes = 0;  ///< bytes dropped from the first bad frame on
    std::size_t corrupt_records = 0;  ///< frames dropped on CRC mismatch
    bool torn_tail = false;           ///< trailing partial frame detected
  };

  /// Scan, CRC-verify and return every valid payload in append order,
  /// stopping (and truncating the accounting) at the first bad frame.
  [[nodiscard]] std::vector<Bytes> recover(RecoverStats* stats = nullptr) const;

  /// Drop every byte past `bytes` (and clamp the fsync watermark). Callers
  /// run this after recover() so subsequent appends extend the valid
  /// prefix instead of landing behind a damaged tail.
  void truncate(std::size_t bytes);

  [[nodiscard]] std::size_t size_bytes() const { return file_.size(); }
  [[nodiscard]] std::size_t durable_bytes() const { return durable_; }
  [[nodiscard]] std::uint64_t appends() const { return appends_; }
  [[nodiscard]] std::uint64_t fsyncs() const { return fsyncs_; }
  [[nodiscard]] bool empty() const { return file_.empty(); }

  void wipe();

 private:
  Bytes file_;
  std::size_t durable_ = 0;  // fsync watermark (bytes)
  std::uint64_t appends_ = 0;
  std::uint64_t fsyncs_ = 0;
};

/// A node's simulated disk: named DurableLogs that survive the owning
/// node's crash (the Hierarchy owns the store; nodes only borrow it).
class DurableStore {
 public:
  /// Find-or-create the log named `name`.
  DurableLog& log(const std::string& name);
  [[nodiscard]] const DurableLog* find(const std::string& name) const;

  /// Crash the whole disk: the fault applies to every log, each with a
  /// per-log seed forked from `fault.seed` and the log's name so the
  /// damage stays deterministic regardless of log creation order.
  void crash(const DiskFault& fault);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t total_bytes() const;
  void wipe();

 private:
  std::map<std::string, DurableLog> logs_;  // ordered: deterministic crash walk
};

}  // namespace hc::storage
