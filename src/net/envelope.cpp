#include "net/envelope.hpp"

#include <atomic>

#include "obs/obs.hpp"

namespace hc::net {

namespace {

std::atomic<std::uint64_t> g_decode_hits{0};
std::atomic<std::uint64_t> g_decode_misses{0};
std::atomic<bool> g_cache_enabled{true};

// Process-wide registry, like SigCache's hit/miss counters: envelope cache
// tallies must never enter per-run metric exports or replay fingerprints,
// because a cross-lane insertion race can legally turn one miss+hit into
// two misses without changing any simulation output.
obs::Counter& hits_counter() {
  static obs::Counter& c =
      obs::default_obs().metrics.counter("payload_decode_hits_total");
  return c;
}

obs::Counter& misses_counter() {
  static obs::Counter& c =
      obs::default_obs().metrics.counter("payload_decode_misses_total");
  return c;
}

}  // namespace

const Digest& Envelope::content_hash() const {
  std::lock_guard<std::mutex> lk(state_->m);
  if (!state_->hash_ready) {
    state_->hash = Sha256::hash(state_->payload);
    state_->hash_ready = true;
  }
  return state_->hash;
}

void Envelope::count_hit() {
  g_decode_hits.fetch_add(1, std::memory_order_relaxed);
  hits_counter().inc();
}

void Envelope::count_miss() {
  g_decode_misses.fetch_add(1, std::memory_order_relaxed);
  misses_counter().inc();
}

std::uint64_t Envelope::decode_hits() {
  return g_decode_hits.load(std::memory_order_relaxed);
}

std::uint64_t Envelope::decode_misses() {
  return g_decode_misses.load(std::memory_order_relaxed);
}

void Envelope::set_cache_enabled(bool enabled) {
  g_cache_enabled.store(enabled, std::memory_order_relaxed);
}

bool Envelope::cache_enabled() {
  return g_cache_enabled.load(std::memory_order_relaxed);
}

}  // namespace hc::net
