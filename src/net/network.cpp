#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "obs/profile.hpp"

namespace hc::net {

namespace {

double clamp_probability(double p) {
  if (std::isnan(p)) return 0.0;
  return std::clamp(p, 0.0, 1.0);
}

LinkFault sanitize(LinkFault f) {
  f.drop = clamp_probability(f.drop);
  f.duplicate = clamp_probability(f.duplicate);
  f.extra_delay = std::max<sim::Duration>(0, f.extra_delay);
  f.reorder_jitter = std::max<sim::Duration>(0, f.reorder_jitter);
  return f;
}

std::uint64_t link_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) |
         static_cast<std::uint64_t>(to);
}

/// Probability that at least one of two independent events fires.
double combine_prob(double a, double b) { return 1.0 - (1.0 - a) * (1.0 - b); }

/// Raise an atomic high-water mark. Max is order-insensitive, so the
/// resulting peak is identical across worker counts.
void raise_peak(std::atomic<std::uint64_t>& peak, std::uint64_t value) {
  std::uint64_t cur = peak.load(std::memory_order_relaxed);
  while (cur < value &&
         !peak.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

const char* to_string(DropReason reason) {
  switch (reason) {
    case DropReason::kRandomLoss:
      return "random-loss";
    case DropReason::kNodeDown:
      return "node-down";
    case DropReason::kPartition:
      return "partition";
    case DropReason::kLinkRule:
      return "link-rule";
    case DropReason::kNodeQueueCap:
      return "node-queue-cap";
    case DropReason::kTopicQueueCap:
      return "topic-queue-cap";
  }
  return "unknown";
}

bool is_policy_shed(DropReason reason) {
  return reason == DropReason::kNodeQueueCap ||
         reason == DropReason::kTopicQueueCap;
}

Network::Network(sim::Scheduler& scheduler, sim::LatencyModel latency,
                 std::uint64_t seed, GossipConfig config, obs::Obs* obs)
    : scheduler_(scheduler),
      latency_(std::move(latency)),
      seed_(seed),
      config_(config),
      obs_(&obs::obs_or_default(obs)),
      m_sent_(&obs_->metrics.counter("net_messages_sent_total")),
      m_bytes_(&obs_->metrics.counter("net_bytes_sent_total")),
      m_bytes_physical_(&obs_->metrics.counter("net_bytes_physical_total")),
      m_delivered_(&obs_->metrics.counter("net_messages_delivered_total")),
      m_dropped_(&obs_->metrics.counter("net_messages_dropped_total")),
      m_duplicated_(&obs_->metrics.counter("net_messages_duplicated_total")),
      m_duplicates_(&obs_->metrics.counter("net_gossip_duplicates_total")),
      h_direct_latency_(&obs_->metrics.histogram(
          "net_delivery_latency_us", obs::Labels{{"kind", "direct"}})),
      h_gossip_latency_(&obs_->metrics.histogram(
          "net_delivery_latency_us", obs::Labels{{"kind", "gossip"}})) {
  if (config_.mesh_degree == 0) {
    throw std::invalid_argument(
        "GossipConfig::mesh_degree must be >= 1 (a zero-degree mesh never "
        "forwards anything)");
  }
  if (config_.max_hops < 1) {
    throw std::invalid_argument(
        "GossipConfig::max_hops must be >= 1 (messages need at least one "
        "hop to reach a subscriber)");
  }
  if (config_.node_queue.bounded() && !config_.node_queue.enabled()) {
    throw std::invalid_argument(
        "NodeQueuePolicy sets queue caps without a service_time — an inline "
        "network has no queue to bound");
  }
  if (config_.node_queue.service_time < 0) {
    throw std::invalid_argument("NodeQueuePolicy::service_time must be >= 0");
  }
  for (std::uint8_t r = 0; r < kDropReasonCount; ++r) {
    m_dropped_by_reason_[r] = &obs_->metrics.counter(
        "net_messages_dropped_total",
        obs::Labels{{"reason", to_string(static_cast<DropReason>(r))}});
  }
  rngs_.push_back(std::make_unique<sim::Rng>(seed_));  // stream for domain 0
}

sim::Rng& Network::rng() {
  const sim::DomainId domain = scheduler_.current_domain();
  return domain < rngs_.size() ? *rngs_[domain] : *rngs_[0];
}

void Network::set_node_domain(NodeId node, sim::DomainId domain) {
  if (node_domains_.size() < nodes_.size()) {
    node_domains_.resize(nodes_.size(), 0);
  }
  node_domains_.at(node) = domain;
  // Grow one deterministic RNG stream per domain. Stream 0 keeps the
  // historical seeding; stream d is derived from (seed, d) so runs are
  // reproducible regardless of worker count.
  while (rngs_.size() <= domain) {
    const auto d = static_cast<std::uint64_t>(rngs_.size());
    rngs_.push_back(
        std::make_unique<sim::Rng>(seed_ ^ (0x9e3779b97f4a7c15ULL * d)));
  }
}

void Network::set_pair_latency(NodeId a, NodeId b, sim::Duration base,
                               sim::Duration jitter) {
  latency_.set_pair(a, b, base, jitter);
}

NodeId Network::add_node() {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.emplace_back();
  partition_group_.push_back(-1);
  return id;
}

void Network::set_direct_handler(NodeId node, DirectHandler handler) {
  nodes_.at(node).on_direct = std::move(handler);
}

void Network::set_topic_handler(NodeId node, TopicHandler handler) {
  nodes_.at(node).on_topic = std::move(handler);
}

void Network::set_drop_rate(double p) { drop_rate_ = clamp_probability(p); }

LinkFault Network::effective_fault(NodeId from, NodeId to) const {
  LinkFault out;
  if (!link_faults_.empty()) {
    auto it = link_faults_.find(link_key(from, to));
    if (it != link_faults_.end()) out = it->second;
  }
  if (!node_faults_.empty()) {
    for (const NodeId endpoint : {from, to}) {
      auto it = node_faults_.find(endpoint);
      if (it == node_faults_.end()) continue;
      out.drop = combine_prob(out.drop, it->second.drop);
      out.duplicate = combine_prob(out.duplicate, it->second.duplicate);
      out.extra_delay += it->second.extra_delay;
      out.reorder_jitter += it->second.reorder_jitter;
    }
  }
  return out;
}

bool Network::can_reach(NodeId from, NodeId to) const {
  if (nodes_[from].down || nodes_[to].down) return false;
  if (!partitioned_) return true;
  return partition_group_[from] == partition_group_[to];
}

std::optional<DropReason> Network::transmission_drop(NodeId from, NodeId to,
                                                     const LinkFault& fault) {
  if (nodes_[from].down || nodes_[to].down) return DropReason::kNodeDown;
  if (partitioned_ && partition_group_[from] != partition_group_[to]) {
    return DropReason::kPartition;
  }
  if (fault.drop > 0.0 && rng().chance(fault.drop)) {
    return DropReason::kLinkRule;
  }
  if (drop_rate_ > 0.0 && rng().chance(drop_rate_)) {
    return DropReason::kRandomLoss;
  }
  return std::nullopt;
}

void Network::count_drop(DropReason reason) {
  stats_.messages_dropped.fetch_add(1, std::memory_order_relaxed);
  m_dropped_->inc();
  m_dropped_by_reason_[static_cast<std::uint8_t>(reason)]->inc();
  switch (reason) {
    case DropReason::kRandomLoss:
      stats_.dropped_random_loss.fetch_add(1, std::memory_order_relaxed);
      break;
    case DropReason::kNodeDown:
      stats_.dropped_node_down.fetch_add(1, std::memory_order_relaxed);
      break;
    case DropReason::kPartition:
      stats_.dropped_partition.fetch_add(1, std::memory_order_relaxed);
      break;
    case DropReason::kLinkRule:
      stats_.dropped_link_rule.fetch_add(1, std::memory_order_relaxed);
      break;
    case DropReason::kNodeQueueCap:
      stats_.dropped_node_queue_cap.fetch_add(1, std::memory_order_relaxed);
      break;
    case DropReason::kTopicQueueCap:
      stats_.dropped_topic_queue_cap.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

sim::Duration Network::transmission_delay(NodeId from, NodeId to,
                                          const LinkFault& fault) {
  sim::Duration delay = latency_.sample(from, to, rng()) + fault.extra_delay;
  if (fault.reorder_jitter > 0) {
    delay += static_cast<sim::Duration>(rng().uniform(
        static_cast<std::uint64_t>(fault.reorder_jitter) + 1));
  }
  return delay;
}

void Network::run_direct_delivery(NodeId to, NodeId from,
                                  const Bytes& payload) {
  Node& node = nodes_[to];
  if (node.down || !node.on_direct) return;
  stats_.messages_delivered.fetch_add(1, std::memory_order_relaxed);
  m_delivered_->inc();
  static const obs::PhaseId deliver_phase =
      obs::Profiler::instance().phase("net/deliver");
  obs::ProfileScope prof(deliver_phase);
  node.on_direct(from, payload);
}

void Network::run_gossip_delivery(NodeId to, const std::string& topic,
                                  const Envelope& payload, NodeId origin,
                                  std::uint64_t msg_id, int hops_left) {
  Node& node = nodes_[to];
  if (node.on_topic) {
    stats_.messages_delivered.fetch_add(1, std::memory_order_relaxed);
    m_delivered_->inc();
    static const obs::PhaseId deliver_phase =
        obs::Profiler::instance().phase("net/deliver");
    obs::ProfileScope prof(deliver_phase);
    node.on_topic(origin, topic, payload);
  }
  if (hops_left <= 0) return;
  if (auto mit = node.mesh.find(topic); mit != node.mesh.end()) {
    for (NodeId peer : mit->second) {
      if (peer == origin) continue;
      gossip_deliver(to, peer, topic, payload, origin, msg_id, hops_left - 1);
    }
  }
}

void Network::enqueue_delivery(NodeId to, QueuedDelivery d) {
  Node& node = nodes_[to];
  const NodeQueuePolicy& policy = config_.node_queue;
  const std::size_t add = d.payload.size();
  if (policy.max_depth > 0 && node.queue.size() >= policy.max_depth) {
    count_drop(DropReason::kNodeQueueCap);
    return;
  }
  if (policy.max_bytes > 0 && node.queue_bytes + add > policy.max_bytes) {
    count_drop(DropReason::kNodeQueueCap);
    return;
  }
  if (d.is_gossip) {
    auto& depth = node.topic_depth[d.topic];
    if (policy.topic_max_depth > 0 && depth >= policy.topic_max_depth) {
      count_drop(DropReason::kTopicQueueCap);
      return;
    }
    ++depth;
  }
  node.queue_bytes += add;
  node.queue.push_back(std::move(d));
  raise_peak(stats_.queue_peak_depth, node.queue.size());
  raise_peak(stats_.queue_peak_bytes, node.queue_bytes);
  if (!node.draining) {
    node.draining = true;
    scheduler_.schedule_in(node_domain(to), policy.service_time,
                           [this, to] { drain_queue(to); });
  }
}

void Network::drain_queue(NodeId to) {
  Node& node = nodes_[to];
  if (node.queue.empty()) {
    node.draining = false;
    return;
  }
  QueuedDelivery d = std::move(node.queue.front());
  node.queue.pop_front();
  node.queue_bytes -= d.payload.size();
  if (d.is_gossip) {
    auto it = node.topic_depth.find(d.topic);
    if (it != node.topic_depth.end() && --it->second == 0) {
      node.topic_depth.erase(it);
    }
  }
  if (!node.down) {
    if (d.is_gossip) {
      run_gossip_delivery(to, d.topic, d.payload, d.from, d.msg_id,
                          d.hops_left);
    } else {
      run_direct_delivery(to, d.from, d.payload.bytes());
    }
  }
  if (node.queue.empty()) {
    node.draining = false;
    return;
  }
  scheduler_.schedule_in(node_domain(to), config_.node_queue.service_time,
                         [this, to] { drain_queue(to); });
}

void Network::deliver_direct(NodeId from, NodeId to, Envelope payload,
                             sim::Duration delay) {
  h_direct_latency_->observe(delay);
  scheduler_.schedule_in(
      node_domain(to), delay, [this, from, to, payload = std::move(payload)] {
        if (config_.node_queue.enabled()) {
          if (nodes_[to].down) return;
          QueuedDelivery d;
          d.is_gossip = false;
          d.from = from;
          d.payload = payload;
          enqueue_delivery(to, std::move(d));
          return;
        }
        run_direct_delivery(to, from, payload.bytes());
      });
}

void Network::send(NodeId from, NodeId to, Bytes payload) {
  assert(from < nodes_.size() && to < nodes_.size());
  stats_.messages_sent.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_sent.fetch_add(payload.size(), std::memory_order_relaxed);
  // A direct send materializes exactly one copy; logical == physical here.
  stats_.bytes_physical.fetch_add(payload.size(), std::memory_order_relaxed);
  m_sent_->inc();
  m_bytes_->inc(payload.size());
  m_bytes_physical_->inc(payload.size());
  const LinkFault fault = effective_fault(from, to);
  if (auto reason = transmission_drop(from, to, fault); reason.has_value()) {
    count_drop(*reason);
    return;
  }
  Envelope env(std::move(payload));
  deliver_direct(from, to, env, transmission_delay(from, to, fault));
  if (fault.duplicate > 0.0 && rng().chance(fault.duplicate)) {
    stats_.messages_duplicated.fetch_add(1, std::memory_order_relaxed);
    m_duplicated_->inc();
    deliver_direct(from, to, env, transmission_delay(from, to, fault));
  }
}

void Network::subscribe(NodeId node, const std::string& topic) {
  auto& t = topics_[topic];
  if (std::find(t.subscribers.begin(), t.subscribers.end(), node) !=
      t.subscribers.end()) {
    return;
  }
  t.subscribers.push_back(node);
  rebuild_meshes(topic);
}

void Network::unsubscribe(NodeId node, const std::string& topic) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) return;
  auto& subs = it->second.subscribers;
  subs.erase(std::remove(subs.begin(), subs.end(), node), subs.end());
  nodes_[node].mesh.erase(topic);
  rebuild_meshes(topic);
}

bool Network::subscribed(NodeId node, const std::string& topic) const {
  auto it = topics_.find(topic);
  if (it == topics_.end()) return false;
  const auto& subs = it->second.subscribers;
  return std::find(subs.begin(), subs.end(), node) != subs.end();
}

void Network::rebuild_meshes(const std::string& topic) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) return;
  const auto& subs = it->second.subscribers;
  for (NodeId member : subs) {
    auto& mesh = nodes_[member].mesh[topic];
    mesh.clear();
    if (subs.size() <= 1) continue;
    if (subs.size() - 1 <= config_.mesh_degree) {
      // Small topic: full mesh.
      for (NodeId peer : subs) {
        if (peer != member) mesh.push_back(peer);
      }
      continue;
    }
    // Sample mesh_degree distinct peers.
    std::unordered_set<NodeId> chosen;
    while (chosen.size() < config_.mesh_degree) {
      const NodeId peer =
          subs[static_cast<std::size_t>(rng().uniform(subs.size()))];
      if (peer != member) chosen.insert(peer);
    }
    mesh.assign(chosen.begin(), chosen.end());
  }
}

void Network::publish(NodeId from, const std::string& topic, Bytes payload) {
  assert(from < nodes_.size());
  auto it = topics_.find(topic);
  if (it == topics_.end() || it->second.subscribers.empty()) return;
  if (nodes_[from].down) return;

  const std::uint64_t msg_id =
      next_msg_seq_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t payload_size = payload.size();
  Envelope env(std::move(payload));  // the one materialization of this publish
  nodes_[from].seen.insert(msg_id);  // don't deliver to self later
  raise_peak(stats_.seen_peak_entries, nodes_[from].seen.size());

  // Initial push: to the publisher's mesh if subscribed, otherwise to a
  // random sample of subscribers (a boundary node publishing into a foreign
  // subnet's topic contacts peers it learned via the DHT/discovery — here a
  // uniform sample stands in for that).
  std::vector<NodeId> targets;
  if (auto mit = nodes_[from].mesh.find(topic); mit != nodes_[from].mesh.end() &&
                                                !mit->second.empty()) {
    targets = mit->second;
  } else {
    const auto& subs = it->second.subscribers;
    const std::size_t want = std::min(config_.mesh_degree, subs.size());
    std::unordered_set<NodeId> chosen;
    std::size_t guard = 0;
    while (chosen.size() < want && guard++ < 64 * want) {
      const NodeId peer =
          subs[static_cast<std::size_t>(rng().uniform(subs.size()))];
      if (peer != from) chosen.insert(peer);
    }
    targets.assign(chosen.begin(), chosen.end());
  }
  if (!targets.empty()) {
    // Physical bytes: counted once per publish (each hop below re-counts
    // the payload as logical bytes only — the fan-out is pointer copies).
    stats_.bytes_physical.fetch_add(payload_size, std::memory_order_relaxed);
    m_bytes_physical_->inc(payload_size);
  }
  for (NodeId peer : targets) {
    gossip_deliver(from, peer, topic, env, from, msg_id, config_.max_hops);
  }
}

void Network::schedule_gossip_hop(NodeId to, const std::string& topic,
                                  Envelope payload, NodeId origin,
                                  std::uint64_t msg_id, int hops_left,
                                  sim::Duration delay) {
  h_gossip_latency_->observe(delay);
  scheduler_.schedule_in(node_domain(to), delay, [this, to, topic,
                                                  payload = std::move(payload),
                                                  origin, msg_id, hops_left] {
    Node& node = nodes_[to];
    if (node.down) return;
    // Dedup before the queue caps: a copy of an already-seen message never
    // consumes queue space, and marking it seen here keeps the dedup cache
    // semantics identical whether or not queueing is enabled.
    if (!node.seen.insert(msg_id)) {
      stats_.gossip_duplicates.fetch_add(1, std::memory_order_relaxed);
      m_duplicates_->inc();
      return;
    }
    raise_peak(stats_.seen_peak_entries, node.seen.size());
    if (config_.node_queue.enabled()) {
      QueuedDelivery d;
      d.is_gossip = true;
      d.from = origin;
      d.topic = topic;
      d.payload = payload;
      d.msg_id = msg_id;
      d.hops_left = hops_left;
      enqueue_delivery(to, std::move(d));
      return;
    }
    run_gossip_delivery(to, topic, payload, origin, msg_id, hops_left);
  });
}

void Network::gossip_deliver(NodeId from, NodeId to, const std::string& topic,
                             const Envelope& payload, NodeId origin,
                             std::uint64_t msg_id, int hops_left) {
  stats_.messages_sent.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_sent.fetch_add(payload.size(), std::memory_order_relaxed);
  m_sent_->inc();
  m_bytes_->inc(payload.size());
  const LinkFault fault = effective_fault(from, to);
  if (auto reason = transmission_drop(from, to, fault); reason.has_value()) {
    count_drop(*reason);
    return;
  }
  schedule_gossip_hop(to, topic, payload, origin, msg_id, hops_left,
                      transmission_delay(from, to, fault));
  if (fault.duplicate > 0.0 && rng().chance(fault.duplicate)) {
    stats_.messages_duplicated.fetch_add(1, std::memory_order_relaxed);
    m_duplicated_->inc();
    schedule_gossip_hop(to, topic, payload, origin, msg_id, hops_left,
                        transmission_delay(from, to, fault));
  }
}

Network::Stats Network::stats() const {
  Stats out;
  out.messages_sent = stats_.messages_sent.load(std::memory_order_relaxed);
  out.bytes_sent = stats_.bytes_sent.load(std::memory_order_relaxed);
  out.bytes_physical = stats_.bytes_physical.load(std::memory_order_relaxed);
  out.messages_delivered =
      stats_.messages_delivered.load(std::memory_order_relaxed);
  out.messages_dropped =
      stats_.messages_dropped.load(std::memory_order_relaxed);
  out.dropped_random_loss =
      stats_.dropped_random_loss.load(std::memory_order_relaxed);
  out.dropped_node_down =
      stats_.dropped_node_down.load(std::memory_order_relaxed);
  out.dropped_partition =
      stats_.dropped_partition.load(std::memory_order_relaxed);
  out.dropped_link_rule =
      stats_.dropped_link_rule.load(std::memory_order_relaxed);
  out.dropped_node_queue_cap =
      stats_.dropped_node_queue_cap.load(std::memory_order_relaxed);
  out.dropped_topic_queue_cap =
      stats_.dropped_topic_queue_cap.load(std::memory_order_relaxed);
  out.messages_duplicated =
      stats_.messages_duplicated.load(std::memory_order_relaxed);
  out.gossip_duplicates =
      stats_.gossip_duplicates.load(std::memory_order_relaxed);
  out.queue_peak_depth =
      stats_.queue_peak_depth.load(std::memory_order_relaxed);
  out.queue_peak_bytes =
      stats_.queue_peak_bytes.load(std::memory_order_relaxed);
  out.seen_peak_entries =
      stats_.seen_peak_entries.load(std::memory_order_relaxed);
  return out;
}

void Network::reset_stats() {
  stats_.messages_sent.store(0, std::memory_order_relaxed);
  stats_.bytes_sent.store(0, std::memory_order_relaxed);
  stats_.bytes_physical.store(0, std::memory_order_relaxed);
  stats_.messages_delivered.store(0, std::memory_order_relaxed);
  stats_.messages_dropped.store(0, std::memory_order_relaxed);
  stats_.dropped_random_loss.store(0, std::memory_order_relaxed);
  stats_.dropped_node_down.store(0, std::memory_order_relaxed);
  stats_.dropped_partition.store(0, std::memory_order_relaxed);
  stats_.dropped_link_rule.store(0, std::memory_order_relaxed);
  stats_.dropped_node_queue_cap.store(0, std::memory_order_relaxed);
  stats_.dropped_topic_queue_cap.store(0, std::memory_order_relaxed);
  stats_.messages_duplicated.store(0, std::memory_order_relaxed);
  stats_.gossip_duplicates.store(0, std::memory_order_relaxed);
  stats_.queue_peak_depth.store(0, std::memory_order_relaxed);
  stats_.queue_peak_bytes.store(0, std::memory_order_relaxed);
  stats_.seen_peak_entries.store(0, std::memory_order_relaxed);
}

void Network::set_node_down(NodeId node, bool down) {
  nodes_.at(node).down = down;
}

bool Network::node_down(NodeId node) const { return nodes_.at(node).down; }

void Network::set_partition(const std::vector<std::vector<NodeId>>& groups) {
  std::fill(partition_group_.begin(), partition_group_.end(), -1);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (NodeId n : groups[g]) {
      partition_group_.at(n) = static_cast<int>(g);
    }
  }
  partitioned_ = true;
}

void Network::heal_partition() {
  partitioned_ = false;
  std::fill(partition_group_.begin(), partition_group_.end(), -1);
}

void Network::set_link_fault(NodeId from, NodeId to, LinkFault fault) {
  assert(from < nodes_.size() && to < nodes_.size());
  fault = sanitize(fault);
  if (!fault.active()) {
    clear_link_fault(from, to);
    return;
  }
  link_faults_[link_key(from, to)] = fault;
}

void Network::clear_link_fault(NodeId from, NodeId to) {
  link_faults_.erase(link_key(from, to));
}

void Network::set_node_fault(NodeId node, LinkFault fault) {
  assert(node < nodes_.size());
  fault = sanitize(fault);
  if (!fault.active()) {
    clear_node_fault(node);
    return;
  }
  node_faults_[node] = fault;
}

void Network::clear_node_fault(NodeId node) { node_faults_.erase(node); }

void Network::clear_fault_rules() {
  link_faults_.clear();
  node_faults_.clear();
}

void Network::reset_node(NodeId node) {
  Node& n = nodes_.at(node);
  n.on_direct = nullptr;
  n.on_topic = nullptr;
  n.seen.clear();
  n.mesh.clear();
  // Crash loses queued-but-unserviced deliveries. `draining` is left as-is:
  // an in-flight drain event finds the queue empty and clears it, and new
  // arrivals meanwhile ride that same pending drain.
  n.queue.clear();
  n.queue_bytes = 0;
  n.topic_depth.clear();
  // Withdraw from every topic (and re-knit the meshes left behind).
  for (auto& [topic, t] : topics_) {
    auto& subs = t.subscribers;
    const auto it = std::find(subs.begin(), subs.end(), node);
    if (it == subs.end()) continue;
    subs.erase(it);
    rebuild_meshes(topic);
  }
}

}  // namespace hc::net
