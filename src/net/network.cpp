#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

namespace hc::net {

Network::Network(sim::Scheduler& scheduler, sim::LatencyModel latency,
                 std::uint64_t seed, GossipConfig config, obs::Obs* obs)
    : scheduler_(scheduler),
      latency_(std::move(latency)),
      rng_(seed),
      config_(config),
      obs_(&obs::obs_or_default(obs)),
      m_sent_(&obs_->metrics.counter("net_messages_sent_total")),
      m_bytes_(&obs_->metrics.counter("net_bytes_sent_total")),
      m_delivered_(&obs_->metrics.counter("net_messages_delivered_total")),
      m_dropped_(&obs_->metrics.counter("net_messages_dropped_total")),
      m_duplicates_(&obs_->metrics.counter("net_gossip_duplicates_total")),
      h_direct_latency_(&obs_->metrics.histogram(
          "net_delivery_latency_us", obs::Labels{{"kind", "direct"}})),
      h_gossip_latency_(&obs_->metrics.histogram(
          "net_delivery_latency_us", obs::Labels{{"kind", "gossip"}})) {}

NodeId Network::add_node() {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.emplace_back();
  partition_group_.push_back(-1);
  return id;
}

void Network::set_direct_handler(NodeId node, DirectHandler handler) {
  nodes_.at(node).on_direct = std::move(handler);
}

void Network::set_topic_handler(NodeId node, TopicHandler handler) {
  nodes_.at(node).on_topic = std::move(handler);
}

bool Network::can_reach(NodeId from, NodeId to) const {
  if (nodes_[from].down || nodes_[to].down) return false;
  if (!partitioned_) return true;
  return partition_group_[from] == partition_group_[to];
}

bool Network::faulted(NodeId from, NodeId to) {
  if (!can_reach(from, to)) return true;
  return drop_rate_ > 0.0 && rng_.chance(drop_rate_);
}

void Network::send(NodeId from, NodeId to, Bytes payload) {
  assert(from < nodes_.size() && to < nodes_.size());
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();
  m_sent_->inc();
  m_bytes_->inc(payload.size());
  if (faulted(from, to)) {
    ++stats_.messages_dropped;
    m_dropped_->inc();
    return;
  }
  const sim::Duration delay = latency_.sample(from, to, rng_);
  h_direct_latency_->observe(delay);
  auto shared = std::make_shared<Bytes>(std::move(payload));
  scheduler_.schedule(delay, [this, from, to, shared] {
    Node& node = nodes_[to];
    if (node.down || !node.on_direct) return;
    ++stats_.messages_delivered;
    m_delivered_->inc();
    node.on_direct(from, *shared);
  });
}

void Network::subscribe(NodeId node, const std::string& topic) {
  auto& t = topics_[topic];
  if (std::find(t.subscribers.begin(), t.subscribers.end(), node) !=
      t.subscribers.end()) {
    return;
  }
  t.subscribers.push_back(node);
  rebuild_meshes(topic);
}

void Network::unsubscribe(NodeId node, const std::string& topic) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) return;
  auto& subs = it->second.subscribers;
  subs.erase(std::remove(subs.begin(), subs.end(), node), subs.end());
  nodes_[node].mesh.erase(topic);
  rebuild_meshes(topic);
}

bool Network::subscribed(NodeId node, const std::string& topic) const {
  auto it = topics_.find(topic);
  if (it == topics_.end()) return false;
  const auto& subs = it->second.subscribers;
  return std::find(subs.begin(), subs.end(), node) != subs.end();
}

void Network::rebuild_meshes(const std::string& topic) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) return;
  const auto& subs = it->second.subscribers;
  for (NodeId member : subs) {
    auto& mesh = nodes_[member].mesh[topic];
    mesh.clear();
    if (subs.size() <= 1) continue;
    if (subs.size() - 1 <= config_.mesh_degree) {
      // Small topic: full mesh.
      for (NodeId peer : subs) {
        if (peer != member) mesh.push_back(peer);
      }
      continue;
    }
    // Sample mesh_degree distinct peers.
    std::unordered_set<NodeId> chosen;
    while (chosen.size() < config_.mesh_degree) {
      const NodeId peer =
          subs[static_cast<std::size_t>(rng_.uniform(subs.size()))];
      if (peer != member) chosen.insert(peer);
    }
    mesh.assign(chosen.begin(), chosen.end());
  }
}

void Network::publish(NodeId from, const std::string& topic, Bytes payload) {
  assert(from < nodes_.size());
  auto it = topics_.find(topic);
  if (it == topics_.end() || it->second.subscribers.empty()) return;
  if (nodes_[from].down) return;

  const std::uint64_t msg_id = next_msg_seq_++;
  auto shared = std::make_shared<const Bytes>(std::move(payload));
  nodes_[from].seen.insert(msg_id);  // don't deliver to self later

  // Initial push: to the publisher's mesh if subscribed, otherwise to a
  // random sample of subscribers (a boundary node publishing into a foreign
  // subnet's topic contacts peers it learned via the DHT/discovery — here a
  // uniform sample stands in for that).
  std::vector<NodeId> targets;
  if (auto mit = nodes_[from].mesh.find(topic); mit != nodes_[from].mesh.end() &&
                                                !mit->second.empty()) {
    targets = mit->second;
  } else {
    const auto& subs = it->second.subscribers;
    const std::size_t want = std::min(config_.mesh_degree, subs.size());
    std::unordered_set<NodeId> chosen;
    std::size_t guard = 0;
    while (chosen.size() < want && guard++ < 64 * want) {
      const NodeId peer =
          subs[static_cast<std::size_t>(rng_.uniform(subs.size()))];
      if (peer != from) chosen.insert(peer);
    }
    targets.assign(chosen.begin(), chosen.end());
  }
  for (NodeId peer : targets) {
    gossip_deliver(from, peer, topic, shared, from, msg_id,
                   config_.max_hops);
  }
}

void Network::gossip_deliver(NodeId from, NodeId to, const std::string& topic,
                             std::shared_ptr<const Bytes> payload,
                             NodeId origin, std::uint64_t msg_id,
                             int hops_left) {
  ++stats_.messages_sent;
  stats_.bytes_sent += payload->size();
  m_sent_->inc();
  m_bytes_->inc(payload->size());
  if (faulted(from, to)) {
    ++stats_.messages_dropped;
    m_dropped_->inc();
    return;
  }
  const sim::Duration delay = latency_.sample(from, to, rng_);
  h_gossip_latency_->observe(delay);
  scheduler_.schedule(delay, [this, to, topic, payload, origin, msg_id,
                              hops_left] {
    Node& node = nodes_[to];
    if (node.down) return;
    if (!node.seen.insert(msg_id).second) {
      ++stats_.gossip_duplicates;
      m_duplicates_->inc();
      return;
    }
    if (node.on_topic) {
      ++stats_.messages_delivered;
      m_delivered_->inc();
      node.on_topic(origin, topic, *payload);
    }
    if (hops_left <= 0) return;
    if (auto mit = node.mesh.find(topic); mit != node.mesh.end()) {
      for (NodeId peer : mit->second) {
        if (peer == origin) continue;
        gossip_deliver(to, peer, topic, payload, origin, msg_id,
                       hops_left - 1);
      }
    }
  });
}

void Network::set_node_down(NodeId node, bool down) {
  nodes_.at(node).down = down;
}

bool Network::node_down(NodeId node) const { return nodes_.at(node).down; }

void Network::set_partition(const std::vector<std::vector<NodeId>>& groups) {
  std::fill(partition_group_.begin(), partition_group_.end(), -1);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (NodeId n : groups[g]) {
      partition_group_.at(n) = static_cast<int>(g);
    }
  }
  partitioned_ = true;
}

void Network::heal_partition() {
  partitioned_ = false;
  std::fill(partition_group_.begin(), partition_group_.end(), -1);
}

}  // namespace hc::net
