// Decode-once gossip envelope.
//
// A published payload fans out to every subscriber of a topic, hop by hop.
// Before envelopes, each of the N receiving replicas re-ran decode<T> (and
// any content hashing) on its own copy of the bytes — O(N) redundant parses
// of identical input per publish. An Envelope wraps the payload in shared,
// immutable state carrying:
//   - the raw bytes (materialized exactly once, at publish/send time —
//     the "physical" bytes of net accounting; every forwarded hop is a
//     pointer copy, accounted as "logical" bytes),
//   - a lazily-computed-once content hash,
//   - a type-erased decoded-object cache: the first decoded<T>() pays the
//     parse, every later replica gets the same shared immutable object.
//
// Thread safety / determinism: a subnet's topic delivers within a single
// scheduler lane, so in steady state the cache sees a strict miss-then-hits
// sequence and the hit/miss counters are reproducible. The mutex makes
// cross-lane envelopes (direct sends, multi-subnet topics) race-safe: on an
// insertion race both sides decode the same deterministic value and the
// first insert wins, so every reader observes one object identity. The
// hit/miss counters live in the process-wide obs registry (like SigCache's)
// precisely so racy interleavings can never perturb per-run metric exports
// or replay fingerprints.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <typeindex>

#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "common/hash.hpp"
#include "common/result.hpp"

namespace hc::net {

class Envelope {
 public:
  /// Empty envelope (no payload); decoded() and bytes() are invalid until
  /// assigned from a real one.
  Envelope() = default;

  /// Materialize an envelope from owned payload bytes.
  explicit Envelope(Bytes payload)
      : state_(std::make_shared<State>(std::move(payload))) {}

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  [[nodiscard]] const Bytes& bytes() const { return state_->payload; }
  [[nodiscard]] std::size_t size() const {
    return state_ ? state_->payload.size() : 0;
  }

  /// SHA-256 of the payload, computed on first use and memoized.
  [[nodiscard]] const Digest& content_hash() const;

  /// Decode the payload as T, sharing one immutable decoded object across
  /// every replica holding this envelope. Failures are not cached (they are
  /// the malformed-input cold path).
  template <typename T>
  [[nodiscard]] Result<std::shared_ptr<const T>> decoded() const {
    const std::type_index key(typeid(T));
    if (cache_enabled()) {
      std::lock_guard<std::mutex> lk(state_->m);
      if (auto it = state_->cache.find(key); it != state_->cache.end()) {
        count_hit();
        return std::static_pointer_cast<const T>(it->second);
      }
    }
    // Parse outside the lock — this is the expensive part, and decoding is
    // deterministic, so a racing lane produces an identical value.
    auto r = hc::decode<T>(state_->payload);
    count_miss();
    if (!r) return r.error();
    auto obj = std::make_shared<const T>(std::move(r).value());
    if (!cache_enabled()) return obj;
    std::lock_guard<std::mutex> lk(state_->m);
    auto [it, inserted] = state_->cache.emplace(key, obj);
    if (!inserted) return std::static_pointer_cast<const T>(it->second);
    return obj;
  }

  /// Process-wide decode-cache tallies (mirrored into the default obs
  /// registry as payload_decode_{hits,misses}_total).
  [[nodiscard]] static std::uint64_t decode_hits();
  [[nodiscard]] static std::uint64_t decode_misses();

  /// Test hook: disable the decoded-object cache process-wide (every call
  /// re-parses). The cache is a pure optimization — runs must be
  /// byte-identical with it off — and the determinism tests prove exactly
  /// that by diffing same-seed fingerprints across this toggle.
  static void set_cache_enabled(bool enabled);
  [[nodiscard]] static bool cache_enabled();

 private:
  struct State {
    explicit State(Bytes p) : payload(std::move(p)) {}
    const Bytes payload;
    mutable std::mutex m;
    mutable bool hash_ready = false;
    mutable Digest hash{};
    mutable std::map<std::type_index, std::shared_ptr<const void>> cache;
  };

  static void count_hit();
  static void count_miss();

  std::shared_ptr<State> state_;
};

}  // namespace hc::net
