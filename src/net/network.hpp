// Simulated P2P network: gossip pubsub + point-to-point delivery.
//
// Substitution for libp2p/gossipsub (see DESIGN.md §2). Every subnet owns a
// pubsub topic named by its SubnetId (paper §III-A: "a new attack-resilient
// pubsub topic that peers use as the transport layer"); checkpoints, blocks,
// consensus votes and the content-resolution protocol all travel through
// here. The gossip layer is a real mesh — messages propagate hop by hop with
// per-hop sampled latency and dedup — so delivery times scale O(log n) in
// subscriber count like the deployed system, instead of being a magic
// broadcast.
//
// Fault injection: per-message drop probability, node crash/down flags and
// named partitions; used by the failure-injection tests and benches.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "common/hash.hpp"
#include "obs/obs.hpp"
#include "sim/latency.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace hc::net {

using sim::NodeId;

/// Tuning knobs for the gossip mesh.
struct GossipConfig {
  /// Mesh degree: peers a node eagerly forwards to per topic.
  std::size_t mesh_degree = 6;
  /// Hop budget: messages stop propagating after this many hops.
  int max_hops = 16;
};

class Network {
 public:
  using DirectHandler =
      std::function<void(NodeId from, const Bytes& payload)>;
  using TopicHandler = std::function<void(NodeId from, const std::string& topic,
                                          const Bytes& payload)>;

  /// `obs` routes network metrics into a registry; nullptr falls back to
  /// the process-wide obs::default_obs().
  Network(sim::Scheduler& scheduler, sim::LatencyModel latency,
          std::uint64_t seed, GossipConfig config = {},
          obs::Obs* obs = nullptr);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register a new node; returns its dense id.
  NodeId add_node();
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Install the handler invoked for point-to-point messages.
  void set_direct_handler(NodeId node, DirectHandler handler);
  /// Install the handler invoked for pubsub deliveries.
  void set_topic_handler(NodeId node, TopicHandler handler);

  /// Point-to-point send with sampled latency (may drop under faults).
  void send(NodeId from, NodeId to, Bytes payload);

  /// Topic membership. Subscribing re-wires the topic's gossip meshes.
  void subscribe(NodeId node, const std::string& topic);
  void unsubscribe(NodeId node, const std::string& topic);
  [[nodiscard]] bool subscribed(NodeId node, const std::string& topic) const;

  /// Publish into a topic. The publisher needs no subscription (boundary
  /// nodes publish into sibling subnets during content resolution).
  /// Delivery reaches subscribers via gossip hops; the publisher itself is
  /// NOT delivered its own message.
  void publish(NodeId from, const std::string& topic, Bytes payload);

  // -------------------------------------------------------------- faults

  /// Drop each transmission independently with probability p.
  void set_drop_rate(double p) { drop_rate_ = p; }

  /// Mark a node down: it neither receives nor emits anything.
  void set_node_down(NodeId node, bool down);
  [[nodiscard]] bool node_down(NodeId node) const;

  /// Split nodes into isolated groups; messages only flow within a group.
  /// Nodes absent from every group stay fully connected to each other.
  void set_partition(const std::vector<std::vector<NodeId>>& groups);
  void heal_partition();

  // --------------------------------------------------------------- stats

  struct Stats {
    std::uint64_t messages_sent = 0;       // transmissions attempted
    std::uint64_t bytes_sent = 0;
    std::uint64_t messages_delivered = 0;  // handler invocations
    std::uint64_t messages_dropped = 0;    // lost to faults
    std::uint64_t gossip_duplicates = 0;   // dedup hits at receivers
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  [[nodiscard]] sim::Scheduler& scheduler() { return scheduler_; }

  /// The observability context this network reports into (never null).
  [[nodiscard]] obs::Obs& obs() { return *obs_; }

 private:
  struct Node {
    DirectHandler on_direct;
    TopicHandler on_topic;
    bool down = false;
    // Per-topic set of seen gossip message ids (dedup).
    std::unordered_set<std::uint64_t> seen;
    // Mesh peers per topic.
    std::unordered_map<std::string, std::vector<NodeId>> mesh;
  };

  struct Topic {
    std::vector<NodeId> subscribers;
  };

  [[nodiscard]] bool can_reach(NodeId from, NodeId to) const;
  [[nodiscard]] bool faulted(NodeId from, NodeId to);
  void rebuild_meshes(const std::string& topic);
  void gossip_deliver(NodeId from, NodeId to, const std::string& topic,
                      std::shared_ptr<const Bytes> payload, NodeId origin,
                      std::uint64_t msg_id, int hops_left);

  sim::Scheduler& scheduler_;
  sim::LatencyModel latency_;
  sim::Rng rng_;
  GossipConfig config_;
  std::vector<Node> nodes_;
  std::unordered_map<std::string, Topic> topics_;
  double drop_rate_ = 0.0;
  // partition_group_[node] = group id; -1 = unpartitioned.
  std::vector<int> partition_group_;
  bool partitioned_ = false;
  std::uint64_t next_msg_seq_ = 0;
  Stats stats_;

  obs::Obs* obs_;  // never null (defaults to &obs::default_obs())
  // Registry-backed mirrors of Stats, resolved once at construction.
  obs::Counter* m_sent_;
  obs::Counter* m_bytes_;
  obs::Counter* m_delivered_;
  obs::Counter* m_dropped_;
  obs::Counter* m_duplicates_;
  obs::Histogram* h_direct_latency_;
  obs::Histogram* h_gossip_latency_;
};

}  // namespace hc::net
