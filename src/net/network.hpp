// Simulated P2P network: gossip pubsub + point-to-point delivery.
//
// Substitution for libp2p/gossipsub (see DESIGN.md §2). Every subnet owns a
// pubsub topic named by its SubnetId (paper §III-A: "a new attack-resilient
// pubsub topic that peers use as the transport layer"); checkpoints, blocks,
// consensus votes and the content-resolution protocol all travel through
// here. The gossip layer is a real mesh — messages propagate hop by hop with
// per-hop sampled latency and dedup — so delivery times scale O(log n) in
// subscriber count like the deployed system, instead of being a magic
// broadcast.
//
// Fault injection (see DESIGN.md §9, driven by src/chaos): a global
// per-message drop probability, node crash/down flags, named partitions,
// and per-link / per-node fault rules that drop, delay, duplicate and
// reorder individual transmissions. Every drop is attributed to a reason in
// both Stats and the metrics registry, so chaos runs can tell random loss
// from partitions from gray links.
// Parallel execution (DESIGN.md §11): transmissions run inside a node's
// event lane; deliveries are scheduled into the destination node's lane
// (crossing lanes through the scheduler's outbox/barrier machinery), fault
// dice come from per-domain RNG streams, and the transport counters are
// atomic. Topology, fault rules and handlers mutate only from driver
// context or lane-0 (chaos) events, which run with every lane parked.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "common/hash.hpp"
#include "net/envelope.hpp"
#include "obs/obs.hpp"
#include "sim/latency.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace hc::net {

using sim::NodeId;

/// Bounded per-receiver delivery queue (DESIGN.md §14). With a non-zero
/// `service_time` every arriving transmission lands in the destination
/// node's queue and is processed one per service interval; arrivals beyond
/// the caps are shed with a policy DropReason (kNodeQueueCap /
/// kTopicQueueCap), distinguishable from fault drops. All queue state lives
/// in the receiver's event lane, so shedding is deterministic at any worker
/// count. The default (`service_time == 0`) keeps the historical inline
/// delivery path, byte-identical to the unqueued network.
struct NodeQueuePolicy {
  /// Max queued deliveries per node (0 = unbounded).
  std::size_t max_depth = 0;
  /// Max queued payload bytes per node (0 = unbounded).
  std::size_t max_bytes = 0;
  /// Max queued gossip deliveries per (node, topic) (0 = unbounded).
  std::size_t topic_max_depth = 0;
  /// Per-delivery processing interval; 0 disables queueing entirely.
  sim::Duration service_time = 0;

  [[nodiscard]] bool enabled() const { return service_time > 0; }
  [[nodiscard]] bool bounded() const {
    return max_depth > 0 || max_bytes > 0 || topic_max_depth > 0;
  }
};

/// Tuning knobs for the gossip mesh. Validated by Network's constructor:
/// a zero mesh degree or a hop budget below 1 would silently disconnect the
/// mesh, so both are rejected with std::invalid_argument — as is a queue
/// cap without a service time (an inline network has no queue to bound).
struct GossipConfig {
  /// Mesh degree: peers a node eagerly forwards to per topic (>= 1).
  std::size_t mesh_degree = 6;
  /// Hop budget: messages stop propagating after this many hops (>= 1).
  int max_hops = 16;
  /// Per-receiver delivery queue caps (disabled by default).
  NodeQueuePolicy node_queue;
};

/// A fault rule applied to transmissions on one directed link (or to every
/// link touching a node, when installed via set_node_fault). Probabilities
/// are clamped to [0,1]; negative durations are clamped to 0. A "gray" link
/// is simply a rule with a high drop rate and nothing else.
struct LinkFault {
  /// Additional drop probability on top of the global rate.
  double drop = 0.0;
  /// Fixed extra latency added to every transmission.
  sim::Duration extra_delay = 0;
  /// Probability that a transmission is delivered twice (the duplicate
  /// takes an independently sampled latency, so copies can reorder).
  double duplicate = 0.0;
  /// Per-transmission uniform extra delay in [0, reorder_jitter]; enough
  /// jitter reorders messages that were sent back-to-back on the link.
  sim::Duration reorder_jitter = 0;

  [[nodiscard]] bool active() const {
    return drop > 0.0 || extra_delay > 0 || duplicate > 0.0 ||
           reorder_jitter > 0;
  }
};

/// Why a transmission was dropped (Stats and metric label). The first four
/// are *fault* drops (injected failures); the queue-cap reasons are
/// *policy sheds* — deliberate, deterministic load shedding (DESIGN.md §14).
enum class DropReason : std::uint8_t {
  kRandomLoss = 0,     // global drop rate
  kNodeDown = 1,       // sender or receiver marked down
  kPartition = 2,      // endpoints in different partition groups
  kLinkRule = 3,       // per-link / per-node fault rule
  kNodeQueueCap = 4,   // receiver's delivery queue at depth/byte cap (policy)
  kTopicQueueCap = 5,  // receiver's per-topic gossip queue at cap (policy)
};

inline constexpr std::size_t kDropReasonCount = 6;

[[nodiscard]] const char* to_string(DropReason reason);
/// True for deliberate load-shedding reasons (queue caps), false for
/// injected fault drops.
[[nodiscard]] bool is_policy_shed(DropReason reason);

class Network {
 public:
  using DirectHandler =
      std::function<void(NodeId from, const Bytes& payload)>;
  /// Gossip deliveries hand subscribers the shared Envelope: N replicas of
  /// a topic decode a payload once between them (Envelope::decoded), and
  /// forwarded hops are pointer copies, not byte copies.
  using TopicHandler = std::function<void(
      NodeId from, const std::string& topic, const Envelope& payload)>;

  /// `obs` routes network metrics into a registry; nullptr falls back to
  /// the process-wide obs::default_obs(). Throws std::invalid_argument for
  /// an invalid GossipConfig (mesh_degree == 0 or max_hops < 1).
  Network(sim::Scheduler& scheduler, sim::LatencyModel latency,
          std::uint64_t seed, GossipConfig config = {},
          obs::Obs* obs = nullptr);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Register a new node; returns its dense id.
  NodeId add_node();
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Declare which scheduler domain (event lane) a node executes in.
  /// Deliveries to the node are scheduled into that lane, and fault dice
  /// for traffic emitted from the lane come from that domain's dedicated
  /// RNG stream. Defaults to domain 0. Call from driver context only.
  void set_node_domain(NodeId node, sim::DomainId domain);
  [[nodiscard]] sim::DomainId node_domain(NodeId node) const {
    return node < node_domains_.size() ? node_domains_[node] : sim::DomainId{0};
  }

  /// Override the latency of one (unordered) node pair — e.g. WAN-class
  /// cross-subnet links over LAN-class intra-subnet ones. Driver context
  /// only; feeds LatencyModel::min_delay() and thus executor lookahead.
  void set_pair_latency(NodeId a, NodeId b, sim::Duration base,
                        sim::Duration jitter);
  [[nodiscard]] const sim::LatencyModel& latency() const { return latency_; }

  /// Install the handler invoked for point-to-point messages.
  void set_direct_handler(NodeId node, DirectHandler handler);
  /// Install the handler invoked for pubsub deliveries.
  void set_topic_handler(NodeId node, TopicHandler handler);

  /// Point-to-point send with sampled latency (may drop under faults).
  void send(NodeId from, NodeId to, Bytes payload);

  /// Topic membership. Subscribing re-wires the topic's gossip meshes.
  void subscribe(NodeId node, const std::string& topic);
  void unsubscribe(NodeId node, const std::string& topic);
  [[nodiscard]] bool subscribed(NodeId node, const std::string& topic) const;

  /// Publish into a topic. The publisher needs no subscription (boundary
  /// nodes publish into sibling subnets during content resolution).
  /// Delivery reaches subscribers via gossip hops; the publisher itself is
  /// NOT delivered its own message.
  void publish(NodeId from, const std::string& topic, Bytes payload);

  // -------------------------------------------------------------- faults

  /// Drop each transmission independently with probability p (clamped to
  /// [0,1]; NaN is treated as 0).
  void set_drop_rate(double p);
  [[nodiscard]] double drop_rate() const { return drop_rate_; }

  /// Mark a node down: it neither receives nor emits anything.
  void set_node_down(NodeId node, bool down);
  [[nodiscard]] bool node_down(NodeId node) const;

  /// Split nodes into isolated groups; messages only flow within a group.
  /// Nodes absent from every group stay fully connected to each other.
  void set_partition(const std::vector<std::vector<NodeId>>& groups);
  void heal_partition();

  /// Install a fault rule on the directed link from -> to (replaces any
  /// previous rule on that link). An inactive rule clears the link.
  void set_link_fault(NodeId from, NodeId to, LinkFault fault);
  void clear_link_fault(NodeId from, NodeId to);
  /// Install a fault rule on every transmission that `node` sends or
  /// receives (gray node). Composes with link rules: probabilities combine
  /// independently, delays add.
  void set_node_fault(NodeId node, LinkFault fault);
  void clear_node_fault(NodeId node);
  /// Drop every link and node fault rule (partitions, down flags and the
  /// global drop rate are governed separately).
  void clear_fault_rules();

  /// Forget a node's transport state: handlers, subscriptions, gossip
  /// dedup cache and mesh links. Models a crash that loses all in-memory
  /// state; the id stays valid and a restarted owner re-wires it.
  void reset_node(NodeId node);

  // --------------------------------------------------------------- stats

  struct Stats {
    std::uint64_t messages_sent = 0;       // transmissions attempted
    // Logical bytes: payload size counted once per transmission (every
    // gossip hop), the pre-envelope semantics of net_bytes_sent_total.
    std::uint64_t bytes_sent = 0;
    // Physical bytes: payload size counted once per materialization (one
    // publish/send), however many hops fan out afterwards as pointer
    // copies. Always <= bytes_sent when anything was transmitted.
    std::uint64_t bytes_physical = 0;
    std::uint64_t messages_delivered = 0;  // handler invocations
    std::uint64_t messages_dropped = 0;    // lost to faults (total)
    // messages_dropped split by cause:
    std::uint64_t dropped_random_loss = 0;
    std::uint64_t dropped_node_down = 0;
    std::uint64_t dropped_partition = 0;
    std::uint64_t dropped_link_rule = 0;
    // Policy sheds (deliberate, deterministic — not injected faults):
    std::uint64_t dropped_node_queue_cap = 0;
    std::uint64_t dropped_topic_queue_cap = 0;
    std::uint64_t messages_duplicated = 0;  // fault-injected extra copies
    std::uint64_t gossip_duplicates = 0;    // dedup hits at receivers
    // High-water marks across all per-node delivery queues (0 when the
    // queue policy is disabled).
    std::uint64_t queue_peak_depth = 0;
    std::uint64_t queue_peak_bytes = 0;
    // High-water mark of any node's gossip dedup set (hot + cold
    // generations); bounded by construction at 2 * kSeenHotMax.
    std::uint64_t seen_peak_entries = 0;

    /// Deliberate load shedding (queue caps).
    [[nodiscard]] std::uint64_t policy_sheds() const {
      return dropped_node_queue_cap + dropped_topic_queue_cap;
    }
    /// Injected fault drops (loss, down nodes, partitions, link rules).
    [[nodiscard]] std::uint64_t fault_drops() const {
      return dropped_random_loss + dropped_node_down + dropped_partition +
             dropped_link_rule;
    }
  };
  /// Snapshot of the (internally atomic) transport counters. Sums are
  /// order-insensitive, so snapshots taken outside windows are identical
  /// across worker counts.
  [[nodiscard]] Stats stats() const;
  void reset_stats();

  /// Current delivery-queue occupancy of one node (0 when queueing is
  /// disabled). Reads lane-local state: call from the node's lane or from
  /// driver context with lanes parked (tests, invariant checks).
  [[nodiscard]] std::size_t queue_depth(NodeId node) const {
    return nodes_.at(node).queue.size();
  }
  [[nodiscard]] std::size_t queue_bytes(NodeId node) const {
    return nodes_.at(node).queue_bytes;
  }

  [[nodiscard]] sim::Scheduler& scheduler() { return scheduler_; }

  /// The observability context this network reports into (never null).
  [[nodiscard]] obs::Obs& obs() { return *obs_; }

 private:
  /// One delivery parked in a receiver's bounded queue. `from` is the
  /// direct-send sender or the gossip origin.
  struct QueuedDelivery {
    bool is_gossip = false;
    NodeId from = 0;
    std::string topic;
    Envelope payload;
    std::uint64_t msg_id = 0;
    int hops_left = 0;
  };

 public:
  /// Generational gossip dedup set (same hot/cold discipline as SigCache):
  /// inserts land in `hot`; when hot reaches kSeenHotMax it ages into
  /// `cold` and the previous cold generation is dropped, bounding a node's
  /// dedup memory at 2 * kSeenHotMax ids regardless of run length. The
  /// duplicate-arrival window of a message (max_hops x per-hop latency) is
  /// far shorter than the time to see 2 * kSeenHotMax fresh ids, so an id
  /// is only ever evicted long after its last copy stopped circulating.
  class SeenSet {
   public:
    static constexpr std::size_t kSeenHotMax = 4096;

    /// Record `id`; returns true when it was not already present.
    bool insert(std::uint64_t id) {
      if (hot_.contains(id)) return false;
      if (cold_.contains(id)) {
        hot_.insert(id);  // promote: still circulating
        rotate_if_full();
        return false;
      }
      hot_.insert(id);
      rotate_if_full();
      return true;
    }

    [[nodiscard]] std::size_t size() const {
      return hot_.size() + cold_.size();
    }
    void clear() {
      hot_.clear();
      cold_.clear();
    }

   private:
    void rotate_if_full() {
      if (hot_.size() >= kSeenHotMax) {
        cold_ = std::move(hot_);
        hot_.clear();
      }
    }

    std::unordered_set<std::uint64_t> hot_;
    std::unordered_set<std::uint64_t> cold_;
  };

 private:
  struct Node {
    DirectHandler on_direct;
    TopicHandler on_topic;
    bool down = false;
    // Seen gossip message ids (dedup), bounded generationally.
    SeenSet seen;
    // Mesh peers per topic.
    std::unordered_map<std::string, std::vector<NodeId>> mesh;
    // Bounded delivery queue (NodeQueuePolicy). All three fields are
    // touched only from this node's event lane.
    std::deque<QueuedDelivery> queue;
    std::size_t queue_bytes = 0;
    std::unordered_map<std::string, std::size_t> topic_depth;
    bool draining = false;
  };

  struct Topic {
    std::vector<NodeId> subscribers;
  };

  /// Combined fault rule for one transmission: the directed link rule plus
  /// both endpoints' node rules (probabilities composed independently,
  /// delays summed, jitter summed). `active()` false when unfaulted.
  [[nodiscard]] LinkFault effective_fault(NodeId from, NodeId to) const;

  /// RNG stream for the calling context: one independent stream per
  /// scheduler domain, so lanes running on different workers never share
  /// dice. Stream 0 (driver / legacy single-lane use) is seeded exactly
  /// like the pre-lane shared stream.
  [[nodiscard]] sim::Rng& rng();

  [[nodiscard]] bool can_reach(NodeId from, NodeId to) const;
  /// Roll the dice for one transmission. Returns the drop reason, or
  /// nullopt when it goes through.
  [[nodiscard]] std::optional<DropReason> transmission_drop(
      NodeId from, NodeId to, const LinkFault& fault);
  void count_drop(DropReason reason);
  /// Latency sample plus fault-rule delay and reorder jitter.
  [[nodiscard]] sim::Duration transmission_delay(NodeId from, NodeId to,
                                                 const LinkFault& fault);
  void rebuild_meshes(const std::string& topic);
  void deliver_direct(NodeId from, NodeId to, Envelope payload,
                      sim::Duration delay);
  void gossip_deliver(NodeId from, NodeId to, const std::string& topic,
                      const Envelope& payload, NodeId origin,
                      std::uint64_t msg_id, int hops_left);
  void schedule_gossip_hop(NodeId to, const std::string& topic,
                           Envelope payload, NodeId origin,
                           std::uint64_t msg_id, int hops_left,
                           sim::Duration delay);
  // Bounded-queue path (receiver lane only). enqueue_delivery applies the
  // caps and sheds; drain_queue services one delivery per interval; the
  // run_* helpers hold the actual handler-invocation logic shared with the
  // inline (service_time == 0) path.
  void enqueue_delivery(NodeId to, QueuedDelivery d);
  void drain_queue(NodeId to);
  void run_direct_delivery(NodeId to, NodeId from, const Bytes& payload);
  void run_gossip_delivery(NodeId to, const std::string& topic,
                           const Envelope& payload, NodeId origin,
                           std::uint64_t msg_id, int hops_left);

  /// Stats mirror with atomic fields; updated from worker lanes.
  struct AtomicStats {
    std::atomic<std::uint64_t> messages_sent{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> bytes_physical{0};
    std::atomic<std::uint64_t> messages_delivered{0};
    std::atomic<std::uint64_t> messages_dropped{0};
    std::atomic<std::uint64_t> dropped_random_loss{0};
    std::atomic<std::uint64_t> dropped_node_down{0};
    std::atomic<std::uint64_t> dropped_partition{0};
    std::atomic<std::uint64_t> dropped_link_rule{0};
    std::atomic<std::uint64_t> dropped_node_queue_cap{0};
    std::atomic<std::uint64_t> dropped_topic_queue_cap{0};
    std::atomic<std::uint64_t> messages_duplicated{0};
    std::atomic<std::uint64_t> gossip_duplicates{0};
    // CAS-max high-water marks; max is order-insensitive, so these stay
    // identical across worker counts just like the sums.
    std::atomic<std::uint64_t> queue_peak_depth{0};
    std::atomic<std::uint64_t> queue_peak_bytes{0};
    std::atomic<std::uint64_t> seen_peak_entries{0};
  };

  sim::Scheduler& scheduler_;
  sim::LatencyModel latency_;
  std::uint64_t seed_;
  // One RNG stream per scheduler domain (index = domain id). Stream 0 is
  // seeded exactly like the historical shared stream; further streams are
  // derived deterministically from (seed, domain).
  std::vector<std::unique_ptr<sim::Rng>> rngs_;
  GossipConfig config_;
  std::vector<Node> nodes_;
  std::vector<sim::DomainId> node_domains_;
  std::unordered_map<std::string, Topic> topics_;
  double drop_rate_ = 0.0;
  // partition_group_[node] = group id; -1 = unpartitioned.
  std::vector<int> partition_group_;
  bool partitioned_ = false;
  // Directed-link fault rules keyed by (from << 32) | to.
  std::unordered_map<std::uint64_t, LinkFault> link_faults_;
  // Per-node fault rules (applied to both directions).
  std::unordered_map<NodeId, LinkFault> node_faults_;
  // Gossip message ids are compared only for equality among copies of one
  // publish, so a racy-but-unique atomic counter is sufficient.
  std::atomic<std::uint64_t> next_msg_seq_{0};
  AtomicStats stats_;

  obs::Obs* obs_;  // never null (defaults to &obs::default_obs())
  // Registry-backed mirrors of Stats, resolved once at construction.
  obs::Counter* m_sent_;
  obs::Counter* m_bytes_;
  obs::Counter* m_bytes_physical_;
  obs::Counter* m_delivered_;
  obs::Counter* m_dropped_;
  obs::Counter* m_dropped_by_reason_[kDropReasonCount];
  obs::Counter* m_duplicated_;
  obs::Counter* m_duplicates_;
  obs::Histogram* h_direct_latency_;
  obs::Histogram* h_gossip_latency_;
};

}  // namespace hc::net
