// Atomic swap of two assets hosted in different subnets (paper §IV-D).
//
// Alice owns "deed-473" in /root/estates; Bob owns "gem-0x9" in
// /root/vault. They swap ownership atomically with the root SCA as 2PC
// coordinator: lock inputs -> exchange state -> compute output -> submit
// matching output CIDs -> commit -> apply in both subnets. A second run
// shows the abort path leaving both subnets untouched.
//
// Run:  ./build/examples/atomic_swap
#include <cstdio>

#include "actors/basic.hpp"
#include "actors/methods.hpp"
#include "runtime/atomic.hpp"

using namespace hc;

namespace {

core::SubnetParams params() {
  core::SubnetParams p;
  p.name = "subnet";
  p.consensus = core::ConsensusType::kPoaRoundRobin;
  p.min_validator_stake = TokenAmount::whole(5);
  p.min_collateral = TokenAmount::whole(10);
  p.checkpoint_period = 5;
  p.checkpoint_policy =
      core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, 1};
  return p;
}

struct World {
  runtime::Hierarchy h;
  runtime::Subnet* estates = nullptr;
  runtime::Subnet* vault = nullptr;
  runtime::User alice;
  runtime::User bob;
  Address app_estates;
  Address app_vault;

  World() : h(make_config()) {}

  static runtime::HierarchyConfig make_config() {
    runtime::HierarchyConfig cfg;
    cfg.seed = 31337;
    cfg.root_params = params();
    cfg.root_validators = 3;
    cfg.root_engine.block_time = 200 * sim::kMillisecond;
    return cfg;
  }

  bool setup() {
    consensus::EngineConfig fast;
    fast.block_time = 100 * sim::kMillisecond;
    auto e = h.spawn_subnet(h.root(), "estates", params(), 3,
                            TokenAmount::whole(5), fast);
    auto v = h.spawn_subnet(h.root(), "vault", params(), 3,
                            TokenAmount::whole(5), fast);
    if (!e.ok() || !v.ok()) return false;
    estates = e.value();
    vault = v.value();

    auto a = h.make_user("alice", TokenAmount::whole(500));
    auto b = h.make_user("bob", TokenAmount::whole(500));
    if (!a.ok() || !b.ok()) return false;
    alice = a.value();
    bob = b.value();

    // Fund both users in their home subnets, then deploy the asset apps.
    if (!h.send_cross(h.root(), alice, estates->id, alice.addr,
                      TokenAmount::whole(100))
             .ok() ||
        !h.send_cross(h.root(), bob, vault->id, bob.addr,
                      TokenAmount::whole(100))
             .ok()) {
      return false;
    }
    h.run_until(
        [&] {
          return !estates->node(0).balance(alice.addr).is_zero() &&
                 !vault->node(0).balance(bob.addr).is_zero();
        },
        60 * sim::kSecond);

    app_estates = deploy(*estates, alice, "deed-473", "owner:alice");
    app_vault = deploy(*vault, bob, "gem-0x9", "owner:bob");
    return app_estates.valid() && app_vault.valid();
  }

  Address deploy(runtime::Subnet& subnet, const runtime::User& user,
                 const std::string& key, const std::string& value) {
    actors::ExecParams exec;
    exec.code = chain::kCodeKvApp;
    auto dep = h.call(subnet, user, chain::kInitAddr,
                      actors::init_method::kExec, encode(exec), TokenAmount());
    if (!dep.ok() || !dep.value().ok()) return Address();
    auto addr = decode<Address>(dep.value().ret);
    if (!addr.ok()) return Address();
    actors::KvParams put{to_bytes(key), to_bytes(value)};
    auto r = h.call(subnet, user, addr.value(), actors::kv_method::kPut,
                    encode(put), TokenAmount());
    return r.ok() && r.value().ok() ? addr.value() : Address();
  }

  std::string owner_of(runtime::Subnet& subnet, const runtime::User& user,
                       const Address& app, const std::string& key) {
    actors::KvParams p{to_bytes(key), {}};
    auto r = h.call(subnet, user, app, actors::kv_method::kGet, encode(p),
                    TokenAmount());
    if (!r.ok() || !r.value().ok()) return "<error>";
    return std::string(r.value().ret.begin(), r.value().ret.end());
  }

  runtime::AtomicExecution make_swap() {
    return runtime::AtomicExecution(
        h, h.root(),
        {runtime::AtomicPartySpec{estates, alice, app_estates,
                                  to_bytes("deed-473")},
         runtime::AtomicPartySpec{vault, bob, app_vault, to_bytes("gem-0x9")}},
        [](const std::vector<Bytes>& inputs) {
          // The swap: each side receives the other's state.
          return std::vector<Bytes>{inputs[1], inputs[0]};
        });
  }

  void show() {
    std::printf("  deed-473 in %s: %s\n", estates->id.to_string().c_str(),
                owner_of(*estates, alice, app_estates, "deed-473").c_str());
    std::printf("  gem-0x9  in %s: %s\n", vault->id.to_string().c_str(),
                owner_of(*vault, bob, app_vault, "gem-0x9").c_str());
  }
};

}  // namespace

int main() {
  World w;
  if (!w.setup()) {
    std::printf("setup failed\n");
    return 1;
  }
  std::printf("two subnets, two assets:\n");
  w.show();

  std::printf("\n[run 1] atomic swap via the root SCA coordinator\n");
  {
    runtime::AtomicExecution swap = w.make_swap();
    auto decision = swap.run();
    if (!decision.ok()) {
      std::printf("swap failed: %s\n", decision.error().to_string().c_str());
      return 1;
    }
    std::printf("coordinator decision: %s\n",
                decision.value() == actors::AtomicStatus::kCommitted
                    ? "COMMITTED"
                    : "ABORTED");
    w.show();
  }

  std::printf("\n[run 2] bob aborts mid-protocol — nothing changes\n");
  {
    runtime::AtomicExecution swap = w.make_swap();
    if (!swap.lock_inputs().ok() || !swap.compute_output().ok() ||
        !swap.init().ok()) {
      return 1;
    }
    if (!swap.submit(0).ok()) return 1;       // alice submits
    if (!swap.abort(1).ok()) return 1;        // bob aborts
    auto decision = swap.await_decision();
    if (!decision.ok()) return 1;
    std::printf("coordinator decision: %s\n",
                decision.value() == actors::AtomicStatus::kAborted
                    ? "ABORTED"
                    : "COMMITTED?!");
    if (!swap.finalize(decision.value()).ok()) return 1;
    w.show();
  }

  std::printf("\nsimulated time: %s\n",
              sim::format_time(w.h.scheduler().now()).c_str());
  return 0;
}
