// Cross-net payments across a three-level hierarchy.
//
// Builds the topology of the paper's Fig. 1:
//
//          /root                       (Tendermint, 4 validators)
//          /root/A     /root/B        (PoA)
//          /root/A/C                  (PoA)
//
// and traces a *path message*: a payment from /root/A/C to /root/B, which
// travels bottom-up in checkpoints (C -> A -> root) and then top-down
// (root -> B), with funds burned/released at each hop (paper §IV-A).
//
// Run:  ./build/examples/cross_net_payments
#include <cstdio>

#include "runtime/hierarchy.hpp"

using namespace hc;

namespace {

core::SubnetParams params(core::ConsensusType type, std::uint32_t period) {
  core::SubnetParams p;
  p.name = "subnet";
  p.consensus = type;
  p.min_validator_stake = TokenAmount::whole(5);
  p.min_collateral = TokenAmount::whole(10);
  p.checkpoint_period = period;
  p.checkpoint_policy =
      core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, 1};
  return p;
}

void show_supplies(runtime::Hierarchy& h, runtime::Subnet& a,
                   runtime::Subnet& b, runtime::Subnet& c) {
  const auto root_sca = h.root().node(0).sca_state();
  const auto a_sca = a.node(0).sca_state();
  std::printf("  circulating supply:  A=%s  B=%s  C=%s\n",
              root_sca.subnets.at(a.sa).circulating_supply.to_string().c_str(),
              root_sca.subnets.at(b.sa).circulating_supply.to_string().c_str(),
              a_sca.subnets.at(c.sa).circulating_supply.to_string().c_str());
}

}  // namespace

int main() {
  runtime::HierarchyConfig cfg;
  cfg.seed = 99;
  cfg.root_params = params(core::ConsensusType::kTendermint, 10);
  cfg.root_validators = 4;
  cfg.root_engine.block_time = 300 * sim::kMillisecond;
  cfg.root_engine.timeout_base = 600 * sim::kMillisecond;
  runtime::Hierarchy h(cfg);
  std::printf("rootnet: Tendermint with 4 validators\n");

  consensus::EngineConfig fast;
  fast.block_time = 100 * sim::kMillisecond;

  auto a = h.spawn_subnet(h.root(), "A",
                          params(core::ConsensusType::kPoaRoundRobin, 5), 3,
                          TokenAmount::whole(5), fast);
  auto b = h.spawn_subnet(h.root(), "B",
                          params(core::ConsensusType::kPoaRoundRobin, 5), 3,
                          TokenAmount::whole(5), fast);
  if (!a.ok() || !b.ok()) return 1;
  auto c = h.spawn_subnet(*a.value(), "C",
                          params(core::ConsensusType::kPoaRoundRobin, 5), 3,
                          TokenAmount::whole(5), fast);
  if (!c.ok()) {
    std::printf("spawn C failed: %s\n", c.error().to_string().c_str());
    return 1;
  }
  std::printf("hierarchy:\n  %s\n  %s\n  %s\n",
              a.value()->id.to_string().c_str(),
              b.value()->id.to_string().c_str(),
              c.value()->id.to_string().c_str());

  auto alice = h.make_user("alice", TokenAmount::whole(1000));
  if (!alice.ok()) return 1;

  // Fund alice in /root/A/C via a two-hop top-down route.
  std::printf("\n[1] top-down funding /root -> %s (two hops)\n",
              c.value()->id.to_string().c_str());
  auto fund = h.send_cross(h.root(), alice.value(), c.value()->id,
                           alice.value().addr, TokenAmount::whole(50));
  if (!fund.ok() || !fund.value().ok()) return 1;
  h.run_until(
      [&] {
        return c.value()->node(0).balance(alice.value().addr) ==
               TokenAmount::whole(50);
      },
      60 * sim::kSecond);
  std::printf("  alice in C: %s after %s of simulated time\n",
              c.value()
                  ->node(0)
                  .balance(alice.value().addr)
                  .to_string()
                  .c_str(),
              sim::format_time(h.scheduler().now()).c_str());
  show_supplies(h, *a.value(), *b.value(), *c.value());

  // Path message C -> B.
  runtime::User merchant{
      crypto::KeyPair::from_label("merchant"),
      Address::key(
          crypto::KeyPair::from_label("merchant").public_key().to_bytes())};
  std::printf("\n[2] path message %s -> %s (bottom-up to /root, then "
              "top-down)\n",
              c.value()->id.to_string().c_str(),
              b.value()->id.to_string().c_str());
  const sim::Time sent_at = h.scheduler().now();
  auto pay = h.send_cross(*c.value(), alice.value(), b.value()->id,
                          merchant.addr, TokenAmount::whole(15));
  if (!pay.ok() || !pay.value().ok()) return 1;
  std::printf("  burned 15 tok in C; waiting for checkpoint C->A...\n");

  h.run_until(
      [&] {
        const auto sca = a.value()->node(0).sca_state();
        return !sca.subnets.at(c.value()->sa).checkpoints.empty();
      },
      60 * sim::kSecond);
  std::printf("  checkpoint committed in A at %s; meta forwarded toward "
              "/root...\n",
              sim::format_time(h.scheduler().now()).c_str());

  const bool landed = h.run_until(
      [&] {
        return b.value()->node(0).balance(merchant.addr) ==
               TokenAmount::whole(15);
      },
      180 * sim::kSecond);
  std::printf("  merchant in B: %s after %s end-to-end\n",
              b.value()->node(0).balance(merchant.addr).to_string().c_str(),
              sim::format_time(h.scheduler().now() - sent_at).c_str());
  show_supplies(h, *a.value(), *b.value(), *c.value());

  if (!landed) return 1;
  std::printf("\npath message settled; supplies updated at every hop.\n");
  return 0;
}
