// Rescuing funds from a dying subnet (paper §III-C) — and verifying its
// checkpoint history as a light client (paper §II).
//
// Alice keeps savings in a subnet whose validators all leave and kill it.
// Her funds are stranded: no validators, no blocks, no bottom-up messages.
// The escape hatch: the subnet's checkpoints (anchored in the root while it
// was alive) commit to its state roots. Alice proves her balance against a
// committed checkpoint with a Merkle state proof and the root SCA releases
// her funds from the frozen pool — capped, as always, by the subnet's
// circulating supply (the firewall).
//
// Run:  ./build/examples/subnet_rescue
#include <cstdio>

#include "actors/methods.hpp"
#include "core/light_client.hpp"
#include "runtime/hierarchy.hpp"

using namespace hc;

namespace {

core::SubnetParams params() {
  core::SubnetParams p;
  p.name = "savings";
  p.consensus = core::ConsensusType::kPoaRoundRobin;
  p.min_validator_stake = TokenAmount::whole(5);
  p.min_collateral = TokenAmount::whole(10);
  p.checkpoint_period = 5;
  p.checkpoint_policy =
      core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, 2};
  return p;
}

}  // namespace

int main() {
  runtime::HierarchyConfig cfg;
  cfg.seed = 60221023;
  cfg.root_params = params();
  cfg.root_validators = 3;
  cfg.root_engine.block_time = 100 * sim::kMillisecond;
  runtime::Hierarchy h(cfg);

  consensus::EngineConfig fast;
  fast.block_time = 100 * sim::kMillisecond;
  auto spawned = h.spawn_subnet(h.root(), "savings", params(), 2,
                                TokenAmount::whole(6), fast);
  if (!spawned.ok()) return 1;
  runtime::Subnet& subnet = *spawned.value();
  std::printf("subnet %s live (2 validators, checkpoint every 5 blocks)\n",
              subnet.id.to_string().c_str());

  auto alice = h.make_user("alice", TokenAmount::whole(500));
  if (!alice.ok()) return 1;
  if (!h.send_cross(h.root(), alice.value(), subnet.id, alice.value().addr,
                    TokenAmount::whole(75))
           .ok()) {
    return 1;
  }
  h.run_until(
      [&] {
        return subnet.node(0).balance(alice.value().addr) ==
               TokenAmount::whole(75);
      },
      60 * sim::kSecond);
  std::printf("alice deposited 75 tok into the subnet\n");

  // Let checkpoints anchor the deposit into the root.
  const auto funded_height = subnet.node(0).chain().height();
  h.run_until(
      [&] {
        const auto sca = h.root().node(0).sca_state();
        auto it = sca.subnets.find(subnet.sa);
        return it != sca.subnets.end() &&
               it->second.last_checkpoint_epoch > funded_height;
      },
      120 * sim::kSecond);
  const auto entry = h.root().node(0).sca_state().subnets.at(subnet.sa);
  std::printf("%zu checkpoints anchored in the root (latest epoch %lld)\n",
              entry.checkpoints.size(),
              static_cast<long long>(entry.last_checkpoint_epoch));

  // --- Light-client verification of the whole checkpoint history.
  const auto sa = h.root().node(0).sa_state(subnet.sa);
  core::LightClient lc(subnet.id, sa->params.checkpoint_policy,
                       sa->validator_keys(), sa->params.checkpoint_period);
  int verified = 0;
  const auto& root_store = h.root().node(0).chain();
  core::Checkpoint anchor_cp;
  for (chain::Epoch hh = 1; hh <= root_store.height(); ++hh) {
    for (const auto& sm : root_store.block_at(hh)->messages) {
      if (sm.message.to != subnet.sa ||
          sm.message.method != actors::sa_method::kSubmitCheckpoint) {
        continue;
      }
      auto sc = decode<core::SignedCheckpoint>(sm.message.params);
      if (sc.ok() && lc.advance(sc.value()).ok()) {
        ++verified;
        anchor_cp = sc.value().checkpoint;
      }
    }
  }
  std::printf("light client verified %d checkpoints (policy: 2-of-2 "
              "multisig, prev-linked)\n",
              verified);

  // --- The subnet dies: validators leave and kill it.
  for (const auto& key : subnet.validator_keys) {
    runtime::User v{key, Address::key(key.public_key().to_bytes())};
    auto r = h.call(h.root(), v, subnet.sa, actors::sa_method::kLeave, {},
                    TokenAmount());
    if (!r.ok() || !r.value().ok()) return 1;
  }
  {
    runtime::User v{subnet.validator_keys[0],
                    Address::key(
                        subnet.validator_keys[0].public_key().to_bytes())};
    auto r = h.call(h.root(), v, subnet.sa, actors::sa_method::kKill, {},
                    TokenAmount());
    if (!r.ok() || !r.value().ok()) return 1;
  }
  std::printf("\nvalidators left and KILLED the subnet — 75 tok stranded\n");

  // --- Rescue: prove the balance against the last verified checkpoint.
  const auto* anchor_block =
      subnet.node(0).chain().block_by_cid(anchor_cp.proof);
  if (anchor_block == nullptr) return 1;
  auto historic = subnet.node(0).state_at(anchor_block->header.height);
  if (!historic.ok()) return 1;
  const auto* stranded = historic.value().get(alice.value().addr);
  auto proof = historic.value().prove(alice.value().addr);
  if (stranded == nullptr || !proof.ok()) return 1;
  std::printf("alice builds a Merkle proof of her entry (%s) against the "
              "state root of checkpoint epoch %lld\n",
              stranded->balance.to_string().c_str(),
              static_cast<long long>(anchor_cp.epoch));

  actors::RecoverParams rp;
  rp.sa = subnet.sa;
  rp.checkpoint = anchor_cp;
  rp.header = anchor_block->header;
  rp.claimed_addr = alice.value().addr;
  rp.claimed_entry = *stranded;
  rp.proof = proof.value();

  const TokenAmount before = h.root().node(0).balance(alice.value().addr);
  auto rec = h.call(h.root(), alice.value(), chain::kScaAddr,
                    actors::sca_method::kRecover, encode(rp), TokenAmount());
  if (!rec.ok() || !rec.value().ok()) {
    std::printf("recovery failed: %s\n",
                rec.ok() ? rec.value().error.c_str()
                         : rec.error().to_string().c_str());
    return 1;
  }
  auto amount = decode<TokenAmount>(rec.value().ret);
  std::printf("root SCA verified the proof chain (checkpoint -> block header "
              "-> state root -> entry)\nand released %s back to alice "
              "(balance %s -> %s)\n",
              amount.value().to_string().c_str(), before.to_string().c_str(),
              h.root().node(0).balance(alice.value().addr).to_string().c_str());

  // A second claim is rejected.
  auto again = h.call(h.root(), alice.value(), chain::kScaAddr,
                      actors::sca_method::kRecover, encode(rp), TokenAmount());
  std::printf("double-claim attempt: %s\n",
              again.ok() && !again.value().ok() ? "rejected (as it must be)"
                                                : "UNEXPECTED");
  return 0;
}
