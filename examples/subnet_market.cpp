// A "new use case" subnet (paper §I): a low-latency in-game marketplace.
//
// The rootnet runs Tendermint with a conservative 1s block time — too slow
// for game trades. The studio spawns a PoA subnet with 100ms blocks and its
// own policies, funds player wallets into it, and runs a burst of trades at
// subnet speed. The demo prints the throughput both chains achieved in the
// same simulated window, plus the firewall accounting that bounds what a
// compromised market subnet could ever extract from the root.
//
// Run:  ./build/examples/subnet_market
#include <cstdio>
#include <vector>

#include "actors/methods.hpp"
#include "runtime/hierarchy.hpp"

using namespace hc;

namespace {

core::SubnetParams market_params() {
  core::SubnetParams p;
  p.name = "game-market";
  p.consensus = core::ConsensusType::kPoaRoundRobin;
  p.min_validator_stake = TokenAmount::whole(10);
  p.min_collateral = TokenAmount::whole(30);
  p.checkpoint_period = 20;
  p.checkpoint_policy =
      core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, 2};
  return p;
}

}  // namespace

int main() {
  runtime::HierarchyConfig cfg;
  cfg.seed = 4242;
  cfg.root_params = market_params();
  cfg.root_params.consensus = core::ConsensusType::kTendermint;
  cfg.root_validators = 4;
  cfg.root_engine.block_time = sim::kSecond;
  cfg.root_engine.timeout_base = 2 * sim::kSecond;
  runtime::Hierarchy h(cfg);
  std::printf("rootnet: Tendermint, 4 validators, 1s blocks (secure, slow)\n");

  consensus::EngineConfig game_speed;
  game_speed.block_time = 100 * sim::kMillisecond;
  auto spawned = h.spawn_subnet(h.root(), "game-market", market_params(), 3,
                                TokenAmount::whole(10), game_speed);
  if (!spawned.ok()) {
    std::printf("spawn failed: %s\n", spawned.error().to_string().c_str());
    return 1;
  }
  runtime::Subnet& market = *spawned.value();
  std::printf("market subnet %s: PoA, 3 studio validators, 100ms blocks\n\n",
              market.id.to_string().c_str());

  // Fund 4 player wallets inside the market.
  std::vector<runtime::User> players;
  for (int i = 0; i < 4; ++i) {
    auto u = h.make_user("player-" + std::to_string(i),
                         TokenAmount::whole(200));
    if (!u.ok()) return 1;
    players.push_back(u.value());
    if (!h.send_cross(h.root(), players.back(), market.id,
                      players.back().addr, TokenAmount::whole(50))
             .ok()) {
      return 1;
    }
  }
  h.run_until(
      [&] {
        for (const auto& p : players) {
          if (market.node(0).balance(p.addr).is_zero()) return false;
        }
        return true;
      },
      60 * sim::kSecond);
  std::printf("4 player wallets funded in-market (50 tok each)\n");
  std::printf("firewall bound: a fully compromised market can cost the root "
              "at most %s\n\n",
              h.root()
                  .node(0)
                  .sca_state()
                  .subnets.at(market.sa)
                  .circulating_supply.to_string()
                  .c_str());

  // Burst of trades at market speed; meanwhile, count what the root does.
  const auto market_stats_before = market.node(0).stats();
  const auto root_stats_before = h.root().node(0).stats();
  const sim::Time burst_start = h.scheduler().now();
  const sim::Duration window = 20 * sim::kSecond;

  std::printf("running a 20s trade burst (each player pays the next 1 tok "
              "per market block)...\n");
  int submitted = 0;
  while (h.scheduler().now() - burst_start < window) {
    for (std::size_t i = 0; i < players.size(); ++i) {
      const auto& from = players[i];
      const auto& to = players[(i + 1) % players.size()];
      if (h.submit(market, from, to.addr, 0, {},
                   TokenAmount::whole(1))
              .ok()) {
        ++submitted;
      }
    }
    h.run_for(100 * sim::kMillisecond);
  }
  h.run_for(2 * sim::kSecond);  // drain

  const auto market_stats = market.node(0).stats();
  const auto root_stats = h.root().node(0).stats();
  const double secs =
      static_cast<double>(window) / static_cast<double>(sim::kSecond);
  const auto market_txs =
      market_stats.user_msgs_executed - market_stats_before.user_msgs_executed;
  const auto root_txs =
      root_stats.user_msgs_executed - root_stats_before.user_msgs_executed;
  std::printf("\n%-28s %12s %12s\n", "", "market", "rootnet");
  std::printf("%-28s %12llu %12llu\n", "user txs executed (20s)",
              static_cast<unsigned long long>(market_txs),
              static_cast<unsigned long long>(root_txs));
  std::printf("%-28s %12.1f %12.1f\n", "throughput (tx/s)",
              static_cast<double>(market_txs) / secs,
              static_cast<double>(root_txs) / secs);
  std::printf("%-28s %12llu %12llu\n", "blocks committed",
              static_cast<unsigned long long>(
                  market_stats.blocks_committed -
                  market_stats_before.blocks_committed),
              static_cast<unsigned long long>(root_stats.blocks_committed -
                                              root_stats_before
                                                  .blocks_committed));
  std::printf("(submitted %d trades; the root chain stayed idle — trades "
              "never touch it)\n",
              submitted);

  // The market still checkpoints into the root for security anchoring.
  h.run_until(
      [&] {
        return !h.root()
                    .node(0)
                    .sca_state()
                    .subnets.at(market.sa)
                    .checkpoints.empty();
      },
      120 * sim::kSecond);
  std::printf("\nmarket checkpoints anchored in the root: %zu so far\n",
              h.root()
                  .node(0)
                  .sca_state()
                  .subnets.at(market.sa)
                  .checkpoints.size());
  return 0;
}
