// Quickstart: the smallest end-to-end hierarchical-consensus session.
//
//   1. boot a rootnet (3 PoA validators)
//   2. spawn a subnet from it (deploy SA, validators join, SCA registers)
//   3. fund an address inside the subnet top-down
//   4. transact inside the subnet without touching the root
//   5. watch checkpoints anchor the subnet in the root chain
//   6. withdraw funds bottom-up through a checkpoint
//
// Run:  ./build/examples/quickstart
#include <cstdio>

#include "runtime/hierarchy.hpp"

using namespace hc;

namespace {

void banner(const char* text) { std::printf("\n== %s ==\n", text); }

core::SubnetParams subnet_params() {
  core::SubnetParams p;
  p.name = "quickstart-subnet";
  p.consensus = core::ConsensusType::kPoaRoundRobin;
  p.min_validator_stake = TokenAmount::whole(5);
  p.min_collateral = TokenAmount::whole(10);
  p.checkpoint_period = 5;  // checkpoint every 5 subnet blocks
  p.checkpoint_policy =
      core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, 2};
  return p;
}

}  // namespace

int main() {
  banner("1. boot the rootnet");
  runtime::HierarchyConfig cfg;
  cfg.seed = 2026;
  cfg.root_params = subnet_params();
  cfg.root_params.name = "rootnet";
  cfg.root_validators = 3;
  cfg.root_engine.block_time = 200 * sim::kMillisecond;
  runtime::Hierarchy h(cfg);
  std::printf("rootnet %s: %zu validators, PoA, block time 200ms\n",
              h.root().id.to_string().c_str(), h.root().size());

  auto alice = h.make_user("alice", TokenAmount::whole(1000));
  if (!alice.ok()) return 1;
  std::printf("alice funded on the root: %s\n",
              h.root().node(0).balance(alice.value().addr).to_string().c_str());

  banner("2. spawn a subnet");
  consensus::EngineConfig fast;
  fast.block_time = 100 * sim::kMillisecond;
  auto spawned = h.spawn_subnet(h.root(), "quickstart", subnet_params(), 3,
                                TokenAmount::whole(5), fast);
  if (!spawned.ok()) {
    std::printf("spawn failed: %s\n", spawned.error().to_string().c_str());
    return 1;
  }
  runtime::Subnet& subnet = *spawned.value();
  std::printf("subnet %s spawned: SA deployed at %s, 3 validators joined,\n"
              "collateral %s deposited in the root SCA\n",
              subnet.id.to_string().c_str(), subnet.sa.to_string().c_str(),
              h.root()
                  .node(0)
                  .sca_state()
                  .subnets.at(subnet.sa)
                  .collateral.to_string()
                  .c_str());

  banner("3. fund alice inside the subnet (top-down cross-msg)");
  auto fund = h.send_cross(h.root(), alice.value(), subnet.id,
                           alice.value().addr, TokenAmount::whole(100));
  if (!fund.ok() || !fund.value().ok()) return 1;
  h.run_until(
      [&] {
        return subnet.node(0).balance(alice.value().addr) ==
               TokenAmount::whole(100);
      },
      30 * sim::kSecond);
  std::printf("alice in %s: %s (circulating supply now %s)\n",
              subnet.id.to_string().c_str(),
              subnet.node(0).balance(alice.value().addr).to_string().c_str(),
              h.root()
                  .node(0)
                  .sca_state()
                  .subnets.at(subnet.sa)
                  .circulating_supply.to_string()
                  .c_str());

  banner("4. transact inside the subnet");
  runtime::User bob{crypto::KeyPair::from_label("bob"),
                    Address::key(crypto::KeyPair::from_label("bob")
                                     .public_key()
                                     .to_bytes())};
  for (int i = 0; i < 3; ++i) {
    auto r = h.call(subnet, alice.value(), bob.addr, 0, {},
                    TokenAmount::whole(5));
    if (!r.ok() || !r.value().ok()) return 1;
  }
  std::printf("3 payments alice->bob executed at subnet speed; bob has %s\n",
              subnet.node(0).balance(bob.addr).to_string().c_str());

  banner("5. checkpoints anchor the subnet in the root");
  h.run_until(
      [&] {
        const auto sca = h.root().node(0).sca_state();
        return sca.subnets.at(subnet.sa).checkpoints.size() >= 2;
      },
      60 * sim::kSecond);
  const auto sca = h.root().node(0).sca_state();
  const auto& entry = sca.subnets.at(subnet.sa);
  std::printf("root SCA holds %zu checkpoints for %s, latest at epoch %lld\n",
              entry.checkpoints.size(), subnet.id.to_string().c_str(),
              static_cast<long long>(entry.last_checkpoint_epoch));

  banner("6. withdraw bottom-up");
  auto release = h.send_cross(subnet, alice.value(), core::SubnetId::root(),
                              bob.addr, TokenAmount::whole(20));
  if (!release.ok() || !release.value().ok()) return 1;
  std::printf("release submitted: funds burned in the subnet, carried by the "
              "next checkpoint...\n");
  const bool landed = h.run_until(
      [&] {
        return h.root().node(0).balance(bob.addr) == TokenAmount::whole(20);
      },
      90 * sim::kSecond);
  std::printf("bob on the root: %s (%s)\n",
              h.root().node(0).balance(bob.addr).to_string().c_str(),
              landed ? "released from the SCA after checkpoint commit"
                     : "TIMED OUT");

  std::printf("\nsimulated time elapsed: %s — all flows complete.\n",
              sim::format_time(h.scheduler().now()).c_str());
  return landed ? 0 : 1;
}
