// Failure-injection tests over the full stack: gossip loss, validator
// crashes during checkpoint duty, network partitions mid-transfer, and the
// paper's §IV-B failed-cross-msg revert path.
#include <gtest/gtest.h>

#include "actors/basic.hpp"
#include "actors/methods.hpp"
#include "runtime/hierarchy.hpp"

namespace hc::runtime {
namespace {

core::SubnetParams subnet_params(std::uint32_t threshold = 1) {
  core::SubnetParams p;
  p.name = "fail";
  p.consensus = core::ConsensusType::kPoaRoundRobin;
  p.min_validator_stake = TokenAmount::whole(5);
  p.min_collateral = TokenAmount::whole(10);
  p.checkpoint_period = 5;
  p.checkpoint_policy =
      core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, threshold};
  return p;
}

HierarchyConfig fast_config(std::uint64_t seed = 21) {
  HierarchyConfig cfg;
  cfg.seed = seed;
  cfg.latency = sim::LatencyModel(2 * sim::kMillisecond, sim::kMillisecond);
  cfg.root_params = subnet_params();
  cfg.root_validators = 3;
  cfg.root_engine.block_time = 100 * sim::kMillisecond;
  return cfg;
}

consensus::EngineConfig fast_engine() {
  consensus::EngineConfig e;
  e.block_time = 100 * sim::kMillisecond;
  e.timeout_base = 300 * sim::kMillisecond;
  return e;
}

struct FailureFixture : ::testing::Test {
  Hierarchy h{fast_config()};
  Subnet* child = nullptr;
  User alice;

  void SetUp() override {
    auto c = h.spawn_subnet(h.root(), "f-child", subnet_params(), 3,
                            TokenAmount::whole(5), fast_engine());
    ASSERT_TRUE(c.ok()) << c.error().to_string();
    child = c.value();
    auto a = h.make_user("f-alice", TokenAmount::whole(1000));
    ASSERT_TRUE(a.ok());
    alice = a.value();
  }

  void fund_and_wait(TokenAmount amount) {
    auto r = h.send_cross(h.root(), alice, child->id, alice.addr, amount);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(h.run_until(
        [&] { return child->node(0).balance(alice.addr) >= amount; },
        60 * sim::kSecond));
  }
};

// -------------------------------------------------------------- loss

TEST_F(FailureFixture, CrossNetFlowsSurviveGossipLoss) {
  h.network().set_drop_rate(0.10);
  fund_and_wait(TokenAmount::whole(20));

  User sink{crypto::KeyPair::from_label("l-sink"),
            Address::key(
                crypto::KeyPair::from_label("l-sink").public_key().to_bytes())};
  auto r = h.send_cross(*child, alice, core::SubnetId::root(), sink.addr,
                        TokenAmount::whole(6));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().ok()) << r.value().error;
  // Checkpoint submission, resolution pulls etc. all retry through blocks;
  // the transfer must settle despite 10% loss on every link.
  EXPECT_TRUE(h.run_until(
      [&] {
        return h.root().node(0).balance(sink.addr) == TokenAmount::whole(6);
      },
      300 * sim::kSecond));
}

// ---------------------------------------------------- validator crashes

TEST_F(FailureFixture, CheckpointsContinueWhenNonSubmitterCrashes) {
  fund_and_wait(TokenAmount::whole(10));
  // Crash one subnet validator (node 2; node 0 stays as API endpoint).
  child->node(2).stop();
  h.network().set_node_down(child->node(2).net_id(), true);

  // PoA stalls on the crashed leader's slots? No: leader rotation includes
  // node 2, so the chain halts at its slot... unless it recovers. Bring it
  // back after 3 seconds to model a crash-recover cycle.
  h.run_for(3 * sim::kSecond);
  h.network().set_node_down(child->node(2).net_id(), false);
  child->node(2).start();

  const auto before =
      h.root().node(0).sca_state().subnets.at(child->sa).checkpoints.size();
  ASSERT_TRUE(h.run_until(
      [&] {
        return h.root()
                   .node(0)
                   .sca_state()
                   .subnets.at(child->sa)
                   .checkpoints.size() > before;
      },
      120 * sim::kSecond));
}

TEST_F(FailureFixture, BftSubnetCheckpointsDespiteCrashedValidator) {
  // A 4-validator Tendermint subnet tolerates one crash outright.
  auto c = h.spawn_subnet(h.root(), "bft-child", [] {
    auto p = subnet_params(/*threshold=*/2);
    p.consensus = core::ConsensusType::kTendermint;
    return p;
  }(), 4, TokenAmount::whole(5), fast_engine());
  ASSERT_TRUE(c.ok()) << c.error().to_string();
  Subnet* bft = c.value();

  bft->node(3).stop();
  h.network().set_node_down(bft->node(3).net_id(), true);

  ASSERT_TRUE(h.run_until(
      [&] {
        const auto sca = h.root().node(0).sca_state();
        auto it = sca.subnets.find(bft->sa);
        return it != sca.subnets.end() && !it->second.checkpoints.empty();
      },
      180 * sim::kSecond));
}

// -------------------------------------------------------------- partition

TEST_F(FailureFixture, TransferResumesAfterPartition) {
  fund_and_wait(TokenAmount::whole(20));

  // Partition the child subnet's validators away from the root validators:
  // checkpoints cannot be submitted.
  std::vector<net::NodeId> child_nodes;
  std::vector<net::NodeId> root_nodes;
  for (std::size_t i = 0; i < child->size(); ++i) {
    child_nodes.push_back(child->node(i).net_id());
  }
  for (std::size_t i = 0; i < h.root().size(); ++i) {
    root_nodes.push_back(h.root().node(i).net_id());
  }
  h.network().set_partition({child_nodes, root_nodes});

  User sink{crypto::KeyPair::from_label("p-sink"),
            Address::key(
                crypto::KeyPair::from_label("p-sink").public_key().to_bytes())};
  auto r = h.send_cross(*child, alice, core::SubnetId::root(), sink.addr,
                        TokenAmount::whole(4));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().ok());

  // While partitioned, the release burns in the child but never reaches
  // the root.
  h.run_for(10 * sim::kSecond);
  EXPECT_TRUE(h.root().node(0).balance(sink.addr).is_zero());
  EXPECT_EQ(child->node(0).balance(chain::kBurnAddr), TokenAmount::whole(4));

  // Heal: the designated submitter retries pending checkpoints.
  h.network().heal_partition();
  EXPECT_TRUE(h.run_until(
      [&] {
        return h.root().node(0).balance(sink.addr) == TokenAmount::whole(4);
      },
      180 * sim::kSecond));
}

TEST_F(FailureFixture, PartitionDuringSigningWindowHealsWithBackoff) {
  fund_and_wait(TokenAmount::whole(10));
  ASSERT_TRUE(h.run_until(
      [&] {
        return !h.root().node(0).sca_state().subnets.at(child->sa)
                    .checkpoints.empty();
      },
      60 * sim::kSecond));

  // Cut the child off from the root across several checkpoint periods: the
  // child keeps cutting and signing checkpoints but cannot submit them.
  std::vector<net::NodeId> child_nodes;
  for (std::size_t i = 0; i < child->size(); ++i) {
    child_nodes.push_back(child->node(i).net_id());
  }
  h.network().set_partition({child_nodes});
  const auto before =
      h.root().node(0).sca_state().subnets.at(child->sa).checkpoints.size();
  h.run_for(8 * sim::kSecond);
  EXPECT_EQ(
      h.root().node(0).sca_state().subnets.at(child->sa).checkpoints.size(),
      before);

  // Heal: the designated submitter's exponential-backoff retry resubmits
  // the stuck checkpoint without any outside help.
  h.network().heal_partition();
  EXPECT_TRUE(h.run_until(
      [&] {
        return h.root().node(0).sca_state().subnets.at(child->sa)
                   .checkpoints.size() > before;
      },
      120 * sim::kSecond));
  std::uint64_t retries = 0;
  for (std::size_t i = 0; i < child->size(); ++i) {
    retries += h.obs()
                   .metrics
                   .counter("node_checkpoint_retries_total",
                            obs::Labels{
                                {"node", std::to_string(child->node(i).net_id())},
                                {"subnet", child->id.to_string()}})
                   .value();
  }
  EXPECT_GT(retries, 0u);
}

TEST_F(FailureFixture, CrashedCheckpointSignerResumesAfterRestart) {
  // A child whose checkpoint policy needs ALL three signatures: while one
  // signer is crashed, no checkpoint can reach quorum, so recovery depends
  // on the restarted node replaying the chain, re-signing cut checkpoints
  // and re-gossiping its share.
  auto c = h.spawn_subnet(h.root(), "sign-child", subnet_params(/*threshold=*/3),
                          3, TokenAmount::whole(5), fast_engine());
  ASSERT_TRUE(c.ok()) << c.error().to_string();
  Subnet* strict = c.value();
  ASSERT_TRUE(h.run_until(
      [&] {
        return !h.root().node(0).sca_state().subnets.at(strict->sa)
                    .checkpoints.empty();
      },
      120 * sim::kSecond));

  ASSERT_TRUE(h.crash_node(*strict, 2).ok());
  EXPECT_FALSE(strict->alive(2));
  EXPECT_EQ(strict->alive_count(), 2u);
  const auto before =
      h.root().node(0).sca_state().subnets.at(strict->sa).checkpoints.size();
  h.run_for(5 * sim::kSecond);
  EXPECT_EQ(
      h.root().node(0).sca_state().subnets.at(strict->sa).checkpoints.size(),
      before);

  // Restart from genesis: catch-up resync, then re-signed shares let the
  // next checkpoint reach its 3-of-3 quorum.
  ASSERT_TRUE(h.restart_node(*strict, 2).ok());
  EXPECT_TRUE(h.run_until(
      [&] {
        return h.root().node(0).sca_state().subnets.at(strict->sa)
                   .checkpoints.size() > before;
      },
      120 * sim::kSecond));
  // The restarted replica is back in lockstep with its peers.
  EXPECT_TRUE(h.run_until(
      [&] {
        return strict->node(2).chain().height() + 2 >=
               strict->node(0).chain().height();
      },
      60 * sim::kSecond));
}

// ------------------------------------------------------------- reverts

TEST_F(FailureFixture, FailedCrossMsgRefundsViaRevert) {
  fund_and_wait(TokenAmount::whole(20));

  // A cross-net call whose inner execution MUST fail at the destination:
  // calling a method on the SCA that does not exist.
  const TokenAmount alice_child_before = child->node(0).balance(alice.addr);
  auto r = h.send_cross(*child, alice, core::SubnetId::root(),
                        chain::kInitAddr, TokenAmount::whole(5),
                        /*method=*/12345, encode_varint(1));
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value().ok()) << r.value().error;

  // Paper §IV-B: the failure triggers a revert cross-msg from the failing
  // subnet back to the source, returning the funds.
  EXPECT_TRUE(h.run_until(
      [&] {
        // Refund arrives back to alice inside the child.
        return child->node(0).balance(alice.addr) >=
               alice_child_before - TokenAmount::whole(1);  // minus gas
      },
      300 * sim::kSecond));
  // Root-side supply restored: failed transfer did not leak supply.
  const auto sca = h.root().node(0).sca_state();
  EXPECT_EQ(sca.subnets.at(child->sa).circulating_supply,
            TokenAmount::whole(20));
}

TEST_F(FailureFixture, TopDownToUnknownSubnetFailsCleanly) {
  // Funding an unregistered subnet is rejected synchronously at the SCA.
  actors::CrossParams p;
  p.dest = core::SubnetId::root().child(Address::id(7777));
  p.to = alice.addr;
  auto r = h.call(h.root(), alice, chain::kScaAddr,
                  actors::sca_method::kFund, encode(p), TokenAmount::whole(5));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().ok());
  // Value refunded (only gas was lost).
  EXPECT_GT(h.root().node(0).balance(alice.addr),
            TokenAmount::whole(990));
}

// ----------------------------------------------------- inactive subnets

TEST_F(FailureFixture, InactiveSubnetCannotCheckpointUntilRestaked) {
  fund_and_wait(TokenAmount::whole(10));
  // All but one validator leave: collateral 5 < 10 -> inactive.
  for (std::size_t i = 1; i < child->validator_keys.size(); ++i) {
    User v{child->validator_keys[i],
           Address::key(child->validator_keys[i].public_key().to_bytes())};
    auto r = h.call(h.root(), v, child->sa, actors::sa_method::kLeave, {},
                    TokenAmount());
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().ok()) << r.value().error;
  }
  ASSERT_EQ(h.root().node(0).sca_state().subnets.at(child->sa).status,
            core::SubnetStatus::kInactive);

  // Checkpoints stop being accepted while inactive.
  const auto checkpoints_before =
      h.root().node(0).sca_state().subnets.at(child->sa).checkpoints.size();
  h.run_for(10 * sim::kSecond);
  EXPECT_EQ(h.root().node(0).sca_state().subnets.at(child->sa).checkpoints
                .size(),
            checkpoints_before);

  // Re-stake: validator 1 rejoins, reactivating the subnet (§III-B: "users
  // of the subnet need to put up additional collateral").
  User v1{child->validator_keys[1],
          Address::key(child->validator_keys[1].public_key().to_bytes())};
  auto rejoin = h.call(
      h.root(), v1, child->sa, actors::sa_method::kJoin,
      encode(actors::JoinParams{child->validator_keys[1].public_key()}),
      TokenAmount::whole(5));
  ASSERT_TRUE(rejoin.ok());
  ASSERT_TRUE(rejoin.value().ok()) << rejoin.value().error;
  EXPECT_EQ(h.root().node(0).sca_state().subnets.at(child->sa).status,
            core::SubnetStatus::kActive);

  // NOTE: the consensus validator set is static per spawn (see README
  // "known simplifications"), so the subnet keeps producing blocks with
  // its original set; what inactive-ness governs is hierarchy interaction.
  EXPECT_TRUE(h.run_until(
      [&] {
        return h.root()
                   .node(0)
                   .sca_state()
                   .subnets.at(child->sa)
                   .checkpoints.size() > checkpoints_before;
      },
      120 * sim::kSecond));
}

}  // namespace
}  // namespace hc::runtime
