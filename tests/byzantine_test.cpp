// Byzantine adversary sweeps: armed validators equivocate, forge
// CrossMsgMeta, withhold signatures or replay stale checkpoints while the
// honest majority keeps the subnet live. Every run checks the standard
// chaos invariants PLUS the Byzantine postconditions (exactly the guilty
// slashed, honest collateral untouched, deactivation where expected,
// detection latency bounded, no duplicate proofs) — and determinism: the
// same scenario/seed pair replays byte-identically, adversary included.
#include <gtest/gtest.h>

#include <algorithm>

#include "chaos/runner.hpp"

namespace hc::chaos {
namespace {

RunnerConfig byz_runner_config() {
  RunnerConfig cfg;
  cfg.children = 2;
  cfg.nested = 0;
  cfg.warmup = sim::kSecond;
  cfg.fault_window = 8 * sim::kSecond;
  cfg.settle = 180 * sim::kSecond;
  return cfg;
}

/// Scenarios runnable on the flat (nested = 0) topology — everything but
/// the depth-2 equivocation.
std::vector<Scenario> flat_scenarios() {
  auto scenarios = ChaosRunner::byzantine_scenarios();
  scenarios.erase(std::remove_if(scenarios.begin(), scenarios.end(),
                                 [](const Scenario& s) {
                                   return s.name == "byz-equivocate-deep";
                                 }),
                  scenarios.end());
  return scenarios;
}

TEST(ByzantineSmoke, EquivocatorIsSlashedExactlyOnce) {
  ChaosRunner runner(byz_runner_config());
  const auto scenarios = ChaosRunner::byzantine_scenarios();
  const auto& scenario = scenarios.front();
  ASSERT_EQ(scenario.name, "byz-equivocate");
  for (const std::uint64_t seed : {7ull, 21ull}) {
    const RunResult r = runner.run(scenario, seed);
    EXPECT_TRUE(r.converged) << r.summary();
    EXPECT_TRUE(r.report.ok()) << r.summary();
    // The watchers noticed and the slash settled — visible in the exports.
    EXPECT_NE(r.metrics_json.find("fraud_detection_latency_us"),
              std::string::npos);
    EXPECT_NE(r.metrics_json.find("validators_slashed_total"),
              std::string::npos);
  }
}

TEST(ByzantineSweep, FlatScenariosHoldInvariantsAcrossSeeds) {
  ChaosRunner runner(byz_runner_config());
  const auto scenarios = flat_scenarios();
  ASSERT_GE(scenarios.size(), 4u);
  const auto results = runner.sweep(scenarios, {7, 21, 1234});
  ASSERT_EQ(results.size(), scenarios.size() * 3);
  for (const auto& r : results) {
    EXPECT_TRUE(r.converged) << r.summary();
    EXPECT_TRUE(r.report.ok()) << r.summary();
  }
}

TEST(ByzantineSweep, SameSeedReplayIsByteIdentical) {
  ChaosRunner runner(byz_runner_config());
  const auto scenarios = ChaosRunner::byzantine_scenarios();
  // Collateral collapse stresses the most machinery: two equivocators,
  // two slashes, subnet deactivation and invariant relaxation.
  const auto& scenario = scenarios.at(2);
  ASSERT_EQ(scenario.name, "byz-collapse");
  const RunResult a = runner.run(scenario, 42);
  const RunResult b = runner.run(scenario, 42);
  ASSERT_TRUE(a.ok()) << a.summary();
  EXPECT_EQ(a.state_roots, b.state_roots);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.fingerprint, b.fingerprint);

  const RunResult c = runner.run(scenario, 43);
  ASSERT_TRUE(c.ok()) << c.summary();
  EXPECT_NE(a.fingerprint, c.fingerprint);
}

TEST(ByzantineSweep, CollapseDeactivatesOnlyTheGuiltySubnet) {
  ChaosRunner runner(byz_runner_config());
  const auto scenarios = ChaosRunner::byzantine_scenarios();
  const auto& scenario = scenarios.at(2);
  ASSERT_EQ(scenario.name, "byz-collapse");
  const RunResult r = runner.run(scenario, 7);
  ASSERT_TRUE(r.ok()) << r.summary();
  // Both slashes and the deactivation reached the deterministic exports;
  // check_byzantine already verified the first child stayed active.
  EXPECT_NE(r.metrics_json.find("subnets_deactivated_total"),
            std::string::npos);
}

TEST(ByzantineSweep, DepthTwoEquivocationIsSlashedByTheMiddleSubnet) {
  RunnerConfig cfg = byz_runner_config();
  cfg.children = 2;
  cfg.nested = 1;  // root -> child0 -> grandchild
  ChaosRunner runner(cfg);
  const auto scenarios = ChaosRunner::byzantine_scenarios();
  const auto& scenario = scenarios.back();
  ASSERT_EQ(scenario.name, "byz-equivocate-deep");
  for (const std::uint64_t seed : {7ull, 21ull, 1234ull}) {
    const RunResult r = runner.run(scenario, seed);
    EXPECT_TRUE(r.converged) << r.summary();
    EXPECT_TRUE(r.report.ok()) << r.summary();
  }
}

}  // namespace
}  // namespace hc::chaos
