// Tests for §III-C fund recovery: Merkle state proofs, the SCA Recover
// method's verification chain, and the full-stack kill-and-recover flow.
#include <gtest/gtest.h>

#include "harness.hpp"
#include "runtime/hierarchy.hpp"

namespace hc::testing {
namespace {

namespace sca = actors::sca_method;
using actors::sa_method::kJoin;
using actors::sa_method::kLeave;
using actors::sa_method::kSubmitCheckpoint;

// ------------------------------------------------------- state proofs

TEST(StateProofs, ProveAndVerifyEntry) {
  chain::StateTree tree;
  for (std::uint64_t i = 0; i < 9; ++i) {
    chain::ActorEntry e;
    e.code = chain::kCodeAccount;
    e.balance = TokenAmount::whole(static_cast<std::int64_t>(i));
    tree.set(Address::id(i), e);
  }
  const Cid root = tree.flush();
  for (std::uint64_t i = 0; i < 9; ++i) {
    auto proof = tree.prove(Address::id(i));
    ASSERT_TRUE(proof.ok());
    EXPECT_TRUE(chain::StateTree::verify_entry(
        root, Address::id(i), *tree.get(Address::id(i)), proof.value()));
  }
}

TEST(StateProofs, RejectsWrongEntryOrAddress) {
  chain::StateTree tree;
  chain::ActorEntry e;
  e.code = chain::kCodeAccount;
  e.balance = TokenAmount::whole(5);
  tree.set(Address::id(1), e);
  tree.set(Address::id(2), e);
  const Cid root = tree.flush();
  auto proof = tree.prove(Address::id(1));
  ASSERT_TRUE(proof.ok());

  chain::ActorEntry inflated = e;
  inflated.balance = TokenAmount::whole(5000);
  EXPECT_FALSE(chain::StateTree::verify_entry(root, Address::id(1), inflated,
                                              proof.value()));
  EXPECT_FALSE(chain::StateTree::verify_entry(root, Address::id(2), e,
                                              proof.value()));
  // Proof against a different root fails.
  tree.get_or_create(Address::id(2)).balance += TokenAmount::atto(1);
  EXPECT_FALSE(chain::StateTree::verify_entry(tree.flush(), Address::id(1), e,
                                              proof.value()));
}

TEST(StateProofs, ProveMissingActorFails) {
  chain::StateTree tree;
  EXPECT_FALSE(tree.prove(Address::id(42)).ok());
}

// -------------------------------------------------- SCA recover (unit)

struct RecoverFixture : ::testing::Test {
  ChainWorld world;
  User* validator = nullptr;
  Address sa;
  core::SubnetId child;
  chain::StateTree child_state;  // simulated child chain state
  chain::BlockHeader child_header;
  core::SignedCheckpoint committed;

  void SetUp() override {
    validator = &world.user("rec-val", TokenAmount::whole(1000));
    core::SubnetParams params;
    params.min_validator_stake = TokenAmount::whole(5);
    params.min_collateral = TokenAmount::whole(10);
    params.checkpoint_period = 10;
    params.checkpoint_policy =
        core::SignaturePolicy{core::SignaturePolicyKind::kMultiSig, 1};
    sa = world.deploy_sa(*validator, params);
    ASSERT_TRUE(world
                    .call(*validator, sa, kJoin,
                          encode(actors::JoinParams{
                              validator->key.public_key()}),
                          TokenAmount::whole(10))
                    .ok());
    child = core::SubnetId::root().child(sa);

    // Inject supply 30 for alice.
    User& alice = world.user("rec-alice", TokenAmount::whole(1000));
    actors::CrossParams fund;
    fund.dest = child;
    fund.to = alice.addr;
    ASSERT_TRUE(world
                    .call(alice, chain::kScaAddr, sca::kFund, encode(fund),
                          TokenAmount::whole(30))
                    .ok());

    // Simulate the child chain's state: alice holds 30.
    chain::ActorEntry entry;
    entry.code = chain::kCodeAccount;
    entry.balance = TokenAmount::whole(30);
    child_state.set(alice.addr, entry);

    child_header.miner = validator->addr;
    child_header.height = 10;
    child_header.state_root = child_state.flush();

    committed.checkpoint.source = child;
    committed.checkpoint.epoch = 10;
    committed.checkpoint.proof = child_header.cid();
    committed.add_signature(validator->key);
    ASSERT_TRUE(world
                    .call(*validator, sa, kSubmitCheckpoint, encode(committed),
                          TokenAmount())
                    .ok());

    // Kill the subnet (validator leaves, then kills).
    ASSERT_TRUE(world.call(*validator, sa, kLeave, {}, TokenAmount()).ok());
    ASSERT_TRUE(
        world.call(*validator, sa, actors::sa_method::kKill, {}, TokenAmount())
            .ok());
  }

  actors::RecoverParams make_params() {
    User& alice = world.user("rec-alice");
    actors::RecoverParams p;
    p.sa = sa;
    p.checkpoint = committed.checkpoint;
    p.header = child_header;
    p.claimed_addr = alice.addr;
    p.claimed_entry = *child_state.get(alice.addr);
    p.proof = child_state.prove(alice.addr).value();
    return p;
  }
};

TEST_F(RecoverFixture, HappyPathRecoversFunds) {
  User& alice = world.user("rec-alice");
  const TokenAmount before = world.balance(alice.addr);
  auto r = world.call(alice, chain::kScaAddr, sca::kRecover,
                      encode(make_params()), TokenAmount());
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_GT(world.balance(alice.addr), before);  // 30 minus gas
  const auto entry = world.sca_state().subnets.begin()->second;
  EXPECT_TRUE(entry.circulating_supply.is_zero());
  ASSERT_EQ(entry.recovered.size(), 1u);
}

TEST_F(RecoverFixture, DoubleRecoveryRejected) {
  User& alice = world.user("rec-alice");
  ASSERT_TRUE(world
                  .call(alice, chain::kScaAddr, sca::kRecover,
                        encode(make_params()), TokenAmount())
                  .ok());
  auto again = world.call(alice, chain::kScaAddr, sca::kRecover,
                          encode(make_params()), TokenAmount());
  EXPECT_FALSE(again.ok());
}

TEST_F(RecoverFixture, OnlyOwnerMayRecover) {
  User& mallory = world.user("rec-mallory");
  auto r = world.call(mallory, chain::kScaAddr, sca::kRecover,
                      encode(make_params()), TokenAmount());
  EXPECT_FALSE(r.ok());
}

TEST_F(RecoverFixture, InflatedBalanceRejected) {
  User& alice = world.user("rec-alice");
  auto p = make_params();
  p.claimed_entry.balance = TokenAmount::whole(5000);  // proof breaks
  auto r = world.call(alice, chain::kScaAddr, sca::kRecover, encode(p),
                      TokenAmount());
  EXPECT_FALSE(r.ok());
}

TEST_F(RecoverFixture, UncommittedCheckpointRejected) {
  User& alice = world.user("rec-alice");
  auto p = make_params();
  p.checkpoint.epoch = 999;  // never committed
  auto r = world.call(alice, chain::kScaAddr, sca::kRecover, encode(p),
                      TokenAmount());
  EXPECT_FALSE(r.ok());
}

TEST_F(RecoverFixture, MismatchedHeaderRejected) {
  User& alice = world.user("rec-alice");
  auto p = make_params();
  p.header.height = 11;  // cid no longer matches checkpoint.proof
  auto r = world.call(alice, chain::kScaAddr, sca::kRecover, encode(p),
                      TokenAmount());
  EXPECT_FALSE(r.ok());
}

TEST_F(RecoverFixture, RecoveryCappedBySupply) {
  // Claim is honest (30) but part of the supply already left through a
  // (simulated) earlier recovery by another account; the remaining claim
  // is capped.
  User& alice = world.user("rec-alice");
  // Simulate: manually drain supply down to 12 via a second account's
  // recovery path is complex; instead verify the cap logic by recovering
  // after the supply was decremented through state surgery at the SCA.
  auto sca_state = world.sca_state();
  sca_state.subnets.begin()->second.circulating_supply = TokenAmount::whole(12);
  world.tree().get_or_create(chain::kScaAddr).state = encode(sca_state);

  const TokenAmount before = world.balance(alice.addr);
  auto r = world.call(alice, chain::kScaAddr, sca::kRecover,
                      encode(make_params()), TokenAmount());
  ASSERT_TRUE(r.ok()) << r.error;
  auto recovered = decode<TokenAmount>(r.ret);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value(), TokenAmount::whole(12));  // capped
  EXPECT_GT(world.balance(alice.addr), before);
}

// --------------------------------------------------- full-stack recovery

TEST(RecoveryIntegration, KillSubnetAndRecoverStrandedFunds) {
  runtime::HierarchyConfig cfg;
  cfg.seed = 77;
  cfg.latency = sim::LatencyModel(2 * sim::kMillisecond, sim::kMillisecond);
  cfg.root_params.consensus = core::ConsensusType::kPoaRoundRobin;
  cfg.root_params.min_validator_stake = TokenAmount::whole(5);
  cfg.root_params.min_collateral = TokenAmount::whole(10);
  cfg.root_params.checkpoint_period = 5;
  cfg.root_validators = 3;
  cfg.root_engine.block_time = 100 * sim::kMillisecond;
  runtime::Hierarchy h(cfg);

  core::SubnetParams params = cfg.root_params;
  consensus::EngineConfig fast;
  fast.block_time = 100 * sim::kMillisecond;
  auto c = h.spawn_subnet(h.root(), "doomed", params, 2,
                          TokenAmount::whole(6), fast);
  ASSERT_TRUE(c.ok()) << c.error().to_string();
  runtime::Subnet* child = c.value();

  auto alice = h.make_user("ri-alice", TokenAmount::whole(500));
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(h.send_cross(h.root(), alice.value(), child->id,
                           alice.value().addr, TokenAmount::whole(40))
                  .ok());
  ASSERT_TRUE(h.run_until(
      [&] {
        return child->node(0).balance(alice.value().addr) ==
               TokenAmount::whole(40);
      },
      60 * sim::kSecond));

  // Wait for a checkpoint committed AFTER the funding applied, so alice's
  // entry is part of the committed state.
  const auto funded_height = child->node(0).chain().height();
  ASSERT_TRUE(h.run_until(
      [&] {
        const auto sca = h.root().node(0).sca_state();
        auto it = sca.subnets.find(child->sa);
        return it != sca.subnets.end() &&
               it->second.last_checkpoint_epoch > funded_height;
      },
      120 * sim::kSecond));

  // Find the committed checkpoint content via the root chain's events.
  const auto entry = h.root().node(0).sca_state().subnets.at(child->sa);
  core::Checkpoint checkpoint;
  bool found = false;
  const auto& root_store = h.root().node(0).chain();
  for (chain::Epoch hh = root_store.height(); hh >= 1 && !found; --hh) {
    const auto* receipts = h.root().node(0).receipts_at(hh);
    if (receipts == nullptr) break;
    for (const auto& r : *receipts) {
      for (const auto& ev : r.events) {
        if (ev.kind != "sca/checkpoint-committed") continue;
        auto cp = decode<core::Checkpoint>(ev.payload);
        if (cp.ok() && cp.value().cid() == entry.checkpoints.back()) {
          checkpoint = cp.value();
          found = true;
        }
      }
    }
  }
  ASSERT_TRUE(found) << "committed checkpoint content not found in events";

  // Build the recovery proof from the child chain's historic state. Copy
  // the block: the pointer aims into the chain store, which keeps growing
  // (and reallocating) while the kill calls below run the simulation.
  const auto* anchor_ptr =
      child->node(0).chain().block_by_cid(checkpoint.proof);
  ASSERT_NE(anchor_ptr, nullptr);
  const chain::Block anchor_block = *anchor_ptr;
  auto historic = child->node(0).state_at(anchor_block.header.height);
  ASSERT_TRUE(historic.ok()) << historic.error().to_string();
  const auto* alice_entry = historic.value().get(alice.value().addr);
  ASSERT_NE(alice_entry, nullptr);
  auto proof = historic.value().prove(alice.value().addr);
  ASSERT_TRUE(proof.ok());

  // Kill the subnet: validators leave (making it inactive), then kill.
  for (std::size_t i = 0; i < child->validator_keys.size(); ++i) {
    runtime::User v{child->validator_keys[i],
                    Address::key(
                        child->validator_keys[i].public_key().to_bytes())};
    auto r = h.call(h.root(), v, child->sa, actors::sa_method::kLeave, {},
                    TokenAmount());
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().ok()) << r.value().error;
  }
  {
    runtime::User v{child->validator_keys[0],
                    Address::key(
                        child->validator_keys[0].public_key().to_bytes())};
    auto r = h.call(h.root(), v, child->sa, actors::sa_method::kKill, {},
                    TokenAmount());
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().ok()) << r.value().error;
  }

  // Alice's 40 tokens are stranded: recover them on the root.
  actors::RecoverParams rp;
  rp.sa = child->sa;
  rp.checkpoint = checkpoint;
  rp.header = anchor_block.header;
  rp.claimed_addr = alice.value().addr;
  rp.claimed_entry = *alice_entry;
  rp.proof = proof.value();

  const TokenAmount root_before =
      h.root().node(0).balance(alice.value().addr);
  auto rec = h.call(h.root(), alice.value(), chain::kScaAddr, sca::kRecover,
                    encode(rp), TokenAmount());
  ASSERT_TRUE(rec.ok()) << rec.error().to_string();
  ASSERT_TRUE(rec.value().ok()) << rec.value().error;
  auto amount = decode<TokenAmount>(rec.value().ret);
  ASSERT_TRUE(amount.ok());
  EXPECT_EQ(amount.value(), TokenAmount::whole(40));
  // Balance grew by 40 minus the gas fee of the recover call itself.
  EXPECT_GT(h.root().node(0).balance(alice.value().addr),
            root_before + TokenAmount::whole(39));
}

// ------------------------------------- durable crash recovery (§15)

runtime::HierarchyConfig durable_cfg(std::uint64_t seed) {
  runtime::HierarchyConfig cfg;
  cfg.seed = seed;
  cfg.latency = sim::LatencyModel(2 * sim::kMillisecond, sim::kMillisecond);
  cfg.root_params.consensus = core::ConsensusType::kPoaRoundRobin;
  cfg.root_params.min_validator_stake = TokenAmount::whole(5);
  cfg.root_params.min_collateral = TokenAmount::whole(10);
  cfg.root_params.checkpoint_period = 5;
  cfg.root_validators = 3;
  cfg.root_engine.block_time = 100 * sim::kMillisecond;
  cfg.durability.enabled = true;
  return cfg;
}

struct DurableWorld {
  runtime::Hierarchy h;
  runtime::Subnet* child = nullptr;

  explicit DurableWorld(std::uint64_t seed) : h(durable_cfg(seed)) {
    consensus::EngineConfig fast;
    fast.block_time = 100 * sim::kMillisecond;
    auto c = h.spawn_subnet(h.root(), "dur", h.config().root_params, 3,
                            TokenAmount::whole(6), fast);
    EXPECT_TRUE(c.ok());
    child = c.value();
  }

  [[nodiscard]] chain::Epoch parent_checkpoint_epoch() {
    const auto sca = h.root().node(0).sca_state();
    const auto it = sca.subnets.find(child->sa);
    return it == sca.subnets.end() ? 0 : it->second.last_checkpoint_epoch;
  }

  /// Every alive child validator reports the same head as validator 0.
  [[nodiscard]] bool child_converged() const {
    const auto head = child->api_node().chain().head().cid();
    for (std::size_t i = 0; i < child->size(); ++i) {
      if (!child->alive(i)) return false;
      if (child->node(i).chain().head().cid() != head) return false;
    }
    return true;
  }
};

TEST(DurableRecovery, WalReplayRestartRejoinsAndIsNotSlashed) {
  DurableWorld w(101);
  ASSERT_TRUE(w.h.run_until([&] { return w.parent_checkpoint_epoch() >= 5; },
                            60 * sim::kSecond));
  const chain::Epoch pre_crash = w.child->node(2).chain().height();
  ASSERT_GT(pre_crash, 0);

  storage::DiskFault intact;
  intact.kind = storage::DiskFault::Kind::kKeepAll;
  ASSERT_TRUE(w.h.crash_node(*w.child, 2, intact).ok());
  w.h.run_for(2 * sim::kSecond);
  ASSERT_TRUE(w.h.restart_node(*w.child, 2).ok());

  // The WAL held every committed block: recovery replays the whole chain
  // without touching the network.
  const auto& node = w.child->node(2);
  EXPECT_GE(node.recovered_height(), pre_crash);
  EXPECT_GT(node.recovery_stats().records, 0u);
  EXPECT_EQ(node.recovery_stats().corrupt_records, 0u);
  EXPECT_FALSE(node.recovery_stats().torn_tail);

  ASSERT_TRUE(w.h.run_until(
      [&] {
        return w.child_converged() &&
               w.child->node(2).chain().height() > pre_crash;
      },
      60 * sim::kSecond));
  // Its pre-crash production record survived: rejoining must not have
  // produced anything conflicting, so no fraud was ever provable.
  EXPECT_TRUE(w.h.root().node(0).sca_state().slash_records.empty());
}

TEST(DurableRecovery, RestartWhileParentPartitionedRecoversLocally) {
  DurableWorld w(102);
  ASSERT_TRUE(w.h.run_until([&] { return w.parent_checkpoint_epoch() >= 5; },
                            60 * sim::kSecond));

  storage::DiskFault torn;
  torn.kind = storage::DiskFault::Kind::kTornTail;
  ASSERT_TRUE(w.h.crash_node(*w.child, 1, torn).ok());
  // Cut the whole child subnet off from its parent BEFORE the restart:
  // WAL replay must need no network at all.
  w.h.network().set_partition({w.child->node_ids});
  w.h.run_for(2 * sim::kSecond);
  ASSERT_TRUE(w.h.restart_node(*w.child, 1).ok());
  EXPECT_GT(w.child->node(1).recovered_height(), 0);
  EXPECT_GT(w.child->node(1).recovery_stats().records, 0u);

  w.h.run_for(2 * sim::kSecond);
  const chain::Epoch at_heal = w.parent_checkpoint_epoch();
  w.h.network().heal_partition();

  // After heal the checkpoint pipeline resumes past the partition gap.
  ASSERT_TRUE(w.h.run_until(
      [&] { return w.parent_checkpoint_epoch() > at_heal; },
      120 * sim::kSecond));
  ASSERT_TRUE(
      w.h.run_until([&] { return w.child_converged(); }, 60 * sim::kSecond));
  EXPECT_TRUE(w.h.root().node(0).sca_state().slash_records.empty());
}

TEST(DurableRecovery, TwoValidatorsRestartSameEpochWithoutConflict) {
  DurableWorld w(103);
  ASSERT_TRUE(w.h.run_until([&] { return w.parent_checkpoint_epoch() >= 5; },
                            60 * sim::kSecond));

  storage::DiskFault lose;  // power-loss model
  storage::DiskFault flip;
  flip.kind = storage::DiskFault::Kind::kBitFlip;
  ASSERT_TRUE(w.h.crash_node(*w.child, 1, lose).ok());
  ASSERT_TRUE(w.h.crash_node(*w.child, 2, flip).ok());
  w.h.run_for(2 * sim::kSecond);  // one of three: PoA stalls at most heights

  // Both restart at the same instant and replay whatever their disks kept.
  ASSERT_TRUE(w.h.restart_node(*w.child, 1).ok());
  ASSERT_TRUE(w.h.restart_node(*w.child, 2).ok());

  const chain::Epoch stalled = w.child->api_node().chain().height();
  ASSERT_TRUE(w.h.run_until(
      [&] {
        return w.child_converged() &&
               w.child->api_node().chain().height() > stalled + 5;
      },
      120 * sim::kSecond));
  ASSERT_TRUE(w.h.run_until(
      [&] { return w.parent_checkpoint_epoch() > stalled; },
      120 * sim::kSecond));
  EXPECT_TRUE(w.h.root().node(0).sca_state().slash_records.empty());
}

}  // namespace
}  // namespace hc::testing
