// Unit tests for the crypto module: U256 arithmetic, secp256k1 curve ops,
// Schnorr signatures and Merkle trees.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/batchverify.hpp"
#include "crypto/ec.hpp"
#include "crypto/merkle.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sigcache.hpp"
#include "crypto/u256.hpp"

namespace hc::crypto {
namespace {

// ---------------------------------------------------------------- U256

TEST(U256, BytesRoundTrip) {
  const auto bytes = *from_hex(
      "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
  const U256 v = U256::from_be_bytes(bytes);
  EXPECT_EQ(v.to_be_bytes(), bytes);
  EXPECT_EQ(v.to_hex(),
            "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
}

TEST(U256, AddCarryPropagation) {
  U256 max = U256::from_limbs_be(~0ull, ~0ull, ~0ull, ~0ull);
  EXPECT_EQ(max.add_with_carry(U256(1)), 1u);  // wraps to zero with carry
  EXPECT_TRUE(max.is_zero());
}

TEST(U256, SubBorrowPropagation) {
  U256 zero;
  EXPECT_EQ(zero.sub_with_borrow(U256(1)), 1u);
  EXPECT_EQ(zero, U256::from_limbs_be(~0ull, ~0ull, ~0ull, ~0ull));
}

TEST(U256, Comparison) {
  const U256 small(5);
  const U256 big = U256::from_limbs_be(1, 0, 0, 0);
  EXPECT_LT(small, big);
  EXPECT_GT(big, small);
  EXPECT_EQ(small, U256(5));
}

TEST(U256, TopBitAndBit) {
  EXPECT_EQ(U256().top_bit(), -1);
  EXPECT_EQ(U256(1).top_bit(), 0);
  EXPECT_EQ(U256(0x80).top_bit(), 7);
  const U256 high = U256::from_limbs_be(0x8000000000000000ull, 0, 0, 0);
  EXPECT_EQ(high.top_bit(), 255);
  EXPECT_TRUE(high.bit(255));
  EXPECT_FALSE(high.bit(254));
}

TEST(U256, MulWideSmall) {
  auto w = mul_wide(U256(7), U256(6));
  EXPECT_EQ(w.lo, U256(42));
  EXPECT_TRUE(w.hi.is_zero());
}

TEST(U256, MulWideFull) {
  // (2^256 - 1)^2 = 2^512 - 2^257 + 1 → lo = 1, hi = 2^256 - 2 (i.e. ...fffe)
  const U256 max = U256::from_limbs_be(~0ull, ~0ull, ~0ull, ~0ull);
  auto w = mul_wide(max, max);
  EXPECT_EQ(w.lo, U256(1));
  EXPECT_EQ(w.hi, U256::from_limbs_be(~0ull, ~0ull, ~0ull, ~0ull - 1));
}

// ---------------------------------------------------------------- field

TEST(Field, AddSubInverse) {
  const U256 a(12345);
  const U256 b(67890);
  EXPECT_EQ(fp::sub(fp::add(a, b), b), a);
  EXPECT_EQ(fp::sub(a, a), U256());
  // Wraparound: (p - 1) + 2 == 1 (mod p)
  U256 pm1 = fp::P();
  pm1.sub_with_borrow(U256(1));
  EXPECT_EQ(fp::add(pm1, U256(2)), U256(1));
}

TEST(Field, MulMatchesRepeatedAdd) {
  const U256 a(0xdeadbeef);
  U256 sum;
  for (int i = 0; i < 1000; ++i) sum = fp::add(sum, a);
  EXPECT_EQ(fp::mul(a, U256(1000)), sum);
}

TEST(Field, FermatInverse) {
  for (std::uint64_t v : {1ull, 2ull, 977ull, 0xffffffffull}) {
    const U256 a(v);
    EXPECT_EQ(fp::mul(a, fp::inv(a)), U256(1)) << v;
  }
}

TEST(Field, PowBasics) {
  EXPECT_EQ(fp::pow(U256(2), U256(10)), U256(1024));
  EXPECT_EQ(fp::pow(U256(5), U256(0)), U256(1));
  // Fermat: a^(p-1) == 1 (mod p)
  U256 pm1 = fp::P();
  pm1.sub_with_borrow(U256(1));
  EXPECT_EQ(fp::pow(U256(7), pm1), U256(1));
}

TEST(Scalar, AddMulBasics) {
  const U256 a(1000);
  const U256 b(2000);
  EXPECT_EQ(fn::add(a, b), U256(3000));
  EXPECT_EQ(fn::mul(a, b), U256(2000000));
  // n - 1 + 2 == 1 (mod n)
  U256 nm1 = fn::N();
  nm1.sub_with_borrow(U256(1));
  EXPECT_EQ(fn::add(nm1, U256(2)), U256(1));
  EXPECT_EQ(fn::sub(U256(1), U256(2)), nm1);
}

// ---------------------------------------------------------------- curve

TEST(Curve, GeneratorOnCurve) {
  const auto g = Point::generator().to_affine();
  ASSERT_TRUE(g.has_value());
  EXPECT_TRUE(Point::is_on_curve(g->x, g->y));
}

TEST(Curve, KnownScalarMultiple) {
  // 2*G, standard secp256k1 test vector.
  const auto p2 = Point::generator().mul(U256(2)).to_affine();
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->x.to_hex(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(p2->y.to_hex(),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
}

TEST(Curve, DoubleEqualsAdd) {
  const Point& g = Point::generator();
  EXPECT_TRUE(g.doubled().equals(g.add(g)));
  EXPECT_TRUE(g.mul(U256(3)).equals(g.doubled().add(g)));
}

TEST(Curve, MulDistributes) {
  const Point& g = Point::generator();
  // (a + b)G == aG + bG
  const U256 a(123456789);
  const U256 b(987654321);
  EXPECT_TRUE(g.mul(fn::add(a, b)).equals(g.mul(a).add(g.mul(b))));
}

TEST(Curve, OrderAnnihilates) {
  EXPECT_TRUE(Point::generator().mul(fn::N()).is_infinity());
}

TEST(Curve, InfinityIsIdentity) {
  const Point inf;
  const Point& g = Point::generator();
  EXPECT_TRUE(inf.add(g).equals(g));
  EXPECT_TRUE(g.add(inf).equals(g));
  EXPECT_TRUE(inf.is_infinity());
  EXPECT_TRUE(inf.doubled().is_infinity());
}

TEST(Curve, AddInverseGivesInfinity) {
  const Point& g = Point::generator();
  const auto ga = g.to_affine();
  ASSERT_TRUE(ga.has_value());
  const Point neg_g = Point::from_affine(ga->x, fp::sub(U256(), ga->y));
  EXPECT_TRUE(g.add(neg_g).is_infinity());
}

// ---------------------------------------------------------------- schnorr

TEST(Schnorr, SignVerifyRoundTrip) {
  const KeyPair kp = KeyPair::from_label("validator-0");
  const Bytes msg = to_bytes("checkpoint for /root/f0101 at epoch 42");
  const Signature sig = kp.sign(msg);
  EXPECT_TRUE(verify(kp.public_key(), msg, sig));
}

TEST(Schnorr, RejectsWrongMessage) {
  const KeyPair kp = KeyPair::from_label("validator-0");
  const Signature sig = kp.sign(to_bytes("message A"));
  EXPECT_FALSE(verify(kp.public_key(), to_bytes("message B"), sig));
}

TEST(Schnorr, RejectsWrongKey) {
  const KeyPair alice = KeyPair::from_label("alice");
  const KeyPair bob = KeyPair::from_label("bob");
  const Bytes msg = to_bytes("message");
  EXPECT_FALSE(verify(bob.public_key(), msg, alice.sign(msg)));
}

TEST(Schnorr, RejectsTamperedSignature) {
  const KeyPair kp = KeyPair::from_label("validator-1");
  const Bytes msg = to_bytes("message");
  const Signature sig = kp.sign(msg);
  Bytes raw = sig.to_bytes();
  raw[95] ^= 1;  // flip a bit in s
  auto tampered = Signature::from_bytes(raw);
  ASSERT_TRUE(tampered.ok());
  EXPECT_FALSE(verify(kp.public_key(), msg, tampered.value()));
}

TEST(Schnorr, DeterministicSigning) {
  const KeyPair kp = KeyPair::from_label("validator-2");
  const Bytes msg = to_bytes("message");
  EXPECT_EQ(kp.sign(msg), kp.sign(msg));
}

TEST(Schnorr, DistinctSeedsDistinctKeys) {
  EXPECT_NE(KeyPair::from_label("a").public_key(),
            KeyPair::from_label("b").public_key());
}

TEST(Schnorr, PublicKeySerializationRoundTrip) {
  const KeyPair kp = KeyPair::from_label("serialize-me");
  auto pk = PublicKey::from_bytes(kp.public_key().to_bytes());
  ASSERT_TRUE(pk.ok());
  EXPECT_EQ(pk.value(), kp.public_key());
}

TEST(Schnorr, PublicKeyRejectsOffCurvePoint) {
  Bytes junk(64, 0x42);
  EXPECT_FALSE(PublicKey::from_bytes(junk).ok());
}

TEST(Schnorr, SignatureRejectsBadLength) {
  EXPECT_FALSE(Signature::from_bytes(Bytes(95, 0)).ok());
}

TEST(Schnorr, TaggedHashDomainSeparation) {
  const Bytes m = to_bytes("same input");
  EXPECT_NE(tagged_hash("tag-a", {m}), tagged_hash("tag-b", {m}));
}

// ---------------------------------------------------------------- merkle

std::vector<Bytes> make_leaves(int n) {
  std::vector<Bytes> leaves;
  leaves.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    leaves.push_back(to_bytes("leaf-" + std::to_string(i)));
  }
  return leaves;
}

TEST(Merkle, EmptyTreeHasZeroRoot) {
  MerkleTree t({});
  EXPECT_EQ(t.root(), Digest{});
  EXPECT_EQ(t.leaf_count(), 0u);
}

TEST(Merkle, SingleLeaf) {
  const auto leaves = make_leaves(1);
  MerkleTree t(leaves);
  const auto proof = t.prove(0);
  EXPECT_TRUE(proof.empty());
  EXPECT_TRUE(MerkleTree::verify(t.root(), leaves[0], proof));
}

TEST(Merkle, RootChangesWithContent) {
  EXPECT_NE(MerkleTree::root_of(make_leaves(4)),
            MerkleTree::root_of(make_leaves(5)));
  auto leaves = make_leaves(4);
  const Digest before = MerkleTree::root_of(leaves);
  leaves[2][0] ^= 1;
  EXPECT_NE(before, MerkleTree::root_of(leaves));
}

TEST(Merkle, LeafVsNodeDomainSeparation) {
  // A single leaf whose content equals an interior-node preimage must not
  // produce the same root as the two-leaf tree.
  const auto two = make_leaves(2);
  MerkleTree t2(two);
  // Reconstruct what the interior preimage would look like as a leaf.
  Bytes fake;
  fake.push_back(0x01);
  MerkleTree t1({fake});
  EXPECT_NE(t1.root(), t2.root());
}

class MerkleProofSweep : public ::testing::TestWithParam<int> {};

TEST_P(MerkleProofSweep, AllLeavesProvable) {
  const int n = GetParam();
  const auto leaves = make_leaves(n);
  MerkleTree t(leaves);
  for (int i = 0; i < n; ++i) {
    const auto proof = t.prove(static_cast<std::size_t>(i));
    EXPECT_TRUE(MerkleTree::verify(t.root(), leaves[static_cast<std::size_t>(i)],
                                   proof))
        << "n=" << n << " i=" << i;
    // Proof must not verify a different leaf.
    EXPECT_FALSE(
        MerkleTree::verify(t.root(), to_bytes("not-a-leaf"), proof));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                           33, 64, 100));

// ------------------------------------------------- incremental Merkle

std::vector<Digest> leaf_digests_of(const std::vector<Bytes>& leaves) {
  std::vector<Digest> digests;
  digests.reserve(leaves.size());
  for (const auto& leaf : leaves) digests.push_back(merkle_leaf_hash(leaf));
  return digests;
}

class IncrementalMerkleSweep : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalMerkleSweep, AssignMatchesBatchTree) {
  const int n = GetParam();
  const auto leaves = make_leaves(n);
  IncrementalMerkleTree inc;
  inc.assign(leaf_digests_of(leaves));
  EXPECT_EQ(inc.root(), MerkleTree::root_of(leaves));
  EXPECT_EQ(inc.leaf_count(), static_cast<std::size_t>(n));
}

TEST_P(IncrementalMerkleSweep, PointUpdatesMatchRebuild) {
  const int n = GetParam();
  auto leaves = make_leaves(n);
  IncrementalMerkleTree inc;
  inc.assign(leaf_digests_of(leaves));
  // Mutate every third leaf (always including the last: the promoted-node
  // path on odd layers) and update them in one sorted batch.
  std::vector<std::pair<std::size_t, Digest>> changes;
  for (int i = 0; i < n; i += 3) {
    leaves[static_cast<std::size_t>(i)].push_back(0xAB);
    changes.emplace_back(static_cast<std::size_t>(i),
                         merkle_leaf_hash(leaves[static_cast<std::size_t>(i)]));
  }
  if (n > 1 && (n - 1) % 3 != 0) {
    leaves[static_cast<std::size_t>(n - 1)].push_back(0xCD);
    changes.emplace_back(
        static_cast<std::size_t>(n - 1),
        merkle_leaf_hash(leaves[static_cast<std::size_t>(n - 1)]));
  }
  const std::uint64_t before = inc.node_hashes();
  inc.update(changes);
  EXPECT_EQ(inc.root(), MerkleTree::root_of(leaves)) << "n=" << n;
  if (n > 1) {
    // O(k log N) bound: each changed path is at most ceil(log2 n) nodes.
    std::size_t levels = 0;
    for (std::size_t width = static_cast<std::size_t>(n); width > 1;
         width = (width + 1) / 2) {
      ++levels;
    }
    EXPECT_LE(inc.node_hashes() - before, changes.size() * levels);
  }
}

TEST_P(IncrementalMerkleSweep, ProofsMatchBatchTree) {
  const int n = GetParam();
  const auto leaves = make_leaves(n);
  IncrementalMerkleTree inc;
  inc.assign(leaf_digests_of(leaves));
  MerkleTree batch(leaves);
  for (int i = 0; i < n; ++i) {
    const auto proof = inc.prove(static_cast<std::size_t>(i));
    EXPECT_EQ(proof, batch.prove(static_cast<std::size_t>(i)));
    EXPECT_TRUE(MerkleTree::verify(inc.root(),
                                   leaves[static_cast<std::size_t>(i)], proof))
        << "n=" << n << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IncrementalMerkleSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                           33, 64, 100));

TEST(IncrementalMerkle, EmptyAndReassign) {
  IncrementalMerkleTree inc;
  EXPECT_EQ(inc.root(), Digest{});
  EXPECT_EQ(inc.leaf_count(), 0u);
  const auto leaves = make_leaves(6);
  inc.assign(leaf_digests_of(leaves));
  EXPECT_EQ(inc.root(), MerkleTree::root_of(leaves));
  inc.assign({});
  EXPECT_EQ(inc.root(), Digest{});
  EXPECT_EQ(inc.leaf_count(), 0u);
}

TEST(IncrementalMerkle, SiblingUpdatesShareOneParentHash) {
  // Updating both children of one node must hash their shared ancestors
  // once, not twice: 8 leaves -> paths of 3, two sibling leaves share all
  // 3 interior nodes.
  auto leaves = make_leaves(8);
  IncrementalMerkleTree inc;
  inc.assign(leaf_digests_of(leaves));
  leaves[4].push_back(0x01);
  leaves[5].push_back(0x02);
  const std::uint64_t before = inc.node_hashes();
  inc.update({{4, merkle_leaf_hash(leaves[4])}, {5, merkle_leaf_hash(leaves[5])}});
  EXPECT_EQ(inc.node_hashes() - before, 3u);
  EXPECT_EQ(inc.root(), MerkleTree::root_of(leaves));
}

// ----------------------------------------------------------- batch verify

TEST(BatchVerify, MixedValidAndInvalidFlags) {
  std::vector<KeyPair> keys;
  std::vector<Bytes> msgs;
  std::vector<Signature> sigs;
  for (int i = 0; i < 8; ++i) {
    keys.push_back(KeyPair::from_label("batch-" + std::to_string(i)));
    msgs.push_back(to_bytes("payload-" + std::to_string(i)));
    sigs.push_back(keys.back().sign(msgs.back()));
  }
  // Corrupt two entries: a flipped signature bit and a swapped message.
  Bytes raw = sigs[2].to_bytes();
  raw[95] ^= 1;
  sigs[2] = Signature::from_bytes(raw).value();
  msgs[5] = to_bytes("not-what-was-signed");

  BatchVerifier batch;
  for (int i = 0; i < 8; ++i) {
    batch.add(keys[static_cast<std::size_t>(i)].public_key(),
              msgs[static_cast<std::size_t>(i)],
              sigs[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(batch.pending(), 8u);
  const std::vector<bool> ok = batch.flush();
  ASSERT_EQ(ok.size(), 8u);
  EXPECT_EQ(batch.pending(), 0u);
  for (int i = 0; i < 8; ++i) {
    const bool expected = (i != 2 && i != 5);
    EXPECT_EQ(ok[static_cast<std::size_t>(i)], expected) << "entry " << i;
    // Batched outcomes must agree with the scalar path exactly.
    EXPECT_EQ(verify(keys[static_cast<std::size_t>(i)].public_key(),
                     msgs[static_cast<std::size_t>(i)],
                     sigs[static_cast<std::size_t>(i)]),
              expected);
  }
}

TEST(BatchVerify, EmptyFlushIsEmpty) {
  BatchVerifier batch;
  EXPECT_TRUE(batch.flush().empty());
}

TEST(BatchVerify, SecondFlushServedFromCache) {
  const KeyPair kp = KeyPair::from_label("batch-cache");
  const Bytes msg = to_bytes("cached-once");
  const Signature sig = kp.sign(msg);

  BatchVerifier first;
  first.add(kp.public_key(), msg, sig);
  ASSERT_EQ(first.flush(), std::vector<bool>{true});

  // Same triple again: the batched lookup must hit, so the process-wide
  // miss count stays put.
  const std::uint64_t misses = SigCache::instance().misses();
  BatchVerifier second;
  second.add(kp.public_key(), msg, sig);
  EXPECT_EQ(second.flush(), std::vector<bool>{true});
  EXPECT_EQ(SigCache::instance().misses(), misses);
}

TEST(BatchVerify, NegativeOutcomesAreCachedToo) {
  const KeyPair kp = KeyPair::from_label("batch-neg");
  const Bytes msg = to_bytes("never-signed");
  Bytes raw = kp.sign(msg).to_bytes();
  raw[64] ^= 1;  // corrupt R
  const Signature bad = Signature::from_bytes(raw).value();

  BatchVerifier first;
  first.add(kp.public_key(), msg, bad);
  ASSERT_EQ(first.flush(), std::vector<bool>{false});

  const std::uint64_t misses = SigCache::instance().misses();
  BatchVerifier second;
  second.add(kp.public_key(), msg, bad);
  EXPECT_EQ(second.flush(), std::vector<bool>{false});
  EXPECT_EQ(SigCache::instance().misses(), misses);
}

}  // namespace
}  // namespace hc::crypto
