// Parallel-execution determinism: every chaos scenario must produce
// byte-identical results at any worker-thread count (DESIGN.md §11). The
// ChaosRunner fingerprint covers per-subnet state roots, the full metrics
// JSON export and the canonicalized trace export, so "equal fingerprints"
// means the N-thread run is observationally indistinguishable from the
// sequential one — the bar the ParallelExecutor's conservative windows and
// barrier-ordered cross-lane delivery are designed to meet.
#include <gtest/gtest.h>

#include <string>

#include "chaos/runner.hpp"
#include "net/envelope.hpp"

namespace hc::chaos {
namespace {

RunnerConfig fast_config(std::size_t threads) {
  RunnerConfig cfg;
  cfg.children = 2;
  cfg.nested = 0;
  cfg.warmup = sim::kSecond;
  cfg.fault_window = 8 * sim::kSecond;
  cfg.settle = 180 * sim::kSecond;
  cfg.threads = threads;
  return cfg;
}

Scenario find_scenario(const std::vector<Scenario>& scenarios,
                       const std::string& name) {
  for (const auto& s : scenarios) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "no such scenario: " << name;
  return {};
}

RunnerConfig recovery_config(std::size_t threads) {
  RunnerConfig cfg = fast_config(threads);
  cfg.durability = true;
  return cfg;
}

/// Run `scenario` sequentially, then at 2 and 4 worker threads, and demand
/// bit-for-bit equality of every deterministic artifact.
void expect_thread_invariant_cfg(RunnerConfig (*make)(std::size_t),
                                 const Scenario& scenario,
                                 std::uint64_t seed) {
  const RunResult ref = ChaosRunner(make(1)).run(scenario, seed);
  ASSERT_TRUE(ref.ok()) << "1-thread reference failed: " << ref.summary();
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    const RunResult r = ChaosRunner(make(threads)).run(scenario, seed);
    ASSERT_TRUE(r.ok()) << scenario.name << " @" << threads << " threads: "
                        << r.summary();
    EXPECT_EQ(ref.state_roots, r.state_roots)
        << scenario.name << ": state roots diverged at " << threads
        << " threads";
    EXPECT_EQ(ref.metrics_json, r.metrics_json)
        << scenario.name << ": metrics diverged at " << threads << " threads";
    EXPECT_EQ(ref.fingerprint, r.fingerprint)
        << scenario.name << ": fingerprint diverged at " << threads
        << " threads";
  }
}

void expect_thread_invariant(const Scenario& scenario, std::uint64_t seed) {
  expect_thread_invariant_cfg(fast_config, scenario, seed);
}

TEST(ParallelDeterminism, EnvelopeDecodeCacheIsTransparent) {
  // The decode-once envelope cache is a pure optimization: a same-seed run
  // with the cache disabled (every replica re-parses) must be byte-
  // identical to the cached run across state roots, the full metrics
  // export and the fingerprint.
  const Scenario scenario =
      find_scenario(ChaosRunner::standard_scenarios(), "baseline");
  const RunResult cached = ChaosRunner(fast_config(1)).run(scenario, 21);
  ASSERT_TRUE(cached.ok()) << cached.summary();

  struct CacheOff {
    CacheOff() { net::Envelope::set_cache_enabled(false); }
    ~CacheOff() { net::Envelope::set_cache_enabled(true); }
  } off_guard;
  const RunResult uncached = ChaosRunner(fast_config(1)).run(scenario, 21);
  ASSERT_TRUE(uncached.ok()) << uncached.summary();

  EXPECT_EQ(cached.state_roots, uncached.state_roots);
  EXPECT_EQ(cached.metrics_json, uncached.metrics_json);
  EXPECT_EQ(cached.fingerprint, uncached.fingerprint);
}

TEST(ParallelDeterminism, EnvelopeDecodeSharingAcrossThreads) {
  // 1/2/4-thread byte-identity with the decode cache live: worker lanes
  // racing decoded<T>() insertions (cross-subnet resolution envelopes) must
  // not perturb any deterministic artifact — and the cache must actually be
  // exercised, or this test would vacuously pass on a dead cache.
  const std::uint64_t hits_before = net::Envelope::decode_hits();
  expect_thread_invariant(
      find_scenario(ChaosRunner::standard_scenarios(), "baseline"), 23);
  EXPECT_GT(net::Envelope::decode_hits(), hits_before);
}

TEST(ParallelDeterminism, Baseline) {
  expect_thread_invariant(
      find_scenario(ChaosRunner::standard_scenarios(), "baseline"), 11);
}

TEST(ParallelDeterminism, Loss20) {
  expect_thread_invariant(
      find_scenario(ChaosRunner::standard_scenarios(), "loss-20"), 11);
}

TEST(ParallelDeterminism, PartitionChild) {
  expect_thread_invariant(
      find_scenario(ChaosRunner::standard_scenarios(), "partition-child"),
      11);
}

TEST(ParallelDeterminism, CrashSigner) {
  expect_thread_invariant(
      find_scenario(ChaosRunner::standard_scenarios(), "crash-signer"), 11);
}

TEST(ParallelDeterminism, CrashParentView) {
  expect_thread_invariant(
      find_scenario(ChaosRunner::standard_scenarios(), "crash-parent-view"),
      11);
}

TEST(ParallelDeterminism, GrayValidator) {
  expect_thread_invariant(
      find_scenario(ChaosRunner::standard_scenarios(), "gray-validator"), 11);
}

TEST(ParallelDeterminism, DupReorderRoot) {
  expect_thread_invariant(
      find_scenario(ChaosRunner::standard_scenarios(), "dup-reorder-root"),
      11);
}

TEST(ParallelDeterminism, SurgeOverload) {
  // Overload shedding is part of the deterministic surface: the surge,
  // every mempool eviction, and every kOverloaded rejection must replay
  // bit-for-bit at any worker count (DESIGN.md §14).
  expect_thread_invariant(
      find_scenario(ChaosRunner::standard_scenarios(), "surge-overload"),
      11);
}

TEST(ParallelDeterminism, ByzantineEquivocate) {
  expect_thread_invariant(
      find_scenario(ChaosRunner::byzantine_scenarios(), "byz-equivocate"),
      11);
}

TEST(ParallelDeterminism, RecoverTornTail) {
  // Durable WAL appends, seeded disk damage, recovery replay and the
  // resync histogram all join the deterministic surface (DESIGN.md §15):
  // the whole crash/recover cycle must replay bit-for-bit at any worker
  // count.
  expect_thread_invariant_cfg(
      recovery_config,
      find_scenario(ChaosRunner::recovery_scenarios(), "recover-torn-tail"),
      11);
}

TEST(ParallelDeterminism, RecoverDiskLost) {
  expect_thread_invariant_cfg(
      recovery_config,
      find_scenario(ChaosRunner::recovery_scenarios(), "recover-disk-lost"),
      11);
}

}  // namespace
}  // namespace hc::chaos
