// Unit tests for the simulated P2P network: direct sends, gossip pubsub
// propagation/dedup, fault injection (drops, crashes, partitions).
#include <gtest/gtest.h>

#include <array>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/hash.hpp"
#include "net/network.hpp"

namespace hc::net {
namespace {

struct NetFixture : ::testing::Test {
  sim::Scheduler sched;
  Network net{sched, sim::LatencyModel(1000, 0), /*seed=*/1};

  std::vector<NodeId> add_nodes(int n) {
    std::vector<NodeId> ids;
    for (int i = 0; i < n; ++i) ids.push_back(net.add_node());
    return ids;
  }
};

TEST_F(NetFixture, DirectSendDelivers) {
  auto ids = add_nodes(2);
  Bytes received;
  NodeId from_seen = 99;
  net.set_direct_handler(ids[1], [&](NodeId from, const Bytes& b) {
    from_seen = from;
    received = b;
  });
  net.send(ids[0], ids[1], to_bytes("hello"));
  sched.run_all();
  EXPECT_EQ(received, to_bytes("hello"));
  EXPECT_EQ(from_seen, ids[0]);
  EXPECT_EQ(sched.now(), 1000);  // latency applied
}

TEST_F(NetFixture, SendToNodeWithoutHandlerIsDropped) {
  auto ids = add_nodes(2);
  net.send(ids[0], ids[1], to_bytes("x"));
  sched.run_all();
  EXPECT_EQ(net.stats().messages_delivered, 0u);
}

TEST_F(NetFixture, PubSubReachesAllSubscribers) {
  auto ids = add_nodes(10);
  int deliveries = 0;
  for (NodeId id : ids) {
    net.subscribe(id, "subnet/root");
    net.set_topic_handler(id, [&](NodeId, const std::string& topic,
                                  const Envelope& b) {
      EXPECT_EQ(topic, "subnet/root");
      EXPECT_EQ(b.bytes(), to_bytes("block-1"));
      ++deliveries;
    });
  }
  net.publish(ids[0], "subnet/root", to_bytes("block-1"));
  sched.run_all();
  EXPECT_EQ(deliveries, 9);  // everyone but the publisher
}

TEST_F(NetFixture, PublisherNotDeliveredOwnMessage) {
  auto ids = add_nodes(3);
  int self_deliveries = 0;
  for (NodeId id : ids) net.subscribe(id, "t");
  net.set_topic_handler(ids[0], [&](NodeId, const std::string&, const Envelope&) {
    ++self_deliveries;
  });
  net.publish(ids[0], "t", to_bytes("m"));
  sched.run_all();
  EXPECT_EQ(self_deliveries, 0);
}

TEST_F(NetFixture, NonSubscriberCanPublishIntoTopic) {
  auto ids = add_nodes(4);
  // Nodes 1..3 subscribe; node 0 (foreign subnet) publishes in.
  int deliveries = 0;
  for (int i = 1; i < 4; ++i) {
    net.subscribe(ids[static_cast<std::size_t>(i)], "subnet/child");
    net.set_topic_handler(ids[static_cast<std::size_t>(i)],
                          [&](NodeId, const std::string&, const Envelope&) {
                            ++deliveries;
                          });
  }
  net.publish(ids[0], "subnet/child", to_bytes("push"));
  sched.run_all();
  EXPECT_EQ(deliveries, 3);
}

TEST_F(NetFixture, GossipPropagatesThroughLargeTopic) {
  // With mesh degree 6 and 64 subscribers, delivery requires multiple hops.
  auto ids = add_nodes(64);
  int deliveries = 0;
  for (NodeId id : ids) {
    net.subscribe(id, "big");
    net.set_topic_handler(
        id, [&](NodeId, const std::string&, const Envelope&) { ++deliveries; });
  }
  net.publish(ids[0], "big", to_bytes("wide"));
  sched.run_all();
  EXPECT_EQ(deliveries, 63);
  EXPECT_GT(net.stats().gossip_duplicates, 0u);  // real gossip overhead
  // Multi-hop: total elapsed time exceeds one hop's latency.
  EXPECT_GT(sched.now(), 1000);
}

TEST_F(NetFixture, TopicsAreIsolated) {
  auto ids = add_nodes(4);
  int wrong = 0;
  net.subscribe(ids[1], "a");
  net.subscribe(ids[2], "b");
  net.set_topic_handler(ids[2], [&](NodeId, const std::string&, const Envelope&) {
    ++wrong;
  });
  net.set_topic_handler(ids[1], [](NodeId, const std::string&, const Envelope&) {});
  net.publish(ids[0], "a", to_bytes("m"));
  sched.run_all();
  EXPECT_EQ(wrong, 0);
}

TEST_F(NetFixture, UnsubscribeStopsDelivery) {
  auto ids = add_nodes(3);
  int deliveries = 0;
  for (NodeId id : ids) {
    net.subscribe(id, "t");
    net.set_topic_handler(
        id, [&](NodeId, const std::string&, const Envelope&) { ++deliveries; });
  }
  net.unsubscribe(ids[2], "t");
  net.publish(ids[0], "t", to_bytes("m"));
  sched.run_all();
  EXPECT_EQ(deliveries, 1);  // only ids[1]
}

TEST_F(NetFixture, DownNodeNeitherSendsNorReceives) {
  auto ids = add_nodes(2);
  int deliveries = 0;
  net.set_direct_handler(ids[1], [&](NodeId, const Bytes&) { ++deliveries; });
  net.set_node_down(ids[1], true);
  net.send(ids[0], ids[1], to_bytes("x"));
  sched.run_all();
  EXPECT_EQ(deliveries, 0);
  EXPECT_EQ(net.stats().messages_dropped, 1u);

  net.set_node_down(ids[1], false);
  net.send(ids[0], ids[1], to_bytes("y"));
  sched.run_all();
  EXPECT_EQ(deliveries, 1);
}

TEST_F(NetFixture, CrashMidFlightMessageNotDelivered) {
  auto ids = add_nodes(2);
  int deliveries = 0;
  net.set_direct_handler(ids[1], [&](NodeId, const Bytes&) { ++deliveries; });
  net.send(ids[0], ids[1], to_bytes("x"));  // in flight (1ms latency)
  sched.schedule(500, [&] { net.set_node_down(ids[1], true); });
  sched.run_all();
  EXPECT_EQ(deliveries, 0);
}

TEST_F(NetFixture, PartitionBlocksCrossGroupTraffic) {
  auto ids = add_nodes(4);
  int deliveries = 0;
  net.set_direct_handler(ids[2], [&](NodeId, const Bytes&) { ++deliveries; });
  net.set_direct_handler(ids[1], [&](NodeId, const Bytes&) { ++deliveries; });
  net.set_partition({{ids[0], ids[1]}, {ids[2], ids[3]}});
  net.send(ids[0], ids[2], to_bytes("cross"));  // blocked
  net.send(ids[0], ids[1], to_bytes("within"));  // allowed
  sched.run_all();
  EXPECT_EQ(deliveries, 1);

  net.heal_partition();
  net.send(ids[0], ids[2], to_bytes("cross-again"));
  sched.run_all();
  EXPECT_EQ(deliveries, 2);
}

TEST_F(NetFixture, NodesOutsideAllPartitionGroupsStayConnected) {
  auto ids = add_nodes(4);
  int deliveries = 0;
  for (NodeId id : ids) {
    net.set_direct_handler(id, [&](NodeId, const Bytes&) { ++deliveries; });
  }
  // Only nodes 0 and 1 are in a named group; 2 and 3 are unassigned and
  // must keep talking to each other (but not to grouped nodes).
  net.set_partition({{ids[0], ids[1]}});
  net.send(ids[2], ids[3], to_bytes("peer-to-peer"));
  net.send(ids[2], ids[0], to_bytes("into the group"));
  sched.run_all();
  EXPECT_EQ(deliveries, 1);
}

TEST_F(NetFixture, DropRateLosesRoughlyThatFraction) {
  auto ids = add_nodes(2);
  int deliveries = 0;
  net.set_direct_handler(ids[1], [&](NodeId, const Bytes&) { ++deliveries; });
  net.set_drop_rate(0.5);
  for (int i = 0; i < 1000; ++i) net.send(ids[0], ids[1], to_bytes("m"));
  sched.run_all();
  EXPECT_GT(deliveries, 400);
  EXPECT_LT(deliveries, 600);
}

TEST_F(NetFixture, StatsTrackTraffic) {
  auto ids = add_nodes(2);
  net.set_direct_handler(ids[1], [](NodeId, const Bytes&) {});
  net.send(ids[0], ids[1], Bytes(100, 0));
  sched.run_all();
  EXPECT_EQ(net.stats().messages_sent, 1u);
  EXPECT_EQ(net.stats().bytes_sent, 100u);
  EXPECT_EQ(net.stats().messages_delivered, 1u);
  net.reset_stats();
  EXPECT_EQ(net.stats().messages_sent, 0u);
}

// ------------------------------------------------- fault-rule injection

TEST_F(NetFixture, DropRateIsClampedToUnitInterval) {
  net.set_drop_rate(7.5);
  EXPECT_EQ(net.drop_rate(), 1.0);
  net.set_drop_rate(-2.0);
  EXPECT_EQ(net.drop_rate(), 0.0);
}

TEST(NetConfig, InvalidGossipConfigIsRejected) {
  sim::Scheduler sched;
  GossipConfig no_mesh;
  no_mesh.mesh_degree = 0;
  EXPECT_THROW(Network(sched, sim::LatencyModel(1000, 0), 1, no_mesh),
               std::invalid_argument);
  GossipConfig no_hops;
  no_hops.max_hops = 0;
  EXPECT_THROW(Network(sched, sim::LatencyModel(1000, 0), 1, no_hops),
               std::invalid_argument);
}

TEST_F(NetFixture, LinkFaultDropsOnlyThatDirection) {
  auto ids = add_nodes(2);
  int forward = 0;
  int backward = 0;
  net.set_direct_handler(ids[1], [&](NodeId, const Bytes&) { ++forward; });
  net.set_direct_handler(ids[0], [&](NodeId, const Bytes&) { ++backward; });
  LinkFault f;
  f.drop = 1.0;
  net.set_link_fault(ids[0], ids[1], f);
  for (int i = 0; i < 20; ++i) {
    net.send(ids[0], ids[1], to_bytes("fwd"));
    net.send(ids[1], ids[0], to_bytes("bwd"));
  }
  sched.run_all();
  EXPECT_EQ(forward, 0);
  EXPECT_EQ(backward, 20);
  EXPECT_EQ(net.stats().dropped_link_rule, 20u);

  net.clear_link_fault(ids[0], ids[1]);
  net.send(ids[0], ids[1], to_bytes("fwd"));
  sched.run_all();
  EXPECT_EQ(forward, 1);
}

TEST_F(NetFixture, NodeFaultDuplicatesTransmissions) {
  auto ids = add_nodes(2);
  int deliveries = 0;
  net.set_direct_handler(ids[1], [&](NodeId, const Bytes&) { ++deliveries; });
  LinkFault f;
  f.duplicate = 1.0;
  net.set_node_fault(ids[0], f);
  for (int i = 0; i < 10; ++i) net.send(ids[0], ids[1], to_bytes("m"));
  sched.run_all();
  EXPECT_EQ(deliveries, 20);
  EXPECT_EQ(net.stats().messages_duplicated, 10u);

  net.clear_node_fault(ids[0]);
  net.send(ids[0], ids[1], to_bytes("m"));
  sched.run_all();
  EXPECT_EQ(deliveries, 21);
}

TEST_F(NetFixture, ExtraDelayAndJitterSlowTheLink) {
  auto ids = add_nodes(2);
  sim::Time delivered_at = 0;
  net.set_direct_handler(ids[1],
                         [&](NodeId, const Bytes&) { delivered_at = sched.now(); });
  LinkFault f;
  f.extra_delay = 5000;
  net.set_link_fault(ids[0], ids[1], f);
  net.send(ids[0], ids[1], to_bytes("slow"));
  sched.run_all();
  // Base latency 1000 (zero jitter model) + 5000 fixed extra.
  EXPECT_EQ(delivered_at, 6000);
}

TEST_F(NetFixture, ReorderJitterCanInvertBackToBackSends) {
  auto ids = add_nodes(2);
  std::vector<std::string> order;
  net.set_direct_handler(ids[1], [&](NodeId, const Bytes& b) {
    order.push_back(std::string(b.begin(), b.end()));
  });
  LinkFault f;
  f.reorder_jitter = 50000;
  net.set_link_fault(ids[0], ids[1], f);
  for (int i = 0; i < 16; ++i) {
    net.send(ids[0], ids[1], to_bytes("a" + std::to_string(i)));
  }
  sched.run_all();
  ASSERT_EQ(order.size(), 16u);
  // With jitter far above the base latency, strict FIFO order is (nearly)
  // impossible; assert at least one inversion happened.
  std::vector<std::string> fifo;
  for (int i = 0; i < 16; ++i) fifo.push_back("a" + std::to_string(i));
  EXPECT_NE(order, fifo);
}

TEST_F(NetFixture, DropsAreAttributedToTheirReason) {
  auto ids = add_nodes(4);
  net.set_direct_handler(ids[1], [](NodeId, const Bytes&) {});
  net.set_direct_handler(ids[3], [](NodeId, const Bytes&) {});

  net.set_node_down(ids[1], true);
  net.send(ids[0], ids[1], to_bytes("to-down"));
  net.set_node_down(ids[1], false);

  net.set_partition({{ids[0], ids[1]}, {ids[2], ids[3]}});
  net.send(ids[0], ids[3], to_bytes("cross-partition"));
  net.heal_partition();

  LinkFault f;
  f.drop = 1.0;
  net.set_link_fault(ids[0], ids[3], f);
  net.send(ids[0], ids[3], to_bytes("gray"));
  net.clear_fault_rules();

  net.set_drop_rate(1.0);
  net.send(ids[0], ids[3], to_bytes("loss"));
  net.set_drop_rate(0.0);

  sched.run_all();
  EXPECT_EQ(net.stats().dropped_node_down, 1u);
  EXPECT_EQ(net.stats().dropped_partition, 1u);
  EXPECT_EQ(net.stats().dropped_link_rule, 1u);
  EXPECT_EQ(net.stats().dropped_random_loss, 1u);
  EXPECT_EQ(net.stats().messages_dropped, 4u);
}

TEST(NetQueue, PolicyShedsAreSeparatedFromFaultDrops) {
  // One fault drop (down endpoint) and a flood past a bounded delivery
  // queue must land in DIFFERENT ledgers: sheds are deliberate policy,
  // drops are injected faults (DESIGN.md §14).
  sim::Scheduler sched;
  GossipConfig gc;
  gc.node_queue.max_depth = 4;
  gc.node_queue.service_time = 100;
  Network net(sched, sim::LatencyModel(1000, 0), /*seed=*/1, gc);
  const NodeId a = net.add_node();
  const NodeId b = net.add_node();
  int delivered = 0;
  net.set_direct_handler(b, [&](NodeId, const Bytes&) { ++delivered; });

  net.set_node_down(b, true);
  net.send(a, b, to_bytes("to-down"));
  sched.run_all();
  net.set_node_down(b, false);

  // Zero jitter: all 12 arrive at the same instant, but the queue admits
  // only max_depth of them; the rest are shed at the receiver.
  for (int i = 0; i < 12; ++i) {
    net.send(a, b, to_bytes("m" + std::to_string(i)));
  }
  sched.run_all();

  const auto s = net.stats();
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(s.dropped_node_queue_cap, 8u);
  EXPECT_EQ(s.dropped_node_down, 1u);
  EXPECT_EQ(s.policy_sheds(), 8u);
  EXPECT_EQ(s.fault_drops(), 1u);
  EXPECT_EQ(s.messages_dropped, 9u);  // total still covers both ledgers
  EXPECT_EQ(s.queue_peak_depth, 4u);
  EXPECT_TRUE(is_policy_shed(DropReason::kNodeQueueCap));
  EXPECT_TRUE(is_policy_shed(DropReason::kTopicQueueCap));
  EXPECT_FALSE(is_policy_shed(DropReason::kNodeDown));
  EXPECT_FALSE(is_policy_shed(DropReason::kRandomLoss));
}

TEST(NetQueue, TopicCapShedsGossipButLeavesDirectTrafficAlone) {
  sim::Scheduler sched;
  GossipConfig gc;
  gc.node_queue.topic_max_depth = 2;
  gc.node_queue.service_time = 100;
  Network net(sched, sim::LatencyModel(1000, 0), /*seed=*/1, gc);
  std::vector<NodeId> ids;
  for (int i = 0; i < 2; ++i) ids.push_back(net.add_node());
  int gossiped = 0;
  int direct = 0;
  net.subscribe(ids[0], "t");
  net.subscribe(ids[1], "t");
  net.set_topic_handler(
      ids[1], [&](NodeId, const std::string&, const Envelope&) { ++gossiped; });
  net.set_direct_handler(ids[1], [&](NodeId, const Bytes&) { ++direct; });
  for (int i = 0; i < 6; ++i) {
    net.publish(ids[0], "t", to_bytes("g" + std::to_string(i)));
    net.send(ids[0], ids[1], to_bytes("d" + std::to_string(i)));
  }
  sched.run_all();
  EXPECT_EQ(gossiped, 2);
  EXPECT_EQ(direct, 6);  // per-topic cap never touches direct sends
  EXPECT_EQ(net.stats().dropped_topic_queue_cap, 4u);
  EXPECT_EQ(net.stats().policy_sheds(), 4u);
  EXPECT_EQ(net.stats().fault_drops(), 0u);
}

TEST(NetQueue, CapsWithoutServiceTimeAreRejected) {
  sim::Scheduler sched;
  GossipConfig gc;
  gc.node_queue.max_depth = 8;  // bounded but service_time == 0
  EXPECT_THROW(Network(sched, sim::LatencyModel(1000, 0), 1, gc),
               std::invalid_argument);
}

TEST_F(NetFixture, ResetNodeForgetsSubscriptionsAndHandlers) {
  auto ids = add_nodes(3);
  int deliveries = 0;
  for (NodeId id : ids) {
    net.subscribe(id, "t");
    net.set_topic_handler(id, [&](NodeId, const std::string&, const Envelope&) {
      ++deliveries;
    });
  }
  net.reset_node(ids[2]);
  EXPECT_FALSE(net.subscribed(ids[2], "t"));
  net.publish(ids[0], "t", to_bytes("m"));
  sched.run_all();
  EXPECT_EQ(deliveries, 1);  // only ids[1] still listens
}

// ------------------------------------------------------------- envelopes

/// Minimal decodable payload for envelope tests.
struct Ping {
  std::uint64_t seq = 0;
  std::string note;
  void encode_to(Encoder& e) const { e.varint(seq).str(note); }
  static Result<Ping> decode_from(Decoder& d) {
    Ping p;
    HC_TRY(seq, d.varint());
    HC_TRY(note, d.str());
    p.seq = seq;
    p.note = std::move(note);
    return p;
  }
  bool operator==(const Ping&) const = default;
};

TEST(Envelope, DecodeOnceSharesOneObject) {
  const Ping ping{42, "shared"};
  Envelope env(encode(ping));
  const std::uint64_t misses0 = Envelope::decode_misses();
  const std::uint64_t hits0 = Envelope::decode_hits();

  auto first = env.decoded<Ping>();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first.value(), ping);
  // Ten more replicas decode the same envelope: zero additional parses,
  // and every reader sees the SAME object identity.
  for (int i = 0; i < 10; ++i) {
    auto again = env.decoded<Ping>();
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value().get(), first.value().get());
  }
  EXPECT_EQ(Envelope::decode_misses() - misses0, 1u);
  EXPECT_EQ(Envelope::decode_hits() - hits0, 10u);
}

TEST(Envelope, DecodeFailureIsNotCachedAsSuccess) {
  Envelope env(to_bytes("\xff\xff garbage"));
  EXPECT_FALSE(env.decoded<Ping>().ok());
  EXPECT_FALSE(env.decoded<Ping>().ok());  // still fails, no stale cache
}

TEST(Envelope, ContentHashIsMemoizedSha256) {
  const Bytes payload = to_bytes("hash-me");
  Envelope env(payload);
  const Digest& d1 = env.content_hash();
  EXPECT_EQ(d1, Sha256::hash(payload));
  EXPECT_EQ(&env.content_hash(), &d1);  // same storage, computed once
}

TEST(Envelope, GossipSubscribersShareOneDecode) {
  sim::Scheduler sched;
  Network net(sched, sim::LatencyModel(1000, 0), /*seed=*/5);
  std::vector<NodeId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(net.add_node());
  int deliveries = 0;
  Ping seen{};
  for (NodeId id : ids) {
    net.subscribe(id, "t");
    net.set_topic_handler(
        id, [&](NodeId, const std::string&, const Envelope& env) {
          auto decoded = env.decoded<Ping>();
          ASSERT_TRUE(decoded.ok());
          seen = *decoded.value();
          ++deliveries;
        });
  }
  const std::uint64_t misses0 = Envelope::decode_misses();
  net.publish(ids[0], "t", encode(Ping{7, "one-parse"}));
  sched.run_all();
  EXPECT_EQ(deliveries, 7);
  EXPECT_EQ(seen, (Ping{7, "one-parse"}));
  // 7 subscriber decodes of one published payload: exactly one parse.
  EXPECT_EQ(Envelope::decode_misses() - misses0, 1u);
}

TEST(Envelope, ConcurrentDecodeRaceYieldsOneValue) {
  // Cross-lane envelopes may race decoded<T>(); every thread must get a
  // valid, equal object and the cache must settle on one identity.
  for (int round = 0; round < 20; ++round) {
    Envelope env(encode(Ping{99, "raced"}));
    std::vector<std::thread> threads;
    std::array<std::shared_ptr<const Ping>, 4> results{};
    for (std::size_t t = 0; t < results.size(); ++t) {
      threads.emplace_back([&env, &results, t] {
        auto r = env.decoded<Ping>();
        if (r.ok()) results[t] = r.value();
      });
    }
    for (auto& th : threads) th.join();
    for (const auto& r : results) {
      ASSERT_NE(r, nullptr);
      EXPECT_EQ(*r, (Ping{99, "raced"}));
    }
    // After the race, later readers all see one settled identity.
    auto settled = env.decoded<Ping>();
    ASSERT_TRUE(settled.ok());
    auto again = env.decoded<Ping>();
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(settled.value().get(), again.value().get());
  }
}

// -------------------------------------------- physical vs logical bytes

TEST_F(NetFixture, PhysicalBytesNeverExceedLogical) {
  auto ids = add_nodes(16);
  for (NodeId id : ids) {
    net.subscribe(id, "wide");
    net.set_topic_handler(id,
                          [](NodeId, const std::string&, const Envelope&) {});
  }
  net.publish(ids[0], "wide", Bytes(512, 0xab));
  net.send(ids[0], ids[1], Bytes(64, 0xcd));
  sched.run_all();
  const Network::Stats s = net.stats();
  EXPECT_GT(s.bytes_physical, 0u);
  // Fan-out hops are pointer copies: the payload materializes once per
  // publish/send but is accounted logically on every hop.
  EXPECT_LE(s.bytes_physical, s.bytes_sent);
  EXPECT_LT(s.bytes_physical, s.bytes_sent);  // gossip actually fanned out
}

TEST_F(NetFixture, PublishWithNoAudienceCountsNoPhysicalBytes) {
  auto ids = add_nodes(2);
  net.subscribe(ids[0], "lonely");  // publisher is the only subscriber
  net.publish(ids[0], "lonely", Bytes(128, 0x11));
  sched.run_all();
  EXPECT_EQ(net.stats().bytes_physical, 0u);
}

// ------------------------------------------------------ bounded seen set

TEST(SeenSet, BoundedAtTwoGenerations) {
  Network::SeenSet seen;
  const std::size_t cap = 2 * Network::SeenSet::kSeenHotMax;
  for (std::uint64_t id = 0; id < 10 * Network::SeenSet::kSeenHotMax; ++id) {
    EXPECT_TRUE(seen.insert(id));
    EXPECT_LE(seen.size(), cap);
    // A duplicate arriving within the generational window deduplicates.
    EXPECT_FALSE(seen.insert(id));
  }
  EXPECT_LE(seen.size(), cap);
}

TEST(SeenSet, ColdHitPromotesBackToHot) {
  Network::SeenSet seen;
  ASSERT_TRUE(seen.insert(1));
  // Rotate: fill hot so id 1 ages into the cold generation.
  for (std::uint64_t id = 2; id < Network::SeenSet::kSeenHotMax + 2; ++id) {
    (void)seen.insert(id);
  }
  // Still deduped (cold hit), and the hit re-hots it for another lifetime.
  EXPECT_FALSE(seen.insert(1));
  EXPECT_FALSE(seen.insert(1));
}

TEST_F(NetFixture, GossipTracksSeenPeak) {
  auto ids = add_nodes(8);
  for (NodeId id : ids) {
    net.subscribe(id, "t");
    net.set_topic_handler(id,
                          [](NodeId, const std::string&, const Envelope&) {});
  }
  for (int i = 0; i < 5; ++i) {
    net.publish(ids[0], "t", to_bytes("m" + std::to_string(i)));
  }
  sched.run_all();
  const Network::Stats s = net.stats();
  EXPECT_GT(s.seen_peak_entries, 0u);
  EXPECT_LE(s.seen_peak_entries, 2 * Network::SeenSet::kSeenHotMax);
}

TEST(NetDeterminism, SameSeedSameSchedule) {
  // Two identical networks must deliver identical event sequences.
  for (int run = 0; run < 2; ++run) {
    SCOPED_TRACE(run);
    std::vector<sim::Time> times[2];
    for (int k = 0; k < 2; ++k) {
      sim::Scheduler sched;
      Network net(sched, sim::LatencyModel(1000, 700), /*seed=*/99);
      std::vector<NodeId> ids;
      for (int i = 0; i < 16; ++i) ids.push_back(net.add_node());
      for (NodeId id : ids) {
        net.subscribe(id, "t");
        net.set_topic_handler(id,
                              [&times, k, &sched](NodeId, const std::string&,
                                                  const Envelope&) {
                                times[k].push_back(sched.now());
                              });
      }
      net.publish(ids[0], "t", to_bytes("m"));
      sched.run_all();
    }
    EXPECT_EQ(times[0], times[1]);
    EXPECT_FALSE(times[0].empty());
  }
}

}  // namespace
}  // namespace hc::net
