// Unit tests for the paper-vocabulary types: subnet IDs and routing,
// cross-msgs, checkpoints, signature policies and fraud proofs.
#include <gtest/gtest.h>

#include "core/checkpoint.hpp"
#include "core/crossmsg.hpp"
#include "core/fraud.hpp"
#include "core/params.hpp"
#include "core/policy.hpp"
#include "core/subnet_id.hpp"

namespace hc::core {
namespace {

const Address kSaA = Address::id(100);
const Address kSaB = Address::id(101);
const Address kSaC = Address::id(102);

// ------------------------------------------------------------ subnet ids

TEST(SubnetIdOps, RootProperties) {
  const SubnetId root = SubnetId::root();
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.depth(), 0u);
  EXPECT_EQ(root.to_string(), "/root");
  EXPECT_FALSE(root.parent().has_value());
  EXPECT_FALSE(root.actor().valid());
}

TEST(SubnetIdOps, ChildAndParent) {
  const SubnetId a = SubnetId::root().child(kSaA);
  const SubnetId ab = a.child(kSaB);
  EXPECT_EQ(a.to_string(), "/root/f0100");
  EXPECT_EQ(ab.to_string(), "/root/f0100/f0101");
  EXPECT_EQ(ab.depth(), 2u);
  EXPECT_EQ(*ab.parent(), a);
  EXPECT_EQ(*a.parent(), SubnetId::root());
  EXPECT_EQ(ab.actor(), kSaB);
}

TEST(SubnetIdOps, DeterministicNaming) {
  // Same ancestor + same SA id => same subnet id (paper §III-A).
  EXPECT_EQ(SubnetId::root().child(kSaA), SubnetId::root().child(kSaA));
  EXPECT_NE(SubnetId::root().child(kSaA), SubnetId::root().child(kSaB));
}

TEST(SubnetIdOps, PrefixRelation) {
  const SubnetId a = SubnetId::root().child(kSaA);
  const SubnetId ab = a.child(kSaB);
  const SubnetId c = SubnetId::root().child(kSaC);
  EXPECT_TRUE(SubnetId::root().is_prefix_of(ab));
  EXPECT_TRUE(a.is_prefix_of(ab));
  EXPECT_TRUE(ab.is_prefix_of(ab));
  EXPECT_FALSE(ab.is_prefix_of(a));
  EXPECT_FALSE(c.is_prefix_of(ab));
}

TEST(SubnetIdOps, CommonAncestor) {
  const SubnetId a = SubnetId::root().child(kSaA);
  const SubnetId ab = a.child(kSaB);
  const SubnetId ac = a.child(kSaC);
  const SubnetId c = SubnetId::root().child(kSaC);
  EXPECT_EQ(SubnetId::common_ancestor(ab, ac), a);
  EXPECT_EQ(SubnetId::common_ancestor(ab, c), SubnetId::root());
  EXPECT_EQ(SubnetId::common_ancestor(ab, ab), ab);
  EXPECT_EQ(SubnetId::common_ancestor(a, ab), a);
}

TEST(SubnetIdOps, DownToward) {
  const SubnetId a = SubnetId::root().child(kSaA);
  const SubnetId ab = a.child(kSaB);
  EXPECT_EQ(SubnetId::root().down_toward(ab), a);
  EXPECT_EQ(a.down_toward(ab), ab);
}

TEST(SubnetIdOps, TopicNaming) {
  EXPECT_EQ(SubnetId::root().topic(), "hc/root");
  EXPECT_EQ(SubnetId::root().child(kSaA).topic(), "hc/root/f0100");
}

TEST(SubnetIdOps, CodecRoundTrip) {
  const SubnetId ab = SubnetId::root().child(kSaA).child(kSaB);
  auto out = decode<SubnetId>(encode(ab));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), ab);
  auto root = decode<SubnetId>(encode(SubnetId::root()));
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root.value().is_root());
}

TEST(SubnetIdOps, HashUsable) {
  std::hash<SubnetId> h;
  EXPECT_NE(h(SubnetId::root().child(kSaA)), h(SubnetId::root().child(kSaB)));
}

// ------------------------------------------------------------ cross msgs

TEST(CrossMsgOps, KindClassification) {
  const SubnetId a = SubnetId::root().child(kSaA);
  const SubnetId ab = a.child(kSaB);
  const SubnetId c = SubnetId::root().child(kSaC);

  CrossMsg m;
  m.from_subnet = SubnetId::root();
  m.to_subnet = ab;
  EXPECT_EQ(m.kind(), CrossMsgKind::kTopDown);

  m.from_subnet = ab;
  m.to_subnet = SubnetId::root();
  EXPECT_EQ(m.kind(), CrossMsgKind::kBottomUp);

  m.from_subnet = ab;
  m.to_subnet = c;
  EXPECT_EQ(m.kind(), CrossMsgKind::kPath);
}

TEST(CrossMsgOps, BatchCidIsContentAddressed) {
  CrossMsg m;
  m.from_subnet = SubnetId::root();
  m.to_subnet = SubnetId::root().child(kSaA);
  m.msg.value = TokenAmount::whole(4);
  CrossMsgBatch batch;
  batch.msgs.push_back(m);
  const Cid cid1 = batch.cid();
  batch.msgs[0].nonce = 7;
  EXPECT_NE(batch.cid(), cid1);
  EXPECT_EQ(batch.total_value(), TokenAmount::whole(4));
}

TEST(CrossMsgOps, LargeBatchEncodeIsReallocFree) {
  // The two-pass encode (counting sizer -> exact single allocation) must
  // hold for deeply nested objects: a batch big enough that a growing
  // owned buffer would have reallocated many times.
  CrossMsgBatch batch;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    CrossMsg m;
    m.from_subnet = SubnetId::root().child(kSaA);
    m.to_subnet = SubnetId::root().child(kSaC);
    m.msg.from = Address::id(i);
    m.msg.to = Address::id(i + 1);
    m.msg.nonce = i;
    m.msg.value = TokenAmount::atto(i);
    m.nonce = i;
    batch.msgs.push_back(std::move(m));
  }
  const std::uint64_t before = codec_realloc_count().load();
  const Bytes wire = encode(batch);
  EXPECT_EQ(codec_realloc_count().load(), before)
      << "encode() of a large batch grew its buffer instead of "
         "pre-sizing it";
  EXPECT_EQ(wire.size(), encoded_size(batch));
  auto back = decode<CrossMsgBatch>(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), batch);
}

TEST(CrossMsgOps, MetaCodecRoundTrip) {
  CrossMsgMeta meta;
  meta.from = SubnetId::root().child(kSaA);
  meta.to = SubnetId::root();
  meta.nonce = 3;
  meta.msgs_cid = Cid::of(CidCodec::kCrossMsgs, to_bytes("batch"));
  meta.msg_count = 12;
  meta.value = TokenAmount::whole(9);
  auto out = decode<CrossMsgMeta>(encode(meta));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), meta);
}

TEST(CrossMsgOps, CrossMsgCodecRoundTrip) {
  CrossMsg m;
  m.from_subnet = SubnetId::root().child(kSaA);
  m.to_subnet = SubnetId::root().child(kSaC);
  m.msg.from = Address::id(5);
  m.msg.to = Address::id(6);
  m.msg.value = TokenAmount::whole(2);
  m.nonce = 44;
  auto out = decode<CrossMsg>(encode(m));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), m);
}

// ------------------------------------------------------------ checkpoints

Checkpoint make_checkpoint(chain::Epoch epoch) {
  Checkpoint cp;
  cp.source = SubnetId::root().child(kSaA);
  cp.epoch = epoch;
  cp.proof = Cid::of(CidCodec::kBlock, to_bytes("block@" + std::to_string(epoch)));
  return cp;
}

TEST(CheckpointOps, CidChangesWithContent) {
  Checkpoint a = make_checkpoint(10);
  Checkpoint b = make_checkpoint(10);
  EXPECT_EQ(a.cid(), b.cid());
  b.cross_meta.push_back(CrossMsgMeta{});
  EXPECT_NE(a.cid(), b.cid());
}

TEST(CheckpointOps, PrevLinkage) {
  Checkpoint first = make_checkpoint(10);
  EXPECT_TRUE(first.prev.is_null());
  Checkpoint second = make_checkpoint(20);
  second.prev = first.cid();
  EXPECT_EQ(second.prev, first.cid());
}

TEST(CheckpointOps, SignAndVerifySignatures) {
  const auto v0 = crypto::KeyPair::from_label("val-0");
  const auto v1 = crypto::KeyPair::from_label("val-1");
  SignedCheckpoint sc;
  sc.checkpoint = make_checkpoint(10);
  sc.add_signature(v0);
  sc.add_signature(v1);
  EXPECT_TRUE(sc.signatures_valid());
  // Tampering with content invalidates all signatures.
  sc.checkpoint.epoch = 11;
  EXPECT_FALSE(sc.signatures_valid());
}

TEST(CheckpointOps, CodecRoundTripFull) {
  SignedCheckpoint sc;
  sc.checkpoint = make_checkpoint(30);
  sc.checkpoint.children.push_back(
      ChildCheck{SubnetId::root().child(kSaA).child(kSaB),
                 {Cid::of(CidCodec::kCheckpoint, to_bytes("child"))}});
  CrossMsgMeta meta;
  meta.from = sc.checkpoint.source;
  meta.to = SubnetId::root();
  meta.value = TokenAmount::whole(5);
  sc.checkpoint.cross_meta.push_back(meta);
  sc.add_signature(crypto::KeyPair::from_label("val-0"));
  auto out = decode<SignedCheckpoint>(encode(sc));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), sc);
  EXPECT_EQ(out.value().checkpoint.outgoing_value(), TokenAmount::whole(5));
}

// ------------------------------------------------------------ policies

struct PolicyFixture : ::testing::Test {
  std::vector<crypto::KeyPair> keys;
  std::vector<crypto::PublicKey> validators;

  PolicyFixture() {
    for (int i = 0; i < 4; ++i) {
      keys.push_back(crypto::KeyPair::from_label("val-" + std::to_string(i)));
      validators.push_back(keys.back().public_key());
    }
  }

  SignedCheckpoint signed_by(std::initializer_list<int> signers) {
    SignedCheckpoint sc;
    sc.checkpoint = make_checkpoint(10);
    for (int i : signers) sc.add_signature(keys[static_cast<std::size_t>(i)]);
    return sc;
  }
};

TEST_F(PolicyFixture, SinglePolicyAcceptsAnyValidator) {
  SignaturePolicy p{SignaturePolicyKind::kSingle, 1};
  EXPECT_TRUE(p.verify(signed_by({2}), validators).ok());
  EXPECT_FALSE(p.verify(signed_by({}), validators).ok());
}

TEST_F(PolicyFixture, MultiSigThresholdEnforced) {
  SignaturePolicy p{SignaturePolicyKind::kMultiSig, 3};
  EXPECT_FALSE(p.verify(signed_by({0, 1}), validators).ok());
  EXPECT_TRUE(p.verify(signed_by({0, 1, 2}), validators).ok());
  EXPECT_TRUE(p.verify(signed_by({0, 1, 2, 3}), validators).ok());
}

TEST_F(PolicyFixture, RejectsNonValidatorSigner) {
  SignaturePolicy p{SignaturePolicyKind::kMultiSig, 1};
  SignedCheckpoint sc;
  sc.checkpoint = make_checkpoint(10);
  sc.add_signature(crypto::KeyPair::from_label("outsider"));
  EXPECT_EQ(p.verify(sc, validators).error().code(), Errc::kPermissionDenied);
}

TEST_F(PolicyFixture, RejectsDuplicateSigner) {
  SignaturePolicy p{SignaturePolicyKind::kMultiSig, 2};
  SignedCheckpoint sc;
  sc.checkpoint = make_checkpoint(10);
  sc.add_signature(keys[0]);
  sc.add_signature(keys[0]);  // same signer twice must not reach threshold
  EXPECT_FALSE(p.verify(sc, validators).ok());
}

TEST_F(PolicyFixture, RejectsForgedSignature) {
  SignaturePolicy p{SignaturePolicyKind::kMultiSig, 1};
  SignedCheckpoint sc = signed_by({0});
  sc.checkpoint.epoch = 99;  // invalidates signature
  EXPECT_EQ(p.verify(sc, validators).error().code(), Errc::kInvalidSignature);
}

TEST_F(PolicyFixture, QuorumHelpers) {
  EXPECT_EQ(SignaturePolicy::bft_quorum(4).threshold, 3u);
  EXPECT_EQ(SignaturePolicy::bft_quorum(7).threshold, 5u);
  EXPECT_EQ(SignaturePolicy::bft_quorum(10).threshold, 7u);
  EXPECT_EQ(SignaturePolicy::majority(4).threshold, 3u);
  EXPECT_EQ(SignaturePolicy::majority(5).threshold, 3u);
}

TEST_F(PolicyFixture, CompactProofSizes) {
  SignaturePolicy multi{SignaturePolicyKind::kMultiSig, 3};
  SignaturePolicy thresh{SignaturePolicyKind::kThreshold, 3};
  // Aggregates are much smaller than signature vectors.
  EXPECT_LT(thresh.compact_proof_size(10), multi.compact_proof_size(10));
  EXPECT_EQ(multi.compact_proof_size(2), 2 * (96 + 64));
}

// ------------------------------------------------------------ fraud

TEST_F(PolicyFixture, FraudProofIdentifiesEquivocators) {
  SignedCheckpoint a = signed_by({0, 1, 2});
  SignedCheckpoint b;
  b.checkpoint = make_checkpoint(10);
  b.checkpoint.proof = Cid::of(CidCodec::kBlock, to_bytes("fork!"));
  b.add_signature(keys[1]);
  b.add_signature(keys[3]);

  FraudProof fp{a, b};
  auto guilty = fp.guilty_signers();
  ASSERT_TRUE(guilty.ok()) << guilty.error().to_string();
  ASSERT_EQ(guilty.value().size(), 1u);
  EXPECT_EQ(guilty.value()[0], validators[1]);  // only val-1 signed both
}

TEST_F(PolicyFixture, FraudProofRejectsIdenticalCheckpoints) {
  SignedCheckpoint a = signed_by({0});
  FraudProof fp{a, a};
  EXPECT_FALSE(fp.guilty_signers().ok());
}

TEST_F(PolicyFixture, FraudProofRejectsDifferentEpochs) {
  SignedCheckpoint a = signed_by({0});
  SignedCheckpoint b;
  b.checkpoint = make_checkpoint(20);
  b.add_signature(keys[0]);
  FraudProof fp{a, b};
  EXPECT_FALSE(fp.guilty_signers().ok());
}

TEST_F(PolicyFixture, FraudProofRejectsNoOverlap) {
  SignedCheckpoint a = signed_by({0});
  SignedCheckpoint b;
  b.checkpoint = make_checkpoint(10);
  b.checkpoint.proof = Cid::of(CidCodec::kBlock, to_bytes("fork"));
  b.add_signature(keys[1]);
  FraudProof fp{a, b};
  EXPECT_FALSE(fp.guilty_signers().ok());
}

TEST_F(PolicyFixture, FraudProofRejectsForgedSignatures) {
  SignedCheckpoint a = signed_by({0});
  SignedCheckpoint b = signed_by({0});
  b.checkpoint.proof = Cid::of(CidCodec::kBlock, to_bytes("fork"));
  // b's signature was made before the fork edit: invalid now.
  FraudProof fp{a, b};
  EXPECT_EQ(fp.guilty_signers().error().code(), Errc::kInvalidSignature);
}

// ------------------------------------------------------------ params

TEST(Params, CodecRoundTrip) {
  SubnetParams p;
  p.name = "gaming-subnet";
  p.consensus = ConsensusType::kTendermint;
  p.min_validator_stake = TokenAmount::whole(10);
  p.min_collateral = TokenAmount::whole(50);
  p.checkpoint_period = 25;
  p.checkpoint_policy = SignaturePolicy::bft_quorum(4);
  auto out = decode<SubnetParams>(encode(p));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), p);
}

TEST(Params, ConsensusNames) {
  EXPECT_EQ(consensus_name(ConsensusType::kTendermint), "tendermint");
  EXPECT_EQ(consensus_name(ConsensusType::kPowerLottery), "power-lottery");
}

}  // namespace
}  // namespace hc::core
