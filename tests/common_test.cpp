// Unit tests for the common vocabulary types: bytes/hex, codec round-trips,
// SHA-256 FIPS vectors, CIDs, addresses and token arithmetic.
#include <gtest/gtest.h>

#include <limits>

#include "common/address.hpp"
#include "common/arena.hpp"
#include "common/bytes.hpp"
#include "common/cid.hpp"
#include "common/codec.hpp"
#include "common/hash.hpp"
#include "common/result.hpp"
#include "common/token.hpp"

namespace hc {
namespace {

// ---------------------------------------------------------------- bytes/hex

TEST(Bytes, HexRoundTrip) {
  const Bytes data{0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
  auto back = from_hex("0001abff");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Bytes, HexAccepts0xPrefixAndUppercase) {
  auto a = from_hex("0xDEADBEEF");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(to_hex(*a), "deadbeef");
}

TEST(Bytes, HexRejectsMalformed) {
  EXPECT_FALSE(from_hex("abc").has_value());   // odd length
  EXPECT_FALSE(from_hex("zz").has_value());    // non-hex
}

TEST(Bytes, ConcatAndAppend) {
  const Bytes a{1, 2};
  const Bytes b{3};
  Bytes c = concat({a, b});
  EXPECT_EQ(c, (Bytes{1, 2, 3}));
  append(c, a);
  EXPECT_EQ(c, (Bytes{1, 2, 3, 1, 2}));
}

TEST(Bytes, CtEqual) {
  EXPECT_TRUE(ct_equal(Bytes{1, 2}, Bytes{1, 2}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2}, Bytes{1, 3}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2}, Bytes{1, 2, 3}));
}

// ---------------------------------------------------------------- Result

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> err = Error(Errc::kNotFound, "missing");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error().code(), Errc::kNotFound);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(Result, StatusSuccessAndError) {
  Status s = ok_status();
  EXPECT_TRUE(s.ok());
  Status e(Errc::kTimeout, "late");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.error().to_string(), "kTimeout: late");
}

// ---------------------------------------------------------------- codec

TEST(Codec, FixedWidthRoundTrip) {
  Encoder e;
  e.u8(0xab).u16(0x1234).u32(0xdeadbeef).u64(0x0123456789abcdefULL)
      .i64(-77).boolean(true);
  Decoder d(e.data());
  EXPECT_EQ(d.u8().value(), 0xab);
  EXPECT_EQ(d.u16().value(), 0x1234);
  EXPECT_EQ(d.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(d.u64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(d.i64().value(), -77);
  EXPECT_EQ(d.boolean().value(), true);
  EXPECT_TRUE(d.done());
}

TEST(Codec, VarintBoundaries) {
  const std::uint64_t cases[] = {
      0, 1, 127, 128, 300, 16383, 16384,
      std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t v : cases) {
    Encoder e;
    e.varint(v);
    Decoder d(e.data());
    auto r = d.varint();
    ASSERT_TRUE(r.ok()) << v;
    EXPECT_EQ(r.value(), v);
    EXPECT_TRUE(d.done());
  }
}

TEST(Codec, BytesAndStrings) {
  Encoder e;
  e.bytes(Bytes{9, 8, 7}).str("hello");
  Decoder d(e.data());
  EXPECT_EQ(d.bytes().value(), (Bytes{9, 8, 7}));
  EXPECT_EQ(d.str().value(), "hello");
}

TEST(Codec, TruncatedInputFailsCleanly) {
  Encoder e;
  e.u64(12345);
  Bytes data = e.data();
  data.pop_back();
  Decoder d(data);
  EXPECT_FALSE(d.u64().ok());
}

TEST(Codec, BytesLengthOverrunRejected) {
  Encoder e;
  e.varint(1000);  // claims 1000 bytes follow, but none do
  Decoder d(e.data());
  EXPECT_FALSE(d.bytes().ok());
}

TEST(Codec, NonMinimalVarintRejected) {
  // Regression (found by fuzzing): 0x80 0x00 would decode as 0, giving two
  // encodings for the same value and breaking content-address injectivity.
  const Bytes padded{0x80, 0x00};
  Decoder d(padded);
  EXPECT_FALSE(d.varint().ok());
  const Bytes minimal{0x00};
  Decoder d2(minimal);
  EXPECT_TRUE(d2.varint().ok());
}

TEST(Codec, BooleanRejectsJunk) {
  Bytes data{7};
  Decoder d(data);
  EXPECT_FALSE(d.boolean().ok());
}

struct Pair {
  std::uint64_t a = 0;
  std::string b;
  void encode_to(Encoder& e) const { e.varint(a).str(b); }
  static Result<Pair> decode_from(Decoder& d) {
    Pair p;
    HC_TRY(a, d.varint());
    HC_TRY(b, d.str());
    p.a = a;
    p.b = std::move(b);
    return p;
  }
  bool operator==(const Pair&) const = default;
};

TEST(Codec, ObjectVectorRoundTrip) {
  std::vector<Pair> in{{1, "x"}, {2, "y"}, {300, "zzz"}};
  Encoder e;
  e.vec(in);
  Decoder d(e.data());
  auto out = d.vec<Pair>();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), in);
}

TEST(Codec, VectorCountGuard) {
  Encoder e;
  e.varint(1u << 21);  // over the default 2^20 cap
  Decoder d(e.data());
  EXPECT_FALSE(d.vec<Pair>().ok());
}

// ------------------------------------------------- codec encode modes

TEST(Codec, SizerMatchesOwnedEncoding) {
  std::vector<Pair> in;
  for (std::uint64_t i = 0; i < 100; ++i) {
    in.push_back({i * 12345, std::string(i % 17, 'p')});
  }
  Encoder owned;
  owned.vec(in);
  Encoder sizer = Encoder::sizer();
  sizer.vec(in);
  EXPECT_EQ(sizer.size(), owned.data().size());
}

TEST(Codec, ExternalBufferProducesIdenticalBytes) {
  const Pair p{0xdeadbeef, "external-mode"};
  const Bytes owned = encode(p);
  Bytes ext(encoded_size(p));
  Encoder e(ext.data(), ext.size());
  e.obj(p);
  EXPECT_EQ(e.size(), ext.size());
  EXPECT_EQ(ext, owned);
}

TEST(Codec, TwoPassEncodeNeverReallocates) {
  std::vector<Pair> in;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    in.push_back({i, std::string(i % 31, 'q')});
  }
  struct Wrapper {
    const std::vector<Pair>* v;
    void encode_to(Encoder& e) const { e.vec(*v); }
  };
  const std::uint64_t before = codec_realloc_count().load();
  const Bytes out = encode(Wrapper{&in});
  EXPECT_EQ(codec_realloc_count().load(), before);
  Decoder d(out);
  auto back = d.vec<Pair>();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), in);
}

// --------------------------------------------------------------- arena

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena(256);
  std::uint8_t* a = arena.allocate(9);
  std::uint8_t* b = arena.allocate(24);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_GE(b, a + 9);  // no overlap
  std::memset(a, 0xaa, 9);
  std::memset(b, 0xbb, 24);
  EXPECT_EQ(a[8], 0xaa);
  EXPECT_EQ(b[0], 0xbb);
}

TEST(Arena, CopyAndEncodeObjMatchHeapEncoding) {
  Arena arena;
  const Bytes src = to_bytes("arena-copy");
  const BytesView copied = arena.copy(src);
  EXPECT_EQ(Bytes(copied.begin(), copied.end()), src);

  const Pair p{77, "arena-encode"};
  const BytesView enc = arena.encode_obj(p);
  EXPECT_EQ(Bytes(enc.begin(), enc.end()), encode(p));
}

TEST(Arena, ResetRetainsChunksAndDropsOversized) {
  Arena arena(128);
  (void)arena.allocate(64);
  (void)arena.allocate(4096);  // oversized: dedicated chunk
  EXPECT_EQ(arena.stats().bytes_requested, 64u + 4096u);
  EXPECT_GE(arena.stats().high_water, 64u + 4096u);
  arena.reset();
  // Demand survives reset (cumulative until taken); the owner drains it.
  EXPECT_EQ(arena.take_bytes_requested(), 64u + 4096u);
  EXPECT_EQ(arena.take_bytes_requested(), 0u);
  // After reset the retained chunk is reused from the start.
  std::uint8_t* again = arena.allocate(64);
  std::memset(again, 0xcc, 64);
  EXPECT_EQ(again[0], 0xcc);
}

TEST(Arena, SteadyStateReusesRetainedChunks) {
  Arena arena(256);
  std::uint8_t* first = arena.allocate(200);
  arena.reset();
  std::uint8_t* second = arena.allocate(200);
  EXPECT_EQ(first, second);  // same retained chunk, no heap traffic
}

// ---------------------------------------------------------------- SHA-256

// FIPS 180-4 / NIST CAVP reference vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(digest_view(Sha256::hash(Bytes{}))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(digest_view(Sha256::hash(to_bytes("abc")))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(digest_view(Sha256::hash(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(digest_view(h.finalize())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes data = to_bytes("hierarchical consensus scales blockchains");
  Sha256 h;
  for (std::size_t i = 0; i < data.size(); ++i) {
    h.update(BytesView(&data[i], 1));
  }
  EXPECT_EQ(h.finalize(), Sha256::hash(data));
}

TEST(Sha256, PaddingBoundaries) {
  // Lengths straddling the 55/56/64-byte padding edge cases must not crash
  // and must differ pairwise.
  std::vector<Digest> digests;
  for (std::size_t n : {54u, 55u, 56u, 57u, 63u, 64u, 65u}) {
    digests.push_back(Sha256::hash(Bytes(n, 0x5a)));
  }
  for (std::size_t i = 0; i < digests.size(); ++i) {
    for (std::size_t j = i + 1; j < digests.size(); ++j) {
      EXPECT_NE(digests[i], digests[j]);
    }
  }
}

// ---------------------------------------------------------------- CID

TEST(Cid, ContentAddressing) {
  const Bytes content = to_bytes("some content");
  Cid a = Cid::of(CidCodec::kRaw, content);
  Cid b = Cid::of(CidCodec::kRaw, content);
  Cid c = Cid::of(CidCodec::kCheckpoint, content);  // same bytes, other codec
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, Cid::of(CidCodec::kRaw, to_bytes("other content")));
}

TEST(Cid, NullSentinel) {
  Cid null;
  EXPECT_TRUE(null.is_null());
  EXPECT_FALSE(Cid::of(CidCodec::kRaw, to_bytes("x")).is_null());
}

TEST(Cid, CodecRoundTrip) {
  Cid in = Cid::of(CidCodec::kBlock, to_bytes("block"));
  auto out = decode<Cid>(encode(in));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), in);
}

TEST(Cid, DecodeRejectsUnknownCodec) {
  Bytes data(33, 0);
  data[0] = 250;
  EXPECT_FALSE(decode<Cid>(data).ok());
}

TEST(Cid, HashUsableInUnorderedContainers) {
  std::hash<Cid> h;
  Cid a = Cid::of(CidCodec::kRaw, to_bytes("a"));
  Cid b = Cid::of(CidCodec::kRaw, to_bytes("b"));
  EXPECT_NE(h(a), h(b));  // overwhelmingly likely for a real hash
}

// ---------------------------------------------------------------- Address

TEST(Address, IdAddress) {
  Address a = Address::id(65);
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(a.is_id());
  EXPECT_EQ(a.actor_id(), 65u);
  EXPECT_EQ(a.to_string(), "f065");
}

TEST(Address, KeyAddressFromPubkey) {
  Address a = Address::key(to_bytes("pubkey-1"));
  Address b = Address::key(to_bytes("pubkey-1"));
  Address c = Address::key(to_bytes("pubkey-2"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.to_string().substr(0, 2), "f1");
}

TEST(Address, DefaultIsInvalid) {
  Address a;
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(a.to_string(), "<invalid>");
}

TEST(Address, CodecRoundTripAllKinds) {
  for (const Address& in :
       {Address{}, Address::id(1234), Address::key(to_bytes("pk"))}) {
    auto out = decode<Address>(encode(in));
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.value(), in);
  }
}

// ---------------------------------------------------------------- Token

TEST(Token, WholeAndAtto) {
  TokenAmount t = TokenAmount::whole(3);
  EXPECT_EQ(t.raw(), static_cast<__int128>(3) * TokenAmount::kAttoPerToken);
  EXPECT_EQ(t.whole_part(), 3);
  EXPECT_EQ(TokenAmount().raw(), 0);
  EXPECT_TRUE(TokenAmount().is_zero());
}

TEST(Token, Arithmetic) {
  TokenAmount a = TokenAmount::whole(5);
  TokenAmount b = TokenAmount::whole(2);
  EXPECT_EQ((a - b).whole_part(), 3);
  EXPECT_EQ((a + b).whole_part(), 7);
  EXPECT_EQ((-b).whole_part(), -2);
  EXPECT_TRUE((b - a).negative());
  EXPECT_LT(b, a);
}

TEST(Token, ScalarMultiply) {
  TokenAmount gas_price = TokenAmount::atto(100);
  EXPECT_EQ((gas_price * 250).raw(), 25000);
}

TEST(Token, OverflowThrows) {
  TokenAmount huge = TokenAmount::atto(
      (static_cast<__int128>(1) << 126) - 1 + (static_cast<__int128>(1) << 126));
  EXPECT_THROW({ auto r = huge + TokenAmount::atto(1); (void)r; },
               std::overflow_error);
  EXPECT_THROW({ auto r = huge * 2; (void)r; }, std::overflow_error);
  TokenAmount small = -huge;
  EXPECT_THROW({ auto r = small - TokenAmount::atto(2); (void)r; },
               std::overflow_error);
}

TEST(Token, ToStringFormatting) {
  EXPECT_EQ(TokenAmount::whole(12).to_string(), "12 tok");
  EXPECT_EQ(TokenAmount::atto(1).to_string(), "0.000000000000000001 tok");
  EXPECT_EQ((-TokenAmount::whole(2)).to_string(), "-2 tok");
  EXPECT_EQ((TokenAmount::whole(1) + TokenAmount::atto(500000000000000000))
                .to_string(),
            "1.5 tok");
}

TEST(Token, NegativeZeroEncodingRejected) {
  // Regression (found by fuzzing): sign=1 with magnitude 0 must not decode
  // as a second representation of zero.
  Encoder e;
  e.u8(1).u64(0).u64(0);
  EXPECT_FALSE(decode<TokenAmount>(e.data()).ok());
}

TEST(Token, CodecRoundTripIncludingNegative) {
  for (__int128 raw : {static_cast<__int128>(0), static_cast<__int128>(1),
                       static_cast<__int128>(-1),
                       static_cast<__int128>(123456789),
                       -static_cast<__int128>(5) * TokenAmount::kAttoPerToken}) {
    TokenAmount in = TokenAmount::atto(raw);
    auto out = decode<TokenAmount>(encode(in));
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.value(), in);
  }
}

}  // namespace
}  // namespace hc
