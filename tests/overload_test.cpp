// Overload-control tests (DESIGN.md §14): bounded mempool admission and
// deterministic eviction order, the nonce-gap hole regression, and a surge
// smoke over the chaos runner proving peaks stay under every cap while the
// admitted traffic still settles.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "chain/mempool.hpp"
#include "chaos/runner.hpp"
#include "common/capacity.hpp"
#include "crypto/schnorr.hpp"

namespace hc::chain {
namespace {

using common::ShedReason;

crypto::KeyPair sender_key(std::size_t i) {
  return crypto::KeyPair::from_label("overload/sender/" + std::to_string(i));
}

SignedMessage make_msg(std::size_t sender, std::uint64_t nonce,
                       std::uint64_t gas_price = 1) {
  const auto key = sender_key(sender);
  Message m;
  m.from = Address::key(key.public_key().to_bytes());
  m.to = m.from;
  m.nonce = nonce;
  m.gas_limit = 1u << 22;
  m.gas_price = TokenAmount::atto(static_cast<std::int64_t>(gas_price));
  return SignedMessage::sign(std::move(m), key);
}

/// Per-sender pending nonces, recovered through select() with a huge
/// budget. Selection walks each sender's consecutive run from nonce 0, so
/// it reveals exactly the contiguous-from-zero contents these tests assert.
std::map<Address, std::vector<std::uint64_t>> pool_contents(
    const Mempool& pool) {
  auto picked = pool.select(1u << 20, [](const Address&) { return 0; });
  std::map<Address, std::vector<std::uint64_t>> out;
  for (const auto& sm : picked) {
    out[sm.message.from].push_back(sm.message.nonce);
  }
  return out;
}

TEST(MempoolOverload, NonceGapRejectsFarFutureNonces) {
  // Regression for the memory-exhaustion hole: one sender parking
  // far-future nonces used to grow the pool without bound, and
  // prune_stale (driven by the on-chain nonce) could never reclaim them.
  MempoolConfig cfg;
  cfg.nonce_gap = 16;
  Mempool pool(cfg);
  ASSERT_TRUE(pool.add(make_msg(0, 0), /*next_nonce=*/0).ok());
  ASSERT_TRUE(pool.add(make_msg(0, 15), 0).ok());  // last inside the window
  const Status far = pool.add(make_msg(0, 16), 0);
  EXPECT_EQ(far.error().code(), Errc::kOverloaded);
  EXPECT_EQ(pool.add(make_msg(0, 100000), 0).error().code(),
            Errc::kOverloaded);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.shed_stats().by(ShedReason::kNonceGap), 2u);
  // The window slides with the chain: once next_nonce advances, the same
  // nonce is admissible.
  EXPECT_TRUE(pool.add(make_msg(0, 16), 1).ok());
}

TEST(MempoolOverload, NonceGapZeroDisablesTheWindow) {
  MempoolConfig cfg;
  cfg.nonce_gap = 0;
  Mempool pool(cfg);
  EXPECT_TRUE(pool.add(make_msg(0, 1u << 30), 0).ok());
}

TEST(MempoolOverload, PerSenderCapOnlyTradesTheTailForALowerNonce) {
  MempoolConfig cfg;
  cfg.max_per_sender = 4;
  Mempool pool(cfg);
  for (std::uint64_t n = 1; n <= 4; ++n) {
    ASSERT_TRUE(pool.add(make_msg(0, n), 0).ok());
  }
  // At cap, a HIGHER nonce than the tail is refused outright...
  EXPECT_EQ(pool.add(make_msg(0, 5), 0).error().code(), Errc::kOverloaded);
  EXPECT_EQ(pool.shed_stats().by(ShedReason::kPerSenderCap), 1u);
  // ...but a lower nonce displaces the sender's own tail (nonce 4): the
  // lower nonce is includable sooner, so it is strictly more valuable.
  ASSERT_TRUE(pool.add(make_msg(0, 0), 0).ok());
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_EQ(pool.shed_stats().by(ShedReason::kEvicted), 1u);
  const auto contents = pool_contents(pool);
  const Address a = Address::key(sender_key(0).public_key().to_bytes());
  EXPECT_EQ(contents.at(a), (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST(MempoolOverload, FullPoolEvictsTheLowestPriorityTail) {
  MempoolConfig cfg;
  cfg.max_messages = 4;
  Mempool pool(cfg);
  // Sender 0 pays gas 1, sender 1 pays gas 2.
  ASSERT_TRUE(pool.add(make_msg(0, 0, 1), 0).ok());
  ASSERT_TRUE(pool.add(make_msg(0, 1, 1), 0).ok());
  ASSERT_TRUE(pool.add(make_msg(1, 0, 2), 0).ok());
  ASSERT_TRUE(pool.add(make_msg(1, 1, 2), 0).ok());
  // A richer arrival evicts the cheapest sender's TAIL (0:1), never its
  // includable head (0:0).
  ASSERT_TRUE(pool.add(make_msg(1, 2, 2), 0).ok());
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_EQ(pool.shed_stats().by(ShedReason::kEvicted), 1u);
  const auto contents = pool_contents(pool);
  const Address a0 = Address::key(sender_key(0).public_key().to_bytes());
  const Address a1 = Address::key(sender_key(1).public_key().to_bytes());
  EXPECT_EQ(contents.at(a0), (std::vector<std::uint64_t>{0}));
  EXPECT_EQ(contents.at(a1), (std::vector<std::uint64_t>{0, 1, 2}));
  // An arrival that is ITSELF the lowest priority is refused, not traded.
  EXPECT_EQ(pool.add(make_msg(0, 1, 1), 0).error().code(), Errc::kOverloaded);
  EXPECT_EQ(pool.shed_stats().by(ShedReason::kQueueFull), 1u);
  EXPECT_EQ(pool.size(), 4u);
}

TEST(MempoolOverload, EvictionNeverBreaksPerSenderContiguity) {
  // Property sweep: under a mixed-priority flood against a tiny pool,
  // every sender's pending nonces must remain contiguous from 0 after
  // every single add — tail-only eviction can never orphan a higher nonce
  // by removing a lower, still-includable one beneath it.
  MempoolConfig cfg;
  cfg.max_messages = 16;
  cfg.max_per_sender = 8;
  Mempool pool(cfg);
  std::uint64_t next[6] = {};
  std::uint64_t lcg = 0x9e3779b97f4a7c15ull;  // fixed seed, deterministic
  for (int step = 0; step < 400; ++step) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const std::size_t s = (lcg >> 33) % 6;
    // Gas is constant per sender so admission priority is stable.
    (void)pool.add(make_msg(s, next[s]++, (s % 3) + 1), 0);
    EXPECT_LE(pool.size(), cfg.max_messages);
    for (const auto& [addr, nonces] : pool_contents(pool)) {
      for (std::size_t i = 0; i < nonces.size(); ++i) {
        ASSERT_EQ(nonces[i], i)
            << "sender " << addr.to_string() << " lost nonce " << i
            << " while retaining " << nonces.back() << " at step " << step;
      }
    }
  }
  EXPECT_EQ(pool.shed_stats().peak_items, cfg.max_messages);
  EXPECT_GT(pool.shed_stats().total(), 0u);
}

TEST(MempoolOverload, ShedLedgerSeparatesReasons) {
  MempoolConfig cfg;
  cfg.max_messages = 2;
  cfg.nonce_gap = 4;
  Mempool pool(cfg);
  ASSERT_TRUE(pool.add(make_msg(0, 0), 0).ok());
  ASSERT_TRUE(pool.add(make_msg(0, 1), 0).ok());
  (void)pool.add(make_msg(0, 8), 0);   // nonce-gap
  (void)pool.add(make_msg(0, 2), 0);   // queue-full, arrival lowest priority
  const auto& shed = pool.shed_stats();
  EXPECT_EQ(shed.by(ShedReason::kNonceGap), 1u);
  EXPECT_EQ(shed.by(ShedReason::kQueueFull), 1u);
  EXPECT_EQ(shed.total(), 2u);
  EXPECT_EQ(common::to_string(ShedReason::kNonceGap),
            std::string("nonce-gap"));
}

}  // namespace
}  // namespace hc::chain

namespace hc::chaos {
namespace {

/// End-to-end surge smoke: flood far past the mempool caps, then demand
/// convergence, zero invariant violations (bounded peaks, supply conserved
/// under shed), visible shed counters, and same-seed reproducibility.
TEST(OverloadSurge, BoundedShedAndSettle) {
  RunnerConfig cfg;
  cfg.children = 2;
  cfg.nested = 0;
  cfg.warmup = sim::kSecond;
  cfg.fault_window = 8 * sim::kSecond;
  cfg.settle = 180 * sim::kSecond;

  Scenario surge;
  for (const auto& s : ChaosRunner::standard_scenarios()) {
    if (s.name == "surge-overload") surge = s;
  }
  ASSERT_FALSE(surge.name.empty()) << "surge-overload scenario missing";

  ChaosRunner runner(cfg);
  const RunResult a = runner.run(surge, 7);
  ASSERT_TRUE(a.converged) << a.summary();
  ASSERT_TRUE(a.report.ok()) << a.report.to_string();
  // The flood must actually have overflowed the caps somewhere: the
  // node_mempool_shed_total family (registered at zero on every node) has
  // to carry at least one nonzero sample. Family values serialize as
  // `"<labelset>":<int>` pairs inside the family's object.
  const std::size_t fam = a.metrics_json.find("\"node_mempool_shed_total\"");
  ASSERT_NE(fam, std::string::npos);
  const std::size_t fam_end = a.metrics_json.find('}', fam);
  ASSERT_NE(fam_end, std::string::npos);
  std::uint64_t shed_sum = 0;
  for (std::size_t i = fam; i + 1 < fam_end; ++i) {
    if (a.metrics_json[i] != '"' || a.metrics_json[i + 1] != ':') continue;
    shed_sum += std::strtoull(a.metrics_json.c_str() + i + 2, nullptr, 10);
  }
  EXPECT_GT(shed_sum, 0u) << "surge never overflowed a mempool cap";
  EXPECT_NE(a.metrics_json.find("surge"), std::string::npos)
      << "surge fault was never injected";

  const RunResult b = runner.run(surge, 7);
  EXPECT_EQ(a.fingerprint, b.fingerprint) << "surge run is not reproducible";
  EXPECT_EQ(a.state_roots, b.state_roots);
}

}  // namespace
}  // namespace hc::chaos
