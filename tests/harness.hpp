// Shared test harness: a single-chain "world" with the standard actor set,
// funded user accounts, and helpers to execute messages without the
// networking/consensus stack. Used by the actor and protocol unit tests;
// the full-stack integration tests use the runtime::Hierarchy instead.
#pragma once

#include <string>
#include <unordered_map>

#include "actors/basic.hpp"
#include "actors/methods.hpp"
#include "actors/registry.hpp"
#include "actors/sca_actor.hpp"
#include "actors/subnet_actor.hpp"
#include "actors/util.hpp"
#include "chain/executor.hpp"
#include "crypto/schnorr.hpp"

namespace hc::testing {

/// A user identity: key pair + derived address + tracked nonce.
struct User {
  crypto::KeyPair key;
  Address addr;
  std::uint64_t nonce = 0;

  explicit User(const std::string& label)
      : key(crypto::KeyPair::from_label(label)),
        addr(Address::key(key.public_key().to_bytes())) {}
};

/// One simulated chain with executor and standard actors.
class ChainWorld {
 public:
  explicit ChainWorld(const core::SubnetId& self = core::SubnetId::root(),
                      std::uint32_t checkpoint_period = 10) {
    actors::install_standard_actors(registry_);

    chain::ActorEntry init;
    init.code = chain::kCodeInit;
    init.nonce = 100;  // first dynamic actor id
    tree_.set(chain::kInitAddr, init);

    chain::ActorEntry sca;
    sca.code = chain::kCodeSca;
    sca.state = actors::make_sca_ctor_state(self, checkpoint_period);
    tree_.set(chain::kScaAddr, sca);

    ctx_.height = 1;
    ctx_.miner = Address::id(900);
  }

  /// Create (or fetch) a funded user account.
  User& user(const std::string& label, TokenAmount funds = TokenAmount::whole(1000)) {
    auto it = users_.find(label);
    if (it != users_.end()) return it->second;
    auto [nit, inserted] = users_.emplace(label, User(label));
    chain::ActorEntry entry;
    entry.code = chain::kCodeAccount;
    entry.balance = funds;
    tree_.set(nit->second.addr, entry);
    return nit->second;
  }

  /// Execute a signed message from `u`; auto-nonce, generous gas.
  chain::Receipt call(User& u, const Address& to, chain::MethodNum method,
                      Bytes params, TokenAmount value) {
    chain::Message m;
    m.from = u.addr;
    m.to = to;
    m.nonce = u.nonce++;
    m.value = value;
    m.method = method;
    m.params = std::move(params);
    m.gas_limit = 1u << 26;
    m.gas_price = TokenAmount::atto(1);
    chain::Executor exec(registry_, schedule_);
    return exec.apply(tree_, chain::SignedMessage::sign(std::move(m), u.key),
                      ctx_);
  }

  /// Execute an implicit (protocol) message.
  chain::Receipt implicit(const Address& to, chain::MethodNum method,
                          Bytes params, TokenAmount value) {
    chain::Message m;
    m.from = chain::kSystemAddr;
    m.to = to;
    m.value = value;
    m.method = method;
    m.params = std::move(params);
    chain::Executor exec(registry_, schedule_);
    return exec.apply_implicit(tree_, m, ctx_);
  }

  /// Deploy an SA with the given params; returns its address.
  Address deploy_sa(User& u, const core::SubnetParams& params) {
    actors::ExecParams exec;
    exec.code = chain::kCodeSubnetActor;
    exec.ctor_state = actors::make_sa_ctor_state(params);
    auto r = call(u, chain::kInitAddr, actors::init_method::kExec,
                  encode(exec), TokenAmount());
    if (!r.ok()) return Address();
    auto addr = decode<Address>(r.ret);
    return addr.ok() ? addr.value() : Address();
  }

  /// Decode the SCA state.
  [[nodiscard]] actors::ScaState sca_state() const {
    auto s = decode<actors::ScaState>(tree_.get(chain::kScaAddr)->state);
    return s.ok() ? std::move(s).value() : actors::ScaState{};
  }

  /// Decode an SA's state.
  [[nodiscard]] actors::SaState sa_state(const Address& sa) const {
    auto s = decode<actors::SaState>(tree_.get(sa)->state);
    return s.ok() ? std::move(s).value() : actors::SaState{};
  }

  [[nodiscard]] TokenAmount balance(const Address& a) const {
    const auto* e = tree_.get(a);
    return e == nullptr ? TokenAmount() : e->balance;
  }

  chain::StateTree& tree() { return tree_; }
  chain::ExecutionContext& ctx() { return ctx_; }
  const chain::ActorRegistry& registry() const { return registry_; }
  const chain::GasSchedule& schedule() const { return schedule_; }

 private:
  chain::ActorRegistry registry_;
  chain::GasSchedule schedule_;
  chain::StateTree tree_;
  chain::ExecutionContext ctx_;
  std::unordered_map<std::string, User> users_;
};

}  // namespace hc::testing
